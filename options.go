package mcnet

import (
	"fmt"

	"mcnet/internal/coloring"
	"mcnet/internal/core"
	"mcnet/internal/fault"
)

// settings collects everything New derives a Network from. Options mutate
// it; zero-valued fields fall back to documented defaults.
type settings struct {
	channels  int
	seed      uint64
	nEstimate int
	topo      Topology

	alpha, beta, noise float64
	epsilon            float64

	deltaHat, phiMax, hopBound int // 0 = derive from topology
	maxSlots                   int

	parallelism int     // slot-resolution workers; 0 = GOMAXPROCS
	exact       bool    // force exact resolution (Exact option)
	farFieldTol float64 // far-field relative error; <0 = resolver default, 0 = exact
	cellFrac    float64 // hierarchical grid cell size as a fraction of R_T; 0 = default
	kernel32    bool    // divide-free float32 SINR kernel (Float32Kernel option)

	// faults is the run's fault/dynamics spec; faulted records that a fault
	// option was given (even at zero intensity), which attaches the
	// injection layer and surfaces a FaultReport in results.
	faults  fault.Spec
	faulted bool

	colorer string // coloring backend name; "" = sec7
	exec    ExecMode
}

func defaultSettings() settings {
	return settings{
		channels:    4,
		seed:        1,
		topo:        Crowd,
		alpha:       3.0,
		beta:        1.5,
		noise:       1.0,
		epsilon:     0.3,
		farFieldTol: -1, // resolver default (hierarchical at its default ε)
	}
}

// Option configures a Network under construction.
type Option func(*settings) error

// Channels sets the number F of non-overlapping radio channels (default 4).
func Channels(f int) Option {
	return func(s *settings) error {
		if f < 1 {
			return fmt.Errorf("mcnet: channels = %d must be ≥ 1", f)
		}
		s.channels = f
		return nil
	}
}

// Seed sets the run seed (default 1). Layouts and every protocol run are
// deterministic functions of the seed, so two Networks built with equal
// options behave identically.
func Seed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithTopology selects the node placement and its derived pipeline sizing
// (default Crowd). See Topology for the built-in generators.
func WithTopology(t Topology) Option {
	return func(s *settings) error {
		if t == nil {
			return fmt.Errorf("mcnet: topology must not be nil")
		}
		s.topo = t
		return nil
	}
}

// SINR overrides the path-loss exponent α (> 2) and decoding threshold
// β (≥ 1). The transmission power is renormalized so R_T stays 1.
func SINR(alpha, beta float64) Option {
	return func(s *settings) error {
		if alpha <= 2 {
			return fmt.Errorf("mcnet: alpha = %v must be > 2 in the plane", alpha)
		}
		if beta < 1 {
			return fmt.Errorf("mcnet: beta = %v must be ≥ 1", beta)
		}
		s.alpha, s.beta = alpha, beta
		return nil
	}
}

// Epsilon sets the communication-graph margin ε in (0, 1): links span
// R_ε = (1-ε)·R_T (default 0.3).
func Epsilon(eps float64) Option {
	return func(s *settings) error {
		if eps <= 0 || eps >= 1 {
			return fmt.Errorf("mcnet: epsilon = %v must be in (0, 1)", eps)
		}
		s.epsilon = eps
		return nil
	}
}

// NEstimate sets the polynomial size estimate n̂ the nodes are allowed to
// know (default: the true n). Protocols scale their round counts by ln n̂.
func NEstimate(nHat int) Option {
	return func(s *settings) error {
		if nHat < 2 {
			return fmt.Errorf("mcnet: size estimate = %d must be ≥ 2", nHat)
		}
		s.nEstimate = nHat
		return nil
	}
}

// DeltaHat overrides the derived cluster-size bound Δ̂. By default it is
// derived from the topology (e.g. n for Crowd, measured max degree for
// Positions).
func DeltaHat(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: DeltaHat = %d must be ≥ 1", v)
		}
		s.deltaHat = v
		return nil
	}
}

// PhiMax overrides the derived TDMA period (upper bound on cluster colors).
func PhiMax(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: PhiMax = %d must be ≥ 1", v)
		}
		s.phiMax = v
		return nil
	}
}

// HopBound overrides the derived backbone hop-diameter bound.
func HopBound(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: HopBound = %d must be ≥ 1", v)
		}
		s.hopBound = v
		return nil
	}
}

// MaxSlots caps a run's slot count as a safety net (default: the
// simulator's built-in bound).
func MaxSlots(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: MaxSlots = %d must be ≥ 1", v)
		}
		s.maxSlots = v
		return nil
	}
}

// Parallelism sets how many workers each slot's SINR resolution may fan
// listeners out across: 0 (the default) sizes the pool by GOMAXPROCS, 1
// forces serial resolution. Every setting produces bit-identical results —
// listeners resolve independently — so this knob trades wall-clock time
// only and never affects transcripts.
func Parallelism(workers int) Option {
	return func(s *settings) error {
		if workers < 0 {
			return fmt.Errorf("mcnet: Parallelism = %d must be ≥ 0", workers)
		}
		s.parallelism = workers
		return nil
	}
}

// Colorer selects the coloring backend Color runs (default "sec7"):
//
//   - "sec7": the paper's Sec. 7 procedures on the aggregation structure —
//     colors k·φ + i from within-cluster indices and cluster colors.
//   - "dplus1": degree+1 list coloring by randomized palette trials over an
//     ID-TDMA substrate; palette ≤ Δ+1, no structure construction.
//   - "hsb": hypergraph symmetry breaking — an MIS elects color 0, members
//     fill multi-channel TDMA pairs (slot, channel); the induced cycle is
//     about (Δ+1)/F.
//
// Every backend runs on the same slot engine, so fault injection and seed
// determinism apply uniformly. ColorerNames lists the valid names.
func Colorer(name string) Option {
	return func(s *settings) error {
		if _, err := coloring.ByName(name); err != nil {
			return fmt.Errorf("mcnet: %w", err)
		}
		s.colorer = name
		return nil
	}
}

// ColorerNames lists the registered coloring backend names, default first.
func ColorerNames() []string { return coloring.Names() }

// ExecMode selects how Aggregate executes the per-node protocol code. All
// modes produce bit-identical transcripts, results and events — the knob
// trades memory and wall-clock time only.
type ExecMode int

const (
	// ExecAuto (the default) picks per run: goroutine programs on small
	// deployments, the goroutine-free stepped engine at crowd scale (64k
	// goroutine stacks cost gigabytes; steppers keep per-node state in flat
	// structs).
	ExecAuto ExecMode = ExecMode(core.ExecAuto)
	// ExecGoroutines forces one goroutine per node.
	ExecGoroutines ExecMode = ExecMode(core.ExecGoroutines)
	// ExecStepped forces the goroutine-free stepped engine.
	ExecStepped ExecMode = ExecMode(core.ExecStepped)
)

// String returns the mode's CLI/spec name: auto, goroutines or stepped.
func (m ExecMode) String() string { return core.ExecMode(m).String() }

// ParseExecMode maps a CLI/spec name ("auto", "goroutines", "stepped"; ""
// means auto) to its ExecMode.
func ParseExecMode(name string) (ExecMode, error) {
	switch name {
	case "", "auto":
		return ExecAuto, nil
	case "goroutines":
		return ExecGoroutines, nil
	case "stepped":
		return ExecStepped, nil
	}
	return ExecAuto, fmt.Errorf("mcnet: unknown exec mode %q (valid: auto, goroutines, stepped)", name)
}

// Exec selects the execution mode (default ExecAuto). See ExecMode.
func Exec(m ExecMode) Option {
	return func(s *settings) error {
		switch m {
		case ExecAuto, ExecGoroutines, ExecStepped:
			s.exec = m
			return nil
		}
		return fmt.Errorf("mcnet: invalid exec mode %d", int(m))
	}
}

// JamModel selects the jamming adversary's channel-selection strategy for
// the Jamming option.
type JamModel int

const (
	// JamOblivious draws the jammed channels fresh each slot from a seeded
	// RNG independent of the execution — the oblivious adversary.
	JamOblivious JamModel = JamModel(fault.JamOblivious)
	// JamRoundRobin sweeps a block of k consecutive channels cyclically
	// across the channel space, one step per slot — a deterministic
	// adversary that disrupts every channel equally over time.
	JamRoundRobin JamModel = JamModel(fault.JamRoundRobin)
	// JamReactive jams the k channels that carried the most decoded traffic
	// in the previous slot — an eavesdropping adversary that chases the
	// protocol's actual schedule. Still deterministic: it observes only
	// engine-resolved state, so replays are bit-identical across exec modes
	// and worker counts.
	JamReactive JamModel = JamModel(fault.JamReactive)
	// JamAdaptive is a seeded ε-greedy bandit over channels: it learns which
	// channels carry traffic from decayed per-channel delivery scores and
	// occasionally explores a fresh random subset.
	JamAdaptive JamModel = JamModel(fault.JamAdaptive)
)

// String returns the model's CLI/spec name.
func (m JamModel) String() string { return fault.JamModel(m).String() }

// ByzStrategy selects what Byzantine nodes do with their own transmissions
// (see the Byzantine option).
type ByzStrategy int

const (
	// ByzCorrupt replaces every aggregation payload the node sends with a
	// fixed seeded lie — a consistent liar.
	ByzCorrupt ByzStrategy = ByzStrategy(fault.ByzCorrupt)
	// ByzEquivocate sends a different seeded lie per (slot, channel) — the
	// classic equivocation attack.
	ByzEquivocate ByzStrategy = ByzStrategy(fault.ByzEquivocate)
	// ByzSilent drops every transmission the node attempts while it keeps
	// its protocol role — a fail-silent traitor.
	ByzSilent ByzStrategy = ByzStrategy(fault.ByzSilent)
)

// String returns the strategy's CLI/spec name: corrupt, equivocate or silent.
func (s ByzStrategy) String() string { return fault.ByzStrategy(s).String() }

// ParseByzStrategy maps a CLI/spec name ("corrupt", "equivocate", "silent";
// "" means corrupt) to its ByzStrategy.
func ParseByzStrategy(name string) (ByzStrategy, error) {
	switch name {
	case "", "corrupt":
		return ByzCorrupt, nil
	case "equivocate":
		return ByzEquivocate, nil
	case "silent":
		return ByzSilent, nil
	}
	return ByzCorrupt, fmt.Errorf("mcnet: unknown byzantine strategy %q (valid: corrupt, equivocate, silent)", name)
}

// ChurnSpec configures node churn for the Churn option. Both mechanisms may
// be combined; explicit crashes win over the rate process on the same node.
type ChurnSpec struct {
	// CrashAt maps node IDs to the first slot at which they are dead: from
	// that slot on the node performs no further radio actions. IDs are
	// validated against the deployment at New time.
	CrashAt map[int]int
	// Rate crashes each remaining node independently with this probability
	// in [0, 1], at a seeded slot drawn uniformly from [From, Until).
	// Until = 0 means the run's full slot budget.
	Rate        float64
	From, Until int
}

// Loss sets a per-reception Bernoulli message-loss probability p in [0, 1]:
// every decoded message is independently suppressed with probability p,
// decided by a pure hash of (seed, slot, listener) so transcripts replay
// bit-identically. A lost message degrades to sensed power, exactly how the
// SINR layer presents an undecodable transmission. Loss(0) attaches the
// fault layer (results gain a FaultReport) but reproduces the fault-free
// transcript bit-for-bit.
//
// The fault options only record the spec; New validates the combined spec
// (ranges, jam headroom, crash-set node IDs) once the deployment is known,
// so fault.Spec.Validate stays the single rule set.
func Loss(p float64) Option {
	return func(s *settings) error {
		s.faults.LossProb = p
		s.faulted = true
		return nil
	}
}

// Jamming sets an adversary that jams k channels every slot under the given
// model: nothing decodes on a jammed channel, but listeners still sense its
// power, as a real jammer would present. k must leave at least one channel
// usable (k < Channels, checked at New time). Jamming(0, model) attaches
// the fault layer without jamming anything.
func Jamming(k int, model JamModel) Option {
	return func(s *settings) error {
		s.faults.JamChannels = k
		s.faults.JamModel = fault.JamModel(model)
		s.faulted = true
		return nil
	}
}

// Byzantine marks a seeded-hash-chosen fraction of the deployment as
// Byzantine: instead of failing, those nodes keep playing their protocol
// roles while lying. Under ByzCorrupt every aggregation payload they send is
// replaced by a fixed seeded lie; under ByzEquivocate the lie differs per
// (slot, channel); under ByzSilent their transmissions are dropped entirely
// (they still listen, hold roles, and never look crashed). Membership is an
// exact seeded k-subset (k = round(fraction·n)), so the same seed always
// corrupts the same nodes. Byzantine(0, ...) attaches the fault layer but
// reproduces the fault-free transcript bit-for-bit.
//
// Survivor metrics (SurvivorsExact, SurvivorsAgreeing, ...) count honest
// nodes only; the chosen membership is reported in FaultReport.
func Byzantine(fraction float64, strategy ByzStrategy) Option {
	return func(s *settings) error {
		s.faults.Byz.Fraction = fraction
		s.faults.Byz.Strategy = fault.ByzStrategy(strategy)
		s.faulted = true
		return nil
	}
}

// ByzantineCount is Byzantine with an exact node count instead of a
// fraction.
func ByzantineCount(count int, strategy ByzStrategy) Option {
	return func(s *settings) error {
		s.faults.Byz.Count = count
		s.faults.Byz.Strategy = fault.ByzStrategy(strategy)
		s.faulted = true
		return nil
	}
}

// Churn sets node churn: nodes crash at explicit slots (spec.CrashAt)
// and/or at seeded random slots (spec.Rate). A crashed node performs no
// radio action at or after its crash slot; the run always completes and the
// result reports how gracefully the survivors degraded. An empty spec
// attaches the fault layer without crashing anyone.
func Churn(spec ChurnSpec) Option {
	return func(s *settings) error {
		if len(spec.CrashAt) > 0 {
			s.faults.CrashAt = make(map[int]int, len(spec.CrashAt))
			for id, slot := range spec.CrashAt {
				s.faults.CrashAt[id] = slot
			}
		} else {
			s.faults.CrashAt = nil
		}
		s.faults.CrashRate = spec.Rate
		s.faults.CrashFrom, s.faults.CrashUntil = spec.From, spec.Until
		s.faulted = true
		return nil
	}
}

// Exact forces bit-exact SINR resolution: every listener scans every
// same-channel transmitter pairwise, exactly as the pre-hierarchical
// resolver did, so transcripts replay bit-identically across releases. The
// default is the hierarchical resolver (see FarFieldTolerance), which is
// asymptotically faster on spread-out deployments. Exact overrides
// FarFieldTolerance when both are given.
func Exact() Option {
	return func(s *settings) error {
		s.exact = true
		return nil
	}
}

// FarFieldTolerance sets the hierarchical resolver's relative error bound
// on far-field interference: each slot's transmitters are binned into a
// spatial grid, cells near a listener are scanned exactly, and cells far
// from it contribute their summed power from the cell centroid, with
// relative error at most tol on the far-field interference term. The
// resolver default is 0.05; tol = 0 selects exact resolution (equivalent
// to Exact, and this knob's historical meaning). Decoding candidates are always evaluated exactly — the near
// field covers the transmission range — so decode outcomes can differ from
// exact mode only when the SINR sits within the far-field error of the
// threshold β. Runs remain deterministic for a fixed tolerance at every
// worker count.
func FarFieldTolerance(tol float64) Option {
	return func(s *settings) error {
		if tol < 0 || tol != tol || tol > 1e18 {
			return fmt.Errorf("mcnet: FarFieldTolerance = %v must be a finite value ≥ 0", tol)
		}
		s.farFieldTol = tol
		return nil
	}
}

// Float32Kernel selects the divide-free float32 SINR kernel for slot
// resolution: per-pair received powers come from a float32 inverse-sqrt
// iteration (no divides or square roots in the inner loop) with relative
// error at most phy.Float32KernelTolerance on every accumulated power —
// signal, interference, RSSI — versus the default float64 kernel. Decode
// decisions can differ only when the SINR sits within that error of the
// threshold β.
//
// Default off: the float64 kernel is frozen by the repository's
// transcript-replay contracts. Runs under the f32 kernel are themselves
// fully deterministic — bit-identical per (seed, kernel) at every
// Parallelism setting — but are NOT transcript-compatible with f64 runs.
// Requires α = 3 (the default; checked against the SINR option at New
// time).
func Float32Kernel() Option {
	return func(s *settings) error {
		s.kernel32 = true
		return nil
	}
}

// ResolverCellSize sizes the hierarchical resolver's grid cells as
// frac·R_T (default 0.5). Smaller cells tighten the exactly-scanned near
// region around each listener at the cost of more cells; the error bound
// of FarFieldTolerance holds for every setting — only performance changes.
func ResolverCellSize(frac float64) Option {
	return func(s *settings) error {
		if !(frac > 0) || frac > 1e6 || frac != frac {
			return fmt.Errorf("mcnet: ResolverCellSize = %v must be a positive finite fraction of R_T", frac)
		}
		s.cellFrac = frac
		return nil
	}
}
