package mcnet

import "fmt"

// settings collects everything New derives a Network from. Options mutate
// it; zero-valued fields fall back to documented defaults.
type settings struct {
	channels  int
	seed      uint64
	nEstimate int
	topo      Topology

	alpha, beta, noise float64
	epsilon            float64

	deltaHat, phiMax, hopBound int // 0 = derive from topology
	maxSlots                   int

	parallelism int     // slot-resolution workers; 0 = GOMAXPROCS
	farFieldTol float64 // far-field relative error; 0 = exact
}

func defaultSettings() settings {
	return settings{
		channels: 4,
		seed:     1,
		topo:     Crowd,
		alpha:    3.0,
		beta:     1.5,
		noise:    1.0,
		epsilon:  0.3,
	}
}

// Option configures a Network under construction.
type Option func(*settings) error

// Channels sets the number F of non-overlapping radio channels (default 4).
func Channels(f int) Option {
	return func(s *settings) error {
		if f < 1 {
			return fmt.Errorf("mcnet: channels = %d must be ≥ 1", f)
		}
		s.channels = f
		return nil
	}
}

// Seed sets the run seed (default 1). Layouts and every protocol run are
// deterministic functions of the seed, so two Networks built with equal
// options behave identically.
func Seed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithTopology selects the node placement and its derived pipeline sizing
// (default Crowd). See Topology for the built-in generators.
func WithTopology(t Topology) Option {
	return func(s *settings) error {
		if t == nil {
			return fmt.Errorf("mcnet: topology must not be nil")
		}
		s.topo = t
		return nil
	}
}

// SINR overrides the path-loss exponent α (> 2) and decoding threshold
// β (≥ 1). The transmission power is renormalized so R_T stays 1.
func SINR(alpha, beta float64) Option {
	return func(s *settings) error {
		if alpha <= 2 {
			return fmt.Errorf("mcnet: alpha = %v must be > 2 in the plane", alpha)
		}
		if beta < 1 {
			return fmt.Errorf("mcnet: beta = %v must be ≥ 1", beta)
		}
		s.alpha, s.beta = alpha, beta
		return nil
	}
}

// Epsilon sets the communication-graph margin ε in (0, 1): links span
// R_ε = (1-ε)·R_T (default 0.3).
func Epsilon(eps float64) Option {
	return func(s *settings) error {
		if eps <= 0 || eps >= 1 {
			return fmt.Errorf("mcnet: epsilon = %v must be in (0, 1)", eps)
		}
		s.epsilon = eps
		return nil
	}
}

// NEstimate sets the polynomial size estimate n̂ the nodes are allowed to
// know (default: the true n). Protocols scale their round counts by ln n̂.
func NEstimate(nHat int) Option {
	return func(s *settings) error {
		if nHat < 2 {
			return fmt.Errorf("mcnet: size estimate = %d must be ≥ 2", nHat)
		}
		s.nEstimate = nHat
		return nil
	}
}

// DeltaHat overrides the derived cluster-size bound Δ̂. By default it is
// derived from the topology (e.g. n for Crowd, measured max degree for
// Positions).
func DeltaHat(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: DeltaHat = %d must be ≥ 1", v)
		}
		s.deltaHat = v
		return nil
	}
}

// PhiMax overrides the derived TDMA period (upper bound on cluster colors).
func PhiMax(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: PhiMax = %d must be ≥ 1", v)
		}
		s.phiMax = v
		return nil
	}
}

// HopBound overrides the derived backbone hop-diameter bound.
func HopBound(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: HopBound = %d must be ≥ 1", v)
		}
		s.hopBound = v
		return nil
	}
}

// MaxSlots caps a run's slot count as a safety net (default: the
// simulator's built-in bound).
func MaxSlots(v int) Option {
	return func(s *settings) error {
		if v < 1 {
			return fmt.Errorf("mcnet: MaxSlots = %d must be ≥ 1", v)
		}
		s.maxSlots = v
		return nil
	}
}

// Parallelism sets how many workers each slot's SINR resolution may fan
// listeners out across: 0 (the default) sizes the pool by GOMAXPROCS, 1
// forces serial resolution. Every setting produces bit-identical results —
// listeners resolve independently — so this knob trades wall-clock time
// only and never affects transcripts.
func Parallelism(workers int) Option {
	return func(s *settings) error {
		if workers < 0 {
			return fmt.Errorf("mcnet: Parallelism = %d must be ≥ 0", workers)
		}
		s.parallelism = workers
		return nil
	}
}

// FarFieldTolerance enables approximate far-field interference aggregation:
// transmitters are bucketed into a spatial grid and cells far from a
// listener contribute their summed power from the cell centroid, with
// relative error at most tol on the far-field interference term. The
// default, 0, keeps resolution exact. Positive tolerances speed up large
// spread-out deployments; decoding candidates are always evaluated exactly
// (the near field covers the transmission range), so decode outcomes can
// differ from exact mode only when the SINR sits within the far-field error
// of the threshold β. Runs remain deterministic for a fixed tolerance.
func FarFieldTolerance(tol float64) Option {
	return func(s *settings) error {
		if tol < 0 || tol != tol || tol > 1e18 {
			return fmt.Errorf("mcnet: FarFieldTolerance = %v must be a finite value ≥ 0", tol)
		}
		s.farFieldTol = tol
		return nil
	}
}
