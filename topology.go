package mcnet

import (
	"fmt"
	"math"
	"math/rand"

	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/topology"
)

// Point is a node position in the plane.
type Point struct {
	X, Y float64
}

// Geometry exposes the radii derived from the SINR parameters that topology
// generators and sizing heuristics need.
type Geometry struct {
	// TransmissionRange is R_T: the maximum decoding distance absent
	// interference.
	TransmissionRange float64
	// CommRadius is R_ε = (1-ε)·R_T: the communication-graph link radius.
	CommRadius float64
	// ClusterRadius is r_c: the dominating-set radius of the aggregation
	// structure (Sec. 5.1.1).
	ClusterRadius float64
}

// Defaults are the pipeline sizing parameters a topology derives for an
// n-node instance. Zero fields mean "no opinion" and fall back to generic
// values; explicit options (DeltaHat, PhiMax, HopBound) always win.
type Defaults struct {
	// DeltaHat bounds cluster sizes (the paper's Δ̂), sizing the CSA and
	// follower stages.
	DeltaHat int
	// PhiMax is the TDMA period: an upper bound on cluster colors in use.
	PhiMax int
	// HopBound bounds the backbone hop diameter, sizing backbone budgets.
	HopBound int
}

// Topology produces node placements and derives pipeline sizing for them.
// Implementations must be deterministic functions of (n, seed, geometry).
//
// The built-in topologies (Crowd, Uniform, Grid, Line, Chain, Corridor,
// Ring, Hotspot, Positions) cover the paper's experiment workloads; custom
// implementations plug in the same way.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Layout returns the node positions. It may return a different count
	// than n when the shape dictates one (e.g. Hotspot's clusters×size);
	// the network then uses len(result) nodes.
	Layout(n int, seed uint64, g Geometry) []Point
	// Defaults derives pipeline sizing for an n-node instance.
	Defaults(n int, g Geometry) Defaults
}

// topologyValidator lets parameterized built-ins reject out-of-range
// constructor arguments from New with a descriptive error instead of
// silently substituting a geometry.
type topologyValidator interface{ validate() error }

// layoutRand is the shared layout-stream derivation, so facade layouts
// match experiment-suite layouts for equal seeds.
func layoutRand(seed uint64) *rand.Rand { return topology.LayoutRand(seed) }

func fromGeo(pts []geo.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}

func toGeo(pts []Point) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[i] = geo.Point{X: p.X, Y: p.Y}
	}
	return out
}

// Crowd is the paper's motivating dense workload: every node inside one
// cluster radius (Δ = n-1), isolating the Δ/F aggregation term. It is the
// default topology of New.
var Crowd Topology = crowdTopo{}

type crowdTopo struct{}

func (crowdTopo) Name() string { return "crowd" }

func (crowdTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.Crowd(layoutRand(seed), n, g.ClusterRadius))
}

func (crowdTopo) Defaults(n int, g Geometry) Defaults {
	// One dense cluster: the cluster can hold everyone, few cluster colors
	// are in use, and the backbone is a single hop neighborhood.
	return Defaults{DeltaHat: n, PhiMax: 4, HopBound: 2}
}

// Uniform places nodes uniformly in a square sized for the given expected
// communication-graph degree: the constant-density workhorse workload.
func Uniform(targetDegree float64) Topology { return uniformTopo{deg: targetDegree} }

type uniformTopo struct{ deg float64 }

func (t uniformTopo) Name() string { return "uniform" }

func (t uniformTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.UniformDegree(layoutRand(seed), n, g.CommRadius, t.deg))
}

func (t uniformTopo) Defaults(n int, g Geometry) Defaults {
	// The same side/degree computation the layout uses, so sizing cannot
	// drift from placement.
	side, deg := topology.UniformSide(n, g.CommRadius, t.deg)
	// Cluster sizes track local density; leave slack over the expectation.
	deltaHat := clampInt(int(math.Ceil(4*deg)), 2, n)
	// Hop diameter tracks the square's diagonal in communication radii.
	hops := int(math.Ceil(side * math.Sqrt2 / g.CommRadius))
	return Defaults{DeltaHat: deltaHat, PhiMax: 10, HopBound: hops + 4}
}

// Grid places nodes on a √n × √n grid with spacing half the communication
// radius, jittered by ±10% of the radius.
var Grid Topology = gridTopo{}

type gridTopo struct{}

func (gridTopo) Name() string { return "grid" }

func (gridTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.PerturbedGrid(layoutRand(seed), n, 0.5*g.CommRadius, 0.1*g.CommRadius))
}

func (gridTopo) Defaults(n int, g Geometry) Defaults {
	// Spacing 0.5·R_ε puts ~π·2² ≈ 12 grid points within one radius.
	side := math.Ceil(math.Sqrt(float64(n))) * 0.5 * g.CommRadius
	hops := int(math.Ceil(side * math.Sqrt2 / g.CommRadius))
	return Defaults{DeltaHat: clampInt(16, 2, n), PhiMax: 10, HopBound: hops + 4}
}

// Line places nodes on the x-axis spaced by the given fraction (in (0, 1])
// of the communication radius: the maximum-diameter connected workload.
func Line(spacingFrac float64) Topology { return lineTopo{frac: spacingFrac} }

type lineTopo struct{ frac float64 }

func (t lineTopo) Name() string { return "line" }

func (t lineTopo) validate() error {
	if t.frac <= 0 || t.frac > 1 {
		return fmt.Errorf("mcnet: Line spacing fraction = %v must be in (0, 1]", t.frac)
	}
	return nil
}

func (t lineTopo) spacing(g Geometry) float64 { return t.frac * g.CommRadius }

func (t lineTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.Line(n, t.spacing(g)))
}

func (t lineTopo) Defaults(n int, g Geometry) Defaults {
	s := t.spacing(g)
	perRadius := int(math.Ceil(2*g.CommRadius/s)) + 1
	hops := int(math.Ceil(float64(n) * s / g.CommRadius))
	return Defaults{
		DeltaHat: clampInt(perRadius, 2, n),
		PhiMax:   10,
		HopBound: hops + 4,
	}
}

// Chain is the exponential chain x_i = 2^i: the Sec. 1 lower-bound instance
// on which sink-directed transmissions serialize. It is intended for
// topology inspection and the E8 experiment; the aggregation pipeline
// assumes connectivity this instance lacks under default power.
var Chain Topology = chainTopo{}

type chainTopo struct{}

func (chainTopo) Name() string { return "chain" }

func (chainTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.ExponentialChain(n, 1))
}

func (chainTopo) Defaults(n int, g Geometry) Defaults {
	return Defaults{DeltaHat: n, PhiMax: 4, HopBound: max(2, n)}
}

// Corridor places nodes uniformly in a strip of the given length (in
// communication radii) and width 0.6 radii: the growing-diameter workload
// for the D term of Theorem 22.
func Corridor(lengthRadii int) Topology { return corridorTopo{length: lengthRadii} }

type corridorTopo struct{ length int }

func (t corridorTopo) Name() string { return "corridor" }

func (t corridorTopo) validate() error {
	if t.length < 1 {
		return fmt.Errorf("mcnet: Corridor length = %d must be ≥ 1 communication radius", t.length)
	}
	return nil
}

func (t corridorTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.Corridor(layoutRand(seed), n, float64(t.length)*g.CommRadius, 0.6*g.CommRadius))
}

func (t corridorTopo) Defaults(n int, g Geometry) Defaults {
	// The E10 sizing: narrow strips keep clusters small, need one cluster
	// color per corridor cell, and the backbone walks the strip.
	return Defaults{
		DeltaHat: clampInt(24, 2, n),
		PhiMax:   24,
		HopBound: 3*t.length + 6,
	}
}

// Ring places nodes evenly on a circle with the given spacing as a fraction
// (in (0, 1]) of the communication radius.
func Ring(spacingFrac float64) Topology { return ringTopo{frac: spacingFrac} }

type ringTopo struct{ frac float64 }

func (t ringTopo) Name() string { return "ring" }

func (t ringTopo) validate() error {
	if t.frac <= 0 || t.frac > 1 {
		return fmt.Errorf("mcnet: Ring spacing fraction = %v must be in (0, 1]", t.frac)
	}
	return nil
}

func (t ringTopo) spacing(g Geometry) float64 { return t.frac * g.CommRadius }

func (t ringTopo) Layout(n int, seed uint64, g Geometry) []Point {
	radius := float64(n) * t.spacing(g) / (2 * math.Pi)
	return fromGeo(topology.Ring(n, radius))
}

func (t ringTopo) Defaults(n int, g Geometry) Defaults {
	s := t.spacing(g)
	perRadius := int(math.Ceil(2*g.CommRadius/s)) + 1
	hops := int(math.Ceil(float64(n)*s/g.CommRadius))/2 + 1
	return Defaults{
		DeltaHat: clampInt(perRadius, 2, n),
		PhiMax:   10,
		HopBound: hops + 4,
	}
}

// Hotspot places clusters of Gaussian blobs: centers uniform in a
// span × span square (in communication radii), members with the given
// standard deviation (also in radii). The node count is
// clusters × perCluster regardless of the n passed to New.
func Hotspot(clusters, perCluster int, spanRadii, stddevRadii float64) Topology {
	return hotspotTopo{clusters: clusters, per: perCluster, span: spanRadii, stddev: stddevRadii}
}

type hotspotTopo struct {
	clusters, per int
	span, stddev  float64
}

func (t hotspotTopo) Name() string { return "hotspot" }

func (t hotspotTopo) validate() error {
	switch {
	case t.clusters < 1 || t.per < 1:
		return fmt.Errorf("mcnet: Hotspot needs ≥ 1 cluster of ≥ 1 node, got %d × %d", t.clusters, t.per)
	case t.span <= 0:
		return fmt.Errorf("mcnet: Hotspot span = %v must be positive", t.span)
	case t.stddev < 0:
		return fmt.Errorf("mcnet: Hotspot stddev = %v must be ≥ 0", t.stddev)
	}
	return nil
}

func (t hotspotTopo) Layout(n int, seed uint64, g Geometry) []Point {
	return fromGeo(topology.Hotspot(layoutRand(seed), t.clusters, t.per,
		t.span*g.CommRadius, t.stddev*g.CommRadius))
}

func (t hotspotTopo) Defaults(n int, g Geometry) Defaults {
	// Centers spread over a span × span square (in radii): the backbone
	// walks at most its diagonal.
	hops := int(math.Ceil(math.Max(t.span, 1) * math.Sqrt2))
	return Defaults{
		DeltaHat: clampInt(2*t.per, 2, t.clusters*t.per),
		PhiMax:   10,
		HopBound: hops + 4,
	}
}

// Positions wraps explicit node coordinates as a Topology. The pipeline
// sizing is measured from the induced communication graph (max degree and
// approximate diameter), so callers need not guess DeltaHat or HopBound for
// irregular deployments.
func Positions(pts []Point) Topology { return positionsTopo{pts: pts} }

type positionsTopo struct{ pts []Point }

func (t positionsTopo) Name() string { return "positions" }

func (t positionsTopo) Layout(n int, seed uint64, g Geometry) []Point {
	out := make([]Point, len(t.pts))
	copy(out, t.pts)
	return out
}

func (t positionsTopo) Defaults(n int, g Geometry) Defaults {
	if len(t.pts) == 0 {
		return Defaults{}
	}
	gr := graph.Build(toGeo(t.pts), g.CommRadius)
	diam := gr.DiameterApprox()
	if diam < 0 { // disconnected: bound by the node count
		diam = len(t.pts)
	}
	return Defaults{
		DeltaHat: clampInt(gr.MaxDegree()+1, 2, len(t.pts)),
		PhiMax:   10,
		HopBound: diam + 4,
	}
}

func clampInt(v, lo, hi int) int { return min(max(v, lo), hi) }
