package mcnet

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestScenarioSpecGoldenRoundTrip: the document form is stable — a fully
// populated spec marshals to exactly the golden JSON, and the golden JSON
// parses back to the same spec.
func TestScenarioSpecGoldenRoundTrip(t *testing.T) {
	sp := ScenarioSpec{
		Name:          "storm",
		N:             64,
		Topology:      "uniform",
		TopologyParam: 10,
		Channels:      6,
		Loss:          []float64{0, 0.1},
		Jam:           []int{0, 2},
		Churn:         []float64{0.05},
		JamModel:      "roundrobin",
		Seeds:         3,
		BaseSeed:      7,
		Op:            "max",
	}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"name":"storm","n":64,"topology":"uniform","topology_param":10,` +
		`"channels":6,"loss":[0,0.1],"jam":[0,2],"churn":[0.05],` +
		`"jam_model":"roundrobin","seeds":3,"base_seed":7,"op":"max"}`
	if string(data) != golden {
		t.Fatalf("marshal drifted from golden document:\n got %s\nwant %s", data, golden)
	}
	back, err := ParseScenarioSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	round, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != golden {
		t.Fatalf("round trip drifted:\n got %s\nwant %s", round, golden)
	}
}

// TestScenarioSpecDefaults: the minimal document is runnable and fills
// Scenario defaults (crowd topology, 4 channels, sum, oblivious).
func TestScenarioSpecDefaults(t *testing.T) {
	sp, err := ParseScenarioSpec([]byte(`{"n": 16}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.N != 16 || sc.Op.Name() != "sum" || sc.JamModel != JamOblivious {
		t.Fatalf("defaults not applied: %+v", sc)
	}
	sw, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 1 {
		t.Fatalf("minimal spec expands to %d items, want 1", sw.Len())
	}
}

// TestScenarioSpecFieldErrors: every invalid field is rejected with a
// message naming that field.
func TestScenarioSpecFieldErrors(t *testing.T) {
	cases := []struct {
		doc  string
		want string
	}{
		{`{"n": 1}`, `"n"`},
		{`{"n": 16, "loss": [0, 1.5]}`, `"loss[1]"`},
		{`{"n": 16, "jam": [-1]}`, `"jam[0]"`},
		{`{"n": 16, "channels": 2, "jam": [0, 2]}`, `"jam[1]"`},
		{`{"n": 16, "churn": [2]}`, `"churn[0]"`},
		{`{"n": 16, "jam_model": "psychic"}`, `"jam_model"`},
		{`{"n": 16, "op": "median"}`, `"op"`},
		{`{"n": 16, "topology": "torus"}`, `"topology"`},
		{`{"n": 16, "topology": "grid", "topology_param": 3}`, `"topology_param"`},
		{`{"n": 16, "topology": "line", "topology_param": 1.5}`, `"topology_param"`},
		{`{"n": 16, "seeds": -1}`, `"seeds"`},
		{`{"n": 16, "colorer": "rainbow"}`, `"colorer"`},
		{`{"n": 16, "bogus": true}`, `bogus`},
		{`{"n": 16} {"n": 8}`, `trailing`},
	}
	for _, c := range cases {
		_, err := ParseScenarioSpec([]byte(c.doc))
		if err == nil {
			t.Errorf("doc %s accepted, want error mentioning %s", c.doc, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("doc %s: error %q does not mention %s", c.doc, err, c.want)
		}
	}
}

// TestScenarioSpecColorer: the colorer field survives the wire and is
// threaded into the built network — coloring the spec's scenario runs the
// pinned backend.
func TestScenarioSpecColorer(t *testing.T) {
	sp, err := ParseScenarioSpec([]byte(`{"n": 20, "channels": 4, "colorer": "dplus1"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"colorer":"dplus1"`) {
		t.Errorf("colorer dropped on marshal: %s", data)
	}
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(sc.N, sc.Options...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Color(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "dplus1" {
		t.Errorf("Backend = %q, want dplus1", res.Backend)
	}
}

// TestRunSpecGoldenRoundTrip: RunSpec's wire form is stable and
// round-trips through names for the jam model, aggregate and churn.
func TestRunSpecGoldenRoundTrip(t *testing.T) {
	rs := RunSpec{
		Seed:     9,
		Loss:     0.25,
		Jam:      1,
		JamModel: JamRoundRobin,
		Churn:    ChurnSpec{CrashAt: map[int]int{3: 40}, Rate: 0.1, From: 8, Until: 64},
		Faulted:  true,
		Values:   []int64{5, -2, 7},
		Op:       Max,
	}
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"seed":9,"loss":0.25,"jam":1,"jam_model":"roundrobin",` +
		`"churn":{"crash_at":{"3":40},"rate":0.1,"from":8,"until":64},` +
		`"faulted":true,"values":[5,-2,7],"op":"max"}`
	if string(data) != golden {
		t.Fatalf("marshal drifted from golden document:\n got %s\nwant %s", data, golden)
	}
	var back RunSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	round, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != golden {
		t.Fatalf("round trip drifted:\n got %s\nwant %s", round, golden)
	}
	if back.Op.Name() != "max" || back.JamModel != JamRoundRobin || back.Churn.CrashAt[3] != 40 {
		t.Fatalf("decoded spec lost fields: %+v", back)
	}

	// The zero spec stays minimal on the wire.
	minimal, err := json.Marshal(RunSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(minimal) != `{"seed":1}` {
		t.Fatalf("zero spec marshals to %s, want {\"seed\":1}", minimal)
	}
}

// TestRunSpecErrors: bad wire documents name the offending field, and a
// custom aggregator refuses to serialize rather than emitting a document
// that cannot round-trip.
func TestRunSpecErrors(t *testing.T) {
	for _, c := range []struct{ doc, want string }{
		{`{"seed": 1, "loss": -0.5}`, `"loss"`},
		{`{"seed": 1, "jam": -2}`, `"jam"`},
		{`{"seed": 1, "jam_model": "psychic"}`, `"jam_model"`},
		{`{"seed": 1, "churn": {"rate": 3}}`, `"churn.rate"`},
		{`{"seed": 1, "op": "median"}`, `"op"`},
		{`{"seed": 1, "bogus": 2}`, `bogus`},
	} {
		var rs RunSpec
		err := json.Unmarshal([]byte(c.doc), &rs)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("doc %s: err %v, want mention of %s", c.doc, err, c.want)
		}
	}

	custom := NewAggregator("xor", 0, func(a, b int64) int64 { return a ^ b })
	if _, err := json.Marshal(RunSpec{Seed: 1, Op: custom}); err == nil {
		t.Error("custom aggregator serialized; want error")
	}
}

// TestSpecSweepMatchesRunScenario: compiling a spec document and folding
// its item results yields byte-for-byte the table RunScenario emits for
// the equivalent Scenario — the identity the scenario service's
// durability guarantee is built on.
func TestSpecSweepMatchesRunScenario(t *testing.T) {
	sp, err := ParseScenarioSpec([]byte(
		`{"name": "svc", "n": 24, "channels": 3, "loss": [0, 0.1], "jam": [0, 1], "seeds": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	sw, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Run the items out of order, as a resumed service would.
	results := make([]RunResult, sw.Len())
	for i := sw.Len() - 1; i >= 0; i-- {
		results[i], err = sw.Run(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := sw.Fold(results)
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Errorf("sweep fold differs from RunScenario:\n%s\n---\n%s", got.Render(), want.Render())
	}
	if got.CSV() != want.CSV() {
		t.Errorf("sweep fold CSV differs from RunScenario")
	}
}
