package mcnet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAggregateQuickstart is the quickstart scenario end-to-end: a dense
// 48-node crowd on 4 channels computing a sum. The network-wide fold must
// match, and essentially every node must learn the exact aggregate.
func TestAggregateQuickstart(t *testing.T) {
	const n = 48
	nw, err := New(n, Channels(4), Seed(42), WithTopology(Crowd))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(10 + i)
		want += values[i]
	}
	res, err := nw.Aggregate(context.Background(), values, Sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Errorf("Value = %d, want %d", res.Value, want)
	}
	if res.Exact < n*9/10 {
		t.Errorf("Exact = %d/%d, want ≥ 90%%", res.Exact, n)
	}
	if res.Dominators < 1 {
		t.Errorf("Dominators = %d, want ≥ 1", res.Dominators)
	}
	if res.Reporters < 1 {
		t.Errorf("Reporters = %d, want ≥ 1", res.Reporters)
	}
	if res.Slots <= 0 || res.Slots > res.BudgetSlots {
		t.Errorf("Slots = %d, want in (0, %d]", res.Slots, res.BudgetSlots)
	}
	if res.BuildSlots <= 0 || res.BuildSlots >= res.BudgetSlots {
		t.Errorf("BuildSlots = %d, BudgetSlots = %d: want 0 < build < budget",
			res.BuildSlots, res.BudgetSlots)
	}
	if res.AckSlots <= 0 {
		t.Errorf("AckSlots = %d, want > 0 (followers must be acknowledged)", res.AckSlots)
	}
	if len(res.Nodes) != n {
		t.Fatalf("len(Nodes) = %d, want %d", len(res.Nodes), n)
	}
	for i, nr := range res.Nodes {
		if nr.Informed && nr.Value != want && t.Failed() == false {
			t.Errorf("node %d informed with %d, want %d", i, nr.Value, want)
		}
	}
}

// TestAggregateMax checks a non-default operator and that repeated runs on
// one Network are deterministic.
func TestAggregateMax(t *testing.T) {
	const n = 32
	nw, err := New(n, Channels(4), Seed(7))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, n)
	for i := range values {
		values[i] = int64((i * 37) % 101)
	}
	r1, err := nw.Aggregate(context.Background(), values, Max)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := nw.Aggregate(context.Background(), values, Max)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Value != 100 {
		t.Errorf("Value = %d, want 100", r1.Value)
	}
	if r1.Slots != r2.Slots || r1.Exact != r2.Exact || r1.AckSlots != r2.AckSlots {
		t.Errorf("repeated runs diverged: (%d,%d,%d) vs (%d,%d,%d)",
			r1.Slots, r1.Exact, r1.AckSlots, r2.Slots, r2.Exact, r2.AckSlots)
	}
}

// TestAggregateCancelledContext: an already-cancelled context returns
// ctx.Err() without running the schedule.
func TestAggregateCancelledContext(t *testing.T) {
	const n = 32
	nw, err := New(n, Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = nw.Aggregate(ctx, make([]int64, n), Sum)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled run took %v, want prompt return", elapsed)
	}
}

// TestAggregateMidRunCancellation: cancelling mid-run aborts the round loop
// promptly instead of finishing the schedule.
func TestAggregateMidRunCancellation(t *testing.T) {
	const n = 96
	// One channel makes the contention phase long enough that the deadline
	// strikes mid-run.
	nw, err := New(n, Channels(1), Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = nw.Aggregate(ctx, make([]int64, n), Sum)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestAggregateValidation rejects malformed inputs.
func TestAggregateValidation(t *testing.T) {
	nw, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Aggregate(context.Background(), make([]int64, 5), Sum); err == nil {
		t.Error("wrong value count accepted")
	}
	if _, err := nw.Aggregate(context.Background(), make([]int64, 16), nil); err == nil {
		t.Error("nil aggregator accepted")
	}
}

// TestEventsStreaming: registered observers see milestone events live, with
// slots inside the schedule budget.
func TestEventsStreaming(t *testing.T) {
	const n = 32
	nw, err := New(n, Channels(4), Seed(9))
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu       sync.Mutex
		total    int
		informed int
		maxSlot  int
	)
	nw.Events(func(ev Event) {
		mu.Lock()
		total++
		if ev.Name == EventInformed {
			informed++
		}
		if ev.Slot > maxSlot {
			maxSlot = ev.Slot
		}
		mu.Unlock()
	})
	res, err := nw.Aggregate(context.Background(), make([]int64, n), Sum)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if total == 0 {
		t.Fatal("no events streamed")
	}
	if informed != res.Informed {
		t.Errorf("streamed %d informed events, result says %d", informed, res.Informed)
	}
	// Events emitted after the final slot are stamped with the budget end.
	if maxSlot > res.BudgetSlots {
		t.Errorf("event slot %d outside budget %d", maxSlot, res.BudgetSlots)
	}
}

// TestChannelUtilization: the contention phase must use every available
// channel on a dense crowd.
func TestChannelUtilization(t *testing.T) {
	const n = 48
	nw, err := New(n, Channels(4), Seed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Aggregate(context.Background(), make([]int64, n), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChannelUtilization) != 4 {
		t.Fatalf("len(ChannelUtilization) = %d, want 4", len(res.ChannelUtilization))
	}
	for ch, u := range res.ChannelUtilization {
		if u < 0 || u > 1 {
			t.Errorf("channel %d utilization %v out of [0,1]", ch, u)
		}
		if u == 0 {
			t.Errorf("channel %d never used on a dense crowd", ch)
		}
	}
}

// TestStageReports: stage windows tile the budget and the follower stage
// observes acknowledgement events.
func TestStageReports(t *testing.T) {
	const n = 48
	nw, err := New(n, Channels(4), Seed(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Aggregate(context.Background(), make([]int64, n), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 9 {
		t.Fatalf("len(Stages) = %d, want 9", len(res.Stages))
	}
	prev := 0
	for _, st := range res.Stages {
		if st.Start != prev {
			t.Errorf("stage %s starts at %d, want %d (stages must tile)", st.Name, st.Start, prev)
		}
		if st.End < st.Start {
			t.Errorf("stage %s window [%d, %d) inverted", st.Name, st.Start, st.End)
		}
		if st.LastEvent >= 0 && (st.LastEvent < st.Start || st.LastEvent > st.End) {
			t.Errorf("stage %s LastEvent %d outside window [%d, %d]", st.Name, st.LastEvent, st.Start, st.End)
		}
		prev = st.End
	}
	if prev != res.BudgetSlots {
		t.Errorf("stages end at %d, budget is %d", prev, res.BudgetSlots)
	}
	var followers StageReport
	for _, st := range res.Stages {
		if st.Name == "followers" {
			followers = st
		}
	}
	if followers.Events == 0 {
		t.Error("follower stage observed no acknowledgement events")
	}
}

// TestColorRun: the coloring verb yields a conflict-free palette on the
// dense crowd and the TDMA check delivers the links.
func TestColorRun(t *testing.T) {
	const n = 40
	nw, err := New(n, Channels(4), Seed(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Color(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 {
		t.Errorf("Conflicts = %d, want 0", res.Conflicts)
	}
	if res.Uncolored > n/10 {
		t.Errorf("Uncolored = %d/%d, want ≤ 10%%", res.Uncolored, n)
	}
	if res.Palette < n-res.Uncolored {
		// On a clique-like crowd every colored node needs its own color.
		t.Errorf("Palette = %d with %d colored nodes on a crowd", res.Palette, n-res.Uncolored)
	}
	if res.ColorSlots <= 0 {
		t.Errorf("ColorSlots = %d, want > 0", res.ColorSlots)
	}

	rep, err := nw.VerifyTDMA(res.Colors())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links == 0 || rep.Delivered < rep.Links*8/10 {
		t.Errorf("TDMA delivered %d/%d links, want ≥ 80%%", rep.Delivered, rep.Links)
	}
}

// TestColorBackendsViaFacade: each pluggable backend runs through the
// Colorer option, stamps its name on the result, and on the clique-like
// crowd yields a proper, complete coloring whose TDMA replay delivers every
// link.
func TestColorBackendsViaFacade(t *testing.T) {
	const n = 36
	for _, backend := range ColorerNames() {
		nw, err := New(n, Channels(4), Seed(13), Colorer(backend))
		if err != nil {
			t.Fatalf("%s: New: %v", backend, err)
		}
		res, err := nw.Color(context.Background())
		if err != nil {
			t.Fatalf("%s: Color: %v", backend, err)
		}
		if res.Backend != backend {
			t.Errorf("Backend = %q, want %q", res.Backend, backend)
		}
		if res.Conflicts != 0 {
			t.Errorf("%s: Conflicts = %d, want 0", backend, res.Conflicts)
		}
		if backend != "sec7" && res.Uncolored != 0 {
			t.Errorf("%s: Uncolored = %d, want 0", backend, res.Uncolored)
		}
		if res.Cycle <= 0 || res.Rounds <= 0 || res.ColorSlots <= 0 {
			t.Errorf("%s: implausible stats cycle=%d rounds=%d colorSlots=%d",
				backend, res.Cycle, res.Rounds, res.ColorSlots)
		}
		if backend == "hsb" && res.Cycle >= res.Palette {
			// F colors share each TDMA slot: the whole point of the backend.
			t.Errorf("hsb: Cycle = %d not shorter than palette %d", res.Cycle, res.Palette)
		}
		if res.Uncolored == 0 {
			rep, err := nw.VerifyTDMA(res.Colors())
			if err != nil {
				t.Fatalf("%s: VerifyTDMA: %v", backend, err)
			}
			if rep.Delivered != rep.Links {
				t.Errorf("%s: TDMA delivered %d/%d links", backend, rep.Delivered, rep.Links)
			}
		}
	}
}

// TestColorerOptionValidation: unknown backend names are rejected at New
// time with the valid set.
func TestColorerOptionValidation(t *testing.T) {
	_, err := New(16, Colorer("rainbow"))
	if err == nil {
		t.Fatal("Colorer(\"rainbow\") accepted")
	}
	if !strings.Contains(err.Error(), "rainbow") || !strings.Contains(err.Error(), "sec7") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestColorCancellation: Color honors context cancellation too.
func TestColorCancellation(t *testing.T) {
	nw, err := New(32, Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := nw.Color(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestNewValidation rejects malformed construction options.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		opts []Option
	}{
		{"tiny n", 1, nil},
		{"zero channels", 16, []Option{Channels(0)}},
		{"bad epsilon", 16, []Option{Epsilon(1.5)}},
		{"bad alpha", 16, []Option{SINR(1.5, 2)}},
		{"bad beta", 16, []Option{SINR(3, 0.5)}},
		{"nil topology", 16, []Option{WithTopology(nil)}},
		{"bad estimate", 16, []Option{NEstimate(1)}},
		{"bad deltahat", 16, []Option{DeltaHat(0)}},
		{"bad phimax", 16, []Option{PhiMax(-1)}},
		{"bad hopbound", 16, []Option{HopBound(0)}},
		{"bad line spacing", 16, []Option{WithTopology(Line(0))}},
		{"bad ring spacing", 16, []Option{WithTopology(Ring(1.5))}},
		{"bad corridor length", 16, []Option{WithTopology(Corridor(0))}},
		{"bad hotspot shape", 16, []Option{WithTopology(Hotspot(0, 16, 6, 0.07))}},
	}
	for _, tc := range cases {
		if _, err := New(tc.n, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestCustomAggregator: user-supplied operators plug in like built-ins.
func TestCustomAggregator(t *testing.T) {
	const n = 32
	or := NewAggregator("or", 0, func(a, b int64) int64 { return a | b })
	nw, err := New(n, Channels(4), Seed(13))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, n)
	for i := range values {
		values[i] = 1 << (i % 8)
	}
	res, err := nw.Aggregate(context.Background(), values, or)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0xff {
		t.Errorf("Value = %#x, want 0xff", res.Value)
	}
	if res.Exact < n*9/10 {
		t.Errorf("Exact = %d/%d, want ≥ 90%%", res.Exact, n)
	}
}
