package mcnet

import (
	"context"
	"fmt"
	"sync"

	"mcnet/internal/batch"
	"mcnet/internal/fault"
)

// RunSpec selects one aggregation run of a batch: a deployment seed plus
// the fault intensities layered onto the batch's base options. Runs of a
// batch that share a Seed also share their deployment — positions,
// topology-derived sizing, pipeline plan and graph precomputation are
// built once per distinct seed and reused across every fault intensity,
// exactly reproducing what building a fresh Network per run would have
// produced.
type RunSpec struct {
	// Seed is the run seed: it drives the layout and every protocol
	// decision, exactly as the Seed option does.
	Seed uint64

	// Loss, Jam/JamModel and Churn configure the run's fault layer with the
	// semantics of the equally named options. When Faulted is false and all
	// intensities are zero, the fault layer from the batch's base options
	// (if any) applies unchanged; otherwise these fields replace it
	// entirely, as appending the three fault options would.
	Loss     float64
	Jam      int
	JamModel JamModel
	Churn    ChurnSpec
	// Byz and ByzStrategy configure the Byzantine population with the
	// semantics of the Byzantine option: Byz is the fraction of nodes
	// corrupted, ByzStrategy what they do.
	Byz         float64
	ByzStrategy ByzStrategy
	// Faulted forces the fault layer on even at zero intensity — the
	// Loss(0) idiom: the run replays the fault-free transcript bit-for-bit
	// but its result carries a FaultReport.
	Faulted bool

	// Values are the per-node inputs; nil means 1..n (the standard sweep
	// workload). A non-nil slice must hold one value per deployed node.
	Values []int64
	// Op is the aggregate to compute (default Sum).
	Op Aggregator
}

// faultSpec converts the public fault fields to the internal spec, exactly
// as the Loss, Jamming and Churn options would set it.
func (rs RunSpec) faultSpec() fault.Spec {
	var fs fault.Spec
	fs.LossProb = rs.Loss
	fs.JamChannels = rs.Jam
	fs.JamModel = fault.JamModel(rs.JamModel)
	if len(rs.Churn.CrashAt) > 0 {
		fs.CrashAt = make(map[int]int, len(rs.Churn.CrashAt))
		for id, slot := range rs.Churn.CrashAt {
			fs.CrashAt[id] = slot
		}
	}
	fs.CrashRate = rs.Churn.Rate
	fs.CrashFrom, fs.CrashUntil = rs.Churn.From, rs.Churn.Until
	fs.Byz.Fraction = rs.Byz
	fs.Byz.Strategy = fault.ByzStrategy(rs.ByzStrategy)
	return fs
}

// faulted reports whether the spec carries its own fault layer.
func (rs RunSpec) faulted() bool {
	return rs.Faulted || rs.Loss != 0 || rs.Jam != 0 || rs.Churn.Rate != 0 ||
		len(rs.Churn.CrashAt) > 0 || rs.Byz != 0
}

// BatchOptions tunes RunBatch's execution; the zero value uses every core
// and reports no progress.
type BatchOptions struct {
	// Workers is the worker-pool size: 0 (the default) means GOMAXPROCS, 1
	// forces serial execution. Results are identical at every setting.
	Workers int
	// Progress, when non-nil, is called after each completed run with the
	// number of finished runs and the total. Calls are serialized but
	// arrive on worker goroutines; keep the callback fast.
	Progress func(done, total int)
}

// deploySet lazily builds one deployment per distinct spec seed: the first
// run to need a seed constructs it, later runs (any worker) reuse it.
// Errors are cached too, so every run of a broken deployment reports the
// same construction error. It is safe for concurrent use.
type deploySet struct {
	n           int
	base        []Option
	deployments map[uint64]*deployment
}

type deployment struct {
	once sync.Once
	nw   *Network
	err  error
}

// newDeploySet prepares the per-seed cache for the given specs.
func newDeploySet(n int, base []Option, specs []RunSpec) *deploySet {
	ds := &deploySet{n: n, base: base, deployments: make(map[uint64]*deployment, len(specs))}
	for _, rs := range specs {
		if _, ok := ds.deployments[rs.Seed]; !ok {
			ds.deployments[rs.Seed] = &deployment{}
		}
	}
	return ds
}

// run executes one spec's Aggregate against the shared deployment for its
// seed, with the spec's fault layer swapped in.
func (ds *deploySet) run(ctx context.Context, rs RunSpec) (*AggregateResult, error) {
	d := ds.deployments[rs.Seed]
	if d == nil {
		// A spec outside the prepared set still runs; it just pays its own
		// construction instead of sharing one.
		d = &deployment{}
	}
	d.once.Do(func() {
		opts := append(append(make([]Option, 0, len(ds.base)+1), ds.base...), Seed(rs.Seed))
		d.nw, d.err = New(ds.n, opts...)
	})
	if d.err != nil {
		return nil, d.err
	}
	nw := d.nw
	if rs.faulted() {
		var err error
		if nw, err = nw.withFaults(rs.faultSpec()); err != nil {
			return nil, err
		}
	}
	values := rs.Values
	if values == nil {
		values = make([]int64, nw.N())
		for j := range values {
			values[j] = int64(j + 1)
		}
	}
	op := rs.Op
	if op == nil {
		op = Sum
	}
	return nw.Aggregate(ctx, values, op)
}

// RunBatch executes one Aggregate run per spec across a worker pool and
// returns the results indexed like the specs. The batch is a deterministic
// function of (n, base, specs): every worker count yields the same results
// a serial loop over New + Aggregate would have produced, in the same
// order — parallelism trades wall-clock time only.
//
// Deployments are shared: specs with equal Seed reuse one Network
// construction (topology layout, sizing, pipeline plan), with only the
// per-spec fault layer swapped in, so a fault grid over s seeds costs s
// deployment builds instead of gridpoints×s. The base options must not
// include Seed — each spec carries its own.
//
// The first run error aborts the batch and is returned; if ctx is
// cancelled, RunBatch returns ctx.Err() promptly.
func RunBatch(ctx context.Context, n int, base []Option, specs []RunSpec, bo BatchOptions) ([]*AggregateResult, error) {
	if bo.Workers < 0 {
		return nil, fmt.Errorf("mcnet: batch workers = %d must be ≥ 0", bo.Workers)
	}
	ds := newDeploySet(n, base, specs)
	pool := batch.Pool{Workers: bo.Workers, Progress: bo.Progress}
	return batch.Map(ctx, pool, len(specs), func(ctx context.Context, i int) (*AggregateResult, error) {
		return ds.run(ctx, specs[i])
	})
}

// withFaults returns a Network sharing this one's deployment — positions,
// parameters, sizing and plan — with the fault layer replaced by spec. The
// spec is validated against the deployment exactly as New validates fault
// options. The copy starts with no event observers.
func (nw *Network) withFaults(spec fault.Spec) (*Network, error) {
	if err := spec.Validate(nw.N(), nw.params.Channels); err != nil {
		return nil, fmt.Errorf("mcnet: %w", err)
	}
	return &Network{
		params:      nw.params,
		topo:        nw.topo,
		seed:        nw.seed,
		pos:         nw.pos,
		cfg:         nw.cfg,
		plan:        nw.plan,
		maxSlots:    nw.maxSlots,
		parallelism: nw.parallelism,
		exact:       nw.exact,
		farFieldTol: nw.farFieldTol,
		cellFrac:    nw.cellFrac,
		kernel32:    nw.kernel32,
		faults:      spec,
		faulted:     true,
		colorer:     nw.colorer,
	}, nil
}
