package mcnet

import (
	"context"
	"fmt"

	"mcnet/internal/fault"
	"mcnet/internal/stats"
)

// Scenario describes a deterministic fault-intensity sweep: one deployment
// configuration run across a grid of loss probabilities, jammed-channel
// counts and churn rates, with a fixed number of seeded repetitions per grid
// point. RunScenario executes the full cross product and reports medians —
// for a fixed BaseSeed the emitted table is stable across runs.
type Scenario struct {
	// Name titles the report (default "scenario").
	Name string
	// N is the node count (≥ 2).
	N int
	// Options are the base construction options applied to every grid
	// point (topology, channels, SINR overrides, ...). Per-point Seed,
	// Loss, Jamming and Churn options are appended after them, so leave
	// those to the sweep.
	Options []Option
	// Loss, Jam and Churn are the sweep axes: loss probabilities,
	// jammed-channel counts, and rate-based churn probabilities. An empty
	// axis sweeps the single value 0.
	Loss  []float64
	Jam   []int
	Churn []float64
	// JamModel picks the jamming adversary (default JamOblivious).
	JamModel JamModel
	// Seeds is the number of repetitions per grid point (default 1);
	// repetition s runs with seed BaseSeed + s. BaseSeed defaults to 1.
	Seeds    int
	BaseSeed uint64
	// Op is the aggregate to compute (default Sum).
	Op Aggregator
}

// axes returns the sweep axes with empty ones widened to {0}.
func (sc Scenario) axes() (loss []float64, jam []int, churn []float64) {
	loss, jam, churn = sc.Loss, sc.Jam, sc.Churn
	if len(loss) == 0 {
		loss = []float64{0}
	}
	if len(jam) == 0 {
		jam = []int{0}
	}
	if len(churn) == 0 {
		churn = []float64{0}
	}
	return loss, jam, churn
}

// RunScenario executes the scenario's full fault grid and returns the
// report: one row per (loss, jam, churn) point with median latencies and
// informed / exact / surviving-exact rates across seeds. The sweep is a
// deterministic function of the scenario, so two consecutive runs emit
// identical tables. The run aborts promptly with ctx.Err() if ctx is
// cancelled between points.
func RunScenario(ctx context.Context, sc Scenario) (*Table, error) {
	if sc.N < 2 {
		return nil, fmt.Errorf("mcnet: scenario n = %d must be ≥ 2", sc.N)
	}
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	seeds := sc.Seeds
	if seeds < 1 {
		seeds = 1
	}
	baseSeed := sc.BaseSeed
	if baseSeed == 0 {
		baseSeed = 1
	}
	op := sc.Op
	if op == nil {
		op = Sum
	}
	loss, jam, churn := sc.axes()

	t := stats.NewTable(
		fmt.Sprintf("%s: fault sweep (n=%d, %d seeds/point)", name, sc.N, seeds),
		"loss", "jam", "churn", "informed", "exact", "surv_agree", "lost", "crashed", "ack_slots", "agg_slots")
	for _, lp := range loss {
		for _, k := range jam {
			for _, cr := range churn {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				var acks, aggs []float64
				informed, exact, total := 0, 0, 0
				survAgree, survivors := 0, 0
				lost, crashed := 0, 0
				for s := 0; s < seeds; s++ {
					opts := append([]Option{}, sc.Options...)
					opts = append(opts,
						Seed(baseSeed+uint64(s)),
						Loss(lp),
						Jamming(k, sc.JamModel),
						Churn(ChurnSpec{Rate: cr}),
					)
					nw, err := New(sc.N, opts...)
					if err != nil {
						return nil, err
					}
					n := nw.N()
					values := make([]int64, n)
					for i := range values {
						values[i] = int64(i + 1)
					}
					res, err := nw.Aggregate(ctx, values, op)
					if err != nil {
						return nil, err
					}
					informed += res.Informed
					exact += res.Exact
					total += n
					acks = append(acks, float64(res.AckSlots))
					aggs = append(aggs, float64(res.AggSlots))
					if fr := res.Faults; fr != nil {
						survAgree += fr.SurvivorsAgreeing
						survivors += fr.Survivors
						lost += fr.Lost
						crashed += len(fr.CrashedNodes)
					}
				}
				t.AddRow(
					stats.F(lp), stats.I(k), stats.F(cr),
					scenarioPct(informed, total), scenarioPct(exact, total),
					scenarioPct(survAgree, survivors),
					stats.I(lost), stats.I(crashed),
					stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
			}
		}
	}
	t.AddNote("jam model: %s; seeds %d..%d; surv_agree = largest consensus among informed survivors",
		fault.JamModel(sc.JamModel), baseSeed, baseSeed+uint64(seeds)-1)
	return &Table{t: t}, nil
}

func scenarioPct(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
}
