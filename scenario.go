package mcnet

import (
	"context"
	"fmt"

	"mcnet/internal/batch"
	"mcnet/internal/fault"
	"mcnet/internal/stats"
)

// Scenario describes a deterministic fault-intensity sweep: one deployment
// configuration run across a grid of loss probabilities, jammed-channel
// counts and churn rates, with a fixed number of seeded repetitions per grid
// point. RunScenario executes the full cross product and reports medians —
// for a fixed BaseSeed the emitted table is stable across runs and across
// worker counts.
type Scenario struct {
	// Name titles the report (default "scenario").
	Name string
	// N is the node count (≥ 2).
	N int
	// Options are the base construction options applied to every grid
	// point (topology, channels, SINR overrides, ...). Per-point Seed,
	// Loss, Jamming and Churn options are appended after them, so leave
	// those to the sweep.
	Options []Option
	// Loss, Jam and Churn are the sweep axes: loss probabilities,
	// jammed-channel counts, and rate-based churn probabilities. An empty
	// axis sweeps the single value 0. RunScenario validates the axes up
	// front: losses and churn rates must lie in [0, 1] and jam counts must
	// leave at least one of the deployment's channels usable.
	Loss  []float64
	Jam   []int
	Churn []float64
	// Byz is the Byzantine-fraction axis: per grid point, the fraction of
	// nodes corrupted as the Byzantine option would (an empty axis sweeps
	// the single value 0). ByzStrategy picks what the corrupted nodes do
	// (default ByzCorrupt).
	Byz         []float64
	ByzStrategy ByzStrategy
	// JamModel picks the jamming adversary (default JamOblivious).
	JamModel JamModel
	// Seeds is the number of repetitions per grid point (default 1);
	// repetition s runs with seed BaseSeed + s. BaseSeed defaults to 1.
	Seeds    int
	BaseSeed uint64
	// Op is the aggregate to compute (default Sum).
	Op Aggregator
	// Workers sizes the run pool: 0 (the default) uses GOMAXPROCS, 1
	// forces the serial sweep. The emitted table is byte-identical at
	// every setting.
	Workers int
	// Progress, when non-nil, is called after each completed run with the
	// number of finished runs and the total (grid points × seeds). Calls
	// are serialized but arrive on worker goroutines; keep it fast.
	Progress func(done, total int)
}

// axes returns the sweep axes with empty ones widened to {0}.
func (sc Scenario) axes() (loss []float64, jam []int, churn, byz []float64) {
	loss, jam, churn, byz = sc.Loss, sc.Jam, sc.Churn, sc.Byz
	if len(loss) == 0 {
		loss = []float64{0}
	}
	if len(jam) == 0 {
		jam = []int{0}
	}
	if len(churn) == 0 {
		churn = []float64{0}
	}
	if len(byz) == 0 {
		byz = []float64{0}
	}
	return loss, jam, churn, byz
}

// validateAxes rejects out-of-range sweep values before any run starts:
// loss and churn are probabilities, and a jam count that covers every
// channel would leave the adversary nothing to spare. channels is the
// deployment's channel count after applying the base options.
func validateAxes(loss []float64, jam []int, churn, byz []float64, channels int) error {
	for _, lp := range loss {
		if lp < 0 || lp > 1 || lp != lp {
			return fmt.Errorf("mcnet: scenario loss probability %v must be in [0, 1]", lp)
		}
	}
	for _, k := range jam {
		if k < 0 {
			return fmt.Errorf("mcnet: scenario jam count %d must be ≥ 0", k)
		}
		if k > 0 && k >= channels {
			return fmt.Errorf("mcnet: scenario jam count %d covers every one of %d channels; leave at least one usable", k, channels)
		}
	}
	for _, cr := range churn {
		if cr < 0 || cr > 1 || cr != cr {
			return fmt.Errorf("mcnet: scenario churn rate %v must be in [0, 1]", cr)
		}
	}
	for _, bf := range byz {
		if bf < 0 || bf > 1 || bf != bf {
			return fmt.Errorf("mcnet: scenario byzantine fraction %v must be in [0, 1]", bf)
		}
	}
	return nil
}

// validJamModel reports whether m names a known jamming adversary, so the
// sweep rejects it up front rather than after the first deployment build.
func validJamModel(m JamModel) bool {
	switch fault.JamModel(m) {
	case fault.JamOblivious, fault.JamRoundRobin, fault.JamReactive, fault.JamAdaptive:
		return true
	}
	return false
}

// validByzStrategy reports whether s names a known Byzantine strategy.
func validByzStrategy(s ByzStrategy) bool {
	switch fault.ByzStrategy(s) {
	case fault.ByzCorrupt, fault.ByzEquivocate, fault.ByzSilent:
		return true
	}
	return false
}

// RunResult is the serializable summary of one sweep run — exactly the
// fields a scenario's table fold consumes, so a table rebuilt from
// persisted RunResults is byte-identical to one folded from the live
// *AggregateResults. The scenario service stores one RunResult per
// completed (grid point × seed) item in its NDJSON result logs.
type RunResult struct {
	// Informed and Exact count nodes that learned some aggregate / the
	// exact fold; Nodes is the deployment size.
	Informed int `json:"informed"`
	Exact    int `json:"exact"`
	Nodes    int `json:"nodes"`
	// AckSlots and AggSlots are the event-measured aggregation latencies
	// (see AggregateResult).
	AckSlots int `json:"ack_slots"`
	AggSlots int `json:"agg_slots"`
	// Faulted records that the run carried a fault layer; the remaining
	// fields summarize its FaultReport and are zero otherwise.
	Faulted           bool `json:"faulted,omitempty"`
	Lost              int  `json:"lost,omitempty"`
	Crashed           int  `json:"crashed,omitempty"`
	Survivors         int  `json:"survivors,omitempty"`
	SurvivorsAgreeing int  `json:"survivors_agreeing,omitempty"`
	// SurvivorsExact counts honest survivors that learned the exact fold;
	// Byzantine, Corrupted and Dropped summarize the Byzantine layer's
	// membership and activity. All additive (omitted when zero), so records
	// persisted by earlier releases fold identically.
	SurvivorsExact int `json:"survivors_exact,omitempty"`
	Byzantine      int `json:"byzantine,omitempty"`
	Corrupted      int `json:"corrupted,omitempty"`
	Dropped        int `json:"dropped,omitempty"`
}

// SummarizeRun condenses an AggregateResult into the RunResult form a
// scenario fold consumes.
func SummarizeRun(res *AggregateResult) RunResult {
	rr := RunResult{
		Informed: res.Informed,
		Exact:    res.Exact,
		Nodes:    len(res.Nodes),
		AckSlots: res.AckSlots,
		AggSlots: res.AggSlots,
	}
	if fr := res.Faults; fr != nil {
		rr.Faulted = true
		rr.Lost = fr.Lost
		rr.Crashed = len(fr.CrashedNodes)
		rr.Survivors = fr.Survivors
		rr.SurvivorsAgreeing = fr.SurvivorsAgreeing
		rr.SurvivorsExact = fr.SurvivorsExact
		rr.Byzantine = len(fr.ByzantineNodes)
		rr.Corrupted = fr.Corrupted
		rr.Dropped = fr.Dropped
	}
	return rr
}

// Sweep is a compiled scenario: the validated, flattened (grid point ×
// seed) work items plus the fold that turns their results into the report
// table. RunScenario and the scenario service share it, which is what
// makes a served sweep's table byte-identical to an in-process run — both
// execute the same Run items in the same index order and fold the same
// RunResult records.
//
// Run is safe for concurrent use from multiple goroutines and may be
// called for any subset of indices in any order (a resumed sweep re-runs
// only the items that never landed); results are pure functions of
// (scenario, index).
type Sweep struct {
	name        string
	n           int
	seeds       int
	baseSeed    uint64
	jamModel    JamModel
	byzStrategy ByzStrategy
	loss        []float64
	jam         []int
	churn       []float64
	byz         []float64
	specs       []RunSpec
	deploy      *deploySet
}

// Compile validates the scenario and expands it into its sweep: one
// RunSpec per (loss, jam, churn, repetition) in nested-loop order. The
// scenario's Workers and Progress fields are execution knobs and are not
// part of the compiled sweep.
func (sc Scenario) Compile() (*Sweep, error) {
	if sc.N < 2 {
		return nil, fmt.Errorf("mcnet: scenario n = %d must be ≥ 2", sc.N)
	}
	name := sc.Name
	if name == "" {
		name = "scenario"
	}
	seeds := sc.Seeds
	if seeds < 1 {
		seeds = 1
	}
	baseSeed := sc.BaseSeed
	if baseSeed == 0 {
		baseSeed = 1
	}
	op := sc.Op
	if op == nil {
		op = Sum
	}
	loss, jam, churn, byz := sc.axes()

	// Resolve the deployment's channel count from the base options so the
	// jam axis can be checked against it before anything runs.
	s := defaultSettings()
	for _, opt := range sc.Options {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if err := validateAxes(loss, jam, churn, byz, s.channels); err != nil {
		return nil, err
	}
	if !validJamModel(sc.JamModel) {
		return nil, fmt.Errorf("mcnet: scenario jam model %d is unknown (valid: oblivious, roundrobin, reactive, adaptive)", int(sc.JamModel))
	}
	if !validByzStrategy(sc.ByzStrategy) {
		return nil, fmt.Errorf("mcnet: scenario byzantine strategy %d is unknown (valid: corrupt, equivocate, silent)", int(sc.ByzStrategy))
	}

	specs := make([]RunSpec, 0, len(loss)*len(jam)*len(churn)*len(byz)*seeds)
	for _, lp := range loss {
		for _, k := range jam {
			for _, cr := range churn {
				for _, bf := range byz {
					for rep := 0; rep < seeds; rep++ {
						specs = append(specs, RunSpec{
							Seed:        baseSeed + uint64(rep),
							Loss:        lp,
							Jam:         k,
							JamModel:    sc.JamModel,
							Churn:       ChurnSpec{Rate: cr},
							Byz:         bf,
							ByzStrategy: sc.ByzStrategy,
							Faulted:     true,
							Op:          op,
						})
					}
				}
			}
		}
	}
	return &Sweep{
		name:        name,
		n:           sc.N,
		seeds:       seeds,
		baseSeed:    baseSeed,
		jamModel:    sc.JamModel,
		byzStrategy: sc.ByzStrategy,
		loss:        loss,
		jam:         jam,
		churn:       churn,
		byz:         byz,
		specs:       specs,
		deploy:      newDeploySet(sc.N, sc.Options, specs),
	}, nil
}

// Len is the number of work items: grid points × seeds.
func (sw *Sweep) Len() int { return len(sw.specs) }

// Specs returns a copy of the expanded work items, indexed like Run.
func (sw *Sweep) Specs() []RunSpec {
	return append([]RunSpec(nil), sw.specs...)
}

// Run executes work item i and returns its summary. Items are independent
// and deterministic: any execution order, worker count or process restart
// yields the same RunResult for the same index. Deployments are shared per
// seed within one Sweep, so calling Run for many items costs one Network
// construction per distinct seed.
func (sw *Sweep) Run(ctx context.Context, i int) (RunResult, error) {
	if i < 0 || i >= len(sw.specs) {
		return RunResult{}, fmt.Errorf("mcnet: sweep item %d out of range [0, %d)", i, len(sw.specs))
	}
	res, err := sw.deploy.run(ctx, sw.specs[i])
	if err != nil {
		return RunResult{}, err
	}
	return SummarizeRun(res), nil
}

// Fold renders the sweep's report table from one RunResult per item,
// indexed like Run. It is a pure function of (sweep, results): folding
// persisted results after a restart emits exactly the table an
// uninterrupted run would have.
func (sw *Sweep) Fold(results []RunResult) (*Table, error) {
	if len(results) != len(sw.specs) {
		return nil, fmt.Errorf("mcnet: sweep fold got %d results, want %d", len(results), len(sw.specs))
	}
	t := stats.NewTable(
		fmt.Sprintf("%s: fault sweep (n=%d, %d seeds/point)", sw.name, sw.n, sw.seeds),
		"loss", "jam", "churn", "byz", "informed", "exact", "surv_exact", "surv_agree", "lost", "crashed", "ack_slots", "agg_slots")
	idx := 0
	for _, lp := range sw.loss {
		for _, k := range sw.jam {
			for _, cr := range sw.churn {
				for _, bf := range sw.byz {
					var acks, aggs []float64
					informed, exact, total := 0, 0, 0
					survAgree, survExact, survivors := 0, 0, 0
					lost, crashed := 0, 0
					for rep := 0; rep < sw.seeds; rep++ {
						res := results[idx]
						idx++
						informed += res.Informed
						exact += res.Exact
						total += res.Nodes
						acks = append(acks, float64(res.AckSlots))
						aggs = append(aggs, float64(res.AggSlots))
						if res.Faulted {
							survAgree += res.SurvivorsAgreeing
							survExact += res.SurvivorsExact
							survivors += res.Survivors
							lost += res.Lost
							crashed += res.Crashed
						}
					}
					t.AddRow(
						stats.F(lp), stats.I(k), stats.F(cr), stats.F(bf),
						scenarioPct(informed, total), scenarioPct(exact, total),
						scenarioPct(survExact, survivors),
						scenarioPct(survAgree, survivors),
						stats.I(lost), stats.I(crashed),
						stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
				}
			}
		}
	}
	t.AddNote("jam model: %s; byz strategy: %s; seeds %d..%d; surv_exact/surv_agree over honest survivors",
		fault.JamModel(sw.jamModel), fault.ByzStrategy(sw.byzStrategy),
		sw.baseSeed, sw.baseSeed+uint64(sw.seeds)-1)
	return &Table{t: t}, nil
}

// RunScenario executes the scenario's full fault grid and returns the
// report: one row per (loss, jam, churn) point with median latencies and
// informed / exact / surviving-exact rates across seeds. The sweep is a
// deterministic function of the scenario — two consecutive runs emit
// identical tables, at any Workers setting — and runs execute across a
// worker pool, sharing one deployment construction per seed across all
// grid points. The sweep aborts promptly with ctx.Err() if ctx is
// cancelled, including between the seed repetitions of a single point.
func RunScenario(ctx context.Context, sc Scenario) (*Table, error) {
	if sc.Workers < 0 {
		return nil, fmt.Errorf("mcnet: batch workers = %d must be ≥ 0", sc.Workers)
	}
	sw, err := sc.Compile()
	if err != nil {
		return nil, err
	}
	pool := batch.Pool{Workers: sc.Workers, Progress: sc.Progress}
	results, err := batch.Map(ctx, pool, sw.Len(), sw.Run)
	if err != nil {
		return nil, err
	}
	return sw.Fold(results)
}

func scenarioPct(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
}
