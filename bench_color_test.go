package mcnet

import (
	"context"
	"testing"
)

// BenchmarkColor runs the coloring verb end-to-end — network construction,
// the backend's full protocol on the simulation engine, validation — once
// per iteration for each pluggable backend on the dense crowd (Δ = n-1),
// the paper's motivating workload. Sub-benchmark names are the backend
// names, so benchdiff tracks each protocol's cost separately.
//
// Run with: go test -bench=BenchmarkColor -benchmem
func BenchmarkColor(b *testing.B) {
	const n = 64
	for _, backend := range ColorerNames() {
		b.Run(backend, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nw, err := New(n, Channels(4), Seed(11), Colorer(backend))
				if err != nil {
					b.Fatal(err)
				}
				res, err := nw.Color(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Conflicts != 0 {
					b.Fatalf("%s: %d conflicts on the crowd", backend, res.Conflicts)
				}
			}
		})
	}
}
