#!/usr/bin/env bash
# End-to-end smoke test of the scenario sweep service: boot mcserved on a
# temp dir, submit a sweep through mcscenario -submit, stream SSE progress,
# kill the daemon mid-job, restart it on the same state directory, and
# diff the resumed job's NDJSON and table against an in-process run of the
# same spec document. Exercises the whole durability story a unit test
# can't: real processes, real signals, real disk.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/mcserved" ./cmd/mcserved
go build -o "$workdir/mcscenario" ./cmd/mcscenario

# 3 loss × 2 jam × 2 seeds = 12 items: enough runtime to interrupt.
spec='{"name":"smoke","n":64,"channels":3,"loss":[0,0.05,0.1],"jam":[0,1],"seeds":2}'
printf '%s\n' "$spec" > "$workdir/spec.json"

start_daemon() {
  "$workdir/mcserved" -addr 127.0.0.1:0 -dir "$workdir/state" \
    > "$workdir/serve.log" 2>&1 &
  pid=$!
  base=""
  for _ in $(seq 1 200); do
    base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$workdir/serve.log" | head -1)
    [ -n "$base" ] && return
    sleep 0.05
  done
  echo "FAIL: daemon never announced its address" >&2
  cat "$workdir/serve.log" >&2
  exit 1
}

job_field() { # job_field <json> <key> — extract a scalar field value
  printf '%s' "$1" | sed -n "s/.*\"$2\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p"
}

start_daemon
echo "daemon at $base (pid $pid)"

accepted=$("$workdir/mcscenario" -spec "$workdir/spec.json" -submit "$base")
job=$(job_field "$accepted" id)
[ -n "$job" ] || { echo "FAIL: submit returned no job id: $accepted" >&2; exit 1; }
echo "submitted $job: $accepted"

# Stream SSE progress in the background for the whole first daemon's life.
curl -sN --max-time 120 "$base/v1/jobs/$job/events" > "$workdir/sse.log" &
sse=$!

# Wait until at least one item has landed durably, then kill the daemon
# mid-job with SIGTERM — the graceful-drain path a deploy restart takes.
interrupted=0
for _ in $(seq 1 600); do
  status=$(curl -sf "$base/v1/jobs/$job")
  done_items=$(job_field "$status" done)
  state=$(job_field "$status" state)
  if [ "$state" = done ]; then
    echo "NOTE: job finished before the kill; resume path reduces to a no-op"
    break
  fi
  if [ "${done_items:-0}" -ge 1 ]; then
    interrupted=1
    echo "killing daemon at $status"
    break
  fi
  sleep 0.05
done
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon exited non-zero after SIGTERM" >&2; exit 1; }
pid=""
wait "$sse" 2>/dev/null || true

grep -q '^event: progress' "$workdir/sse.log" \
  || { echo "FAIL: no SSE progress events seen" >&2; cat "$workdir/sse.log" >&2; exit 1; }

if [ "$interrupted" = 1 ]; then
  grep -q '"state":"running"' "$workdir/state/jobs/$job.json" \
    || { echo "FAIL: interrupted job not left in running state" >&2; exit 1; }
  lines=$(wc -l < "$workdir/state/jobs/$job.results.ndjson")
  echo "interrupted with $lines/12 items durable"
fi

# Second daemon on the same state dir: the job resumes and finishes.
start_daemon
echo "daemon restarted at $base"
for _ in $(seq 1 1200); do
  state=$(job_field "$(curl -sf "$base/v1/jobs/$job")" state)
  [ "$state" = done ] && break
  case $state in failed|canceled) echo "FAIL: job ended $state" >&2; exit 1 ;; esac
  sleep 0.05
done
[ "$state" = done ] || { echo "FAIL: job stuck in $state" >&2; exit 1; }

curl -sf "$base/v1/jobs/$job/results" > "$workdir/final.ndjson"
curl -sf "$base/v1/jobs/$job/table"   > "$workdir/served_table.txt"
lines=$(wc -l < "$workdir/final.ndjson")
[ "$lines" = 12 ] || { echo "FAIL: $lines NDJSON lines, want 12" >&2; exit 1; }

# The served table must match an uninterrupted in-process run exactly.
"$workdir/mcscenario" -spec "$workdir/spec.json" -quiet > "$workdir/local_table.txt"
diff -u "$workdir/local_table.txt" "$workdir/served_table.txt" \
  || { echo "FAIL: served table differs from in-process RunScenario" >&2; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon exited non-zero after SIGTERM" >&2; exit 1; }
pid=""
echo "PASS: resumed sweep is byte-identical to the in-process run"
