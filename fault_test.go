package mcnet

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// faultRun aggregates once on a fresh network and returns the result plus
// the run's event log, sorted into a canonical order (ordering between
// different nodes' events within a slot is unspecified).
func faultRun(t *testing.T, n int, values []int64, opts ...Option) (*AggregateResult, []Event) {
	t.Helper()
	nw, err := New(n, append([]Option{Channels(4), Seed(77)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu  sync.Mutex
		log []Event
	)
	nw.Events(func(ev Event) {
		mu.Lock()
		log = append(log, ev)
		mu.Unlock()
	})
	res, err := nw.Aggregate(context.Background(), values, Sum)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(log, func(i, j int) bool {
		a, b := log[i], log[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Value < b.Value
	})
	return res, log
}

func seqValues(n int) []int64 {
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i + 1)
	}
	return values
}

// TestFaultOptionValidation covers the new options' argument checks, both
// at option time and the cross-field checks at New time.
func TestFaultOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opts []Option
	}{
		{"negative loss", []Option{Loss(-0.1)}},
		{"loss above one", []Option{Loss(1.5)}},
		{"negative jam", []Option{Jamming(-1, JamOblivious)}},
		{"unknown jam model", []Option{Jamming(1, JamModel(7))}},
		{"jam all channels", []Option{Channels(2), Jamming(2, JamOblivious)}},
		{"churn rate", []Option{Churn(ChurnSpec{Rate: 1.5})}},
		{"churn window", []Option{Churn(ChurnSpec{Rate: 0.1, From: 9, Until: 9})}},
		{"churn negative slot", []Option{Churn(ChurnSpec{CrashAt: map[int]int{0: -1}})}},
		{"churn unknown node", []Option{Churn(ChurnSpec{CrashAt: map[int]int{99: 5}})}},
		{"negative byz fraction", []Option{Byzantine(-0.1, ByzCorrupt)}},
		{"byz fraction above one", []Option{Byzantine(1.5, ByzCorrupt)}},
		{"unknown byz strategy", []Option{Byzantine(0.2, ByzStrategy(9))}},
		{"negative byz count", []Option{ByzantineCount(-1, ByzSilent)}},
		{"byz count above n", []Option{ByzantineCount(17, ByzCorrupt)}},
	}
	for _, tc := range bad {
		if _, err := New(16, tc.opts...); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := [][]Option{
		{Loss(0.5)},
		{Jamming(2, JamRoundRobin)},
		{Churn(ChurnSpec{Rate: 0.3, From: 10, Until: 50})},
		{Churn(ChurnSpec{CrashAt: map[int]int{0: 5, 15: 0}})},
		{Loss(0), Jamming(0, JamOblivious), Churn(ChurnSpec{})},
		{Byzantine(0.25, ByzEquivocate)},
		{ByzantineCount(3, ByzSilent)},
		{Jamming(1, JamReactive)},
		{Jamming(2, JamAdaptive)},
	}
	for i, opts := range good {
		if _, err := New(16, opts...); err != nil {
			t.Errorf("good options %d rejected: %v", i, err)
		}
	}
}

// TestZeroIntensityFaultsReplayFaultFree is the acceptance property: Loss(0),
// Jamming(0) and an empty Churn spec attach the fault layer but reproduce
// the fault-free transcript bit-identically — same result, same event log —
// while reporting zero fault activity.
func TestZeroIntensityFaultsReplayFaultFree(t *testing.T) {
	const n = 48
	values := seqValues(n)
	base, baseLog := faultRun(t, n, values)
	zero, zeroLog := faultRun(t, n, values,
		Loss(0), Jamming(0, JamRoundRobin), Churn(ChurnSpec{}), Byzantine(0, ByzEquivocate))

	if base.Faults != nil {
		t.Fatal("fault-free run carries a FaultReport")
	}
	fr := zero.Faults
	if fr == nil {
		t.Fatal("zero-intensity run has no FaultReport")
	}
	if fr.Lost != 0 || fr.JammedSlotChannels != 0 || len(fr.CrashedNodes) != 0 {
		t.Errorf("zero-intensity faults reported activity: %+v", fr)
	}
	if len(fr.ByzantineNodes) != 0 || fr.Corrupted != 0 || fr.Dropped != 0 {
		t.Errorf("zero-intensity byzantine spec reported activity: %+v", fr)
	}
	if fr.Survivors != n || fr.SurvivorsInformed != zero.Informed || fr.SurvivorsExact != zero.Exact {
		t.Errorf("zero-intensity survivor counts %+v disagree with result (informed %d, exact %d)",
			fr, zero.Informed, zero.Exact)
	}
	if fr.Delivered == 0 {
		t.Error("zero-intensity run delivered nothing")
	}
	zero.Faults = nil
	if !reflect.DeepEqual(base, zero) {
		t.Error("zero-intensity faults changed the aggregate result")
	}
	if !reflect.DeepEqual(baseLog, zeroLog) {
		t.Errorf("zero-intensity faults changed the event log: %d vs %d events", len(baseLog), len(zeroLog))
	}
}

// TestFaultGoldenTranscripts: for every fault model, the same seed and the
// same spec replay an identical event log, result and fault report.
func TestFaultGoldenTranscripts(t *testing.T) {
	const n = 40
	values := seqValues(n)
	models := []struct {
		name string
		opts []Option
	}{
		{"loss", []Option{Loss(0.2)}},
		{"jam-oblivious", []Option{Jamming(1, JamOblivious)}},
		{"jam-roundrobin", []Option{Jamming(1, JamRoundRobin)}},
		{"churn-rate", []Option{Churn(ChurnSpec{Rate: 0.2})}},
		{"churn-set", []Option{Churn(ChurnSpec{CrashAt: map[int]int{1: 40, 5: 200}})}},
		{"jam-reactive", []Option{Jamming(1, JamReactive)}},
		{"jam-adaptive", []Option{Jamming(1, JamAdaptive)}},
		{"byz-corrupt", []Option{Byzantine(0.2, ByzCorrupt)}},
		{"byz-equivocate", []Option{Byzantine(0.2, ByzEquivocate)}},
		{"byz-silent", []Option{Byzantine(0.2, ByzSilent)}},
		{"combined", []Option{Loss(0.1), Jamming(1, JamRoundRobin), Churn(ChurnSpec{Rate: 0.1})}},
		{"combined-byz", []Option{Loss(0.05), Jamming(1, JamReactive), Byzantine(0.15, ByzEquivocate)}},
	}
	for _, m := range models {
		r1, log1 := faultRun(t, n, values, m.opts...)
		r2, log2 := faultRun(t, n, values, m.opts...)
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: results diverged across identical runs", m.name)
		}
		if !reflect.DeepEqual(log1, log2) {
			t.Errorf("%s: event logs diverged: %d vs %d events", m.name, len(log1), len(log2))
		}
		if r1.Faults == nil {
			t.Errorf("%s: no FaultReport", m.name)
		}
	}
}

// TestLossReportsActivity: a lossy run loses messages and says so, and the
// pipeline still aggregates (the ACK handshake retries).
func TestLossReportsActivity(t *testing.T) {
	const n = 48
	res, _ := faultRun(t, n, seqValues(n), Loss(0.15))
	fr := res.Faults
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if fr.Lost == 0 {
		t.Error("15% loss lost nothing over a full pipeline run")
	}
	if fr.Delivered == 0 {
		t.Error("nothing delivered under 15% loss")
	}
	if res.Informed < n/2 {
		t.Errorf("only %d/%d informed under 15%% loss; expected graceful degradation", res.Informed, n)
	}
}

// TestChurnCrashReporting: explicit crash sets surface in the report, the
// survivor counts exclude them, and crashed nodes never report informed.
func TestChurnCrashReporting(t *testing.T) {
	const n = 40
	crash := map[int]int{2: 30, 7: 100, 11: 0}
	res, _ := faultRun(t, n, seqValues(n), Churn(ChurnSpec{CrashAt: crash}))
	fr := res.Faults
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if !reflect.DeepEqual(fr.CrashedNodes, []int{2, 7, 11}) {
		t.Errorf("CrashedNodes = %v, want [2 7 11]", fr.CrashedNodes)
	}
	if fr.Survivors != n-3 {
		t.Errorf("Survivors = %d, want %d", fr.Survivors, n-3)
	}
	for _, id := range fr.CrashedNodes {
		if res.Nodes[id].Informed {
			t.Errorf("crashed node %d reported informed", id)
		}
	}
	if fr.SurvivorsInformed == 0 {
		t.Errorf("survivors learned nothing: %+v", fr)
	}
	// All three crashes land before the dead nodes contribute, so the
	// full-input fold is unreachable — survivors instead agree on the fold
	// of the values that made it in.
	if fr.SurvivorsAgreeing < fr.SurvivorsInformed*9/10 {
		t.Errorf("survivors did not converge: %+v", fr)
	}
	if fr.SurvivorsInformed > fr.Survivors || fr.SurvivorsExact > fr.SurvivorsInformed ||
		fr.SurvivorsAgreeing > fr.SurvivorsInformed {
		t.Errorf("inconsistent survivor counts: %+v", fr)
	}
}

// TestJammingDegradesChannels: jamming k of F channels jams slot-channels
// and the pipeline still completes via the remaining channels.
func TestJammingDegradesChannels(t *testing.T) {
	const n = 40
	res, _ := faultRun(t, n, seqValues(n), Jamming(1, JamRoundRobin))
	fr := res.Faults
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if fr.JammedSlotChannels != res.Slots {
		t.Errorf("JammedSlotChannels = %d, want %d (k=1 per slot)", fr.JammedSlotChannels, res.Slots)
	}
	if res.Informed < n/2 {
		t.Errorf("only %d/%d informed with 1 of 4 channels jammed", res.Informed, n)
	}
}

// TestByzantineReporting: the seeded membership surfaces in the report, the
// strategies leave their distinct fingerprints (corrupted vs dropped
// transmissions), and the survivor counts exclude the liars.
func TestByzantineReporting(t *testing.T) {
	const n = 40
	res, _ := faultRun(t, n, seqValues(n), Byzantine(0.25, ByzCorrupt))
	fr := res.Faults
	if fr == nil {
		t.Fatal("no FaultReport")
	}
	if len(fr.ByzantineNodes) != 10 {
		t.Fatalf("ByzantineNodes = %v, want 10 of %d nodes", fr.ByzantineNodes, n)
	}
	last := -1
	for _, id := range fr.ByzantineNodes {
		if id <= last || id >= n {
			t.Fatalf("membership not ascending in range: %v", fr.ByzantineNodes)
		}
		last = id
	}
	if fr.Corrupted == 0 || fr.Dropped != 0 {
		t.Errorf("corrupt strategy: corrupted %d, dropped %d; want >0, 0", fr.Corrupted, fr.Dropped)
	}
	if fr.Survivors != n-len(fr.ByzantineNodes) {
		t.Errorf("Survivors = %d, want %d (liars excluded)", fr.Survivors, n-len(fr.ByzantineNodes))
	}
	if fr.SurvivorsExact != 0 {
		t.Errorf("SurvivorsExact = %d under 10 consistent liars, want 0", fr.SurvivorsExact)
	}

	silent, _ := faultRun(t, n, seqValues(n), ByzantineCount(4, ByzSilent))
	sr := silent.Faults
	if sr == nil {
		t.Fatal("no FaultReport")
	}
	if len(sr.ByzantineNodes) != 4 {
		t.Errorf("ByzantineCount(4) chose %v", sr.ByzantineNodes)
	}
	if sr.Dropped == 0 || sr.Corrupted != 0 {
		t.Errorf("silent strategy: corrupted %d, dropped %d; want 0, >0", sr.Corrupted, sr.Dropped)
	}
}

// TestRunScenario: the runner sweeps the full grid deterministically — two
// consecutive runs emit identical CSV — and honors cancellation.
func TestRunScenario(t *testing.T) {
	sc := Scenario{
		Name:    "test",
		N:       32,
		Options: []Option{Channels(4), WithTopology(Crowd)},
		Loss:    []float64{0, 0.1},
		Jam:     []int{0, 1},
		Churn:   []float64{0, 0.1},
		Seeds:   2,
	}
	t1, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if t1.CSV() != t2.CSV() {
		t.Errorf("scenario CSV not stable across runs:\n%s\n---\n%s", t1.CSV(), t2.CSV())
	}
	lines := len(splitLines(t1.CSV()))
	// 1 title + 1 header + 2*2*2 grid rows.
	if want := 2 + 8; lines != want {
		t.Errorf("CSV has %d lines, want %d:\n%s", lines, want, t1.CSV())
	}

	if _, err := RunScenario(context.Background(), Scenario{N: 1}); err == nil {
		t.Error("n = 1 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScenario(ctx, sc); err == nil {
		t.Error("cancelled context not honored")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
