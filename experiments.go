package mcnet

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"mcnet/internal/coloring"
	"mcnet/internal/core"
	"mcnet/internal/expt"
	"mcnet/internal/fault"
	"mcnet/internal/stats"
)

// ErrUnknownExperiment is wrapped by RunExperiment when the id does not
// name an experiment; test with errors.Is.
var ErrUnknownExperiment = errors.New("unknown experiment")

// ExperimentOptions sizes an experiment run.
type ExperimentOptions struct {
	// Seeds is the number of independent repetitions per sweep point
	// (medians reported); values below 1 mean 1.
	Seeds int
	// Quick shrinks the sweeps for tests and smoke runs.
	Quick bool
	// Parallel sizes the worker pool each experiment's (sweep point × seed)
	// runs execute across: 0 (the default) uses GOMAXPROCS, 1 forces the
	// serial sweep. Tables are byte-identical at every setting.
	Parallel int
	// Colorers restricts the c-series coloring head-to-heads (c1..c3) to a
	// subset of backend names (see ColorerNames); empty means every
	// backend. Other experiments ignore it.
	Colorers []string
	// Exec pins the execution mode every aggregation run uses (default
	// ExecAuto). Tables are bit-identical at every setting; the knob exists
	// for memory/wall-clock measurement.
	Exec ExecMode
	// Byz overrides the Byzantine-fraction axis of the f4 and f6 sweeps;
	// empty means each experiment's default axis. Every value must be in
	// [0, 1]. Other experiments ignore it.
	Byz []float64
	// JamModels restricts the jamming adversaries of the f4 and f5 sweeps
	// to a subset of JamModelNames(); empty means each experiment's default
	// set. Other experiments ignore it.
	JamModels []string
}

// Table is a rendered experiment result.
type Table struct {
	t *stats.Table
}

// Render returns the aligned human-readable table.
func (t *Table) Render() string { return t.t.Render() }

// CSV returns the machine-readable form.
func (t *Table) CSV() string { return t.t.CSV() }

// ExperimentIDs lists the runnable experiment identifiers: the evaluation
// suite e1..e10 (one per claimed bound of the paper), the ablations a1..a3,
// the fault sweeps f1..f6 (message loss, jamming, churn, Byzantine nodes,
// jam-adversary head-to-head, Byzantine × churn), and the coloring backend
// head-to-heads c1..c3 (topology suite, scaling, churn). Use AllExperiments
// for the whole e-suite in one call.
func ExperimentIDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "a1", "a2", "a3", "f1", "f2", "f3", "f4", "f5", "f6", "c1", "c2", "c3"}
}

// RunExperiment executes one experiment by id (see ExperimentIDs) and
// returns its table. Unknown ids yield a descriptive error wrapping
// ErrUnknownExperiment.
func RunExperiment(id string, o ExperimentOptions) (*Table, error) {
	return RunExperimentContext(context.Background(), id, o)
}

// RunExperimentContext is RunExperiment with cancellation: the sweep stops
// between runs when ctx is done and returns ctx's error.
func RunExperimentContext(ctx context.Context, id string, o ExperimentOptions) (*Table, error) {
	runner, ok := expt.ByName(strings.ToLower(id))
	if !ok {
		return nil, fmt.Errorf("mcnet: %w %q (valid: %s; use AllExperiments for the suite)",
			ErrUnknownExperiment, id, strings.Join(ExperimentIDs(), ", "))
	}
	for _, name := range o.Colorers {
		if _, err := coloring.ByName(name); err != nil {
			return nil, fmt.Errorf("mcnet: %w", err)
		}
	}
	for _, frac := range o.Byz {
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("mcnet: byzantine fraction %v must be in [0, 1]", frac)
		}
	}
	var jams []fault.JamModel
	for _, name := range o.JamModels {
		jm, err := jamModelByName(name)
		if err != nil {
			return nil, fmt.Errorf("mcnet: %w", err)
		}
		jams = append(jams, fault.JamModel(jm))
	}
	tb, err := runner(expt.Options{Seeds: o.Seeds, Quick: o.Quick, Parallel: o.Parallel, Ctx: ctx, Colorers: o.Colorers, Exec: core.ExecMode(o.Exec), Byz: o.Byz, JamModels: jams})
	if err != nil {
		return nil, err
	}
	return &Table{t: tb}, nil
}

// AllExperiments runs the full e1..e10 suite in order.
func AllExperiments(o ExperimentOptions) ([]*Table, error) {
	return AllExperimentsContext(context.Background(), o)
}

// AllExperimentsContext is AllExperiments with cancellation; the tables of
// experiments that completed before ctx fired are returned alongside the
// error.
func AllExperimentsContext(ctx context.Context, o ExperimentOptions) ([]*Table, error) {
	ts, err := expt.All(expt.Options{Seeds: o.Seeds, Quick: o.Quick, Parallel: o.Parallel, Ctx: ctx, Exec: core.ExecMode(o.Exec)})
	out := make([]*Table, len(ts))
	for i, tb := range ts {
		out[i] = &Table{t: tb}
	}
	return out, err
}
