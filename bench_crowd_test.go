package mcnet

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkAggregateCrowd is the slot-hot-path trajectory benchmark: the
// paper's motivating Crowd workload (every node inside one cluster radius,
// Δ = n-1) run through the full Aggregate pipeline. Each iteration simulates
// exactly benchCrowdSlots slots — runs that would finish later are cut off by
// MaxSlots — so ns/op measures per-slot engine + SINR-resolution cost and
// stays comparable across sizes and revisions.
//
// Run with: go test -bench=BenchmarkAggregateCrowd -benchtime=1x
//
// Sizes up to 65k run the full benchCrowdSlots budget on the PR gate; the
// large sizes (262k, 1M — the nightly bench-large lane, too slow for a PR)
// use reduced slot budgets so one iteration stays in wall-clock budget
// while ns/op and the per-slot metrics remain comparable per slot.
//
// Reported metrics beyond ns/op: ns/slot-node (ns/op normalized by the
// simulated slot·node volume — the cross-size comparable number benchdiff
// prints), node-slots/s (its inverse), peak-heap-bytes and peak-goroutines
// (sampled ~1 kHz during the run; execution modes differ in exactly these).
const benchCrowdSlots = 256

// peakSampler samples heap use and goroutine count during a benchmark run.
type peakSampler struct {
	stop chan struct{}
	done chan struct{}

	heap       atomic.Uint64
	goroutines atomic.Int64
}

func startPeakSampler() *peakSampler {
	ps := &peakSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(ps.done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			ps.sample(&ms)
			select {
			case <-ps.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return ps
}

func (ps *peakSampler) sample(ms *runtime.MemStats) {
	runtime.ReadMemStats(ms)
	if h := ms.HeapAlloc; h > ps.heap.Load() {
		ps.heap.Store(h)
	}
	if g := int64(runtime.NumGoroutine()); g > ps.goroutines.Load() {
		ps.goroutines.Store(g)
	}
}

// report stops the sampler, takes one final sample, and publishes the peaks.
func (ps *peakSampler) report(b *testing.B) {
	close(ps.stop)
	<-ps.done
	var ms runtime.MemStats
	ps.sample(&ms)
	b.ReportMetric(float64(ps.heap.Load()), "peak-heap-bytes")
	b.ReportMetric(float64(ps.goroutines.Load()), "peak-goroutines")
}

func benchAggregateCrowdSlots(b *testing.B, n, slots int, extra ...Option) {
	b.Helper()
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i + 1)
	}
	opts := append([]Option{Channels(8), MaxSlots(slots)}, extra...)
	ps := startPeakSampler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := New(n, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Aggregate(context.Background(), values, Sum); err != nil &&
			!strings.Contains(err.Error(), "MaxSlots") {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ps.report(b)
	nodeSlots := float64(slots) * float64(n) * float64(b.N)
	b.ReportMetric(nodeSlots/b.Elapsed().Seconds(), "node-slots/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/nodeSlots, "ns/slot-node")
}

func benchAggregateCrowd(b *testing.B, n int) {
	benchAggregateCrowdSlots(b, n, benchCrowdSlots)
}

func BenchmarkAggregateCrowd(b *testing.B) {
	b.Run("n=1k", func(b *testing.B) { benchAggregateCrowd(b, 1024) })
	b.Run("n=4k", func(b *testing.B) { benchAggregateCrowd(b, 4096) })
	b.Run("n=16k", func(b *testing.B) { benchAggregateCrowd(b, 16384) })
	b.Run("n=65k", func(b *testing.B) { benchAggregateCrowd(b, 65536) })
}

// BenchmarkAggregateCrowdExec pins the two execution modes against each
// other on the PR gate's largest crowd: same workload, same transcript, the
// gap is pure engine overhead (goroutine stacks and park/unpark vs stepper
// structs). peak-heap-bytes and peak-goroutines are where the modes differ.
func BenchmarkAggregateCrowdExec(b *testing.B) {
	b.Run("goroutines/n=16k", func(b *testing.B) {
		benchAggregateCrowdSlots(b, 16384, benchCrowdSlots, Exec(ExecGoroutines))
	})
	b.Run("stepped/n=16k", func(b *testing.B) {
		benchAggregateCrowdSlots(b, 16384, benchCrowdSlots, Exec(ExecStepped))
	})
}

// BenchmarkAggregateCrowdLarge is the nightly bench-large lane: crowd sizes
// past the PR gate's wall-clock budget, with slot budgets scaled down so a
// single iteration completes in minutes. Compare against BENCH_large.json,
// not BENCH_baseline.json. ExecAuto selects the stepped engine at these
// sizes.
//
// Run with: go test -bench=BenchmarkAggregateCrowdLarge -benchtime=1x -timeout=4h
func BenchmarkAggregateCrowdLarge(b *testing.B) {
	b.Run("n=262k", func(b *testing.B) { benchAggregateCrowdSlots(b, 262144, 64) })
	b.Run("n=1M", func(b *testing.B) { benchAggregateCrowdSlots(b, 1048576, 16) })
}

// BenchmarkAggregateByz measures the Byzantine fault layer on the n=16k
// crowd. "off" is the zero-valued ByzSpec — the hook must cost nothing, so
// its ns/op reads directly against BenchmarkAggregateCrowd/n=16k as the
// no-adversary overhead (target: zero). "corrupt" and "equivocate" pay the
// per-transmission lie on 20% of nodes; "reactive" adds the decode-tracking
// jammer on top.
func BenchmarkAggregateByz(b *testing.B) {
	b.Run("off/n=16k", func(b *testing.B) {
		benchAggregateCrowdSlots(b, 16384, benchCrowdSlots, Byzantine(0, ByzCorrupt))
	})
	b.Run("corrupt/n=16k", func(b *testing.B) {
		benchAggregateCrowdSlots(b, 16384, benchCrowdSlots, Byzantine(0.2, ByzCorrupt))
	})
	b.Run("equivocate-jam/n=16k", func(b *testing.B) {
		benchAggregateCrowdSlots(b, 16384, benchCrowdSlots,
			Byzantine(0.2, ByzEquivocate), Jamming(1, JamReactive))
	})
}

// BenchmarkAggregateCrowdF32 is the n=16k crowd under the Float32Kernel
// knob: same slot budget as BenchmarkAggregateCrowd/n=16k, so the two ns/op
// values read directly as the f32 kernel's speedup on the SINR term.
func BenchmarkAggregateCrowdF32(b *testing.B) {
	b.Run("n=16k", func(b *testing.B) {
		benchAggregateCrowdSlots(b, 16384, benchCrowdSlots, Float32Kernel())
	})
}
