package mcnet

import (
	"context"
	"strings"
	"testing"
)

// BenchmarkAggregateCrowd is the slot-hot-path trajectory benchmark: the
// paper's motivating Crowd workload (every node inside one cluster radius,
// Δ = n-1) run through the full Aggregate pipeline. Each iteration simulates
// exactly benchCrowdSlots slots — runs that would finish later are cut off by
// MaxSlots — so ns/op measures per-slot engine + SINR-resolution cost and
// stays comparable across sizes and revisions.
//
// Run with: go test -bench=BenchmarkAggregateCrowd -benchtime=1x
//
// Sizes up to 65k run the full benchCrowdSlots budget on the PR gate; the
// large sizes (262k, 1M — the nightly bench-large lane, too slow for a PR)
// use reduced slot budgets so one iteration stays in wall-clock budget
// while ns/op and node-slots/s remain comparable per slot.
const benchCrowdSlots = 256

func benchAggregateCrowdSlots(b *testing.B, n, slots int) {
	b.Helper()
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i + 1)
	}
	opts := []Option{Channels(8), MaxSlots(slots)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := New(n, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Aggregate(context.Background(), values, Sum); err != nil &&
			!strings.Contains(err.Error(), "MaxSlots") {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(slots*n*b.N)/b.Elapsed().Seconds(), "node-slots/s")
}

func benchAggregateCrowd(b *testing.B, n int) {
	benchAggregateCrowdSlots(b, n, benchCrowdSlots)
}

func BenchmarkAggregateCrowd(b *testing.B) {
	b.Run("n=1k", func(b *testing.B) { benchAggregateCrowd(b, 1024) })
	b.Run("n=4k", func(b *testing.B) { benchAggregateCrowd(b, 4096) })
	b.Run("n=16k", func(b *testing.B) { benchAggregateCrowd(b, 16384) })
	b.Run("n=65k", func(b *testing.B) { benchAggregateCrowd(b, 65536) })
}

// BenchmarkAggregateCrowdLarge is the nightly bench-large lane: crowd sizes
// past the PR gate's wall-clock budget, with slot budgets scaled down so a
// single iteration completes in minutes. Compare against BENCH_large.json,
// not BENCH_baseline.json.
//
// Run with: go test -bench=BenchmarkAggregateCrowdLarge -benchtime=1x -timeout=4h
func BenchmarkAggregateCrowdLarge(b *testing.B) {
	b.Run("n=262k", func(b *testing.B) { benchAggregateCrowdSlots(b, 262144, 64) })
	b.Run("n=1M", func(b *testing.B) { benchAggregateCrowdSlots(b, 1048576, 16) })
}

// BenchmarkAggregateCrowdF32 is the n=16k crowd under the Float32Kernel
// knob: same slot budget as BenchmarkAggregateCrowd/n=16k, so the two ns/op
// values read directly as the f32 kernel's speedup on the SINR term.
func BenchmarkAggregateCrowdF32(b *testing.B) {
	b.Run("n=16k", func(b *testing.B) {
		const n = 16384
		values := make([]int64, n)
		for i := range values {
			values[i] = int64(i + 1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw, err := New(n, Channels(8), MaxSlots(benchCrowdSlots), Float32Kernel())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := nw.Aggregate(context.Background(), values, Sum); err != nil &&
				!strings.Contains(err.Error(), "MaxSlots") {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchCrowdSlots*n*b.N)/b.Elapsed().Seconds(), "node-slots/s")
	})
}
