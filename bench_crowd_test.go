package mcnet

import (
	"context"
	"strings"
	"testing"
)

// BenchmarkAggregateCrowd is the slot-hot-path trajectory benchmark: the
// paper's motivating Crowd workload (every node inside one cluster radius,
// Δ = n-1) run through the full Aggregate pipeline. Each iteration simulates
// exactly benchCrowdSlots slots — runs that would finish later are cut off by
// MaxSlots — so ns/op measures per-slot engine + SINR-resolution cost and
// stays comparable across sizes and revisions.
//
// Run with: go test -bench=BenchmarkAggregateCrowd -benchtime=1x
const benchCrowdSlots = 256

func benchAggregateCrowd(b *testing.B, n int) {
	b.Helper()
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := New(n, Channels(8), MaxSlots(benchCrowdSlots))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Aggregate(context.Background(), values, Sum); err != nil &&
			!strings.Contains(err.Error(), "MaxSlots") {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchCrowdSlots*n*b.N)/b.Elapsed().Seconds(), "node-slots/s")
}

func BenchmarkAggregateCrowd(b *testing.B) {
	b.Run("n=1k", func(b *testing.B) { benchAggregateCrowd(b, 1024) })
	b.Run("n=4k", func(b *testing.B) { benchAggregateCrowd(b, 4096) })
	b.Run("n=16k", func(b *testing.B) { benchAggregateCrowd(b, 16384) })
}
