package mcnet

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunExperiment: the facade runs a suite experiment and renders its
// table.
func TestRunExperiment(t *testing.T) {
	tb, err := RunExperiment("e8", ExperimentOptions{Seeds: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Render(), "E8") {
		t.Errorf("missing table title:\n%s", tb.Render())
	}
	if !strings.Contains(tb.CSV(), "topology,slots") {
		t.Errorf("missing CSV header:\n%s", tb.CSV())
	}
}

// TestRunExperimentUnknown: unknown ids produce a descriptive sentinel
// error, not a panic or a silent nil.
func TestRunExperimentUnknown(t *testing.T) {
	_, err := RunExperiment("e99", ExperimentOptions{})
	if err == nil {
		t.Fatal("no error for unknown experiment")
	}
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("err = %v, want ErrUnknownExperiment", err)
	}
	if !strings.Contains(err.Error(), "e10") {
		t.Errorf("error does not list valid ids: %v", err)
	}
}

// TestExperimentIDs: the advertised id list is stable and complete.
func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 19 {
		t.Fatalf("len(ExperimentIDs) = %d, want 19", len(ids))
	}
	for _, want := range []string{"e1", "e10", "a3", "f1", "f3", "c1", "c3"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing id %q", want)
		}
	}
}

// TestRunExperimentContextCanceled: a dead context stops the sweep with
// its cause, the contract behind Ctrl-C in the CLIs.
func TestRunExperimentContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperimentContext(ctx, "e1", ExperimentOptions{Seeds: 1, Quick: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunExperimentContext(canceled) err = %v, want context.Canceled", err)
	}
	if _, err := AllExperimentsContext(ctx, ExperimentOptions{Seeds: 1, Quick: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("AllExperimentsContext(canceled) err = %v, want context.Canceled", err)
	}
}
