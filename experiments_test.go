package mcnet

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunExperiment: the facade runs a suite experiment and renders its
// table.
func TestRunExperiment(t *testing.T) {
	tb, err := RunExperiment("e8", ExperimentOptions{Seeds: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Render(), "E8") {
		t.Errorf("missing table title:\n%s", tb.Render())
	}
	if !strings.Contains(tb.CSV(), "topology,slots") {
		t.Errorf("missing CSV header:\n%s", tb.CSV())
	}
}

// TestRunExperimentUnknown: unknown ids produce a descriptive sentinel
// error, not a panic or a silent nil.
func TestRunExperimentUnknown(t *testing.T) {
	_, err := RunExperiment("e99", ExperimentOptions{})
	if err == nil {
		t.Fatal("no error for unknown experiment")
	}
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("err = %v, want ErrUnknownExperiment", err)
	}
	if !strings.Contains(err.Error(), "e10") {
		t.Errorf("error does not list valid ids: %v", err)
	}
}

// TestExperimentIDs: the advertised id list is stable and complete.
func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("len(ExperimentIDs) = %d, want 22", len(ids))
	}
	for _, want := range []string{"e1", "e10", "a3", "f1", "f3", "f4", "f5", "f6", "c1", "c3"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing id %q", want)
		}
	}
}

// TestExperimentOptionValidation: a Byzantine fraction outside [0, 1] and
// an unknown jam model are rejected before any sweep runs, with the valid
// names listed — the error the CLIs relay on exit 2.
func TestExperimentOptionValidation(t *testing.T) {
	if _, err := RunExperiment("f4", ExperimentOptions{Quick: true, Byz: []float64{1.5}}); err == nil || !strings.Contains(err.Error(), "[0, 1]") {
		t.Errorf("byz fraction 1.5 accepted or unhelpful: %v", err)
	}
	_, err := RunExperiment("f4", ExperimentOptions{Quick: true, JamModels: []string{"psychic"}})
	if err == nil {
		t.Fatal("unknown jam model accepted")
	}
	for _, name := range JamModelNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("jam-model error does not list %q: %v", name, err)
		}
	}
}

// TestF4ExecIdentity is the experiment-level face of the acceptance
// criterion: the Byzantine degradation sweep is byte-identical across the
// two execution modes (worker counts are covered by
// TestExperimentParallelIdentity).
func TestF4ExecIdentity(t *testing.T) {
	var ref string
	for _, mode := range []ExecMode{ExecGoroutines, ExecStepped} {
		tb, err := RunExperiment("f4", ExperimentOptions{Seeds: 1, Quick: true, Exec: mode})
		if err != nil {
			t.Fatalf("exec %v: %v", mode, err)
		}
		out := tb.CSV()
		if ref == "" {
			ref = out
		} else if out != ref {
			t.Fatalf("f4 table differs across exec modes:\n%s\n--- vs ---\n%s", out, ref)
		}
	}
}

// TestRunExperimentContextCanceled: a dead context stops the sweep with
// its cause, the contract behind Ctrl-C in the CLIs.
func TestRunExperimentContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperimentContext(ctx, "e1", ExperimentOptions{Seeds: 1, Quick: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunExperimentContext(canceled) err = %v, want context.Canceled", err)
	}
	if _, err := AllExperimentsContext(ctx, ExperimentOptions{Seeds: 1, Quick: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("AllExperimentsContext(canceled) err = %v, want context.Canceled", err)
	}
}
