// Benchmarks regenerating the experiment suite: one benchmark per
// experiment of DESIGN.md §5 (the paper has no numbered tables/figures of
// its own, so the suite covers its claimed bounds C1–C10). Each benchmark
// executes the full-size sweep once per iteration and logs the resulting
// table; EXPERIMENTS.md records representative output.
//
// Run with: go test -bench=. -benchmem
package mcnet

import (
	"testing"

	"mcnet/internal/expt"
	"mcnet/internal/stats"
)

// benchOptions keeps benchmark iterations affordable: one seed per point,
// full-size sweeps.
var benchOptions = expt.Options{Seeds: 1}

func benchExperiment(b *testing.B, runner func(expt.Options) (*stats.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := runner(benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tb.Render())
		}
	}
}

func BenchmarkE1AggSpeedupVsChannels(b *testing.B) {
	benchExperiment(b, expt.E1SpeedupVsChannels)
}

func BenchmarkE2AggVsN(b *testing.B) {
	benchExperiment(b, expt.E2AggVsN)
}

func BenchmarkE3AggVsBaselines(b *testing.B) {
	benchExperiment(b, expt.E3Baselines)
}

func BenchmarkE4Coloring(b *testing.B) {
	benchExperiment(b, expt.E4Coloring)
}

func BenchmarkE5RulingSet(b *testing.B) {
	benchExperiment(b, expt.E5RulingSet)
}

func BenchmarkE6CSA(b *testing.B) {
	benchExperiment(b, expt.E6CSA)
}

func BenchmarkE7StructureBuild(b *testing.B) {
	benchExperiment(b, expt.E7StructureBuild)
}

func BenchmarkE8ExponentialChain(b *testing.B) {
	benchExperiment(b, expt.E8ExponentialChain)
}

func BenchmarkE9Backbone(b *testing.B) {
	benchExperiment(b, expt.E9Backbone)
}

func BenchmarkE10DiameterTerm(b *testing.B) {
	benchExperiment(b, expt.E10DiameterTerm)
}

func BenchmarkA1BackoffAblation(b *testing.B) {
	benchExperiment(b, expt.A1BackoffAblation)
}

func BenchmarkA2TDMAAblation(b *testing.B) {
	benchExperiment(b, expt.A2TDMAAblation)
}

func BenchmarkA3ChannelSpreadAblation(b *testing.B) {
	benchExperiment(b, expt.A3ChannelSpreadAblation)
}
