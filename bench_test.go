// Benchmarks regenerating the experiment suite: one benchmark per
// experiment of DESIGN.md §5 (the paper has no numbered tables/figures of
// its own, so the suite covers its claimed bounds C1–C10). Each benchmark
// executes the full-size sweep once per iteration through the public
// experiment API and logs the resulting table; EXPERIMENTS.md records
// representative output.
//
// Run with: go test -bench=. -benchmem
package mcnet

import "testing"

// benchOptions keeps benchmark iterations affordable: one seed per point,
// full-size sweeps.
var benchOptions = ExperimentOptions{Seeds: 1}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := RunExperiment(id, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tb.Render())
		}
	}
}

func BenchmarkE1AggSpeedupVsChannels(b *testing.B) { benchExperiment(b, "e1") }

func BenchmarkE2AggVsN(b *testing.B) { benchExperiment(b, "e2") }

func BenchmarkE3AggVsBaselines(b *testing.B) { benchExperiment(b, "e3") }

func BenchmarkE4Coloring(b *testing.B) { benchExperiment(b, "e4") }

func BenchmarkE5RulingSet(b *testing.B) { benchExperiment(b, "e5") }

func BenchmarkE6CSA(b *testing.B) { benchExperiment(b, "e6") }

func BenchmarkE7StructureBuild(b *testing.B) { benchExperiment(b, "e7") }

func BenchmarkE8ExponentialChain(b *testing.B) { benchExperiment(b, "e8") }

func BenchmarkE9Backbone(b *testing.B) { benchExperiment(b, "e9") }

func BenchmarkE10DiameterTerm(b *testing.B) { benchExperiment(b, "e10") }

func BenchmarkA1BackoffAblation(b *testing.B) { benchExperiment(b, "a1") }

func BenchmarkA2TDMAAblation(b *testing.B) { benchExperiment(b, "a2") }

func BenchmarkA3ChannelSpreadAblation(b *testing.B) { benchExperiment(b, "a3") }

func BenchmarkC1ColorHeadToHead(b *testing.B) { benchExperiment(b, "c1") }

func BenchmarkC2ColorScaling(b *testing.B) { benchExperiment(b, "c2") }

func BenchmarkC3ColorChurn(b *testing.B) { benchExperiment(b, "c3") }
