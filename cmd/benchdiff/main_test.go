package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mcnet
BenchmarkAggregateCrowd/n=1k-8         	       1	 12000000 ns/op
BenchmarkAggregateCrowd/n=4k-8         	       1	 48000000 ns/op
BenchmarkResolve4kSerial-8             	       1	  2000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngine64Nodes100Slots-16      	       2	   900000 ns/op
PASS
`

func fp(v float64) *float64 { return &v }

func TestParseBench(t *testing.T) {
	got := parseBench(sampleBench)
	want := map[string]entry{
		"BenchmarkAggregateCrowd/n=1k":   {NsOp: 12000000},
		"BenchmarkAggregateCrowd/n=4k":   {NsOp: 48000000},
		"BenchmarkResolve4kSerial":       {NsOp: 2000000, AllocsOp: fp(0)},
		"BenchmarkEngine64Nodes100Slots": {NsOp: 900000},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench = %+v, want %+v", got, want)
	}
	// -count > 1 keeps the minimum ns/op and the maximum allocs/op.
	double := sampleBench +
		"BenchmarkResolve4kSerial-8 1 1500000 ns/op 32 B/op 2 allocs/op\n"
	e := parseBench(double)["BenchmarkResolve4kSerial"]
	if e.NsOp != 1500000 {
		t.Errorf("repeated entry kept %v ns/op, want the minimum 1500000", e.NsOp)
	}
	if e.AllocsOp == nil || *e.AllocsOp != 2 {
		t.Errorf("repeated entry kept %v allocs/op, want the maximum 2", e.AllocsOp)
	}
}

func TestParseBenchSlotNode(t *testing.T) {
	bench := "BenchmarkAggregateCrowd/n=16k-8 1 5000000000 ns/op 1445826 node-slots/s 691.6 ns/slot-node 1028 peak-goroutines 239523 allocs/op\n" +
		"BenchmarkAggregateCrowd/n=16k-8 1 6000000000 ns/op 1200000 node-slots/s 800.0 ns/slot-node 1028 peak-goroutines 239523 allocs/op\n"
	e := parseBench(bench)["BenchmarkAggregateCrowd/n=16k"]
	if e.NsSlotNode == nil || *e.NsSlotNode != 691.6 {
		t.Errorf("ns/slot-node = %v, want the minimum 691.6", e.NsSlotNode)
	}
	if e.AllocsOp == nil || *e.AllocsOp != 239523 {
		t.Errorf("allocs/op = %v, want 239523", e.AllocsOp)
	}
}

func TestCompareShowsSlotNode(t *testing.T) {
	bench := "BenchmarkAggregateCrowd/n=16k-8 1 5000000000 ns/op 691.6 ns/slot-node\n"
	baseline := map[string]entry{
		"BenchmarkAggregateCrowd/n=16k": {NsOp: 5200000000, NsSlotNode: fp(700.0)},
	}
	benchPath, basePath := writeFiles(t, bench, baseline)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "691.6 vs 700.0 ns/slot-node") {
		t.Errorf("output lacks the ns/slot-node comparison:\n%s", out.String())
	}
}

func writeFiles(t *testing.T, bench string, baseline any) (benchPath, basePath string) {
	t.Helper()
	dir := t.TempDir()
	benchPath = filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath = filepath.Join(dir, "baseline.json")
	if baseline != nil {
		data, err := json.Marshal(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(basePath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return benchPath, basePath
}

func TestCompareWithinThreshold(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]entry{
		"BenchmarkAggregateCrowd/n=1k":   {NsOp: 10000000}, // 1.2x: fine
		"BenchmarkAggregateCrowd/n=4k":   {NsOp: 40000000}, // 1.2x: fine
		"BenchmarkResolve4kSerial":       {NsOp: 1500000, AllocsOp: fp(0)},
		"BenchmarkEngine64Nodes100Slots": {NsOp: 880000},
	})
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "within 2.0x") {
		t.Errorf("missing summary:\n%s", out.String())
	}
}

// TestCompareLegacyBaseline: the original flat name → ns/op format still
// loads.
func TestCompareLegacyBaseline(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]float64{
		"BenchmarkAggregateCrowd/n=1k": 10000000,
		"BenchmarkResolve4kSerial":     1500000,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
}

func TestCompareRegression(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]entry{
		"BenchmarkAggregateCrowd/n=1k": {NsOp: 12000000},
		"BenchmarkResolve4kSerial":     {NsOp: 900000}, // 2.22x: regressed
	})
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "BenchmarkResolve4kSerial") {
		t.Errorf("regression not reported:\n%s", out.String())
	}
	// Benches missing from the baseline are noted, never fatal.
	if !strings.Contains(out.String(), "NEW") {
		t.Errorf("new benchmarks not noted:\n%s", out.String())
	}
}

// TestCompareAllocRegression: a resolver bench that starts allocating
// fails the run even when its ns/op is fine; the same allocs on a
// non-matching bench only get noted.
func TestCompareAllocRegression(t *testing.T) {
	bench := `BenchmarkResolve4kSerial-8 1 2000000 ns/op 128 B/op 3 allocs/op
BenchmarkEngineThing-8 1 900000 ns/op 128 B/op 3 allocs/op
`
	baseline := map[string]entry{
		"BenchmarkResolve4kSerial": {NsOp: 2000000, AllocsOp: fp(0)},
		"BenchmarkEngineThing":     {NsOp: 900000, AllocsOp: fp(0)},
	}
	benchPath, basePath := writeFiles(t, bench, baseline)
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ALLOCS") {
		t.Errorf("alloc regression not reported:\n%s", out.String())
	}
	if strings.Count(out.String(), "ALLOCS") != 1 {
		t.Errorf("non-resolver bench should not fail on allocs:\n%s", out.String())
	}
	// One stray allocation is tolerated (the +1 slack).
	slack := `BenchmarkResolve4kSerial-8 1 2000000 ns/op 16 B/op 1 allocs/op
BenchmarkEngineThing-8 1 900000 ns/op 0 B/op 0 allocs/op
`
	benchPath, basePath = writeFiles(t, slack, baseline)
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("one stray alloc should pass; exit %d:\n%s", code, out.String())
	}
	// -alloc-pattern widens the gate.
	benchPath, basePath = writeFiles(t, bench, baseline)
	if code := run([]string{"-baseline", basePath, "-bench", benchPath, "-alloc-pattern", "."}, &out, &errOut); code != 1 {
		t.Fatalf("widened pattern: exit %d, want 1", code)
	}
	out.Reset()
	if code := run([]string{"-baseline", basePath, "-bench", benchPath, "-alloc-pattern", "("}, &out, &errOut); code != 2 {
		t.Fatalf("bad pattern: exit %d, want 2", code)
	}
	// A bench failing both gates counts once and reports both causes.
	both := `BenchmarkResolve4kSerial-8 1 9000000 ns/op 128 B/op 3 allocs/op
`
	benchPath, basePath = writeFiles(t, both, baseline)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 1 {
		t.Fatalf("double regression: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "REGRESSED+ALLOCS") {
		t.Errorf("combined status missing:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 benchmark(s) regressed") {
		t.Errorf("double-counted summary: %q", errOut.String())
	}
}

// TestCompareMissingBench: a baseline key with no matching bench in the run
// fails the compare — a silently-dropped bench is a disarmed tripwire —
// unless -missing-ok declares the subset deliberate.
func TestCompareMissingBench(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]entry{
		"BenchmarkAggregateCrowd/n=1k": {NsOp: 12000000},
		"BenchmarkGone":                {NsOp: 1},
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 1 {
		t.Fatalf("dropped bench must fail: exit %d, want 1:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "BenchmarkGone") {
		t.Errorf("missing baseline entry not noted:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "missing from the run") {
		t.Errorf("missing-bench failure not explained:\n%s", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", basePath, "-bench", benchPath, "-missing-ok"}, &out, &errOut); code != 0 {
		t.Fatalf("-missing-ok: exit %d, want 0:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("-missing-ok should still note the gap:\n%s", out.String())
	}
}

// TestCompareImprovementHint: a threshold×-or-better improvement is called
// out with a re-baseline reminder, and does not fail the run.
func TestCompareImprovementHint(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]entry{
		"BenchmarkAggregateCrowd/n=1k":   {NsOp: 30000000}, // run is 12e6: 2.5x faster
		"BenchmarkAggregateCrowd/n=4k":   {NsOp: 50000000},
		"BenchmarkResolve4kSerial":       {NsOp: 2000000, AllocsOp: fp(0)},
		"BenchmarkEngine64Nodes100Slots": {NsOp: 900000},
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "IMPROVED") || !strings.Contains(out.String(), "update the baseline") {
		t.Errorf("improvement hint missing:\n%s", out.String())
	}
	if strings.Count(out.String(), "IMPROVED") != 1 {
		t.Errorf("only n=1k improved 2x:\n%s", out.String())
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, nil)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath, "-update"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := parseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 4 || baseline["BenchmarkResolve4kSerial"].NsOp != 2000000 {
		t.Errorf("baseline = %v", baseline)
	}
	if a := baseline["BenchmarkResolve4kSerial"].AllocsOp; a == nil || *a != 0 {
		t.Errorf("allocs/op not persisted: %v", a)
	}
	// Round-trip: comparing against the freshly written baseline passes.
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("round-trip exit %d: %s", code, errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{}, &out, &errOut); code != 2 {
		t.Errorf("missing -bench: exit %d, want 2", code)
	}
	if code := run([]string{"-bench", "nope.txt", "-threshold", "0.5"}, &out, &errOut); code != 2 {
		t.Errorf("bad threshold: exit %d, want 2", code)
	}
	if code := run([]string{"-bench", "/does/not/exist.txt"}, &out, &errOut); code != 2 {
		t.Errorf("unreadable bench file: exit %d, want 2", code)
	}
}
