package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mcnet
BenchmarkAggregateCrowd/n=1k-8         	       1	 12000000 ns/op
BenchmarkAggregateCrowd/n=4k-8         	       1	 48000000 ns/op
BenchmarkResolve4kSerial-8             	       1	  2000000 ns/op	       0 B/op
BenchmarkEngine64Nodes100Slots-16      	       2	   900000 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleBench)
	want := map[string]float64{
		"BenchmarkAggregateCrowd/n=1k":   12000000,
		"BenchmarkAggregateCrowd/n=4k":   48000000,
		"BenchmarkResolve4kSerial":       2000000,
		"BenchmarkEngine64Nodes100Slots": 900000,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseBench = %v, want %v", got, want)
	}
	// -count > 1 keeps the minimum.
	double := sampleBench + "BenchmarkResolve4kSerial-8 1 1500000 ns/op\n"
	if got := parseBench(double)["BenchmarkResolve4kSerial"]; got != 1500000 {
		t.Errorf("repeated entry kept %v, want the minimum 1500000", got)
	}
}

func writeFiles(t *testing.T, bench string, baseline map[string]float64) (benchPath, basePath string) {
	t.Helper()
	dir := t.TempDir()
	benchPath = filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath = filepath.Join(dir, "baseline.json")
	if baseline != nil {
		data, err := json.Marshal(baseline)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(basePath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return benchPath, basePath
}

func TestCompareWithinThreshold(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]float64{
		"BenchmarkAggregateCrowd/n=1k":   10000000, // 1.2x: fine
		"BenchmarkAggregateCrowd/n=4k":   40000000, // 1.2x: fine
		"BenchmarkResolve4kSerial":       1500000,  // 1.33x: fine
		"BenchmarkEngine64Nodes100Slots": 880000,
	})
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "within 2.0x") {
		t.Errorf("missing summary:\n%s", out.String())
	}
}

func TestCompareRegression(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]float64{
		"BenchmarkAggregateCrowd/n=1k": 12000000,
		"BenchmarkResolve4kSerial":     900000, // 2.22x: regressed
	})
	var out, errOut bytes.Buffer
	code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "BenchmarkResolve4kSerial") {
		t.Errorf("regression not reported:\n%s", out.String())
	}
	// Benches missing from the baseline are noted, never fatal.
	if !strings.Contains(out.String(), "NEW") {
		t.Errorf("new benchmarks not noted:\n%s", out.String())
	}
}

func TestCompareMissingBench(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, map[string]float64{
		"BenchmarkAggregateCrowd/n=1k": 12000000,
		"BenchmarkGone":                1,
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "BenchmarkGone") {
		t.Errorf("missing baseline entry not noted:\n%s", out.String())
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	benchPath, basePath := writeFiles(t, sampleBench, nil)
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-bench", benchPath, "-update"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatal(err)
	}
	if len(baseline) != 4 || baseline["BenchmarkResolve4kSerial"] != 2000000 {
		t.Errorf("baseline = %v", baseline)
	}
	// Round-trip: comparing against the freshly written baseline passes.
	if code := run([]string{"-baseline", basePath, "-bench", benchPath}, &out, &errOut); code != 0 {
		t.Fatalf("round-trip exit %d: %s", code, errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{}, &out, &errOut); code != 2 {
		t.Errorf("missing -bench: exit %d, want 2", code)
	}
	if code := run([]string{"-bench", "nope.txt", "-threshold", "0.5"}, &out, &errOut); code != 2 {
		t.Errorf("bad threshold: exit %d, want 2", code)
	}
	if code := run([]string{"-bench", "/does/not/exist.txt"}, &out, &errOut); code != 2 {
		t.Errorf("unreadable bench file: exit %d, want 2", code)
	}
}
