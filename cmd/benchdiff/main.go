// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails when any benchmark regresses beyond a threshold — the
// CI bench tripwire.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x . | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt            # compare
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -update    # rewrite baseline
//
// The baseline maps benchmark names (GOMAXPROCS suffix stripped, so runs
// compare across machines with different core counts) to ns/op. Compare
// mode exits 1 if any current result exceeds threshold × baseline;
// benchmarks missing on either side are reported but never fail the run, so
// adding or removing benches doesn't break CI — regenerate with -update.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		benchPath    = fs.String("bench", "", "go test -bench output to compare (required)")
		threshold    = fs.Float64("threshold", 2.0, "fail when current ns/op exceeds threshold × baseline")
		update       = fs.Bool("update", false, "rewrite the baseline from the bench output instead of comparing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchPath == "" {
		fmt.Fprintln(errOut, "benchdiff: -bench is required")
		return 2
	}
	if *threshold <= 1 {
		fmt.Fprintf(errOut, "benchdiff: -threshold = %v must be > 1\n", *threshold)
		return 2
	}
	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		fmt.Fprintln(errOut, "benchdiff:", err)
		return 2
	}
	current := parseBench(string(raw))
	if len(current) == 0 {
		fmt.Fprintf(errOut, "benchdiff: no benchmark results in %s\n", *benchPath)
		return 2
	}

	if *update {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintln(errOut, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(errOut, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(out, "benchdiff: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return 0
	}

	baseRaw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(errOut, "benchdiff:", err)
		return 2
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(baseRaw, &baseline); err != nil {
		fmt.Fprintf(errOut, "benchdiff: bad baseline %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := 0
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(out, "NEW        %-44s %12.0f ns/op (not in baseline)\n", name, cur)
			continue
		}
		ratio := cur / base
		status := "ok"
		if cur > *threshold*base {
			status = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(out, "%-10s %-44s %12.0f ns/op vs %12.0f baseline (%.2fx)\n",
			status, name, cur, base, ratio)
	}
	for name := range baseline {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(out, "MISSING    %-44s (in baseline, not in run)\n", name)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(errOut, "benchdiff: %d benchmark(s) regressed beyond %.1fx\n", regressed, *threshold)
		return 1
	}
	fmt.Fprintf(out, "benchdiff: %d benchmarks within %.1fx of baseline\n", len(names), *threshold)
	return 0
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkResolve4kSerial-8   1   123456 ns/op   0 B/op".
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name → ns/op from bench output, stripping the
// GOMAXPROCS suffix. Repeated entries (e.g. -count > 1) keep the minimum:
// the least-noisy estimate of the machine's capability.
func parseBench(s string) map[string]float64 {
	out := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(s, -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out
}
