// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails when any benchmark regresses beyond a threshold — the
// CI bench tripwire.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem . | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt            # compare
//	benchdiff -baseline BENCH_baseline.json -bench bench.txt -update    # rewrite baseline
//
// The baseline maps benchmark names (GOMAXPROCS suffix stripped, so runs
// compare across machines with different core counts) to ns/op, — when
// the bench ran with -benchmem — allocs/op, and — for benches reporting it
// (the crowd benches) — the ns/slot-node metric, printed alongside ns/op so
// per-slot-per-node cost reads directly across sizes. Compare mode exits 1 if any
// current ns/op exceeds threshold × baseline, or if a benchmark matching
// -alloc-pattern (default: the resolver benches, which guarantee an
// allocation-free steady state) allocates more than threshold × baseline
// + 1 per op — the +1 keeps one stray runtime allocation from flapping CI
// while still failing a true 0 → 2 regression.
//
// A baseline key with no matching bench in the run output fails the compare
// (exit 1): a silently-dropped bench is a disarmed tripwire, not a pass.
// Removing a bench on purpose means regenerating the baseline with -update
// (or passing -missing-ok for a run that deliberately executes a subset).
// Benches present in the run but absent from the baseline are only noted.
// Improvements of threshold× or better are called out with a reminder to
// re-baseline, so a real win gets captured instead of masking the next
// regression.
//
// Regenerate with -update.
//
// Baselines written by older versions (plain name → ns/op numbers) still
// load; -update rewrites them in the current format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's baseline record. AllocsOp is nil when the bench
// output carried no -benchmem columns; NsSlotNode is nil unless the bench
// reported the ns/slot-node metric (the crowd benches' per-slot-per-node
// cost, comparable across sizes and slot budgets).
type entry struct {
	NsOp       float64  `json:"ns_op"`
	AllocsOp   *float64 `json:"allocs_op,omitempty"`
	NsSlotNode *float64 `json:"ns_slot_node,omitempty"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		benchPath    = fs.String("bench", "", "go test -bench output to compare (required)")
		threshold    = fs.Float64("threshold", 2.0, "fail when current ns/op (or gated allocs/op) exceeds threshold × baseline")
		allocPat     = fs.String("alloc-pattern", "^BenchmarkResolve|^BenchmarkAggregateCrowd", "regexp of benchmarks whose allocs/op regressions fail the run")
		update       = fs.Bool("update", false, "rewrite the baseline from the bench output instead of comparing")
		missingOK    = fs.Bool("missing-ok", false, "tolerate baseline keys with no matching bench in the run output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchPath == "" {
		fmt.Fprintln(errOut, "benchdiff: -bench is required")
		return 2
	}
	if *threshold <= 1 {
		fmt.Fprintf(errOut, "benchdiff: -threshold = %v must be > 1\n", *threshold)
		return 2
	}
	allocRe, err := regexp.Compile(*allocPat)
	if err != nil {
		fmt.Fprintf(errOut, "benchdiff: bad -alloc-pattern: %v\n", err)
		return 2
	}
	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		fmt.Fprintln(errOut, "benchdiff:", err)
		return 2
	}
	current := parseBench(string(raw))
	if len(current) == 0 {
		fmt.Fprintf(errOut, "benchdiff: no benchmark results in %s\n", *benchPath)
		return 2
	}

	if *update {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintln(errOut, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(errOut, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(out, "benchdiff: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return 0
	}

	baseRaw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(errOut, "benchdiff:", err)
		return 2
	}
	baseline, err := parseBaseline(baseRaw)
	if err != nil {
		fmt.Fprintf(errOut, "benchdiff: bad baseline %s: %v\n", *baselinePath, err)
		return 2
	}

	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed, improvements := 0, 0
	for _, name := range names {
		cur := current[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(out, "NEW        %-44s %12.0f ns/op (not in baseline)\n", name, cur.NsOp)
			continue
		}
		nsBad := cur.NsOp > *threshold*base.NsOp
		allocBad := false
		allocNote := ""
		if cur.AllocsOp != nil && base.AllocsOp != nil {
			allocNote = fmt.Sprintf("  %.0f vs %.0f allocs/op", *cur.AllocsOp, *base.AllocsOp)
			allocBad = allocRe.MatchString(name) && *cur.AllocsOp > *threshold**base.AllocsOp+1
		}
		switch {
		case cur.NsSlotNode != nil && base.NsSlotNode != nil:
			allocNote += fmt.Sprintf("  %.1f vs %.1f ns/slot-node", *cur.NsSlotNode, *base.NsSlotNode)
		case cur.NsSlotNode != nil:
			allocNote += fmt.Sprintf("  %.1f ns/slot-node", *cur.NsSlotNode)
		}
		improved := cur.NsOp**threshold <= base.NsOp
		status := "ok"
		switch {
		case nsBad && allocBad:
			status = "REGRESSED+ALLOCS"
		case nsBad:
			status = "REGRESSED"
		case allocBad:
			status = "ALLOCS"
		case improved:
			status = "IMPROVED"
		}
		if nsBad || allocBad {
			regressed++
		}
		fmt.Fprintf(out, "%-10s %-44s %12.0f ns/op vs %12.0f baseline (%.2fx)%s\n",
			status, name, cur.NsOp, base.NsOp, cur.NsOp/base.NsOp, allocNote)
		if improved {
			improvements++
		}
	}
	missing := 0
	missingNames := make([]string, 0, len(baseline))
	for name := range baseline {
		if _, ok := current[name]; !ok {
			missingNames = append(missingNames, name)
		}
	}
	sort.Strings(missingNames)
	for _, name := range missingNames {
		fmt.Fprintf(out, "MISSING    %-44s (in baseline, not in run)\n", name)
		missing++
	}
	if improvements > 0 {
		fmt.Fprintf(out, "benchdiff: %d benchmark(s) improved %.1fx or better — update the baseline (-update) to lock the win in\n",
			improvements, *threshold)
	}
	fail := false
	if regressed > 0 {
		fmt.Fprintf(errOut, "benchdiff: %d benchmark(s) regressed beyond %.1fx\n", regressed, *threshold)
		fail = true
	}
	if missing > 0 && !*missingOK {
		fmt.Fprintf(errOut, "benchdiff: %d baseline benchmark(s) missing from the run — a dropped bench disarms the tripwire; regenerate with -update or pass -missing-ok for a deliberate subset\n", missing)
		fail = true
	}
	if fail {
		return 1
	}
	fmt.Fprintf(out, "benchdiff: %d benchmarks within %.1fx of baseline\n", len(names), *threshold)
	return 0
}

// parseBaseline reads the current object format and, for compatibility,
// the original flat name → ns/op map.
func parseBaseline(raw []byte) (map[string]entry, error) {
	var rawMap map[string]json.RawMessage
	if err := json.Unmarshal(raw, &rawMap); err != nil {
		return nil, err
	}
	out := make(map[string]entry, len(rawMap))
	for name, v := range rawMap {
		var e entry
		if err := json.Unmarshal(v, &e); err == nil {
			out[name] = e
			continue
		}
		var ns float64
		if err := json.Unmarshal(v, &ns); err != nil {
			return nil, fmt.Errorf("entry %q is neither an object nor a number", name)
		}
		out[name] = entry{NsOp: ns}
	}
	return out, nil
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkResolve4kSerial-8  1  123456 ns/op  64 B/op  2 allocs/op".
// The -benchmem columns are optional, and custom ReportMetric columns may
// sit between ns/op and them.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) allocs/op)?`)

// slotNodeCol matches the crowd benches' ns/slot-node ReportMetric column.
var slotNodeCol = regexp.MustCompile(`\s([0-9.]+(?:e[+-]?[0-9]+)?) ns/slot-node`)

// parseBench extracts name → {ns/op, allocs/op, ns/slot-node} from bench
// output, stripping the GOMAXPROCS suffix. Repeated entries (e.g. -count >
// 1) keep the minimum ns/op and ns/slot-node — the least-noisy estimate of
// the machine's capability — and the maximum allocs/op, the conservative
// side for a regression gate.
func parseBench(s string) map[string]entry {
	out := map[string]entry{}
	for _, m := range benchLine.FindAllStringSubmatchIndex(s, -1) {
		name := s[m[2]:m[3]]
		ns, err := strconv.ParseFloat(s[m[4]:m[5]], 64)
		if err != nil {
			continue
		}
		var allocs *float64
		if m[6] >= 0 {
			if a, err := strconv.ParseFloat(s[m[6]:m[7]], 64); err == nil {
				allocs = &a
			}
		}
		var slotNode *float64
		line := s[m[0]:m[1]]
		if end := strings.IndexByte(s[m[1]:], '\n'); end >= 0 {
			line = s[m[0] : m[1]+end]
		} else {
			line = s[m[0]:]
		}
		if sm := slotNodeCol.FindStringSubmatch(line); sm != nil {
			if v, err := strconv.ParseFloat(sm[1], 64); err == nil {
				slotNode = &v
			}
		}
		prev, seen := out[name]
		if !seen {
			out[name] = entry{NsOp: ns, AllocsOp: allocs, NsSlotNode: slotNode}
			continue
		}
		if ns < prev.NsOp {
			prev.NsOp = ns
		}
		if allocs != nil && (prev.AllocsOp == nil || *allocs > *prev.AllocsOp) {
			prev.AllocsOp = allocs
		}
		if slotNode != nil && (prev.NsSlotNode == nil || *slotNode < *prev.NsSlotNode) {
			prev.NsSlotNode = slotNode
		}
		out[name] = prev
	}
	return out
}
