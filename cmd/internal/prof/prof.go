// Package prof wires pprof profiling into the command-line tools, so
// hot-path regressions can be profiled without editing code:
//
//	mcagg -exp e1 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Both flags are optional and independent. The CPU profile covers
// everything between Start and the returned stop function; the heap
// profile is written at stop time after a GC, so it reflects live memory
// at the end of the run.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (no-op when empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (no-op when empty). The stop function reports the first error it
// hits and is idempotent: only the first call does anything, so callers
// may both defer it and invoke it on early-exit paths.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("prof: %w", err)
				}
				return first
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
		}
		return first
	}, nil
}
