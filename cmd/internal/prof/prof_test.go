package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Error("expected error for unwritable cpu profile path")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("expected error for unwritable mem profile path")
	}
}
