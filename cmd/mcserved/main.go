// Command mcserved is the scenario sweep service daemon: an HTTP/JSON
// server that accepts scenario spec documents, queues them durably on
// disk, and executes each sweep on the batch worker pool. A killed daemon
// restarted on the same state directory resumes interrupted jobs from
// their last durably landed item, and the finished sweep's table is
// byte-identical to an uninterrupted run (and to an in-process
// mcscenario run of the same spec).
//
// Usage:
//
//	mcserved                                  # serve on 127.0.0.1:8357, state in ./mcserved-data
//	mcserved -addr :8357 -dir /var/lib/mcserved -workers 4
//
// Interact with curl (or mcscenario -submit):
//
//	curl -d '{"n":96,"loss":[0,0.05,0.1],"seeds":3}' localhost:8357/v1/jobs
//	curl localhost:8357/v1/jobs/j00000001          # status
//	curl -N localhost:8357/v1/jobs/j00000001/events   # SSE progress
//	curl localhost:8357/v1/jobs/j00000001/results  # NDJSON, one line per run
//	curl localhost:8357/v1/jobs/j00000001/table    # the rendered sweep table
//	curl localhost:8357/v1/stats                   # throughput and queue gauges
//
// SIGINT/SIGTERM drain gracefully: the listener closes, the running job
// stops at the next item boundary with its results durable, and the job
// resumes when the daemon next boots.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcnet/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "mcserved:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (the signal path) or the listener
// fails, then drains. Split from main so tests can drive a full daemon
// lifecycle in-process.
func run(ctx context.Context, args []string, errOut io.Writer) error {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr     = fs.String("addr", "127.0.0.1:8357", "listen address")
		dir      = fs.String("dir", "mcserved-data", "persistent state directory (created if missing)")
		workers  = fs.Int("workers", 0, "worker-pool size per running job (0 = GOMAXPROCS, 1 = serial)")
		maxQueue = fs.Int("max-queue", 64, "queued-job bound; submissions beyond it get 429")
		drainFor = fs.Duration("drain-timeout", time.Minute, "how long a shutdown waits for the running item to land")
		quiet    = fs.Bool("quiet", false, "suppress per-event logging on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxQueue < 1 {
		return fmt.Errorf("-max-queue = %d must be ≥ 1", *maxQueue)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers = %d must be ≥ 0 (0 = GOMAXPROCS)", *workers)
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(errOut, format+"\n", args...)
		}
	}

	s, err := serve.NewServer(serve.Config{Dir: *dir, Workers: *workers, MaxQueue: *maxQueue, Logf: logf})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// The executor is already live; park its state cleanly before failing.
		dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		_ = s.Drain(dctx)
		return err
	}
	logf("mcserved: listening on http://%s (state in %s)", ln.Addr(), *dir)

	httpSrv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logf("mcserved: signal received; draining")

	// Drain the executor first: new submissions get 503, the running job
	// stops at the next item boundary, and every landed result is durable
	// before the listener goes away — the next boot resumes the job. Then
	// give short requests a moment to finish and force-close long-lived
	// connections (SSE streams of unfinished jobs never end on their own).
	dctx, dcancel := context.WithTimeout(context.Background(), *drainFor)
	defer dcancel()
	drainErr := s.Drain(dctx)
	gctx, gcancel := context.WithTimeout(context.Background(), time.Second)
	_ = httpSrv.Shutdown(gctx)
	gcancel()
	_ = httpSrv.Close()
	if drainErr != nil {
		return drainErr
	}
	logf("mcserved: drained; state is consistent in %s", *dir)
	return nil
}
