package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink the test can poll.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestDaemonLifecycle drives the full binary path in-process: boot on a
// temp dir and a kernel-assigned port, submit a sweep over HTTP, wait for
// it to finish, download the table, then shut down via context
// cancellation — the signal path — and expect a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var logs syncBuffer
	runDone := make(chan error, 1)
	go func() {
		runDone <- run(ctx, []string{"-addr", "127.0.0.1:0", "-dir", t.TempDir()}, &logs)
	}()

	// The daemon logs its bound address once the listener is up.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(logs.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; logs:\n%s", logs.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"n": 16, "channels": 3, "loss": [0, 0.1], "seeds": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.Total != 2 {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, st)
	}

	deadline = time.Now().Add(2 * time.Minute)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(table), "loss") {
		t.Errorf("table output looks wrong:\n%s", table)
	}

	// The signal path: cancelling the run context must drain and return nil.
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not drain after cancellation")
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Errorf("logs do not mention the drain:\n%s", logs.String())
	}
}

// TestDaemonFlagValidation: bad flags fail fast without binding a port.
func TestDaemonFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-max-queue", "0"},
		{"-workers", "-1"},
		{"-bogus"},
	} {
		var logs syncBuffer
		if err := run(context.Background(), args, &logs); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}
