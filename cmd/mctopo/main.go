// Command mctopo generates the experiment topologies and reports their
// communication-graph parameters (n, Δ, D, connectivity) under the default
// SINR model, optionally dumping positions as CSV.
//
// Usage:
//
//	mctopo -kind crowd -n 128
//	mctopo -kind corridor -n 80 -length 8
//	mctopo -kind chain -n 24 -dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcnet/internal/expt"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/rng"
	"mcnet/internal/topology"
)

func main() { run(os.Args[1:], os.Stdout, os.Exit) }

func run(args []string, out io.Writer, exit func(int)) {
	fs := flag.NewFlagSet("mctopo", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		kind   = fs.String("kind", "uniform", "uniform|crowd|hotspot|line|chain|corridor|ring")
		n      = fs.Int("n", 128, "node count")
		seed   = fs.Uint64("seed", 1, "generator seed")
		degree = fs.Float64("degree", 12, "target average degree (uniform)")
		length = fs.Int("length", 6, "corridor length in communication radii")
		dump   = fs.Bool("dump", false, "print positions as CSV")
	)
	if err := fs.Parse(args); err != nil {
		exit(2)
		return
	}
	p := model.Default(1, max2(*n, 2))
	rnd := rng.New(*seed)
	var pos []geo.Point
	switch *kind {
	case "uniform":
		pos = topology.UniformDegree(rnd, *n, p.REps(), *degree)
	case "crowd":
		pos = expt.Crowd(p, *n, *seed)
	case "hotspot":
		pos = topology.Hotspot(rnd, max2(*n/16, 1), 16, 4, 0.05)
	case "line":
		pos = topology.Line(*n, 0.5)
	case "chain":
		pos = topology.ExponentialChain(*n, 1)
	case "corridor":
		pos = topology.Corridor(rnd, *n, float64(*length)*p.REps(), 0.6*p.REps())
	case "ring":
		pos = topology.Ring(*n, float64(*n)*0.5/6.28)
	default:
		fmt.Fprintf(out, "unknown topology kind %q\n", *kind)
		exit(2)
		return
	}
	g := graph.Build(pos, p.REps())
	fmt.Fprintf(out, "kind=%s n=%d R_eps=%.3f r_c=%.4f\n", *kind, len(pos), p.REps(), p.ClusterRadius())
	fmt.Fprintf(out, "max_degree=%d avg_degree=%.2f connected=%v diameter~%d\n",
		g.MaxDegree(), g.AvgDegree(), g.Connected(), g.DiameterApprox())
	if *dump {
		fmt.Fprintln(out, "x,y")
		for _, q := range pos {
			fmt.Fprintf(out, "%.6f,%.6f\n", q.X, q.Y)
		}
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
