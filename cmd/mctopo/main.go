// Command mctopo generates the experiment topologies and reports their
// communication-graph parameters (n, Δ, D, connectivity) under the default
// SINR model, optionally dumping positions as CSV.
//
// Usage:
//
//	mctopo -kind crowd -n 128
//	mctopo -kind corridor -n 80 -length 8
//	mctopo -kind chain -n 24 -dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcnet"
)

func main() { run(os.Args[1:], os.Stdout, os.Stderr, os.Exit) }

func run(args []string, out, errOut io.Writer, exit func(int)) {
	fs := flag.NewFlagSet("mctopo", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		kind   = fs.String("kind", "uniform", "uniform|crowd|grid|hotspot|line|chain|corridor|ring")
		n      = fs.Int("n", 128, "node count")
		seed   = fs.Uint64("seed", 1, "generator seed")
		degree = fs.Float64("degree", 12, "target average degree (uniform)")
		length = fs.Int("length", 6, "corridor length in communication radii")
		dump   = fs.Bool("dump", false, "print positions as CSV")
	)
	if err := fs.Parse(args); err != nil {
		exit(2)
		return
	}
	// Validate flag combinations up front: a clear exit 2 beats a panic (or
	// a silently clamped value) deep in the pipeline.
	if *n < 2 {
		fmt.Fprintf(errOut, "mctopo: -n = %d must be ≥ 2\n", *n)
		exit(2)
		return
	}
	if *degree <= 0 {
		fmt.Fprintf(errOut, "mctopo: -degree = %v must be > 0\n", *degree)
		exit(2)
		return
	}
	if *length < 1 {
		fmt.Fprintf(errOut, "mctopo: -length = %d must be ≥ 1\n", *length)
		exit(2)
		return
	}
	var topo mcnet.Topology
	switch *kind {
	case "uniform":
		topo = mcnet.Uniform(*degree)
	case "crowd":
		topo = mcnet.Crowd
	case "grid":
		topo = mcnet.Grid
	case "hotspot":
		topo = mcnet.Hotspot(max(*n/16, 1), 16, 6, 0.07)
	case "line":
		topo = mcnet.Line(0.7)
	case "chain":
		topo = mcnet.Chain
	case "corridor":
		topo = mcnet.Corridor(*length)
	case "ring":
		topo = mcnet.Ring(0.7)
	default:
		fmt.Fprintf(errOut, "mctopo: unknown topology kind %q\n", *kind)
		exit(2)
		return
	}
	net, err := mcnet.New(*n, mcnet.WithTopology(topo), mcnet.Channels(1), mcnet.Seed(*seed))
	if err != nil {
		fmt.Fprintln(errOut, "mctopo:", err)
		exit(1)
		return
	}
	g := net.Geometry()
	st := net.Stats()
	fmt.Fprintf(out, "kind=%s n=%d R_eps=%.3f r_c=%.4f\n", *kind, net.N(), g.CommRadius, g.ClusterRadius)
	fmt.Fprintf(out, "max_degree=%d avg_degree=%.2f connected=%v diameter~%d\n",
		st.MaxDegree, st.AvgDegree, st.Connected, st.Diameter)
	pi := net.Plan()
	fmt.Fprintf(out, "derived: DeltaHat=%d PhiMax=%d HopBound=%d (schedule %d slots)\n",
		pi.DeltaHat, pi.PhiMax, pi.HopBound, pi.BudgetSlots)
	if *dump {
		fmt.Fprintln(out, "x,y")
		for _, q := range net.Positions() {
			fmt.Fprintf(out, "%.6f,%.6f\n", q.X, q.Y)
		}
	}
}
