package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTopoKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "crowd", "hotspot", "line", "chain", "corridor", "ring"} {
		var buf bytes.Buffer
		exitCode := -1
		run([]string{"-kind", kind, "-n", "32"}, &buf, func(c int) { exitCode = c })
		if exitCode != -1 {
			t.Errorf("%s: exit %d:\n%s", kind, exitCode, buf.String())
			continue
		}
		if !strings.Contains(buf.String(), "max_degree=") {
			t.Errorf("%s: missing stats:\n%s", kind, buf.String())
		}
	}
}

func TestTopoDump(t *testing.T) {
	var buf bytes.Buffer
	run([]string{"-kind", "line", "-n", "4", "-dump"}, &buf, func(int) {})
	if !strings.Contains(buf.String(), "x,y") {
		t.Error("missing CSV header")
	}
	if got := strings.Count(buf.String(), "\n"); got < 6 {
		t.Errorf("expected ≥ 6 lines, got %d", got)
	}
}

func TestTopoUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	exitCode := -1
	run([]string{"-kind", "mystery"}, &buf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit = %d, want 2", exitCode)
	}
}
