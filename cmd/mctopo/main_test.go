package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTopoKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "crowd", "grid", "hotspot", "line", "chain", "corridor", "ring"} {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run([]string{"-kind", kind, "-n", "32"}, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != -1 {
			t.Errorf("%s: exit %d:\n%s%s", kind, exitCode, buf.String(), errBuf.String())
			continue
		}
		if !strings.Contains(buf.String(), "max_degree=") {
			t.Errorf("%s: missing stats:\n%s", kind, buf.String())
		}
		if !strings.Contains(buf.String(), "DeltaHat=") {
			t.Errorf("%s: missing derived sizing:\n%s", kind, buf.String())
		}
	}
}

func TestTopoDump(t *testing.T) {
	var buf, errBuf bytes.Buffer
	run([]string{"-kind", "line", "-n", "4", "-dump"}, &buf, &errBuf, func(int) {})
	if !strings.Contains(buf.String(), "x,y") {
		t.Error("missing CSV header")
	}
	if got := strings.Count(buf.String(), "\n"); got < 7 {
		t.Errorf("expected ≥ 7 lines, got %d", got)
	}
}

func TestTopoUnknownKind(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-kind", "mystery"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit = %d, want 2", exitCode)
	}
	if !strings.Contains(errBuf.String(), "unknown topology") {
		t.Errorf("unhelpful error: %q", errBuf.String())
	}
}

// TestTopoFlagValidation: malformed flag values exit 2 with a stderr
// message naming the flag, instead of being silently clamped or panicking
// deep in the pipeline.
func TestTopoFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"tiny n", []string{"-n", "1"}, "-n"},
		{"negative n", []string{"-n", "-8"}, "-n"},
		{"zero degree", []string{"-kind", "uniform", "-degree", "0"}, "-degree"},
		{"negative degree", []string{"-kind", "uniform", "-degree", "-3"}, "-degree"},
		{"zero length", []string{"-kind", "corridor", "-length", "0"}, "-length"},
	}
	for _, tc := range cases {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run(tc.args, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != 2 {
			t.Errorf("%s: exit = %d, want 2", tc.name, exitCode)
			continue
		}
		if !strings.Contains(errBuf.String(), tc.frag) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, errBuf.String(), tc.frag)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: error leaked to stdout: %q", tc.name, buf.String())
		}
	}
}
