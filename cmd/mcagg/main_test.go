package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcnet"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e8", "-quick", "-seeds", "1"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d, output:\n%s%s", exitCode, buf.String(), errBuf.String())
	}
	if !strings.Contains(buf.String(), "E8") {
		t.Errorf("missing table:\n%s", buf.String())
	}
}

func TestRunCSV(t *testing.T) {
	var buf, errBuf bytes.Buffer
	run([]string{"-exp", "e8", "-quick", "-csv"}, &buf, &errBuf, func(int) {})
	if !strings.Contains(buf.String(), "topology,slots") {
		t.Errorf("missing CSV header:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e99"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
	msg := errBuf.String()
	if !strings.Contains(msg, "unknown experiment") || !strings.Contains(msg, "e99") {
		t.Errorf("unhelpful error: %q", msg)
	}
	if !strings.Contains(msg, "e10") || !strings.Contains(msg, "a1") {
		t.Errorf("error does not list valid ids: %q", msg)
	}
	for _, id := range []string{"c1", "c2", "c3"} {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list the c-series id %q: %q", id, msg)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("error leaked to stdout: %q", buf.String())
	}
}

// TestRunColorerValidation: an unknown backend in -colorer exits 2 with the
// valid names; a valid subset runs the c-series restricted to it.
func TestRunColorerValidation(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "c1", "-colorer", "rainbow"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
	msg := errBuf.String()
	if !strings.Contains(msg, "rainbow") || !strings.Contains(msg, "sec7") {
		t.Errorf("unhelpful error: %q", msg)
	}
}

// TestRunByzJamFlagValidation: -byz fractions outside [0, 1] (or garbage)
// and unknown -jam-model names exit 2 without output on stdout.
func TestRunByzJamFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"byz above one", []string{"-exp", "f4", "-byz", "1.5"}, "[0, 1]"},
		{"byz negative", []string{"-exp", "f4", "-byz", "0,-0.2"}, "[0, 1]"},
		{"byz garbage", []string{"-exp", "f4", "-byz", "lots"}, "-byz"},
		{"unknown jam model", []string{"-exp", "f5", "-jam-model", "psychic"}, "psychic"},
	}
	for _, tc := range cases {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run(tc.args, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != 2 {
			t.Errorf("%s: exit code %d, want 2", tc.name, exitCode)
			continue
		}
		if !strings.Contains(errBuf.String(), tc.frag) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, errBuf.String(), tc.frag)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: error leaked to stdout: %q", tc.name, buf.String())
		}
	}
	// The jam-model error must list every valid name, not just reject.
	var buf, errBuf bytes.Buffer
	run([]string{"-exp", "f5", "-jam-model", "psychic"}, &buf, &errBuf, func(int) {})
	for _, name := range mcnet.JamModelNames() {
		if !strings.Contains(errBuf.String(), name) {
			t.Errorf("jam-model error does not list %q: %q", name, errBuf.String())
		}
	}
}

// TestRunF4PinnedAxes: a quick f4 run with -byz/-jam-model overrides
// sweeps only the requested points.
func TestRunF4PinnedAxes(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "f4", "-quick", "-seeds", "1", "-byz", "0,0.2", "-jam-model", "roundrobin", "-csv"},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d: %s", exitCode, errBuf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "roundrobin") {
		t.Errorf("missing roundrobin rows:\n%s", out)
	}
	for _, banned := range []string{"oblivious", "reactive", "adaptive"} {
		if strings.Contains(out, banned) {
			t.Errorf("axis not pinned: found %q rows:\n%s", banned, out)
		}
	}
}

// TestRunCSeriesSubset runs c1 restricted to one backend: the table must
// contain only that backend's rows.
func TestRunCSeriesSubset(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "c1", "-quick", "-seeds", "1", "-colorer", "dplus1"},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d: %s", exitCode, errBuf.String())
	}
	// Scan table rows only: the explanatory notes may name other backends.
	var rows []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "note:") {
			rows = append(rows, line)
		}
	}
	out := strings.Join(rows, "\n")
	if !strings.Contains(out, "dplus1") {
		t.Errorf("missing dplus1 rows:\n%s", out)
	}
	if strings.Contains(out, "hsb") || strings.Contains(out, "sec7") {
		t.Errorf("table contains unrequested backends:\n%s", out)
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-bogus"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
}

// TestRunSeedsValidation: a non-positive -seeds exits 2 with a stderr
// message instead of being silently clamped by the experiment harness.
func TestRunSeedsValidation(t *testing.T) {
	for _, seeds := range []string{"0", "-3"} {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run([]string{"-exp", "e8", "-seeds", seeds}, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != 2 {
			t.Errorf("-seeds %s: exit code %d, want 2", seeds, exitCode)
		}
		if !strings.Contains(errBuf.String(), "-seeds") {
			t.Errorf("-seeds %s: unhelpful error: %q", seeds, errBuf.String())
		}
		if buf.Len() != 0 {
			t.Errorf("-seeds %s: error leaked to stdout: %q", seeds, buf.String())
		}
	}
}

// TestRunProfiles: -cpuprofile/-memprofile write non-empty pprof files
// around a run, and an unwritable path exits 2.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e8", "-quick", "-seeds", "1", "-cpuprofile", cpu, "-memprofile", mem},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d: %s", exitCode, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
	exitCode = -1
	run([]string{"-exp", "e8", "-quick", "-cpuprofile", filepath.Join(dir, "no", "cpu.out")},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("unwritable profile path: exit %d, want 2", exitCode)
	}
}
