package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e8", "-quick", "-seeds", "1"}, &buf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d, output:\n%s", exitCode, buf.String())
	}
	if !strings.Contains(buf.String(), "E8") {
		t.Errorf("missing table:\n%s", buf.String())
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	run([]string{"-exp", "e8", "-quick", "-csv"}, &buf, func(int) {})
	if !strings.Contains(buf.String(), "topology,slots") {
		t.Errorf("missing CSV header:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e99"}, &buf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	exitCode := -1
	run([]string{"-bogus"}, &buf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
}
