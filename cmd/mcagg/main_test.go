package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e8", "-quick", "-seeds", "1"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d, output:\n%s%s", exitCode, buf.String(), errBuf.String())
	}
	if !strings.Contains(buf.String(), "E8") {
		t.Errorf("missing table:\n%s", buf.String())
	}
}

func TestRunCSV(t *testing.T) {
	var buf, errBuf bytes.Buffer
	run([]string{"-exp", "e8", "-quick", "-csv"}, &buf, &errBuf, func(int) {})
	if !strings.Contains(buf.String(), "topology,slots") {
		t.Errorf("missing CSV header:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e99"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
	msg := errBuf.String()
	if !strings.Contains(msg, "unknown experiment") || !strings.Contains(msg, "e99") {
		t.Errorf("unhelpful error: %q", msg)
	}
	if !strings.Contains(msg, "e10") || !strings.Contains(msg, "a1") {
		t.Errorf("error does not list valid ids: %q", msg)
	}
	if buf.Len() != 0 {
		t.Errorf("error leaked to stdout: %q", buf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-bogus"}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("exit code %d, want 2", exitCode)
	}
}

// TestRunSeedsValidation: a non-positive -seeds exits 2 with a stderr
// message instead of being silently clamped by the experiment harness.
func TestRunSeedsValidation(t *testing.T) {
	for _, seeds := range []string{"0", "-3"} {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run([]string{"-exp", "e8", "-seeds", seeds}, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != 2 {
			t.Errorf("-seeds %s: exit code %d, want 2", seeds, exitCode)
		}
		if !strings.Contains(errBuf.String(), "-seeds") {
			t.Errorf("-seeds %s: unhelpful error: %q", seeds, errBuf.String())
		}
		if buf.Len() != 0 {
			t.Errorf("-seeds %s: error leaked to stdout: %q", seeds, buf.String())
		}
	}
}

// TestRunProfiles: -cpuprofile/-memprofile write non-empty pprof files
// around a run, and an unwritable path exits 2.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-exp", "e8", "-quick", "-seeds", "1", "-cpuprofile", cpu, "-memprofile", mem},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d: %s", exitCode, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
	exitCode = -1
	run([]string{"-exp", "e8", "-quick", "-cpuprofile", filepath.Join(dir, "no", "cpu.out")},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 {
		t.Errorf("unwritable profile path: exit %d, want 2", exitCode)
	}
}
