// Command mcagg runs the experiment suite of the multichannel-aggregation
// reproduction and prints the resulting tables.
//
// Usage:
//
//	mcagg -exp e1            # one experiment (e1..e10, a1..a3)
//	mcagg -exp all -seeds 5  # the full suite, 5 seeds per point
//	mcagg -exp e3 -quick     # shrunken sweep for a fast look
//	mcagg -exp e1 -csv       # machine-readable output
//	mcagg -exp f4 -byz 0,0.1,0.3 -jam-model reactive  # byzantine sweep, pinned axes
//
// Hot-path regressions can be profiled without editing code:
//
//	mcagg -exp e1 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mcnet"
	"mcnet/cmd/internal/prof"
)

func main() { run(os.Args[1:], os.Stdout, os.Stderr, os.Exit) }

func run(args []string, out, errOut io.Writer, exit func(int)) {
	fs := flag.NewFlagSet("mcagg", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		exp        = fs.String("exp", "all", "experiment id: e1..e10, a1..a3, f1..f6, c1..c3 or all")
		seeds      = fs.Int("seeds", 3, "repetitions per sweep point")
		byz        = fs.String("byz", "", "comma-separated byzantine fractions in [0, 1] overriding the f4/f6 sweep axis (default each experiment's axis)")
		jamModel   = fs.String("jam-model", "", "comma-separated jamming adversaries for the f4/f5 sweeps (default all relevant: "+strings.Join(mcnet.JamModelNames(), ",")+")")
		colorer    = fs.String("colorer", "", "comma-separated coloring backends for the c-series head-to-heads (default all: "+strings.Join(mcnet.ColorerNames(), ",")+")")
		execMode   = fs.String("exec", "", "pipeline execution mode: auto|goroutines|stepped (default auto; tables are identical, memory/wall-clock differ)")
		quick      = fs.Bool("quick", false, "shrink sweeps for a fast run")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel   = fs.Int("parallel", 0, "worker-pool size for multi-seed sweeps (0 = GOMAXPROCS, 1 = serial)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		exit(2)
		return
	}
	if *seeds < 1 {
		fmt.Fprintf(errOut, "mcagg: -seeds = %d must be ≥ 1\n", *seeds)
		exit(2)
		return
	}
	if *parallel < 0 {
		fmt.Fprintf(errOut, "mcagg: -parallel = %d must be ≥ 0 (0 = GOMAXPROCS)\n", *parallel)
		exit(2)
		return
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(errOut, "mcagg:", err)
		exit(2)
		return
	}
	// exit may be os.Exit, which skips defers — fatal flushes the profiles
	// before every early exit so a failed run still leaves usable output;
	// the deferred call covers the success path (stopProf is idempotent).
	fatal := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, "mcagg:", err)
		}
		exit(code)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, "mcagg:", err)
		}
	}()
	// SIGINT/SIGTERM cancel the suite between runs: the current experiment
	// stops, profiles are still flushed by fatal, and the exit is non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var colorers []string
	if *colorer != "" {
		valid := make(map[string]bool)
		for _, name := range mcnet.ColorerNames() {
			valid[name] = true
		}
		for _, name := range strings.Split(*colorer, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !valid[name] {
				fmt.Fprintf(errOut, "mcagg: unknown coloring backend %q (valid: %s)\n",
					name, strings.Join(mcnet.ColorerNames(), ", "))
				fatal(2)
				return
			}
			colorers = append(colorers, name)
		}
	}
	exec, err := mcnet.ParseExecMode(*execMode)
	if err != nil {
		fmt.Fprintln(errOut, "mcagg:", err)
		fatal(2)
		return
	}
	var byzFracs []float64
	if *byz != "" {
		for _, part := range strings.Split(*byz, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			frac, err := strconv.ParseFloat(part, 64)
			if err != nil {
				fmt.Fprintf(errOut, "mcagg: -byz: bad value %q\n", part)
				fatal(2)
				return
			}
			if frac < 0 || frac > 1 {
				fmt.Fprintf(errOut, "mcagg: -byz value %v must be in [0, 1]\n", frac)
				fatal(2)
				return
			}
			byzFracs = append(byzFracs, frac)
		}
	}
	var jamModels []string
	if *jamModel != "" {
		valid := make(map[string]bool)
		for _, name := range mcnet.JamModelNames() {
			valid[name] = true
		}
		for _, name := range strings.Split(*jamModel, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !valid[name] {
				fmt.Fprintf(errOut, "mcagg: unknown jam model %q (valid: %s)\n",
					name, strings.Join(mcnet.JamModelNames(), ", "))
				fatal(2)
				return
			}
			jamModels = append(jamModels, name)
		}
	}
	o := mcnet.ExperimentOptions{Seeds: *seeds, Quick: *quick, Parallel: *parallel, Colorers: colorers, Exec: exec, Byz: byzFracs, JamModels: jamModels}
	var tables []*mcnet.Table
	if strings.EqualFold(*exp, "all") {
		ts, err := mcnet.AllExperimentsContext(ctx, o)
		if err != nil {
			fmt.Fprintln(errOut, "mcagg:", err)
			fatal(1)
			return
		}
		tables = ts
	} else {
		tb, err := mcnet.RunExperimentContext(ctx, *exp, o)
		if err != nil {
			if errors.Is(err, mcnet.ErrUnknownExperiment) {
				fmt.Fprintf(errOut, "mcagg: unknown experiment %q (valid: %s; use -exp all for the suite)\n",
					*exp, strings.Join(mcnet.ExperimentIDs(), ", "))
				fatal(2)
			} else {
				fmt.Fprintln(errOut, "mcagg:", err)
				fatal(1)
			}
			return
		}
		tables = []*mcnet.Table{tb}
	}
	for _, tb := range tables {
		if *csv {
			fmt.Fprintln(out, tb.CSV())
		} else {
			fmt.Fprintln(out, tb.Render())
		}
	}
}
