// Command mcagg runs the experiment suite of the multichannel-aggregation
// reproduction and prints the resulting tables.
//
// Usage:
//
//	mcagg -exp e1            # one experiment (e1..e10)
//	mcagg -exp all -seeds 5  # the full suite, 5 seeds per point
//	mcagg -exp e3 -quick     # shrunken sweep for a fast look
//	mcagg -exp e1 -csv       # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mcnet/internal/expt"
	"mcnet/internal/stats"
)

func main() { run(os.Args[1:], os.Stdout, os.Exit) }

func run(args []string, out io.Writer, exit func(int)) {
	fs := flag.NewFlagSet("mcagg", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp   = fs.String("exp", "all", "experiment id: e1..e10 or all")
		seeds = fs.Int("seeds", 3, "repetitions per sweep point")
		quick = fs.Bool("quick", false, "shrink sweeps for a fast run")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	if err := fs.Parse(args); err != nil {
		exit(2)
		return
	}
	o := expt.Options{Seeds: *seeds, Quick: *quick}
	var tables []*stats.Table
	if strings.EqualFold(*exp, "all") {
		ts, err := expt.All(o)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			exit(1)
			return
		}
		tables = ts
	} else {
		runner, ok := expt.ByName(strings.ToLower(*exp))
		if !ok {
			fmt.Fprintf(out, "unknown experiment %q (use e1..e10 or all)\n", *exp)
			exit(2)
			return
		}
		tb, err := runner(o)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			exit(1)
			return
		}
		tables = []*stats.Table{tb}
	}
	for _, tb := range tables {
		if *csv {
			fmt.Fprintln(out, tb.CSV())
		} else {
			fmt.Fprintln(out, tb.Render())
		}
	}
}
