// Command mcscenario sweeps fault-intensity grids over the multichannel
// aggregation pipeline: probabilistic message loss, adversarial channel
// jamming and node churn, in every combination, with medians over seeded
// repetitions. Runs execute across a worker pool (-parallel; grid-point
// progress goes to stderr) and the sweep is deterministic — a fixed -seed
// emits a byte-identical table across runs and worker counts.
//
// Usage:
//
//	mcscenario -n 96 -loss 0,0.05,0.1                 # loss sweep
//	mcscenario -jam 0,1,2 -jam-model roundrobin       # jamming sweep
//	mcscenario -churn 0,0.1,0.2 -seeds 3              # churn sweep, 3 seeds/point
//	mcscenario -loss 0,0.1 -jam 0,1 -churn 0,0.1 -csv # full grid, CSV
//	mcscenario -loss 0,0.1 -seeds 8 -parallel 4       # 4 workers, same table
//
// Hot-path regressions can be profiled without editing code:
//
//	mcscenario -loss 0,0.1 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mcnet"
	"mcnet/cmd/internal/prof"
)

func main() { run(os.Args[1:], os.Stdout, os.Stderr, os.Exit) }

func run(args []string, out, errOut io.Writer, exit func(int)) {
	fs := flag.NewFlagSet("mcscenario", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		n          = fs.Int("n", 96, "node count (≥ 2)")
		kind       = fs.String("topo", "crowd", "topology: uniform|crowd|grid|line|ring")
		channels   = fs.Int("channels", 4, "number of radio channels (≥ 1)")
		seeds      = fs.Int("seeds", 1, "repetitions per grid point (≥ 1)")
		seed       = fs.Uint64("seed", 1, "base seed; repetition s runs with seed+s")
		loss       = fs.String("loss", "0", "comma-separated loss probabilities in [0, 1]")
		jam        = fs.String("jam", "0", "comma-separated jammed-channel counts")
		jamModel   = fs.String("jam-model", "oblivious", "jamming adversary: oblivious|roundrobin")
		churn      = fs.String("churn", "0", "comma-separated crash rates in [0, 1]")
		name       = fs.String("name", "mcscenario", "report title")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		parallel   = fs.Int("parallel", 0, "worker-pool size for the sweep's runs (0 = GOMAXPROCS, 1 = serial)")
		quiet      = fs.Bool("quiet", false, "suppress grid-point progress on stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		exit(2)
		return
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(errOut, "mcscenario: "+format+"\n", args...)
		exit(2)
	}
	if *n < 2 {
		fail("-n = %d must be ≥ 2", *n)
		return
	}
	if *channels < 1 {
		fail("-channels = %d must be ≥ 1", *channels)
		return
	}
	if *seeds < 1 {
		fail("-seeds = %d must be ≥ 1", *seeds)
		return
	}
	if *parallel < 0 {
		fail("-parallel = %d must be ≥ 0 (0 = GOMAXPROCS)", *parallel)
		return
	}
	var topo mcnet.Topology
	switch *kind {
	case "uniform":
		topo = mcnet.Uniform(12)
	case "crowd":
		topo = mcnet.Crowd
	case "grid":
		topo = mcnet.Grid
	case "line":
		topo = mcnet.Line(0.7)
	case "ring":
		topo = mcnet.Ring(0.7)
	default:
		fail("unknown topology %q (valid: uniform, crowd, grid, line, ring)", *kind)
		return
	}
	var model mcnet.JamModel
	switch *jamModel {
	case "oblivious":
		model = mcnet.JamOblivious
	case "roundrobin":
		model = mcnet.JamRoundRobin
	default:
		fail("unknown jam model %q (valid: oblivious, roundrobin)", *jamModel)
		return
	}
	lossGrid, err := parseFloats(*loss)
	if err != nil {
		fail("-loss: %v", err)
		return
	}
	for _, p := range lossGrid {
		if p < 0 || p > 1 {
			fail("-loss value %v must be in [0, 1]", p)
			return
		}
	}
	jamGrid, err := parseInts(*jam)
	if err != nil {
		fail("-jam: %v", err)
		return
	}
	for _, k := range jamGrid {
		if k < 0 {
			fail("-jam value %d must be ≥ 0", k)
			return
		}
		if k >= *channels {
			fail("-jam value %d jams every one of %d channels; leave at least one usable", k, *channels)
			return
		}
	}
	churnGrid, err := parseFloats(*churn)
	if err != nil {
		fail("-churn: %v", err)
		return
	}
	for _, r := range churnGrid {
		if r < 0 || r > 1 {
			fail("-churn value %v must be in [0, 1]", r)
			return
		}
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(errOut, "mcscenario:", err)
		exit(2)
		return
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, "mcscenario:", err)
		}
	}()

	// Progress: one line per grid point's worth of completed runs, so long
	// sweeps show life on stderr without flooding it. Parallel workers
	// interleave runs from several grid points, so the point counter is the
	// completed-work equivalent (exact only for -parallel 1, where runs
	// finish in grid order).
	points := len(lossGrid) * len(jamGrid) * len(churnGrid)
	var progress func(done, total int)
	if !*quiet {
		fmt.Fprintf(errOut, "mcscenario: sweeping %d grid points × %d seeds = %d runs\n",
			points, *seeds, points**seeds)
		progress = func(done, total int) {
			if done%*seeds == 0 || done == total {
				fmt.Fprintf(errOut, "mcscenario: %d/%d runs (≈ %d/%d grid points)\n",
					done, total, done / *seeds, points)
			}
		}
	}
	tb, err := mcnet.RunScenario(context.Background(), mcnet.Scenario{
		Name:     *name,
		N:        *n,
		Options:  []mcnet.Option{mcnet.WithTopology(topo), mcnet.Channels(*channels)},
		Loss:     lossGrid,
		Jam:      jamGrid,
		Churn:    churnGrid,
		JamModel: model,
		Seeds:    *seeds,
		BaseSeed: *seed,
		Workers:  *parallel,
		Progress: progress,
	})
	if err != nil {
		fmt.Fprintln(errOut, "mcscenario:", err)
		// exit may be os.Exit, which skips defers — flush the profiles so
		// a failed sweep still leaves usable output (stopProf is
		// idempotent, so the deferred call stays harmless).
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, "mcscenario:", err)
		}
		exit(1)
		return
	}
	if *csv {
		fmt.Fprintln(out, tb.CSV())
	} else {
		fmt.Fprintln(out, tb.Render())
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
