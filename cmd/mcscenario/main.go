// Command mcscenario sweeps fault-intensity grids over the multichannel
// aggregation pipeline: probabilistic message loss, adversarial channel
// jamming (oblivious, round-robin, reactive or adaptive), node churn and
// Byzantine node fractions, in every combination, with medians over seeded
// repetitions. Runs execute across a worker pool (-parallel; grid-point
// progress goes to stderr) and the sweep is deterministic — a fixed -seed
// emits a byte-identical table across runs and worker counts. SIGINT or
// SIGTERM cancels the sweep between runs with a non-zero exit.
//
// Usage:
//
//	mcscenario -n 96 -loss 0,0.05,0.1                 # loss sweep
//	mcscenario -jam 0,1,2 -jam-model roundrobin       # jamming sweep
//	mcscenario -churn 0,0.1,0.2 -seeds 3              # churn sweep, 3 seeds/point
//	mcscenario -byz 0,0.1,0.2 -byz-strategy equivocate # byzantine sweep
//	mcscenario -byz 0,0.2 -jam 1 -jam-model reactive  # byzantine × reactive jam
//	mcscenario -loss 0,0.1 -jam 0,1 -churn 0,0.1 -csv # full grid, CSV
//	mcscenario -loss 0,0.1 -seeds 8 -parallel 4       # 4 workers, same table
//
// Sweeps can also be described as JSON spec documents — the same format
// the mcserved daemon accepts — and either run locally or submitted to a
// running daemon:
//
//	mcscenario -spec sweep.json                        # run the document locally
//	mcscenario -spec sweep.json -submit http://:8357   # queue it on a daemon
//	mcscenario -loss 0,0.1 -submit http://:8357        # flags → spec → daemon
//
// Hot-path regressions can be profiled without editing code:
//
//	mcscenario -loss 0,0.1 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"mcnet"
	"mcnet/cmd/internal/prof"
)

func main() { run(os.Args[1:], os.Stdout, os.Stderr, os.Exit) }

func run(args []string, out, errOut io.Writer, exit func(int)) {
	fs := flag.NewFlagSet("mcscenario", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		n          = fs.Int("n", 96, "node count (≥ 2)")
		kind       = fs.String("topo", "crowd", "topology: uniform|crowd|grid|line|ring")
		channels   = fs.Int("channels", 4, "number of radio channels (≥ 1)")
		seeds      = fs.Int("seeds", 1, "repetitions per grid point (≥ 1)")
		seed       = fs.Uint64("seed", 1, "base seed; repetition s runs with seed+s")
		loss       = fs.String("loss", "0", "comma-separated loss probabilities in [0, 1]")
		jam        = fs.String("jam", "0", "comma-separated jammed-channel counts")
		jamModel   = fs.String("jam-model", "oblivious", "jamming adversary: "+strings.Join(mcnet.JamModelNames(), "|"))
		churn      = fs.String("churn", "0", "comma-separated crash rates in [0, 1]")
		byz        = fs.String("byz", "0", "comma-separated byzantine node fractions in [0, 1]")
		byzStrat   = fs.String("byz-strategy", "corrupt", "byzantine strategy: "+strings.Join(mcnet.ByzStrategyNames(), "|"))
		colorer    = fs.String("colorer", "", "coloring backend pinned in the spec: sec7|dplus1|hsb (default sec7)")
		execMode   = fs.String("exec", "", "execution mode pinned in the spec: auto|goroutines|stepped (default auto)")
		name       = fs.String("name", "mcscenario", "report title")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		parallel   = fs.Int("parallel", 0, "worker-pool size for the sweep's runs (0 = GOMAXPROCS, 1 = serial)")
		quiet      = fs.Bool("quiet", false, "suppress grid-point progress on stderr")
		specFile   = fs.String("spec", "", "run this JSON scenario spec document instead of the grid flags")
		submit     = fs.String("submit", "", "submit the sweep to the mcserved daemon at this base URL instead of running locally")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		exit(2)
		return
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(errOut, "mcscenario: "+format+"\n", args...)
		exit(2)
	}
	if *parallel < 0 {
		fail("-parallel = %d must be ≥ 0 (0 = GOMAXPROCS)", *parallel)
		return
	}

	// SIGINT/SIGTERM cancel the sweep between runs: profiles still flush,
	// the exit is non-zero, and no partial table is printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The sweep comes from a spec document (-spec) or from the grid flags;
	// either way it can run locally or be submitted to a daemon (-submit).
	var (
		sc  mcnet.Scenario
		doc []byte
	)
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fail("%v", err)
			return
		}
		sp, err := mcnet.ParseScenarioSpec(data)
		if err != nil {
			fail("%s: %v", *specFile, err)
			return
		}
		doc = data
		if sc, err = sp.Scenario(); err != nil {
			fail("%s: %v", *specFile, err)
			return
		}
	} else {
		if *n < 2 {
			fail("-n = %d must be ≥ 2", *n)
			return
		}
		if *channels < 1 {
			fail("-channels = %d must be ≥ 1", *channels)
			return
		}
		if *seeds < 1 {
			fail("-seeds = %d must be ≥ 1", *seeds)
			return
		}
		lossGrid, err := parseFloats(*loss)
		if err != nil {
			fail("-loss: %v", err)
			return
		}
		for _, p := range lossGrid {
			if p < 0 || p > 1 {
				fail("-loss value %v must be in [0, 1]", p)
				return
			}
		}
		jamGrid, err := parseInts(*jam)
		if err != nil {
			fail("-jam: %v", err)
			return
		}
		for _, k := range jamGrid {
			if k < 0 {
				fail("-jam value %d must be ≥ 0", k)
				return
			}
			if k >= *channels {
				fail("-jam value %d jams every one of %d channels; leave at least one usable", k, *channels)
				return
			}
		}
		churnGrid, err := parseFloats(*churn)
		if err != nil {
			fail("-churn: %v", err)
			return
		}
		for _, r := range churnGrid {
			if r < 0 || r > 1 {
				fail("-churn value %v must be in [0, 1]", r)
				return
			}
		}
		byzGrid, err := parseFloats(*byz)
		if err != nil {
			fail("-byz: %v", err)
			return
		}
		for _, bf := range byzGrid {
			if bf < 0 || bf > 1 {
				fail("-byz value %v must be in [0, 1]", bf)
				return
			}
		}
		// Route flags through the spec document so the local run, the spec
		// file and the daemon all validate and execute identically.
		sp := mcnet.ScenarioSpec{
			Name:        *name,
			N:           *n,
			Topology:    *kind,
			Channels:    *channels,
			Loss:        lossGrid,
			Jam:         jamGrid,
			Churn:       churnGrid,
			Byz:         byzGrid,
			ByzStrategy: *byzStrat,
			JamModel:    *jamModel,
			Seeds:       *seeds,
			BaseSeed:    *seed,
			Colorer:     *colorer,
			Exec:        *execMode,
		}
		if sc, err = sp.Scenario(); err != nil {
			fail("%v", err)
			return
		}
		if doc, err = json.Marshal(sp); err != nil {
			fail("encoding spec: %v", err)
			return
		}
	}

	if *submit != "" {
		if err := submitJob(ctx, *submit, doc, out); err != nil {
			fmt.Fprintln(errOut, "mcscenario:", err)
			exit(1)
		}
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(errOut, "mcscenario:", err)
		exit(2)
		return
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, "mcscenario:", err)
		}
	}()

	// Progress: one line per grid point's worth of completed runs, so long
	// sweeps show life on stderr without flooding it. Parallel workers
	// interleave runs from several grid points, so the point counter is the
	// completed-work equivalent (exact only for -parallel 1, where runs
	// finish in grid order).
	axis := func(k int) int {
		if k == 0 {
			return 1 // an empty axis sweeps the single zero-fault point
		}
		return k
	}
	points := axis(len(sc.Loss)) * axis(len(sc.Jam)) * axis(len(sc.Churn)) * axis(len(sc.Byz))
	reps := sc.Seeds
	if reps < 1 {
		reps = 1
	}
	if !*quiet {
		fmt.Fprintf(errOut, "mcscenario: sweeping %d grid points × %d seeds = %d runs\n",
			points, reps, points*reps)
		sc.Progress = func(done, total int) {
			if done%reps == 0 || done == total {
				fmt.Fprintf(errOut, "mcscenario: %d/%d runs (≈ %d/%d grid points)\n",
					done, total, done/reps, points)
			}
		}
	}
	sc.Workers = *parallel
	tb, err := mcnet.RunScenario(ctx, sc)
	if err != nil {
		fmt.Fprintln(errOut, "mcscenario:", err)
		// exit may be os.Exit, which skips defers — flush the profiles so
		// a failed sweep still leaves usable output (stopProf is
		// idempotent, so the deferred call stays harmless).
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, "mcscenario:", err)
		}
		exit(1)
		return
	}
	if *csv {
		fmt.Fprintln(out, tb.CSV())
	} else {
		fmt.Fprintln(out, tb.Render())
	}
}

// submitJob posts the spec document to a running mcserved daemon and
// prints the accepted job's status document.
func submitJob(ctx context.Context, baseURL string, doc []byte, out io.Writer) error {
	url := strings.TrimSuffix(baseURL, "/") + "/v1/jobs"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(doc))
	if err != nil {
		return fmt.Errorf("submitting to %s: %w", baseURL, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("submitting to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading response from %s: %w", baseURL, err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("daemon refused the job: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = out.Write(body)
	return err
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
