package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcnet/internal/serve"
)

func TestScenarioSweep(t *testing.T) {
	var buf, errBuf bytes.Buffer
	exitCode := -1
	args := []string{"-n", "32", "-loss", "0,0.1", "-jam", "0,1", "-seeds", "1"}
	run(args, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d, output:\n%s%s", exitCode, buf.String(), errBuf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "surv_agree") || !strings.Contains(out, "mcscenario") {
		t.Errorf("missing table:\n%s", out)
	}
}

// TestScenarioCSVStable is the acceptance check: a fixed seed emits an
// identical CSV across two consecutive runs.
func TestScenarioCSVStable(t *testing.T) {
	sweep := func() string {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		args := []string{"-n", "32", "-loss", "0,0.1", "-churn", "0,0.2", "-seed", "7", "-seeds", "2", "-csv"}
		run(args, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != -1 {
			t.Fatalf("exit code %d: %s", exitCode, errBuf.String())
		}
		return buf.String()
	}
	first := sweep()
	if second := sweep(); first != second {
		t.Errorf("CSV not stable across runs:\n%s\n---\n%s", first, second)
	}
	if !strings.Contains(first, "loss,jam,churn") {
		t.Errorf("missing CSV header:\n%s", first)
	}
	// 2 loss values × 2 churn rates = 4 grid rows after title and header.
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if rows := len(lines) - 2; rows != 4 {
		t.Errorf("%d grid rows, want 4:\n%s", rows, first)
	}
}

func TestScenarioFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"tiny n", []string{"-n", "1"}, "-n"},
		{"negative n", []string{"-n", "-5"}, "-n"},
		{"zero channels", []string{"-channels", "0"}, "-channels"},
		{"zero seeds", []string{"-seeds", "0"}, "-seeds"},
		{"bad topology", []string{"-topo", "moebius"}, "topology"},
		{"bad jam model", []string{"-jam-model", "psychic"}, "jam model"},
		{"bad byz strategy", []string{"-byz-strategy", "gossip"}, "strategy"},
		{"byz out of range", []string{"-byz", "0,1.5"}, "-byz"},
		{"byz negative", []string{"-byz", "-0.1"}, "-byz"},
		{"byz garbage", []string{"-byz", "lots"}, "-byz"},
		{"loss out of range", []string{"-loss", "0,1.5"}, "-loss"},
		{"loss garbage", []string{"-loss", "zero"}, "-loss"},
		{"loss empty", []string{"-loss", ","}, "-loss"},
		{"negative jam", []string{"-jam", "-1"}, "-jam"},
		{"jam all channels", []string{"-channels", "2", "-jam", "2"}, "-jam"},
		{"churn out of range", []string{"-churn", "2"}, "-churn"},
		{"bogus flag", []string{"-bogus"}, ""},
	}
	for _, tc := range cases {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run(tc.args, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != 2 {
			t.Errorf("%s: exit code %d, want 2", tc.name, exitCode)
			continue
		}
		if tc.frag != "" && !strings.Contains(errBuf.String(), tc.frag) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, errBuf.String(), tc.frag)
		}
		if buf.Len() != 0 {
			t.Errorf("%s: error leaked to stdout: %q", tc.name, buf.String())
		}
	}
	// The jam-model rejection must list every valid adversary name.
	var errBuf bytes.Buffer
	run([]string{"-jam-model", "psychic"}, &bytes.Buffer{}, &errBuf, func(int) {})
	for _, name := range []string{"oblivious", "roundrobin", "reactive", "adaptive"} {
		if !strings.Contains(errBuf.String(), name) {
			t.Errorf("jam-model error does not list %q: %q", name, errBuf.String())
		}
	}
}

// TestRunProfiles: -cpuprofile/-memprofile write non-empty pprof files
// around a sweep, and an unwritable path exits 2.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-n", "16", "-seeds", "1", "-quiet", "-cpuprofile", cpu, "-memprofile", mem},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("exit code %d: %s", exitCode, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
	exitCode = -1
	run([]string{"-n", "16", "-quiet", "-memprofile", filepath.Join(dir, "no", "mem.out")},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Errorf("late mem-profile failure should not exit mid-run; got %d", exitCode)
	}
	if !strings.Contains(errBuf.String(), "prof") {
		t.Errorf("missing stderr diagnostic for failed heap profile: %q", errBuf.String())
	}
}

// TestScenarioSpecFile: running a spec document locally emits the same
// CSV as the equivalent grid flags.
func TestScenarioSpecFile(t *testing.T) {
	doc := `{"name": "specrun", "n": 32, "loss": [0, 0.1], "jam": [0, 1], "seeds": 2, "base_seed": 7}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	sweep := func(args ...string) string {
		var buf, errBuf bytes.Buffer
		exitCode := -1
		run(args, &buf, &errBuf, func(c int) { exitCode = c })
		if exitCode != -1 {
			t.Fatalf("run(%v): exit code %d: %s", args, exitCode, errBuf.String())
		}
		return buf.String()
	}
	fromSpec := sweep("-spec", path, "-csv", "-quiet")
	fromFlags := sweep("-name", "specrun", "-n", "32", "-loss", "0,0.1", "-jam", "0,1",
		"-seeds", "2", "-seed", "7", "-csv", "-quiet")
	if fromSpec != fromFlags {
		t.Errorf("spec and flag sweeps differ:\n%s---\n%s", fromSpec, fromFlags)
	}

	// Broken documents exit 2 with the offending field named.
	var buf, errBuf bytes.Buffer
	exitCode := -1
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"n": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	run([]string{"-spec", bad}, &buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != 2 || !strings.Contains(errBuf.String(), `"n"`) {
		t.Errorf("bad spec: exit %d, stderr %q", exitCode, errBuf.String())
	}
}

// TestScenarioSubmit: -submit posts the sweep to a daemon and prints the
// accepted job; a refused submission exits 1.
func TestScenarioSubmit(t *testing.T) {
	s, err := serve.NewServer(serve.Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Drain(ctx)
	}()

	var buf, errBuf bytes.Buffer
	exitCode := -1
	run([]string{"-n", "16", "-loss", "0,0.1", "-submit", ts.URL},
		&buf, &errBuf, func(c int) { exitCode = c })
	if exitCode != -1 {
		t.Fatalf("submit: exit code %d: %s", exitCode, errBuf.String())
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("submit output %q: %v", buf.String(), err)
	}
	if st.ID == "" || st.Total != 2 {
		t.Errorf("submit response %+v, want a 2-item job", st)
	}

	exitCode = -1
	errBuf.Reset()
	run([]string{"-n", "16", "-channels", "2", "-jam", "0,1", "-submit", ts.URL + "/nowhere"},
		&bytes.Buffer{}, &errBuf, func(c int) { exitCode = c })
	if exitCode != 1 {
		t.Errorf("submit to a bad endpoint: exit code %d, want 1 (%s)", exitCode, errBuf.String())
	}
}
