package geo

import (
	"math/rand"
	"testing"
)

func BenchmarkGridNeighbors(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := make([]Point, 4096)
	for i := range pts {
		pts[i] = Point{X: r.Float64() * 64, Y: r.Float64() * 64}
	}
	g := NewGrid(pts, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := pts[i%len(pts)]
		g.CountNeighbors(q, 1)
	}
}

func BenchmarkGridBuild4k(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	pts := make([]Point, 4096)
	for i := range pts {
		pts[i] = Point{X: r.Float64() * 64, Y: r.Float64() * 64}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGrid(pts, 1)
	}
}
