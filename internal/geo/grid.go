package geo

import "math"

// Grid is a uniform spatial hash over a fixed point set, supporting
// radius-bounded neighbor enumeration in expected O(1 + k) time per query
// for query radii on the order of the cell size.
//
// The point set is immutable after construction; indices into the original
// slice are returned by queries.
type Grid struct {
	pts    []Point
	cell   float64
	origin Point
	cols   int
	rows   int
	// buckets[r*cols+c] lists point indices in cell (c, r).
	buckets [][]int32
}

// maxGridCells bounds the bucket allocation; point sets whose extent is
// huge relative to the cell size (e.g. the exponential chain) get coarser
// cells, which stays correct — queries just scan more candidates.
const maxGridCells = 1 << 21

// NewGrid builds a grid over pts with the given cell size. Cell size must be
// positive; it is typically the most common query radius.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		panic("geo: grid cell size must be positive and finite")
	}
	min, max := BoundingBox(pts)
	for {
		c := (max.X-min.X)/cell + 1
		r := (max.Y-min.Y)/cell + 1
		if c*r <= maxGridCells {
			break
		}
		cell *= 2
	}
	cols := int((max.X-min.X)/cell) + 1
	rows := int((max.Y-min.Y)/cell) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := &Grid{
		pts:     pts,
		cell:    cell,
		origin:  min,
		cols:    cols,
		rows:    rows,
		buckets: make([][]int32, cols*rows),
	}
	for i, p := range pts {
		idx := g.cellIndex(p)
		g.buckets[idx] = append(g.buckets[idx], int32(i))
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// CellSize returns the edge length of the grid's cells. It may be larger
// than the size requested at construction when the point set's extent forced
// coarsening (see maxGridCells).
func (g *Grid) CellSize() float64 { return g.cell }

// Dims returns the number of grid columns and rows.
func (g *Grid) Dims() (cols, rows int) { return g.cols, g.rows }

// CellCoord returns the (col, row) of the cell containing p, clamped to the
// grid's extent.
func (g *Grid) CellCoord(p Point) (col, row int) { return g.cellCoord(p) }

// Points returns the indexed point slice (shared, do not mutate).
func (g *Grid) Points() []Point { return g.pts }

func (g *Grid) cellCoord(p Point) (int, int) {
	c := int((p.X - g.origin.X) / g.cell)
	r := int((p.Y - g.origin.Y) / g.cell)
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return c, r
}

func (g *Grid) cellIndex(p Point) int {
	c, r := g.cellCoord(p)
	return r*g.cols + c
}

// ForNeighbors calls fn for the index of every point within distance r of q
// (inclusive), in unspecified order. Iteration stops early if fn returns
// false. The query point itself is included when it is part of the set.
func (g *Grid) ForNeighbors(q Point, r float64, fn func(i int) bool) {
	if r < 0 {
		return
	}
	span := int(math.Ceil(r/g.cell)) + 1
	qc, qr := g.cellCoord(q)
	r2 := r * r
	for row := qr - span; row <= qr+span; row++ {
		if row < 0 || row >= g.rows {
			continue
		}
		for col := qc - span; col <= qc+span; col++ {
			if col < 0 || col >= g.cols {
				continue
			}
			for _, i := range g.buckets[row*g.cols+col] {
				if g.pts[i].Dist2(q) <= r2 {
					if !fn(int(i)) {
						return
					}
				}
			}
		}
	}
}

// Neighbors returns the indices of all points within distance r of q.
func (g *Grid) Neighbors(q Point, r float64) []int {
	var out []int
	g.ForNeighbors(q, r, func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// CountNeighbors returns how many points lie within distance r of q.
func (g *Grid) CountNeighbors(q Point, r float64) int {
	n := 0
	g.ForNeighbors(q, r, func(int) bool {
		n++
		return true
	})
	return n
}
