package geo

import (
	"math/rand"
	"testing"
)

// TestGridCellBoundaryPoints: points landing exactly on cell edges (exact
// multiples of the cell size) must be binned consistently with CellCoord
// and stay findable by neighbor queries at exactly-touching radii — the
// inclusive ≤ r contract, with no point lost between two cells.
func TestGridCellBoundaryPoints(t *testing.T) {
	const cell = 0.5
	var pts []Point
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			pts = append(pts, Point{X: float64(i) * cell, Y: float64(j) * cell})
		}
	}
	g := NewGrid(pts, cell)
	// Every point is found at radius 0 from itself.
	for i, p := range pts {
		found := false
		g.ForNeighbors(p, 0, func(k int) bool {
			if k == i {
				found = true
			}
			return true
		})
		if !found {
			t.Fatalf("point %d on a cell boundary lost by its own grid", i)
		}
	}
	// A query radius exactly equal to the spacing includes the 4-neighbors
	// (inclusive contract) — the center of the lattice has 4 at distance
	// exactly cell plus itself.
	center := Point{X: 2 * cell, Y: 2 * cell}
	if got := g.CountNeighbors(center, cell); got != 5 {
		t.Errorf("boundary-radius query found %d points, want 5 (self + 4 touching)", got)
	}
	// CellCoord is consistent with the binning: querying each point's own
	// cell coordinate never goes out of range.
	for _, p := range pts {
		c, r := g.CellCoord(p)
		cols, rows := g.Dims()
		if c < 0 || c >= cols || r < 0 || r >= rows {
			t.Fatalf("CellCoord(%v) = (%d, %d) outside %dx%d", p, c, r, cols, rows)
		}
	}
}

// TestGridAllColocated: a degenerate deployment with every node at the
// same position collapses to a 1×1 grid that still answers queries.
func TestGridAllColocated(t *testing.T) {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{X: 3.25, Y: -1.5}
	}
	g := NewGrid(pts, 0.5)
	cols, rows := g.Dims()
	if cols != 1 || rows != 1 {
		t.Errorf("colocated grid dims = %dx%d, want 1x1", cols, rows)
	}
	if got := g.CountNeighbors(pts[0], 0); got != len(pts) {
		t.Errorf("radius-0 query found %d, want all %d colocated points", got, len(pts))
	}
	if got := g.CountNeighbors(Point{X: 100, Y: 100}, 1); got != 0 {
		t.Errorf("distant query found %d, want 0", got)
	}
}

// TestGridMaxCornerClamp: the point at the exact top-right corner of the
// bounding box sits on the boundary of a cell that would be out of range;
// cellCoord clamps it into the last cell instead of dropping it.
func TestGridMaxCornerClamp(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	g := NewGrid(pts, 1) // corner point lands exactly on a cell edge
	for i, p := range pts {
		if got := g.CountNeighbors(p, 0); got < 1 {
			t.Errorf("point %d (%v) unreachable: %d", i, p, got)
		}
	}
	if got := g.CountNeighbors(Point{X: 2, Y: 2}, 1.5); got != 2 {
		t.Errorf("corner query found %d, want 2", got)
	}
}

// TestGridBoundaryBruteForce is a randomized cross-check biased to the
// awkward cases: points snapped to cell boundaries, duplicated points, and
// query radii at exact multiples of the cell size.
func TestGridBoundaryBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		const cell = 0.25
		n := 40 + r.Intn(80)
		pts := make([]Point, n)
		for i := range pts {
			// Half the points snap to exact cell boundaries.
			x, y := r.Float64()*4, r.Float64()*4
			if r.Intn(2) == 0 {
				x = float64(int(x/cell)) * cell
				y = float64(int(y/cell)) * cell
			}
			pts[i] = Point{X: x, Y: y}
		}
		// Sprinkle exact duplicates.
		for i := 0; i < n/8; i++ {
			pts[r.Intn(n)] = pts[r.Intn(n)]
		}
		g := NewGrid(pts, cell)
		for q := 0; q < 20; q++ {
			query := pts[r.Intn(n)]
			radius := float64(r.Intn(5)) * cell // exact multiples incl. 0
			want := 0
			for _, p := range pts {
				if p.Dist2(query) <= radius*radius {
					want++
				}
			}
			if got := g.CountNeighbors(query, radius); got != want {
				t.Fatalf("trial %d: radius %v from %v: grid %d vs brute force %d",
					trial, radius, query, got, want)
			}
		}
	}
}
