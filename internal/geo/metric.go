package geo

import "math"

// Metric is a distance function on the plane. The paper's results hold in
// any "fading metric" — a metric whose doubling dimension is strictly below
// the path-loss exponent α (footnote 1; see also [12]). Every norm-induced
// plane metric has doubling dimension 2, so with the default α = 3 all of
// the metrics below are fading.
type Metric func(p, q Point) float64

// Euclidean is the default L2 metric.
func Euclidean(p, q Point) float64 { return p.Dist(q) }

// Manhattan is the L1 ("street grid") metric.
func Manhattan(p, q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Chebyshev is the L∞ metric.
func Chebyshev(p, q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Abs(p.Y-q.Y))
}
