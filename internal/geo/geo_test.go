package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 0}, Point{0, 2}, 2.5},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.q.Dist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v, %v", c.p, c.q)
		}
		if got := c.p.Dist2(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("Dist2(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestInBallAndAnnulus(t *testing.T) {
	c := Point{0, 0}
	if !c.InBall(Point{1, 0}, 1) {
		t.Error("boundary point should be inside closed ball")
	}
	if c.InBall(Point{1.0001, 0}, 1) {
		t.Error("outside point reported inside ball")
	}
	if !c.InAnnulus(Point{2, 0}, 2, 3) {
		t.Error("lo boundary should be inside half-open annulus")
	}
	if c.InAnnulus(Point{3, 0}, 2, 3) {
		t.Error("hi boundary should be outside half-open annulus")
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox(nil)
	if min != (Point{}) || max != (Point{}) {
		t.Error("empty bounding box should be zero")
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	min, max = BoundingBox(pts)
	if min != (Point{-2, -1}) || max != (Point{4, 5}) {
		t.Errorf("BoundingBox = %v, %v", min, max)
	}
}

func randPoints(r *rand.Rand, n int, span float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64() * span, r.Float64() * span}
	}
	return pts
}

func bruteNeighbors(pts []Point, q Point, r float64) map[int]bool {
	out := map[int]bool{}
	for i, p := range pts {
		if p.Dist(q) <= r {
			out[i] = true
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		pts := randPoints(r, n, 100)
		cell := 1 + r.Float64()*20
		g := NewGrid(pts, cell)
		for q := 0; q < 10; q++ {
			query := Point{r.Float64() * 120, r.Float64() * 120}
			radius := r.Float64() * 40
			want := bruteNeighbors(pts, query, radius)
			got := map[int]bool{}
			for _, i := range g.Neighbors(query, radius) {
				got[i] = true
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: grid %d neighbors, brute %d (n=%d cell=%v r=%v)",
					trial, len(got), len(want), n, cell, radius)
			}
			for i := range want {
				if !got[i] {
					t.Fatalf("trial %d: grid missed neighbor %d", trial, i)
				}
			}
		}
	}
}

func TestGridQuickProperty(t *testing.T) {
	// Property: for any random configuration, CountNeighbors equals the
	// brute-force count.
	f := func(seed int64, nRaw uint8, cellRaw, radiusRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%100
		pts := randPoints(r, n, 50)
		cell := 0.5 + float64(cellRaw%100)/10
		radius := float64(radiusRaw%300) / 10
		g := NewGrid(pts, cell)
		q := Point{r.Float64() * 60, r.Float64() * 60}
		return g.CountNeighbors(q, radius) == len(bruteNeighbors(pts, q, radius))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGridEarlyStop(t *testing.T) {
	pts := []Point{{0, 0}, {0.1, 0}, {0.2, 0}, {5, 5}}
	g := NewGrid(pts, 1)
	calls := 0
	g.ForNeighbors(Point{0, 0}, 1, func(int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop made %d calls, want 1", calls)
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid([]Point{{0, 0}}, 1)
	if got := g.CountNeighbors(Point{0, 0}, -1); got != 0 {
		t.Errorf("negative radius returned %d neighbors", got)
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	for _, cell := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(cell=%v) did not panic", cell)
				}
			}()
			NewGrid([]Point{{0, 0}}, cell)
		}()
	}
}

func TestMaxBallCount(t *testing.T) {
	// Three points within radius 1 of the first, one far away.
	pts := []Point{{0, 0}, {0.5, 0}, {0, 0.5}, {10, 10}}
	if got := MaxBallCount(pts, 1); got != 3 {
		t.Errorf("MaxBallCount = %d, want 3", got)
	}
	if got := MaxBallCount(pts, 0.1); got != 1 {
		t.Errorf("MaxBallCount small radius = %d, want 1", got)
	}
}

func TestMinPairwiseDist(t *testing.T) {
	if !math.IsInf(MinPairwiseDist(nil), 1) {
		t.Error("empty set should give +Inf")
	}
	if !math.IsInf(MinPairwiseDist([]Point{{1, 1}}), 1) {
		t.Error("singleton should give +Inf")
	}
	pts := []Point{{0, 0}, {3, 4}, {0, 1}}
	if got := MinPairwiseDist(pts); math.Abs(got-1) > 1e-12 {
		t.Errorf("MinPairwiseDist = %v, want 1", got)
	}
}

func TestMinPairwiseDistLarge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := randPoints(r, 500, 100)
	want := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < want {
				want = d
			}
		}
	}
	if got := MinPairwiseDist(pts); math.Abs(got-want) > 1e-12 {
		t.Errorf("MinPairwiseDist = %v, want %v", got, want)
	}
}
