// Package geo provides plane geometry primitives used throughout the
// simulator: points, distance computations, and ball/annulus queries.
//
// All coordinates are in abstract distance units; the SINR model layer
// (internal/model) decides what one unit means relative to the transmission
// range.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons against a squared radius.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the translation of p by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by the factor s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// InBall reports whether q lies in the closed ball of radius r around p.
func (p Point) InBall(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// InAnnulus reports whether q lies in the half-open annulus centered at p
// with radii [lo, hi).
func (p Point) InAnnulus(q Point, lo, hi float64) bool {
	d2 := p.Dist2(q)
	return d2 >= lo*lo && d2 < hi*hi
}

// BoundingBox returns the min and max corners of the axis-aligned bounding
// box of pts. It returns zero points for an empty slice.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// MaxBallCount returns, for a set of points and radius r, the maximum number
// of points contained in any r-ball centered at one of the points. This is
// the "density" measure used by the paper for dominating sets (with centers
// restricted to the point set itself, which bounds the continuous density to
// within a constant factor).
func MaxBallCount(pts []Point, r float64) int {
	g := NewGrid(pts, r)
	best := 0
	for i, p := range pts {
		n := 0
		g.ForNeighbors(p, r, func(int) bool {
			n++
			return true
		})
		_ = i
		if n > best {
			best = n
		}
	}
	return best
}

// MinPairwiseDist returns the smallest pairwise distance among pts, or +Inf
// when fewer than two points are given.
func MinPairwiseDist(pts []Point) float64 {
	if len(pts) < 2 {
		return math.Inf(1)
	}
	// Grid with a heuristic cell size; fall back to brute force for tiny n.
	if len(pts) <= 64 {
		best := math.Inf(1)
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if d := pts[i].Dist(pts[j]); d < best {
					best = d
				}
			}
		}
		return best
	}
	min, max := BoundingBox(pts)
	span := math.Max(max.X-min.X, max.Y-min.Y)
	cell := span / math.Sqrt(float64(len(pts)))
	if cell <= 0 {
		cell = 1
	}
	for {
		g := NewGrid(pts, cell)
		best := math.Inf(1)
		for i, p := range pts {
			g.ForNeighbors(p, cell, func(j int) bool {
				if j != i {
					if d := p.Dist(pts[j]); d < best {
						best = d
					}
				}
				return true
			})
		}
		if !math.IsInf(best, 1) {
			return best
		}
		cell *= 2 // no neighbor found within cell radius; widen
	}
}
