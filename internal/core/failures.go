package core

import (
	"mcnet/internal/agg"
	"mcnet/internal/backbone"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// Stage indices for failure injection.
const (
	StageBuild = iota
	StageFollowers
	StageTree
	StageBackbone
	StageInform
	stageCount
)

// RunWithFailures executes the aggregation pipeline with crash faults:
// diesBefore[i] = s makes node i power off just before stage s (use
// stageCount or omit the key to keep a node alive). Dead nodes simply
// return from their program — the engine idles them — so the run always
// completes; the caller inspects how gracefully the structure degraded.
func RunWithFailures(e *sim.Engine, pl *Plan, values []int64, op agg.Op, diesBefore map[int]int) ([]Result, error) {
	n := e.Field().N()
	if len(values) != n {
		values = make([]int64, n)
	}
	res := make([]Result, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		deadAt, ok := diesBefore[i]
		if !ok {
			deadAt = stageCount
		}
		progs[i] = pl.failureProgram(i, deadAt, values[i], op, res)
	}
	if _, err := e.Run(progs); err != nil {
		return nil, err
	}
	return res, nil
}

func (pl *Plan) failureProgram(i, deadAt int, value int64, op agg.Op, res []Result) sim.Program {
	return func(ctx *sim.Ctx) {
		r := &res[i]
		if deadAt <= StageBuild {
			return
		}
		st := pl.BuildStage(ctx)
		r.IsDominator = st.IsDominator()
		r.Dominator = st.Dom.Dominator
		r.Color = st.Color
		r.SizeEst = st.Est
		r.Channel = st.Channel
		r.IsReporter = st.IsReporter()
		if deadAt <= StageFollowers {
			return
		}
		got, _ := pl.FollowerStage(ctx, st, value)
		if deadAt <= StageTree {
			return
		}
		cast := pl.CastConfig(st.Off)
		var clusterAgg int64
		if st.Role >= 0 {
			castVal := value
			for _, v := range got {
				castVal = op.Combine(castVal, v)
			}
			cs := reporter.RunCastUp(ctx, cast, st.Role, st.Dom.Dominator, castVal, op)
			if st.Role == 0 {
				clusterAgg = cs.Value
			}
		} else {
			reporter.IdleCast(ctx, cast)
		}
		if deadAt <= StageBackbone {
			return
		}
		var final int64
		informed := false
		if st.IsDominator() {
			out := backbone.RunTree(ctx, pl.Tree, st.Off, clusterAgg, op)
			final, informed = out.Result, out.Done
		} else {
			backbone.IdleTree(ctx, pl.Tree)
		}
		if deadAt <= StageInform {
			return
		}
		final, informed = pl.InformStage(ctx, st, final, informed)
		if informed {
			r.Value, r.Ok = final, true
			ctx.Emit(EventInformed, 0)
		}
	}
}
