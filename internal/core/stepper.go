package core

import (
	"context"
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/backbone"
	"mcnet/internal/csa"
	"mcnet/internal/dominate"
	"mcnet/internal/phy"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// This file is the Stepper-form port of the pipeline (see internal/sim:
// Stepper, Frag). pipelineStepper chains the per-stage fragments exactly as
// program chains the goroutine stage calls; the stage-glue code (structure
// bookkeeping, the elect channel draw, the cast-value fold) runs at the
// fragment boundaries, in the same position of the node's random stream and
// slot timeline as in the goroutine form, so both forms produce
// bit-identical transcripts. TestRunSteppedIdentity pins this.

// RunStepped executes the full pipeline in the engine's goroutine-free mode.
// It is behaviorally identical to Run — same per-node results, same
// transcript, same events — but drives the nodes as Steppers, which at crowd
// scale avoids the per-node goroutine stacks and the park/unpark slot cost.
func RunStepped(e *sim.Engine, pl *Plan, values []int64, op agg.Op, seed uint64) ([]Result, error) {
	return RunSteppedContext(context.Background(), e, pl, values, op, seed)
}

// RunSteppedContext is like RunStepped but aborts promptly with ctx.Err()
// when ctx is cancelled mid-run.
func RunSteppedContext(ctx context.Context, e *sim.Engine, pl *Plan, values []int64, op agg.Op, seed uint64) ([]Result, error) {
	n := e.Field().N()
	if len(values) != n {
		return nil, fmt.Errorf("core: %d values for %d nodes", len(values), n)
	}
	res := make([]Result, n)
	steppers := make([]sim.Stepper, n)
	arena := make([]pipelineStepper, n) // one allocation for all nodes
	for i := 0; i < n; i++ {
		arena[i] = pipelineStepper{pl: pl, value: values[i], op: op, res: res}
		steppers[i] = &arena[i]
	}
	_ = seed
	if _, err := e.RunSteppersContext(ctx, steppers); err != nil {
		return nil, err
	}
	return res, nil
}

// Pipeline stages, in slot order.
const (
	stDominate uint8 = iota
	stColor
	stAnnounce
	stCSA
	stElect
	stFollower
	stCast
	stTree
	stInform
	stDone
)

// pipelineStepper is one node's pipeline as a sim.Stepper: the active
// fragment acts each slot; when it finalizes, the stage glue runs and the
// next fragment starts within the same Step call.
type pipelineStepper struct {
	pl    *Plan
	value int64
	op    agg.Op
	res   []Result

	stage uint8
	st    Structure
	cur   sim.Frag

	// Stages every node (or every member — at crowd scale, nearly every
	// node) passes through live as values inside the stepper, so entering
	// them costs zero allocations: cur points at the embedded field. The
	// rare-role fragments (dominators are ~1 per cluster) stay heap
	// pointers to keep the arena element lean.
	dom     dominate.RunFrag
	ann     announceFrag
	csaDee  csa.DominateeFrag
	csaSDee csa.SmallDominateeFrag
	elect   reporter.ElectFrag
	fol     followerFrag
	inf     informFrag
	idle    sim.IdleFrag

	col     *backbone.ColorFrag
	csaDom  *csa.DominatorFrag
	csaSDom *csa.SmallDominatorFrag
	cast    *reporter.CastUpFrag
	tree    *backbone.TreeFrag

	ownColor   int
	clusterAgg int64
}

// Step implements sim.Stepper.
func (ps *pipelineStepper) Step(sc *sim.StepCtx) {
	for {
		if ps.cur != nil {
			if !ps.cur.Feed(sc) {
				return
			}
			ps.cur = nil
			ps.leave(sc)
		}
		if ps.stage == stDone {
			sc.Done()
			return
		}
		ps.enter(sc)
	}
}

// enterIdle points cur at the embedded idle fragment, reset for a k-slot
// idle stretch.
func (ps *pipelineStepper) enterIdle(k int) {
	ps.idle = sim.IdleFrag{K: k}
	ps.cur = &ps.idle
}

// enter builds the fragment for the current stage — the mirror of the
// goroutine form's stage-call sites, including their pre-call glue (the
// member's elect channel draw, the reporter's cast-value fold).
func (ps *pipelineStepper) enter(sc *sim.StepCtx) {
	pl := ps.pl
	p := sc.Params()
	switch ps.stage {
	case stDominate:
		ps.dom = dominate.RunFrag{Cfg: pl.Dominate}
		ps.cur = &ps.dom
	case stColor:
		if ps.st.Dom.IsDominator {
			ps.col = &backbone.ColorFrag{Cfg: pl.Color}
			ps.cur = ps.col
		} else {
			ps.enterIdle(pl.Color.SlotBudget(p))
		}
	case stAnnounce:
		ps.ann = announceFrag{pl: pl, dom: ps.st.Dom, ownColor: ps.ownColor}
		ps.cur = &ps.ann
	case stCSA:
		if pl.UseSmall {
			cfg := pl.CSASmall
			cfg.Offset = ps.st.Off
			if ps.st.Dom.IsDominator {
				ps.csaSDom = &csa.SmallDominatorFrag{Cfg: cfg}
				ps.cur = ps.csaSDom
			} else {
				ps.csaSDee = csa.SmallDominateeFrag{Cfg: cfg, Dom: ps.st.Dom.Dominator}
				ps.cur = &ps.csaSDee
			}
		} else {
			cfg := pl.CSALarge
			cfg.Offset = ps.st.Off
			if ps.st.Dom.IsDominator {
				ps.csaDom = &csa.DominatorFrag{Cfg: cfg, Dom: sc.ID()}
				ps.cur = ps.csaDom
			} else {
				ps.csaDee = csa.DominateeFrag{Cfg: cfg, Dom: ps.st.Dom.Dominator}
				ps.cur = &ps.csaDee
			}
		}
	case stElect:
		ps.st.Fv = pl.fv(ps.st.Est)
		elect := pl.Elect
		elect.Offset = ps.st.Off
		ps.st.Role = -1
		if ps.st.Dom.IsDominator {
			ps.enterIdle(elect.SlotBudget(p))
		} else {
			ps.st.Channel = sc.Rand.Intn(ps.st.Fv)
			ps.elect = reporter.ElectFrag{Cfg: elect, Channel: ps.st.Channel, Dom: ps.st.Dom.Dominator}
			ps.cur = &ps.elect
		}
	case stFollower:
		ps.fol = followerFrag{pl: pl, st: ps.st, value: ps.value}
		ps.cur = &ps.fol
	case stCast:
		cast := pl.CastConfig(ps.st.Off)
		if ps.st.Role >= 0 {
			castVal := ps.value
			for _, v := range ps.fol.Got {
				castVal = ps.op.Combine(castVal, v)
			}
			ps.cast = &reporter.CastUpFrag{
				Cfg: cast, Role: ps.st.Role, Dom: ps.st.Dom.Dominator,
				Value: castVal, Op: ps.op,
			}
			ps.cur = ps.cast
		} else {
			ps.enterIdle(cast.SlotBudget())
		}
	case stTree:
		if ps.st.IsDominator() {
			ps.tree = &backbone.TreeFrag{Cfg: pl.Tree, Color: ps.st.Off, Value: ps.clusterAgg, Op: ps.op}
			ps.cur = ps.tree
		} else {
			ps.enterIdle(pl.Tree.SlotBudget())
		}
	case stInform:
		ps.inf = informFrag{pl: pl, st: ps.st}
		if ps.st.IsDominator() && ps.tree != nil {
			ps.inf.Value, ps.inf.Have = ps.tree.Out.Result, ps.tree.Out.Done
		}
		ps.cur = &ps.inf
	}
}

// leave consumes the finished stage's result — the mirror of the goroutine
// form's post-call glue, including its Emits.
func (ps *pipelineStepper) leave(sc *sim.StepCtx) {
	pl := ps.pl
	switch ps.stage {
	case stDominate:
		ps.st = Structure{Channel: -1}
		ps.st.Dom = ps.dom.Out
		ps.stage = stColor
	case stColor:
		if ps.st.Dom.IsDominator {
			ps.ownColor = ps.col.Out.Color
		} else {
			ps.ownColor = -1
		}
		ps.col = nil
		ps.stage = stAnnounce
	case stAnnounce:
		ps.st.Color = ps.ann.Color
		ps.st.Off = ps.st.Color % pl.Cfg.PhiMax
		if ps.st.Off < 0 {
			ps.st.Off = 0
		}
		ps.stage = stCSA
	case stCSA:
		switch {
		case pl.UseSmall && ps.st.Dom.IsDominator:
			ps.st.Est = ps.csaSDom.Estimate
		case pl.UseSmall:
			ps.st.Est = ps.csaSDee.Estimate
		case ps.st.Dom.IsDominator:
			ps.st.Est = ps.csaDom.Estimate + 1 // members + self
		default:
			est := ps.csaDee.Estimate
			if est > 0 {
				est++
			}
			ps.st.Est = est
		}
		ps.csaDom, ps.csaSDom = nil, nil
		ps.csaSDee = csa.SmallDominateeFrag{} // drops its internal sub-fragments
		ps.stage = stElect
	case stElect:
		if ps.st.Dom.IsDominator {
			ps.st.Role = 0
		} else if ps.elect.Min == sc.ID() {
			ps.st.Role = ps.st.Channel + 1
		}
		r := &ps.res[sc.ID()]
		r.IsDominator = ps.st.IsDominator()
		r.Dominator = ps.st.Dom.Dominator
		r.Color = ps.st.Color
		r.SizeEst = ps.st.Est
		r.Channel = ps.st.Channel
		r.IsReporter = ps.st.IsReporter()
		ps.stage = stFollower
	case stFollower:
		ps.stage = stCast
	case stCast:
		if ps.st.Role == 0 {
			ps.clusterAgg = ps.cast.St.Value
			sc.Emit(EventClusterAgg, 0)
		}
		ps.fol = followerFrag{} // drops the reporter's Got map
		ps.cast = nil
		ps.stage = stTree
	case stTree:
		ps.stage = stInform
	case stInform:
		if ps.inf.Have {
			r := &ps.res[sc.ID()]
			r.Value, r.Ok = ps.inf.Value, true
			sc.Emit(EventInformed, 0)
		}
		ps.tree = nil
		ps.stage = stDone
	}
}

// announceFrag is the sim.Frag form of runAnnounce. Color is valid once
// Feed returns true.
type announceFrag struct {
	pl       *Plan
	dom      dominate.Outcome
	ownColor int
	Color    int

	init  bool
	s     int
	color int
	await bool
}

// Feed implements sim.Frag.
func (f *announceFrag) Feed(sc *sim.StepCtx) bool {
	if !f.init {
		f.init = true
		f.color = -1
	}
	p := f.pl.Params
	if f.await {
		f.await = false
		rec := sc.Prev()
		if m, ok := rec.Msg.(ColorMsg); ok && m.Dom == f.dom.Dominator &&
			phy.SenderWithin(rec, p, p.ClusterRadius()) {
			f.color = m.Color
		}
	}
	if f.s >= f.pl.AnnounceSlots {
		if f.dom.IsDominator {
			f.Color = f.ownColor
		} else {
			f.Color = f.color
			if f.Color < 0 {
				f.Color = 0 // degraded: TDMA misalignment possible, but keep going
			}
		}
		return true
	}
	f.s++
	if f.dom.IsDominator {
		if sc.Rand.Float64() < 0.2 {
			sc.Transmit(0, ColorMsg{Dom: sc.ID(), Color: f.ownColor})
		} else {
			sc.Idle()
		}
		return false
	}
	if f.color >= 0 {
		sc.Idle()
		return false
	}
	sc.Listen(0)
	f.await = true
	return false
}

// folAwait tags which listen, if any, the follower fragment's previous slot
// holds.
type folAwait uint8

const (
	folAwaitNone folAwait = iota
	folAwaitRep
	folAwaitDom
	folAwaitAck
	folAwaitBackoff
)

// followerFrag is the sim.Frag form of FollowerStage. Got and AckedOn are
// valid once Feed returns true.
type followerFrag struct {
	pl    *Plan
	st    Structure
	value int64

	Got     map[int]int64
	AckedOn int

	init                   bool
	stride, off            int
	isRep, isDom, follower bool
	repChan                int
	acked                  bool
	pu                     float64
	memberR                float64
	phase, round           int
	pos                    uint8 // 0-3 value rounds, 4-7 backoff round
	count                  int
	heardBackoff           bool
	sentOn, ackTo          int
	await                  folAwait
}

// Feed implements sim.Frag.
func (f *followerFrag) Feed(sc *sim.StepCtx) bool {
	pl := f.pl
	p := pl.Params
	if !f.init {
		f.init = true
		f.stride = pl.Cfg.PhiMax
		f.isRep = f.st.IsReporter()
		f.repChan = f.st.Role - 1
		f.isDom = f.st.IsDominator()
		f.follower = !f.isRep && !f.isDom
		f.pu = pl.Cfg.Lambda * float64(f.st.Fv) / float64(max2(f.st.Est, 1))
		if f.pu > 0.5 {
			f.pu = 0.5
		}
		f.memberR = pl.ClusterRadius()
		f.off = f.st.Off
		f.AckedOn = -1
		f.sentOn, f.ackTo = -1, -1
		if f.isRep {
			f.Got = map[int]int64{}
		}
	}
	switch f.await {
	case folAwaitRep:
		rec := sc.Prev()
		if m, ok := rec.Msg.(FollowerMsg); ok && m.Dom == f.st.Dom.Dominator &&
			phy.SenderWithin(rec, p, f.memberR) {
			f.Got[m.From] = m.Value
			f.ackTo = m.From
		}
	case folAwaitDom:
		rec := sc.Prev()
		if m, ok := rec.Msg.(FollowerMsg); ok && m.Dom == sc.ID() &&
			phy.SenderWithin(rec, p, f.memberR) {
			f.count++
		}
	case folAwaitAck:
		rec := sc.Prev()
		if a, ok := rec.Msg.(FollowerAck); ok && a.To == sc.ID() &&
			a.Dom == f.st.Dom.Dominator {
			f.acked = true
			f.AckedOn = f.sentOn
			sc.Emit(EventAcked, f.phase)
		}
	case folAwaitBackoff:
		rec := sc.Prev()
		if b, ok := rec.Msg.(Backoff); ok && b.Dom == f.st.Dom.Dominator &&
			phy.SenderWithin(rec, p, f.memberR) {
			f.heardBackoff = true
		}
	}
	f.await = folAwaitNone
	for {
		if f.phase >= pl.FollowerPhases {
			return true
		}
		switch f.pos {
		case 0: // value-round pre-idle
			if f.round >= pl.FollowerGamma {
				f.pos = 4
				continue
			}
			f.pos = 1
			if k := 2 * f.off; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 1: // sub-slot 1: follower transmissions
			f.pos = 2
			f.sentOn, f.ackTo = -1, -1
			switch {
			case f.follower && !f.acked && sc.Rand.Float64() < f.pu:
				f.sentOn = sc.Rand.Intn(f.st.Fv)
				sc.Transmit(f.sentOn, FollowerMsg{From: sc.ID(), Dom: f.st.Dom.Dominator, Value: f.value})
			case f.isRep:
				sc.Listen(f.repChan)
				f.await = folAwaitRep
			case f.isDom:
				sc.Listen(0)
				f.await = folAwaitDom
			default:
				sc.Idle()
			}
			return false
		case 2: // sub-slot 2: acknowledgements
			f.pos = 3
			switch {
			case f.isRep && f.ackTo >= 0:
				sc.Transmit(f.repChan, FollowerAck{To: f.ackTo, Dom: f.st.Dom.Dominator})
			case f.follower && f.sentOn >= 0:
				sc.Listen(f.sentOn)
				f.await = folAwaitAck
			default:
				sc.Idle()
			}
			return false
		case 3: // value-round post-idle
			f.pos = 0
			f.round++
			if k := 2 * (f.stride - 1 - f.off); k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 4: // backoff-round pre-idle
			f.pos = 5
			if k := 2 * f.off; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 5: // backoff signal
			f.pos = 6
			switch {
			case f.isDom && f.count >= pl.Omega && !pl.Cfg.DisableBackoff:
				sc.Transmit(0, Backoff{Dom: sc.ID()})
			case f.follower && !f.acked:
				sc.Listen(0)
				f.await = folAwaitBackoff
			default:
				sc.Idle()
			}
			return false
		case 6: // stride parity
			f.pos = 7
			sc.Idle()
			return false
		default: // backoff-round post-idle + phase advance
			f.pos = 0
			f.round = 0
			if f.follower && !f.acked && !f.heardBackoff {
				f.pu *= 2
				if f.pu > 0.5 {
					f.pu = 0.5
				}
			}
			f.phase++
			f.count = 0
			f.heardBackoff = false
			if k := 2 * (f.stride - 1 - f.off); k > 0 {
				sc.IdleFor(k)
				return false
			}
		}
	}
}

// informFrag is the sim.Frag form of InformStage. Value and Have are the
// stage's in/out value pair.
type informFrag struct {
	pl *Plan
	st Structure

	Value int64
	Have  bool

	sub   int
	await bool
}

// Feed implements sim.Frag.
func (f *informFrag) Feed(sc *sim.StepCtx) bool {
	p := f.pl.Params
	if f.await {
		f.await = false
		rec := sc.Prev()
		if m, ok := rec.Msg.(FinalMsg); ok && m.Dom == f.st.Dom.Dominator &&
			phy.SenderWithin(rec, p, p.ClusterRadius()) {
			f.Value, f.Have = m.Value, true
		}
	}
	if f.sub >= f.pl.Cfg.PhiMax {
		return true
	}
	sub := f.sub
	f.sub++
	switch {
	case f.st.IsDominator() && sub == f.st.Off && f.Have:
		sc.Transmit(0, FinalMsg{Dom: sc.ID(), Value: f.Value})
	case !f.st.IsDominator() && !f.Have:
		sc.Listen(0)
		f.await = true
	default:
		sc.Idle()
	}
	return false
}
