// Package core assembles the paper's aggregation structure (Sec. 5) and
// executes data aggregation on it (Sec. 6): the primary contribution of
// "Leveraging Multiple Channels in Ad Hoc Networks".
//
// The pipeline runs as a fixed sequence of slot-budgeted stages, every node
// executing the same schedule so clusters stay aligned:
//
//  1. dominate   — r_c-dominating set + clustering (Sec. 5.1.1, channel 0)
//  2. color      — cluster coloring of dominators (Sec. 5.1.2)
//  3. announce   — dominators disseminate cluster colors (enables TDMA)
//  4. csa        — cluster-size approximation (Sec. 5.2.1 / Appendix A)
//  5. elect      — reporter election on f_v channels (Sec. 5.2.2)
//  6. followers  — followers → reporters with backoff control (Sec. 6)
//  7. tree       — reporter-tree convergecast to dominators (Sec. 6)
//  8. backbone   — inter-cluster aggregation + result flood (Sec. 6, [2])
//  9. inform     — dominators announce the result to their clusters
//
// Stage budgets are conservative envelopes; actual completion is observed
// through sim events ("acked", "informed", "backbone-agg"), which is what
// the experiments report.
package core

import (
	"math"

	"mcnet/internal/backbone"
	"mcnet/internal/csa"
	"mcnet/internal/dominate"
	"mcnet/internal/model"
	"mcnet/internal/reporter"
)

// Config parameterizes the full pipeline.
type Config struct {
	// DeltaHat is the global upper bound on cluster sizes (≤ n̂; the paper's
	// Δ̂). It sizes the CSA and follower stages.
	DeltaHat int
	// C1 scales channels per cluster: f_v = min(⌈est/(C1·ln n̂)⌉, F). The
	// paper uses c₁ = 24; 1.0 is the practical default (deviation D1).
	C1 float64
	// PhiMax is the agreed TDMA period (an upper bound on cluster colors).
	PhiMax int
	// HopBound bounds the backbone hop diameter, sizing backbone budgets.
	HopBound int
	// Gamma2 scales follower-phase length: Γ = ⌈Gamma2·ln n̂⌉ rounds (the
	// paper's γ₂).
	Gamma2 float64
	// Omega2 scales the dominator's backoff threshold: Ω = ⌈Omega2·ln n̂⌉
	// messages per phase (the paper's ω₂).
	Omega2 float64
	// Lambda is the contention target (the paper's λ = 1/2).
	Lambda float64
	// ExtraFollowerPhases pads the follower stage beyond the computed
	// doubling+throughput phases.
	ExtraFollowerPhases int
	// DisableBackoff removes the dominator's congestion signal from the
	// follower stage (ablation A1): transmission probabilities then double
	// unchecked and Bounded Contention (Definition 17) is not maintained.
	DisableBackoff bool

	// Dominate, Color and CSA stage overrides; zero values mean defaults
	// derived from the parameters at Plan time.
	DominateRoundFactor float64
	ColorConfig         *backbone.ColorConfig

	// Exec selects the execution mode Run dispatches to (see ExecMode); the
	// zero value is ExecAuto. Every mode yields bit-identical transcripts.
	Exec ExecMode
}

// DefaultConfig returns the pipeline configuration for the given model.
func DefaultConfig(p model.Params) Config {
	return Config{
		DeltaHat:            p.NEstimate,
		C1:                  1.0,
		PhiMax:              10,
		HopBound:            8,
		Gamma2:              5,
		Omega2:              1,
		Lambda:              0.5,
		ExtraFollowerPhases: 4,
		DominateRoundFactor: 4,
	}
}

// Plan holds the fully derived stage configurations and their slot offsets.
type Plan struct {
	Params model.Params
	Cfg    Config

	Dominate dominate.Config
	Color    backbone.ColorConfig
	CSALarge csa.Config
	CSASmall csa.SmallConfig
	UseSmall bool
	Elect    reporter.ElectConfig
	Tree     backbone.TreeConfig

	// AnnounceSlots is the length of the color-dissemination stage.
	AnnounceSlots int
	// FollowerPhases and FollowerGamma size the follower stage: phases ×
	// (Γ rounds + 1 backoff round) × 2 sub-slots × PhiMax stride.
	FollowerPhases, FollowerGamma int
	// Omega is the dominator's backoff threshold per phase.
	Omega int

	// Stage slot offsets (start of each stage) and the total budget.
	Offsets StageOffsets
}

// StageOffsets records where each stage begins in the global slot timeline.
type StageOffsets struct {
	Dominate, Color, Announce, CSA, Elect, Followers, Tree, Backbone, Inform, End int
}

// ClusterRadius returns the membership radius used by intra-cluster filters:
// any two members of one cluster are within 2·r_c of each other.
func (pl *Plan) ClusterRadius() float64 { return 2 * pl.Params.ClusterRadius() }

// NewPlan derives all stage configurations and offsets.
func NewPlan(p model.Params, cfg Config) *Plan {
	if cfg.DeltaHat <= 0 {
		cfg.DeltaHat = p.NEstimate
	}
	if cfg.DeltaHat > p.NEstimate {
		cfg.DeltaHat = p.NEstimate
	}
	pl := &Plan{Params: p, Cfg: cfg}
	rc := p.ClusterRadius()
	memberR := 2 * rc

	pl.Dominate = dominate.DefaultConfig(rc, 0)
	if cfg.DominateRoundFactor > 0 {
		pl.Dominate.RoundFactor = cfg.DominateRoundFactor
	}

	if cfg.ColorConfig != nil {
		pl.Color = *cfg.ColorConfig
	} else {
		pl.Color = backbone.DefaultColorConfig(p, cfg.PhiMax)
	}

	pl.AnnounceSlots = int(math.Ceil(8 * p.LogN()))

	pl.UseSmall = csa.UseSmall(p, cfg.DeltaHat)
	pl.CSALarge = csa.DefaultConfig(cfg.DeltaHat, memberR)
	pl.CSALarge.Stride = cfg.PhiMax
	pl.CSASmall = csa.DefaultSmallConfig(p, memberR)
	pl.CSASmall.Stride = cfg.PhiMax

	pl.Elect = reporter.DefaultElectConfig(memberR)
	pl.Elect.Stride = cfg.PhiMax

	pl.FollowerGamma = int(math.Ceil(cfg.Gamma2 * p.LogN()))
	pl.Omega = int(math.Ceil(cfg.Omega2 * p.LogN()))
	throughput := float64(p.Channels) * p.LogN()
	pl.FollowerPhases = int(math.Ceil(math.Log2(float64(max2(cfg.DeltaHat, 2))))) +
		int(math.Ceil(float64(cfg.DeltaHat)/throughput)) +
		cfg.ExtraFollowerPhases

	pl.Tree = backbone.DefaultTreeConfig(p, cfg.PhiMax, cfg.HopBound)

	// Stage offsets.
	o := &pl.Offsets
	o.Dominate = 0
	o.Color = o.Dominate + pl.Dominate.SlotBudget(p)
	o.Announce = o.Color + pl.Color.SlotBudget(p)
	o.CSA = o.Announce + pl.AnnounceSlots
	csaBudget := pl.CSALarge.SlotBudget(p)
	if pl.UseSmall {
		csaBudget = pl.CSASmall.SlotBudget(p)
	}
	o.Elect = o.CSA + csaBudget
	o.Followers = o.Elect + pl.Elect.SlotBudget(p)
	o.Tree = o.Followers + pl.followerBudget()
	o.Backbone = o.Tree + pl.castBudget()
	o.Inform = o.Backbone + pl.Tree.SlotBudget()
	o.End = o.Inform + cfg.PhiMax
	return pl
}

// followerBudget is the slot cost of the follower-aggregation stage.
func (pl *Plan) followerBudget() int {
	return pl.FollowerPhases * (pl.FollowerGamma + 1) * 2 * pl.Cfg.PhiMax
}

// castBudget is the slot cost of the reporter-tree convergecast stage, which
// must cover the deepest possible tree (f_v up to F).
func (pl *Plan) castBudget() int {
	cast := reporter.DefaultCastConfig(pl.Params.Channels, pl.ClusterRadius())
	cast.Stride = pl.Cfg.PhiMax
	return cast.SlotBudget()
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
