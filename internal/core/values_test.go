package core

import (
	"strings"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// TestRunRejectsWrongValuesLength: a mismatched values slice must surface
// as an error instead of being silently replaced by zeros (which would
// corrupt the aggregate while the run "succeeds").
func TestRunRejectsWrongValuesLength(t *testing.T) {
	p := model.Default(2, 8)
	pos := []geo.Point{{X: 0}, {X: 0.01}, {X: 0.02}, {X: 0.03}}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = len(pos)
	pl := NewPlan(p, cfg)

	for _, wrong := range [][]int64{nil, make([]int64, 2), make([]int64, 5)} {
		e := sim.NewEngine(phy.NewField(p, pos), 1)
		_, err := Run(e, pl, wrong, agg.Sum, 1)
		if err == nil {
			t.Fatalf("len %d: expected error, got nil", len(wrong))
		}
		if !strings.Contains(err.Error(), "values") {
			t.Errorf("len %d: error should mention values: %v", len(wrong), err)
		}
	}

	// The matching length still runs.
	e := sim.NewEngine(phy.NewField(p, pos), 1)
	if _, err := Run(e, pl, make([]int64, len(pos)), agg.Sum, 1); err != nil {
		t.Fatalf("correct length failed: %v", err)
	}
}
