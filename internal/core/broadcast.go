package core

import (
	"math"

	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// BcastUp carries the broadcast payload from the source to its dominator.
type BcastUp struct {
	Dom   int
	Value int64
}

// PayloadValue exposes the broadcast payload to the fault layer's Byzantine
// corruption hook (fault.Payload).
func (m BcastUp) PayloadValue() int64 { return m.Value }

// WithPayloadValue returns the message with its value replaced.
func (m BcastUp) WithPayloadValue(v int64) any { m.Value = v; return m }

// BcastFlood carries the payload across the dominator backbone.
type BcastFlood struct {
	Value int64
	From  int
}

// EventBroadcast fires when a node learns the broadcast payload.
const EventBroadcast = "bcast-informed"

// BroadcastResult is the per-node outcome of a broadcast run.
type BroadcastResult struct {
	// Value is the payload the node learned; Ok reports whether it did.
	Value int64
	Ok    bool
	// IsDominator describes the node's structure role.
	IsDominator bool
}

// Broadcast demonstrates the structure's versatility beyond aggregation
// (Sec. 3 calls it a "multi-purpose dissemination structure"): a single
// source's payload is carried to its dominator, flooded across the
// backbone under the cluster-color TDMA, and announced within every
// cluster — O(D + log n) beyond structure construction.
//
// The run executes structure construction first; pass the same plan used
// for aggregation experiments to compare like for like.
func Broadcast(e *sim.Engine, pl *Plan, source int, payload int64, seed uint64) ([]BroadcastResult, error) {
	n := e.Field().N()
	res := make([]BroadcastResult, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = pl.broadcastProgram(i, i == source, payload, res)
	}
	_ = seed
	if _, err := e.Run(progs); err != nil {
		return nil, err
	}
	return res, nil
}

// sourceUpBlocks is the stage length for source → dominator delivery.
func (pl *Plan) sourceUpBlocks() int {
	return int(math.Ceil(4 * pl.Params.LogN()))
}

// floodBlocks is the backbone flood stage length.
func (pl *Plan) floodBlocks() int {
	return pl.Cfg.PhiMax * (6*pl.Cfg.HopBound + 10*(int(pl.Params.LogN())+1))
}

func (pl *Plan) broadcastProgram(i int, isSource bool, payload int64, res []BroadcastResult) sim.Program {
	return func(ctx *sim.Ctx) {
		r := &res[i]
		p := pl.Params
		st := pl.BuildStage(ctx)
		r.IsDominator = st.IsDominator()

		var (
			value    int64
			informed = false
			stride   = pl.Cfg.PhiMax
		)
		if isSource {
			value, informed = payload, true
		}

		// Stage B1: the source hands the payload to its dominator. The
		// source transmits in its cluster's TDMA sub-slot (it is the only
		// transmitter in the cluster, so Lemma 9 applies); dominators
		// listen in every sub-slot.
		for b := 0; b < pl.sourceUpBlocks(); b++ {
			for sub := 0; sub < stride; sub++ {
				switch {
				case isSource && !st.IsDominator() && sub == st.Off:
					ctx.Transmit(0, BcastUp{Dom: st.Dom.Dominator, Value: payload})
				case st.IsDominator() && !informed:
					rec := ctx.Listen(0)
					if m, ok := rec.Msg.(BcastUp); ok && m.Dom == ctx.ID() &&
						phy.SenderWithin(rec, p, p.ClusterRadius()) {
						value, informed = m.Value, true
					}
				default:
					ctx.Idle()
				}
			}
		}

		// Stage B2: backbone flood under the color TDMA (dominators only).
		if st.IsDominator() {
			for b := 0; b < pl.floodBlocks()/stride; b++ {
				for sub := 0; sub < stride; sub++ {
					if sub == st.Off && informed && ctx.Rand.Float64() < 0.4 {
						ctx.Transmit(0, BcastFlood{Value: value, From: ctx.ID()})
						continue
					}
					rec := ctx.Listen(0)
					if m, ok := rec.Msg.(BcastFlood); ok && !informed &&
						phy.SenderWithin(rec, p, p.REpsHalf()) {
						value, informed = m.Value, true
					}
				}
			}
		} else {
			ctx.IdleFor(pl.floodBlocks() / stride * stride)
		}

		// Stage B3: dominators announce within clusters (two TDMA blocks
		// for margin).
		for pass := 0; pass < 2; pass++ {
			v2, ok2 := pl.InformStage(ctx, st, value, informed)
			value, informed = v2, ok2
		}
		if informed {
			r.Value, r.Ok = value, true
			ctx.Emit(EventBroadcast, 0)
		}
	}
}
