package core

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// buildStructures runs only the build stages over a crowd and returns the
// per-node structures.
func buildStructures(t *testing.T, n int, channels int, seed uint64) ([]Structure, *Plan, []geo.Point) {
	t.Helper()
	p := model.Default(channels, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(int64(seed)))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	sts := make([]Structure, n)
	progs := make([]sim.Program, n)
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) { sts[i] = pl.BuildStage(ctx) }
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return sts, pl, pos
}

func TestBuildStageStructureInvariants(t *testing.T) {
	const n = 32
	sts, pl, pos := buildStructures(t, n, 4, 5)
	rc := pl.Params.ClusterRadius()
	reportersPerChannel := map[[2]int]int{} // (dominator, channel) → count
	for i, st := range sts {
		// Every node is assigned a dominator within r_c.
		if st.Dom.Dominator < 0 {
			t.Fatalf("node %d has no dominator", i)
		}
		if !sts[st.Dom.Dominator].IsDominator() {
			t.Errorf("node %d assigned to non-dominator %d", i, st.Dom.Dominator)
		}
		if pos[i].Dist(pos[st.Dom.Dominator]) > rc {
			t.Errorf("node %d dominator beyond r_c", i)
		}
		// Dominators are role 0; members got a channel below their f_v.
		if st.IsDominator() {
			if st.Role != 0 || st.Channel != -1 {
				t.Errorf("dominator %d: role=%d channel=%d", i, st.Role, st.Channel)
			}
			continue
		}
		if st.Channel < 0 || st.Channel >= st.Fv {
			t.Errorf("node %d channel %d outside [0, %d)", i, st.Channel, st.Fv)
		}
		if st.IsReporter() {
			if st.Role != st.Channel+1 {
				t.Errorf("node %d: reporter role %d mismatches channel %d", i, st.Role, st.Channel)
			}
			reportersPerChannel[[2]int{st.Dom.Dominator, st.Channel}]++
		}
		// Size estimate within a constant band of the true cluster size.
		if st.Est < 1 || st.Est > 8*n {
			t.Errorf("node %d size estimate %d implausible", i, st.Est)
		}
	}
	// At most one reporter per (cluster, channel) — Lemma 15's postcondition.
	for key, count := range reportersPerChannel {
		if count != 1 {
			t.Errorf("cluster %d channel %d has %d reporters", key[0], key[1], count)
		}
	}
}

func TestBuildStageColorsAgreeWithinCluster(t *testing.T) {
	const n = 28
	sts, _, _ := buildStructures(t, n, 2, 9)
	for i, st := range sts {
		if st.Color != sts[st.Dom.Dominator].Color {
			t.Errorf("node %d color %d ≠ its dominator's %d", i, st.Color, sts[st.Dom.Dominator].Color)
		}
	}
}

func TestBuildStageBudget(t *testing.T) {
	const n = 8
	p := model.Default(2, 64)
	pos := make([]geo.Point, n)
	rnd := rand.New(rand.NewSource(3))
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{X: rnd.Float64() * 0.05, Y: rnd.Float64() * 0.05}
	}
	cfg := DefaultConfig(p)
	cfg.PhiMax = 4
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), 3)
	after := make([]int, n)
	progs := make([]sim.Program, n)
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			pl.BuildStage(ctx)
			after[i] = ctx.Slot()
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i, s := range after {
		if s != pl.Offsets.Followers {
			t.Errorf("node %d consumed %d slots for build, plan says %d", i, s, pl.Offsets.Followers)
		}
	}
}

func TestInformStageDelivers(t *testing.T) {
	// Directly exercise InformStage: a dominator with a value, members
	// without; after one TDMA block all members have it.
	const n = 10
	p := model.Default(1, 64)
	pos := make([]geo.Point, n)
	rnd := rand.New(rand.NewSource(7))
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{X: rnd.Float64() * 0.05, Y: rnd.Float64() * 0.05}
	}
	cfg := DefaultConfig(p)
	cfg.PhiMax = 4
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), 7)
	got := make([]int64, n)
	oks := make([]bool, n)
	progs := make([]sim.Program, n)
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			st := Structure{Channel: -1}
			st.Dom.Dominator = 0
			if i == 0 {
				st.Dom.IsDominator = true
				st.Role = 0
			} else {
				st.Role = -1
			}
			v, ok := pl.InformStage(ctx, st, 777, i == 0)
			got[i], oks[i] = v, ok
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !oks[i] || got[i] != 777 {
			t.Errorf("node %d: ok=%v value=%d", i, oks[i], got[i])
		}
	}
}
