package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

// txRec is one transcript entry: who transmitted and who decoded what.
type txRec struct {
	Slot    int
	Txs     []phy.Tx
	Listens []int
	Decoded []bool
}

// captureTrace returns a TraceFn that appends deep copies of every resolved
// slot to *dst (Trace slices are engine scratch).
func captureTrace(dst *[]txRec) sim.TraceFn {
	return func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
		r := txRec{Slot: slot, Txs: append([]phy.Tx(nil), txs...)}
		for i, rx := range rxs {
			r.Listens = append(r.Listens, rx.Node)
			r.Decoded = append(r.Decoded, recs[i].Msg != nil)
		}
		*dst = append(*dst, r)
	}
}

func sortedEvents(evs []sim.Event) []sim.Event {
	out := append([]sim.Event(nil), evs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Slot != out[b].Slot {
			return out[a].Slot < out[b].Slot
		}
		if out[a].Node != out[b].Node {
			return out[a].Node < out[b].Node
		}
		if out[a].Name != out[b].Name {
			return out[a].Name < out[b].Name
		}
		return out[a].Value < out[b].Value
	})
	return out
}

// runIdentityCase runs the pipeline once per execution mode on the same
// (topology, seed, faults) and requires bit-identical transcripts, events,
// results, and slot counts.
func runIdentityCase(t *testing.T, name string, pos []geo.Point, p model.Params, cfg Config, values []int64, op agg.Op, seed uint64, spec fault.Spec) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		type outcome struct {
			res    []Result
			events []sim.Event
			trace  []txRec
		}
		run := func(stepped bool) outcome {
			pl := NewPlan(p, cfg)
			e := sim.NewEngine(phy.NewField(p, pos), seed)
			if !spec.Zero() {
				e.Faults = fault.NewInjector(spec, seed+1, len(pos), p.Channels, pl.Offsets.End)
			}
			var trace []txRec
			e.Trace = captureTrace(&trace)
			var (
				res []Result
				err error
			)
			if stepped {
				res, err = RunStepped(e, pl, values, op, seed)
			} else {
				res, err = Run(e, pl, values, op, seed)
			}
			if err != nil {
				t.Fatal(err)
			}
			return outcome{res: res, events: sortedEvents(e.Events()), trace: trace}
		}
		g, s := run(false), run(true)
		if !reflect.DeepEqual(g.res, s.res) {
			for i := range g.res {
				if g.res[i] != s.res[i] {
					t.Fatalf("node %d result differs:\n goroutine %+v\n stepped   %+v", i, g.res[i], s.res[i])
				}
			}
		}
		if !reflect.DeepEqual(g.events, s.events) {
			t.Fatalf("events differ: goroutine %d vs stepped %d entries", len(g.events), len(s.events))
		}
		if len(g.trace) != len(s.trace) {
			t.Fatalf("transcript lengths differ: %d vs %d", len(g.trace), len(s.trace))
		}
		for i := range g.trace {
			if !reflect.DeepEqual(g.trace[i], s.trace[i]) {
				t.Fatalf("transcript diverges at slot %d:\n goroutine %+v\n stepped   %+v",
					g.trace[i].Slot, g.trace[i], s.trace[i])
			}
		}
	})
}

// clusterPositions places n-1 nodes uniformly within a half-r_c box around
// the origin node.
func clusterPositions(n int, p model.Params, src int64) []geo.Point {
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(src))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	return pos
}

// TestRunSteppedIdentity pins the tentpole guarantee at the pipeline level:
// the Stepper port of every stage reproduces the goroutine pipeline's
// transcript bit for bit — across both CSA variants, multi-cluster fields,
// and fault injection.
func TestRunSteppedIdentity(t *testing.T) {
	values := func(n int) []int64 {
		v := make([]int64, n)
		for i := range v {
			v[i] = int64(3*i + 1)
		}
		return v
	}

	{
		// Small-Δ̂ CSA variant (UseSmall): dense single cluster.
		const n = 40
		p := model.Default(4, 64)
		cfg := DefaultConfig(p)
		cfg.DeltaHat = n
		runIdentityCase(t, "small-csa", clusterPositions(n, p, 1), p, cfg, values(n), agg.Sum, 7, fault.Spec{})
	}
	{
		// Large-Δ̂ CSA variant: Δ̂/F above log²n̂ forces the single-channel
		// estimator.
		const n = 30
		p := model.Default(2, 64)
		cfg := DefaultConfig(p)
		cfg.DeltaHat = 64
		cfg.PhiMax = 4
		cfg.HopBound = 2
		runIdentityCase(t, "large-csa", clusterPositions(n, p, 2), p, cfg, values(n), agg.Max, 11, fault.Spec{})
	}
	{
		// Faults: message loss plus deterministic and seeded crashes, so
		// stepped crash retirement is exercised mid-pipeline.
		const n = 36
		p := model.Default(4, 64)
		cfg := DefaultConfig(p)
		cfg.DeltaHat = n
		spec := fault.Spec{
			LossProb:  0.02,
			CrashAt:   map[int]int{3: 40, 11: 2000, 17: 0},
			CrashRate: 0.05,
			CrashFrom: 100,
		}
		runIdentityCase(t, "faults", clusterPositions(n, p, 3), p, cfg, values(n), agg.Sum, 13, spec)
	}
	if !testing.Short() {
		// Sparse connected field spanning several clusters and backbone hops.
		const n = 80
		p := model.Default(4, 128)
		rnd := rand.New(rand.NewSource(5))
		pos := topology.UniformDegree(rnd, n, p.REps(), 14)
		cfg := DefaultConfig(p)
		cfg.DeltaHat = 32
		cfg.HopBound = 14
		cfg.PhiMax = 24
		runIdentityCase(t, "multi-cluster", pos, p, cfg, values(n), agg.Sum, 17, fault.Spec{})
	}
}

// TestRunSteppedSlotCount pins that the stepped pipeline consumes exactly
// the plan's slot budget, like the goroutine form.
func TestRunSteppedSlotCount(t *testing.T) {
	const n = 12
	p := model.Default(2, 64)
	pos := clusterPositions(n, p, 9)
	pl := NewPlan(p, DefaultConfig(p))
	e := sim.NewEngine(phy.NewField(p, pos), 13)
	res := make([]Result, n)
	steppers := make([]sim.Stepper, n)
	for i := 0; i < n; i++ {
		steppers[i] = &pipelineStepper{pl: pl, value: 0, op: agg.Sum, res: res}
	}
	slots, err := e.RunSteppers(steppers)
	if err != nil {
		t.Fatal(err)
	}
	if slots != pl.Offsets.End {
		t.Errorf("stepped pipeline consumed %d slots, plan says %d", slots, pl.Offsets.End)
	}
}
