package core

import (
	"context"
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/backbone"
	"mcnet/internal/csa"
	"mcnet/internal/dominate"
	"mcnet/internal/phy"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// ColorMsg disseminates a cluster's color from its dominator.
type ColorMsg struct {
	Dom, Color int
}

// FollowerMsg carries a follower's value to a reporter (Sec. 6, first
// procedure).
type FollowerMsg struct {
	From, Dom int
	Value     int64
}

// PayloadValue exposes the follower's value to the fault layer's Byzantine
// corruption hook (fault.Payload).
func (m FollowerMsg) PayloadValue() int64 { return m.Value }

// WithPayloadValue returns the message with its value replaced.
func (m FollowerMsg) WithPayloadValue(v int64) any { m.Value = v; return m }

// FollowerAck confirms receipt of a follower's value.
type FollowerAck struct {
	To, Dom int
}

// Backoff is the dominator's congestion signal on the first channel.
type Backoff struct {
	Dom int
}

// FinalMsg announces the network-wide aggregate within a cluster.
type FinalMsg struct {
	Dom   int
	Value int64
}

// PayloadValue exposes the announced aggregate to the fault layer's
// Byzantine corruption hook (fault.Payload).
func (m FinalMsg) PayloadValue() int64 { return m.Value }

// WithPayloadValue returns the message with its value replaced.
func (m FinalMsg) WithPayloadValue(v int64) any { m.Value = v; return m }

// Event names emitted by the pipeline (see also the backbone package's
// "backbone-agg" and "backbone-result").
const (
	// EventAcked fires when a follower's value is first acknowledged.
	EventAcked = "acked"
	// EventClusterAgg fires at a dominator once its cluster aggregate is
	// complete (end of the reporter-tree pass).
	EventClusterAgg = "cluster-agg"
	// EventInformed fires when a node learns the final aggregate.
	EventInformed = "informed"
)

// Result is the per-node outcome of a pipeline run.
type Result struct {
	// Value is the network aggregate the node learned; Ok reports whether
	// it learned one.
	Value int64
	Ok    bool
	// IsDominator, Dominator, Color, SizeEst, Channel, IsReporter describe
	// the node's place in the aggregation structure.
	IsDominator bool
	Dominator   int
	Color       int
	SizeEst     int
	Channel     int
	IsReporter  bool
}

// Run executes the full pipeline over the engine's field: structure
// construction followed by data aggregation of values under op. It returns
// the per-node results; timings are available via the engine's events and
// the plan's stage offsets.
func Run(e *sim.Engine, pl *Plan, values []int64, op agg.Op, seed uint64) ([]Result, error) {
	return RunContext(context.Background(), e, pl, values, op, seed)
}

// RunContext is like Run but aborts promptly with ctx.Err() when ctx is
// cancelled mid-run. A values slice whose length differs from the node
// count is an error: silently substituting zeros would corrupt the
// aggregate while the run still "succeeds".
//
// The plan's Cfg.Exec decides how the node code executes: goroutine
// programs, the goroutine-free Stepper form (RunSteppedContext), or — the
// default — whichever suits the node count. The transcript is bit-identical
// either way; only memory and wall-clock differ.
func RunContext(ctx context.Context, e *sim.Engine, pl *Plan, values []int64, op agg.Op, seed uint64) ([]Result, error) {
	n := e.Field().N()
	if pl.Cfg.Exec.stepped(n) {
		return RunSteppedContext(ctx, e, pl, values, op, seed)
	}
	if len(values) != n {
		return nil, fmt.Errorf("core: %d values for %d nodes", len(values), n)
	}
	res := make([]Result, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = pl.program(i, values[i], op, res)
	}
	_ = seed
	if _, err := e.RunContext(ctx, progs); err != nil {
		return nil, err
	}
	return res, nil
}

// fv returns the cluster's channel count f_v = min(⌈est/(C1·ln n̂)⌉, F),
// at least 1 (Sec. 5.2).
func (pl *Plan) fv(est int) int {
	if est < 1 {
		return 1
	}
	f := int(float64(est)/(pl.Cfg.C1*pl.Params.LogN())) + 1
	if f > pl.Params.Channels {
		f = pl.Params.Channels
	}
	if f < 1 {
		f = 1
	}
	return f
}

// program builds node i's pipeline program: structure build, then the three
// aggregation procedures, then the inform stage.
func (pl *Plan) program(i int, value int64, op agg.Op, res []Result) sim.Program {
	return func(ctx *sim.Ctx) {
		r := &res[i]

		// Stages 1-5: structure construction.
		st := pl.BuildStage(ctx)
		r.IsDominator = st.IsDominator()
		r.Dominator = st.Dom.Dominator
		r.Color = st.Color
		r.SizeEst = st.Est
		r.Channel = st.Channel
		r.IsReporter = st.IsReporter()

		// Stage 6: followers → reporters.
		got, _ := pl.FollowerStage(ctx, st, value)

		// Stage 7: reporter-tree convergecast to the dominator.
		cast := pl.CastConfig(st.Off)
		var clusterAgg int64
		if st.Role >= 0 {
			castVal := value
			for _, v := range got {
				castVal = op.Combine(castVal, v)
			}
			cs := reporter.RunCastUp(ctx, cast, st.Role, st.Dom.Dominator, castVal, op)
			if st.Role == 0 {
				clusterAgg = cs.Value
				ctx.Emit(EventClusterAgg, 0)
			}
		} else {
			reporter.IdleCast(ctx, cast)
		}

		// Stage 8: inter-cluster aggregation over the backbone.
		var final int64
		informed := false
		if st.IsDominator() {
			out := backbone.RunTree(ctx, pl.Tree, st.Off, clusterAgg, op)
			final, informed = out.Result, out.Done
		} else {
			backbone.IdleTree(ctx, pl.Tree)
		}

		// Stage 9: dominators inform their clusters.
		final, informed = pl.InformStage(ctx, st, final, informed)
		if informed {
			r.Value, r.Ok = final, true
			ctx.Emit(EventInformed, 0)
		}
	}
}

// runAnnounce is stage 3: dominators repeatedly announce their color on
// channel 0; members learn their cluster's color. Returns the node's color
// (dominators: their own; members: the learned one, or 0 if missed).
func (pl *Plan) runAnnounce(ctx *sim.Ctx, dom dominate.Outcome, ownColor int) int {
	p := pl.Params
	if dom.IsDominator {
		for s := 0; s < pl.AnnounceSlots; s++ {
			if ctx.Rand.Float64() < 0.2 {
				ctx.Transmit(0, ColorMsg{Dom: ctx.ID(), Color: ownColor})
			} else {
				ctx.Idle()
			}
		}
		return ownColor
	}
	color := -1
	for s := 0; s < pl.AnnounceSlots; s++ {
		if color >= 0 {
			ctx.Idle()
			continue
		}
		rec := ctx.Listen(0)
		if m, ok := rec.Msg.(ColorMsg); ok && m.Dom == dom.Dominator &&
			phy.SenderWithin(rec, p, p.ClusterRadius()) {
			color = m.Color
		}
	}
	if color < 0 {
		color = 0 // degraded: TDMA misalignment possible, but keep going
	}
	return color
}

// runCSA is stage 4: the Lemma 14 chooser between the two CSA variants.
func (pl *Plan) runCSA(ctx *sim.Ctx, dom dominate.Outcome, off int) int {
	if pl.UseSmall {
		cfg := pl.CSASmall
		cfg.Offset = off
		if dom.IsDominator {
			return csa.RunSmallDominator(ctx, cfg)
		}
		return csa.RunSmallDominatee(ctx, cfg, dom.Dominator)
	}
	cfg := pl.CSALarge
	cfg.Offset = off
	if dom.IsDominator {
		return csa.RunDominator(ctx, cfg, ctx.ID()) + 1 // members + self
	}
	est := csa.RunDominatee(ctx, cfg, dom.Dominator)
	if est > 0 {
		est++
	}
	return est
}
