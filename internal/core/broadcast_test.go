package core

import (
	"math/rand"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

func TestBroadcastSingleCluster(t *testing.T) {
	const n = 32
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(3))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), 5)
	res, err := Broadcast(e, pl, 7, 424242, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Ok || r.Value != 424242 {
			t.Errorf("node %d: %+v", i, r)
		}
	}
}

func TestBroadcastMultiHop(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hop broadcast integration is slow")
	}
	const n = 60
	p := model.Default(2, 128)
	rnd := rand.New(rand.NewSource(7))
	pos := topology.UniformDegree(rnd, n, p.REps(), 14)
	cfg := DefaultConfig(p)
	cfg.DeltaHat = 24
	cfg.PhiMax = 24
	cfg.HopBound = 12
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), 9)
	res, err := Broadcast(e, pl, 0, 99, 9)
	if err != nil {
		t.Fatal(err)
	}
	informed := 0
	for _, r := range res {
		if r.Ok {
			informed++
			if r.Value != 99 {
				t.Errorf("wrong payload %d", r.Value)
			}
		}
	}
	if informed < n*9/10 {
		t.Errorf("only %d/%d informed", informed, n)
	}
}

func TestBroadcastFromDominator(t *testing.T) {
	// Source that ends up a dominator: stage B1 degenerates gracefully.
	p := model.Default(2, 64)
	cfg := DefaultConfig(p)
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, []geo.Point{{X: 0}}), 1)
	res, err := Broadcast(e, pl, 0, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Ok || res[0].Value != 7 {
		t.Errorf("singleton broadcast: %+v", res[0])
	}
}

func TestFailuresBeforeBuild(t *testing.T) {
	// A fifth of the nodes never start; the rest must still build a
	// structure and aggregate their own values without deadlock.
	const n = 30
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(11))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	values, _ := make([]int64, n), 0
	var aliveSum int64
	dead := map[int]int{}
	for i := 0; i < n; i++ {
		values[i] = int64(i + 1)
		if i%5 == 0 {
			dead[i] = StageBuild
		} else {
			aliveSum += values[i]
		}
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), 13)
	res, err := RunWithFailures(e, pl, values, agg.Sum, dead)
	if err != nil {
		t.Fatal(err)
	}
	informed, exact := 0, 0
	for i, r := range res {
		if _, isDead := dead[i]; isDead {
			if r.Ok {
				t.Errorf("dead node %d reported a result", i)
			}
			continue
		}
		if r.Ok {
			informed++
			if r.Value == aliveSum {
				exact++
			}
		}
	}
	alive := n - len(dead)
	if informed < alive*9/10 {
		t.Errorf("informed %d/%d alive nodes", informed, alive)
	}
	if exact < informed {
		t.Errorf("%d/%d informed nodes missed the alive-sum %d", informed-exact, informed, aliveSum)
	}
}

func TestFailuresMidPipeline(t *testing.T) {
	// Followers dying after delivering their value must not corrupt the
	// total; a reporter dying before the tree pass loses only its channel's
	// values (the takeover rules keep the tree connected).
	const n = 24
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(17))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	dead := map[int]int{3: StageTree, 9: StageBackbone}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), 19)
	res, err := RunWithFailures(e, pl, values, agg.Sum, dead)
	if err != nil {
		t.Fatal(err)
	}
	informed := 0
	for i, r := range res {
		if _, isDead := dead[i]; isDead {
			continue
		}
		if r.Ok {
			informed++
			// The total may be short by the dead nodes' subtree values but
			// never inflated.
			if r.Value > want || r.Value < want-int64(3+1+9+1+n) {
				t.Errorf("node %d value %d implausible (want ≤ %d)", i, r.Value, want)
			}
		}
	}
	if informed < (n-2)*8/10 {
		t.Errorf("informed %d/%d survivors", informed, n-2)
	}
}
