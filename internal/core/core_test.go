package core

import (
	"math/rand"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

// runPipeline executes the full pipeline and returns results plus the
// engine (for events).
func runPipeline(t *testing.T, pos []geo.Point, p model.Params, cfg Config, values []int64, op agg.Op, seed uint64) ([]Result, *sim.Engine, *Plan) {
	t.Helper()
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	res, err := Run(e, pl, values, op, seed)
	if err != nil {
		t.Fatal(err)
	}
	return res, e, pl
}

func TestPlanOffsetsMonotone(t *testing.T) {
	p := model.Default(8, 256)
	pl := NewPlan(p, DefaultConfig(p))
	o := pl.Offsets
	seq := []int{o.Dominate, o.Color, o.Announce, o.CSA, o.Elect, o.Followers, o.Tree, o.Backbone, o.Inform, o.End}
	for i := 1; i < len(seq); i++ {
		if seq[i] <= seq[i-1] {
			t.Fatalf("offsets not strictly increasing: %+v", o)
		}
	}
}

func TestFv(t *testing.T) {
	p := model.Default(8, 256) // ln 256 ≈ 5.55
	pl := NewPlan(p, DefaultConfig(p))
	if got := pl.fv(0); got != 1 {
		t.Errorf("fv(0) = %d, want 1", got)
	}
	if got := pl.fv(3); got != 1 {
		t.Errorf("fv(3) = %d, want 1", got)
	}
	if got := pl.fv(50); got != 10-1 && got != 10 { // 50/5.55 ≈ 9.01 → 10 candidates, capped at 8
		if got != 8 {
			t.Errorf("fv(50) = %d, want 8 (capped)", got)
		}
	}
	if got := pl.fv(1000); got != 8 {
		t.Errorf("fv(1000) = %d, want cap 8", got)
	}
}

func TestSingleClusterSumExact(t *testing.T) {
	// One dense cluster: every node within r_c of the origin. The pipeline
	// must deliver the exact sum to every node.
	const n = 40
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i*3 + 1)
		want += values[i]
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	res, _, _ := runPipeline(t, pos, p, cfg, values, agg.Sum, 7)

	domCount := 0
	for i, r := range res {
		if r.IsDominator {
			domCount++
		}
		if !r.Ok {
			t.Errorf("node %d not informed", i)
			continue
		}
		if r.Value != want {
			t.Errorf("node %d value %d, want %d", i, r.Value, want)
		}
	}
	if domCount < 1 || domCount > 4 {
		t.Errorf("dominators = %d, want 1..4 for one dense patch", domCount)
	}
}

func TestSingleClusterMax(t *testing.T) {
	const n = 30
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(2))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	values := make([]int64, n)
	var want int64 = -1 << 30
	for i := range values {
		values[i] = int64(rnd.Intn(10000)) - 5000
		if values[i] > want {
			want = values[i]
		}
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	res, _, _ := runPipeline(t, pos, p, cfg, values, agg.Max, 3)
	for i, r := range res {
		if !r.Ok || r.Value != want {
			t.Errorf("node %d: ok=%v value=%d, want %d", i, r.Ok, r.Value, want)
		}
	}
}

func TestMultiClusterSparseField(t *testing.T) {
	// Connected sparse field spanning several clusters and backbone hops.
	if testing.Short() {
		t.Skip("multi-cluster integration is slow")
	}
	const n = 80
	p := model.Default(4, 128)
	rnd := rand.New(rand.NewSource(5))
	pos := topology.UniformDegree(rnd, n, p.REps(), 14)
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = 32
	cfg.HopBound = 14
	// Sparse fields have ~Δ·(R_{ε/2}/R_ε)² dominators inside a conflict
	// ball; the TDMA period must cover that to avoid color overflow.
	cfg.PhiMax = 24
	res, e, pl := runPipeline(t, pos, p, cfg, values, agg.Sum, 11)

	informed, exact := 0, 0
	for _, r := range res {
		if r.Ok {
			informed++
			if r.Value == want {
				exact++
			}
		}
	}
	if informed < n*95/100 {
		t.Errorf("only %d/%d nodes informed", informed, n)
	}
	// Sums can drop contributions only through rare losses; require the
	// informed majority to agree on the exact fold.
	if exact < informed*95/100 {
		t.Errorf("only %d/%d informed nodes have the exact sum %d", exact, informed, want)
	}
	// Structure sanity: every node has a dominator within r_c.
	rc := p.ClusterRadius()
	for i, r := range res {
		if r.Dominator < 0 || !res[r.Dominator].IsDominator {
			t.Errorf("node %d dominator invalid", i)
			continue
		}
		if pos[i].Dist(pos[r.Dominator]) > rc {
			t.Errorf("node %d dominator beyond r_c", i)
		}
	}
	// Events: someone must have reached the backbone-agg milestone before
	// the inform stage end.
	sawAgg := false
	for _, ev := range e.Events() {
		if ev.Name == "backbone-agg" && ev.Slot <= pl.Offsets.End {
			sawAgg = true
		}
	}
	if !sawAgg {
		t.Error("no backbone-agg event recorded")
	}
}

func TestScheduleAlignment(t *testing.T) {
	// Every node must consume exactly Offsets.End slots: the engine's slot
	// count equals the plan end.
	const n = 12
	p := model.Default(2, 64)
	rnd := rand.New(rand.NewSource(9))
	rc := p.ClusterRadius()
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{X: rnd.Float64() * rc, Y: rnd.Float64() * rc}
	}
	pl := NewPlan(p, DefaultConfig(p))
	e := sim.NewEngine(phy.NewField(p, pos), 13)
	if _, err := Run(e, pl, make([]int64, n), agg.Sum, 13); err != nil {
		t.Fatal(err)
	}
	// Re-run with fresh engine to measure slots.
	e2 := sim.NewEngine(phy.NewField(p, pos), 13)
	pl2 := NewPlan(p, DefaultConfig(p))
	progs := make([]sim.Program, n)
	res := make([]Result, n)
	for i := 0; i < n; i++ {
		progs[i] = pl2.program(i, 0, agg.Sum, res)
	}
	slots, err := e2.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != pl2.Offsets.End {
		t.Errorf("pipeline consumed %d slots, plan says %d", slots, pl2.Offsets.End)
	}
}

func TestDeltaHatClamped(t *testing.T) {
	p := model.Default(4, 64)
	cfg := DefaultConfig(p)
	cfg.DeltaHat = 10_000 // above n̂
	pl := NewPlan(p, cfg)
	if pl.Cfg.DeltaHat != 64 {
		t.Errorf("DeltaHat = %d, want clamped to 64", pl.Cfg.DeltaHat)
	}
	cfg.DeltaHat = 0
	pl = NewPlan(p, cfg)
	if pl.Cfg.DeltaHat != 64 {
		t.Errorf("DeltaHat = %d, want default 64", pl.Cfg.DeltaHat)
	}
}

func TestSingletonNetwork(t *testing.T) {
	p := model.Default(2, 64)
	cfg := DefaultConfig(p)
	res, _, _ := runPipeline(t, []geo.Point{{X: 0}}, p, cfg, []int64{42}, agg.Sum, 1)
	if !res[0].Ok || res[0].Value != 42 || !res[0].IsDominator {
		t.Errorf("singleton result = %+v", res[0])
	}
}

func TestTwoIsolatedNodes(t *testing.T) {
	// Two nodes out of range of each other: two singleton clusters, two
	// backbone components. Each must at least learn its own value.
	p := model.Default(2, 64)
	cfg := DefaultConfig(p)
	pos := []geo.Point{{X: 0}, {X: 50}}
	res, _, _ := runPipeline(t, pos, p, cfg, []int64{10, 20}, agg.Sum, 2)
	for i, r := range res {
		if !r.Ok {
			t.Errorf("node %d not informed", i)
			continue
		}
		want := []int64{10, 20}[i]
		if r.Value != want {
			t.Errorf("node %d value %d, want %d (own component)", i, r.Value, want)
		}
	}
}

func TestPipelineUnderManhattanMetric(t *testing.T) {
	// Footnote 1 of the paper: the results extend to fading metrics. The
	// protocols never touch coordinates — only received powers — so the
	// pipeline must aggregate exactly under an L1 world as well.
	const n = 28
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(23))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		// Keep the cluster within L1 radius r_c of the origin.
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 3,
			Y: (rnd.Float64()*2 - 1) * rc / 3,
		}
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(2*i + 1)
		want += values[i]
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewFieldMetric(p, pos, geo.Manhattan), 29)
	res, err := Run(e, pl, values, agg.Sum, 29)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Ok || r.Value != want {
			t.Errorf("L1 metric: node %d ok=%v value=%d want=%d", i, r.Ok, r.Value, want)
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	// The entire pipeline must be a pure function of (seed, topology):
	// identical runs produce identical per-node results, regardless of
	// goroutine scheduling.
	const n = 24
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(41))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(i)
	}
	run := func() []Result {
		cfg := DefaultConfig(p)
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		pl := NewPlan(p, cfg)
		e := sim.NewEngine(phy.NewField(p, pos), 99)
		res, err := Run(e, pl, values, agg.Sum, 99)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestPipelineUnderParameterUncertainty(t *testing.T) {
	// Sec. 2: nodes know only ranges for (α, β, N) and should use the
	// pessimistic ends. Here the physics run at (α=3, β=1.5, N=1) while
	// protocols believe the conservative (β=1.7, N=1.2): every
	// protocol-side threshold (r_c, clear bounds, distance estimates) is
	// derived from the believed values, and the pipeline must still
	// aggregate exactly.
	const n = 26
	truth := model.Default(4, 64)
	believed := truth
	believed.Beta = 1.7
	believed.Noise = 1.2

	// Cluster sized by the *believed* (smaller) radius so both views agree
	// that everyone is co-clustered.
	rcB := believed.ClusterRadius()
	rnd := rand.New(rand.NewSource(47))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rcB / 2,
			Y: (rnd.Float64()*2 - 1) * rcB / 2,
		}
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 3)
		want += values[i]
	}
	cfg := DefaultConfig(believed)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(believed, cfg)
	e := sim.NewEngine(phy.NewField(truth, pos), 49)
	e.NodeParams = &believed
	res, err := Run(e, pl, values, agg.Sum, 49)
	if err != nil {
		t.Fatal(err)
	}
	informed, exact := 0, 0
	for _, r := range res {
		if r.Ok {
			informed++
			if r.Value == want {
				exact++
			}
		}
	}
	if informed != n || exact != n {
		t.Errorf("uncertainty run: informed %d/%d exact %d/%d", informed, n, exact, n)
	}
}

func TestPipelineWithJammedChannel(t *testing.T) {
	// One of four channels is jammed for the entire run (the disruption
	// setting of the paper's reference [9]). Followers re-pick channels
	// every round and the reporter-tree takeover bridges the dead channel,
	// so the pipeline must still conclude; values acknowledged only on the
	// jammed channel may be lost, so we require informed nodes and a
	// near-exact fold rather than perfection.
	const n = 32
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(53))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	cfg := DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	pl := NewPlan(p, cfg)
	field := phy.NewField(p, pos)
	field.Jam(2, true)
	e := sim.NewEngine(field, 57)
	res, err := Run(e, pl, values, agg.Sum, 57)
	if err != nil {
		t.Fatal(err)
	}
	informed := 0
	for _, r := range res {
		if !r.Ok {
			continue
		}
		informed++
		if r.Value > want || r.Value < want/2 {
			t.Errorf("implausible fold %d (true %d)", r.Value, want)
		}
	}
	if informed < n*9/10 {
		t.Errorf("only %d/%d informed with one jammed channel", informed, n)
	}
}
