package core

// ExecMode selects how Run drives the per-node pipeline code.
type ExecMode int

const (
	// ExecAuto (the zero value) picks per run: goroutine programs below
	// SteppedAutoMinNodes, the goroutine-free Stepper form at or above it.
	// Both forms produce bit-identical transcripts, so the switch is purely
	// a memory/wall-clock trade.
	ExecAuto ExecMode = iota
	// ExecGoroutines forces one goroutine per node (the historical mode).
	ExecGoroutines
	// ExecStepped forces the goroutine-free Stepper form: per-node state in
	// explicit structs, driven inline by the engine each slot.
	ExecStepped
)

// SteppedAutoMinNodes is the node count at which ExecAuto switches from
// goroutine programs to the Stepper form. Below it the two modes cost about
// the same; above it per-node goroutine stacks dominate the engine's memory
// and the park/unpark handoff dominates its slot overhead.
const SteppedAutoMinNodes = 16384

// String returns the mode's CLI/spec name.
func (m ExecMode) String() string {
	switch m {
	case ExecGoroutines:
		return "goroutines"
	case ExecStepped:
		return "stepped"
	default:
		return "auto"
	}
}

// stepped reports whether the mode resolves to the Stepper form for n nodes.
func (m ExecMode) stepped(n int) bool {
	switch m {
	case ExecStepped:
		return true
	case ExecGoroutines:
		return false
	default:
		return n >= SteppedAutoMinNodes
	}
}
