package core

import (
	"mcnet/internal/backbone"
	"mcnet/internal/dominate"
	"mcnet/internal/phy"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// Structure is a node's place in the aggregation structure after the build
// stages (Sec. 5): clustering, cluster color, size estimate, and channel
// role.
type Structure struct {
	// Dom is the dominating-set outcome (cluster head assignment).
	Dom dominate.Outcome
	// Color is the cluster's TDMA color; Off = Color mod PhiMax is the
	// node's TDMA offset.
	Color, Off int
	// Est is the cluster-size estimate from CSA.
	Est int
	// Fv is the number of channels the cluster uses.
	Fv int
	// Role is the node's reporter-tree role: 0 = dominator, ≥ 1 = reporter
	// on channel Role-1, -1 = follower.
	Role int
	// Channel is the channel the node chose at election (-1 for
	// dominators).
	Channel int
}

// IsDominator reports whether the node heads its cluster.
func (s Structure) IsDominator() bool { return s.Role == 0 }

// IsReporter reports whether the node is a channel reporter.
func (s Structure) IsReporter() bool { return s.Role >= 1 }

// BuildStage runs pipeline stages 1–5 (Theorem 10: structure construction)
// and returns the node's place in the structure. It consumes exactly
// Offsets.Followers slots.
func (pl *Plan) BuildStage(ctx *sim.Ctx) Structure {
	st := Structure{Channel: -1}

	// Stage 1: dominating set + clustering.
	st.Dom = dominate.Run(ctx, pl.Dominate)

	// Stage 2: cluster coloring (dominators only).
	var col backbone.ColorOutcome
	if st.Dom.IsDominator {
		col = backbone.RunColor(ctx, pl.Color)
	} else {
		backbone.IdleColor(ctx, pl.Color)
		col.Color = -1
	}

	// Stage 3: color dissemination.
	st.Color = pl.runAnnounce(ctx, st.Dom, col.Color)
	st.Off = st.Color % pl.Cfg.PhiMax
	if st.Off < 0 {
		st.Off = 0
	}

	// Stage 4: cluster-size approximation under TDMA.
	st.Est = pl.runCSA(ctx, st.Dom, st.Off)

	// Stage 5: reporter election on f_v channels.
	st.Fv = pl.fv(st.Est)
	elect := pl.Elect
	elect.Offset = st.Off
	st.Role = -1
	if st.Dom.IsDominator {
		reporter.IdleElect(ctx, elect)
		st.Role = 0
	} else {
		st.Channel = ctx.Rand.Intn(st.Fv)
		if reporter.RunElect(ctx, elect, st.Channel, st.Dom.Dominator) == ctx.ID() {
			st.Role = st.Channel + 1
		}
	}
	return st
}

// FollowerStage runs pipeline stage 6 (Sec. 6, first procedure): followers
// deliver their values to reporters under backoff-controlled contention.
// For reporters it returns the map of collected follower values keyed by
// follower ID; for followers, ackedOn is the channel whose reporter
// acknowledged the value (-1 if never acknowledged) — that reporter owns
// the follower in the Sec. 7 coloring. It consumes exactly
// Offsets.Tree − Offsets.Followers slots.
func (pl *Plan) FollowerStage(ctx *sim.Ctx, st Structure, value int64) (got map[int]int64, ackedOn int) {
	var (
		p        = pl.Params
		stride   = pl.Cfg.PhiMax
		isRep    = st.IsReporter()
		repChan  = st.Role - 1
		isDom    = st.IsDominator()
		follower = !isRep && !isDom
		acked    = false
		pu       = pl.Cfg.Lambda * float64(st.Fv) / float64(max2(st.Est, 1))
		memberR  = pl.ClusterRadius()
		off      = st.Off
	)
	ackedOn = -1
	if pu > 0.5 {
		pu = 0.5
	}
	if isRep {
		got = map[int]int64{}
	}
	for phase := 0; phase < pl.FollowerPhases; phase++ {
		count := 0
		heardBackoff := false
		for round := 0; round < pl.FollowerGamma; round++ {
			ctx.IdleFor(2 * off)
			sentOn, ackTo := -1, -1
			// Sub-slot 1: follower transmissions.
			switch {
			case follower && !acked && ctx.Rand.Float64() < pu:
				sentOn = ctx.Rand.Intn(st.Fv)
				ctx.Transmit(sentOn, FollowerMsg{From: ctx.ID(), Dom: st.Dom.Dominator, Value: value})
			case isRep:
				rec := ctx.Listen(repChan)
				if m, ok := rec.Msg.(FollowerMsg); ok && m.Dom == st.Dom.Dominator &&
					phy.SenderWithin(rec, p, memberR) {
					got[m.From] = m.Value
					ackTo = m.From
				}
			case isDom:
				rec := ctx.Listen(0)
				if m, ok := rec.Msg.(FollowerMsg); ok && m.Dom == ctx.ID() &&
					phy.SenderWithin(rec, p, memberR) {
					count++
				}
			default:
				ctx.Idle()
			}
			// Sub-slot 2: acknowledgements.
			switch {
			case isRep && ackTo >= 0:
				ctx.Transmit(repChan, FollowerAck{To: ackTo, Dom: st.Dom.Dominator})
			case follower && sentOn >= 0:
				rec := ctx.Listen(sentOn)
				if a, ok := rec.Msg.(FollowerAck); ok && a.To == ctx.ID() &&
					a.Dom == st.Dom.Dominator {
					acked = true
					ackedOn = sentOn
					ctx.Emit(EventAcked, phase)
				}
			default:
				ctx.Idle()
			}
			ctx.IdleFor(2 * (stride - 1 - off))
		}
		// Backoff round (two sub-slots to keep the stride uniform).
		ctx.IdleFor(2 * off)
		switch {
		case isDom && count >= pl.Omega && !pl.Cfg.DisableBackoff:
			ctx.Transmit(0, Backoff{Dom: ctx.ID()})
		case follower && !acked:
			rec := ctx.Listen(0)
			if b, ok := rec.Msg.(Backoff); ok && b.Dom == st.Dom.Dominator &&
				phy.SenderWithin(rec, p, memberR) {
				heardBackoff = true
			}
		default:
			ctx.Idle()
		}
		ctx.Idle()
		ctx.IdleFor(2 * (stride - 1 - off))
		if follower && !acked && !heardBackoff {
			pu *= 2
			if pu > 0.5 {
				pu = 0.5
			}
		}
	}
	return got, ackedOn
}

// CastConfig returns the reporter-tree cast configuration for the node's
// TDMA offset.
func (pl *Plan) CastConfig(off int) reporter.CastConfig {
	cast := reporter.DefaultCastConfig(pl.Params.Channels, pl.ClusterRadius())
	cast.Stride, cast.Offset = pl.Cfg.PhiMax, off
	return cast
}

// InformStage runs pipeline stage 9: dominators announce value within their
// clusters; members listen. Returns the (value, ok) the node ends with. It
// consumes exactly PhiMax slots.
func (pl *Plan) InformStage(ctx *sim.Ctx, st Structure, value int64, haveValue bool) (int64, bool) {
	p := pl.Params
	stride := pl.Cfg.PhiMax
	for sub := 0; sub < stride; sub++ {
		switch {
		case st.IsDominator() && sub == st.Off && haveValue:
			ctx.Transmit(0, FinalMsg{Dom: ctx.ID(), Value: value})
		case !st.IsDominator() && !haveValue:
			rec := ctx.Listen(0)
			if m, ok := rec.Msg.(FinalMsg); ok && m.Dom == st.Dom.Dominator &&
				phy.SenderWithin(rec, p, p.ClusterRadius()) {
				value, haveValue = m.Value, true
			}
		default:
			ctx.Idle()
		}
	}
	return value, haveValue
}
