package reporter

import (
	"math/rand"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// TestCastUpPropertyRandomSubsets checks the central invariant of the
// reporter tree with Appendix A takeovers: for ANY subset of present roles,
// the dominator's final value equals the fold of every present node's value
// — missing roles never lose a present node's contribution.
func TestCastUpPropertyRandomSubsets(t *testing.T) {
	const channels = 8
	for trial := 0; trial < 60; trial++ {
		rnd := rand.New(rand.NewSource(int64(trial)))
		// Random subset of roles 1..channels; the dominator (role 0) is
		// always present.
		var roles []int
		roles = append(roles, 0)
		for k := 1; k <= channels; k++ {
			if rnd.Intn(2) == 0 {
				roles = append(roles, k)
			}
		}
		values := make([]int64, len(roles))
		var want int64
		for i := range values {
			values[i] = int64(rnd.Intn(1000) + 1)
			want += values[i]
		}

		// One node per present role, all inside a tiny disk.
		pos := make([]geo.Point, len(roles))
		for i := 1; i < len(pos); i++ {
			pos[i] = geo.Point{
				X: (rnd.Float64()*2 - 1) * 0.03,
				Y: (rnd.Float64()*2 - 1) * 0.03,
			}
		}
		p := model.Default(channels, 64)
		e := sim.NewEngine(phy.NewField(p, pos), uint64(trial)+1)
		cfg := DefaultCastConfig(channels, 0.14)
		states := make([]CastState, len(roles))
		progs := make([]sim.Program, len(roles))
		for i := range progs {
			i := i
			progs[i] = func(ctx *sim.Ctx) {
				states[i] = RunCastUp(ctx, cfg, roles[i], 0, values[i], agg.Sum)
			}
		}
		if _, err := e.Run(progs); err != nil {
			t.Fatal(err)
		}
		if got := states[0].Value; got != want {
			t.Errorf("trial %d roles %v: root value %d, want %d", trial, roles, got, want)
		}
	}
}

// TestCastDownPropertyRandomSubsets checks the distribution invariant: after
// an up pass with unit values, the down pass hands every present reporter a
// distinct index inside [0, count).
func TestCastDownPropertyRandomSubsets(t *testing.T) {
	const channels = 8
	for trial := 0; trial < 40; trial++ {
		rnd := rand.New(rand.NewSource(int64(trial) + 500))
		roles := []int{0}
		for k := 1; k <= channels; k++ {
			if rnd.Intn(3) > 0 { // keep most roles so trees get deep
				roles = append(roles, k)
			}
		}
		values := make([]int64, len(roles))
		for i := 1; i < len(roles); i++ {
			values[i] = 1
		}
		pos := make([]geo.Point, len(roles))
		for i := 1; i < len(pos); i++ {
			pos[i] = geo.Point{
				X: (rnd.Float64()*2 - 1) * 0.03,
				Y: (rnd.Float64()*2 - 1) * 0.03,
			}
		}
		p := model.Default(channels, 64)
		e := sim.NewEngine(phy.NewField(p, pos), uint64(trial)+7)
		cfg := DefaultCastConfig(channels, 0.14)
		payloads := make([][2]int64, len(roles))
		oks := make([]bool, len(roles))
		var rootTotal int64
		progs := make([]sim.Program, len(roles))
		for i := range progs {
			i := i
			progs[i] = func(ctx *sim.Ctx) {
				st := RunCastUp(ctx, cfg, roles[i], 0, values[i], agg.Sum)
				if roles[i] == 0 {
					rootTotal = st.Value
				}
				root := [2]int64{0, st.Value}
				payloads[i], oks[i] = RunCastDown(ctx, cfg, roles[i], 0, st, root, coloringSplit)
			}
		}
		if _, err := e.Run(progs); err != nil {
			t.Fatal(err)
		}
		reporters := len(roles) - 1
		if rootTotal != int64(reporters) {
			t.Errorf("trial %d: root total %d, want %d", trial, rootTotal, reporters)
			continue
		}
		seen := map[int64]bool{}
		for i := 1; i < len(roles); i++ {
			if !oks[i] {
				t.Errorf("trial %d roles %v: role %d got no payload", trial, roles, roles[i])
				continue
			}
			start := payloads[i][0]
			if start < 0 || start >= int64(reporters) {
				t.Errorf("trial %d: role %d start %d outside [0, %d)", trial, roles[i], start, reporters)
			}
			if seen[start] {
				t.Errorf("trial %d roles %v: duplicate index %d", trial, roles, start)
			}
			seen[start] = true
		}
	}
}
