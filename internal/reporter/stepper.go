package reporter

// Stepper-form ports of RunElect and RunCastUp (see internal/sim: Stepper,
// Frag). Each fragment mirrors its goroutine original's control flow — the
// order and conditions of ctx.Rand draws and the placement of post-Listen
// consumption code — so the two forms produce bit-identical transcripts.

import (
	"mcnet/internal/agg"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// ElectFrag is the sim.Frag form of RunElect on the given channel for a
// member of cluster Dom. Min is the node's current minimum; once Feed
// returns true it is the election result.
type ElectFrag struct {
	Cfg          ElectConfig
	Channel, Dom int
	Min          int

	init      bool
	rounds    int
	round     int
	pos       uint8 // 0 pre-idle, 1 act, 2 post-idle
	awaitCand bool
}

// Feed implements sim.Frag.
func (f *ElectFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.rounds = f.Cfg.Rounds(p)
		f.Min = sc.ID()
	}
	if f.awaitCand {
		f.awaitCand = false
		rec := sc.Prev()
		if c, ok := rec.Msg.(Cand); ok && c.Dom == f.Dom && c.From < f.Min &&
			phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) {
			f.Min = c.From
		}
	}
	stride := f.Cfg.stride()
	for {
		if f.round >= f.rounds {
			return true
		}
		switch f.pos {
		case 0:
			f.pos = 1
			if f.Cfg.Offset > 0 {
				sc.IdleFor(f.Cfg.Offset)
				return false
			}
		case 1:
			f.pos = 2
			if f.Min == sc.ID() && sc.Rand.Float64() < f.Cfg.TxProb {
				sc.Transmit(f.Channel, Cand{From: sc.ID(), Dom: f.Dom})
			} else {
				sc.Listen(f.Channel)
				f.awaitCand = true
			}
			return false
		default:
			f.pos = 0
			f.round++
			if k := stride - 1 - f.Cfg.Offset; k > 0 {
				sc.IdleFor(k)
				return false
			}
		}
	}
}

// castAwait tags which sub-slot listen the fragment's previous slot holds.
type castAwait uint8

const (
	castAwaitNone castAwait = iota
	castAwaitSub0Parent
	castAwaitSub1Sender
	castAwaitSub2Parent
	castAwaitSub2StandIn
	castAwaitSub3Sender
)

// CastUpFrag is the sim.Frag form of RunCastUp for tree role Role in
// cluster Dom, folding Value with Op. St is valid once Feed returns true.
type CastUpFrag struct {
	Cfg       CastConfig
	Role, Dom int
	Value     int64
	Op        agg.Op
	St        CastState

	init   bool
	lvl    int
	pos    uint8 // 0 pre-idle, 1..4 sub-slots 0..3, 5 level end + post-idle
	acting int
	done   bool
	await  castAwait
	// Per-level locals of the goroutine form.
	isSender, isParent    bool
	sendsLeft, sendsRight bool
	parentRole            int
	sendCh, ownCh         int
	gotAck, standIn       bool
	sibValue              int64
	sibSeen               bool
}

func (f *CastUpFrag) recordChild(j, side int, v int64) {
	cv, cs := f.St.ChildVals[j], f.St.ChildSeen[j]
	cv[side], cs[side] = v, true
	f.St.ChildVals[j], f.St.ChildSeen[j] = cv, cs
}

// Feed implements sim.Frag.
func (f *CastUpFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.St = CastState{
			Value:       f.Value,
			DeliveredAs: -1,
			ChildVals:   map[int][2]int64{},
			ChildSeen:   map[int][2]bool{},
		}
		f.acting = f.Role
		if f.Role >= 0 {
			f.St.Chain = append(f.St.Chain, f.Role)
		}
		f.lvl = f.Cfg.Levels()
	}
	switch f.await {
	case castAwaitSub0Parent:
		rec := sc.Prev()
		if m, ok := rec.Msg.(UpMsg); ok && m.ToRole == f.acting && m.Dom == f.Dom &&
			m.From == 2*f.acting && phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) {
			f.recordChild(f.acting, 0, m.Value)
		}
	case castAwaitSub1Sender:
		rec := sc.Prev()
		if a, ok := rec.Msg.(UpAck); ok && a.ToRole == f.acting && a.Dom == f.Dom {
			f.gotAck = true
		}
		f.standIn = !f.gotAck // parent absent: stand in for it
	case castAwaitSub2Parent:
		rec := sc.Prev()
		if m, ok := rec.Msg.(UpMsg); ok && m.ToRole == f.acting && m.Dom == f.Dom &&
			m.From == 2*f.acting+1 && phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) {
			f.recordChild(f.acting, 1, m.Value)
		}
	case castAwaitSub2StandIn:
		rec := sc.Prev()
		if m, ok := rec.Msg.(UpMsg); ok && m.ToRole == f.parentRole && m.Dom == f.Dom &&
			m.From == f.acting+1 && phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) {
			f.sibValue, f.sibSeen = m.Value, true
		}
	case castAwaitSub3Sender:
		rec := sc.Prev()
		if a, ok := rec.Msg.(UpAck); ok && a.ToRole == f.acting && a.Dom == f.Dom {
			f.gotAck = true
		}
	}
	f.await = castAwaitNone

	stride := f.Cfg.stride()
	for {
		if f.lvl < 1 {
			return true
		}
		switch f.pos {
		case 0:
			f.pos = 1
			if k := 4 * f.Cfg.Offset; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 1: // Sub-slot 0: left children transmit.
			f.isSender = !f.done && f.acting >= 1 && levelOf(f.acting) == f.lvl
			f.isParent = !f.done && f.acting >= 0 && levelOf(f.acting) == f.lvl-1
			f.sendsLeft = f.isSender && f.acting%2 == 0 && f.acting != 1
			f.sendsRight = f.isSender && (f.acting%2 == 1 || f.acting == 1)
			f.parentRole = f.acting / 2
			f.sendCh = chanOf(f.parentRole)
			f.ownCh = chanOf(f.acting)
			f.gotAck, f.standIn, f.sibSeen = false, false, false
			f.sibValue = 0
			f.pos = 2
			switch {
			case f.sendsLeft:
				sc.Transmit(f.sendCh, UpMsg{ToRole: f.parentRole, Dom: f.Dom, From: f.acting, Value: f.St.Value})
			case f.isParent:
				sc.Listen(f.ownCh)
				f.await = castAwaitSub0Parent
			default:
				sc.Idle()
			}
			return false
		case 2: // Sub-slot 1: parents ack their left child.
			f.pos = 3
			switch {
			case f.isParent && f.St.ChildSeen[f.acting][0]:
				sc.Transmit(f.ownCh, UpAck{ToRole: 2 * f.acting, Dom: f.Dom})
			case f.sendsLeft:
				sc.Listen(f.sendCh)
				f.await = castAwaitSub1Sender
			default:
				sc.Idle()
			}
			return false
		case 3: // Sub-slot 2: right children transmit; stand-ins absorb.
			f.pos = 4
			switch {
			case f.sendsRight:
				sc.Transmit(f.sendCh, UpMsg{ToRole: f.parentRole, Dom: f.Dom, From: f.acting, Value: f.St.Value})
			case f.isParent:
				sc.Listen(f.ownCh)
				f.await = castAwaitSub2Parent
			case f.standIn:
				sc.Listen(f.sendCh)
				f.await = castAwaitSub2StandIn
			default:
				sc.Idle()
			}
			return false
		case 4: // Sub-slot 3: parents (or stand-ins) ack the right child.
			f.pos = 5
			switch {
			case f.isParent && f.St.ChildSeen[f.acting][1]:
				sc.Transmit(f.ownCh, UpAck{ToRole: 2*f.acting + 1, Dom: f.Dom})
			case f.standIn && f.sibSeen:
				sc.Transmit(f.sendCh, UpAck{ToRole: f.acting + 1, Dom: f.Dom})
			case f.sendsRight:
				sc.Listen(f.sendCh)
				f.await = castAwaitSub3Sender
			default:
				sc.Idle()
			}
			return false
		default: // Fold, resolve takeovers, post-idle, next level.
			if f.isParent {
				if f.St.ChildSeen[f.acting][0] {
					f.St.Value = f.Op.Combine(f.St.Value, f.St.ChildVals[f.acting][0])
				}
				if f.St.ChildSeen[f.acting][1] {
					f.St.Value = f.Op.Combine(f.St.Value, f.St.ChildVals[f.acting][1])
				}
			}
			if f.isSender {
				switch {
				case f.gotAck:
					f.St.DeliveredAs = f.acting
					f.done = true
				default:
					f.St.Chain = append(f.St.Chain, f.parentRole)
					f.acting = f.parentRole
					if f.standIn {
						f.recordChild(f.parentRole, 0, f.St.Value)
						if f.sibSeen {
							f.St.Value = f.Op.Combine(f.St.Value, f.sibValue)
							f.recordChild(f.parentRole, 1, f.sibValue)
						}
					} else {
						f.recordChild(f.parentRole, 1, f.St.Value)
					}
				}
			}
			f.lvl--
			f.pos = 0
			if k := 4 * (stride - 1 - f.Cfg.Offset); k > 0 {
				sc.IdleFor(k)
				return false
			}
		}
	}
}
