// Package reporter implements the intra-cluster channel structure of
// Sec. 5.2.2: electing one reporter per (cluster, channel) and organizing
// the reporters into a complete binary tree keyed by channel number (a
// binary heap with the dominator as root), over which values are
// convergecast to the dominator (and, for the coloring algorithm of Sec. 7,
// ranges are distributed back down).
//
// Election uses min-ID gossip per (cluster, channel) instead of the paper's
// ruling-set invocation (deviation D7): all members of a cluster share one
// r_c-ball, so the channel population is a single-hop environment in which
// the smallest ID propagates to everyone in O(log n) rounds w.h.p. The
// postcondition is the paper's: exactly one reporter per non-empty channel.
//
// Tree role numbering: the dominator is role 0; the reporter elected on
// physical channel c has role c+1; the parent of role k is ⌊k/2⌋; role
// k ≥ 1 operates on channel k-1. Role 1 therefore talks to the dominator on
// channel 0, the paper's "special first channel".
package reporter

import (
	"math"

	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// Cand is the election gossip message.
type Cand struct {
	From int
	Dom  int // cluster identity (dominator ID)
}

// ElectConfig parameterizes the per-channel leader election.
type ElectConfig struct {
	// ClusterRadius bounds the distance to co-members (the pipeline passes
	// 2·r_c); senders beyond it are ignored.
	ClusterRadius float64
	// TxProb is the per-round transmission probability of a node that still
	// believes itself the minimum.
	TxProb float64
	// RoundFactor scales the stage: rounds = ceil(RoundFactor·ln n̂).
	RoundFactor float64
	// Stride and Offset interleave clusters under the TDMA scheme.
	Stride, Offset int
}

// DefaultElectConfig returns the pipeline configuration.
func DefaultElectConfig(clusterRadius float64) ElectConfig {
	return ElectConfig{
		ClusterRadius: clusterRadius,
		TxProb:        0.25,
		RoundFactor:   10,
		Stride:        1,
	}
}

func (c ElectConfig) stride() int {
	if c.Stride < 1 {
		return 1
	}
	return c.Stride
}

// Rounds returns the number of election rounds.
func (c ElectConfig) Rounds(p model.Params) int {
	return int(math.Ceil(c.RoundFactor * p.LogN()))
}

// SlotBudget returns the exact number of slots RunElect and IdleElect
// consume.
func (c ElectConfig) SlotBudget(p model.Params) int {
	return c.stride() * c.Rounds(p)
}

// IdleElect consumes the stage budget without participating.
func IdleElect(ctx *sim.Ctx, cfg ElectConfig) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// RunElect executes the election on the given physical channel for a member
// of cluster dom. It returns the elected reporter's ID — the minimum ID
// among members that chose the channel, w.h.p. — which equals the caller's
// own ID exactly when it is the reporter. It consumes exactly
// cfg.SlotBudget slots.
func RunElect(ctx *sim.Ctx, cfg ElectConfig, channel, dom int) int {
	var (
		p      = ctx.Params()
		stride = cfg.stride()
		min    = ctx.ID()
	)
	for round := 0; round < cfg.Rounds(p); round++ {
		ctx.IdleFor(cfg.Offset)
		if min == ctx.ID() && ctx.Rand.Float64() < cfg.TxProb {
			ctx.Transmit(channel, Cand{From: ctx.ID(), Dom: dom})
		} else {
			rec := ctx.Listen(channel)
			if c, ok := rec.Msg.(Cand); ok && c.Dom == dom && c.From < min &&
				phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				min = c.From
			}
		}
		ctx.IdleFor(stride - 1 - cfg.Offset)
	}
	return min
}
