package reporter

import (
	"math/rand"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// clusterField places n nodes inside a disk of the given radius (a single
// cluster) under F channels.
func clusterField(n, channels int, radius float64, seed int64) (*phy.Field, model.Params) {
	rnd := rand.New(rand.NewSource(seed))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * radius / 1.5,
			Y: (rnd.Float64()*2 - 1) * radius / 1.5,
		}
	}
	p := model.Default(channels, 64)
	return phy.NewField(p, pos), p
}

func TestElectMinIDPerChannel(t *testing.T) {
	const n, channels = 20, 4
	f, p := clusterField(n, channels, 0.05, 3)
	cfg := DefaultElectConfig(0.14)
	// Channel assignment round-robin so minima are known: channel c gets
	// nodes c, c+4, c+8, ... → min on channel c is node c.
	e := sim.NewEngine(f, 5)
	isLeader := make([]bool, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			isLeader[i] = RunElect(ctx, cfg, i%channels, 0) == ctx.ID()
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	_ = p
	for i, l := range isLeader {
		want := i < channels
		if l != want {
			t.Errorf("node %d leader = %v, want %v", i, l, want)
		}
	}
}

func TestElectTwoClustersIsolated(t *testing.T) {
	// Two clusters far apart, same channel, different dominator IDs: the
	// Dom field must keep elections independent even if signals carried.
	const perCluster = 8
	pos := make([]geo.Point, 2*perCluster)
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < perCluster; i++ {
		pos[i] = geo.Point{X: rnd.Float64() * 0.05, Y: rnd.Float64() * 0.05}
		pos[perCluster+i] = geo.Point{X: 5 + rnd.Float64()*0.05, Y: rnd.Float64() * 0.05}
	}
	p := model.Default(1, 64)
	e := sim.NewEngine(phy.NewField(p, pos), 7)
	cfg := DefaultElectConfig(0.14)
	isLeader := make([]bool, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		dom := 0
		if i >= perCluster {
			dom = perCluster
		}
		progs[i] = func(ctx *sim.Ctx) {
			isLeader[i] = RunElect(ctx, cfg, 0, dom) == ctx.ID()
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i, l := range isLeader {
		want := i == 0 || i == perCluster
		if l != want {
			t.Errorf("node %d leader = %v, want %v", i, l, want)
		}
	}
}

func TestElectSlotBudget(t *testing.T) {
	p := model.Default(1, 64)
	cfg := DefaultElectConfig(0.14)
	pos := []geo.Point{{X: 0}, {X: 0.02}}
	e := sim.NewEngine(phy.NewField(p, pos), 2)
	after := make([]int, 2)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunElect(ctx, cfg, 0, 0); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { IdleElect(ctx, cfg); after[1] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	want := cfg.SlotBudget(p)
	if after[0] != want || after[1] != want {
		t.Errorf("budgets %v, want %d", after, want)
	}
}

// runCast executes an up pass with the given role assignment (node i plays
// roles[i]; -1 is a bystander) and per-node values, and returns the states.
func runCast(t *testing.T, roles []int, values []int64, channels int, op agg.Op, seed uint64) []CastState {
	t.Helper()
	f, _ := clusterField(len(roles), channels, 0.05, int64(seed))
	cfg := DefaultCastConfig(channels, 0.14)
	e := sim.NewEngine(f, seed)
	states := make([]CastState, len(roles))
	progs := make([]sim.Program, len(roles))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			if roles[i] < 0 {
				IdleCast(ctx, cfg)
				return
			}
			states[i] = RunCastUp(ctx, cfg, roles[i], 0, values[i], op)
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return states
}

func TestCastUpFullTree(t *testing.T) {
	// Roles 0..4 over F=4 channels: full heap 1..4 plus dominator.
	roles := []int{0, 1, 2, 3, 4}
	values := []int64{100, 1, 2, 3, 4}
	states := runCast(t, roles, values, 4, agg.Sum, 11)
	if got := states[0].Value; got != 110 {
		t.Errorf("root value = %d, want 110", got)
	}
	// Role 1 delivered to the dominator; role 4 to role 2; etc.
	if states[1].DeliveredAs != 1 || states[4].DeliveredAs != 4 {
		t.Errorf("delivery roles: %d, %d", states[1].DeliveredAs, states[4].DeliveredAs)
	}
	if !states[0].ChildSeen[0][1] {
		t.Error("dominator did not record role 1")
	}
	if !states[2].ChildSeen[2][0] {
		t.Error("role 2 did not record its left child 4")
	}
}

func TestCastUpMissingMidRole(t *testing.T) {
	// Role 2 absent: role 4 (its left child) must stand in and deliver both
	// its value and the takeover to role 1.
	roles := []int{0, 1, -1, 3, 4}
	values := []int64{0, 1, 0, 3, 4}
	states := runCast(t, roles, values, 4, agg.Sum, 13)
	if got := states[0].Value; got != 8 {
		t.Errorf("root value = %d, want 8 (role 2's value lost with the node)", got)
	}
	// Node 4's chain should show the takeover of role 2.
	if len(states[4].Chain) != 2 || states[4].Chain[1] != 2 {
		t.Errorf("node 4 chain = %v, want [4 2]", states[4].Chain)
	}
	if states[4].DeliveredAs != 2 {
		t.Errorf("node 4 delivered as %d, want 2", states[4].DeliveredAs)
	}
}

func TestCastUpMissingRole1(t *testing.T) {
	// Role 1 absent: role 2 stands in, absorbing sibling 3, and delivers to
	// the dominator as role 1.
	roles := []int{0, -1, 2, 3}
	values := []int64{0, 0, 20, 30}
	states := runCast(t, roles, values, 4, agg.Sum, 17)
	if got := states[0].Value; got != 50 {
		t.Errorf("root value = %d, want 50", got)
	}
	if states[2].DeliveredAs != 1 {
		t.Errorf("node 2 delivered as %d, want 1", states[2].DeliveredAs)
	}
	if states[3].DeliveredAs != 3 {
		t.Errorf("node 3 delivered as %d, want 3 (acked by the stand-in)", states[3].DeliveredAs)
	}
}

func TestCastUpOnlyRightLeaf(t *testing.T) {
	// Roles 0, 3 only: role 3 is a right child whose parent (1) and sibling
	// (2) are absent; it must cascade takeovers all the way to role 1.
	roles := []int{0, -1, -1, 3}
	values := []int64{0, 0, 0, 7}
	states := runCast(t, roles, values, 4, agg.Sum, 19)
	if got := states[0].Value; got != 7 {
		t.Errorf("root value = %d, want 7", got)
	}
	if states[3].DeliveredAs != 1 {
		t.Errorf("node 3 delivered as %d, want 1", states[3].DeliveredAs)
	}
}

func TestCastUpEightChannels(t *testing.T) {
	// Full tree on F=8: roles 1..8, three levels.
	roles := make([]int, 9)
	values := make([]int64, 9)
	var want int64
	for i := range roles {
		roles[i] = i
		values[i] = int64(i * 10)
		want += values[i]
	}
	states := runCast(t, roles, values, 8, agg.Sum, 23)
	if got := states[0].Value; got != want {
		t.Errorf("root value = %d, want %d", got, want)
	}
}

// coloringSplit mimics the Sec. 7 range distribution: at a node's base role
// it consumes one unit of the interval for itself, then the left child
// subtree gets the next cv[0] units and the right child the cv[1] after
// that. The dominator (role 0) consumes nothing.
func coloringSplit(j int, base bool, payload [2]int64, cv [2]int64, cs [2]bool) (self, left, right [2]int64) {
	lo := payload[0]
	if base && j != 0 {
		self = [2]int64{lo, 1}
		lo++
	}
	if cs[0] {
		left = [2]int64{lo, cv[0]}
		lo += cv[0]
	}
	if cs[1] {
		right = [2]int64{lo, cv[1]}
	}
	return self, left, right
}

func TestCastDownDistributesDisjointRanges(t *testing.T) {
	// Up pass with value 1 per reporter (subtree counts), then down pass
	// dividing [0, total) among reporters; ranges must be disjoint, sized 1
	// each here, and within bounds.
	roles := []int{0, 1, 2, 3, 4, 5}
	values := []int64{0, 1, 1, 1, 1, 1}
	channels := 5
	f, _ := clusterField(len(roles), channels, 0.05, 31)
	cfg := DefaultCastConfig(channels, 0.14)
	e := sim.NewEngine(f, 31)
	states := make([]CastState, len(roles))
	payloads := make([][2]int64, len(roles))
	oks := make([]bool, len(roles))
	progs := make([]sim.Program, len(roles))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			states[i] = RunCastUp(ctx, cfg, roles[i], 0, values[i], agg.Sum)
			root := [2]int64{0, states[i].Value} // only meaningful at role 0
			payloads[i], oks[i] = RunCastDown(ctx, cfg, roles[i], 0, states[i], root, coloringSplit)
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if states[0].Value != 5 {
		t.Fatalf("root total = %d, want 5", states[0].Value)
	}
	// Each reporter's interval starts at a distinct offset in [0, 5); its
	// own color is payload[0] and its subtree size is payload[1].
	seen := map[int64]bool{}
	for i := 1; i < len(roles); i++ {
		if !oks[i] {
			t.Errorf("role %d got no payload", roles[i])
			continue
		}
		start := payloads[i][0]
		if start < 0 || start >= 5 {
			t.Errorf("role %d start %d out of range", roles[i], start)
		}
		if seen[start] {
			t.Errorf("role %d start %d duplicated", roles[i], start)
		}
		seen[start] = true
	}
}

func TestCastDownWithTakeover(t *testing.T) {
	// Role 2 missing: node with role 4 stands in; the down pass must still
	// deliver role 4 a payload through its own takeover chain.
	roles := []int{0, 1, -1, 3, 4}
	values := []int64{0, 1, 0, 1, 1}
	channels := 4
	f, _ := clusterField(len(roles), channels, 0.05, 37)
	cfg := DefaultCastConfig(channels, 0.14)
	e := sim.NewEngine(f, 37)
	states := make([]CastState, len(roles))
	payloads := make([][2]int64, len(roles))
	oks := make([]bool, len(roles))
	progs := make([]sim.Program, len(roles))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			if roles[i] < 0 {
				IdleCast(ctx, cfg)
				IdleCast(ctx, cfg)
				return
			}
			states[i] = RunCastUp(ctx, cfg, roles[i], 0, values[i], agg.Sum)
			root := [2]int64{0, states[i].Value}
			payloads[i], oks[i] = RunCastDown(ctx, cfg, roles[i], 0, states[i], root, coloringSplit)
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if states[0].Value != 3 {
		t.Fatalf("root total = %d, want 3", states[0].Value)
	}
	for _, i := range []int{1, 3, 4} {
		if !oks[i] {
			t.Errorf("node %d (role %d) got no payload", i, roles[i])
		}
	}
	starts := map[int64]bool{}
	for _, i := range []int{1, 3, 4} {
		if starts[payloads[i][0]] {
			t.Errorf("duplicate start %d", payloads[i][0])
		}
		starts[payloads[i][0]] = true
	}
}

func TestCastSlotBudget(t *testing.T) {
	p := model.Default(4, 64)
	cfg := DefaultCastConfig(4, 0.14)
	pos := []geo.Point{{X: 0}, {X: 0.02}}
	e := sim.NewEngine(phy.NewField(p, pos), 2)
	after := make([]int, 2)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunCastUp(ctx, cfg, 0, 0, 1, agg.Sum); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { IdleCast(ctx, cfg); after[1] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if after[0] != cfg.SlotBudget() || after[1] != cfg.SlotBudget() {
		t.Errorf("budgets %v, want %d", after, cfg.SlotBudget())
	}
}

func TestLevelOf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4}
	for k, want := range cases {
		if got := levelOf(k); got != want {
			t.Errorf("levelOf(%d) = %d, want %d", k, got, want)
		}
	}
}
