package reporter

import (
	"mcnet/internal/agg"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// UpMsg carries a subtree aggregate from tree role From to role ToRole.
type UpMsg struct {
	ToRole int
	Dom    int
	From   int
	Value  int64
}

// PayloadValue exposes the subtree aggregate to the fault layer's Byzantine
// corruption hook (fault.Payload).
func (m UpMsg) PayloadValue() int64 { return m.Value }

// WithPayloadValue returns the message with its value replaced.
func (m UpMsg) WithPayloadValue(v int64) any { m.Value = v; return m }

// UpAck confirms receipt of an UpMsg.
type UpAck struct {
	ToRole int
	Dom    int
}

// DownMsg carries a payload interval from a parent to tree role ToRole.
type DownMsg struct {
	ToRole  int
	Dom     int
	Payload [2]int64
}

// CastConfig parameterizes reporter-tree convergecast and distribution.
type CastConfig struct {
	// F is the number of channel roles in the tree (the cluster's f_v).
	F int
	// ClusterRadius bounds the distance to co-members (2·r_c).
	ClusterRadius float64
	// Stride and Offset interleave clusters under the TDMA scheme.
	Stride, Offset int
}

// DefaultCastConfig returns the pipeline configuration.
func DefaultCastConfig(f int, clusterRadius float64) CastConfig {
	return CastConfig{F: f, ClusterRadius: clusterRadius, Stride: 1}
}

func (c CastConfig) stride() int {
	if c.Stride < 1 {
		return 1
	}
	return c.Stride
}

// Levels returns the depth of the role heap: roles 1..F; the level of role
// k is the position of its most significant bit, so role 1 is level 1 and
// the deepest level is ⌊log₂ F⌋ + 1.
func (c CastConfig) Levels() int {
	return levelOf(c.F)
}

// SlotBudget returns the exact number of slots one directional pass (up or
// down) consumes: 4 sub-slots per level, stride-interleaved.
func (c CastConfig) SlotBudget() int {
	return 4 * c.Levels() * c.stride()
}

// IdleCast consumes one directional pass without participating.
func IdleCast(ctx *sim.Ctx, cfg CastConfig) {
	ctx.IdleFor(cfg.SlotBudget())
}

// levelOf returns the heap level of role k: 0 for the root (role 0), and
// the MSB position for k ≥ 1 (role 1 → 1, roles 2-3 → 2, roles 4-7 → 3, …).
func levelOf(k int) int {
	l := 0
	for v := k; v > 0; v >>= 1 {
		l++
	}
	return l
}

// chanOf returns the physical channel of role k ≥ 1; the dominator (role 0)
// uses channel 0, which is also role 1's channel (the paper's "special
// first channel").
func chanOf(k int) int {
	if k <= 0 {
		return 0
	}
	return k - 1
}

// CastState records what a node did during an up pass, so a later down pass
// can retrace the tree through Appendix A takeovers.
type CastState struct {
	// Value is the accumulated aggregate after the pass.
	Value int64
	// Chain lists the roles the node acted as, in ascending tree order
	// (own role first, then any taken-over ancestors).
	Chain []int
	// DeliveredAs is the role under which the node's aggregate reached a
	// live parent (-1 if it never delivered; the dominator never delivers).
	DeliveredAs int
	// ChildVals / ChildSeen record, per acted role, the child contributions
	// (index 0 = left child 2j, 1 = right child 2j+1). For the root, the
	// single child (role 1) is recorded on index 1.
	ChildVals map[int][2]int64
	ChildSeen map[int][2]bool
}

// RunCastUp executes one up pass of the reporter tree for cluster dom.
//
// Role 0 is the dominator; roles 1..F are channel reporters (role k on
// physical channel k-1); bystanders use IdleCast. Child values are folded
// with op. Missing roles (empty channels) are healed by the Appendix A
// rules: an unacknowledged left child stands in for its missing parent,
// absorbing its sibling's transmission directly; an unacknowledged right
// child takes over only when the left sibling is absent too (a present left
// sibling would have acknowledged it).
//
// Sub-slots per level: 0 = left child transmits, 1 = ack to left child,
// 2 = right child transmits, 3 = ack to right child. Role 1 (the root's
// only child) uses the right-child sub-slots. The pass consumes exactly
// cfg.SlotBudget slots.
func RunCastUp(ctx *sim.Ctx, cfg CastConfig, role, dom int, value int64, op agg.Op) CastState {
	var (
		p      = ctx.Params()
		stride = cfg.stride()
		st     = CastState{
			Value:       value,
			DeliveredAs: -1,
			ChildVals:   map[int][2]int64{},
			ChildSeen:   map[int][2]bool{},
		}
		acting = role
		done   = false
	)
	if role >= 0 {
		st.Chain = append(st.Chain, role)
	}
	recordChild := func(j, side int, v int64) {
		cv, cs := st.ChildVals[j], st.ChildSeen[j]
		cv[side], cs[side] = v, true
		st.ChildVals[j], st.ChildSeen[j] = cv, cs
	}

	for lvl := cfg.Levels(); lvl >= 1; lvl-- {
		ctx.IdleFor(4 * cfg.Offset)
		var (
			isSender = !done && acting >= 1 && levelOf(acting) == lvl
			isParent = !done && acting >= 0 && levelOf(acting) == lvl-1
			// Role 1 transmits in the right-child sub-slots.
			sendsLeft  = isSender && acting%2 == 0 && acting != 1
			sendsRight = isSender && (acting%2 == 1 || acting == 1)
			parentRole = acting / 2
			sendCh     = chanOf(parentRole) // channel the parent owns
			ownCh      = chanOf(acting)
			gotAck     = false
			standIn    = false
			sibValue   int64
			sibSeen    = false
		)

		// Sub-slot 0: left children transmit.
		switch {
		case sendsLeft:
			ctx.Transmit(sendCh, UpMsg{ToRole: parentRole, Dom: dom, From: acting, Value: st.Value})
		case isParent:
			rec := ctx.Listen(ownCh)
			if m, ok := rec.Msg.(UpMsg); ok && m.ToRole == acting && m.Dom == dom &&
				m.From == 2*acting && phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				recordChild(acting, 0, m.Value)
			}
		default:
			ctx.Idle()
		}

		// Sub-slot 1: parents ack their left child.
		switch {
		case isParent && st.ChildSeen[acting][0]:
			ctx.Transmit(ownCh, UpAck{ToRole: 2 * acting, Dom: dom})
		case sendsLeft:
			rec := ctx.Listen(sendCh)
			if a, ok := rec.Msg.(UpAck); ok && a.ToRole == acting && a.Dom == dom {
				gotAck = true
			}
			standIn = !gotAck // parent absent: stand in for it
		default:
			ctx.Idle()
		}

		// Sub-slot 2: right children transmit; stand-ins absorb their
		// sibling's transmission off the shared parent channel.
		switch {
		case sendsRight:
			ctx.Transmit(sendCh, UpMsg{ToRole: parentRole, Dom: dom, From: acting, Value: st.Value})
		case isParent:
			rec := ctx.Listen(ownCh)
			if m, ok := rec.Msg.(UpMsg); ok && m.ToRole == acting && m.Dom == dom &&
				m.From == 2*acting+1 && phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				recordChild(acting, 1, m.Value)
			}
		case standIn:
			rec := ctx.Listen(sendCh)
			if m, ok := rec.Msg.(UpMsg); ok && m.ToRole == parentRole && m.Dom == dom &&
				m.From == acting+1 && phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				sibValue, sibSeen = m.Value, true
			}
		default:
			ctx.Idle()
		}

		// Sub-slot 3: parents (or stand-ins) ack the right child.
		switch {
		case isParent && st.ChildSeen[acting][1]:
			ctx.Transmit(ownCh, UpAck{ToRole: 2*acting + 1, Dom: dom})
		case standIn && sibSeen:
			ctx.Transmit(sendCh, UpAck{ToRole: acting + 1, Dom: dom})
		case sendsRight:
			rec := ctx.Listen(sendCh)
			if a, ok := rec.Msg.(UpAck); ok && a.ToRole == acting && a.Dom == dom {
				gotAck = true
			}
		default:
			ctx.Idle()
		}

		// Fold absorbed values and resolve takeovers for the next level.
		if isParent {
			if st.ChildSeen[acting][0] {
				st.Value = op.Combine(st.Value, st.ChildVals[acting][0])
			}
			if st.ChildSeen[acting][1] {
				st.Value = op.Combine(st.Value, st.ChildVals[acting][1])
			}
		}
		if isSender {
			switch {
			case gotAck:
				st.DeliveredAs = acting
				done = true
			default:
				// Parent absent. Left children (and role 1, whose parent —
				// the dominator — is always present, so this is defensive)
				// take over; right children take over only when the left
				// sibling is absent (no stand-in ack arrived).
				st.Chain = append(st.Chain, parentRole)
				acting = parentRole
				if standIn {
					// Record the stand-in's view: left = own subtree,
					// right = absorbed sibling.
					recordChild(parentRole, 0, st.Value)
					if sibSeen {
						st.Value = op.Combine(st.Value, sibValue)
						recordChild(parentRole, 1, sibValue)
					}
				} else {
					// Right child taking over: its subtree is the right
					// record.
					recordChild(parentRole, 1, st.Value)
				}
			}
		}

		ctx.IdleFor(4 * (stride - 1 - cfg.Offset))
	}
	return st
}

// RunCastDown executes one down pass, distributing payload intervals from
// the root to the reporters, retracing the up pass recorded in st
// (including takeovers). split partitions an acted role's payload into the
// actor's own interval (only when base is true: a physical node consumes
// its own share exactly once, at its base role) and the two child subtree
// intervals, using the child contributions recorded on the way up.
//
// The returned value is this node's own interval (with ok=false if the node
// never obtained a payload). The pass consumes exactly cfg.SlotBudget
// slots.
func RunCastDown(
	ctx *sim.Ctx,
	cfg CastConfig,
	role, dom int,
	st CastState,
	rootPayload [2]int64,
	split func(j int, base bool, payload [2]int64, cv [2]int64, cs [2]bool) (self, left, right [2]int64),
) ([2]int64, bool) {
	var (
		p        = ctx.Params()
		stride   = cfg.stride()
		payloads = map[int][2]int64{} // payload per chain role, once known
		have     = false
		topRole  = -1
		selfPay  [2]int64
		haveSelf = false
	)
	if role == 0 {
		payloads[0] = rootPayload
		have = true
		topRole = 0
	} else if len(st.Chain) > 0 {
		// The payload arrives addressed to the highest role in the chain
		// (the role under which the node delivered upward).
		topRole = st.Chain[len(st.Chain)-1]
	}
	inChain := func(j int) bool {
		if role == 0 {
			return j == 0
		}
		for _, c := range st.Chain {
			if c == j {
				return true
			}
		}
		return false
	}
	// propagate walks the node's internal chain top-down from the top role,
	// splitting payloads locally (no radio between a node's own roles).
	propagate := func() {
		if !have {
			return
		}
		for j := topRole; j >= 0; {
			pl, ok := payloads[j]
			if !ok {
				return
			}
			self, left, right := split(j, j == role, pl, st.ChildVals[j], st.ChildSeen[j])
			if j == role {
				selfPay, haveSelf = self, true
				return
			}
			switch {
			case inChain(2 * j):
				payloads[2*j] = left
				j = 2 * j
			case inChain(2*j + 1):
				payloads[2*j+1] = right
				j = 2*j + 1
			default:
				return
			}
		}
	}
	propagate()

	for lvl := 1; lvl <= cfg.Levels(); lvl++ {
		ctx.IdleFor(4 * cfg.Offset)
		// Does the node act as a parent of level-lvl roles?
		parentRole, isParent := -1, false
		for _, j := range chainRoles(role, st) {
			if levelOf(j) == lvl-1 {
				parentRole, isParent = j, true
			}
		}
		if isParent {
			if _, ok := payloads[parentRole]; !ok {
				isParent = false
			}
		}
		var leftPay, rightPay [2]int64
		if isParent {
			_, leftPay, rightPay = split(parentRole, parentRole == role,
				payloads[parentRole], st.ChildVals[parentRole], st.ChildSeen[parentRole])
		}
		// Does the node expect to receive at this level?
		expectsAt := !have && topRole >= 1 && levelOf(topRole) == lvl
		recvCh := chanOf(topRole / 2)

		// Sub-slot 0: payload to left child.
		switch {
		case isParent && parentRole >= 1 && st.ChildSeen[parentRole][0] && !inChain(2*parentRole):
			ctx.Transmit(chanOf(parentRole), DownMsg{ToRole: 2 * parentRole, Dom: dom, Payload: leftPay})
		case expectsAt && topRole%2 == 0 && topRole != 1:
			rec := ctx.Listen(recvCh)
			if m, ok := rec.Msg.(DownMsg); ok && m.ToRole == topRole && m.Dom == dom &&
				phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				payloads[topRole], have = m.Payload, true
				propagate()
			}
		default:
			ctx.Idle()
		}
		// Sub-slot 1: layout parity with the up pass.
		ctx.Idle()

		// Sub-slot 2: payload to right child (and from root to role 1).
		switch {
		case isParent && parentRole == 0:
			ctx.Transmit(0, DownMsg{ToRole: 1, Dom: dom, Payload: rightPay})
		case isParent && st.ChildSeen[parentRole][1] && !inChain(2*parentRole+1):
			ctx.Transmit(chanOf(parentRole), DownMsg{ToRole: 2*parentRole + 1, Dom: dom, Payload: rightPay})
		case expectsAt && (topRole%2 == 1 || topRole == 1):
			rec := ctx.Listen(recvCh)
			if m, ok := rec.Msg.(DownMsg); ok && m.ToRole == topRole && m.Dom == dom &&
				phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				payloads[topRole], have = m.Payload, true
				propagate()
			}
		default:
			ctx.Idle()
		}
		// Sub-slot 3: layout parity.
		ctx.Idle()

		ctx.IdleFor(4 * (stride - 1 - cfg.Offset))
	}
	return selfPay, haveSelf
}

// chainRoles returns the roles the node acted as during the up pass.
func chainRoles(role int, st CastState) []int {
	if role == 0 {
		return []int{0}
	}
	return st.Chain
}
