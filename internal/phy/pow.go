package phy

import "math"

// integralAlpha returns α as an int when it is an exact small integer (the
// regime where ipow applies), else 0. The default parameter set uses α = 3.
func integralAlpha(alpha float64) int {
	if alpha == math.Trunc(alpha) && alpha >= 1 && alpha <= 64 {
		return int(alpha)
	}
	return 0
}

// ipow computes x**n for n ≥ 1 using the same square-and-multiply
// multiplication order math.Pow uses for integral exponents, so for
// positive x whose intermediate squares stay in the normal float64 range
// the result is bit-identical to math.Pow(x, float64(n)) — the property
// the resolver's fast paths rely on to keep transcripts unchanged.
//
// (math.Pow tracks the exponent separately via Frexp, so it differs from
// this direct product only when an intermediate square over- or underflows;
// with distances in transmission-range units that requires |log2 x|·n
// beyond ~1000 and cannot arise from realistic geometry. TestIpowMatchesPow
// pins the equivalence across the relevant magnitude range.)
func ipow(x float64, n int) float64 {
	a := 1.0
	for {
		if n&1 == 1 {
			a *= x
		}
		n >>= 1
		if n == 0 {
			return a
		}
		x *= x
	}
}
