package phy

import (
	"runtime"
	"sync"
)

// Resolve fans listeners out across a package-level pool of persistent
// worker goroutines instead of spawning goroutines per slot: a task is a
// contiguous listener range, sent by value over a channel (no allocation),
// and the submitting Field waits on its own WaitGroup. Workers from the
// shared pool may serve several Fields concurrently — ranges are disjoint
// and slot state is read-only during a Resolve, so tasks share nothing.
// The pool is sized to GOMAXPROCS at first use and lives for the process;
// a Field that never resolves slots large enough to fan out (see
// minParallelWork) never starts it.

type resolveTask struct {
	f      *Field
	txs    []Tx
	rxs    []Rx
	out    []Reception
	lo, hi int
}

var (
	poolOnce  sync.Once
	poolTasks chan resolveTask
)

func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	poolTasks = make(chan resolveTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolTasks {
				t.f.resolveRange(t.txs, t.rxs, t.out, t.lo, t.hi)
				t.f.wg.Done()
			}
		}()
	}
}
