package phy

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// TestFloat32KernelPropertyRandom is the f32-kernel property test: across
// random deployments, spans, channel counts and jamming states, every
// accumulated power (signal, interference, RSSI) stays within
// Float32KernelTolerance of the same resolver under the f64 kernel, and
// decode decisions flip only inside the ε-ambiguous band around β — in
// both directions.
func TestFloat32KernelPropertyRandom(t *testing.T) {
	const tol = Float32KernelTolerance
	r := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		n := 80 + r.Intn(400)
		span := 0.05 + math.Pow(10, r.Float64()*4-1) // 0.15 .. ~1000 units
		channels := 1 + r.Intn(4)
		mode := ResolverExact
		if trial%2 == 0 {
			mode = ResolverHierarchical
		}
		p := model.Default(channels, n)
		pos, txs, rxs := randomSlot(r, n, channels, span, 0.4)
		// Co-located pairs exercise the q = 0 infinite-power rare path.
		if n > 8 {
			pos[1] = pos[0]
			pos[5] = pos[4]
		}
		jammedCh := -1
		if r.Float64() < 0.4 && channels > 1 {
			jammedCh = r.Intn(channels)
		}

		mk := func(k Kernel) []Reception {
			f := NewField(p, pos)
			f.SetResolver(mode)
			if jammedCh >= 0 {
				f.Jam(jammedCh, true)
			}
			f.SetKernel(k)
			return append([]Reception(nil), f.Resolve(txs, rxs)...)
		}
		want := mk(KernelFloat64)
		got := mk(KernelFloat32)

		for i := range want {
			w, g := want[i], got[i]
			if w.RSSI() > 0 && !math.IsInf(w.RSSI(), 1) {
				if rel := math.Abs(g.RSSI()-w.RSSI()) / w.RSSI(); rel > tol {
					t.Fatalf("trial %d (n=%d span=%.3g mode=%v jam=%d) listener %d: RSSI error %v > %v",
						trial, n, span, mode, jammedCh, i, rel, tol)
				}
			}
			if math.IsInf(w.Interference, 1) != math.IsInf(g.Interference, 1) {
				t.Fatalf("trial %d listener %d: infinite-power disagreement: f64 %+v f32 %+v", trial, i, w, g)
			}
			switch {
			case w.Decoded && w.SINR >= p.Beta*(1+3*tol):
				// Confidently above threshold: the f32 kernel must agree on
				// the decode, the sender, and the powers within the bound.
				if !g.Decoded || g.From != w.From {
					t.Fatalf("trial %d listener %d: confident decode lost: f64 %+v f32 %+v", trial, i, w, g)
				}
				if rel := math.Abs(g.SignalPower-w.SignalPower) / w.SignalPower; rel > tol {
					t.Fatalf("trial %d listener %d: signal error %v > %v", trial, i, rel, tol)
				}
			case !w.Decoded && g.Decoded:
				// Exact SINR is below β, so the f32 SINR can only have
				// cleared it from inside the error band.
				if g.SINR >= p.Beta*(1+3*tol) {
					t.Fatalf("trial %d listener %d: f32 decode far above band: f64 %+v f32 %+v", trial, i, w, g)
				}
			case w.Decoded && !g.Decoded:
				// Covered by the confident case unless w.SINR was in-band.
				if w.SINR >= p.Beta*(1+3*tol) {
					t.Fatalf("trial %d listener %d: decode lost outside band: f64 %+v f32 %+v", trial, i, w, g)
				}
			}
		}
	}
}

// TestFloat32KernelDeterminism: for a fixed slot, the f32 kernel resolves
// bit-identically run after run and at every worker count — the property
// the facade's knob contract (determinism per (seed, kernel)) rests on.
func TestFloat32KernelDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	p := model.Default(3, 900)
	pos, txs, rxs := randomSlot(r, 900, 3, 25.0, 0.4)
	if len(rxs)*len(txs) < minParallelWork {
		t.Fatalf("slot too small to exercise fan-out: %d pairs", len(rxs)*len(txs))
	}
	serial := NewField(p, pos)
	serial.SetKernel(KernelFloat32)
	serial.SetParallelism(1)
	want := append([]Reception(nil), serial.Resolve(txs, rxs)...)
	for trial := 0; trial < 3; trial++ {
		sameReceptions(t, "f32 serial repeat", serial.Resolve(txs, rxs), want)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0), 8} {
		f := NewField(p, pos)
		f.SetKernel(KernelFloat32)
		f.SetParallelism(workers)
		sameReceptions(t, "f32 parallel vs serial", f.Resolve(txs, rxs), want)
	}
}

// TestSetKernelValidation pins the knob's contract: f32 requires the
// Euclidean metric with α = 3, unknown kernels panic, and the selection is
// reversible.
func TestSetKernelValidation(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 1}}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("custom metric", func() {
		NewFieldMetric(model.Default(1, 4), pos, geo.Manhattan).SetKernel(KernelFloat32)
	})
	mustPanic("non-cubic alpha", func() {
		p := model.Default(1, 4)
		p.Alpha = 2.5
		NewField(p, pos).SetKernel(KernelFloat32)
	})
	mustPanic("unknown kernel", func() {
		NewField(model.Default(1, 4), pos).SetKernel(Kernel(99))
	})

	f := NewField(model.Default(1, 4), pos)
	if f.Kernel() != KernelFloat64 {
		t.Errorf("default kernel = %v, want KernelFloat64", f.Kernel())
	}
	f.SetKernel(KernelFloat32)
	if f.Kernel() != KernelFloat32 {
		t.Errorf("kernel after SetKernel = %v, want KernelFloat32", f.Kernel())
	}
	f.SetKernel(KernelFloat64)
	if f.Kernel() != KernelFloat64 {
		t.Errorf("kernel not reversible: %v", f.Kernel())
	}
}

// TestInvCubeBound checks the kernel primitive directly over the full
// float32-normal range of squared distances, plus the rare paths on either
// side of it. kernelInv mirrors the guard every call site applies: invCube
// for q in float32's normal range, invCubeSlow otherwise.
func TestInvCubeBound(t *testing.T) {
	kernelInv := func(q float64) float64 {
		if q < minNormalQ || q > maxFiniteQ {
			return invCubeSlow(q)
		}
		return invCube(q)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		q := math.Pow(10, r.Float64()*76-38) // spans ~[1e-38, 1e38]
		exact := 1 / (math.Sqrt(q) * q)      // q^(-3/2), up to f64 rounding
		got := kernelInv(q)
		if rel := math.Abs(got-exact) / exact; rel > Float32KernelTolerance {
			t.Fatalf("kernelInv(%g) = %g, exact %g, rel err %v", q, got, exact, rel)
		}
	}
	if !math.IsInf(kernelInv(0), 1) {
		t.Error("kernelInv(0) should be +Inf")
	}
	for _, q := range []float64{1e-40, 1e-300, 1e40, 1e300} {
		exact := 1 / (math.Sqrt(q) * q)
		if got := kernelInv(q); math.Abs(got-exact)/exact > 1e-12 {
			t.Errorf("kernelInv(%g) rare path = %g, want ~%g", q, got, exact)
		}
	}
}
