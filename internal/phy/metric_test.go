package phy

import (
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

func TestManhattanMetricChangesReach(t *testing.T) {
	// Diagonal neighbor at Euclidean distance ~0.99 (in range) but L1
	// distance 1.4 (out of range): the metric must decide.
	p := model.Default(1, 64)
	pos := []geo.Point{{X: 0, Y: 0}, {X: 0.7, Y: 0.7}}
	txs := []Tx{{Node: 0, Channel: 0, Msg: 1}}
	rxs := []Rx{{Node: 1, Channel: 0}}

	l2 := NewField(p, pos).Resolve(txs, rxs)[0]
	if !l2.Decoded {
		t.Fatal("Euclidean: diagonal neighbor should decode")
	}
	l1 := NewFieldMetric(p, pos, geo.Manhattan).Resolve(txs, rxs)[0]
	if l1.Decoded {
		t.Fatal("Manhattan: diagonal neighbor beyond L1 range should not decode")
	}
	linf := NewFieldMetric(p, pos, geo.Chebyshev).Resolve(txs, rxs)[0]
	if !linf.Decoded {
		t.Fatal("Chebyshev: diagonal neighbor at L∞ distance 0.7 should decode")
	}
}

func TestNilMetricDefaultsToEuclidean(t *testing.T) {
	p := model.Default(1, 64)
	pos := []geo.Point{{X: 0}, {X: 0.5}}
	f := NewFieldMetric(p, pos, nil)
	rec := f.Resolve([]Tx{{Node: 0, Channel: 0, Msg: 1}}, []Rx{{Node: 1, Channel: 0}})[0]
	if !rec.Decoded {
		t.Fatal("nil metric should fall back to Euclidean")
	}
}

func TestMetricSymmetryProperties(t *testing.T) {
	pts := []geo.Point{{X: 1, Y: 2}, {X: -3, Y: 0.5}, {X: 0, Y: 0}}
	for _, m := range []geo.Metric{geo.Euclidean, geo.Manhattan, geo.Chebyshev} {
		for _, a := range pts {
			if m(a, a) != 0 {
				t.Error("d(a,a) != 0")
			}
			for _, b := range pts {
				if m(a, b) != m(b, a) {
					t.Error("metric not symmetric")
				}
				for _, c := range pts {
					if m(a, c) > m(a, b)+m(b, c)+1e-12 {
						t.Error("triangle inequality violated")
					}
				}
			}
		}
	}
}
