package phy

import (
	"math"
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// TestIpowMatchesPow pins the property the fast paths rely on: for integral
// exponents and magnitudes whose intermediate squares stay normal, ipow is
// bit-identical to math.Pow.
func TestIpowMatchesPow(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		// Log-uniform magnitudes across ~[1e-35, 1e35] — far beyond any
		// realistic distance in transmission-range units, while keeping
		// x^n in the normal range where the identity is exact (subnormal
		// results double-round differently; distances that extreme cannot
		// arise from the geometry).
		x := math.Exp((r.Float64()*2 - 1) * 80)
		n := 1 + r.Intn(8)
		got, want := ipow(x, n), math.Pow(x, float64(n))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ipow(%v, %d) = %v, math.Pow = %v", x, n, got, want)
		}
	}
	// The cube identity used inline by the resolver's hot loop.
	for i := 0; i < 200000; i++ {
		d := math.Exp((r.Float64()*2 - 1) * 115)
		got, want := d*d*d, math.Pow(d, 3)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("d*d*d = %v, math.Pow(%v, 3) = %v", got, d, want)
		}
	}
}

// randomSlot builds a reproducible random placement and slot.
func randomSlot(r *rand.Rand, n, channels int, span, txFrac float64) ([]geo.Point, []Tx, []Rx) {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * span, Y: r.Float64() * span}
	}
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if r.Float64() < txFrac {
			txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
		}
	}
	return pos, txs, rxs
}

func sameReceptions(t *testing.T, label string, a, b []Reception) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d receptions", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Decoded != y.Decoded || x.From != y.From || x.Msg != y.Msg ||
			math.Float64bits(x.SignalPower) != math.Float64bits(y.SignalPower) ||
			math.Float64bits(x.Interference) != math.Float64bits(y.Interference) ||
			math.Float64bits(x.SINR) != math.Float64bits(y.SINR) {
			t.Fatalf("%s: listener %d differs:\n fast %+v\n ref  %+v", label, i, x, y)
		}
	}
}

// TestFastPathMatchesGeneric verifies the Euclidean α=3 exact scan loop is
// bit-identical to the generic metric loop (which uses math.Pow through
// PowerAtDistance, exactly like the pre-optimization resolver): same decode
// decisions, same powers, bit for bit. The generic loop is the frozen
// reference for the exact mode's transcript contract.
func TestFastPathMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := model.Default(4, 256)
	for trial := 0; trial < 50; trial++ {
		pos, txs, rxs := randomSlot(r, 128, 4, 3.0, 0.3)
		fast := NewField(p, pos)
		fast.SetResolver(ResolverExact)
		ref := NewFieldMetric(p, pos, geo.Euclidean) // generic loop
		sameReceptions(t, "fast vs generic", fast.Resolve(txs, rxs), append([]Reception(nil), ref.Resolve(txs, rxs)...))
	}
	// Co-located transmitters exercise the infinite-power branches.
	pos := []geo.Point{{}, {}, {X: 0.1}, {X: 5}}
	txs := []Tx{{Node: 0, Channel: 0, Msg: 0}, {Node: 1, Channel: 0, Msg: 1}}
	rxs := []Rx{{Node: 2, Channel: 0}, {Node: 3, Channel: 0}}
	fast := NewField(p, pos)
	fast.SetResolver(ResolverExact)
	ref := NewFieldMetric(p, pos, geo.Euclidean)
	sameReceptions(t, "co-located", fast.Resolve(txs, rxs), append([]Reception(nil), ref.Resolve(txs, rxs)...))
}

// TestParallelMatchesSerial verifies worker fan-out never changes outcomes:
// the same slot resolved serially and with many workers is bit-identical.
func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := model.Default(2, 512)
	pos, txs, rxs := randomSlot(r, 512, 2, 4.0, 0.4)

	serial := NewField(p, pos)
	serial.SetParallelism(1)
	parallel := NewField(p, pos)
	parallel.SetParallelism(8)

	if len(rxs)*len(txs) < minParallelWork {
		t.Fatalf("slot too small to exercise fan-out: %d pairs", len(rxs)*len(txs))
	}
	want := append([]Reception(nil), serial.Resolve(txs, rxs)...)
	for trial := 0; trial < 10; trial++ {
		sameReceptions(t, "parallel vs serial", parallel.Resolve(txs, rxs), want)
	}
}

// TestResolveReusesScratch pins the documented contract: the slice returned
// by Resolve is invalidated by the next call.
func TestResolveReusesScratch(t *testing.T) {
	p := model.Default(1, 4)
	pos := []geo.Point{{X: 0}, {X: 0.5}}
	f := NewField(p, pos)
	first := f.Resolve([]Tx{{Node: 0, Channel: 0, Msg: "a"}}, []Rx{{Node: 1, Channel: 0}})
	if !first[0].Decoded {
		t.Fatal("setup: expected decode")
	}
	second := f.Resolve(nil, []Rx{{Node: 1, Channel: 0}})
	if &first[0] != &second[0] {
		t.Error("expected Resolve to reuse its scratch buffer")
	}
	if first[0].Decoded {
		t.Error("first slice should have been overwritten by the second call")
	}
}

// farFieldPair builds an exact and an approximate resolver over the same
// spread-out placement.
func farFieldPair(t *testing.T, seed int64, n int, span float64, tol float64) (*Field, *Field, []geo.Point) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * span, Y: r.Float64() * span}
	}
	p := model.Default(2, n)
	exact := NewField(p, pos)
	exact.SetResolver(ResolverExact)
	approx := NewField(p, pos)
	approx.SetFarFieldTolerance(tol)
	return exact, approx, pos
}

// TestFarFieldWithinTolerance checks the documented error bound: total
// sensed power (RSSI) is within relative error tol of exact resolution, and
// decode outcomes agree whenever the exact SINR is not within the error
// margin of the threshold.
func TestFarFieldWithinTolerance(t *testing.T) {
	const tol = 0.25
	exact, approx, _ := farFieldPair(t, 3, 600, 40.0, tol)
	r := rand.New(rand.NewSource(9))
	beta := exact.Params().Beta
	for trial := 0; trial < 20; trial++ {
		var txs []Tx
		var rxs []Rx
		for i := 0; i < 600; i++ {
			if r.Float64() < 0.3 {
				txs = append(txs, Tx{Node: i, Channel: r.Intn(2), Msg: i})
			} else {
				rxs = append(rxs, Rx{Node: i, Channel: r.Intn(2)})
			}
		}
		want := append([]Reception(nil), exact.Resolve(txs, rxs)...)
		got := approx.Resolve(txs, rxs)
		for i := range want {
			w, g := want[i], got[i]
			if w.RSSI() > 0 {
				if rel := math.Abs(g.RSSI()-w.RSSI()) / w.RSSI(); rel > tol {
					t.Fatalf("trial %d listener %d: RSSI relative error %v > %v", trial, i, rel, tol)
				}
			}
			// Decode agreement outside the error margin around β. The
			// margin is conservative: the far-field error can shift the
			// SINR by at most a (1+tol) factor.
			exactSINR := w.SINR
			if !w.Decoded {
				continue
			}
			if exactSINR >= beta*(1+tol) && (!g.Decoded || g.From != w.From) {
				t.Fatalf("trial %d listener %d: confident decode lost: exact %+v approx %+v", trial, i, w, g)
			}
		}
	}
}

// TestFarFieldDeterminism: approximate resolution is a pure function of the
// slot — two identically configured fields agree bit for bit.
func TestFarFieldDeterminism(t *testing.T) {
	_, a, pos := farFieldPair(t, 5, 400, 30.0, 0.5)
	p := a.Params()
	b := NewField(p, pos)
	b.SetFarFieldTolerance(0.5)
	b.SetParallelism(4)
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		var txs []Tx
		var rxs []Rx
		for i := range pos {
			if r.Float64() < 0.4 {
				txs = append(txs, Tx{Node: i, Channel: r.Intn(2), Msg: i})
			} else {
				rxs = append(rxs, Rx{Node: i, Channel: r.Intn(2)})
			}
		}
		sameReceptions(t, "approx determinism", a.Resolve(txs, rxs), append([]Reception(nil), b.Resolve(txs, rxs)...))
	}
}

// TestFarFieldNeverDecodesBeyondRT: a listener whose only transmitters sit
// in aggregated far cells senses their power but decodes nothing, exactly
// like exact mode.
func TestFarFieldNeverDecodesBeyondRT(t *testing.T) {
	p := model.Default(1, 8)
	// Listener at origin; a tight clump of transmitters far beyond R_T.
	pos := []geo.Point{{X: 0, Y: 0}}
	for i := 0; i < 7; i++ {
		pos = append(pos, geo.Point{X: 30 + 0.01*float64(i), Y: 0})
	}
	exact := NewField(p, pos)
	exact.SetResolver(ResolverExact)
	approx := NewField(p, pos)
	approx.SetFarFieldTolerance(0.5)
	var txs []Tx
	for i := 1; i < 8; i++ {
		txs = append(txs, Tx{Node: i, Channel: 0, Msg: i})
	}
	rxs := []Rx{{Node: 0, Channel: 0}}
	w := exact.Resolve(txs, rxs)[0]
	g := append([]Reception(nil), approx.Resolve(txs, rxs)...)[0]
	if w.Decoded || g.Decoded {
		t.Fatalf("decode beyond R_T: exact %+v approx %+v", w, g)
	}
	if g.Interference <= 0 {
		t.Fatal("approximate mode must still sense far-field power")
	}
	if rel := math.Abs(g.Interference-w.Interference) / w.Interference; rel > 0.5 {
		t.Errorf("far-field interference off by %v > tol", rel)
	}
}

// TestFarFieldTinyToleranceIsExact: a tolerance small enough to push the
// cutoff beyond the deployment (or to +Inf, when 1+tol rounds to 1) must
// degrade to fully exact resolution — every cell near — never to a
// degenerate cutoff that aggregates the listener's own cell.
func TestFarFieldTinyToleranceIsExact(t *testing.T) {
	for _, tol := range []float64{1e-12, 1e-18, math.SmallestNonzeroFloat64} {
		exact, approx, pos := farFieldPair(t, 21, 200, 25.0, tol)
		r := rand.New(rand.NewSource(23))
		var txs []Tx
		var rxs []Rx
		for i := range pos {
			if r.Float64() < 0.3 {
				txs = append(txs, Tx{Node: i, Channel: r.Intn(2), Msg: i})
			} else {
				rxs = append(rxs, Rx{Node: i, Channel: r.Intn(2)})
			}
		}
		want := append([]Reception(nil), exact.Resolve(txs, rxs)...)
		got := approx.Resolve(txs, rxs)
		decoded := 0
		for i := range want {
			w, g := want[i], got[i]
			if w.Decoded {
				decoded++
			}
			if w.Decoded != g.Decoded || w.From != g.From {
				t.Fatalf("tol=%v listener %d: exact %+v vs approx %+v", tol, i, w, g)
			}
		}
		if decoded == 0 {
			t.Fatalf("tol=%v: degenerate slot, nothing decoded even in exact mode", tol)
		}
	}
}

// TestFarFieldValidation covers the knob's error handling.
func TestFarFieldValidation(t *testing.T) {
	p := model.Default(1, 4)
	pos := []geo.Point{{X: 0}, {X: 1}}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("negative tolerance", func() { NewField(p, pos).SetFarFieldTolerance(-0.1) })
	expectPanic("NaN tolerance", func() { NewField(p, pos).SetFarFieldTolerance(math.NaN()) })
	expectPanic("custom metric", func() {
		NewFieldMetric(p, pos, geo.Manhattan).SetFarFieldTolerance(0.5)
	})
	// Zero restores exact mode and is always allowed.
	f := NewField(p, pos)
	f.SetFarFieldTolerance(0.5)
	f.SetFarFieldTolerance(0)
	if f.Mode() != ResolverExact {
		t.Error("SetFarFieldTolerance(0) should select exact resolution")
	}
	ref := NewField(p, pos)
	ref.SetResolver(ResolverExact)
	txs := []Tx{{Node: 0, Channel: 0, Msg: 1}}
	rxs := []Rx{{Node: 1, Channel: 0}}
	sameReceptions(t, "tol reset", f.Resolve(txs, rxs), append([]Reception(nil), ref.Resolve(txs, rxs)...))
}
