package phy

import (
	"math"

	"mcnet/internal/geo"
)

// This file implements the hierarchical cell-aggregated resolver, the
// default resolution mode under the Euclidean metric. Exact resolution
// scans every same-channel transmitter per listener — O(|rxs|·|txs|) per
// slot. Here each slot's transmitters are binned once, per channel, into
// the field's spatial grid — O(|txs|) — and laid out cell-by-cell in
// struct-of-arrays form; a listener scans the cells near it
// transmitter-by-transmitter (exactly) and folds every cell beyond a
// cutoff into a single centroid term, cutting the per-listener cost to
// O(near transmitters + occupied cells).
//
// # Error bound
//
// Let g be the grid cell size and w = g·√2 a cell's diagonal. The
// aggregation point is the member mean, which lies inside the cell (the
// cell is convex), so every transmitter in the cell is within w of it —
// the diameter, not the half-diagonal, since members and their mean can
// sit in opposite corners. A cell whose contents are aggregated lies
// entirely beyond the near region, so the listener-to-centroid distance d
// satisfies d ≥ D where
//
//	D = w / (1 − (1+ε)^(−1/α)),   ε = the configured tolerance.
//
// Each member's true distance is then in [d−w, d+w] and the centroid
// approximation P/d^α is off by at most the factor (d/(d−w))^α ≤ 1+ε (and
// at least (d/(d+w))^α ≥ 1/(1+ε) by the same algebra). Summing over cells,
// the far-field interference term carries relative error at most ε. Using
// the mean rather than the cell center keeps this worst case while being
// more accurate in the typical case (member displacements from their mean
// cancel at first order).
//
// # Exactness of decoding candidates
//
// The near region always extends at least to the transmission range
// R_T = (P/(βN))^{1/α}: any transmitter beyond R_T has received power below
// β·N and can never satisfy the SINR threshold, so the strongest decodable
// candidate is always scanned exactly. Decode outcomes can therefore differ
// from exact mode only when the exact SINR lies within the far-field error
// of the threshold β — interference and RSSI are otherwise within relative
// error ε, and which message decodes is unaffected.
//
// # Determinism
//
// Cells appear in first-transmitter order per channel and members keep
// their transmission order within a cell (the binning sort is stable), so
// every listener accumulates its sum in a fixed order: equal slots resolve
// to equal receptions at every worker count, run after run. In the common
// dense case where every occupied cell of a channel is near (e.g. the
// Crowd topology, which fits inside one cell), the scan degenerates to the
// exact mode's transmitter-order scan and the outcome is bit-identical to
// exact resolution.
type hierState struct {
	grid *geo.Grid
	cols int32
	// cellCol/cellRow give each node's grid cell, precomputed at build.
	cellCol, cellRow []int32
	// nearRings is the cell-coordinate Chebyshev radius scanned exactly
	// around a listener; everything farther is centroid-aggregated.
	nearRings int32
	// degenerate reports that the grid's whole extent fits inside the near
	// region: no cell can ever be aggregated, so slots resolve through the
	// exact kernel (bit-identical to exact mode) and skip binning — dense
	// deployments like the Crowd topology pay no hierarchical overhead.
	degenerate bool

	// Per-slot scratch, rebuilt by prepare for every Resolve call. cells
	// holds every channel's occupied cells back to back; channel c's cells
	// are cells[cellSeg[c]:cellSeg[c+1]]. The parallel x/y/node/tx slices
	// are the cell-ordered struct-of-arrays member layout.
	cells   []hcell
	cellSeg []int32
	x, y    []float64
	node    []int32
	tx      []int32

	cellIdx []int32 // member slot → cell slot, between binning passes
	cur     []int32 // scatter cursors, one per occupied cell
	stamp   []uint64
	slot    []int32
	gen     uint64
}

// hcell is one occupied grid cell on one channel for one slot: its members
// are hierState.x/y/node/tx[start:end], and (cx, cy) is their centroid.
type hcell struct {
	col, row   int32
	start, end int32
	cx, cy     float64
}

func newHierState(f *Field) *hierState {
	grid := geo.NewGrid(f.pos, f.params.RT()*f.cellFrac)
	cols, rows := grid.Dims()
	h := &hierState{
		grid:    grid,
		cols:    int32(cols),
		cellCol: make([]int32, len(f.pos)),
		cellRow: make([]int32, len(f.pos)),
		stamp:   make([]uint64, cols*rows),
		slot:    make([]int32, cols*rows),
	}
	for i, p := range f.pos {
		c, r := grid.CellCoord(p)
		h.cellCol[i], h.cellRow[i] = int32(c), int32(r)
	}
	h.setCutoff(f, f.tol)
	return h
}

// setCutoff derives the near-region radius from the tolerance: the larger
// of the error-bound distance D and the transmission range R_T, in cells.
func (h *hierState) setCutoff(f *Field, tol float64) {
	cell := h.grid.CellSize()
	diam := cell * math.Sqrt2 // w in the error-bound derivation above
	shrink := 1 - math.Pow(1+tol, -1/f.params.Alpha)
	d := diam / shrink // +Inf when 1+tol rounds to 1
	if rt := f.params.RT(); d < rt {
		d = rt
	}
	// Clamp the ring count to the grid's extent before the integer
	// conversion: tiny tolerances yield cutoffs beyond the deployment (or
	// +Inf), which must degrade to fully exact resolution, not overflow
	// the conversion and go negative.
	cols, rows := h.grid.Dims()
	span := float64(max(cols, rows))
	rings := math.Ceil(d / cell)
	if !(rings < span) { // also catches NaN/Inf
		rings = span
	}
	h.nearRings = int32(rings) + 1
	// The farthest two cells sit max(cols, rows)-1 apart in Chebyshev
	// distance; if even they are near, aggregation can never fire.
	h.degenerate = int32(max(cols, rows)-1) <= h.nearRings
}

// reserve presizes the per-slot scratch for up to maxTx transmitters on
// the given channel count. Every occupied cell holds at least one member,
// so maxTx also bounds the cell list and its scatter cursors.
func (h *hierState) reserve(channels, maxTx int) {
	h.cellSeg = growInt32(h.cellSeg, channels+1)
	h.x = growFloat(h.x, maxTx)
	h.y = growFloat(h.y, maxTx)
	h.node = growInt32(h.node, maxTx)
	h.tx = growInt32(h.tx, maxTx)
	h.cellIdx = growInt32(h.cellIdx, maxTx)
	h.cur = growInt32(h.cur, maxTx)
	if cap(h.cells) < maxTx {
		h.cells = make([]hcell, 0, maxTx)
	}
}

// prepare bins the slot's transmitters — already channel-segmented by
// slotSoA — into grid cells: per channel, one counting pass assigns cells
// and accumulates centroid sums, a prefix pass carves the member segments,
// and a scatter pass lays members out cell by cell in transmission order.
// Jammed channels skip binning entirely: nothing on them can decode, so
// their listeners use the flat channel segment instead (see jammedTotal).
func (h *hierState) prepare(f *Field, txs []Tx) {
	channels := f.params.Channels
	h.reserve(channels, len(txs))
	cells := h.cells[:0]
	for c := 0; c < channels; c++ {
		h.cellSeg[c] = int32(len(cells))
		if f.jammed[c] {
			continue
		}
		lo, hi := f.soa.segment(c)
		if lo == hi {
			continue
		}
		h.gen++
		first := len(cells)
		for k := lo; k < hi; k++ {
			n := f.soa.node[k]
			ci := int(h.cellRow[n])*int(h.cols) + int(h.cellCol[n])
			if h.stamp[ci] != h.gen {
				h.stamp[ci] = h.gen
				h.slot[ci] = int32(len(cells))
				cells = append(cells, hcell{col: h.cellCol[n], row: h.cellRow[n]})
			}
			s := h.slot[ci]
			h.cellIdx[k] = s
			cl := &cells[s]
			cl.end++ // member count until the prefix pass below
			cl.cx += f.soa.x[k]
			cl.cy += f.soa.y[k]
		}
		h.cur = growInt32(h.cur, len(cells))
		running := int32(lo)
		for s := first; s < len(cells); s++ {
			cl := &cells[s]
			cnt := cl.end
			cl.start = running
			running += cnt
			cl.end = running
			cl.cx /= float64(cnt)
			cl.cy /= float64(cnt)
			h.cur[s] = cl.start
		}
		for k := lo; k < hi; k++ {
			s := h.cellIdx[k]
			at := h.cur[s]
			h.cur[s] = at + 1
			h.x[at], h.y[at] = f.soa.x[k], f.soa.y[k]
			h.node[at] = f.soa.node[k]
			h.tx[at] = f.soa.tx[k]
		}
	}
	h.cellSeg[channels] = int32(len(cells))
	h.cells = cells
}

// resolveOneHier resolves one listener against the binned slot: cells
// within nearRings (Chebyshev, in cell coordinates) are scanned per
// transmitter with the exact pairwise power; farther cells contribute
// count·P/d(centroid)^α. Cell-coordinate distance over-covers the metric
// cutoff (a cell at Chebyshev distance ≤ nearRings may still be far), which
// only enlarges the exact region and never weakens the error bound.
func (f *Field) resolveOneHier(rx Rx, txs []Tx) Reception {
	h := f.hier
	cells := h.cells[h.cellSeg[rx.Channel]:h.cellSeg[rx.Channel+1]]
	listener := f.pos[rx.Node]
	lx, ly := listener.X, listener.Y
	lcol, lrow := h.cellCol[rx.Node], h.cellRow[rx.Node]
	self := int32(rx.Node)

	var (
		total    float64
		best     = -1
		bestPow  float64
		infCount int
	)
	// α = 3 (the default) gets the same inlined-cube arithmetic as the
	// exact resolver's hot path; other exponents route through powerAt.
	cube := f.alphaInt == 3
	power := f.power
	for ci := range cells {
		cl := &cells[ci]
		dc, dr := cl.col-lcol, cl.row-lrow
		if dc < 0 {
			dc = -dc
		}
		if dr < 0 {
			dr = -dr
		}
		if dr < dc {
			dr = dc
		}
		if dr <= h.nearRings {
			xs := h.x[cl.start:cl.end]
			ys := h.y[cl.start:cl.end]
			nodes := h.node[cl.start:cl.end]
			for k := range xs {
				if nodes[k] == self {
					continue
				}
				dx, dy := lx-xs[k], ly-ys[k]
				d := math.Sqrt(dx*dx + dy*dy)
				var pw float64
				if cube {
					if d <= 0 {
						pw = math.Inf(1)
						infCount++
					} else {
						pw = power / (d * d * d)
					}
				} else {
					pw = f.powerAt(d)
					if math.IsInf(pw, 1) {
						infCount++
					}
				}
				total += pw
				if best == -1 || pw > bestPow {
					best, bestPow = int(h.tx[cl.start+int32(k)]), pw
				}
			}
			continue
		}
		dx, dy := lx-cl.cx, ly-cl.cy
		d := math.Sqrt(dx*dx + dy*dy)
		cnt := float64(cl.end - cl.start)
		if cube {
			total += cnt * (power / (d * d * d))
		} else {
			total += cnt * f.powerAt(d)
		}
	}
	// A far-field-only slot (no near transmitter) cannot decode — every far
	// transmitter is beyond R_T — but the listener must still sense the
	// aggregated power. Report the aggregate as undecodable interference.
	if best == -1 {
		return Reception{From: -1, Interference: total}
	}
	return f.decide(txs, total, bestPow, best, infCount)
}
