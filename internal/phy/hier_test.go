package phy

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// TestHierDefault pins the default mode: Euclidean fields resolve
// hierarchically, custom-metric fields exactly.
func TestHierDefault(t *testing.T) {
	p := model.Default(1, 4)
	pos := []geo.Point{{X: 0}, {X: 1}}
	if m := NewField(p, pos).Mode(); m != ResolverHierarchical {
		t.Errorf("NewField mode = %v, want hierarchical", m)
	}
	if m := NewFieldMetric(p, pos, geo.Manhattan).Mode(); m != ResolverExact {
		t.Errorf("custom-metric mode = %v, want exact", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetResolver(hierarchical) on a custom metric should panic")
		}
	}()
	NewFieldMetric(p, pos, geo.Manhattan).SetResolver(ResolverHierarchical)
}

// TestHierDeterminismAcrossWorkers: hierarchical resolution is bit-identical
// at every worker count, like exact mode — listeners resolve independently
// against the same binned slot.
func TestHierDeterminismAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	p := model.Default(3, 900)
	pos, txs, rxs := randomSlot(r, 900, 3, 25.0, 0.4)
	if len(rxs)*len(txs) < minParallelWork {
		t.Fatalf("slot too small to exercise fan-out: %d pairs", len(rxs)*len(txs))
	}
	serial := NewField(p, pos)
	serial.SetParallelism(1)
	want := append([]Reception(nil), serial.Resolve(txs, rxs)...)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0), 8} {
		f := NewField(p, pos)
		f.SetParallelism(workers)
		for trial := 0; trial < 3; trial++ {
			sameReceptions(t, "hier parallel vs serial", f.Resolve(txs, rxs), want)
		}
	}
}

// TestHierCrowdBitIdenticalToExact: a deployment that fits inside one grid
// cell (the Crowd regime) degenerates the hierarchical scan to the exact
// transmitter-order scan — outcomes are bit-identical, not just close.
func TestHierCrowdBitIdenticalToExact(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	p := model.Default(4, 300)
	pos := make([]geo.Point, 300)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * 0.12, Y: r.Float64() * 0.12}
	}
	// Include co-located pairs to exercise the infinite-power branches.
	pos[7] = pos[3]
	pos[11] = pos[3]
	hier := NewField(p, pos)
	exact := NewField(p, pos)
	exact.SetResolver(ResolverExact)
	for trial := 0; trial < 20; trial++ {
		var txs []Tx
		var rxs []Rx
		for i := range pos {
			if r.Float64() < 0.5 {
				txs = append(txs, Tx{Node: i, Channel: r.Intn(4), Msg: i})
			} else {
				rxs = append(rxs, Rx{Node: i, Channel: r.Intn(4)})
			}
		}
		sameReceptions(t, "crowd hier vs exact",
			hier.Resolve(txs, rxs), append([]Reception(nil), exact.Resolve(txs, rxs)...))
	}
}

// TestHierTolerancePropertyRandom is the satellite property test: across
// random deployments, cell sizes and tolerances, the cell-aggregated
// resolver keeps every listener's RSSI within the configured relative error
// of the exact resolver, and never loses a decode whose exact SINR clears
// the threshold by more than the error margin.
func TestHierTolerancePropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		n := 100 + r.Intn(300)
		span := 2 + r.Float64()*40
		tol := 0.02 + r.Float64()*0.6
		frac := 0.25 + r.Float64()*1.5
		channels := 1 + r.Intn(3)
		p := model.Default(channels, n)
		pos := make([]geo.Point, n)
		for i := range pos {
			pos[i] = geo.Point{X: r.Float64() * span, Y: r.Float64() * span}
		}
		exact := NewField(p, pos)
		exact.SetResolver(ResolverExact)
		hier := NewField(p, pos)
		hier.SetFarFieldTolerance(tol)
		hier.SetCellSize(frac)
		var txs []Tx
		var rxs []Rx
		for i := range pos {
			if r.Float64() < 0.4 {
				txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
			} else {
				rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
			}
		}
		want := append([]Reception(nil), exact.Resolve(txs, rxs)...)
		got := hier.Resolve(txs, rxs)
		for i := range want {
			w, g := want[i], got[i]
			if w.RSSI() > 0 && !math.IsInf(w.RSSI(), 1) {
				if rel := math.Abs(g.RSSI()-w.RSSI()) / w.RSSI(); rel > tol {
					t.Fatalf("trial %d (n=%d span=%.1f tol=%.3f frac=%.2f) listener %d: RSSI error %v > %v",
						trial, n, span, tol, frac, i, rel, tol)
				}
			}
			if w.Decoded && w.SINR >= p.Beta*(1+tol) && (!g.Decoded || g.From != w.From) {
				t.Fatalf("trial %d listener %d: confident decode lost: exact %+v hier %+v", trial, i, w, g)
			}
		}
	}
}

// TestHierJammedChannelSkipsBinning: a jammed channel in hierarchical mode
// delivers nothing and reports the exact flat power sum; other channels
// keep decoding.
func TestHierJammedChannelSkipsBinning(t *testing.T) {
	p := model.Default(2, 8)
	pos := []geo.Point{{X: 0}, {X: 0.4}, {X: 0.8}, {X: 40}, {X: 40.4}, {X: 41}}
	f := NewField(p, pos)
	f.Jam(0, true)
	txs := []Tx{
		{Node: 1, Channel: 0, Msg: "jammed"},
		{Node: 4, Channel: 1, Msg: "clear"},
	}
	rxs := []Rx{{Node: 0, Channel: 0}, {Node: 3, Channel: 1}}
	recs := f.Resolve(txs, rxs)
	if recs[0].Decoded || recs[0].From != -1 {
		t.Errorf("jammed channel decoded: %+v", recs[0])
	}
	wantPow := p.PowerAtDistance(0.4)
	if math.Abs(recs[0].Interference-wantPow) > 1e-12*wantPow {
		t.Errorf("jammed channel sensed %v, want the flat power sum %v", recs[0].Interference, wantPow)
	}
	if !recs[1].Decoded || recs[1].Msg != "clear" {
		t.Errorf("unjammed channel lost its message: %+v", recs[1])
	}
	// Unjamming restores decoding on channel 0.
	f.Jam(0, false)
	recs = f.Resolve(txs, rxs)
	if !recs[0].Decoded || recs[0].Msg != "jammed" {
		t.Errorf("unjammed channel 0 still dead: %+v", recs[0])
	}
}

// TestResolveAllocFree pins the steady-state contract: once Reserve has
// presized the scratch and the first slot has warmed the worker pool,
// Resolve allocates nothing — serially and across workers, in both modes.
func TestResolveAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	p := model.Default(4, 600)
	pos, txs, rxs := randomSlot(r, 600, 4, 12.0, 0.4)
	for _, tc := range []struct {
		name    string
		workers int
		mode    Resolver
		kernel  Kernel
	}{
		{"hier/serial", 1, ResolverHierarchical, KernelFloat64},
		{"hier/parallel", 0, ResolverHierarchical, KernelFloat64},
		{"exact/serial", 1, ResolverExact, KernelFloat64},
		{"exact/parallel", 0, ResolverExact, KernelFloat64},
		{"hier32/serial", 1, ResolverHierarchical, KernelFloat32},
		{"hier32/parallel", 0, ResolverHierarchical, KernelFloat32},
		{"exact32/serial", 1, ResolverExact, KernelFloat32},
		{"exact32/parallel", 0, ResolverExact, KernelFloat32},
	} {
		f := NewField(p, pos)
		f.SetResolver(tc.mode)
		f.SetKernel(tc.kernel)
		f.SetParallelism(tc.workers)
		f.Reserve(len(pos), len(pos))
		f.Resolve(txs, rxs) // warm the pool and any remaining growth
		if allocs := testing.AllocsPerRun(20, func() { f.Resolve(txs, rxs) }); allocs > 0 {
			t.Errorf("%s: %v allocs per Resolve, want 0", tc.name, allocs)
		}
	}
}

// TestReserveFirstSlotAllocFree: Reserve alone (no warm-up slot) is enough
// to make even the first serial Resolve allocation-free — the engine's
// per-run arena contract. Measured with raw malloc counters because
// testing.AllocsPerRun inserts a warm-up call and would never observe the
// true first slot; the deployment spans far more cells than the near
// region so the hierarchical binning scratch is exercised, not just the
// exact kernel.
func TestReserveFirstSlotAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	p := model.Default(3, 400)
	pos, txs, rxs := randomSlot(r, 400, 3, 60.0, 0.4)
	for _, tc := range []struct {
		name string
		mode Resolver
	}{{"hier", ResolverHierarchical}, {"exact", ResolverExact}} {
		f := NewField(p, pos)
		f.SetResolver(tc.mode)
		f.SetParallelism(1)
		f.Reserve(len(pos), len(pos))
		if tc.mode == ResolverHierarchical && f.hierState().degenerate {
			t.Fatal("setup: deployment unexpectedly degenerate")
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f.Resolve(txs, rxs)
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; d > 0 {
			t.Errorf("%s: first Resolve after Reserve performed %d allocations, want 0", tc.name, d)
		}
	}
}

// TestSetCellSizeValidation covers the new knob's error handling and that
// resizing keeps the error bound.
func TestSetCellSizeValidation(t *testing.T) {
	p := model.Default(1, 4)
	pos := []geo.Point{{X: 0}, {X: 1}}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetCellSize(%v): expected panic", bad)
				}
			}()
			NewField(p, pos).SetCellSize(bad)
		}()
	}
	f := NewField(p, pos)
	f.SetCellSize(0.25)
	f.SetCellSize(2) // resize after use is allowed; grid rebuilds lazily
	txs := []Tx{{Node: 0, Channel: 0, Msg: 1}}
	rxs := []Rx{{Node: 1, Channel: 0}}
	if rec := f.Resolve(txs, rxs)[0]; !rec.Decoded {
		t.Errorf("resized field lost an uncontended decode: %+v", rec)
	}
}
