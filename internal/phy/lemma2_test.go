package phy

import (
	"math"
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// TestLemma2WellSeparatedDelivery verifies Lemma 2 directly in the
// simulator: if the set of simultaneous transmitters on a channel is
// r₁-independent and r₂ ≤ min{t·r₁, R_T/2} with
// t = ((α-2)/(48β(α-1)))^{1/α}, then every listening r₂-neighbor of a
// transmitter decodes that transmitter's message — under any placement.
func TestLemma2WellSeparatedDelivery(t *testing.T) {
	p := model.Default(1, 256)
	tConst := p.SeparationT()
	for _, r1 := range []float64{0.3, 0.6, 1.0} {
		r2 := math.Min(tConst*r1, p.RT()/2)
		for seed := int64(0); seed < 20; seed++ {
			rnd := rand.New(rand.NewSource(seed))
			// Build an r₁-independent transmitter set by rejection over a
			// field many r₁ wide (worst-case density allowed by
			// independence).
			var txPos []geo.Point
			span := 12 * r1
			for tries := 0; tries < 4000 && len(txPos) < 60; tries++ {
				cand := geo.Point{X: rnd.Float64() * span, Y: rnd.Float64() * span}
				ok := true
				for _, q := range txPos {
					if cand.Dist(q) <= r1 {
						ok = false
						break
					}
				}
				if ok {
					txPos = append(txPos, cand)
				}
			}
			// One listener at distance ≤ r₂ of each transmitter.
			pos := append([]geo.Point(nil), txPos...)
			var txs []Tx
			var rxs []Rx
			for i, q := range txPos {
				a := rnd.Float64() * 2 * math.Pi
				d := rnd.Float64() * r2
				pos = append(pos, geo.Point{X: q.X + d*math.Cos(a), Y: q.Y + d*math.Sin(a)})
				txs = append(txs, Tx{Node: i, Channel: 0, Msg: i})
				rxs = append(rxs, Rx{Node: len(txPos) + i, Channel: 0})
			}
			f := NewField(p, pos)
			recs := f.Resolve(txs, rxs)
			for i, rec := range recs {
				if !rec.Decoded || rec.From != i {
					t.Fatalf("r1=%v seed=%d: listener %d of transmitter %d failed: %+v",
						r1, seed, i, i, rec)
				}
			}
		}
	}
}

// TestLemma2BoundIsNotVacuous checks the flip side: with transmitters
// packed denser than r₁-independence allows, some r₂-neighbor receptions
// fail — i.e. the lemma's precondition is doing real work.
func TestLemma2BoundIsNotVacuous(t *testing.T) {
	p := model.Default(1, 256)
	r1 := 0.6
	r2 := math.Min(p.SeparationT()*r1, p.RT()/2)
	rnd := rand.New(rand.NewSource(5))
	// Pack transmitters at r₁/6 spacing: far denser than allowed.
	var txPos []geo.Point
	for i := 0; i < 100; i++ {
		txPos = append(txPos, geo.Point{
			X: float64(i%10) * r1 / 6,
			Y: float64(i/10) * r1 / 6,
		})
	}
	pos := append([]geo.Point(nil), txPos...)
	var txs []Tx
	var rxs []Rx
	for i, q := range txPos {
		a := rnd.Float64() * 2 * math.Pi
		pos = append(pos, geo.Point{X: q.X + r2*math.Cos(a), Y: q.Y + r2*math.Sin(a)})
		txs = append(txs, Tx{Node: i, Channel: 0, Msg: i})
		rxs = append(rxs, Rx{Node: len(txPos) + i, Channel: 0})
	}
	f := NewField(p, pos)
	recs := f.Resolve(txs, rxs)
	failed := 0
	for i, rec := range recs {
		if !rec.Decoded || rec.From != i {
			failed++
		}
	}
	if failed == 0 {
		t.Error("over-packed transmitters all delivered: the independence precondition seems vacuous")
	}
}
