package phy

import (
	"math"

	"mcnet/internal/geo"
)

// This file implements the grid-accelerated approximate resolver enabled by
// SetFarFieldTolerance. Exact resolution scans every same-channel
// transmitter per listener — O(|rxs|·|txs|) per slot. Here transmitters are
// bucketed per channel into the field's spatial grid; a listener scans the
// cells near it transmitter-by-transmitter (exactly) and folds every cell
// beyond a cutoff into a single centroid term, cutting the per-listener cost
// to O(near transmitters + occupied cells).
//
// # Error bound
//
// Let g be the grid cell size and w = g·√2 a cell's diagonal. The
// aggregation point is the member mean, which lies inside the cell (the
// cell is convex), so every transmitter in the cell is within w of it —
// the diameter, not the half-diagonal, since members and their mean can
// sit in opposite corners. A cell whose contents are aggregated lies
// entirely beyond the near region, so the listener-to-centroid distance d
// satisfies d ≥ D where
//
//	D = w / (1 − (1+ε)^(−1/α)),   ε = the configured tolerance.
//
// Each member's true distance is then in [d−w, d+w] and the centroid
// approximation P/d^α is off by at most the factor (d/(d−w))^α ≤ 1+ε (and
// at least (d/(d+w))^α ≥ 1/(1+ε) by the same algebra). Summing over cells,
// the far-field interference term carries relative error at most ε. Using
// the mean rather than the cell center keeps this worst case while being
// more accurate in the typical case (member displacements from their mean
// cancel at first order).
//
// # Exactness of decoding candidates
//
// The near region always extends at least to the transmission range
// R_T = (P/(βN))^{1/α}: any transmitter beyond R_T has received power below
// β·N and can never satisfy the SINR threshold, so the strongest decodable
// candidate is always scanned exactly. Decode outcomes can therefore differ
// from exact mode only when the exact SINR lies within the far-field error
// of the threshold β — interference and RSSI are otherwise within relative
// error ε, and which message decodes is unaffected.
type farField struct {
	grid    *geo.Grid
	cellCol []int32 // per node, its grid cell column
	cellRow []int32 // per node, its grid cell row
	// nearRings is the cell-coordinate Chebyshev radius scanned exactly
	// around a listener; everything farther is centroid-aggregated.
	nearRings int32

	// Per-slot scratch, rebuilt by bucket for every Resolve call: occupied
	// cells per channel, with members chained through nextTx.
	cellsByChannel [][]txCell
	nextTx         []int32
	cellStamp      []uint64
	cellSlot       []int32
	stamp          uint64
}

// txCell aggregates one occupied grid cell on one channel for one slot.
// During bucketing sumX/sumY accumulate member positions; bucket's second
// pass rewrites them into the centroid, so listeners read it directly.
type txCell struct {
	col, row int32
	head     int32 // first member tx index (chained via nextTx), -1 ends
	count    int32
	sumX     float64 // centroid X after bucket returns
	sumY     float64 // centroid Y after bucket returns
}

// SetFarFieldTolerance configures approximate far-field aggregation: cells
// far enough from a listener contribute their summed power from the cell
// centroid instead of per transmitter, with relative error at most tol on
// the far-field interference term (see the bound above). tol = 0 (the
// default) restores exact resolution. The approximation requires the
// Euclidean metric; fields built over a custom metric panic.
//
// Determinism is preserved: equal slots resolve to equal receptions for a
// fixed tolerance. Only tolerance zero is transcript-compatible with exact
// mode.
func (f *Field) SetFarFieldTolerance(tol float64) {
	if tol < 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		panic("phy: far-field tolerance must be finite and ≥ 0")
	}
	if tol == 0 {
		f.farTol = 0
		return
	}
	if f.dist != nil {
		panic("phy: far-field approximation requires the Euclidean metric")
	}
	f.farTol = tol
	if f.far == nil {
		f.far = newFarField(f)
	}
	f.far.setCutoff(f, tol)
}

// farFieldCellFrac sizes grid cells at R_T/2; geo.NewGrid coarsens further
// if the deployment's extent would need too many cells.
const farFieldCellFrac = 0.5

func newFarField(f *Field) *farField {
	grid := geo.NewGrid(f.pos, f.params.RT()*farFieldCellFrac)
	cols, rows := grid.Dims()
	ff := &farField{
		grid:           grid,
		cellCol:        make([]int32, len(f.pos)),
		cellRow:        make([]int32, len(f.pos)),
		cellsByChannel: make([][]txCell, f.params.Channels),
		cellStamp:      make([]uint64, cols*rows),
		cellSlot:       make([]int32, cols*rows),
	}
	for i, p := range f.pos {
		c, r := grid.CellCoord(p)
		ff.cellCol[i], ff.cellRow[i] = int32(c), int32(r)
	}
	return ff
}

// setCutoff derives the near-region radius from the tolerance: the larger
// of the error-bound distance D and the transmission range R_T, in cells.
func (ff *farField) setCutoff(f *Field, tol float64) {
	cell := ff.grid.CellSize()
	diam := cell * math.Sqrt2 // w in the error-bound derivation above
	shrink := 1 - math.Pow(1+tol, -1/f.params.Alpha)
	d := diam / shrink // +Inf when 1+tol rounds to 1
	if rt := f.params.RT(); d < rt {
		d = rt
	}
	// Clamp the ring count to the grid's extent before the integer
	// conversion: tiny tolerances yield cutoffs beyond the deployment (or
	// +Inf), which must degrade to fully exact resolution, not overflow
	// the conversion and go negative.
	cols, rows := ff.grid.Dims()
	span := float64(max(cols, rows))
	rings := math.Ceil(d / cell)
	if !(rings < span) { // also catches NaN/Inf
		rings = span
	}
	ff.nearRings = int32(rings) + 1
}

// bucket groups this slot's transmitters by (channel, grid cell),
// accumulating per-cell counts and position sums for centroid terms. All
// state is per-Field scratch; nothing allocates once the buffers have grown
// to the slot size. Cells appear in first-transmitter order and members are
// chained in reverse scan order — both deterministic, so repeated runs
// resolve identically.
func (ff *farField) bucket(f *Field, txs []Tx) {
	if cap(ff.nextTx) < len(txs) {
		ff.nextTx = make([]int32, len(txs))
	}
	ff.nextTx = ff.nextTx[:len(txs)]
	cols, _ := ff.grid.Dims()
	for c, chTxs := range f.perChannel {
		cells := ff.cellsByChannel[c][:0]
		ff.stamp++
		for _, ti := range chTxs {
			node := txs[ti].Node
			col, row := ff.cellCol[node], ff.cellRow[node]
			ci := int(row)*cols + int(col)
			var k int32
			if ff.cellStamp[ci] != ff.stamp {
				ff.cellStamp[ci] = ff.stamp
				k = int32(len(cells))
				ff.cellSlot[ci] = k
				cells = append(cells, txCell{col: col, row: row, head: -1})
			} else {
				k = ff.cellSlot[ci]
			}
			cl := &cells[k]
			p := f.pos[node]
			ff.nextTx[ti] = cl.head
			cl.head = int32(ti)
			cl.count++
			cl.sumX += p.X
			cl.sumY += p.Y
		}
		for k := range cells {
			cnt := float64(cells[k].count)
			cells[k].sumX /= cnt
			cells[k].sumY /= cnt
		}
		ff.cellsByChannel[c] = cells
	}
}

// resolveOneApprox resolves one listener against the bucketed slot: cells
// within nearRings (Chebyshev, in cell coordinates) are scanned per
// transmitter with the exact pairwise power; farther cells contribute
// count·P/d(centroid)^α. Cell-coordinate distance over-covers the metric
// cutoff (a cell at Chebyshev distance ≤ nearRings may still be far), which
// only enlarges the exact region and never weakens the error bound.
func (f *Field) resolveOneApprox(rx Rx, txs []Tx) Reception {
	ff := f.far
	cells := ff.cellsByChannel[rx.Channel]
	listener := f.pos[rx.Node]
	lcol, lrow := ff.cellCol[rx.Node], ff.cellRow[rx.Node]
	lx, ly := listener.X, listener.Y

	var (
		total    float64
		best     = -1
		bestPow  float64
		infCount int
	)
	// α = 3 (the default) gets the same inlined-cube arithmetic as the
	// exact resolver's hot path; other exponents route through powerAt.
	cube := f.alphaInt == 3
	power := f.power
	for k := range cells {
		cl := &cells[k]
		dc, dr := cl.col-lcol, cl.row-lrow
		if dc < 0 {
			dc = -dc
		}
		if dr < 0 {
			dr = -dr
		}
		if dr < dc {
			dr = dc
		}
		if dr <= ff.nearRings {
			for ti := cl.head; ti >= 0; ti = ff.nextTx[ti] {
				tx := &txs[ti]
				if tx.Node == rx.Node {
					continue
				}
				q := f.pos[tx.Node]
				dx, dy := lx-q.X, ly-q.Y
				var pw float64
				if cube {
					d := math.Sqrt(dx*dx + dy*dy)
					if d <= 0 {
						pw = math.Inf(1)
						infCount++
					} else {
						pw = power / (d * d * d)
					}
				} else {
					pw = f.powerAt(math.Sqrt(dx*dx + dy*dy))
					if math.IsInf(pw, 1) {
						infCount++
					}
				}
				total += pw
				if best == -1 || pw > bestPow {
					best, bestPow = int(ti), pw
				}
			}
			continue
		}
		dx, dy := lx-cl.sumX, ly-cl.sumY
		if cube {
			d := math.Sqrt(dx*dx + dy*dy)
			total += float64(cl.count) * (power / (d * d * d))
		} else {
			total += float64(cl.count) * f.powerAt(math.Sqrt(dx*dx+dy*dy))
		}
	}
	// A far-field-only slot (no near transmitter) cannot decode — every far
	// transmitter is beyond R_T — but the listener must still sense the
	// aggregated power, which decide handles via best == -1 only when
	// total is also zero. Report the aggregate as undecodable interference.
	if best == -1 {
		return Reception{From: -1, Interference: total}
	}
	return f.decide(txs, total, bestPow, best, infCount)
}
