package phy

import "math"

// This file implements the float32 divide-free SINR kernel, an opt-in
// replacement for the f64 per-pair arithmetic of the exact and hierarchical
// resolvers (SetKernel). The default kernel is frozen by the repository's
// bit-identity contracts (golden transcripts, exact/hier equivalence tests),
// so the only way to make the inner loop cheaper is a second kernel with an
// explicit, documented error bound — the same shape of contract the
// hierarchical far-field aggregation has.
//
// # What changes
//
// The f64 kernels spend their inner loop on one sqrt and one divide per
// pair: pw = P/(√q)³ with q = dx²+dy². The f32 kernel removes both:
//
//   - r ≈ q^(-1/2) comes from the float32 inverse-square-root bit trick
//     (initial guess via the 0x5f3759df magic constant, then two Newton
//     steps — multiplies only), and (1/d)³ = r·r·r.
//   - The power multiply is hoisted out of the loop entirely: the loop
//     accumulates Σ (1/d)³ into four independent f64 lanes (a 4-wide unroll
//     the compiler keeps in registers, with no loop-carried dependency on a
//     single accumulator), and the total is scaled by P once at the end.
//
// Everything that decides *which* transmitter can decode stays exact:
// squared distances are computed in float64 from the f64 positions (never
// in f32 — subtracting near-equal coordinates in f32 would lose the bound
// for close pairs), and the best candidate is selected by the smallest
// exact q, which under equal transmit powers is the same first-wins
// strongest-signal selection the f64 kernels make. Only the accumulated
// power values are approximate.
//
// # Error bound
//
// For one pair, the computed (1/d)³ differs from the exact value by:
//
//   - rounding q to float32: relative error ≤ 2⁻²⁴ in q, ≤ 1.5·2⁻²⁴ ≈ 9e-8
//     after the -3/2 power;
//   - the inverse-sqrt iteration: the magic-constant guess is within
//     3.5e-2, one Newton step brings that to ≤ 1.8e-3, the second to
//     ≤ 5e-6 (Newton on r⁻² squares the relative error, times 3/2), plus a
//     few ulps of float32 rounding ≈ 6e-7;
//   - cubing in f64: triples the relative error to ≤ ~2e-5.
//
// Every term in a listener's sum is nonnegative, so the sums, the best
// signal, the interference and the RSSI all carry relative error at most
// the per-term bound. Float32KernelTolerance = 1e-4 is that bound with a
// 4× safety margin, and TestFloat32KernelPropertyRandom enforces it against
// the f64 kernel on random deployments. Decode decisions can differ from
// the f64 kernel only when the exact SINR lies within
// (1 ± 2·Float32KernelTolerance) of the threshold β.
//
// Pairs whose exact q does not round to a positive finite normal float32
// (co-located nodes, separations below ~1e-19 or above ~1e19 distance
// units) take a rare fallback path through the exact f64 arithmetic, so the
// bound holds over the full coordinate range and co-location semantics
// (infinite power, infCount) match the f64 kernel exactly.
//
// # Determinism
//
// The kernel is a pure function of the slot scanned in a fixed order, so
// runs are bit-identical for a fixed (seed, kernel) pair at every
// parallelism setting — pinned by TestFloat32KernelDeterminism. It is NOT
// transcript-compatible with the f64 kernel; that is the point of the knob.
//
// # Measured
//
// On scalar amd64 the Newton multiply chain does not beat the hardware
// sqrt and divide units, which execute concurrently with the rest of the
// loop: BenchmarkResolveCrowdDenseF32 measures ~15% slower than its f64
// twin on the single-core baseline runner. The kernel earns its keep on
// hardware with slow FP dividers, and as the scaffolding for a future
// vectorized build of the 4-wide lanes; CI tracks the head-to-head.

// Kernel selects the floating-point kernel for per-pair power terms.
type Kernel int

const (
	// KernelFloat64 is the default exact-arithmetic kernel: one sqrt and
	// one divide per pair, bit-identical to the historical resolver.
	KernelFloat64 Kernel = iota
	// KernelFloat32 is the divide-free inverse-sqrt kernel with relative
	// error ≤ Float32KernelTolerance per power term. Requires the Euclidean
	// metric with α = 3.
	KernelFloat32
)

// Float32KernelTolerance bounds the relative error of every accumulated
// power term (signal, interference, RSSI) under KernelFloat32, versus the
// same resolver mode under KernelFloat64. See the derivation above.
const Float32KernelTolerance = 1e-4

// SetKernel selects the arithmetic kernel. KernelFloat32 requires the
// Euclidean metric with α = 3 (the default parameters); other
// configurations panic, since the inverse-sqrt cube identity and its error
// bound are specific to that law.
func (f *Field) SetKernel(k Kernel) {
	switch k {
	case KernelFloat64:
		f.kernel32 = false
	case KernelFloat32:
		if f.dist != nil {
			panic("phy: float32 kernel requires the Euclidean metric")
		}
		if f.alphaInt != 3 {
			panic("phy: float32 kernel requires α = 3")
		}
		f.kernel32 = true
	default:
		panic("phy: unknown kernel")
	}
}

// Kernel returns the field's arithmetic kernel.
func (f *Field) Kernel() Kernel {
	if f.kernel32 {
		return KernelFloat32
	}
	return KernelFloat64
}

// float32 normal range for the rare-path guard in invCube: outside it the
// bit-trick guess is garbage (subnormals, zero, overflow), so those pairs
// fall back to exact arithmetic.
const (
	minNormalQ = 1.1754943508222875e-38 // smallest positive normal float32
	maxFiniteQ = 3.4028234663852886e38  // largest finite float32
)

// invCube returns (1/√q)³ ≈ q^(-3/2) for an exact squared distance q,
// divide-free: a float32 inverse-sqrt bit-trick guess refined by two Newton
// steps (multiplies only), cubed in float64. The bound holds only for q in
// float32's normal range [minNormalQ, maxFiniteQ]; callers must route other
// q to invCubeSlow. On out-of-range inputs the result is meaningless but
// the arithmetic never traps, so call sites may compute it speculatively
// and overwrite. The range guard lives at the call sites, not here, to keep
// this under the compiler's inlining budget — a non-inlined call per pair
// costs more than the sqrt and divide it replaces.
func invCube(q float64) float64 {
	s := float32(q)
	r := math.Float32frombits(0x5f3759df - math.Float32bits(s)>>1)
	h := 0.5 * s
	r *= 1.5 - h*r*r
	r *= 1.5 - h*r*r
	rd := float64(r)
	return rd * rd * rd
}

// invCubeSlow handles q values outside float32's normal range with exact
// f64 arithmetic: q = 0 (co-location) yields +Inf, everything else the
// sqrt-and-divide value the f64 kernel would compute.
func invCubeSlow(q float64) float64 {
	if q <= 0 {
		return math.Inf(1)
	}
	d := math.Sqrt(q)
	return 1 / (d * d * d)
}

// resolveOneExact32 is resolveOneExact under the float32 kernel: the same
// whole-segment scan in transmitter order, with the per-pair divide and
// sqrt replaced by invCube and the power multiply hoisted out of the loop.
// Candidate selection is by exact minimum squared distance, first wins.
func (f *Field) resolveOneExact32(rx Rx, txs []Tx) Reception {
	listener := f.pos[rx.Node]
	lo, hi := f.soa.segment(rx.Channel)
	self := int32(rx.Node)
	lx, ly := listener.X, listener.Y

	xs := f.soa.x[lo:hi]
	ys := f.soa.y[lo:hi:hi][:len(xs)]
	nodes := f.soa.node[lo:hi:hi][:len(xs)]

	var s0, s1, s2, s3 float64 // Σ (1/d)³, four independent lanes
	best := int32(-1)
	bestQ := math.Inf(1)
	bestInv := math.Inf(-1)
	infCount := 0

	k := 0
	for ; k+4 <= len(xs); k += 4 {
		dx0, dy0 := lx-xs[k], ly-ys[k]
		dx1, dy1 := lx-xs[k+1], ly-ys[k+1]
		dx2, dy2 := lx-xs[k+2], ly-ys[k+2]
		dx3, dy3 := lx-xs[k+3], ly-ys[k+3]
		q0 := dx0*dx0 + dy0*dy0
		q1 := dx1*dx1 + dy1*dy1
		q2 := dx2*dx2 + dy2*dy2
		q3 := dx3*dx3 + dy3*dy3
		if nodes[k] != self {
			v := invCube(q0)
			if q0 < minNormalQ || q0 > maxFiniteQ {
				v = invCubeSlow(q0)
				if q0 <= 0 {
					infCount++
				}
			}
			s0 += v
			if q0 < bestQ {
				best, bestQ, bestInv = int32(k), q0, v
			}
		}
		if nodes[k+1] != self {
			v := invCube(q1)
			if q1 < minNormalQ || q1 > maxFiniteQ {
				v = invCubeSlow(q1)
				if q1 <= 0 {
					infCount++
				}
			}
			s1 += v
			if q1 < bestQ {
				best, bestQ, bestInv = int32(k+1), q1, v
			}
		}
		if nodes[k+2] != self {
			v := invCube(q2)
			if q2 < minNormalQ || q2 > maxFiniteQ {
				v = invCubeSlow(q2)
				if q2 <= 0 {
					infCount++
				}
			}
			s2 += v
			if q2 < bestQ {
				best, bestQ, bestInv = int32(k+2), q2, v
			}
		}
		if nodes[k+3] != self {
			v := invCube(q3)
			if q3 < minNormalQ || q3 > maxFiniteQ {
				v = invCubeSlow(q3)
				if q3 <= 0 {
					infCount++
				}
			}
			s3 += v
			if q3 < bestQ {
				best, bestQ, bestInv = int32(k+3), q3, v
			}
		}
	}
	for ; k < len(xs); k++ {
		if nodes[k] == self {
			continue
		}
		dx, dy := lx-xs[k], ly-ys[k]
		q := dx*dx + dy*dy
		v := invCube(q)
		if q < minNormalQ || q > maxFiniteQ {
			v = invCubeSlow(q)
			if q <= 0 {
				infCount++
			}
		}
		s0 += v
		if q < bestQ {
			best, bestQ, bestInv = int32(k), q, v
		}
	}

	total := f.power * ((s0 + s1) + (s2 + s3))
	if best >= 0 {
		return f.decide(txs, total, f.power*bestInv, int(f.soa.tx[lo+int(best)]), infCount)
	}
	return f.decide(txs, total, math.Inf(-1), -1, infCount)
}

// resolveOneHier32 is resolveOneHier under the float32 kernel: near-cell
// members go through the divide-free invCube chain; far cells — one
// centroid term each, never hot — keep the exact f64 cube, so the kernel's
// error bound composes with (and never widens) the hierarchical far-field
// bound.
func (f *Field) resolveOneHier32(rx Rx, txs []Tx) Reception {
	h := f.hier
	cells := h.cells[h.cellSeg[rx.Channel]:h.cellSeg[rx.Channel+1]]
	listener := f.pos[rx.Node]
	lx, ly := listener.X, listener.Y
	lcol, lrow := h.cellCol[rx.Node], h.cellRow[rx.Node]
	self := int32(rx.Node)

	var (
		far      float64 // far-field power, exact f64 centroid terms
		sum      float64 // Σ (1/d)³ over near members
		best     = -1
		bestQ    = math.Inf(1)
		bestInv  = math.Inf(-1)
		infCount int
	)
	power := f.power
	for ci := range cells {
		cl := &cells[ci]
		dc, dr := cl.col-lcol, cl.row-lrow
		if dc < 0 {
			dc = -dc
		}
		if dr < 0 {
			dr = -dr
		}
		if dr < dc {
			dr = dc
		}
		if dr <= h.nearRings {
			xs := h.x[cl.start:cl.end]
			ys := h.y[cl.start:cl.end]
			nodes := h.node[cl.start:cl.end]
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+4 <= len(xs); k += 4 {
				dx0, dy0 := lx-xs[k], ly-ys[k]
				dx1, dy1 := lx-xs[k+1], ly-ys[k+1]
				dx2, dy2 := lx-xs[k+2], ly-ys[k+2]
				dx3, dy3 := lx-xs[k+3], ly-ys[k+3]
				q0 := dx0*dx0 + dy0*dy0
				q1 := dx1*dx1 + dy1*dy1
				q2 := dx2*dx2 + dy2*dy2
				q3 := dx3*dx3 + dy3*dy3
				if nodes[k] != self {
					v := invCube(q0)
					if q0 < minNormalQ || q0 > maxFiniteQ {
						v = invCubeSlow(q0)
						if q0 <= 0 {
							infCount++
						}
					}
					s0 += v
					if q0 < bestQ {
						best, bestQ, bestInv = int(h.tx[cl.start+int32(k)]), q0, v
					}
				}
				if nodes[k+1] != self {
					v := invCube(q1)
					if q1 < minNormalQ || q1 > maxFiniteQ {
						v = invCubeSlow(q1)
						if q1 <= 0 {
							infCount++
						}
					}
					s1 += v
					if q1 < bestQ {
						best, bestQ, bestInv = int(h.tx[cl.start+int32(k+1)]), q1, v
					}
				}
				if nodes[k+2] != self {
					v := invCube(q2)
					if q2 < minNormalQ || q2 > maxFiniteQ {
						v = invCubeSlow(q2)
						if q2 <= 0 {
							infCount++
						}
					}
					s2 += v
					if q2 < bestQ {
						best, bestQ, bestInv = int(h.tx[cl.start+int32(k+2)]), q2, v
					}
				}
				if nodes[k+3] != self {
					v := invCube(q3)
					if q3 < minNormalQ || q3 > maxFiniteQ {
						v = invCubeSlow(q3)
						if q3 <= 0 {
							infCount++
						}
					}
					s3 += v
					if q3 < bestQ {
						best, bestQ, bestInv = int(h.tx[cl.start+int32(k+3)]), q3, v
					}
				}
			}
			for ; k < len(xs); k++ {
				if nodes[k] == self {
					continue
				}
				dx, dy := lx-xs[k], ly-ys[k]
				q := dx*dx + dy*dy
				v := invCube(q)
				if q < minNormalQ || q > maxFiniteQ {
					v = invCubeSlow(q)
					if q <= 0 {
						infCount++
					}
				}
				s0 += v
				if q < bestQ {
					best, bestQ, bestInv = int(h.tx[cl.start+int32(k)]), q, v
				}
			}
			sum += (s0 + s1) + (s2 + s3)
			continue
		}
		dx, dy := lx-cl.cx, ly-cl.cy
		d := math.Sqrt(dx*dx + dy*dy)
		cnt := float64(cl.end - cl.start)
		far += cnt * (power / (d * d * d))
	}
	total := power*sum + far
	if best == -1 {
		return Reception{From: -1, Interference: total}
	}
	return f.decide(txs, total, power*bestInv, best, infCount)
}
