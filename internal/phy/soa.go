package phy

// This file lays a slot's transmitters out in struct-of-arrays form: one
// contiguous x/y position, node-id and tx-index slice per Resolve call,
// segmented by channel via a stable counting sort. The per-listener scan
// loops then stream through flat float64 slices — no Tx struct loads, no
// position-table indirection — which is what makes the O(|rxs|·|txs|) exact
// scan and the hierarchical near-cell scans cache- and prefetch-friendly.
//
// All slices are per-Field scratch reused across slots; nothing allocates
// once they have grown to the slot size (Field.Reserve presizes them).

type slotSoA struct {
	// off[c]..off[c+1] is channel c's segment in the parallel slices below.
	off []int32
	// cursor is the scatter cursor, one per channel.
	cursor []int32

	x, y []float64 // transmitter positions, channel-segmented, tx order
	node []int32   // transmitter node ids
	tx   []int32   // index of the transmission in the slot's txs slice
}

// reserve presizes the layout for slots of up to maxTx transmitters.
func (s *slotSoA) reserve(channels, maxTx int) {
	s.off = growInt32(s.off, channels+1)
	s.cursor = growInt32(s.cursor, channels)
	s.x = growFloat(s.x, maxTx)
	s.y = growFloat(s.y, maxTx)
	s.node = growInt32(s.node, maxTx)
	s.tx = growInt32(s.tx, maxTx)
}

// prepare builds the channel-segmented layout for one slot. Transmissions
// on out-of-range channels panic (they indicate a protocol bug), before any
// worker fan-out. The sort is stable: within a channel, transmitters keep
// their txs order, which is what keeps exact mode's summation order — and
// therefore its transcripts — bit-identical to the historical resolver.
func (s *slotSoA) prepare(f *Field, txs []Tx) {
	channels := f.params.Channels
	s.reserve(channels, len(txs))
	for c := 0; c <= channels; c++ {
		s.off[c] = 0
	}
	for i := range txs {
		c := txs[i].Channel
		if c < 0 || c >= channels {
			panic("phy: transmission on invalid channel")
		}
		s.off[c+1]++
	}
	for c := 0; c < channels; c++ {
		s.off[c+1] += s.off[c]
		s.cursor[c] = s.off[c]
	}
	for i := range txs {
		t := &txs[i]
		k := s.cursor[t.Channel]
		s.cursor[t.Channel] = k + 1
		p := f.pos[t.Node]
		s.x[k], s.y[k] = p.X, p.Y
		s.node[k] = int32(t.Node)
		s.tx[k] = int32(i)
	}
}

// segment returns channel c's range in the parallel slices.
func (s *slotSoA) segment(c int) (lo, hi int) {
	return int(s.off[c]), int(s.off[c+1])
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
