package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

func field(pos []geo.Point, channels int) *Field {
	return NewField(model.Default(channels, 64), pos)
}

func TestSingleTransmissionInRange(t *testing.T) {
	// RT = 1 for default params; a node at distance 0.5 must decode.
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}, 1)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: "hello"}},
		[]Rx{{Node: 1, Channel: 0}},
	)
	r := recs[0]
	if !r.Decoded || r.From != 0 || r.Msg != "hello" {
		t.Fatalf("expected decode, got %+v", r)
	}
	if r.Interference != 0 {
		t.Errorf("interference = %v, want 0", r.Interference)
	}
	p := f.Params()
	if est := p.DistanceFromPower(r.SignalPower); math.Abs(est-0.5) > 1e-9 {
		t.Errorf("distance estimate = %v, want 0.5", est)
	}
}

func TestOutOfRangeNotDecoded(t *testing.T) {
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 1.2, Y: 0}}, 1) // beyond RT = 1
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 1}},
		[]Rx{{Node: 1, Channel: 0}},
	)
	if recs[0].Decoded {
		t.Fatal("decoded beyond transmission range")
	}
	if recs[0].Interference <= 0 {
		t.Error("listener should still sense the signal power")
	}
}

func TestAtExactlyRT(t *testing.T) {
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, 1)
	recs := f.Resolve([]Tx{{Node: 0, Channel: 0, Msg: 1}}, []Rx{{Node: 1, Channel: 0}})
	if !recs[0].Decoded {
		t.Fatal("at distance exactly RT the SINR equals β and should decode")
	}
}

func TestChannelIsolation(t *testing.T) {
	// Transmitter on channel 0, listener on channel 1: hears nothing at all.
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 0.1, Y: 0}}, 2)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 1}},
		[]Rx{{Node: 1, Channel: 1}},
	)
	r := recs[0]
	if r.Decoded || r.RSSI() != 0 {
		t.Fatalf("channel leakage: %+v", r)
	}
}

func TestCollisionBlocks(t *testing.T) {
	// Two equidistant transmitters: SINR = 1 < β = 1.5 → no decode, but the
	// listener senses both.
	f := field([]geo.Point{{X: -0.3, Y: 0}, {X: 0.3, Y: 0}, {X: 0, Y: 0}}, 1)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 1}, {Node: 1, Channel: 0, Msg: 2}},
		[]Rx{{Node: 2, Channel: 0}},
	)
	r := recs[0]
	if r.Decoded {
		t.Fatalf("symmetric collision decoded: %+v", r)
	}
	p := f.Params()
	want := 2 * p.PowerAtDistance(0.3)
	if math.Abs(r.RSSI()-want) > 1e-9 {
		t.Errorf("sensed power = %v, want %v", r.RSSI(), want)
	}
}

func TestCaptureEffect(t *testing.T) {
	// A near transmitter should be decoded despite a far interferer.
	f := field([]geo.Point{{X: 0.1, Y: 0}, {X: 0.9, Y: 0}, {X: 0, Y: 0}}, 1)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: "near"}, {Node: 1, Channel: 0, Msg: "far"}},
		[]Rx{{Node: 2, Channel: 0}},
	)
	r := recs[0]
	if !r.Decoded || r.From != 0 {
		t.Fatalf("capture failed: %+v", r)
	}
	if r.Interference <= 0 {
		t.Error("interference from the far transmitter should be sensed")
	}
}

func TestTransmitterHearsNothing(t *testing.T) {
	// Same node listed as both tx and rx: its own signal is excluded.
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}, 1)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 1}},
		[]Rx{{Node: 0, Channel: 0}},
	)
	if recs[0].Decoded || recs[0].RSSI() != 0 {
		t.Fatalf("transmitter heard itself: %+v", recs[0])
	}
}

func TestInvalidChannelPanics(t *testing.T) {
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, 2)
	for _, fn := range []func(){
		func() { f.Resolve([]Tx{{Node: 0, Channel: 2, Msg: 1}}, nil) },
		func() { f.Resolve(nil, []Rx{{Node: 0, Channel: -1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid channel")
				}
			}()
			fn()
		}()
	}
}

func TestCoLocatedTransmitters(t *testing.T) {
	// Two transmitters exactly at the listener's position: infinite power
	// from both, nothing decodable, no NaN escapes.
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 0}}, 1)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 1}, {Node: 1, Channel: 0, Msg: 2}},
		[]Rx{{Node: 2, Channel: 0}},
	)
	r := recs[0]
	if r.Decoded {
		t.Fatalf("co-located collision decoded: %+v", r)
	}
	if math.IsNaN(r.SINR) || math.IsNaN(r.SignalPower) {
		t.Fatalf("NaN escaped: %+v", r)
	}
}

func TestMonotoneInterference(t *testing.T) {
	// Property: adding an interferer never turns a failed reception into a
	// success, and never increases the measured SINR.
	p := model.Default(1, 64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pos := []geo.Point{
			{X: r.Float64(), Y: r.Float64()},           // sender
			{X: r.Float64(), Y: r.Float64()},           // listener
			{X: r.Float64() * 3, Y: r.Float64() * 3},   // interferer 1
			{X: r.Float64() * 10, Y: r.Float64() * 10}, // interferer 2
		}
		fld := NewField(p, pos)
		rx := []Rx{{Node: 1, Channel: 0}}
		base := fld.Resolve([]Tx{{Node: 0, Channel: 0, Msg: 1}}, rx)[0]
		more := fld.Resolve([]Tx{
			{Node: 0, Channel: 0, Msg: 1},
			{Node: 2, Channel: 0, Msg: 2},
			{Node: 3, Channel: 0, Msg: 3},
		}, rx)[0]
		if !base.Decoded && more.Decoded && more.From == 0 {
			return false // interference helped sender 0: impossible
		}
		if base.Decoded && more.Decoded && more.From == 0 && more.SINR > base.SINR+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClearReception(t *testing.T) {
	p := model.Default(1, 64)
	r := 0.05
	// Sender within r, no interference: clear.
	f := NewField(p, []geo.Point{{X: 0, Y: 0}, {X: 0.04, Y: 0}})
	rec := f.Resolve([]Tx{{Node: 0, Channel: 0, Msg: 1}}, []Rx{{Node: 1, Channel: 0}})[0]
	if !Clear(rec, p, r) {
		t.Error("isolated close transmission should be clear")
	}
	// Sender beyond r: decoded but not clear.
	f = NewField(p, []geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}})
	rec = f.Resolve([]Tx{{Node: 0, Channel: 0, Msg: 1}}, []Rx{{Node: 1, Channel: 0}})[0]
	if !rec.Decoded {
		t.Fatal("setup: should decode")
	}
	if Clear(rec, p, r) {
		t.Error("distant sender must not count as clear for small r")
	}
	// Interferer within 4r of listener: interference above threshold → not clear.
	f = NewField(p, []geo.Point{{X: 0, Y: 0}, {X: 0.04, Y: 0}, {X: 0.04 + 3*r, Y: 0}})
	rec = f.Resolve([]Tx{
		{Node: 0, Channel: 0, Msg: 1},
		{Node: 2, Channel: 0, Msg: 2},
	}, []Rx{{Node: 1, Channel: 0}})[0]
	if Clear(rec, p, r) {
		t.Error("nearby interferer must break clearness")
	}
}

func TestClearImpliesNoNearbyTransmitter(t *testing.T) {
	// Definition 4's guarantee: if a reception is clear for radius r, then no
	// node within 4r of the receiver (other than the sender) transmitted.
	p := model.Default(1, 256)
	r := 0.04
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 3 + rnd.Intn(20)
		pos := make([]geo.Point, n)
		for i := range pos {
			pos[i] = geo.Point{X: rnd.Float64(), Y: rnd.Float64()}
		}
		fld := NewField(p, pos)
		var txs []Tx
		for i := 1; i < n; i++ {
			if rnd.Float64() < 0.3 {
				txs = append(txs, Tx{Node: i, Channel: 0, Msg: i})
			}
		}
		rec := fld.Resolve(txs, []Rx{{Node: 0, Channel: 0}})[0]
		if !Clear(rec, p, r) {
			return true // vacuous
		}
		for _, tx := range txs {
			if tx.Node == rec.From {
				continue
			}
			if pos[0].Dist(pos[tx.Node]) <= 4*r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSenderWithin(t *testing.T) {
	p := model.Default(1, 64)
	f := NewField(p, []geo.Point{{X: 0, Y: 0}, {X: 0.3, Y: 0}})
	rec := f.Resolve([]Tx{{Node: 0, Channel: 0, Msg: 1}}, []Rx{{Node: 1, Channel: 0}})[0]
	if !SenderWithin(rec, p, 0.3) {
		t.Error("sender at exactly r should count as within")
	}
	if SenderWithin(rec, p, 0.29) {
		t.Error("sender beyond r should not count as within")
	}
	if SenderWithin(Reception{}, p, 1) {
		t.Error("undecoded reception cannot locate a sender")
	}
}

func TestManyChannelsPartitionInterference(t *testing.T) {
	// 8 transmitters split over 4 channels; a listener per channel decodes
	// its nearest same-channel transmitter.
	p := model.Default(4, 64)
	var pos []geo.Point
	var txs []Tx
	for c := 0; c < 4; c++ {
		pos = append(pos, geo.Point{X: float64(c) * 10, Y: 0.2})
		txs = append(txs, Tx{Node: c, Channel: c, Msg: c})
	}
	var rxs []Rx
	for c := 0; c < 4; c++ {
		pos = append(pos, geo.Point{X: float64(c) * 10, Y: 0})
		rxs = append(rxs, Rx{Node: 4 + c, Channel: c})
	}
	f := NewField(p, pos)
	recs := f.Resolve(txs, rxs)
	for c, r := range recs {
		if !r.Decoded || r.From != c {
			t.Errorf("channel %d: %+v", c, r)
		}
	}
}

func TestJammedChannel(t *testing.T) {
	f := field([]geo.Point{{X: 0, Y: 0}, {X: 0.3, Y: 0}}, 2)
	f.Jam(0, true)
	recs := f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 1}},
		[]Rx{{Node: 1, Channel: 0}},
	)
	r := recs[0]
	if r.Decoded || r.Msg != nil || r.From != -1 {
		t.Fatalf("jammed channel decoded: %+v", r)
	}
	if r.RSSI() <= 0 {
		t.Error("jammed channel should still sense power")
	}
	// The other channel is unaffected.
	recs = f.Resolve(
		[]Tx{{Node: 0, Channel: 1, Msg: 2}},
		[]Rx{{Node: 1, Channel: 1}},
	)
	if !recs[0].Decoded {
		t.Error("unjammed channel should work")
	}
	// Unjam and recover.
	f.Jam(0, false)
	recs = f.Resolve(
		[]Tx{{Node: 0, Channel: 0, Msg: 3}},
		[]Rx{{Node: 1, Channel: 0}},
	)
	if !recs[0].Decoded {
		t.Error("channel should recover after unjamming")
	}
}
