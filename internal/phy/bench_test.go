package phy

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// benchSlot builds a slot with n nodes, txFrac of them transmitting across
// the given channels, and resolves it.
func benchSlot(b *testing.B, n, channels int, txFrac float64) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * 5, Y: r.Float64() * 5}
	}
	f := NewField(model.Default(channels, n), pos)
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if r.Float64() < txFrac {
			txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resolve(txs, rxs)
	}
}

func BenchmarkResolve256Nodes1Channel(b *testing.B)  { benchSlot(b, 256, 1, 0.2) }
func BenchmarkResolve256Nodes8Channels(b *testing.B) { benchSlot(b, 256, 8, 0.2) }
func BenchmarkResolve1kNodes8Channels(b *testing.B)  { benchSlot(b, 1024, 8, 0.2) }
