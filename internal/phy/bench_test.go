package phy

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// benchSlot builds a slot with n nodes spread over span×span units, txFrac
// of them transmitting across the given channels, and resolves it under the
// configured field.
func benchSlot(b *testing.B, n, channels int, span, txFrac float64, configure func(*Field)) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * span, Y: r.Float64() * span}
	}
	f := NewField(model.Default(channels, n), pos)
	if configure != nil {
		configure(f)
	}
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if r.Float64() < txFrac {
			txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resolve(txs, rxs)
	}
}

func BenchmarkResolve256Nodes1Channel(b *testing.B)  { benchSlot(b, 256, 1, 5, 0.2, nil) }
func BenchmarkResolve256Nodes8Channels(b *testing.B) { benchSlot(b, 256, 8, 5, 0.2, nil) }
func BenchmarkResolve1kNodes8Channels(b *testing.B)  { benchSlot(b, 1024, 8, 5, 0.2, nil) }

// Serial vs fan-out on the same dense slot: bit-identical outcomes, only
// wall-clock differs (the gap requires GOMAXPROCS > 1).
func BenchmarkResolve4kSerial(b *testing.B) {
	benchSlot(b, 4096, 8, 10, 0.3, func(f *Field) { f.SetParallelism(1) })
}
func BenchmarkResolve4kParallel(b *testing.B) {
	benchSlot(b, 4096, 8, 10, 0.3, func(f *Field) { f.SetParallelism(0) })
}

// benchClusteredSlot is the far-field target regime: crowds — many
// same-cell transmitters — scattered over a span ≫ R_T, so each distant
// crowd collapses into one centroid term per listener instead of hundreds
// of pairwise powers.
func benchClusteredSlot(b *testing.B, clusters, per, channels int, span float64, configure func(*Field)) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	n := clusters * per
	pos := make([]geo.Point, 0, n)
	for c := 0; c < clusters; c++ {
		cx, cy := r.Float64()*span, r.Float64()*span
		for k := 0; k < per; k++ {
			pos = append(pos, geo.Point{X: cx + r.NormFloat64()*0.05, Y: cy + r.NormFloat64()*0.05})
		}
	}
	f := NewField(model.Default(channels, n), pos)
	if configure != nil {
		configure(f)
	}
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if r.Float64() < 0.3 {
			txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resolve(txs, rxs)
	}
}

// Exact vs far-field aggregation on 32 crowds of 256 nodes across 200 R_T.
func BenchmarkResolveHotspotsExact(b *testing.B) {
	benchClusteredSlot(b, 32, 256, 8, 200, func(f *Field) { f.SetParallelism(1) })
}
func BenchmarkResolveHotspotsFarField(b *testing.B) {
	benchClusteredSlot(b, 32, 256, 8, 200, func(f *Field) {
		f.SetParallelism(1)
		f.SetFarFieldTolerance(0.1)
	})
}
