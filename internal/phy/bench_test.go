package phy

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// benchSlot builds a slot with n nodes spread over span×span units, txFrac
// of them transmitting across the given channels, and resolves it under the
// configured field. One untimed warm-up call grows all scratch and starts
// the worker pool, so the timed loop measures the allocation-free steady
// state even at -benchtime=1x (the CI tripwire's setting).
func benchSlot(b *testing.B, n, channels int, span, txFrac float64, configure func(*Field)) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * span, Y: r.Float64() * span}
	}
	f := NewField(model.Default(channels, n), pos)
	if configure != nil {
		configure(f)
	}
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if r.Float64() < txFrac {
			txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
		}
	}
	f.Resolve(txs, rxs) // warm up scratch and the worker pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resolve(txs, rxs)
	}
}

func BenchmarkResolve256Nodes1Channel(b *testing.B)  { benchSlot(b, 256, 1, 5, 0.2, nil) }
func BenchmarkResolve256Nodes8Channels(b *testing.B) { benchSlot(b, 256, 8, 5, 0.2, nil) }
func BenchmarkResolve1kNodes8Channels(b *testing.B)  { benchSlot(b, 1024, 8, 5, 0.2, nil) }

// Serial vs fan-out on the same dense slot: bit-identical outcomes, only
// wall-clock differs (the gap requires GOMAXPROCS > 1).
func BenchmarkResolve4kSerial(b *testing.B) {
	benchSlot(b, 4096, 8, 10, 0.3, func(f *Field) { f.SetParallelism(1) })
}
func BenchmarkResolve4kParallel(b *testing.B) {
	benchSlot(b, 4096, 8, 10, 0.3, func(f *Field) { f.SetParallelism(0) })
}

// BenchmarkResolveCrowdDense is the AggregateCrowd hot shape: one tight
// cluster well inside a single grid cell, half the nodes transmitting on
// one channel, every other node listening — the dense ACK slots that
// dominate the 16k crowd pipeline. All pairs are near-field, so this
// measures the struct-of-arrays scan kernel itself.
func benchCrowdDense(b *testing.B, configure func(*Field)) {
	b.Helper()
	const n = 4096
	r := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: r.Float64() * 0.15, Y: r.Float64() * 0.15}
	}
	f := NewField(model.Default(8, n), pos)
	if configure != nil {
		configure(f)
	}
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			txs = append(txs, Tx{Node: i, Channel: 0, Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: 0})
		}
	}
	f.Resolve(txs, rxs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resolve(txs, rxs)
	}
}

func BenchmarkResolveCrowdDenseSerial(b *testing.B) {
	benchCrowdDense(b, func(f *Field) { f.SetParallelism(1) })
}
func BenchmarkResolveCrowdDenseParallel(b *testing.B) {
	benchCrowdDense(b, func(f *Field) { f.SetParallelism(0) })
}

// BenchmarkResolveCrowdDenseF32 is the same dense-slot shape under the
// float32 divide-free kernel — the head-to-head for the kernel swap alone,
// with no engine or protocol overhead in the way.
func BenchmarkResolveCrowdDenseF32(b *testing.B) {
	benchCrowdDense(b, func(f *Field) {
		f.SetParallelism(1)
		f.SetKernel(KernelFloat32)
	})
}

// benchClusteredSlot is the far-field target regime: crowds — many
// same-cell transmitters — scattered over a span ≫ R_T, so each distant
// crowd collapses into one centroid term per listener instead of hundreds
// of pairwise powers.
func benchClusteredSlot(b *testing.B, clusters, per, channels int, span float64, configure func(*Field)) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	n := clusters * per
	pos := make([]geo.Point, 0, n)
	for c := 0; c < clusters; c++ {
		cx, cy := r.Float64()*span, r.Float64()*span
		for k := 0; k < per; k++ {
			pos = append(pos, geo.Point{X: cx + r.NormFloat64()*0.05, Y: cy + r.NormFloat64()*0.05})
		}
	}
	f := NewField(model.Default(channels, n), pos)
	if configure != nil {
		configure(f)
	}
	var txs []Tx
	var rxs []Rx
	for i := 0; i < n; i++ {
		if r.Float64() < 0.3 {
			txs = append(txs, Tx{Node: i, Channel: r.Intn(channels), Msg: i})
		} else {
			rxs = append(rxs, Rx{Node: i, Channel: r.Intn(channels)})
		}
	}
	f.Resolve(txs, rxs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Resolve(txs, rxs)
	}
}

// Exact vs the (default) hierarchical aggregation on 32 crowds of 256 nodes
// across 200 R_T. The far-field bench keeps its historical name; it now
// measures the default path at tolerance 0.1.
func BenchmarkResolveHotspotsExact(b *testing.B) {
	benchClusteredSlot(b, 32, 256, 8, 200, func(f *Field) {
		f.SetParallelism(1)
		f.SetResolver(ResolverExact)
	})
}
func BenchmarkResolveHotspotsFarField(b *testing.B) {
	benchClusteredSlot(b, 32, 256, 8, 200, func(f *Field) {
		f.SetParallelism(1)
		f.SetFarFieldTolerance(0.1)
	})
}
