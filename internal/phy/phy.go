// Package phy implements the SINR physical layer: given the set of nodes
// transmitting and listening on each channel in a slot, it decides which
// messages are decoded and what signal strengths every listener measures.
//
// The decoding rule is the paper's Eq. (1): listener v decodes the message
// of transmitter u iff they share a channel, v is not transmitting, and
//
//	P/d(u,v)^α / (N + Σ_{w≠u} P/d(w,v)^α) ≥ β.
//
// Since β ≥ 1, at most one transmitter (the strongest) can satisfy the
// condition, so resolution tests only the strongest signal at each listener.
//
// Listeners always measure total received power (the RSSI primitive of
// Sec. 2), which upper layers use for carrier sense, clear-reception
// detection (Definition 4) and distance estimation.
//
// # Resolver modes
//
// A Field resolves slots in one of two modes (SetResolver):
//
//   - ResolverHierarchical (the default under the Euclidean metric) bins the
//     slot's transmitters into a uniform grid once — O(|txs|) — and gives
//     each listener an exact pairwise sum over nearby cells plus one
//     centroid-aggregated term per distant cell, with relative error at most
//     the configured tolerance on the far-field interference term (see
//     hier.go for the bound). Decoding candidates are always evaluated
//     exactly: the near region extends at least to the transmission range
//     R_T, beyond which no transmitter can satisfy the SINR threshold.
//   - ResolverExact scans every same-channel transmitter per listener —
//     O(|rxs|·|txs|) per slot — and is bit-identical to the historical
//     resolver: transcripts recorded before the hierarchical mode existed
//     replay exactly. Fields over a custom metric always resolve exactly.
//
// Both modes are deterministic: equal slots resolve to equal receptions at
// every parallelism setting, run after run. Only exact mode is
// transcript-compatible across the mode boundary.
//
// # Performance
//
// Resolve is the simulator's hot path: every slot of every protocol run
// passes through it. Beyond the hierarchical aggregation, three mechanisms
// keep it fast without changing results:
//
//   - The slot's transmitters are laid out once per Resolve in
//     struct-of-arrays form (contiguous per-channel x/y position, node and
//     index slices — see soa.go), so the per-listener scan streams through
//     memory with no pointer chasing.
//   - Listeners resolve independently, so Resolve fans them out across a
//     package-level pool of persistent worker goroutines, by default as
//     many as GOMAXPROCS (SetParallelism). Outcomes are bit-identical for
//     every worker count, and no goroutines are spawned per slot.
//   - All scratch — the SoA layout, grid bins, reception buffers — is
//     per-Field state reused across calls: steady-state resolution
//     allocates nothing per slot. Reserve presizes the scratch so even the
//     first slots of a run stay allocation-free.
//
// Under the default Euclidean metric with α = 3, per-pair powers use an
// inlined distance and an integer power identity that reproduces math.Pow
// bit-for-bit (see ipow), so transcripts match the generic path exactly.
package phy

import (
	"math"
	"runtime"
	"sync"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// Tx describes one transmission in a slot.
type Tx struct {
	Node    int
	Channel int
	Msg     any
}

// Rx describes one listening node in a slot.
type Rx struct {
	Node    int
	Channel int
}

// Reception is what a listener observes at the end of a slot.
type Reception struct {
	// Decoded reports whether a message was successfully received.
	Decoded bool
	// From is the sender's node index when Decoded, else -1.
	From int
	// Msg is the decoded message when Decoded, else nil.
	Msg any
	// SignalPower is the received power of the decoded transmission
	// (0 when nothing was decoded).
	SignalPower float64
	// Interference is the summed received power of all transmissions other
	// than the decoded one. When nothing was decoded this is the total
	// received power. Ambient noise is not included.
	Interference float64
	// SINR is SignalPower / (N + Interference) when Decoded, else 0.
	SINR float64
}

// RSSI returns the total measured power including the decoded signal but
// excluding ambient noise.
func (r Reception) RSSI() float64 { return r.SignalPower + r.Interference }

// Resolver selects how a Field computes per-listener interference sums.
type Resolver int

const (
	// ResolverHierarchical is the default: grid-binned transmitters, exact
	// near cells, centroid-aggregated far cells within the configured
	// tolerance. Requires the Euclidean metric.
	ResolverHierarchical Resolver = iota
	// ResolverExact scans every same-channel transmitter per listener and
	// is bit-identical to the pre-hierarchical resolver.
	ResolverExact
)

// DefaultFarFieldTolerance is the hierarchical mode's default relative
// error bound on the far-field interference term. Decode outcomes can
// differ from exact mode only when a listener's SINR lies within this
// factor of the threshold β.
const DefaultFarFieldTolerance = 0.05

// DefaultCellFraction sizes hierarchical grid cells as this fraction of the
// transmission range R_T; geo.NewGrid coarsens further if the deployment's
// extent would need too many cells.
const DefaultCellFraction = 0.5

// Field resolves slots for a fixed node placement under fixed parameters.
//
// A Field is not safe for concurrent use: Resolve reuses internal scratch
// buffers between calls (each engine builds its own Field).
type Field struct {
	params model.Params
	pos    []geo.Point
	dist   geo.Metric // nil selects the built-in Euclidean fast path
	jammed []bool

	power    float64 // params.Power, hoisted for the scan loops
	alphaInt int     // α when integral in [1, 64], else 0

	// parallelism is the worker count for Resolve; 0 means GOMAXPROCS.
	parallelism int

	mode     Resolver
	tol      float64 // hierarchical far-field tolerance (> 0)
	cellFrac float64 // grid cell size as a fraction of R_T
	kernel32 bool    // KernelFloat32 selected (see kernel32.go)

	// soa is the per-slot struct-of-arrays transmitter layout, rebuilt by
	// every Resolve call; hier adds the per-cell segmentation on top.
	soa  slotSoA
	hier *hierState
	// slotHier records whether the current slot resolves hierarchically
	// (mode, metric and grid degeneration folded in), set once per Resolve
	// before any fan-out and read-only during it.
	slotHier bool

	// out is the Reception slice returned by Resolve, reused across calls.
	out []Reception
	// wg synchronizes the worker-pool fan-out of one Resolve call.
	wg sync.WaitGroup
}

// NewField creates a resolver for the given placement under the Euclidean
// metric, resolving hierarchically with the default tolerance and cell
// size. The position slice is retained; callers must not mutate it during
// use.
func NewField(p model.Params, pos []geo.Point) *Field {
	return NewFieldMetric(p, pos, nil)
}

// NewFieldMetric creates a resolver under an arbitrary fading metric
// (footnote 1 of the paper: the results extend to metrics whose doubling
// dimension is below α). Protocols are metric-agnostic — they only observe
// received powers — so the whole stack runs unchanged. A nil metric selects
// the Euclidean metric and enables its inlined fast path and the
// hierarchical resolver; a non-nil metric (even geo.Euclidean explicitly)
// resolves exactly through the generic (slower) loop.
func NewFieldMetric(p model.Params, pos []geo.Point, m geo.Metric) *Field {
	f := &Field{
		params:   p,
		pos:      pos,
		dist:     m,
		jammed:   make([]bool, p.Channels),
		power:    p.Power,
		alphaInt: integralAlpha(p.Alpha),
		mode:     ResolverHierarchical,
		tol:      DefaultFarFieldTolerance,
		cellFrac: DefaultCellFraction,
	}
	if m != nil {
		f.mode = ResolverExact
	}
	return f
}

// SetResolver selects the resolution mode. Selecting ResolverHierarchical
// on a field built over a custom metric panics: the aggregation's error
// bound holds only for the Euclidean metric.
func (f *Field) SetResolver(mode Resolver) {
	switch mode {
	case ResolverExact:
		f.mode = ResolverExact
	case ResolverHierarchical:
		if f.dist != nil {
			panic("phy: hierarchical resolution requires the Euclidean metric")
		}
		f.mode = ResolverHierarchical
	default:
		panic("phy: unknown resolver mode")
	}
}

// Mode returns the field's resolution mode.
func (f *Field) Mode() Resolver { return f.mode }

// SetFarFieldTolerance sets the hierarchical mode's relative error bound on
// the far-field interference term and selects hierarchical resolution.
// tol = 0 selects exact resolution instead (the historical contract of this
// knob). Positive tolerances require the Euclidean metric; fields built
// over a custom metric panic.
func (f *Field) SetFarFieldTolerance(tol float64) {
	if tol < 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		panic("phy: far-field tolerance must be finite and ≥ 0")
	}
	if tol == 0 {
		f.mode = ResolverExact
		return
	}
	if f.dist != nil {
		panic("phy: far-field approximation requires the Euclidean metric")
	}
	f.mode = ResolverHierarchical
	f.tol = tol
	if f.hier != nil {
		f.hier.setCutoff(f, tol)
	}
}

// SetCellSize sizes the hierarchical grid's cells as frac·R_T (default
// DefaultCellFraction). Smaller cells tighten the near region around each
// listener at the cost of more cells; geo.NewGrid coarsens the result if
// the deployment's extent would need too many cells. The error bound holds
// for every setting — only performance changes.
func (f *Field) SetCellSize(frac float64) {
	if frac <= 0 || math.IsNaN(frac) || math.IsInf(frac, 0) {
		panic("phy: cell size fraction must be positive and finite")
	}
	f.cellFrac = frac
	f.hier = nil // grid geometry changed; rebuild lazily
}

// SetParallelism sets how many workers Resolve may fan listeners out
// across: 0 (the default) sizes the fan-out by runtime.GOMAXPROCS, 1 forces
// serial resolution. Outcomes are bit-identical for every setting — only
// wall-clock time changes — because listeners are resolved independently.
func (f *Field) SetParallelism(workers int) {
	if workers < 0 {
		workers = 0
	}
	f.parallelism = workers
}

// Jam marks a channel as disrupted (the adversarial setting of the paper's
// reference [9]): nothing decodes on it, but listeners still sense the
// power, as a real jammer would present. Jamming can be toggled between
// slots.
func (f *Field) Jam(channel int, jam bool) {
	f.jammed[channel] = jam
}

// Params returns the model parameters of the field.
func (f *Field) Params() model.Params { return f.params }

// Positions returns the node placement (shared; do not mutate).
func (f *Field) Positions() []geo.Point { return f.pos }

// N returns the number of nodes in the field.
func (f *Field) N() int { return len(f.pos) }

// Reserve presizes the field's reusable scratch — the reception buffer, the
// struct-of-arrays layout and (in hierarchical mode) the grid bins — for
// slots with up to maxTx transmitters and maxRx listeners, so a run's first
// slots allocate nothing. The engine calls this once per run with the node
// count; calling it is never required for correctness.
func (f *Field) Reserve(maxTx, maxRx int) {
	if cap(f.out) < maxRx {
		f.out = make([]Reception, maxRx)
	}
	f.soa.reserve(f.params.Channels, maxTx)
	if f.hierActive() {
		if h := f.hierState(); !h.degenerate {
			h.reserve(f.params.Channels, maxTx)
		}
	}
}

// hierActive reports whether slots resolve through the hierarchical path.
func (f *Field) hierActive() bool { return f.mode == ResolverHierarchical && f.dist == nil }

// hierState returns the hierarchical geometry, building it on first use
// (and after SetCellSize invalidated it).
func (f *Field) hierState() *hierState {
	if f.hier == nil {
		f.hier = newHierState(f)
	}
	return f.hier
}

// minParallelWork bounds when Resolve fans out to the worker pool: below
// this many listener×transmitter pairs the hand-off overhead outweighs the
// win.
const minParallelWork = 1 << 13

// workersFor picks the worker count for one Resolve call.
func (f *Field) workersFor(nRx, nTx int) int {
	w := f.parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nRx {
		w = nRx
	}
	if w <= 1 || nRx*nTx < minParallelWork {
		return 1
	}
	return w
}

// Resolve computes the reception outcome for every listener given the
// transmissions of one slot. The returned slice is parallel to rxs and is
// only valid until the next Resolve call on this field (it is reused
// scratch); callers that retain receptions must copy them.
//
// Channels are numbered 0..F-1; transmissions or listens on out-of-range
// channels panic, as they indicate a protocol bug.
func (f *Field) Resolve(txs []Tx, rxs []Rx) []Reception {
	// Lay the slot out in struct-of-arrays form (and bin it into grid cells
	// in hierarchical mode) before any fan-out, so invalid transmit
	// channels panic on the caller's goroutine. A degenerate grid — the
	// whole deployment inside the near region — skips binning and resolves
	// through the exact kernel, bit-identically to exact mode.
	f.soa.prepare(f, txs)
	f.slotHier = false
	if f.hierActive() {
		if h := f.hierState(); !h.degenerate {
			h.prepare(f, txs)
			f.slotHier = true
		}
	}
	// Validate listen channels up front for the same reason.
	for _, rx := range rxs {
		if rx.Channel < 0 || rx.Channel >= f.params.Channels {
			panic("phy: listen on invalid channel")
		}
	}
	if cap(f.out) < len(rxs) {
		f.out = make([]Reception, len(rxs))
	}
	out := f.out[:len(rxs)]

	if w := f.workersFor(len(rxs), len(txs)); w > 1 {
		poolOnce.Do(startPool)
		chunk := (len(rxs) + w - 1) / w
		for lo := chunk; lo < len(rxs); lo += chunk {
			hi := min(lo+chunk, len(rxs))
			f.wg.Add(1)
			poolTasks <- resolveTask{f: f, txs: txs, rxs: rxs, out: out, lo: lo, hi: hi}
		}
		f.resolveRange(txs, rxs, out, 0, min(chunk, len(rxs)))
		f.wg.Wait()
	} else {
		f.resolveRange(txs, rxs, out, 0, len(rxs))
	}
	return out
}

// resolveRange resolves listeners rxs[lo:hi] into out[lo:hi]. It is the
// unit of work handed to pool workers; disjoint ranges touch disjoint out
// entries, so workers share nothing but read-only slot state.
func (f *Field) resolveRange(txs []Tx, rxs []Rx, out []Reception, lo, hi int) {
	hier, k32 := f.slotHier, f.kernel32
	for i := lo; i < hi; i++ {
		rx := rxs[i]
		if hier {
			if f.jammed[rx.Channel] {
				// A jammed channel delivers nothing, so decode bookkeeping
				// is skipped: the listener senses the exact flat power sum
				// of the (unbinned) channel segment. The f32 kernel keeps
				// this exact: jammed slots are rare and never hot.
				out[i] = Reception{From: -1, Interference: f.jammedTotal(rx)}
			} else if k32 {
				out[i] = f.resolveOneHier32(rx, txs)
			} else {
				out[i] = f.resolveOneHier(rx, txs)
			}
			continue
		}
		if k32 {
			out[i] = f.resolveOneExact32(rx, txs)
		} else {
			out[i] = f.resolveOneExact(rx, txs)
		}
		if f.jammed[rx.Channel] && out[i].Decoded {
			// Historical jam fold, preserved bit-for-bit: the signal is
			// still sensed, nothing is delivered.
			out[i].Interference += out[i].SignalPower
			out[i].Decoded, out[i].From, out[i].Msg = false, -1, nil
			out[i].SignalPower, out[i].SINR = 0, 0
		}
	}
}

// resolveOneExact scans the listener's whole channel segment pairwise, in
// transmitter order — bit-identical to the pre-hierarchical resolver.
func (f *Field) resolveOneExact(rx Rx, txs []Tx) Reception {
	listener := f.pos[rx.Node]
	lo, hi := f.soa.segment(rx.Channel)
	self := int32(rx.Node)

	var (
		total    float64
		best     = int32(-1)
		bestPow  float64
		infCount int
	)
	if f.dist == nil && f.alphaInt == 3 {
		// Hot path: Euclidean metric with α = 3 (the default parameters).
		// Bit-identical to the generic loop below: geo.Euclidean is exactly
		// √(dx²+dy²), and math.Pow(d, 3) multiplies d·(d·d) by
		// square-and-multiply, which equals (d·d)·d under round-to-nearest
		// multiplication, so P/(d·d·d) reproduces PowerAtDistance exactly.
		lx, ly := listener.X, listener.Y
		power := f.power
		xs := f.soa.x[lo:hi]
		ys := f.soa.y[lo:hi:hi][:len(xs)]
		nodes := f.soa.node[lo:hi:hi][:len(xs)]
		// bestPow starts at -Inf so the first scanned transmitter always
		// wins the strict comparison — the same selection the historical
		// "best == -1 ||" test made, without the extra branch per pair.
		bestPow = math.Inf(-1)
		for k := range xs {
			if nodes[k] == self {
				// A node cannot hear anything while transmitting; the
				// engine never submits both, but be safe.
				continue
			}
			dx, dy := lx-xs[k], ly-ys[k]
			d := math.Sqrt(dx*dx + dy*dy)
			var pw float64
			if d <= 0 {
				pw = math.Inf(1)
				infCount++
			} else {
				pw = power / (d * d * d)
			}
			total += pw
			if pw > bestPow {
				best, bestPow = int32(k), pw
			}
		}
	} else {
		dist := f.dist
		if dist == nil {
			dist = geo.Euclidean
		}
		nodes := f.soa.node[lo:hi]
		for k := range nodes {
			if nodes[k] == self {
				continue
			}
			pw := f.params.PowerAtDistance(dist(listener, f.pos[nodes[k]]))
			if math.IsInf(pw, 1) {
				infCount++
			}
			total += pw
			if best == -1 || pw > bestPow {
				best, bestPow = int32(k), pw
			}
		}
	}
	if best >= 0 {
		return f.decide(txs, total, bestPow, int(f.soa.tx[lo+int(best)]), infCount)
	}
	return f.decide(txs, total, bestPow, -1, infCount)
}

// jammedTotal returns the exact summed power a listener on a jammed channel
// senses in hierarchical mode: the flat channel segment, no decode
// bookkeeping (jammed channels skip cell binning entirely).
func (f *Field) jammedTotal(rx Rx) float64 {
	listener := f.pos[rx.Node]
	lo, hi := f.soa.segment(rx.Channel)
	lx, ly := listener.X, listener.Y
	self := int32(rx.Node)
	power := f.power
	cube := f.alphaInt == 3
	var total float64
	xs, ys, nodes := f.soa.x[lo:hi], f.soa.y[lo:hi], f.soa.node[lo:hi]
	for k := range xs {
		if nodes[k] == self {
			continue
		}
		dx, dy := lx-xs[k], ly-ys[k]
		d := math.Sqrt(dx*dx + dy*dy)
		if cube && d > 0 {
			total += power / (d * d * d)
		} else {
			total += f.powerAt(d)
		}
	}
	return total
}

// decide applies the Eq. (1) threshold test to one listener's accumulated
// scan: total sensed power, the strongest transmitter (as an index into
// txs) and its power, and how many transmitters arrived with infinite
// power (co-located).
func (f *Field) decide(txs []Tx, total, bestPow float64, best, infCount int) Reception {
	rec := Reception{From: -1}
	if best == -1 {
		return rec
	}
	rec.Interference = total - bestPow
	if infCount > 1 || (infCount == 1 && !math.IsInf(bestPow, 1)) {
		// Co-located interferers: nothing is decodable.
		rec.Interference = total
		return rec
	}
	sinr := bestPow / (f.params.Noise + rec.Interference)
	if sinr >= f.params.Beta {
		rec.Decoded = true
		rec.From = txs[best].Node
		rec.Msg = txs[best].Msg
		rec.SignalPower = bestPow
		rec.SINR = sinr
		return rec
	}
	// Not decoded: the listener still senses all the power.
	rec.Interference = total
	return rec
}

// powerAt returns the received power P/d^α, matching
// model.Params.PowerAtDistance bit-for-bit (the integral-α route goes
// through ipow, which reproduces math.Pow's square-and-multiply rounding).
func (f *Field) powerAt(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	if f.alphaInt > 0 {
		return f.power / ipow(d, f.alphaInt)
	}
	return f.power / math.Pow(d, f.params.Alpha)
}

// Clear reports whether rec is a "clear reception" for radius r in the sense
// of Definition 4: a message was decoded, it originated within distance r
// (judged from received power), and the sensed interference certifies that
// no other node within 4r of the receiver transmitted.
//
// The certificate uses the maximal admissible threshold P/(4r)^α rather
// than the paper's (much smaller) constant T_s; see
// model.Params.ClearInterferenceBound and deviation D6 in DESIGN.md.
func Clear(rec Reception, p model.Params, r float64) bool {
	if !rec.Decoded {
		return false
	}
	if rec.SignalPower < p.PowerAtDistance(r) {
		return false // sender farther than r
	}
	return rec.Interference < p.ClearInterferenceBound(r)
}

// SenderWithin reports whether the decoded sender lies within distance r of
// the receiver, judged from received power (exact under the deterministic
// path-loss law).
func SenderWithin(rec Reception, p model.Params, r float64) bool {
	return rec.Decoded && rec.SignalPower >= p.PowerAtDistance(r)
}
