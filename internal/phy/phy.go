// Package phy implements the SINR physical layer: given the set of nodes
// transmitting and listening on each channel in a slot, it decides which
// messages are decoded and what signal strengths every listener measures.
//
// The decoding rule is the paper's Eq. (1): listener v decodes the message
// of transmitter u iff they share a channel, v is not transmitting, and
//
//	P/d(u,v)^α / (N + Σ_{w≠u} P/d(w,v)^α) ≥ β.
//
// Since β ≥ 1, at most one transmitter (the strongest) can satisfy the
// condition, so resolution tests only the strongest signal at each listener.
//
// Listeners always measure total received power (the RSSI primitive of
// Sec. 2), which upper layers use for carrier sense, clear-reception
// detection (Definition 4) and distance estimation.
package phy

import (
	"math"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// Tx describes one transmission in a slot.
type Tx struct {
	Node    int
	Channel int
	Msg     any
}

// Rx describes one listening node in a slot.
type Rx struct {
	Node    int
	Channel int
}

// Reception is what a listener observes at the end of a slot.
type Reception struct {
	// Decoded reports whether a message was successfully received.
	Decoded bool
	// From is the sender's node index when Decoded, else -1.
	From int
	// Msg is the decoded message when Decoded, else nil.
	Msg any
	// SignalPower is the received power of the decoded transmission
	// (0 when nothing was decoded).
	SignalPower float64
	// Interference is the summed received power of all transmissions other
	// than the decoded one. When nothing was decoded this is the total
	// received power. Ambient noise is not included.
	Interference float64
	// SINR is SignalPower / (N + Interference) when Decoded, else 0.
	SINR float64
}

// RSSI returns the total measured power including the decoded signal but
// excluding ambient noise.
func (r Reception) RSSI() float64 { return r.SignalPower + r.Interference }

// Field resolves slots for a fixed node placement under fixed parameters.
type Field struct {
	params model.Params
	pos    []geo.Point
	dist   geo.Metric
	jammed []bool

	// perChannel is reusable scratch space: transmitter indices by channel.
	perChannel [][]int
}

// NewField creates a resolver for the given placement under the Euclidean
// metric. The position slice is retained; callers must not mutate it during
// use.
func NewField(p model.Params, pos []geo.Point) *Field {
	return NewFieldMetric(p, pos, geo.Euclidean)
}

// NewFieldMetric creates a resolver under an arbitrary fading metric
// (footnote 1 of the paper: the results extend to metrics whose doubling
// dimension is below α). Protocols are metric-agnostic — they only observe
// received powers — so the whole stack runs unchanged.
func NewFieldMetric(p model.Params, pos []geo.Point, m geo.Metric) *Field {
	if m == nil {
		m = geo.Euclidean
	}
	return &Field{
		params:     p,
		pos:        pos,
		dist:       m,
		jammed:     make([]bool, p.Channels),
		perChannel: make([][]int, p.Channels),
	}
}

// Jam marks a channel as disrupted (the adversarial setting of the paper's
// reference [9]): nothing decodes on it, but listeners still sense the
// power, as a real jammer would present. Jamming can be toggled between
// slots.
func (f *Field) Jam(channel int, jam bool) {
	f.jammed[channel] = jam
}

// Params returns the model parameters of the field.
func (f *Field) Params() model.Params { return f.params }

// Positions returns the node placement (shared; do not mutate).
func (f *Field) Positions() []geo.Point { return f.pos }

// N returns the number of nodes in the field.
func (f *Field) N() int { return len(f.pos) }

// Resolve computes the reception outcome for every listener given the
// transmissions of one slot. The returned slice is parallel to rxs.
//
// Channels are numbered 0..F-1; transmissions or listens on out-of-range
// channels panic, as they indicate a protocol bug.
func (f *Field) Resolve(txs []Tx, rxs []Rx) []Reception {
	for c := range f.perChannel {
		f.perChannel[c] = f.perChannel[c][:0]
	}
	for i, tx := range txs {
		if tx.Channel < 0 || tx.Channel >= f.params.Channels {
			panic("phy: transmission on invalid channel")
		}
		f.perChannel[tx.Channel] = append(f.perChannel[tx.Channel], i)
	}

	out := make([]Reception, len(rxs))
	for i, rx := range rxs {
		if rx.Channel < 0 || rx.Channel >= f.params.Channels {
			panic("phy: listen on invalid channel")
		}
		out[i] = f.resolveOne(rx, txs, f.perChannel[rx.Channel])
		if f.jammed[rx.Channel] && out[i].Decoded {
			// A jammed channel delivers nothing; the signal is still sensed.
			out[i].Interference += out[i].SignalPower
			out[i].Decoded, out[i].From, out[i].Msg = false, -1, nil
			out[i].SignalPower, out[i].SINR = 0, 0
		}
	}
	return out
}

func (f *Field) resolveOne(rx Rx, txs []Tx, chTxs []int) Reception {
	rec := Reception{From: -1}
	listener := f.pos[rx.Node]

	var (
		total    float64
		best     = -1
		bestPow  float64
		infCount int
	)
	for _, ti := range chTxs {
		tx := txs[ti]
		if tx.Node == rx.Node {
			// A node cannot hear anything while transmitting; the engine
			// never submits both, but be safe.
			continue
		}
		pw := f.params.PowerAtDistance(f.dist(listener, f.pos[tx.Node]))
		if math.IsInf(pw, 1) {
			infCount++
		}
		total += pw
		if best == -1 || pw > bestPow {
			best, bestPow = ti, pw
		}
	}
	if best == -1 {
		return rec
	}
	rec.Interference = total - bestPow
	if infCount > 1 || (infCount == 1 && !math.IsInf(bestPow, 1)) {
		// Co-located interferers: nothing is decodable.
		rec.Interference = total
		return rec
	}
	sinr := bestPow / (f.params.Noise + rec.Interference)
	if sinr >= f.params.Beta {
		rec.Decoded = true
		rec.From = txs[best].Node
		rec.Msg = txs[best].Msg
		rec.SignalPower = bestPow
		rec.SINR = sinr
		return rec
	}
	// Not decoded: the listener still senses all the power.
	rec.Interference = total
	return rec
}

// Clear reports whether rec is a "clear reception" for radius r in the sense
// of Definition 4: a message was decoded, it originated within distance r
// (judged from received power), and the sensed interference certifies that
// no other node within 4r of the receiver transmitted.
//
// The certificate uses the maximal admissible threshold P/(4r)^α rather
// than the paper's (much smaller) constant T_s; see
// model.Params.ClearInterferenceBound and deviation D6 in DESIGN.md.
func Clear(rec Reception, p model.Params, r float64) bool {
	if !rec.Decoded {
		return false
	}
	if rec.SignalPower < p.PowerAtDistance(r) {
		return false // sender farther than r
	}
	return rec.Interference < p.ClearInterferenceBound(r)
}

// SenderWithin reports whether the decoded sender lies within distance r of
// the receiver, judged from received power (exact under the deterministic
// path-loss law).
func SenderWithin(rec Reception, p model.Params, r float64) bool {
	return rec.Decoded && rec.SignalPower >= p.PowerAtDistance(r)
}
