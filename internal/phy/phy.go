// Package phy implements the SINR physical layer: given the set of nodes
// transmitting and listening on each channel in a slot, it decides which
// messages are decoded and what signal strengths every listener measures.
//
// The decoding rule is the paper's Eq. (1): listener v decodes the message
// of transmitter u iff they share a channel, v is not transmitting, and
//
//	P/d(u,v)^α / (N + Σ_{w≠u} P/d(w,v)^α) ≥ β.
//
// Since β ≥ 1, at most one transmitter (the strongest) can satisfy the
// condition, so resolution tests only the strongest signal at each listener.
//
// Listeners always measure total received power (the RSSI primitive of
// Sec. 2), which upper layers use for carrier sense, clear-reception
// detection (Definition 4) and distance estimation.
//
// # Performance
//
// Resolve is the simulator's hot path: every slot of every protocol run
// passes through it. Three mechanisms keep it fast without changing results:
//
//   - Listeners resolve independently, so Resolve fans them out across
//     worker goroutines, by default as many as GOMAXPROCS
//     (SetParallelism). Outcomes are bit-identical for every worker count.
//   - Under the default Euclidean metric with an integral path-loss
//     exponent, per-pair powers use an inlined distance and an integer
//     power identity that reproduces math.Pow bit-for-bit (see ipow), so
//     transcripts match the generic path exactly.
//   - The returned Reception slice and all per-channel index buffers are
//     per-Field scratch, reused across calls: serial resolution allocates
//     nothing per slot (the parallel path spawns its short-lived workers).
//
// Exact resolution is the default and scans every same-channel transmitter
// per listener — O(|rxs|·|txs|) per slot. For large fields an approximate
// mode (SetFarFieldTolerance) buckets transmitters into a spatial grid and
// aggregates distant cells from their centroids with a bounded relative
// error; see farfield.go for the bound and its derivation.
package phy

import (
	"math"
	"runtime"
	"sync"

	"mcnet/internal/geo"
	"mcnet/internal/model"
)

// Tx describes one transmission in a slot.
type Tx struct {
	Node    int
	Channel int
	Msg     any
}

// Rx describes one listening node in a slot.
type Rx struct {
	Node    int
	Channel int
}

// Reception is what a listener observes at the end of a slot.
type Reception struct {
	// Decoded reports whether a message was successfully received.
	Decoded bool
	// From is the sender's node index when Decoded, else -1.
	From int
	// Msg is the decoded message when Decoded, else nil.
	Msg any
	// SignalPower is the received power of the decoded transmission
	// (0 when nothing was decoded).
	SignalPower float64
	// Interference is the summed received power of all transmissions other
	// than the decoded one. When nothing was decoded this is the total
	// received power. Ambient noise is not included.
	Interference float64
	// SINR is SignalPower / (N + Interference) when Decoded, else 0.
	SINR float64
}

// RSSI returns the total measured power including the decoded signal but
// excluding ambient noise.
func (r Reception) RSSI() float64 { return r.SignalPower + r.Interference }

// Field resolves slots for a fixed node placement under fixed parameters.
//
// A Field is not safe for concurrent use: Resolve reuses internal scratch
// buffers between calls (each engine builds its own Field).
type Field struct {
	params model.Params
	pos    []geo.Point
	dist   geo.Metric // nil selects the built-in Euclidean fast path
	jammed []bool

	power    float64 // params.Power, hoisted for the scan loops
	alphaInt int     // α when integral in [1, 64], else 0

	// parallelism is the worker count for Resolve; 0 means GOMAXPROCS.
	parallelism int

	// farTol enables grid-accelerated far-field aggregation when positive;
	// see SetFarFieldTolerance. The remaining fields live in farfield.go.
	farTol float64
	far    *farField

	// perChannel is reusable scratch space: transmitter indices by channel.
	perChannel [][]int
	// out is the Reception slice returned by Resolve, reused across calls.
	out []Reception
}

// NewField creates a resolver for the given placement under the Euclidean
// metric. The position slice is retained; callers must not mutate it during
// use.
func NewField(p model.Params, pos []geo.Point) *Field {
	return NewFieldMetric(p, pos, nil)
}

// NewFieldMetric creates a resolver under an arbitrary fading metric
// (footnote 1 of the paper: the results extend to metrics whose doubling
// dimension is below α). Protocols are metric-agnostic — they only observe
// received powers — so the whole stack runs unchanged. A nil metric selects
// the Euclidean metric and enables its inlined fast path; passing
// geo.Euclidean explicitly is equivalent but resolves through the generic
// (slower) loop.
func NewFieldMetric(p model.Params, pos []geo.Point, m geo.Metric) *Field {
	return &Field{
		params:     p,
		pos:        pos,
		dist:       m,
		jammed:     make([]bool, p.Channels),
		power:      p.Power,
		alphaInt:   integralAlpha(p.Alpha),
		perChannel: make([][]int, p.Channels),
	}
}

// SetParallelism sets how many workers Resolve may fan listeners out
// across: 0 (the default) sizes the pool by runtime.GOMAXPROCS, 1 forces
// serial resolution. Outcomes are bit-identical for every setting — only
// wall-clock time changes — because listeners are resolved independently.
func (f *Field) SetParallelism(workers int) {
	if workers < 0 {
		workers = 0
	}
	f.parallelism = workers
}

// Jam marks a channel as disrupted (the adversarial setting of the paper's
// reference [9]): nothing decodes on it, but listeners still sense the
// power, as a real jammer would present. Jamming can be toggled between
// slots.
func (f *Field) Jam(channel int, jam bool) {
	f.jammed[channel] = jam
}

// Params returns the model parameters of the field.
func (f *Field) Params() model.Params { return f.params }

// Positions returns the node placement (shared; do not mutate).
func (f *Field) Positions() []geo.Point { return f.pos }

// N returns the number of nodes in the field.
func (f *Field) N() int { return len(f.pos) }

// minParallelWork bounds when Resolve spawns workers: below this many
// listener×transmitter pairs the fan-out overhead outweighs the win.
const minParallelWork = 1 << 13

// workersFor picks the worker count for one Resolve call.
func (f *Field) workersFor(nRx, nTx int) int {
	w := f.parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nRx {
		w = nRx
	}
	if w <= 1 || nRx*nTx < minParallelWork {
		return 1
	}
	return w
}

// Resolve computes the reception outcome for every listener given the
// transmissions of one slot. The returned slice is parallel to rxs and is
// only valid until the next Resolve call on this field (it is reused
// scratch); callers that retain receptions must copy them.
//
// Channels are numbered 0..F-1; transmissions or listens on out-of-range
// channels panic, as they indicate a protocol bug.
func (f *Field) Resolve(txs []Tx, rxs []Rx) []Reception {
	for c := range f.perChannel {
		f.perChannel[c] = f.perChannel[c][:0]
	}
	for i, tx := range txs {
		if tx.Channel < 0 || tx.Channel >= f.params.Channels {
			panic("phy: transmission on invalid channel")
		}
		f.perChannel[tx.Channel] = append(f.perChannel[tx.Channel], i)
	}
	// Validate listen channels up front so protocol bugs panic on the
	// caller's goroutine, not inside a worker.
	for _, rx := range rxs {
		if rx.Channel < 0 || rx.Channel >= f.params.Channels {
			panic("phy: listen on invalid channel")
		}
	}
	if cap(f.out) < len(rxs) {
		f.out = make([]Reception, len(rxs))
	}
	out := f.out[:len(rxs)]

	approx := f.farTol > 0
	if approx {
		f.far.bucket(f, txs)
	}
	resolveRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rx := rxs[i]
			if approx {
				out[i] = f.resolveOneApprox(rx, txs)
			} else {
				out[i] = f.resolveOne(rx, txs, f.perChannel[rx.Channel])
			}
			if f.jammed[rx.Channel] && out[i].Decoded {
				// A jammed channel delivers nothing; the signal is still
				// sensed.
				out[i].Interference += out[i].SignalPower
				out[i].Decoded, out[i].From, out[i].Msg = false, -1, nil
				out[i].SignalPower, out[i].SINR = 0, 0
			}
		}
	}
	if w := f.workersFor(len(rxs), len(txs)); w > 1 {
		var wg sync.WaitGroup
		chunk := (len(rxs) + w - 1) / w
		for lo := 0; lo < len(rxs); lo += chunk {
			hi := min(lo+chunk, len(rxs))
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				resolveRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		resolveRange(0, len(rxs))
	}
	return out
}

func (f *Field) resolveOne(rx Rx, txs []Tx, chTxs []int) Reception {
	listener := f.pos[rx.Node]

	var (
		total    float64
		best     = -1
		bestPow  float64
		infCount int
	)
	if f.dist == nil && f.alphaInt == 3 {
		// Hot path: Euclidean metric with α = 3 (the default parameters).
		// Bit-identical to the generic loop below: geo.Euclidean is exactly
		// √(dx²+dy²), and math.Pow(d, 3) multiplies d·(d·d) by
		// square-and-multiply, which equals (d·d)·d under round-to-nearest
		// multiplication, so P/(d·d·d) reproduces PowerAtDistance exactly.
		lx, ly := listener.X, listener.Y
		power := f.power
		for _, ti := range chTxs {
			tx := &txs[ti]
			if tx.Node == rx.Node {
				// A node cannot hear anything while transmitting; the
				// engine never submits both, but be safe.
				continue
			}
			q := f.pos[tx.Node]
			dx, dy := lx-q.X, ly-q.Y
			d := math.Sqrt(dx*dx + dy*dy)
			var pw float64
			if d <= 0 {
				pw = math.Inf(1)
				infCount++
			} else {
				pw = power / (d * d * d)
			}
			total += pw
			if best == -1 || pw > bestPow {
				best, bestPow = ti, pw
			}
		}
	} else {
		dist := f.dist
		if dist == nil {
			dist = geo.Euclidean
		}
		for _, ti := range chTxs {
			tx := &txs[ti]
			if tx.Node == rx.Node {
				continue
			}
			pw := f.params.PowerAtDistance(dist(listener, f.pos[tx.Node]))
			if math.IsInf(pw, 1) {
				infCount++
			}
			total += pw
			if best == -1 || pw > bestPow {
				best, bestPow = ti, pw
			}
		}
	}
	return f.decide(txs, total, bestPow, best, infCount)
}

// decide applies the Eq. (1) threshold test to one listener's accumulated
// scan: total sensed power, the strongest transmitter and its power, and how
// many transmitters arrived with infinite power (co-located).
func (f *Field) decide(txs []Tx, total, bestPow float64, best, infCount int) Reception {
	rec := Reception{From: -1}
	if best == -1 {
		return rec
	}
	rec.Interference = total - bestPow
	if infCount > 1 || (infCount == 1 && !math.IsInf(bestPow, 1)) {
		// Co-located interferers: nothing is decodable.
		rec.Interference = total
		return rec
	}
	sinr := bestPow / (f.params.Noise + rec.Interference)
	if sinr >= f.params.Beta {
		rec.Decoded = true
		rec.From = txs[best].Node
		rec.Msg = txs[best].Msg
		rec.SignalPower = bestPow
		rec.SINR = sinr
		return rec
	}
	// Not decoded: the listener still senses all the power.
	rec.Interference = total
	return rec
}

// powerAt returns the received power P/d^α, matching
// model.Params.PowerAtDistance bit-for-bit (the integral-α route goes
// through ipow, which reproduces math.Pow's square-and-multiply rounding).
func (f *Field) powerAt(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	if f.alphaInt > 0 {
		return f.power / ipow(d, f.alphaInt)
	}
	return f.power / math.Pow(d, f.params.Alpha)
}

// Clear reports whether rec is a "clear reception" for radius r in the sense
// of Definition 4: a message was decoded, it originated within distance r
// (judged from received power), and the sensed interference certifies that
// no other node within 4r of the receiver transmitted.
//
// The certificate uses the maximal admissible threshold P/(4r)^α rather
// than the paper's (much smaller) constant T_s; see
// model.Params.ClearInterferenceBound and deviation D6 in DESIGN.md.
func Clear(rec Reception, p model.Params, r float64) bool {
	if !rec.Decoded {
		return false
	}
	if rec.SignalPower < p.PowerAtDistance(r) {
		return false // sender farther than r
	}
	return rec.Interference < p.ClearInterferenceBound(r)
}

// SenderWithin reports whether the decoded sender lies within distance r of
// the receiver, judged from received power (exact under the deterministic
// path-loss law).
func SenderWithin(rec Reception, p model.Params, r float64) bool {
	return rec.Decoded && rec.SignalPower >= p.PowerAtDistance(r)
}
