package sim

// This file implements the idle wake-wheel: a calendar queue over future
// wake slots that generalizes the all-idle fast-forward to mixed
// active/idle populations.
//
// Every IdleFor batch — goroutine or stepped — registers its node here
// under the first slot at which the node acts again. Per slot the engine
// pops exactly one bucket instead of probing a map, and sleeping nodes are
// never touched in between: a goroutine node stays parked off the barrier,
// a stepped node stays off the awake list, so a slot's cost scales with the
// nodes that actually act in it.
//
// The wheel is sized so that protocol idles (TDMA strides, stage skips —
// tens to a few thousand slots) land in their bucket's first revolution;
// longer spans survive extra revolutions at one comparison per revolution.

// wheelBuckets is the wheel's bucket count (one slot per bucket per
// revolution). Must be a power of two; 1024 covers the pipeline's longest
// common stride idles in one revolution.
const wheelBuckets = 1024

// wheelEntry is one sleeping node: who to wake and at which slot.
type wheelEntry struct {
	node     int32
	wakeSlot int
}

// wakeWheel is the engine's calendar queue of sleeping nodes. All access is
// from the engine's quiescent window, so there is no locking.
type wakeWheel struct {
	buckets [wheelBuckets][]wheelEntry
	count   int
}

func newWakeWheel() *wakeWheel { return &wakeWheel{} }

// add registers node to be woken at wakeSlot (the first slot at which it
// acts again).
func (w *wakeWheel) add(node int, wakeSlot int) {
	b := &w.buckets[wakeSlot&(wheelBuckets-1)]
	*b = append(*b, wheelEntry{node: int32(node), wakeSlot: wakeSlot})
	w.count++
}

// pop appends to due the nodes whose wake slot is exactly slot, in their
// registration order, and removes them from the wheel. Entries due in a
// later revolution keep their order; each is touched once per revolution.
func (w *wakeWheel) pop(slot int, due []int32) []int32 {
	if w.count == 0 {
		return due
	}
	b := &w.buckets[slot&(wheelBuckets-1)]
	if len(*b) == 0 {
		return due
	}
	kept := (*b)[:0]
	for _, en := range *b {
		if en.wakeSlot == slot {
			due = append(due, en.node)
			w.count--
		} else {
			kept = append(kept, en)
		}
	}
	*b = kept
	return due
}
