package sim

import (
	"testing"

	"mcnet/internal/fault"
	"mcnet/internal/phy"
)

// pingPrograms builds n programs where node 0 transmits every slot on
// channel 0 and everyone else listens, for the given number of slots.
// decoded[i] counts how many slots node i decoded the beacon.
func pingPrograms(n, slots int, decoded []int) []Program {
	progs := make([]Program, n)
	progs[0] = func(ctx *Ctx) {
		for s := 0; s < slots; s++ {
			ctx.Transmit(0, s)
		}
	}
	for i := 1; i < n; i++ {
		i := i
		progs[i] = func(ctx *Ctx) {
			for s := 0; s < slots; s++ {
				if rec := ctx.Listen(0); rec.Decoded {
					decoded[i]++
				}
			}
		}
	}
	return progs
}

// TestEngineFaultLoss: a lossy injector suppresses part of the beacon stream
// and its report balances delivered + lost against the fault-free decode
// count.
func TestEngineFaultLoss(t *testing.T) {
	const n, slots = 3, 400

	baseline := make([]int, n)
	e0 := NewEngine(lineField(n, 0.2, 1), 7)
	if _, err := e0.Run(pingPrograms(n, slots, baseline)); err != nil {
		t.Fatal(err)
	}
	total := baseline[1] + baseline[2]
	if total == 0 {
		t.Fatal("fault-free baseline decoded nothing; bad test geometry")
	}

	decoded := make([]int, n)
	e := NewEngine(lineField(n, 0.2, 1), 7)
	inj := fault.NewInjector(fault.Spec{LossProb: 0.25}, 7, n, 1, slots)
	e.Faults = inj
	if _, err := e.Run(pingPrograms(n, slots, decoded)); err != nil {
		t.Fatal(err)
	}
	rep := inj.Report()
	got := decoded[1] + decoded[2]
	if rep.Delivered != got {
		t.Errorf("report delivered %d, listeners decoded %d", rep.Delivered, got)
	}
	if rep.Delivered+rep.Lost != total {
		t.Errorf("delivered %d + lost %d != fault-free decodes %d", rep.Delivered, rep.Lost, total)
	}
	if rep.Lost == 0 {
		t.Error("25% loss over 400 slots lost nothing")
	}
}

// TestEngineFaultJamAll: with the only channel jammed every slot nothing
// decodes, but listeners still sense the beacon's power.
func TestEngineFaultJamAll(t *testing.T) {
	const n, slots = 2, 20
	sensed := false
	e := NewEngine(lineField(n, 0.2, 2), 3)
	// Two channels so the spec validates; the beacon uses channel 0 and the
	// round-robin adversary with k=1 jams it every other slot.
	inj := fault.NewInjector(fault.Spec{JamChannels: 1, JamModel: fault.JamRoundRobin}, 3, n, 2, slots)
	e.Faults = inj
	decodes := 0
	progs := make([]Program, n)
	progs[0] = func(ctx *Ctx) {
		for s := 0; s < slots; s++ {
			ctx.Transmit(0, s)
		}
	}
	progs[1] = func(ctx *Ctx) {
		for s := 0; s < slots; s++ {
			rec := ctx.Listen(0)
			if rec.Decoded {
				decodes++
			} else if rec.RSSI() > 0 {
				sensed = true
			}
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	// k=1 of F=2 round-robin: channel 0 jammed on even slots only.
	if decodes != slots/2 {
		t.Errorf("decoded %d slots, want %d (channel 0 jammed every other slot)", decodes, slots/2)
	}
	if !sensed {
		t.Error("jammed slots never sensed the beacon's power")
	}
	if rep := inj.Report(); rep.JammedSlotChannels != slots {
		t.Errorf("JammedSlotChannels = %d, want %d", rep.JammedSlotChannels, slots)
	}
}

// TestEngineFaultCrash: a node at its crash slot performs no further
// actions; the engine retires it and the run completes with the survivors.
func TestEngineFaultCrash(t *testing.T) {
	const n, slots = 3, 50
	decoded := make([]int, n)
	e := NewEngine(lineField(n, 0.2, 1), 5)
	inj := fault.NewInjector(fault.Spec{CrashAt: map[int]int{0: 10}}, 5, n, 1, slots)
	e.Faults = inj
	used, err := e.Run(pingPrograms(n, slots, decoded))
	if err != nil {
		t.Fatal(err)
	}
	// The transmitter dies at slot 10; listeners run their full schedule.
	if used != slots {
		t.Errorf("run used %d slots, want %d (survivors finish their programs)", used, slots)
	}
	if decoded[1] > 10 || decoded[2] > 10 {
		t.Errorf("listeners decoded %d/%d beacons after the transmitter crashed at slot 10",
			decoded[1], decoded[2])
	}
	if rep := inj.Report(); len(rep.CrashedNodes) != 1 || rep.CrashedNodes[0] != 0 {
		t.Errorf("CrashedNodes = %v, want [0]", rep.CrashedNodes)
	}
}

// TestEngineFaultCrashInIdleBatch: a crash slot inside an IdleFor batch
// takes effect at the batch boundary — the node's next radio primitive
// unwinds instead of acting, so nothing it schedules after the batch ever
// airs, and the barrier accounting stays consistent.
func TestEngineFaultCrashInIdleBatch(t *testing.T) {
	const n = 2
	e := NewEngine(lineField(n, 0.2, 1), 1)
	inj := fault.NewInjector(fault.Spec{CrashAt: map[int]int{0: 5}}, 1, n, 1, 100)
	e.Faults = inj
	transmitted := 0
	e.Trace = func(_ int, txs []phy.Tx, _ []phy.Rx, _ []phy.Reception) {
		transmitted += len(txs)
	}
	progs := []Program{
		func(ctx *Ctx) {
			ctx.IdleFor(20)    // crash slot 5 falls inside the batch
			ctx.Transmit(0, 1) // must never air
		},
		func(ctx *Ctx) {
			for s := 0; s < 30; s++ {
				ctx.Idle()
			}
		},
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if transmitted != 0 {
		t.Errorf("%d transmissions aired from a node crashed mid-idle", transmitted)
	}
}

// TestEngineZeroInjectorTranscript: attaching a zero-intensity injector
// leaves the run bit-identical to Faults == nil — same decode counts, same
// slot usage.
func TestEngineZeroInjectorTranscript(t *testing.T) {
	const n, slots = 4, 200
	run := func(attach bool) ([]int, int) {
		decoded := make([]int, n)
		e := NewEngine(lineField(n, 0.3, 1), 11)
		if attach {
			e.Faults = fault.NewInjector(fault.Spec{}, 11, n, 1, slots)
		}
		used, err := e.Run(pingPrograms(n, slots, decoded))
		if err != nil {
			t.Fatal(err)
		}
		return decoded, used
	}
	plainDec, plainUsed := run(false)
	zeroDec, zeroUsed := run(true)
	if plainUsed != zeroUsed {
		t.Errorf("slot usage diverged: %d vs %d", plainUsed, zeroUsed)
	}
	for i := range plainDec {
		if plainDec[i] != zeroDec[i] {
			t.Errorf("node %d decode count diverged: %d vs %d", i, plainDec[i], zeroDec[i])
		}
	}
}

// The concrete injector must satisfy the engine's hook.
var _ FaultInjector = (*fault.Injector)(nil)
