// Package sim provides the synchronous multi-channel network simulator.
//
// Each node runs its protocol as ordinary sequential Go code in its own
// goroutine. Per slot, every live node performs exactly one primitive —
// Transmit, Listen, or Idle — and blocks until the engine has collected one
// action from every live node, resolved the slot with the SINR layer
// (internal/phy), and delivered the outcomes. This matches the paper's
// synchronized-round model (Sec. 2): in each slot a node selects one of the
// F channels and either transmits or listens on it.
//
// Determinism: node programs draw randomness only from ctx.Rand, a per-node
// stream derived from (run seed, node ID), and slot resolution is
// order-independent, so a run's transcript is a pure function of (seed,
// topology, programs) regardless of goroutine scheduling.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/rng"
)

// Program is the protocol executed by one node. It runs in its own
// goroutine; returning means the node powers down for the remainder of the
// run (it neither transmits nor listens).
type Program func(ctx *Ctx)

// Event is an instrumentation record emitted by a node via Ctx.Emit.
// Events are for measurement only; protocols must not read them.
type Event struct {
	Slot  int
	Node  int
	Name  string
	Value int
}

// TraceFn observes every resolved slot. Slices are only valid during the
// call.
type TraceFn func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception)

// Engine drives a set of node programs over a phy.Field.
type Engine struct {
	// MaxSlots aborts the run if programs have not all returned by then.
	// Zero means DefaultMaxSlots.
	MaxSlots int
	// Trace, when non-nil, observes every resolved slot.
	Trace TraceFn
	// NodeParams, when non-nil, is what Ctx.Params reports to protocols
	// instead of the field's true parameters — the Sec. 2 setting where
	// nodes know only (possibly conservative) estimates of the SINR
	// parameters while physics follows the truth.
	NodeParams *model.Params
	// EventSink, when non-nil, observes every event as it is emitted, in
	// addition to the recorded Events() log. Calls are serialized (one at a
	// time) but may come from any node's goroutine and stall that node's
	// slot; keep sinks fast.
	EventSink func(Event)

	field *phy.Field
	seed  uint64

	mu     sync.Mutex
	events []Event
	// sinkMu serializes EventSink calls without holding mu, so a slow sink
	// cannot stall Events()/ResetEvents() and a sink may safely read them.
	sinkMu sync.Mutex
}

// DefaultMaxSlots bounds runaway runs; protocols in this repo all use
// explicit schedules far below it.
const DefaultMaxSlots = 1 << 22

// NewEngine creates an engine over the given field. The seed determines all
// protocol randomness.
func NewEngine(field *phy.Field, seed uint64) *Engine {
	return &Engine{field: field, seed: seed}
}

// Field returns the engine's physical layer.
func (e *Engine) Field() *phy.Field { return e.field }

// Events returns the instrumentation events emitted during runs so far.
// Ordering between different nodes' events within a slot is unspecified.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// ResetEvents discards recorded events.
func (e *Engine) ResetEvents() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = nil
}

func (e *Engine) emit(ev Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	sink := e.EventSink
	e.mu.Unlock()
	if sink != nil {
		e.sinkMu.Lock()
		sink(ev)
		e.sinkMu.Unlock()
	}
}

type actKind uint8

const (
	actTransmit actKind = iota
	actListen
	actIdle
)

type action struct {
	kind actKind
	ch   int
	msg  any
}

type nodeLink struct {
	act  chan action
	res  chan phy.Reception
	done chan struct{}
}

// stopSignal is the sentinel panic used to unwind node goroutines when the
// engine aborts a run.
type stopSignal struct{}

// Run executes one program per node until all programs return, then reports
// the number of slots consumed. The slot counter continues across
// consecutive Run calls on the same engine (startSlot), so staged protocols
// measure cumulative time; use a fresh engine for independent runs.
func (e *Engine) Run(programs []Program) (slots int, err error) {
	return e.run(context.Background(), programs, 0)
}

// RunContext is like Run but aborts the round loop as soon as ctx is
// cancelled, returning ctx.Err(). Cancellation is observed between slots and
// while waiting for node actions, so it takes effect promptly even during
// long schedules.
func (e *Engine) RunContext(ctx context.Context, programs []Program) (slots int, err error) {
	return e.run(ctx, programs, 0)
}

// RunFrom is like Run but starts the slot counter at startSlot, for staged
// pipelines that want globally consistent event timestamps.
func (e *Engine) RunFrom(startSlot int, programs []Program) (slots int, err error) {
	return e.run(context.Background(), programs, startSlot)
}

// RunFromContext combines RunFrom and RunContext.
func (e *Engine) RunFromContext(ctx context.Context, startSlot int, programs []Program) (slots int, err error) {
	return e.run(ctx, programs, startSlot)
}

func (e *Engine) run(ctx context.Context, programs []Program, startSlot int) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := e.field.N()
	if len(programs) != n {
		return 0, fmt.Errorf("sim: %d programs for %d nodes", len(programs), n)
	}
	maxSlots := e.MaxSlots
	if maxSlots <= 0 {
		maxSlots = DefaultMaxSlots
	}

	links := make([]*nodeLink, n)
	stop := make(chan struct{})
	var (
		panicMu    sync.Mutex
		firstPanic error
	)
	for i := 0; i < n; i++ {
		links[i] = &nodeLink{
			act:  make(chan action),
			res:  make(chan phy.Reception),
			done: make(chan struct{}),
		}
		nodeParams := e.field.Params()
		if e.NodeParams != nil {
			nodeParams = *e.NodeParams
		}
		ctx := &Ctx{
			id:     i,
			engine: e,
			params: nodeParams,
			Rand:   rng.Stream(e.seed, i),
			link:   links[i],
			stop:   stop,
			slot:   startSlot,
		}
		prog := programs[i]
		go func(i int, ctx *Ctx) {
			defer close(links[i].done)
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, isStop := r.(stopSignal); isStop {
					return
				}
				panicMu.Lock()
				if firstPanic == nil {
					firstPanic = fmt.Errorf("sim: node %d panicked: %v", i, r)
				}
				panicMu.Unlock()
			}()
			if prog != nil {
				prog(ctx)
			}
		}(i, ctx)
	}

	abort := func() {
		close(stop)
		for i := 0; i < n; i++ {
			<-links[i].done
		}
	}

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	nActive := n

	var (
		pending = make([]action, n)
		txs     []phy.Tx
		rxs     []phy.Rx
		rxOwner []int
	)
	slot := startSlot
	for used := 0; nActive > 0; used++ {
		if used >= maxSlots {
			abort()
			return slot - startSlot, fmt.Errorf("sim: exceeded MaxSlots = %d with %d nodes still live", maxSlots, nActive)
		}
		if err := ctx.Err(); err != nil {
			abort()
			return slot - startSlot, err
		}
		// Collect one action (or termination) from every live node.
		for i := 0; i < n; i++ {
			if !active[i] {
				pending[i] = action{kind: actIdle}
				continue
			}
			select {
			case a := <-links[i].act:
				pending[i] = a
			case <-links[i].done:
				active[i] = false
				nActive--
				pending[i] = action{kind: actIdle}
			case <-ctx.Done():
				abort()
				return slot - startSlot, ctx.Err()
			}
		}
		panicMu.Lock()
		pErr := firstPanic
		panicMu.Unlock()
		if pErr != nil {
			abort()
			return slot - startSlot, pErr
		}
		if nActive == 0 {
			break
		}

		// Resolve the slot.
		txs, rxs, rxOwner = txs[:0], rxs[:0], rxOwner[:0]
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			switch pending[i].kind {
			case actTransmit:
				txs = append(txs, phy.Tx{Node: i, Channel: pending[i].ch, Msg: pending[i].msg})
			case actListen:
				rxs = append(rxs, phy.Rx{Node: i, Channel: pending[i].ch})
				rxOwner = append(rxOwner, i)
			}
		}
		recs := e.field.Resolve(txs, rxs)
		if e.Trace != nil {
			e.Trace(slot, txs, rxs, recs)
		}

		// Deliver outcomes: listeners get their reception, everyone else an
		// empty one.
		ri := 0
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			var rec phy.Reception
			if pending[i].kind == actListen {
				rec = recs[ri]
				ri++
			} else {
				rec = phy.Reception{From: -1}
			}
			links[i].res <- rec
		}
		slot++
	}
	return slot - startSlot, nil
}

// Ctx is a node's handle to the simulator, passed to its Program.
type Ctx struct {
	// Rand is this node's private random stream.
	Rand *rand.Rand

	id     int
	engine *Engine
	params model.Params
	link   *nodeLink
	stop   chan struct{}
	slot   int
}

// ID returns this node's index (the model's unique node ID).
func (c *Ctx) ID() int { return c.id }

// Params returns the model parameters known to the node (SINR ranges,
// channel count, and the polynomial estimate of n).
func (c *Ctx) Params() model.Params { return c.params }

// Slot returns the number of completed slots from this node's perspective.
func (c *Ctx) Slot() int { return c.slot }

// Transmit sends msg on the given channel for one slot. A transmitting node
// learns nothing about concurrent events (no transmitter-side detection).
func (c *Ctx) Transmit(channel int, msg any) {
	c.step(action{kind: actTransmit, ch: channel, msg: msg})
}

// Listen receives on the given channel for one slot and returns what was
// observed.
func (c *Ctx) Listen(channel int) phy.Reception {
	return c.step(action{kind: actListen, ch: channel, msg: nil})
}

// Idle does nothing for one slot (radio off).
func (c *Ctx) Idle() {
	c.step(action{kind: actIdle})
}

// IdleFor idles for k consecutive slots.
func (c *Ctx) IdleFor(k int) {
	for i := 0; i < k; i++ {
		c.Idle()
	}
}

// Emit records an instrumentation event tagged with the current slot.
func (c *Ctx) Emit(name string, value int) {
	c.engine.emit(Event{Slot: c.slot, Node: c.id, Name: name, Value: value})
}

func (c *Ctx) step(a action) phy.Reception {
	select {
	case c.link.act <- a:
	case <-c.stop:
		panic(stopSignal{})
	}
	select {
	case rec := <-c.link.res:
		c.slot++
		return rec
	case <-c.stop:
		panic(stopSignal{})
	}
}
