// Package sim provides the synchronous multi-channel network simulator.
//
// Per slot, every live node performs exactly one primitive — Transmit,
// Listen, or Idle — and the engine collects one action from every live
// node, resolves the slot with the SINR layer (internal/phy), and delivers
// the outcomes. This matches the paper's synchronized-round model (Sec. 2):
// in each slot a node selects one of the F channels and either transmits or
// listens on it.
//
// # Execution modes
//
// A node protocol comes in two interchangeable forms:
//
//   - A goroutine Program: ordinary sequential Go code in its own
//     goroutine, blocking at each primitive until the slot resolves. The
//     natural way to write a protocol, at the cost of one stack and one
//     park/unpark per node per slot.
//   - A Stepper: protocol state in an explicit struct, driven inline by the
//     engine with one Step call per slot — no goroutine, no stack, no
//     parking. The crowd-scale fast path (see stepper.go).
//
// Both forms interoperate in one run (RunMixed) and produce bit-identical
// transcripts by construction: either way actions land in per-node pending
// slots that the engine scans in node order, so the scheduler decides when
// a node's action lands, never the resolved transcript.
//
// # Slot barrier
//
// A slot costs one synchronization round, not one rendezvous per node:
// goroutine nodes deposit their action into a shared per-node slot (no
// contention — node i writes only index i), the last arriver hands the
// engine a single wake token, and after resolution the engine releases all
// of them at once by closing the slot's release channel. Each node
// therefore parks at most once per slot, and the engine parks once, instead
// of the two blocking channel handoffs per node per slot of a naive design.
// Stepped nodes never touch the barrier — the engine drives them inside its
// own quiescent window.
//
// # Idle wake-wheel
//
// IdleFor(k) takes a node out of circulation for k slots: off the barrier
// (goroutine form) or off the awake list (stepped form), registered in a
// calendar queue keyed by wake slot (wheel.go). Sleeping nodes cost nothing
// per slot; the engine pops one wheel bucket per slot to wake the nodes
// whose batch just ended, so mixed active/idle populations fast-forward
// past the sleepers.
//
// Determinism: node programs draw randomness only from ctx.Rand, a per-node
// stream derived from (run seed, node ID), and slot resolution is
// order-independent, so a run's transcript is a pure function of (seed,
// topology, programs) regardless of goroutine scheduling.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/rng"
)

// Program is the protocol executed by one node. It runs in its own
// goroutine; returning means the node powers down for the remainder of the
// run (it neither transmits nor listens).
type Program func(ctx *Ctx)

// Event is an instrumentation record emitted by a node via Ctx.Emit.
// Events are for measurement only; protocols must not read them.
type Event struct {
	Slot  int
	Node  int
	Name  string
	Value int
}

// TraceFn observes every resolved slot. Slices are only valid during the
// call.
type TraceFn func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception)

// FaultInjector perturbs slot resolution (see internal/fault). All methods
// are called from the engine goroutine — BeginSlot before each slot is
// resolved, FilterTransmission once per collected transmission (in node
// order) before resolution, FilterReception once per listener (in node
// order) after resolution and before Trace observes the slot — except
// CrashSlot, which is read once per node at run start. Because both
// execution modes funnel through the engine's single resolve loop, these
// call sites and their ordering are identical under goroutine and stepped
// execution; implementations must be deterministic functions of their own
// seed, the (slot, node, channel) arguments, and state observed through
// these same calls, so transcripts stay reproducible.
type FaultInjector interface {
	// BeginSlot runs before the slot is resolved and may reconfigure
	// per-slot channel jamming on the field.
	BeginSlot(slot int, field *phy.Field)
	// FilterTransmission may rewrite a transmission's message (Byzantine
	// corruption or equivocation) or remove it from the slot entirely by
	// returning ok == false (a dropped transmission radiates no power).
	FilterTransmission(slot int, tx phy.Tx) (out phy.Tx, ok bool)
	// FilterReception may suppress or degrade one listener's reception on
	// the given channel.
	FilterReception(slot, node, channel int, rec phy.Reception) phy.Reception
	// CrashSlot returns the first slot at which the node is dead — it
	// performs no radio action at that slot or later — or a value above
	// any reachable slot if the node never crashes.
	CrashSlot(node int) int
}

// Engine drives a set of node programs over a phy.Field.
type Engine struct {
	// MaxSlots aborts the run if programs have not all returned by then.
	// Zero means DefaultMaxSlots.
	MaxSlots int
	// Trace, when non-nil, observes every resolved slot.
	Trace TraceFn
	// NodeParams, when non-nil, is what Ctx.Params reports to protocols
	// instead of the field's true parameters — the Sec. 2 setting where
	// nodes know only (possibly conservative) estimates of the SINR
	// parameters while physics follows the truth.
	NodeParams *model.Params
	// EventSink, when non-nil, observes every event as it is emitted, in
	// addition to the recorded Events() log. Calls are serialized (one at a
	// time) but may come from any node's goroutine and stall that node's
	// slot; keep sinks fast.
	EventSink func(Event)
	// Faults, when non-nil, injects message loss, channel jamming and node
	// crashes into every run (see internal/fault). Set it before Run; a
	// zero-intensity injector leaves transcripts bit-identical to running
	// with Faults == nil.
	Faults FaultInjector
	// Barrier selects the slot-barrier implementation (see BarrierMode).
	// The default, BarrierAuto, shards the barrier at crowd scale and keeps
	// the single-word gate for small runs. Every mode produces bit-identical
	// transcripts — the barrier decides when the engine wakes, never the
	// order slot state is read in. Set it before Run.
	Barrier BarrierMode

	field *phy.Field
	seed  uint64
	// sharding caches the node → barrier-shard map; positions are fixed for
	// the engine's lifetime, so it is built once on first sharded run.
	sharding *shardPlan

	mu     sync.Mutex
	events []Event
	// sinkMu serializes EventSink calls without holding mu, so a slow sink
	// cannot stall Events()/ResetEvents() and a sink may safely read them.
	sinkMu sync.Mutex
}

// DefaultMaxSlots bounds runaway runs; protocols in this repo all use
// explicit schedules far below it.
const DefaultMaxSlots = 1 << 22

// NewEngine creates an engine over the given field. The seed determines all
// protocol randomness.
func NewEngine(field *phy.Field, seed uint64) *Engine {
	return &Engine{field: field, seed: seed}
}

// Field returns the engine's physical layer.
func (e *Engine) Field() *phy.Field { return e.field }

// Events returns the instrumentation events emitted during runs so far.
// Ordering between different nodes' events within a slot is unspecified.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// ResetEvents discards recorded events.
func (e *Engine) ResetEvents() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = nil
}

func (e *Engine) emit(ev Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	sink := e.EventSink
	e.mu.Unlock()
	if sink != nil {
		e.sinkMu.Lock()
		sink(ev)
		e.sinkMu.Unlock()
	}
}

type actKind uint8

const (
	actTransmit actKind = iota
	actListen
	actIdle
	// actIdleLong declares an IdleFor batch: the node idles for count
	// consecutive slots and leaves the barrier until they elapse, parking
	// once instead of once per slot.
	actIdleLong
	// actIdleHold marks a node mid-batch: the engine rewrites actIdleLong
	// to this after registering the wakeup, so continuation slots treat the
	// node as idle without re-registering it.
	actIdleHold
)

type action struct {
	kind actKind
	ch   int
	msg  any
	// count is the slot span of an actIdleLong batch.
	count int
}

// stopSignal is the sentinel panic used to unwind node goroutines when the
// engine aborts a run.
type stopSignal struct{}

// roundState is the shared slot barrier of one run. Per slot, every live
// node either deposits an action into pending (its own index only) and
// arrives, or terminates and arrives once through its goroutine's deferred
// cleanup; the arrival that completes the count hands the engine the single
// wake token. The engine then owns all shared state until it releases the
// slot by closing the release channel — a quiescent window in which it reads
// pending, retires terminated nodes, adjusts expect, writes results, and
// swaps in the next release channel.
type roundState struct {
	pending []action        // node i writes pending[i] before arriving
	results []phy.Reception // engine writes, node i reads after release
	done    []atomic.Bool   // set by node i's goroutine on termination

	// gate packs the barrier counters into one word: the high half holds
	// how many arrivals complete the slot (= live, non-idling nodes), the
	// low half counts arrivals so far. The engine rewrites both halves
	// together between slots; arrivals increment the low half and compare
	// the halves of the same atomic snapshot.
	gate atomic.Uint64
	// shards, when non-nil, replaces gate with per-region epoch counters
	// combined through root — see barrier.go. shardOf maps node → shard.
	shards  []gateShard
	shardOf []int32
	root    atomic.Uint64                 // live shards<<32 | completed shards
	wake    chan struct{}                 // capacity 1: the completing arrival → engine
	release atomic.Pointer[chan struct{}] // closed by the engine per slot

	// idleWake[i] wakes node i out of an IdleFor batch (capacity 1; only
	// the engine sends, only node i receives).
	idleWake []chan struct{}

	// aborted is the fast-path abort flag sampled at every step; stop is
	// its channel form, selected on by parked idle batches.
	aborted atomic.Bool
	stop    chan struct{} // closed when the engine aborts the run
}

// Run executes one program per node until all programs return, then reports
// the number of slots consumed. The slot counter continues across
// consecutive Run calls on the same engine (startSlot), so staged protocols
// measure cumulative time; use a fresh engine for independent runs.
func (e *Engine) Run(programs []Program) (slots int, err error) {
	return e.run(context.Background(), programs, nil, 0)
}

// RunContext is like Run but aborts the round loop as soon as ctx is
// cancelled, returning ctx.Err(). Cancellation is observed between slots and
// while waiting for node actions, so it takes effect promptly even during
// long schedules.
func (e *Engine) RunContext(ctx context.Context, programs []Program) (slots int, err error) {
	return e.run(ctx, programs, nil, 0)
}

// RunFrom is like Run but starts the slot counter at startSlot, for staged
// pipelines that want globally consistent event timestamps.
func (e *Engine) RunFrom(startSlot int, programs []Program) (slots int, err error) {
	return e.run(context.Background(), programs, nil, startSlot)
}

// RunFromContext combines RunFrom and RunContext.
func (e *Engine) RunFromContext(ctx context.Context, startSlot int, programs []Program) (slots int, err error) {
	return e.run(ctx, programs, nil, startSlot)
}

// RunSteppers executes one Stepper per node in the goroutine-free mode —
// the Stepper-form counterpart of Run, with identical semantics and (for a
// faithfully ported protocol) an identical transcript.
func (e *Engine) RunSteppers(steppers []Stepper) (slots int, err error) {
	return e.run(context.Background(), nil, steppers, 0)
}

// RunSteppersContext combines RunSteppers and RunContext.
func (e *Engine) RunSteppersContext(ctx context.Context, steppers []Stepper) (slots int, err error) {
	return e.run(ctx, nil, steppers, 0)
}

// RunMixed executes a mixed population: node i runs steppers[i] when
// non-nil, programs[i] otherwise (either slice may be nil for "none of this
// form"). Both forms share the slot clock, the resolver, and the fault
// injector, and a node's form never shows in the transcript.
func (e *Engine) RunMixed(programs []Program, steppers []Stepper) (slots int, err error) {
	return e.run(context.Background(), programs, steppers, 0)
}

// RunMixedContext combines RunMixed and RunContext.
func (e *Engine) RunMixedContext(ctx context.Context, programs []Program, steppers []Stepper) (slots int, err error) {
	return e.run(ctx, programs, steppers, 0)
}

func (e *Engine) run(ctx context.Context, programs []Program, steppers []Stepper, startSlot int) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := e.field.N()
	if n == 0 {
		return 0, nil
	}
	if programs == nil && steppers == nil {
		return 0, fmt.Errorf("sim: no programs or steppers for %d nodes", n)
	}
	if programs != nil && len(programs) != n {
		return 0, fmt.Errorf("sim: %d programs for %d nodes", len(programs), n)
	}
	if steppers != nil && len(steppers) != n {
		return 0, fmt.Errorf("sim: %d steppers for %d nodes", len(steppers), n)
	}
	maxSlots := e.MaxSlots
	if maxSlots <= 0 {
		maxSlots = DefaultMaxSlots
	}

	// Split the population: node i is stepped iff steppers[i] is non-nil;
	// every other node is a goroutine Program node (a nil Program powers
	// down immediately). Only program nodes touch the barrier.
	nSteppers := 0
	if steppers != nil {
		for i := 0; i < n; i++ {
			if steppers[i] != nil {
				nSteppers++
			}
		}
	}
	nProgs := n - nSteppers

	rs := &roundState{
		pending: make([]action, n),
		results: make([]phy.Reception, n),
		done:    make([]atomic.Bool, n),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	rec := &panicRecorder{}
	nodeParams := e.field.Params()
	if e.NodeParams != nil {
		nodeParams = *e.NodeParams
	}
	var sr *steppedRun
	if nSteppers > 0 {
		sr = newSteppedRun(e, rs, steppers, nodeParams, startSlot)
	}
	isStepped := func(i int) bool { return sr != nil && sr.state[i] != stepNone }

	// Barrier selection: per-region shards at crowd scale (or on request),
	// the single packed word otherwise. Only goroutine nodes arrive at the
	// barrier, so both the mode choice and the per-shard expectations count
	// program nodes only. shardExpect mirrors, per shard, the live
	// non-idling program-node count the engine tracks globally in
	// expectCount; both are engine-private and updated in the quiescent
	// window only.
	var shardExpect []int32
	if nProgs > 0 && (e.Barrier == BarrierSharded || (e.Barrier == BarrierAuto && nProgs >= shardedBarrierMinNodes)) {
		if e.sharding == nil {
			e.sharding = buildShardPlan(e.field.Positions(), e.field.Params().RT())
		}
		rs.shards = make([]gateShard, e.sharding.count)
		rs.shardOf = e.sharding.of
		shardExpect = make([]int32, e.sharding.count)
		for i := 0; i < n; i++ {
			if !isStepped(i) {
				shardExpect[rs.shardOf[i]]++
			}
		}
	}
	rs.openGates(nProgs, shardExpect)
	rel := make(chan struct{})
	rs.release.Store(&rel)

	var wg sync.WaitGroup
	if nProgs > 0 {
		rs.idleWake = make([]chan struct{}, n)
		// One contiguous Ctx arena instead of one allocation per node, and
		// one flat generator arena instead of two allocations per node.
		ctxs := make([]Ctx, n)
		rands := rng.Streams(e.seed, n)
		wg.Add(nProgs)
		for i := 0; i < n; i++ {
			if isStepped(i) {
				continue
			}
			rs.idleWake[i] = make(chan struct{}, 1)
			nctx := &ctxs[i]
			*nctx = Ctx{
				id:      i,
				engine:  e,
				params:  nodeParams,
				Rand:    rands[i],
				rs:      rs,
				slot:    startSlot,
				crashAt: math.MaxInt,
			}
			if e.Faults != nil {
				nctx.crashAt = e.Faults.CrashSlot(i)
			}
			var prog Program
			if programs != nil {
				prog = programs[i]
			}
			go func(i int, nctx *Ctx, prog Program) {
				defer wg.Done()
				defer func() {
					r := recover()
					if r != nil {
						if _, isStop := r.(stopSignal); !isStop {
							rec.record(i, r)
						}
					}
					// Terminating counts as this node's arrival for the slot
					// in progress; the done flag is set first so the engine
					// retires the node before resolving.
					rs.done[i].Store(true)
					rs.arrive(i)
				}()
				if prog != nil {
					prog(nctx)
				}
			}(i, nctx, prog)
		}
	}

	abort := func() {
		rs.aborted.Store(true)
		close(rs.stop)
		// Free every parked node: steps sample the abort flag before
		// blocking, so anything released here unwinds at its next step.
		// Stepped nodes need no unwinding — the engine simply stops driving
		// them.
		close(*rs.release.Load())
		wg.Wait()
	}

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	// nActive counts all live nodes and decides termination; progActive and
	// progIdling track the goroutine subset (live, and parked mid-IdleFor)
	// that the barrier bookkeeping is about. The wheel holds every sleeping
	// node — both forms — keyed by the slot it acts again in.
	nActive := n
	progActive := nProgs
	progIdling := 0
	expectCount := nProgs
	wheel := newWakeWheel()
	due := make([]int32, 0, 64)

	// The run's slot arena: action and reception buffers sized for every
	// node once up front, and the field's struct-of-arrays / grid-bin
	// scratch presized to match, so the steady-state slot pipeline —
	// collect, resolve, deliver — allocates nothing.
	txs := make([]phy.Tx, 0, n)
	rxs := make([]phy.Rx, 0, n)
	e.field.Reserve(n, n)

	slot := startSlot
	for used := 0; ; used++ {
		txs, rxs = txs[:0], rxs[:0]
		if expectCount > 0 {
			// One wake token per slot: the last arrival of the barrier.
			// From here until the release at the bottom of the loop every
			// live program node is parked, so the engine owns all shared
			// state.
			select {
			case <-rs.wake:
			case <-ctx.Done():
				abort()
				return slot - startSlot, ctx.Err()
			}
		}
		// Drive the awake stepped nodes inline: each deposits its action for
		// this slot into pending, exactly where a goroutine node's primitive
		// would have put it. This runs inside the quiescent window, after
		// the barrier wake above (trivially so when no program arrivals are
		// expected).
		if sr != nil && len(sr.awake) > 0 {
			sr.stepAll(slot, rec)
		}
		if pErr := rec.get(); pErr != nil {
			abort()
			return slot - startSlot, pErr
		}
		if expectCount > 0 || (sr != nil && len(sr.awake) > 0) {
			// Collect the slot while retiring terminated nodes and
			// registering fresh IdleFor batches — one fused pass over the
			// node set.
			for i := 0; i < n; i++ {
				if !active[i] {
					continue
				}
				if rs.done[i].Load() {
					active[i] = false
					nActive--
					if isStepped(i) {
						sr.state[i] = stepDead
					} else {
						progActive--
						if shardExpect != nil {
							shardExpect[rs.shardOf[i]]--
						}
					}
					continue
				}
				switch rs.pending[i].kind {
				case actTransmit:
					txs = append(txs, phy.Tx{Node: i, Channel: rs.pending[i].ch, Msg: rs.pending[i].msg})
				case actListen:
					rxs = append(rxs, phy.Rx{Node: i, Channel: rs.pending[i].ch})
				case actIdleLong:
					// A fresh IdleFor batch: the node idles from this slot
					// through slot+count-1 and sleeps through those slots.
					end := slot + rs.pending[i].count - 1
					wheel.add(i, end+1)
					rs.pending[i].kind = actIdleHold
					if isStepped(i) {
						sr.state[i] = stepSleeping
					} else {
						progIdling++
						if shardExpect != nil {
							shardExpect[rs.shardOf[i]]--
						}
					}
				}
			}
			if sr != nil {
				sr.compact()
			}
			if nActive == 0 {
				return slot - startSlot, nil
			}
		}
		// else: every live node sleeps mid-IdleFor — nothing can arrive,
		// terminate, or panic, so the engine advances the (empty) slot
		// directly.
		if err := ctx.Err(); err != nil {
			abort()
			return slot - startSlot, err
		}
		if used >= maxSlots {
			abort()
			return slot - startSlot, fmt.Errorf("sim: exceeded MaxSlots = %d with %d nodes still live", maxSlots, nActive)
		}

		if e.Faults != nil {
			e.Faults.BeginSlot(slot, e.field)
			// Byzantine corruption point: each transmission may be rewritten
			// or removed before the SINR layer sees it. txs is in node order
			// (the collect pass scans nodes ascending), so the injector's
			// call sequence is identical across exec modes and worker counts.
			kept := txs[:0]
			for _, tx := range txs {
				if ftx, ok := e.Faults.FilterTransmission(slot, tx); ok {
					kept = append(kept, ftx)
				}
			}
			txs = kept
		}
		recs := e.field.Resolve(txs, rxs)
		if e.Faults != nil {
			// Apply the loss process before Trace so observers and nodes
			// see the same post-fault world. recs is the field's scratch;
			// rewriting it in place is safe until the next Resolve.
			for k := range recs {
				recs[k] = e.Faults.FilterReception(slot, rxs[k].Node, rxs[k].Channel, recs[k])
			}
		}
		if e.Trace != nil {
			e.Trace(slot, txs, rxs, recs)
		}

		// Deliver outcomes. Only listeners observe their result slot —
		// Transmit and Idle discard it — so non-listen entries keep their
		// stale contents untouched.
		ri := 0
		for i := 0; i < n && ri < len(rxs); i++ {
			if active[i] && rs.pending[i].kind == actListen {
				rs.results[i] = recs[ri]
				ri++
			}
		}
		slot++

		// Open the next slot and release everyone at once. Order matters:
		// expect and arrived must be current and the new release channel
		// installed before the old one closes, because released nodes
		// re-enter the barrier immediately. Sleepers due now pop off the
		// wheel: program nodes rejoin the barrier before the release and
		// are woken through their private channels after it; stepped nodes
		// rejoin the awake list and get stepped at the top of the loop.
		due = wheel.pop(slot, due[:0])
		endingProgs := 0
		for _, id := range due {
			i := int(id)
			if isStepped(i) {
				sr.state[i] = stepAwake
				sr.awake = append(sr.awake, id)
			} else {
				endingProgs++
				progIdling--
				if shardExpect != nil {
					shardExpect[rs.shardOf[i]]++
				}
			}
		}
		expectCount = progActive - progIdling
		rs.openGates(expectCount, shardExpect)
		next := make(chan struct{})
		old := rs.release.Load()
		rs.release.Store(&next)
		close(*old)
		if endingProgs > 0 {
			for _, id := range due {
				if !isStepped(int(id)) {
					rs.idleWake[id] <- struct{}{}
				}
			}
		}
	}
}

// Ctx is a node's handle to the simulator, passed to its Program.
type Ctx struct {
	// Rand is this node's private random stream.
	Rand *rand.Rand

	id     int
	engine *Engine
	params model.Params
	rs     *roundState
	slot   int
	// crashAt is the first slot at which this node is dead (fault
	// injection); math.MaxInt for immortal nodes. A node at or past its
	// crash slot unwinds at its next primitive instead of acting — an
	// idling node is externally indistinguishable from a dead one, so the
	// boundary of an IdleFor batch is a faithful crash point.
	crashAt int
}

// ID returns this node's index (the model's unique node ID).
func (c *Ctx) ID() int { return c.id }

// Params returns the model parameters known to the node (SINR ranges,
// channel count, and the polynomial estimate of n).
func (c *Ctx) Params() model.Params { return c.params }

// Slot returns the number of completed slots from this node's perspective.
func (c *Ctx) Slot() int { return c.slot }

// Transmit sends msg on the given channel for one slot. A transmitting node
// learns nothing about concurrent events (no transmitter-side detection).
func (c *Ctx) Transmit(channel int, msg any) {
	c.step(action{kind: actTransmit, ch: channel, msg: msg})
}

// Listen receives on the given channel for one slot and returns what was
// observed.
func (c *Ctx) Listen(channel int) phy.Reception {
	return c.step(action{kind: actListen, ch: channel, msg: nil})
}

// Idle does nothing for one slot (radio off).
func (c *Ctx) Idle() {
	c.step(action{kind: actIdle})
}

// IdleFor idles for k consecutive slots. Long batches cost one
// synchronization instead of one per slot: the node leaves the barrier for
// the batch's span and is woken when it ends, which is what makes the
// TDMA-stride and stage-skipping idles of the pipeline cheap.
func (c *Ctx) IdleFor(k int) {
	if k == 1 {
		c.Idle()
		return
	}
	if k <= 0 {
		return
	}
	rs := c.rs
	if rs.aborted.Load() {
		panic(stopSignal{})
	}
	if c.slot >= c.crashAt {
		panic(stopSignal{})
	}
	rs.pending[c.id] = action{kind: actIdleLong, count: k}
	rs.arrive(c.id)
	select {
	case <-rs.idleWake[c.id]:
		// The select can win this race against a concurrent abort; don't
		// resume a run the engine already gave up on.
		if rs.aborted.Load() {
			panic(stopSignal{})
		}
	case <-rs.stop:
		panic(stopSignal{})
	}
	c.slot += k
}

// Emit records an instrumentation event tagged with the current slot.
func (c *Ctx) Emit(name string, value int) {
	c.engine.emit(Event{Slot: c.slot, Node: c.id, Name: name, Value: value})
}

func (c *Ctx) step(a action) phy.Reception {
	rs := c.rs
	// An abort unwinds here, without arriving, so a stale action never
	// lands in a live barrier. Checking a flag (instead of selecting on
	// stop below) keeps the hot path on a plain channel receive; abort
	// closes the current release channel, so a node parked below still
	// wakes and unwinds on its next step.
	if rs.aborted.Load() {
		panic(stopSignal{})
	}
	// A crashed node powers down instead of acting: the stop-signal unwind
	// runs the goroutine's termination path, so the engine retires it like
	// a program that returned.
	if c.slot >= c.crashAt {
		panic(stopSignal{})
	}
	// The release channel must be sampled before arriving: after the
	// arrival that completes the barrier, the engine may swap in the next
	// slot's channel at any moment.
	rel := rs.release.Load()
	rs.pending[c.id] = a
	rs.arrive(c.id)
	<-*rel
	// An abort also closes the release channel to free parked nodes; their
	// slot was never resolved, so unwind instead of handing the program a
	// stale reception from an earlier slot.
	if rs.aborted.Load() {
		panic(stopSignal{})
	}
	c.slot++
	return rs.results[c.id]
}
