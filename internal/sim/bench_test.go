package sim

import (
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
)

// BenchmarkEngineSlotThroughput measures raw engine overhead: n goroutine
// nodes idling/listening through slots.
func benchEngine(b *testing.B, n int) {
	b.Helper()
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%32) * 0.2, Y: float64(i/32) * 0.2}
	}
	f := phy.NewField(model.Default(4, n), pos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(f, uint64(i))
		progs := make([]Program, n)
		for j := range progs {
			progs[j] = func(ctx *Ctx) {
				for s := 0; s < 100; s++ {
					if ctx.Rand.Float64() < 0.1 {
						ctx.Transmit(ctx.Rand.Intn(4), s)
					} else {
						ctx.Listen(ctx.Rand.Intn(4))
					}
				}
			}
		}
		if _, err := e.Run(progs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(100*n*b.N)/b.Elapsed().Seconds(), "node-slots/s")
}

func BenchmarkEngine64Nodes100Slots(b *testing.B)  { benchEngine(b, 64) }
func BenchmarkEngine256Nodes100Slots(b *testing.B) { benchEngine(b, 256) }

// BenchmarkEngineBarrier isolates the slot-barrier cost at a node count
// where BarrierAuto shards: the same chatter workload under the forced
// global single-word barrier and the sharded epoch-counter barrier. The gap
// between the two sub-benches is the barrier contention term (visible on
// multicore runners; on one core the two are equivalent).
func benchEngineBarrier(b *testing.B, n int, mode BarrierMode) {
	b.Helper()
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%64) * 0.2, Y: float64(i/64) * 0.2}
	}
	f := phy.NewField(model.Default(4, n), pos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(f, uint64(i))
		e.Barrier = mode
		progs := make([]Program, n)
		for j := range progs {
			progs[j] = func(ctx *Ctx) {
				for s := 0; s < 50; s++ {
					if ctx.Rand.Float64() < 0.1 {
						ctx.Transmit(ctx.Rand.Intn(4), s)
					} else {
						ctx.Listen(ctx.Rand.Intn(4))
					}
				}
			}
		}
		if _, err := e.Run(progs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50*n*b.N)/b.Elapsed().Seconds(), "node-slots/s")
}

// benchChatter is the Stepper form of the barrier bench workload: the same
// draws, no goroutine or barrier involved.
type benchChatter struct {
	rounds, s int
}

func (c *benchChatter) Step(sc *StepCtx) {
	if c.s >= c.rounds {
		sc.Done()
		return
	}
	s := c.s
	c.s++
	if sc.Rand.Float64() < 0.1 {
		sc.Transmit(sc.Rand.Intn(4), s)
	} else {
		sc.Listen(sc.Rand.Intn(4))
	}
}

// benchEngineStepped drives the barrier bench workload in the goroutine-free
// stepped mode: there is no slot barrier at all, so the gap against the
// barrier sub-benches is the whole goroutine park/unpark + barrier term.
func benchEngineStepped(b *testing.B, n int) {
	b.Helper()
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%64) * 0.2, Y: float64(i/64) * 0.2}
	}
	f := phy.NewField(model.Default(4, n), pos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(f, uint64(i))
		steppers := make([]Stepper, n)
		arena := make([]benchChatter, n)
		for j := range steppers {
			arena[j] = benchChatter{rounds: 50}
			steppers[j] = &arena[j]
		}
		if _, err := e.RunSteppers(steppers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50*n*b.N)/b.Elapsed().Seconds(), "node-slots/s")
}

func BenchmarkEngineBarrier(b *testing.B) {
	b.Run("global/n=4k", func(b *testing.B) { benchEngineBarrier(b, 4096, BarrierGlobal) })
	b.Run("sharded/n=4k", func(b *testing.B) { benchEngineBarrier(b, 4096, BarrierSharded) })
	b.Run("stepped/n=4k", func(b *testing.B) { benchEngineStepped(b, 4096) })
	b.Run("sharded/n=65k", func(b *testing.B) { benchEngineBarrier(b, 65536, BarrierSharded) })
	b.Run("stepped/n=65k", func(b *testing.B) { benchEngineStepped(b, 65536) })
}
