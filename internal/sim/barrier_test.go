package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
)

// transcriptHash runs the given programs and folds every resolved slot —
// transmissions, listens, and reception outcomes in engine order — plus the
// sorted event log into one hash. Two runs with equal hashes behaved
// identically slot by slot.
func transcriptHash(t *testing.T, f *phy.Field, seed uint64, progs []Program) (uint64, int) {
	t.Helper()
	return engineTranscriptHash(t, NewEngine(f, seed), progs)
}

// engineTranscriptHash is transcriptHash over a caller-configured engine
// (barrier mode, slot caps).
func engineTranscriptHash(t *testing.T, e *Engine, progs []Program) (uint64, int) {
	t.Helper()
	h := fnv.New64a()
	e.Trace = func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
		fmt.Fprintf(h, "slot %d|", slot)
		for _, tx := range txs {
			fmt.Fprintf(h, "t%d.%d:%v|", tx.Node, tx.Channel, tx.Msg)
		}
		for i, rx := range rxs {
			r := recs[i]
			fmt.Fprintf(h, "r%d.%d:%v,%d,%x,%x|", rx.Node, rx.Channel,
				r.Decoded, r.From,
				math.Float64bits(r.SignalPower), math.Float64bits(r.Interference))
		}
	}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	evs := e.Events()
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Name < b.Name
	})
	for _, ev := range evs {
		fmt.Fprintf(h, "e%d.%d.%s.%d|", ev.Slot, ev.Node, ev.Name, ev.Value)
	}
	return h.Sum64(), slots
}

func chatterPrograms(n, channels, slots int, emit bool) []Program {
	progs := make([]Program, n)
	for i := range progs {
		progs[i] = func(ctx *Ctx) {
			heard := 0
			for s := 0; s < slots; s++ {
				switch {
				case ctx.Rand.Float64() < 0.25:
					ctx.Transmit(ctx.Rand.Intn(channels), ctx.ID()*1000+s)
				case ctx.Rand.Float64() < 0.2:
					ctx.IdleFor(1 + ctx.Rand.Intn(5))
				default:
					if ctx.Listen(ctx.Rand.Intn(channels)).Decoded {
						heard++
					}
				}
			}
			if emit {
				ctx.Emit("heard", heard)
			}
		}
	}
	return progs
}

// TestGoldenTranscript is the seed-determinism contract for the barrier
// engine and resolver stack: equal seeds produce bit-identical slot
// transcripts and event logs, run after run, with or without listener
// fan-out in the SINR layer.
func TestGoldenTranscript(t *testing.T) {
	const n = 64
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%8) * 0.3, Y: float64(i/8) * 0.3}
	}
	p := model.Default(3, n)

	mk := func(parallelism int) (uint64, int) {
		f := phy.NewField(p, pos)
		f.SetParallelism(parallelism)
		return transcriptHash(t, f, 99, chatterPrograms(n, 3, 40, true))
	}
	h1, s1 := mk(1)
	h2, s2 := mk(1)
	h8, s8 := mk(8)
	if h1 != h2 || s1 != s2 {
		t.Errorf("equal seeds diverged: %x/%d vs %x/%d", h1, s1, h2, s2)
	}
	if h1 != h8 || s1 != s8 {
		t.Errorf("parallel resolution changed the transcript: %x/%d vs %x/%d", h1, s1, h8, s8)
	}
	if hOther, _ := func() (uint64, int) {
		f := phy.NewField(p, pos)
		return transcriptHash(t, f, 100, chatterPrograms(n, 3, 40, true))
	}(); hOther == h1 {
		t.Error("different seeds produced identical transcripts")
	}
}

// TestIdleForMatchesIdleLoop: the batched IdleFor fast path is
// transcript-equivalent to idling slot by slot.
func TestIdleForMatchesIdleLoop(t *testing.T) {
	const n = 16
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i) * 0.2}
	}
	p := model.Default(2, n)

	run := func(batched bool) (uint64, int) {
		progs := make([]Program, n)
		for i := range progs {
			progs[i] = func(ctx *Ctx) {
				for s := 0; s < 12; s++ {
					k := 1 + ctx.Rand.Intn(7)
					switch {
					case ctx.Rand.Float64() < 0.4:
						if batched {
							ctx.IdleFor(k)
						} else {
							for j := 0; j < k; j++ {
								ctx.Idle()
							}
						}
					case ctx.Rand.Float64() < 0.5:
						ctx.Transmit(ctx.Rand.Intn(2), s)
					default:
						ctx.Listen(ctx.Rand.Intn(2))
					}
				}
				ctx.Emit("done", ctx.Slot())
			}
		}
		return transcriptHash(t, phy.NewField(p, pos), 17, progs)
	}
	hBatch, sBatch := run(true)
	hLoop, sLoop := run(false)
	if hBatch != hLoop || sBatch != sLoop {
		t.Fatalf("IdleFor batches diverge from idle loops: %x/%d vs %x/%d", hBatch, sBatch, hLoop, sLoop)
	}
}

// TestAllNodesIdle: when every live node is mid-IdleFor the engine
// fast-forwards slots without a barrier round; slot accounting, traces and
// wakeups stay exact.
func TestAllNodesIdle(t *testing.T) {
	f := lineField(3, 0.4, 1)
	e := NewEngine(f, 1)
	var traced int
	e.Trace = func(int, []phy.Tx, []phy.Rx, []phy.Reception) { traced++ }
	after := make([]int, 3)
	progs := []Program{
		func(ctx *Ctx) { ctx.IdleFor(50); after[0] = ctx.Slot() },
		func(ctx *Ctx) { ctx.IdleFor(30); ctx.IdleFor(20); after[1] = ctx.Slot() },
		func(ctx *Ctx) { ctx.Idle(); ctx.IdleFor(49); after[2] = ctx.Slot() },
	}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 50 || traced != 50 {
		t.Errorf("slots = %d, traced = %d, want 50", slots, traced)
	}
	for i, got := range after {
		if got != 50 {
			t.Errorf("node %d resumed at slot %d, want 50", i, got)
		}
	}
}

// TestIdlerOutlivesEveryone: a long idle batch must keep the run alive
// after all other programs returned.
func TestIdlerOutlivesEveryone(t *testing.T) {
	f := lineField(2, 0.4, 1)
	e := NewEngine(f, 1)
	woke := false
	progs := []Program{
		func(ctx *Ctx) { ctx.Transmit(0, 1) },
		func(ctx *Ctx) { ctx.IdleFor(25); woke = true },
	}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 25 || !woke {
		t.Errorf("slots = %d, woke = %v", slots, woke)
	}
}

// TestCancelDuringIdleBatch: cancellation reaches nodes parked inside an
// IdleFor batch.
func TestCancelDuringIdleBatch(t *testing.T) {
	f := lineField(2, 0.4, 1)
	e := NewEngine(f, 1)
	ctx, cancel := context.WithCancel(context.Background())
	progs := []Program{
		func(c *Ctx) { c.IdleFor(1 << 20) },
		func(c *Ctx) {
			for i := 0; ; i++ {
				if i == 10 {
					cancel()
				}
				c.Idle()
			}
		},
	}
	if _, err := e.RunContext(ctx, progs); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestZeroNodeRun: an empty field completes immediately with zero slots
// instead of fast-forwarding empty slots to the MaxSlots guard.
func TestZeroNodeRun(t *testing.T) {
	f := phy.NewField(model.Default(1, 2), nil)
	e := NewEngine(f, 1)
	slots, err := e.Run(nil)
	if err != nil || slots != 0 {
		t.Errorf("Run = %d, %v; want 0, nil", slots, err)
	}
}

// TestAbortDeliversNoStaleReception: when the engine aborts, nodes parked
// at the barrier are freed but their slot was never resolved — step must
// unwind, not hand the program a reception left over from an earlier slot.
func TestAbortDeliversNoStaleReception(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	e.MaxSlots = 2
	var msgs []any
	progs := []Program{
		func(ctx *Ctx) {
			for i := 0; ; i++ {
				ctx.Transmit(0, i)
			}
		},
		func(ctx *Ctx) {
			for {
				if rec := ctx.Listen(0); rec.Decoded {
					msgs = append(msgs, rec.Msg)
				}
			}
		},
	}
	_, err := e.Run(progs)
	if err == nil {
		t.Fatal("expected MaxSlots abort")
	}
	// Exactly the two resolved slots' messages; a stale third delivery
	// would duplicate slot 1's message.
	if len(msgs) != 2 || msgs[0] != 0 || msgs[1] != 1 {
		t.Errorf("listener observed %v, want [0 1]", msgs)
	}
}

// TestMaxSlotsDuringIdleFastForward: the MaxSlots guard also fires while
// the engine is fast-forwarding an all-idle stretch.
func TestMaxSlotsDuringIdleFastForward(t *testing.T) {
	f := lineField(2, 0.4, 1)
	e := NewEngine(f, 1)
	e.MaxSlots = 40
	progs := []Program{
		func(ctx *Ctx) { ctx.IdleFor(1 << 20) },
		func(ctx *Ctx) { ctx.IdleFor(1 << 20) },
	}
	_, err := e.Run(progs)
	if err == nil {
		t.Fatal("expected MaxSlots error")
	}
}
