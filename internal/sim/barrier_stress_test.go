package sim

import (
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
)

// This file stresses the sharded slot barrier (barrier.go). The CI race leg
// runs it at -cpu 1,2,8 so the epoch-counter arrival path — shard
// completion, root combine, termination arrivals, idle re-entry, abort —
// is race-proven at several schedulings.

// stressField spreads n nodes over a multi-region strip so the shard plan
// gets real region structure (several grid cells), unlike the single-cell
// Crowd layout.
func stressField(n, channels int) *phy.Field {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%64) * 0.3, Y: float64(i/64) * 0.3}
	}
	return phy.NewField(model.Default(channels, max(n, 2)), pos)
}

// stressPrograms mixes every primitive the barrier mediates: transmits,
// listens, single idles, batched IdleFor (leaves the barrier), and early
// returns (termination arrivals through the deferred cleanup path).
func stressPrograms(n, channels, slots int) []Program {
	progs := make([]Program, n)
	for i := range progs {
		progs[i] = func(ctx *Ctx) {
			heard := 0
			for s := 0; s < slots; s++ {
				switch {
				case ctx.Rand.Float64() < 0.05:
					return // early termination mid-run
				case ctx.Rand.Float64() < 0.3:
					ctx.Transmit(ctx.Rand.Intn(channels), ctx.ID()*1000+s)
				case ctx.Rand.Float64() < 0.2:
					ctx.IdleFor(1 + ctx.Rand.Intn(4))
				case ctx.Rand.Float64() < 0.1:
					ctx.Idle()
				default:
					if ctx.Listen(ctx.Rand.Intn(channels)).Decoded {
						heard++
					}
				}
			}
			ctx.Emit("heard", heard)
		}
	}
	return progs
}

// TestBarrierStress runs the stress mix at several node counts under both
// barrier implementations and requires bit-identical transcripts and slot
// counts. Run it with -race -cpu 1,2,8 (the CI race leg does) to prove the
// sharded arrival path at GOMAXPROCS 1, 2 and 8.
func TestBarrierStress(t *testing.T) {
	for _, n := range []int{1, 2, 256, 4096} {
		slots := 24
		if n >= 4096 {
			slots = 8 // keep the race-instrumented run affordable
		}
		run := func(mode BarrierMode) (uint64, int) {
			e := NewEngine(stressField(n, 3), 7)
			e.Barrier = mode
			return engineTranscriptHash(t, e, stressPrograms(n, 3, slots))
		}
		hg, sg := run(BarrierGlobal)
		hs, ss := run(BarrierSharded)
		if hg != hs || sg != ss {
			t.Errorf("n=%d: sharded barrier diverged from global: %x/%d vs %x/%d", n, hs, ss, hg, sg)
		}
		// And the sharded path is itself deterministic run over run.
		if h2, s2 := run(BarrierSharded); h2 != hs || s2 != ss {
			t.Errorf("n=%d: sharded barrier not deterministic: %x/%d vs %x/%d", n, h2, s2, hs, ss)
		}
	}
}

// TestShardedBarrierTranscripts is the golden-transcript determinism
// contract for the barrier modes: on the chatter workload the auto, global
// and sharded barriers produce bit-identical transcripts — including event
// logs — at a node count where BarrierAuto actually shards.
func TestShardedBarrierTranscripts(t *testing.T) {
	const n = shardedBarrierMinNodes + 512
	run := func(mode BarrierMode) (uint64, int) {
		e := NewEngine(stressField(n, 2), 41)
		e.Barrier = mode
		return engineTranscriptHash(t, e, chatterPrograms(n, 2, 16, true))
	}
	hAuto, sAuto := run(BarrierAuto)
	hGlobal, sGlobal := run(BarrierGlobal)
	hSharded, sSharded := run(BarrierSharded)
	if hAuto != hGlobal || sAuto != sGlobal {
		t.Errorf("auto vs global: %x/%d vs %x/%d", hAuto, sAuto, hGlobal, sGlobal)
	}
	if hSharded != hGlobal || sSharded != sGlobal {
		t.Errorf("sharded vs global: %x/%d vs %x/%d", hSharded, sSharded, hGlobal, sGlobal)
	}
}

// TestShardedBarrierAbort: a MaxSlots abort with the sharded barrier frees
// every parked node — including one mid-IdleFor — and the stale termination
// arrivals that follow must not wedge or wake a dead run.
func TestShardedBarrierAbort(t *testing.T) {
	e := NewEngine(stressField(64, 2), 3)
	e.Barrier = BarrierSharded
	e.MaxSlots = 12
	progs := make([]Program, 64)
	for i := range progs {
		switch i % 3 {
		case 0:
			progs[i] = func(ctx *Ctx) { ctx.IdleFor(1 << 20) }
		case 1:
			progs[i] = func(ctx *Ctx) {
				for s := 0; ; s++ {
					ctx.Transmit(0, s)
				}
			}
		default:
			progs[i] = func(ctx *Ctx) {
				for {
					ctx.Listen(1)
				}
			}
		}
	}
	if _, err := e.Run(progs); err == nil {
		t.Fatal("expected MaxSlots abort")
	}
}

// TestShardPlanShape: the plan covers every node, shard indices are dense
// and balanced within one chunk, and the count respects the cap — for both
// a spread deployment (many regions) and a single-cell crowd.
func TestShardPlanShape(t *testing.T) {
	for _, tc := range []struct {
		name string
		pos  func(n int) []geo.Point
	}{
		{"spread", func(n int) []geo.Point {
			pos := make([]geo.Point, n)
			for i := range pos {
				pos[i] = geo.Point{X: float64(i%50) * 0.7, Y: float64(i/50) * 0.7}
			}
			return pos
		}},
		{"crowd", func(n int) []geo.Point {
			pos := make([]geo.Point, n)
			for i := range pos {
				pos[i] = geo.Point{X: float64(i) * 1e-4}
			}
			return pos
		}},
	} {
		for _, n := range []int{1, 2, 300, 5000, 40000} {
			plan := buildShardPlan(tc.pos(n), 1.0)
			if len(plan.of) != n {
				t.Fatalf("%s n=%d: plan covers %d nodes", tc.name, n, len(plan.of))
			}
			if plan.count < 1 || plan.count > maxBarrierShards {
				t.Fatalf("%s n=%d: shard count %d out of range", tc.name, n, plan.count)
			}
			members := make([]int, plan.count)
			for node, s := range plan.of {
				if s < 0 || int(s) >= plan.count {
					t.Fatalf("%s n=%d: node %d in shard %d of %d", tc.name, n, node, s, plan.count)
				}
				members[s]++
			}
			lo, hi := n, 0
			for _, m := range members {
				if m < lo {
					lo = m
				}
				if m > hi {
					hi = m
				}
			}
			if hi == 0 || hi-lo > (n+plan.count-1)/plan.count {
				t.Errorf("%s n=%d: unbalanced shards: min %d max %d over %d shards", tc.name, n, lo, hi, plan.count)
			}
		}
	}
}
