package sim

// This file implements the goroutine-free execution mode: Stepper nodes
// hold their protocol state in explicit structs and are driven inline by
// the engine, one Step call per slot, instead of running as parked
// goroutines. At crowd scale this removes the per-node stack (kilobytes per
// node) and the park/unpark pair per node per slot that dominate the
// goroutine mode's slot cost.
//
// Equivalence by construction: a Step call deposits its action into the
// same per-node pending slot a goroutine's primitive would have, the engine
// scans pending in node order either way, and all randomness comes from the
// same per-node stream — so for a correctly ported protocol the resolved
// transcript is bit-identical to the goroutine form, regardless of how many
// workers drive the Step calls. TestSteppedEngineEquivalence and the
// facade's TestAggregateSteppedIdentity pin this.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/rng"
)

// Stepper is the goroutine-free form of a node protocol. The engine calls
// Step once per slot in which the node is awake; each call must perform
// exactly one primitive on sc — Transmit, Listen, Idle, or IdleFor — or
// call Done to power the node down for the rest of the run. After an
// IdleFor(k), the next Step call comes k slots later.
//
// A Stepper must draw randomness only from sc.Rand and must not retain sc
// across calls. If it listened in the previous acting slot, sc.Prev holds
// that slot's reception; consume it before doing anything else (including
// drawing randomness) to stay bit-identical with the equivalent goroutine
// Program, whose post-Listen code runs before its next primitive.
type Stepper interface {
	Step(sc *StepCtx)
}

// Frag is a resumable protocol fragment used to compose Steppers out of
// stage-sized pieces. Feed either deposits exactly one primitive on sc and
// returns false (the fragment still owns the node's slots), or finalizes
// without acting and returns true — the caller then advances to the next
// fragment within the same Step call, so stage boundaries consume no extra
// slots, exactly like consecutive calls in a goroutine Program.
type Frag interface {
	Feed(sc *StepCtx) bool
}

// IdleFrag is the Frag form of "idle through a stage budget": one
// IdleFor(K) batch, then done. A K ≤ 0 finalizes immediately without
// consuming a slot, mirroring goroutine IdleFor's no-op on k ≤ 0.
type IdleFrag struct {
	K    int
	done bool
}

// Feed implements Frag.
func (f *IdleFrag) Feed(sc *StepCtx) bool {
	if f.done || f.K <= 0 {
		return true
	}
	f.done = true
	sc.IdleFor(f.K)
	return false
}

// StepCtx is a stepped node's handle to the simulator — the Stepper-mode
// counterpart of Ctx. The engine owns it; Steppers use it only inside Step.
type StepCtx struct {
	// Rand is this node's private random stream — the same stream the
	// equivalent goroutine Program would draw from.
	Rand *rand.Rand

	id      int
	engine  *Engine
	params  model.Params
	rs      *roundState
	stepper Stepper
	slot    int
	crashAt int
	acted   bool
	ended   bool
}

// ID returns this node's index (the model's unique node ID).
func (c *StepCtx) ID() int { return c.id }

// Params returns the model parameters known to the node.
func (c *StepCtx) Params() model.Params { return c.params }

// Slot returns the slot the current Step call is acting in. It matches
// Ctx.Slot at the same point of the equivalent goroutine Program: the code
// that runs after a Listen returns (and before the next primitive) sees the
// slot after the listen.
func (c *StepCtx) Slot() int { return c.slot }

// Prev returns the reception delivered to this node's most recent Listen.
// It is only meaningful at the start of the Step call that follows a Listen;
// after a Transmit or Idle the contents are stale.
func (c *StepCtx) Prev() phy.Reception { return c.rs.results[c.id] }

// Transmit sends msg on the given channel for this slot.
func (c *StepCtx) Transmit(channel int, msg any) {
	c.put(action{kind: actTransmit, ch: channel, msg: msg})
}

// Listen receives on the given channel for this slot; the reception is
// available as Prev at the start of the next Step call.
func (c *StepCtx) Listen(channel int) {
	c.put(action{kind: actListen, ch: channel})
}

// Idle does nothing for this slot (radio off).
func (c *StepCtx) Idle() {
	c.put(action{kind: actIdle})
}

// IdleFor idles for k consecutive slots; the next Step call comes k slots
// later. k ≤ 0 is a no-op (the Step call must still act), matching the
// goroutine primitive.
func (c *StepCtx) IdleFor(k int) {
	if k == 1 {
		c.Idle()
		return
	}
	if k <= 0 {
		return
	}
	c.put(action{kind: actIdleLong, count: k})
}

// Done powers the node down for the remainder of the run, like a goroutine
// Program returning. It is final and performs no primitive: a Step call
// must either act or call Done, never both.
func (c *StepCtx) Done() {
	if c.acted {
		panic(fmt.Sprintf("sim: node %d Stepper called Done after acting in the same Step", c.id))
	}
	c.ended = true
}

// Emit records an instrumentation event tagged with the current slot.
func (c *StepCtx) Emit(name string, value int) {
	c.engine.emit(Event{Slot: c.slot, Node: c.id, Name: name, Value: value})
}

func (c *StepCtx) put(a action) {
	if c.acted || c.ended {
		panic(fmt.Sprintf("sim: node %d Stepper performed a second primitive in one Step", c.id))
	}
	c.acted = true
	c.rs.pending[c.id] = a
}

// stepNode drives one awake stepped node through one slot: crash check,
// then Step, then the act-or-done contract check. It writes only node-local
// state (sc, pending[id], done[id]), so distinct nodes may be stepped from
// distinct workers.
func (c *StepCtx) stepNode(slot int) {
	c.slot = slot
	if slot >= c.crashAt {
		// A crashed node powers down instead of acting — the same boundary
		// a goroutine node observes at its next primitive (or at the end of
		// the IdleFor batch it slept through).
		c.rs.done[c.id].Store(true)
		return
	}
	c.acted = false
	c.stepper.Step(c)
	if c.ended {
		c.rs.done[c.id].Store(true)
		return
	}
	if !c.acted {
		panic("sim: Stepper.Step returned without acting (must Transmit, Listen, Idle, IdleFor, or Done)")
	}
}

// Stepped-node scheduling states, tracked per node in steppedRun.state.
// stepNone marks nodes that are not stepped at all (goroutine or absent),
// so state doubles as the "is this node stepped" map.
const (
	stepNone uint8 = iota
	stepAwake
	stepSleeping
	stepDead
)

// panicRecorder captures the first panic out of any node — goroutine or
// step worker — for the engine to surface as the run error.
type panicRecorder struct {
	mu    sync.Mutex
	first error
}

func (p *panicRecorder) record(node int, r any) {
	p.mu.Lock()
	if p.first == nil {
		p.first = fmt.Errorf("sim: node %d panicked: %v", node, r)
	}
	p.mu.Unlock()
}

func (p *panicRecorder) get() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.first
}

// parallelStepMin is the awake-population size below which a slot's Step
// calls run serially even on multicore: fan-out costs more than it saves.
const parallelStepMin = 4096

// stepChunk is the work-stealing granule of the parallel step phase.
const stepChunk = 512

// steppedRun is the engine-private state of one run's stepped population.
type steppedRun struct {
	ctxs    []StepCtx // indexed by node; only stepped nodes are initialized
	state   []uint8   // node → stepNone/stepAwake/stepSleeping/stepDead
	awake   []int32   // nodes to drive this slot, compacted after each scan
	workers int
}

func newSteppedRun(e *Engine, rs *roundState, steppers []Stepper, nodeParams model.Params, startSlot int) *steppedRun {
	n := len(steppers)
	sr := &steppedRun{
		ctxs:    make([]StepCtx, n),
		state:   make([]uint8, n),
		workers: runtime.GOMAXPROCS(0),
	}
	rands := rng.Streams(e.seed, n)
	for i, st := range steppers {
		if st == nil {
			continue
		}
		sr.state[i] = stepAwake
		sr.awake = append(sr.awake, int32(i))
		sc := &sr.ctxs[i]
		*sc = StepCtx{
			Rand:    rands[i],
			id:      i,
			engine:  e,
			params:  nodeParams,
			rs:      rs,
			stepper: st,
			slot:    startSlot,
			crashAt: math.MaxInt,
		}
		if e.Faults != nil {
			sc.crashAt = e.Faults.CrashSlot(i)
		}
	}
	return sr
}

// stepAll drives every awake stepped node through the given slot. It runs
// in the engine's quiescent window; with enough awake nodes and spare
// procs, the calls fan out across workers in chunks (safe because each call
// touches only node-local state, and transcript-neutral because actions
// land in per-node slots that the engine scans in node order regardless).
// A panicking Step abandons the rest of its worker's share; the engine
// aborts the run right after, so the unstepped remainder never resolves.
func (sr *steppedRun) stepAll(slot int, rec *panicRecorder) {
	awake := sr.awake
	if sr.workers <= 1 || len(awake) < parallelStepMin {
		sr.stepRange(awake, slot, rec)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	workers := sr.workers
	if max := (len(awake) + stepChunk - 1) / stepChunk; workers > max {
		workers = max
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(stepChunk)) - stepChunk
				if lo >= len(awake) {
					return
				}
				hi := lo + stepChunk
				if hi > len(awake) {
					hi = len(awake)
				}
				sr.stepRange(awake[lo:hi], slot, rec)
			}
		}()
	}
	wg.Wait()
}

func (sr *steppedRun) stepRange(ids []int32, slot int, rec *panicRecorder) {
	cur := -1
	defer func() {
		if r := recover(); r != nil {
			rec.record(cur, r)
		}
	}()
	for _, id := range ids {
		cur = int(id)
		sr.ctxs[id].stepNode(slot)
	}
}

// compact drops nodes that went to sleep or died from the awake list,
// preserving order. Runs once per scanned slot, after the engine has
// classified every pending action.
func (sr *steppedRun) compact() {
	kept := sr.awake[:0]
	for _, id := range sr.awake {
		if sr.state[id] == stepAwake {
			kept = append(kept, id)
		}
	}
	sr.awake = kept
}
