package sim

// This file implements the sharded slot barrier: the arrival side of the
// engine's per-slot synchronization, split across per-region epoch counters
// so a million arrivals per slot do not serialize on one cache line.
//
// The global barrier (roundState.gate) packs the slot's expected and
// observed arrival counts into a single atomic word. That is optimal for
// small runs, but every arrival is a read-modify-write of the same word, so
// at crowd scale the barrier becomes a coherence hotspot: each of n nodes
// bounces the line once per slot.
//
// The sharded barrier replaces the single word with one epoch counter per
// shard plus a two-level combine tree:
//
//   - Nodes are grouped into shards along the same geo-grid regions the
//     hierarchical resolver bins into (cell size R_T): nodes are ordered by
//     region and the order is cut into ≤ maxBarrierShards contiguous,
//     balanced chunks. Region-contiguous shards keep a shard's arrivals
//     spatially — and, for phase-structured protocols, temporally —
//     correlated, and the chunking keeps shards balanced even when the
//     whole deployment sits in one region (the Crowd workload).
//   - An arrival increments only its own shard's counter (its own cache
//     line). The arrival that completes a shard — observed == expected in
//     one atomic snapshot — increments the root counter; the arrival that
//     completes the last expected shard hands the engine the single wake
//     token, exactly like the global barrier's completing arrival.
//
// Between slots the engine owns all shared state (every live node is
// parked), so it rewrites each shard's expected count and the root's
// expected-shard count with plain atomic stores — the same quiescent-window
// contract the global gate uses. Shards whose expected count is zero for a
// slot (all members idling or retired) are excluded from the root's count
// and can never fire a completion.
//
// Transcripts are unaffected by construction: the barrier only decides when
// the engine wakes, never the order slot state is read in (the engine scans
// pending[] in node order either way). TestShardedBarrierTranscripts pins
// bit-identical transcripts against the global barrier.

import (
	"sort"
	"sync/atomic"

	"mcnet/internal/geo"
)

// BarrierMode selects the engine's slot-barrier implementation.
type BarrierMode int

const (
	// BarrierAuto (the default) selects the sharded barrier at or above
	// shardedBarrierMinNodes and the global single-word barrier below it.
	BarrierAuto BarrierMode = iota
	// BarrierGlobal forces the single packed-word barrier.
	BarrierGlobal
	// BarrierSharded forces per-region epoch counters with the two-level
	// combine, at any node count.
	BarrierSharded
)

// shardedBarrierMinNodes is the node count at which BarrierAuto switches to
// the sharded barrier: below it a run's arrivals fit comfortably on one
// contended word and the per-slot shard-gate rewrites are pure overhead.
const shardedBarrierMinNodes = 1024

// maxBarrierShards caps the shard count; the engine rewrites every shard
// gate per slot, so the cap bounds that quiescent-window work.
const maxBarrierShards = 64

// barrierShardTargetNodes is the preferred shard size; the shard count is
// ~n/target, clamped to [2, maxBarrierShards].
const barrierShardTargetNodes = 256

// gateShard is one shard's epoch counter, padded to its own cache-line pair
// so neighboring shards never share a line (128 bytes covers the adjacent-
// line prefetcher on common x86 parts). The word packs expected<<32 |
// arrived, exactly like the global gate.
type gateShard struct {
	gate atomic.Uint64
	_    [120]byte
}

// shardPlan maps nodes to barrier shards for one deployment. Positions are
// fixed for an engine's lifetime, so the plan is built once and cached.
type shardPlan struct {
	of    []int32 // node → shard index
	count int     // number of shards in use
}

// buildShardPlan groups nodes into balanced, region-contiguous shards: order
// nodes by their geo-grid region (cell size R_T — the same spatial structure
// the hierarchical resolver aggregates over, one level coarser), then cut
// the order into equal chunks. Deployments inside a single region (Crowd)
// degrade gracefully to plain index-contiguous chunks.
func buildShardPlan(pos []geo.Point, rt float64) *shardPlan {
	n := len(pos)
	shards := n / barrierShardTargetNodes
	if shards > maxBarrierShards {
		shards = maxBarrierShards
	}
	if shards < 2 {
		shards = 2
	}
	grid := geo.NewGrid(pos, rt)
	cols, _ := grid.Dims()
	region := make([]int32, n)
	order := make([]int32, n)
	for i, p := range pos {
		c, r := grid.CellCoord(p)
		region[i] = int32(r*cols + c)
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return region[order[a]] < region[order[b]]
	})
	chunk := (n + shards - 1) / shards
	of := make([]int32, n)
	for k, node := range order {
		of[node] = int32(k / chunk)
	}
	return &shardPlan{of: of, count: (n + chunk - 1) / chunk}
}

// arrive records one barrier arrival for the given node and wakes the
// engine if it completes the slot. Both halves of each counter come from
// one atomic snapshot, so exactly one arrival completes a shard and exactly
// one shard completion completes the root. The wake send is non-blocking
// because stale arrivals during an abort may race with an undelivered
// token (see the global barrier's arrive path).
func (rs *roundState) arrive(node int) {
	if rs.shards == nil {
		g := rs.gate.Add(1)
		if uint32(g) == uint32(g>>32) {
			select {
			case rs.wake <- struct{}{}:
			default:
			}
		}
		return
	}
	g := rs.shards[rs.shardOf[node]].gate.Add(1)
	if uint32(g) == uint32(g>>32) {
		r := rs.root.Add(1)
		if uint32(r) == uint32(r>>32) {
			select {
			case rs.wake <- struct{}{}:
			default:
			}
		}
	}
}

// openGates publishes the next slot's expected arrival counts — the global
// word, or every shard gate plus the root's expected-shard count. Must only
// be called in the engine's quiescent window (no node can arrive until the
// release channel swap that follows).
func (rs *roundState) openGates(expectCount int, shardExpect []int32) {
	if rs.shards == nil {
		rs.gate.Store(uint64(uint32(expectCount)) << 32)
		return
	}
	var live uint64
	for s := range rs.shards {
		e := shardExpect[s]
		rs.shards[s].gate.Store(uint64(uint32(e)) << 32)
		if e > 0 {
			live++
		}
	}
	rs.root.Store(live << 32)
}
