package sim

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
)

// slotRecord is one resolved slot flattened for transcript comparison.
type slotRecord struct {
	Slot int
	Txs  []phy.Tx
	Rxs  []phy.Rx
	Recs []phy.Reception
}

func recordTrace(dst *[]slotRecord) TraceFn {
	return func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
		*dst = append(*dst, slotRecord{
			Slot: slot,
			Txs:  append([]phy.Tx(nil), txs...),
			Rxs:  append([]phy.Rx(nil), rxs...),
			Recs: append([]phy.Reception(nil), recs...),
		})
	}
}

func chatterField(n int) *phy.Field {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%16) * 0.3, Y: float64(i/16) * 0.3}
	}
	return phy.NewField(model.Default(4, n), pos)
}

// chatterProgram is the goroutine form of the reference workload: random
// chatter with interleaved IdleFor batches whose spans depend on the node's
// private stream, plus value echoes so receptions feed back into behavior.
func chatterProgram(rounds int) Program {
	return func(ctx *Ctx) {
		last := 0
		for s := 0; s < rounds; s++ {
			switch r := ctx.Rand.Float64(); {
			case r < 0.25:
				ctx.Transmit(ctx.Rand.Intn(4), last+s)
			case r < 0.5:
				rec := ctx.Listen(ctx.Rand.Intn(4))
				if v, ok := rec.Msg.(int); ok {
					last = v
					ctx.Emit("heard", v)
				}
			case r < 0.7:
				ctx.Idle()
			default:
				ctx.IdleFor(1 + ctx.Rand.Intn(7))
			}
		}
	}
}

// chatterStepper is the hand-ported Stepper form of chatterProgram. The
// listen branch's consumption moves to the top of the next Step call, which
// is exactly where the transformation must put it.
type chatterStepper struct {
	rounds    int
	s         int
	last      int
	listening bool
}

func (cs *chatterStepper) Step(sc *StepCtx) {
	if cs.listening {
		cs.listening = false
		if v, ok := sc.Prev().Msg.(int); ok {
			cs.last = v
			sc.Emit("heard", v)
		}
	}
	if cs.s >= cs.rounds {
		sc.Done()
		return
	}
	s := cs.s
	cs.s++
	switch r := sc.Rand.Float64(); {
	case r < 0.25:
		sc.Transmit(sc.Rand.Intn(4), cs.last+s)
	case r < 0.5:
		sc.Listen(sc.Rand.Intn(4))
		cs.listening = true
	case r < 0.7:
		sc.Idle()
	default:
		sc.IdleFor(1 + sc.Rand.Intn(7))
	}
}

func sortedEvents(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	// Event order between nodes within a slot is unspecified; compare a
	// canonical ordering.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Slot < b.Slot || (a.Slot == b.Slot && (a.Node < b.Node || (a.Node == b.Node && a.Name <= b.Name))) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// runChatter runs the reference workload in the requested mode and returns
// its transcript, events, and slot count.
func runChatter(t *testing.T, n, rounds int, seed uint64, mode string, faults FaultInjector, barrier BarrierMode) ([]slotRecord, []Event, int) {
	t.Helper()
	e := NewEngine(chatterField(n), seed)
	e.Barrier = barrier
	e.Faults = faults
	var trace []slotRecord
	e.Trace = recordTrace(&trace)
	var (
		slots int
		err   error
	)
	switch mode {
	case "goroutine":
		progs := make([]Program, n)
		for i := range progs {
			progs[i] = chatterProgram(rounds)
		}
		slots, err = e.Run(progs)
	case "stepped":
		steps := make([]Stepper, n)
		for i := range steps {
			steps[i] = &chatterStepper{rounds: rounds}
		}
		slots, err = e.RunSteppers(steps)
	case "mixed":
		// Odd nodes run the goroutine form, even nodes the stepped form, in
		// one run — the interoperation the engine guarantees.
		progs := make([]Program, n)
		steps := make([]Stepper, n)
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				steps[i] = &chatterStepper{rounds: rounds}
			} else {
				progs[i] = chatterProgram(rounds)
			}
		}
		slots, err = e.RunMixed(progs, steps)
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	if err != nil {
		t.Fatalf("%s run: %v", mode, err)
	}
	return trace, sortedEvents(e.Events()), slots
}

// TestSteppedEngineEquivalence pins the tentpole invariant at the engine
// level: the same workload run as goroutine Programs, as Steppers, and as a
// mixed population produces bit-identical transcripts, events, and slot
// counts — with and without the global barrier, at several sizes.
func TestSteppedEngineEquivalence(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1500} {
		for _, seed := range []uint64{1, 42} {
			n, seed := n, seed
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				t.Parallel()
				gTrace, gEvents, gSlots := runChatter(t, n, 40, seed, "goroutine", nil, BarrierAuto)
				for _, mode := range []string{"stepped", "mixed"} {
					trace, events, slots := runChatter(t, n, 40, seed, mode, nil, BarrierAuto)
					if slots != gSlots {
						t.Fatalf("%s: slots = %d, goroutine = %d", mode, slots, gSlots)
					}
					if !reflect.DeepEqual(trace, gTrace) {
						t.Fatalf("%s: transcript differs from goroutine mode", mode)
					}
					if !reflect.DeepEqual(events, gEvents) {
						t.Fatalf("%s: events differ from goroutine mode", mode)
					}
				}
			})
		}
	}
}

// crashFaults crashes a fixed subset of nodes at fixed slots (including
// slots that land mid-IdleFor batch) and injects nothing else.
type crashFaults struct{ at map[int]int }

func (f crashFaults) BeginSlot(int, *phy.Field) {}
func (f crashFaults) FilterTransmission(_ int, tx phy.Tx) (phy.Tx, bool) {
	return tx, true
}
func (f crashFaults) FilterReception(_, _, _ int, rec phy.Reception) phy.Reception {
	return rec
}
func (f crashFaults) CrashSlot(node int) int {
	if s, ok := f.at[node]; ok {
		return s
	}
	return 1 << 40
}

// TestSteppedEquivalenceUnderCrashes runs the equivalence check with nodes
// crashing at awkward points — including during a sleep, where both forms
// must retire the node at the batch boundary, not before.
func TestSteppedEquivalenceUnderCrashes(t *testing.T) {
	faults := func() FaultInjector {
		return crashFaults{at: map[int]int{0: 0, 3: 7, 11: 13, 17: 2, 40: 25}}
	}
	gTrace, gEvents, gSlots := runChatter(t, 64, 40, 9, "goroutine", faults(), BarrierAuto)
	for _, mode := range []string{"stepped", "mixed"} {
		trace, events, slots := runChatter(t, 64, 40, 9, mode, faults(), BarrierAuto)
		if slots != gSlots {
			t.Fatalf("%s: slots = %d, goroutine = %d", mode, slots, gSlots)
		}
		if !reflect.DeepEqual(trace, gTrace) {
			t.Fatalf("%s: transcript differs from goroutine mode under crashes", mode)
		}
		if !reflect.DeepEqual(events, gEvents) {
			t.Fatalf("%s: events differ from goroutine mode under crashes", mode)
		}
	}
}

// sleeperStepper exercises wake-wheel re-entry: alternating IdleFor batches
// and single transmits, with a span pattern that lands several nodes in the
// same wheel bucket at different wake slots (spans > wheelBuckets force
// multi-revolution entries).
type sleeperStepper struct {
	spans []int
	i     int
}

func (s *sleeperStepper) Step(sc *StepCtx) {
	if s.i >= 2*len(s.spans) {
		sc.Done()
		return
	}
	if s.i%2 == 0 {
		sc.IdleFor(s.spans[s.i/2])
	} else {
		sc.Transmit(0, s.i)
	}
	s.i++
}

// TestWakeWheelSpans drives IdleFor spans spanning multiple wheel
// revolutions plus same-bucket collisions, in both forms, and checks the
// slot count and transcript agree.
func TestWakeWheelSpans(t *testing.T) {
	spans := [][]int{
		{3, wheelBuckets + 3, 5},
		{wheelBuckets, 1, 2 * wheelBuckets},
		{2, 2, 2},
		{5 * wheelBuckets, 4, 1},
	}
	n := len(spans)
	prog := func(sp []int) Program {
		return func(ctx *Ctx) {
			for i, k := range sp {
				ctx.IdleFor(k)
				ctx.Transmit(0, 2*i+1)
			}
		}
	}
	e := NewEngine(chatterField(n), 5)
	var gTrace []slotRecord
	e.Trace = recordTrace(&gTrace)
	progs := make([]Program, n)
	for i := range progs {
		progs[i] = prog(spans[i])
	}
	gSlots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(chatterField(n), 5)
	var sTrace []slotRecord
	e2.Trace = recordTrace(&sTrace)
	steps := make([]Stepper, n)
	for i := range steps {
		steps[i] = &sleeperStepper{spans: spans[i]}
	}
	sSlots, err := e2.RunSteppers(steps)
	if err != nil {
		t.Fatal(err)
	}
	if gSlots != sSlots {
		t.Fatalf("slots: goroutine %d, stepped %d", gSlots, sSlots)
	}
	if !reflect.DeepEqual(gTrace, sTrace) {
		t.Fatal("wheel transcript differs between forms")
	}
}

// TestSteppedMaxSlotsAbort aborts a stepped run mid-sleep and checks the
// abort is clean: the MaxSlots error reports, the engine returns, and a
// second run on a fresh engine is unaffected.
func TestSteppedMaxSlotsAbort(t *testing.T) {
	n := 8
	e := NewEngine(chatterField(n), 1)
	e.MaxSlots = 10
	steps := make([]Stepper, n)
	for i := range steps {
		steps[i] = &sleeperStepper{spans: []int{100}}
	}
	slots, err := e.RunSteppers(steps)
	if err == nil || !strings.Contains(err.Error(), "MaxSlots") {
		t.Fatalf("want MaxSlots error, got slots=%d err=%v", slots, err)
	}
}

// TestSteppedContextCancel cancels a stepped run from a Trace callback and
// checks the engine unwinds promptly with ctx.Err().
func TestSteppedContextCancel(t *testing.T) {
	n := 8
	e := NewEngine(chatterField(n), 1)
	ctx, cancel := context.WithCancel(context.Background())
	e.Trace = func(slot int, _ []phy.Tx, _ []phy.Rx, _ []phy.Reception) {
		if slot == 5 {
			cancel()
		}
	}
	steps := make([]Stepper, n)
	for i := range steps {
		steps[i] = &chatterStepper{rounds: 1000}
	}
	if _, err := e.RunSteppersContext(ctx, steps); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// panicStepper panics at a chosen step.
type panicStepper struct{ n int }

func (p *panicStepper) Step(sc *StepCtx) {
	if p.n == 0 {
		panic("boom")
	}
	p.n--
	sc.Idle()
}

// TestSteppedPanicPropagates turns a panicking Stepper into a run error
// naming the node, like a panicking goroutine Program.
func TestSteppedPanicPropagates(t *testing.T) {
	n := 4
	e := NewEngine(chatterField(n), 1)
	steps := make([]Stepper, n)
	for i := range steps {
		steps[i] = &panicStepper{n: i + 2}
	}
	_, err := e.RunSteppers(steps)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
}

// lazyStepper violates the contract by returning without acting.
type lazyStepper struct{}

func (lazyStepper) Step(*StepCtx) {}

// TestSteppedContractViolation: a Stepper that neither acts nor calls Done
// fails the run instead of hanging it.
func TestSteppedContractViolation(t *testing.T) {
	e := NewEngine(chatterField(2), 1)
	_, err := e.RunSteppers([]Stepper{&chatterStepper{rounds: 3}, lazyStepper{}})
	if err == nil || !strings.Contains(err.Error(), "without acting") {
		t.Fatalf("want contract error, got %v", err)
	}
}

// TestSteppedParallelDrive forces the parallel step fan-out (population
// above parallelStepMin) and checks the transcript still matches the
// goroutine form. Run under -race in CI at -cpu 1,2,8.
func TestSteppedParallelDrive(t *testing.T) {
	if testing.Short() {
		t.Skip("crowd-sized equivalence run")
	}
	n := parallelStepMin + 512
	gTrace, gEvents, gSlots := runChatter(t, n, 12, 3, "goroutine", nil, BarrierAuto)
	sTrace, sEvents, sSlots := runChatter(t, n, 12, 3, "stepped", nil, BarrierAuto)
	if gSlots != sSlots {
		t.Fatalf("slots: goroutine %d, stepped %d", gSlots, sSlots)
	}
	if !reflect.DeepEqual(gTrace, sTrace) {
		t.Fatal("parallel stepped transcript differs from goroutine mode")
	}
	if !reflect.DeepEqual(gEvents, sEvents) {
		t.Fatal("parallel stepped events differ from goroutine mode")
	}
}

// TestWakeWheelUnit exercises the bucket structure directly: same-bucket
// entries with different revolutions, pop order stability, and count
// accounting.
func TestWakeWheelUnit(t *testing.T) {
	w := newWakeWheel()
	w.add(1, 5)
	w.add(2, 5+wheelBuckets) // same bucket, next revolution
	w.add(3, 5)
	w.add(4, 5+2*wheelBuckets) // same bucket, two revolutions out
	if due := w.pop(5, nil); !reflect.DeepEqual(due, []int32{1, 3}) {
		t.Fatalf("pop(5) = %v, want [1 3]", due)
	}
	if due := w.pop(5+wheelBuckets, nil); !reflect.DeepEqual(due, []int32{2}) {
		t.Fatalf("pop(+1 rev) = %v, want [2]", due)
	}
	if due := w.pop(5+2*wheelBuckets, nil); !reflect.DeepEqual(due, []int32{4}) {
		t.Fatalf("pop(+2 rev) = %v, want [4]", due)
	}
	if w.count != 0 {
		t.Fatalf("count = %d, want 0", w.count)
	}
	if due := w.pop(5, nil); len(due) != 0 {
		t.Fatalf("empty wheel pop = %v", due)
	}
}

// Compile-time checks that the test doubles satisfy their interfaces.
var (
	_ Stepper       = (*chatterStepper)(nil)
	_ Stepper       = (*sleeperStepper)(nil)
	_ FaultInjector = crashFaults{}
)
