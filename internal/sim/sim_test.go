package sim

import (
	"strings"
	"sync/atomic"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
)

func lineField(n int, spacing float64, channels int) *phy.Field {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i) * spacing}
	}
	return phy.NewField(model.Default(channels, n+2), pos)
}

func TestSimpleExchange(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	var got atomic.Value
	progs := []Program{
		func(ctx *Ctx) { ctx.Transmit(0, "ping") },
		func(ctx *Ctx) { got.Store(ctx.Listen(0)) },
	}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 1 {
		t.Errorf("slots = %d, want 1", slots)
	}
	rec := got.Load().(phy.Reception)
	if !rec.Decoded || rec.Msg != "ping" || rec.From != 0 {
		t.Errorf("reception = %+v", rec)
	}
}

func TestLockstep(t *testing.T) {
	// Node 0 transmits in slots 0 and 2; node 1 listens in all three. The
	// middle slot must be silent: slots are globally aligned.
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	var recs [3]phy.Reception
	progs := []Program{
		func(ctx *Ctx) {
			ctx.Transmit(0, 1)
			ctx.Idle()
			ctx.Transmit(0, 3)
		},
		func(ctx *Ctx) {
			for i := 0; i < 3; i++ {
				recs[i] = ctx.Listen(0)
			}
		},
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if !recs[0].Decoded || recs[0].Msg != 1 {
		t.Errorf("slot 0: %+v", recs[0])
	}
	if recs[1].Decoded || recs[1].RSSI() != 0 {
		t.Errorf("slot 1 should be silent: %+v", recs[1])
	}
	if !recs[2].Decoded || recs[2].Msg != 3 {
		t.Errorf("slot 2: %+v", recs[2])
	}
}

func TestEarlyReturnBecomesIdle(t *testing.T) {
	// Node 0 returns immediately; nodes 1 and 2 keep exchanging. The run
	// lasts as long as the longest program.
	f := lineField(3, 0.4, 1)
	e := NewEngine(f, 1)
	heard := 0
	progs := []Program{
		func(ctx *Ctx) {},
		func(ctx *Ctx) {
			for i := 0; i < 5; i++ {
				ctx.Transmit(0, i)
			}
		},
		func(ctx *Ctx) {
			for i := 0; i < 5; i++ {
				if ctx.Listen(0).Decoded {
					heard++
				}
			}
		},
	}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 5 {
		t.Errorf("slots = %d, want 5", slots)
	}
	if heard != 5 {
		t.Errorf("heard = %d, want 5", heard)
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical runs produce identical transcripts of random decisions.
	run := func() []int {
		f := lineField(8, 0.3, 2)
		e := NewEngine(f, 42)
		out := make([]int, 8)
		progs := make([]Program, 8)
		for i := 0; i < 8; i++ {
			i := i
			progs[i] = func(ctx *Ctx) {
				acc := 0
				for s := 0; s < 50; s++ {
					ch := ctx.Rand.Intn(2)
					if ctx.Rand.Float64() < 0.3 {
						ctx.Transmit(ch, ctx.ID())
					} else if rec := ctx.Listen(ch); rec.Decoded {
						acc = acc*31 + rec.From + 7
					}
				}
				out[i] = acc
			}
		}
		if _, err := e.Run(progs); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d transcripts differ: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) int {
		f := lineField(4, 0.3, 1)
		e := NewEngine(f, seed)
		var total atomic.Int64
		progs := make([]Program, 4)
		for i := 0; i < 4; i++ {
			progs[i] = func(ctx *Ctx) {
				for s := 0; s < 40; s++ {
					if ctx.Rand.Float64() < 0.5 {
						ctx.Transmit(0, 1)
					} else if ctx.Listen(0).Decoded {
						total.Add(1)
					}
				}
			}
		}
		if _, err := e.Run(progs); err != nil {
			t.Fatal(err)
		}
		return int(total.Load())
	}
	if run(1) == run(2) && run(3) == run(4) && run(1) == run(3) {
		t.Error("different seeds produced suspiciously identical outcomes")
	}
}

func TestMaxSlotsAborts(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	e.MaxSlots = 10
	progs := []Program{
		func(ctx *Ctx) {
			for {
				ctx.Idle()
			}
		},
		func(ctx *Ctx) {},
	}
	_, err := e.Run(progs)
	if err == nil || !strings.Contains(err.Error(), "MaxSlots") {
		t.Fatalf("expected MaxSlots error, got %v", err)
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	progs := []Program{
		func(ctx *Ctx) {
			ctx.Idle()
			panic("protocol bug")
		},
		func(ctx *Ctx) {
			for i := 0; i < 100; i++ {
				ctx.Idle()
			}
		},
	}
	_, err := e.Run(progs)
	if err == nil || !strings.Contains(err.Error(), "protocol bug") {
		t.Fatalf("expected panic to surface, got %v", err)
	}
}

func TestProgramCountMismatch(t *testing.T) {
	f := lineField(3, 0.5, 1)
	e := NewEngine(f, 1)
	if _, err := e.Run(make([]Program, 2)); err == nil {
		t.Fatal("expected error for wrong program count")
	}
}

func TestEventsAndSlotCounter(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	progs := []Program{
		func(ctx *Ctx) {
			ctx.Idle()
			ctx.Idle()
			ctx.Emit("checkpoint", 7)
			ctx.Idle()
		},
		func(ctx *Ctx) { ctx.IdleFor(3) },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	evs := e.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Slot != 2 || evs[0].Node != 0 || evs[0].Name != "checkpoint" || evs[0].Value != 7 {
		t.Errorf("event = %+v", evs[0])
	}
	e.ResetEvents()
	if len(e.Events()) != 0 {
		t.Error("ResetEvents did not clear")
	}
}

func TestRunFromOffsetsSlots(t *testing.T) {
	f := lineField(1, 1, 1)
	e := NewEngine(f, 1)
	var sawSlot int
	progs := []Program{func(ctx *Ctx) {
		ctx.Idle()
		sawSlot = ctx.Slot()
	}}
	slots, err := e.RunFrom(100, progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 1 {
		t.Errorf("slots = %d, want 1", slots)
	}
	if sawSlot != 101 {
		t.Errorf("ctx.Slot() = %d, want 101", sawSlot)
	}
}

func TestTraceObservesSlots(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	var slots, txCount, decoded int
	e.Trace = func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
		slots++
		txCount += len(txs)
		for _, r := range recs {
			if r.Decoded {
				decoded++
			}
		}
	}
	progs := []Program{
		func(ctx *Ctx) { ctx.Transmit(0, 1); ctx.Transmit(0, 2) },
		func(ctx *Ctx) { ctx.Listen(0); ctx.Listen(0) },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if slots != 2 || txCount != 2 || decoded != 2 {
		t.Errorf("trace saw slots=%d txs=%d decoded=%d", slots, txCount, decoded)
	}
}

func TestNilProgramIsIdle(t *testing.T) {
	f := lineField(2, 0.5, 1)
	e := NewEngine(f, 1)
	progs := []Program{nil, func(ctx *Ctx) { ctx.IdleFor(2) }}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 2 {
		t.Errorf("slots = %d, want 2", slots)
	}
}

func TestManyNodesManyChannels(t *testing.T) {
	// Smoke test at moderate scale: 200 nodes randomly chattering across 8
	// channels for 30 slots must not deadlock or race (run with -race).
	const n = 200
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i%20) * 0.1, Y: float64(i/20) * 0.1}
	}
	f := phy.NewField(model.Default(8, n), pos)
	e := NewEngine(f, 7)
	progs := make([]Program, n)
	for i := range progs {
		progs[i] = func(ctx *Ctx) {
			for s := 0; s < 30; s++ {
				ch := ctx.Rand.Intn(8)
				if ctx.Rand.Float64() < 0.2 {
					ctx.Transmit(ch, ctx.ID())
				} else {
					ctx.Listen(ch)
				}
			}
		}
	}
	slots, err := e.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if slots != 30 {
		t.Errorf("slots = %d, want 30", slots)
	}
}
