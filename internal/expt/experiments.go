package expt

import (
	"context"
	"fmt"
	"math"

	"mcnet/internal/agg"
	"mcnet/internal/backbone"
	"mcnet/internal/baseline"
	"mcnet/internal/coloring"
	"mcnet/internal/core"
	"mcnet/internal/csa"
	"mcnet/internal/dominate"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/ruling"
	"mcnet/internal/sim"
	"mcnet/internal/stats"
	"mcnet/internal/topology"
)

// Options sizes an experiment.
type Options struct {
	// Seeds is the number of independent repetitions (medians reported).
	Seeds int
	// Quick shrinks the sweep for tests and smoke runs.
	Quick bool
	// Parallel sizes the worker pool the sweep's (axis × seed) runs execute
	// across: 0 (the default) uses GOMAXPROCS, 1 forces the serial sweep.
	// Tables are byte-identical at every setting.
	Parallel int
	// Ctx, when non-nil, cancels the sweep between runs (Ctrl-C on the
	// CLIs); nil means context.Background().
	Ctx context.Context
	// Colorers restricts the c-series head-to-heads to a subset of coloring
	// backend names; empty means every registered backend. Other experiment
	// families ignore it.
	Colorers []string
	// Exec pins the pipeline execution mode for every aggregation run
	// (default core.ExecAuto). Tables are bit-identical at every setting.
	Exec core.ExecMode
	// Byz overrides the Byzantine-fraction axis of the f4 and f6 sweeps;
	// empty means each experiment's default axis. Values must be in [0, 1].
	Byz []float64
	// JamModels restricts the jamming adversaries the f4 and f5 sweeps pit
	// against the pipeline; empty means each experiment's default set.
	JamModels []fault.JamModel
}

// ctx resolves the sweep context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// DefaultOptions is the full-size configuration used by the benchmarks.
var DefaultOptions = Options{Seeds: 3}

func (o Options) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

// aggRun carries the per-run metrics an aggregation sweep folds into its
// table rows.
type aggRun struct {
	ack, agg float64
	informed int
	exact    int
	n        int
}

// E1SpeedupVsChannels measures aggregation latency on a single-cluster
// crowd while sweeping the channel count F: the headline linear-speedup
// claim (Theorem 22, the Δ/F term).
func E1SpeedupVsChannels(o Options) (*stats.Table, error) {
	n := 192
	fs := []int{1, 2, 4, 8, 16}
	if o.Quick {
		n = 64
		fs = []int{1, 4}
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(fs)*seeds, func(i int) (aggRun, error) {
		f, s := fs[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+1))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, err := RunAgg(pos, p, cfg, values, agg.Sum, uint64(100*f+s))
		if err != nil {
			return aggRun{}, err
		}
		return aggRun{float64(m.AckSlots), float64(m.AggSlots), m.Informed, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("E1: aggregation vs channels (crowd n=%d, Δ=n-1)", n),
		"F", "ack_slots", "agg_slots", "speedup", "informed", "exact")
	var base float64
	for fi, f := range fs {
		var acks, aggs []float64
		informed, exact, total := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[fi*seeds+s]
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
			informed += r.informed
			exact += r.exact
			total += r.n
		}
		ack := stats.Median(acks)
		aggT := stats.Median(aggs)
		if f == fs[0] {
			base = ack
		}
		speedup := 0.0
		if ack > 0 {
			speedup = base / ack
		}
		t.AddRow(stats.I(f), stats.F1(ack), stats.F1(aggT), stats.F(speedup),
			pct(informed, total), pct(exact, total))
	}
	t.AddNote("seeds=%d; ack_slots = last follower acknowledged (Δ/F mechanism); speedup relative to F=%d", o.seeds(), fs[0])
	return t, nil
}

// E2AggVsN measures aggregation latency as the crowd grows at fixed F.
func E2AggVsN(o Options) (*stats.Table, error) {
	ns := []int{64, 128, 256, 384}
	if o.Quick {
		ns = []int{48, 96}
	}
	const f = 8
	seeds := o.seeds()
	runs, err := sweep(o, len(ns)*seeds, func(i int) (aggRun, error) {
		n, s := ns[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+11))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, err := RunAgg(pos, p, cfg, values, agg.Sum, uint64(1000*n+s))
		if err != nil {
			return aggRun{}, err
		}
		return aggRun{float64(m.AckSlots), float64(m.AggSlots), m.Informed, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("E2: aggregation vs n (crowd, F=%d)", f),
		"n", "Delta", "ack_slots", "agg_slots", "exact")
	for ni, n := range ns {
		var acks, aggs []float64
		exact, total := 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[ni*seeds+s]
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
			exact += r.exact
			total += r.n
		}
		t.AddRow(stats.I(n), stats.I(n-1), stats.F1(stats.Median(acks)),
			stats.F1(stats.Median(aggs)), pct(exact, total))
	}
	t.AddNote("seeds=%d; expect ack_slots ≈ a + b·Δ/F (linear in n at fixed F)", o.seeds())
	return t, nil
}

// E3Baselines compares the multichannel pipeline against the single-channel
// comparators on the same field. One sweep job covers all four algorithms
// for one seed — they share the seed's layout, so the comparison stays
// within-seed while seeds run in parallel.
func E3Baselines(o Options) (*stats.Table, error) {
	n := 128
	if o.Quick {
		n = 48
	}
	const algos = 4
	type e3Run struct {
		slots [algos]float64
		exact [algos]int
		total [algos]int
	}
	runs, err := sweep(o, o.seeds(), func(s int) (e3Run, error) {
		var r e3Run
		seed := uint64(s + 21)
		values, want := sequentialValues(n)

		for idx, f := range []int{8, 1} {
			p := model.Default(f, n)
			pos := Crowd(p, n, seed)
			cfg := core.DefaultConfig(p)
			cfg.Exec = o.Exec
			cfg.DeltaHat = n
			cfg.PhiMax = 4
			cfg.HopBound = 2
			m, err := RunAgg(pos, p, cfg, values, agg.Sum, seed*7+uint64(idx))
			if err != nil {
				return r, err
			}
			r.slots[idx] = float64(m.AggSlots)
			r.exact[idx] = m.Exact
			r.total[idx] = m.N
		}

		p := model.Default(1, n)
		pos := Crowd(p, n, seed)
		e := sim.NewEngine(phy.NewField(p, pos), seed*13)
		out, err := baseline.SingleChannelTree(e, values, agg.Sum, n-1, 3)
		if err != nil {
			return r, err
		}
		last := 0
		for _, ev := range e.Events() {
			switch ev.Name {
			case backbone.EventAgg, backbone.EventResult, backbone.EventAggUpdate:
				if ev.Slot > last {
					last = ev.Slot
				}
			}
		}
		r.slots[2] = float64(last)
		for _, res := range out {
			if res.Done && res.Value == want {
				r.exact[2]++
			}
			r.total[2]++
		}

		e = sim.NewEngine(phy.NewField(p, pos), seed*17)
		tout, err := baseline.TDMAByID(e, pos, values, agg.Sum)
		if err != nil {
			return r, err
		}
		r.slots[3] = float64(2 * n)
		for _, res := range tout {
			if res.Done && res.Value == want {
				r.exact[3]++
			}
			r.total[3]++
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("E3: aggregation vs baselines (crowd n=%d)", n),
		"algorithm", "slots", "exact")
	names := []string{
		"multichannel F=8",
		"multichannel F=1",
		"single-channel tree",
		"TDMA by ID (centralized)",
	}
	for idx, name := range names {
		var slots []float64
		exact, total := 0, 0
		for _, r := range runs {
			slots = append(slots, r.slots[idx])
			exact += r.exact[idx]
			total += r.total[idx]
		}
		t.AddRow(name, stats.F1(stats.Median(slots)), pct(exact, total))
	}
	t.AddNote("seeds=%d; slots = event-measured completion of the aggregate", o.seeds())
	return t, nil
}

// E4Coloring measures the Sec. 7 coloring: time, palette size and
// correctness, against the centralized greedy palette.
func E4Coloring(o Options) (*stats.Table, error) {
	n := 96
	fs := []int{1, 4, 8}
	if o.Quick {
		n = 40
		fs = []int{1, 4}
	}
	type e4Run struct {
		time                                  float64
		palette, greedy, conflicts, uncolored int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(fs)*seeds, func(i int) (e4Run, error) {
		f, s := fs[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+31))
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		pl := core.NewPlan(p, cfg)
		e := sim.NewEngine(phy.NewField(p, pos), uint64(300*f+s))
		res, err := coloring.Run(e, pl, coloring.DefaultConfig())
		if err != nil {
			return e4Run{}, err
		}
		c, u, pal := coloring.Validate(pos, p.REps(), res)
		last := 0
		for _, ev := range e.Events() {
			if ev.Name == coloring.EventColored && ev.Slot > last {
				last = ev.Slot
			}
		}
		return e4Run{
			time:      float64(last - pl.Offsets.Followers),
			palette:   pal,
			greedy:    baseline.MaxColor(baseline.GreedyColors(pos, p.REps())),
			conflicts: c,
			uncolored: u,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("E4: node coloring (crowd n=%d, Δ=n-1)", n),
		"F", "color_slots", "palette", "greedy_ref", "conflicts", "uncolored")
	for fi, f := range fs {
		var times []float64
		palette, conflicts, uncolored, greedyRef := 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[fi*seeds+s]
			conflicts += r.conflicts
			uncolored += r.uncolored
			if r.palette > palette {
				palette = r.palette
			}
			if r.greedy > greedyRef {
				greedyRef = r.greedy
			}
			times = append(times, r.time)
		}
		t.AddRow(stats.I(f), stats.F1(stats.Median(times)), stats.I(palette),
			stats.I(greedyRef), stats.I(conflicts), stats.I(uncolored))
	}
	t.AddNote("seeds=%d; color_slots measured from the end of structure construction", o.seeds())
	return t, nil
}

// E5RulingSet measures the Sec. 4 ruling-set algorithm: completion rounds
// (expect ∝ log n) and validity.
func E5RulingSet(o Options) (*stats.Table, error) {
	ns := []int{64, 128, 256, 512}
	if o.Quick {
		ns = []int{64, 128}
	}
	const r = 0.06
	type e5Run struct {
		rounds      float64
		viol, undom int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(ns)*seeds, func(i int) (e5Run, error) {
		n, s := ns[i/seeds], i%seeds
		p := model.Default(1, n)
		rnd := newRand(uint64(500*n + s))
		// Constant areal density (the regime the pipeline invokes ruling
		// sets in), with one in eight nodes placed as a close "twin" of
		// an earlier node so the HELLO/ACK/IN resolution is exercised.
		side := 0.35 * math.Sqrt(float64(n))
		pos := topology.Uniform(rnd, n-n/8, side, side)
		for len(pos) < n {
			base := pos[rnd.Intn(len(pos))]
			pos = append(pos, geo.Point{
				X: base.X + (rnd.Float64()*2-1)*r/3,
				Y: base.Y + (rnd.Float64()*2-1)*r/3,
			})
		}
		cfg := ruling.DefaultConfig(r, 0)
		e := sim.NewEngine(phy.NewField(p, pos), uint64(s+1))
		out := make([]ruling.Outcome, n)
		progs := make([]sim.Program, n)
		for i := range progs {
			i := i
			progs[i] = func(ctx *sim.Ctx) { out[i] = ruling.Run(ctx, cfg) }
		}
		if _, err := e.Run(progs); err != nil {
			return e5Run{}, err
		}
		maxRound := 0
		part := make([]bool, n)
		inset := make([]bool, n)
		for i, oc := range out {
			part[i] = true
			inset[i] = oc.InSet
			if oc.JoinRound > maxRound && oc.JoinRound < cfg.Rounds(p) {
				maxRound = oc.JoinRound
			}
		}
		v, u := ruling.Validate(pos, part, inset, r)
		return e5Run{rounds: float64(maxRound + 1), viol: v, undom: u}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E5: ruling set (sparse fields)",
		"n", "rounds_done", "budget_rounds", "violations", "undominated")
	for ni, n := range ns {
		var rounds []float64
		viol, undom := 0, 0
		for s := 0; s < seeds; s++ {
			run := runs[ni*seeds+s]
			viol += run.viol
			undom += run.undom
			rounds = append(rounds, run.rounds)
		}
		p := model.Default(1, n)
		t.AddRow(stats.I(n), stats.F1(stats.Median(rounds)),
			stats.I(ruling.DefaultConfig(r, 0).Rounds(p)), stats.I(viol), stats.I(undom))
	}
	t.AddNote("seeds=%d; rounds_done = last decision round; expect growth ∝ log n", o.seeds())
	return t, nil
}

// E6CSA measures cluster-size approximation accuracy and cost for both
// variants (Lemmas 12–14).
func E6CSA(o Options) (*stats.Table, error) {
	sizes := []int{16, 64, 192}
	if o.Quick {
		sizes = []int{16, 48}
	}
	variants := []string{"large", "small"}
	type e6Run struct {
		ratio  float64
		budget int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(sizes)*len(variants)*seeds, func(i int) (e6Run, error) {
		size := sizes[i/(len(variants)*seeds)]
		variant := variants[i/seeds%len(variants)]
		s := i % seeds
		f := 8
		p := model.Default(f, 256)
		pos := Crowd(p, size, uint64(600*size+s))
		e := sim.NewEngine(phy.NewField(p, pos), uint64(700*size+s))
		est := 0
		budget := 0
		memberR := 2 * p.ClusterRadius()
		progs := make([]sim.Program, size)
		if variant == "large" {
			cfg := csa.DefaultConfig(256, memberR)
			budget = cfg.SlotBudget(p)
			progs[0] = func(ctx *sim.Ctx) { est = csa.RunDominator(ctx, cfg, 0) + 1 }
			for i := 1; i < size; i++ {
				progs[i] = func(ctx *sim.Ctx) { csa.RunDominatee(ctx, cfg, 0) }
			}
		} else {
			cfg := csa.DefaultSmallConfig(p, memberR)
			budget = cfg.SlotBudget(p)
			progs[0] = func(ctx *sim.Ctx) { est = csa.RunSmallDominator(ctx, cfg) }
			for i := 1; i < size; i++ {
				progs[i] = func(ctx *sim.Ctx) { csa.RunSmallDominatee(ctx, cfg, 0) }
			}
		}
		if _, err := e.Run(progs); err != nil {
			return e6Run{}, err
		}
		return e6Run{ratio: float64(est) / float64(size), budget: budget}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E6: cluster-size approximation",
		"cluster_size", "variant", "est/truth", "budget_slots")
	for si, size := range sizes {
		for vi, variant := range variants {
			var ratios []float64
			budget := 0
			for s := 0; s < seeds; s++ {
				run := runs[(si*len(variants)+vi)*seeds+s]
				ratios = append(ratios, run.ratio)
				budget = run.budget
			}
			t.AddRow(stats.I(size), variant, stats.F(stats.Median(ratios)), stats.I(budget))
		}
	}
	t.AddNote("seeds=%d; est/truth should sit in a constant band; small variant budget beats large when Δ̂ ≤ F·polylog n", o.seeds())
	return t, nil
}

// E7StructureBuild reports structure-construction cost and quality as n
// grows (Theorem 10's O(log² n) shape, plus backbone quality).
func E7StructureBuild(o Options) (*stats.Table, error) {
	ns := []int{64, 128, 256, 512}
	if o.Quick {
		ns = []int{48, 96}
	}
	type e7Run struct {
		offsets core.StageOffsets
		covered string
	}
	runs, err := sweep(o, len(ns), func(i int) (e7Run, error) {
		n := ns[i]
		p := model.Default(8, n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		pl := core.NewPlan(p, cfg)
		covered := "-"
		// One live run for coverage (cheap at small n, skipped at large).
		if n <= 128 {
			pos := Crowd(p, n, uint64(n))
			e := sim.NewEngine(phy.NewField(p, pos), uint64(n)*3)
			res, err := core.Run(e, pl, make([]int64, n), agg.Sum, 1)
			if err != nil {
				return e7Run{}, err
			}
			good := 0
			for i, r := range res {
				if r.Dominator >= 0 && pos[i].Dist(pos[r.Dominator]) <= p.ClusterRadius() {
					good++
				}
			}
			covered = pct(good, n)
		}
		return e7Run{offsets: pl.Offsets, covered: covered}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E7: structure construction",
		"n", "build_slots", "dominate", "color", "csa", "elect", "covered")
	for ni, n := range ns {
		o1 := runs[ni].offsets
		t.AddRow(stats.I(n), stats.I(o1.Followers),
			stats.I(o1.Color-o1.Dominate), stats.I(o1.Announce-o1.Color),
			stats.I(o1.Elect-o1.CSA), stats.I(o1.Followers-o1.Elect), runs[ni].covered)
	}
	t.AddNote("build_slots = stages 1-5 budget; expect polylog growth in n")
	return t, nil
}

// E8ExponentialChain verifies the Sec. 1 lower-bound instance: on the
// exponential chain with uniform power, transmissions along the chain
// toward the sink (the aggregation direction) serialize — any lower sender
// injects interference at least equal to the signal at every higher
// receiver, so at most one addressed link can decode per slot — while a
// uniform line enjoys Θ(n) spatial reuse.
func E8ExponentialChain(o Options) (*stats.Table, error) {
	n := 24
	slots := 400
	if o.Quick {
		n, slots = 16, 120
	}
	type linkMsg struct{ To int }
	type e8Case struct {
		name string
		pos  []geo.Point
		span float64
	}
	cases := []e8Case{
		{"exponential chain x_i=2^i", topology.ExponentialChain(n, 1), math.Pow(2, float64(n+1))},
		// Control: a uniform line under the default range-1 power, where
		// spatial reuse allows many parallel successes.
		{"uniform line (control)", topology.Line(n, 0.5), 1},
	}
	type e8Run struct {
		maxPar, total int
	}
	runs, err := sweep(o, len(cases), func(i int) (e8Run, error) {
		c := cases[i]
		p := model.Default(1, n)
		// β = 1.5 ≥ 2^{1/3} ≈ 1.26: the lemma's condition holds. The
		// uniform power is raised so R_T covers the whole instance (the
		// paper's chain assumes every pair is in range absent interference).
		p.Power = p.Beta * p.Noise * math.Pow(c.span, p.Alpha)
		e := sim.NewEngine(phy.NewField(p, c.pos), 9)
		maxPar, total := 0, 0
		e.Trace = func(_ int, _ []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
			// Count links whose ADDRESSED receiver decoded the sender.
			links := 0
			for k, r := range recs {
				if m, ok := r.Msg.(linkMsg); r.Decoded && ok && m.To == rxs[k].Node {
					links++
				}
			}
			total += links
			if links > maxPar {
				maxPar = links
			}
		}
		progs := make([]sim.Program, n)
		for i := range progs {
			progs[i] = func(ctx *sim.Ctx) {
				for s := 0; s < slots; s++ {
					// Send to the next node toward the sink (index 0).
					if ctx.ID() > 0 && ctx.Rand.Float64() < 0.5 {
						ctx.Transmit(0, linkMsg{To: ctx.ID() - 1})
					} else {
						ctx.Listen(0)
					}
				}
			}
		}
		if _, err := e.Run(progs); err != nil {
			return e8Run{}, err
		}
		return e8Run{maxPar: maxPar, total: total}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E8: exponential chain serialization (sink-directed links)",
		"topology", "slots", "max_parallel_links", "mean_links")
	for i, c := range cases {
		t.AddRow(c.name, stats.I(slots), stats.I(runs[i].maxPar),
			stats.F(float64(runs[i].total)/float64(slots)))
	}
	t.AddNote("sink-directed links on the chain serialize to ≤ 1 per slot ([25]): aggregating n values needs Ω(n) = Ω(Δ) slots at F=1, the term that F channels divide")
	return t, nil
}

// E9Backbone measures dominating-set and cluster-coloring quality on sparse
// fields (Lemmas 7–8: constant density, O(1) colors).
func E9Backbone(o Options) (*stats.Table, error) {
	ns := []int{64, 128, 256}
	if o.Quick {
		ns = []int{48, 96}
	}
	type e9Run struct {
		doms, dens, selfs, uncov, colors, confl float64
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(ns)*seeds, func(i int) (e9Run, error) {
		n, s := ns[i/seeds], i%seeds
		p := model.Default(4, n)
		rnd := newRand(uint64(900*n + s))
		pos := topology.UniformDegree(rnd, n, p.REps(), 12)
		rc := p.ClusterRadius()
		dcfg := dominate.DefaultConfig(rc, 0)
		e := sim.NewEngine(phy.NewField(p, pos), uint64(s+41))
		dout := make([]dominate.Outcome, n)
		progs := make([]sim.Program, n)
		for i := range progs {
			i := i
			progs[i] = func(ctx *sim.Ctx) { dout[i] = dominate.Run(ctx, dcfg) }
		}
		if _, err := e.Run(progs); err != nil {
			return e9Run{}, err
		}
		st := dominate.Analyze(pos, dout, rc)

		// Color the dominators.
		ccfg := backbone.DefaultColorConfig(p, 32)
		e2 := sim.NewEngine(phy.NewField(p, pos), uint64(s+61))
		cout := make([]backbone.ColorOutcome, n)
		progs2 := make([]sim.Program, n)
		for i := range progs2 {
			i := i
			if dout[i].IsDominator {
				progs2[i] = func(ctx *sim.Ctx) { cout[i] = backbone.RunColor(ctx, ccfg) }
			} else {
				progs2[i] = func(ctx *sim.Ctx) { backbone.IdleColor(ctx, ccfg) }
			}
		}
		if _, err := e2.Run(progs2); err != nil {
			return e9Run{}, err
		}
		maxColor, conflicts := 0, 0
		for i := range pos {
			if !dout[i].IsDominator {
				continue
			}
			if cout[i].Color+1 > maxColor {
				maxColor = cout[i].Color + 1
			}
			for j := i + 1; j < n; j++ {
				if dout[j].IsDominator && cout[i].Color == cout[j].Color &&
					pos[i].Dist(pos[j]) <= ccfg.Radius {
					conflicts++
				}
			}
		}
		return e9Run{
			doms:   float64(st.Dominators),
			dens:   float64(st.MaxDensity),
			selfs:  float64(st.SelfAppointed),
			uncov:  float64(st.Uncovered),
			colors: float64(maxColor),
			confl:  float64(conflicts),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E9: backbone quality (sparse fields, target degree 12)",
		"n", "dominators", "density", "self_appointed", "uncovered", "colors", "conflicts")
	for ni, n := range ns {
		var doms, dens, selfs, uncov, colors, confl []float64
		for s := 0; s < seeds; s++ {
			r := runs[ni*seeds+s]
			doms = append(doms, r.doms)
			dens = append(dens, r.dens)
			selfs = append(selfs, r.selfs)
			uncov = append(uncov, r.uncov)
			colors = append(colors, r.colors)
			confl = append(confl, r.confl)
		}
		t.AddRow(stats.I(n), stats.F1(stats.Median(doms)), stats.F1(stats.Median(dens)),
			stats.F1(stats.Median(selfs)), stats.F1(stats.Median(uncov)),
			stats.F1(stats.Median(colors)), stats.F1(stats.Median(confl)))
	}
	t.AddNote("seeds=%d; density and colors should stay flat (O(1)) as n grows", o.seeds())
	return t, nil
}

// E10DiameterTerm measures aggregation latency on corridors of growing
// diameter: the D term of Theorem 22.
func E10DiameterTerm(o Options) (*stats.Table, error) {
	lengths := []int{3, 6, 9, 12}
	if o.Quick {
		lengths = []int{3, 5}
	}
	type e10Run struct {
		skipped              bool // disconnected layout: excluded from medians
		delay, agg           float64
		informed, total, dia int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(lengths)*seeds, func(i int) (e10Run, error) {
		L, s := lengths[i/seeds], i%seeds
		n := 8 * L
		p := model.Default(4, n)
		rnd := newRand(uint64(1100*L + s))
		pos := topology.Corridor(rnd, n, float64(L)*p.REps(), 0.6*p.REps())
		g := graph.Build(pos, p.REps())
		if !g.Connected() {
			return e10Run{skipped: true}, nil
		}
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = 24
		cfg.PhiMax = 24
		cfg.HopBound = 3*L + 6
		m, err := RunAgg(pos, p, cfg, values, agg.Sum, uint64(1200*L+s))
		if err != nil {
			return e10Run{}, err
		}
		return e10Run{
			delay:    float64(m.CastDelay),
			agg:      float64(m.AggSlots),
			informed: m.Informed,
			total:    m.N,
			dia:      m.Diam,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("E10: diameter term (corridors, F=4)",
		"length", "n", "diam", "cast_delay", "agg_slots", "informed")
	for li, L := range lengths {
		n := 8 * L
		var delays, aggs []float64
		informed, total, diam := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[li*seeds+s]
			if r.skipped {
				continue
			}
			delays = append(delays, r.delay)
			aggs = append(aggs, r.agg)
			informed += r.informed
			total += r.total
			if r.dia > diam {
				diam = r.dia
			}
		}
		t.AddRow(stats.I(L), stats.I(n), stats.I(diam),
			stats.F1(stats.Median(delays)), stats.F1(stats.Median(aggs)),
			pct(informed, total))
	}
	t.AddNote("seeds=%d; cast_delay = backbone convergecast completion, expect ≈ linear in diam", o.seeds())
	return t, nil
}

// All runs every experiment and returns the tables in order.
func All(o Options) ([]*stats.Table, error) {
	runners := []func(Options) (*stats.Table, error){
		E1SpeedupVsChannels, E2AggVsN, E3Baselines, E4Coloring, E5RulingSet,
		E6CSA, E7StructureBuild, E8ExponentialChain, E9Backbone, E10DiameterTerm,
	}
	var out []*stats.Table
	for _, r := range runners {
		tb, err := r(o)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// ByName returns the runner for an experiment ID ("e1".."e10", "a1".."a3",
// "f1".."f6", "c1".."c3").
func ByName(name string) (func(Options) (*stats.Table, error), bool) {
	m := map[string]func(Options) (*stats.Table, error){
		"e1": E1SpeedupVsChannels, "e2": E2AggVsN, "e3": E3Baselines,
		"e4": E4Coloring, "e5": E5RulingSet, "e6": E6CSA,
		"e7": E7StructureBuild, "e8": E8ExponentialChain,
		"e9": E9Backbone, "e10": E10DiameterTerm,
		"a1": A1BackoffAblation, "a2": A2TDMAAblation,
		"a3": A3ChannelSpreadAblation,
		"f1": F1LossSweep, "f2": F2JamSweep, "f3": F3ChurnSweep,
		"f4": F4ByzantineSweep, "f5": F5JamHeadToHead, "f6": F6ByzChurnSweep,
		"c1": C1ColorHeadToHead, "c2": C2ColorScaling, "c3": C3ColorChurn,
	}
	f, ok := m[name]
	return f, ok
}
