package expt

import (
	"math/rand"

	"mcnet/internal/topology"
)

// newRand derives a topology-generation stream from an experiment seed,
// kept separate from the protocol seed space (shared with the facade via
// topology.LayoutRand).
func newRand(seed uint64) *rand.Rand {
	return topology.LayoutRand(seed)
}
