package expt

import (
	"math/rand"

	"mcnet/internal/rng"
)

// newRand derives a topology-generation stream from an experiment seed,
// kept separate from the protocol seed space.
func newRand(seed uint64) *rand.Rand {
	return rng.New(rng.Mix(seed, 0x70706f6c6f6779)) // "topology"
}
