package expt

import (
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/stats"
	"mcnet/internal/topology"
)

// RunAggFaults executes the pipeline once under a fault spec and extracts
// metrics plus the injector's report. The spec must be valid for
// (len(pos), p.Channels); the rate-based crash window defaults to the
// schedule's slot budget.
func RunAggFaults(pos []geo.Point, p model.Params, cfg core.Config, values []int64, op agg.Op, seed uint64, spec fault.Spec) (AggMetrics, fault.Report, error) {
	if err := spec.Validate(len(pos), p.Channels); err != nil {
		return AggMetrics{}, fault.Report{}, err
	}
	pl := core.NewPlan(p, cfg)
	inj := fault.NewInjector(spec, seed, len(pos), p.Channels, pl.Offsets.End)
	return runAgg(pos, p, cfg, values, op, seed, inj)
}

// faultCrowd is the shared deployment of the fault sweeps: a single-cluster
// crowd, the workload whose Δ/F contention the fault layer stresses most.
func faultCrowd(o Options) (n, f int) {
	if o.Quick {
		return 48, 4
	}
	return 96, 4
}

// F1LossSweep measures pipeline robustness against probabilistic message
// loss: informed/exact rates and acknowledgement latency as the
// per-reception loss probability grows.
func F1LossSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	losses := []float64{0, 0.02, 0.05, 0.1, 0.2}
	if o.Quick {
		losses = []float64{0, 0.1}
	}
	type f1Run struct {
		ack, agg                            float64
		informed, exact, acked, lost, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(losses)*seeds, func(i int) (f1Run, error) {
		lp, s := losses[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+71))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(2000+s), fault.Spec{LossProb: lp})
		if err != nil {
			return f1Run{}, err
		}
		return f1Run{float64(m.AckSlots), float64(m.AggSlots),
			m.Informed, m.Exact, m.FollowersAcked, rep.Lost, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F1: aggregation vs message loss (crowd n=%d, F=%d)", n, f),
		"loss", "informed", "exact", "acked", "lost", "ack_slots", "agg_slots")
	for li, lp := range losses {
		var acks, aggs []float64
		informed, exact, acked, lost, total := 0, 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[li*seeds+s]
			informed += r.informed
			exact += r.exact
			acked += r.acked
			lost += r.lost
			total += r.total
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
		}
		t.AddRow(stats.F(lp), pct(informed, total), pct(exact, total),
			stats.I(acked/o.seeds()), stats.I(lost/o.seeds()),
			stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; loss = per-reception Bernoulli suppression; the ACK handshake retries, so informed%% should degrade gracefully", o.seeds())
	return t, nil
}

// F2JamSweep measures robustness against adversarial channel jamming, for
// both the oblivious and round-robin adversaries.
func F2JamSweep(o Options) (*stats.Table, error) {
	n, _ := faultCrowd(o)
	const f = 8
	ks := []int{0, 1, 2, 4}
	models := []fault.JamModel{fault.JamOblivious, fault.JamRoundRobin}
	if o.Quick {
		ks = []int{0, 2}
		models = []fault.JamModel{fault.JamRoundRobin}
	}
	type f2Point struct {
		k  int
		jm fault.JamModel
	}
	var points []f2Point
	for _, k := range ks {
		for _, jm := range models {
			if k == 0 && jm != models[0] {
				continue // k=0 rows are identical across adversaries
			}
			points = append(points, f2Point{k, jm})
		}
	}
	type f2Run struct {
		ack, agg               float64
		informed, exact, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(points)*seeds, func(i int) (f2Run, error) {
		pt, s := points[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+81))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, _, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(3000+s), fault.Spec{JamChannels: pt.k, JamModel: pt.jm})
		if err != nil {
			return f2Run{}, err
		}
		return f2Run{float64(m.AckSlots), float64(m.AggSlots), m.Informed, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F2: aggregation vs jamming (crowd n=%d, F=%d)", n, f),
		"jammed", "adversary", "informed", "exact", "ack_slots", "agg_slots")
	for pi, pt := range points {
		var acks, aggs []float64
		informed, exact, total := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[pi*seeds+s]
			informed += r.informed
			exact += r.exact
			total += r.total
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
		}
		name := pt.jm.String()
		if pt.k == 0 {
			name = "-"
		}
		t.AddRow(stats.I(pt.k), name, pct(informed, total), pct(exact, total),
			stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; adversary jams k of F=%d channels per slot; channel diversity should absorb small k", o.seeds(), f)
	return t, nil
}

// byzFractions resolves the Byzantine-fraction axis of a sweep: the -byz
// override when given, the experiment's default axis otherwise.
func byzFractions(o Options, def []float64) []float64 {
	if len(o.Byz) > 0 {
		return o.Byz
	}
	return def
}

// jamAdversaries resolves the jam-model axis of a sweep: the -jam-model
// override when given, the experiment's default set otherwise.
func jamAdversaries(o Options, def []fault.JamModel) []fault.JamModel {
	if len(o.JamModels) > 0 {
		return o.JamModels
	}
	return def
}

// F3ChurnSweep measures robustness against node churn: surviving-node
// aggregate correctness as the crash rate grows.
func F3ChurnSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	rates := []float64{0, 0.05, 0.1, 0.2}
	if o.Quick {
		rates = []float64{0, 0.1}
	}
	type f3Run struct {
		agg                                           float64
		crashed, informed, total                      int
		survivors, survInformed, survAgree, survExact int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(rates)*seeds, func(i int) (f3Run, error) {
		cr, s := rates[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+91))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(4000+s), fault.Spec{CrashRate: cr})
		if err != nil {
			return f3Run{}, err
		}
		return f3Run{
			agg:          float64(m.AggSlots),
			crashed:      len(rep.CrashedNodes),
			informed:     m.Informed,
			total:        m.N,
			survivors:    m.Survivors,
			survInformed: m.SurvivorsInformed,
			survAgree:    m.SurvivorsAgreeing,
			survExact:    m.SurvivorsExact,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F3: aggregation vs churn (crowd n=%d, F=%d)", n, f),
		"crash_rate", "crashed", "informed", "surv_informed", "surv_agree", "surv_exact", "agg_slots")
	for ri, cr := range rates {
		var aggs []float64
		crashed, informed, total := 0, 0, 0
		survInformed, survAgree, survExact, survivors := 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[ri*seeds+s]
			crashed += r.crashed
			informed += r.informed
			total += r.total
			survivors += r.survivors
			survInformed += r.survInformed
			survAgree += r.survAgree
			survExact += r.survExact
			aggs = append(aggs, r.agg)
		}
		t.AddRow(stats.F(cr), stats.I(crashed/o.seeds()), pct(informed, total),
			pct(survInformed, survivors), pct(survAgree, survivors), pct(survExact, survivors),
			stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; crash slots drawn uniformly over the schedule; surv_agree = consensus among informed survivors (exactness vs the full fold is unreachable when nodes die before contributing)", o.seeds())
	return t, nil
}

// F4ByzantineSweep is the headline degradation sweep: honest-survivor
// correctness (SurvivorsExact/Agreeing) and delivery as the Byzantine
// fraction grows, for each lying strategy, under an oblivious and a
// round-robin jammer (the reactive/adaptive jammers fragment agreement so
// thoroughly on their own that they drown the Byzantine signal — F5 ranks
// them head-to-head; -jam-model swaps them in here for the brave).
// Byzantine nodes are excluded from every survivor count, so the columns
// measure what the honest population can still guarantee.
func F4ByzantineSweep(o Options) (*stats.Table, error) {
	// A sparse multi-cluster field (the A2 deployment), not the crowd: with
	// many clusters a lying dominator poisons only its own cluster, so
	// honest-survivor correctness degrades with the Byzantine fraction
	// instead of cliffing at the first liar.
	n := 80
	if o.Quick {
		n = 48
	}
	const f = 4
	fractions := byzFractions(o, []float64{0, 0.1, 0.2, 0.3})
	strategies := []fault.ByzStrategy{fault.ByzCorrupt, fault.ByzEquivocate, fault.ByzSilent}
	models := jamAdversaries(o, []fault.JamModel{fault.JamOblivious, fault.JamRoundRobin})
	if o.Quick {
		fractions = byzFractions(o, []float64{0, 0.2})
		strategies = []fault.ByzStrategy{fault.ByzCorrupt, fault.ByzEquivocate}
	}
	type f4Point struct {
		frac float64
		st   fault.ByzStrategy
		jm   fault.JamModel
	}
	var points []f4Point
	for _, jm := range models {
		for _, st := range strategies {
			for _, frac := range fractions {
				if frac == 0 && st != strategies[0] {
					continue // no Byzantine nodes: the strategy is moot
				}
				points = append(points, f4Point{frac, st, jm})
			}
		}
	}
	type f4Run struct {
		agg                             float64
		byz, informed, total            int
		survivors, survExact, survAgree int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(points)*seeds, func(i int) (f4Run, error) {
		pt, s := points[i/seeds], i%seeds
		p := model.Default(f, 2*n)
		pos := topology.UniformDegree(newRand(uint64(5100*n+s)), n, p.REps(), 14)
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = 32
		cfg.PhiMax = 24
		cfg.HopBound = 14
		m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(5000+s), fault.Spec{
				JamChannels: 1,
				JamModel:    pt.jm,
				Byz:         fault.ByzSpec{Fraction: pt.frac, Strategy: pt.st},
			})
		if err != nil {
			return f4Run{}, err
		}
		return f4Run{
			agg:       float64(m.AggSlots),
			byz:       len(rep.ByzantineNodes),
			informed:  m.Informed,
			total:     m.N,
			survivors: m.Survivors,
			survExact: m.SurvivorsExact,
			survAgree: m.SurvivorsAgreeing,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F4: aggregation vs Byzantine nodes (sparse field n=%d, F=%d, 1 jammed channel)", n, f),
		"byz", "strategy", "adversary", "byz_nodes", "informed", "surv_exact", "surv_agree", "agg_slots")
	for pi, pt := range points {
		var aggs []float64
		byz, informed, total := 0, 0, 0
		survivors, survExact, survAgree := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[pi*seeds+s]
			byz += r.byz
			informed += r.informed
			total += r.total
			survivors += r.survivors
			survExact += r.survExact
			survAgree += r.survAgree
			aggs = append(aggs, r.agg)
		}
		name := pt.st.String()
		if pt.frac == 0 {
			name = "-"
		}
		t.AddRow(stats.F(pt.frac), name, pt.jm.String(), stats.I(byz/seeds),
			pct(informed, total), pct(survExact, survivors), pct(survAgree, survivors),
			stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; surv_* counts exclude the Byzantine nodes themselves: corrupt/equivocate poison the fold (surv_exact falls, surv_agree tracks the largest lie-consistent bloc), silent starves it", o.seeds())
	return t, nil
}

// F5JamHeadToHead pits all four jamming adversaries against the pipeline at
// equal channel budget k: the reactive and adaptive attackers chase the
// traffic the oblivious ones only stumble onto.
func F5JamHeadToHead(o Options) (*stats.Table, error) {
	n, _ := faultCrowd(o)
	const f = 8
	ks := []int{0, 1, 2, 4}
	models := jamAdversaries(o, []fault.JamModel{
		fault.JamOblivious, fault.JamRoundRobin, fault.JamReactive, fault.JamAdaptive})
	if o.Quick {
		ks = []int{0, 2}
	}
	type f5Point struct {
		k  int
		jm fault.JamModel
	}
	var points []f5Point
	for _, k := range ks {
		for _, jm := range models {
			if k == 0 && jm != models[0] {
				continue // k=0 rows are identical across adversaries
			}
			points = append(points, f5Point{k, jm})
		}
	}
	type f5Run struct {
		ack, agg               float64
		informed, exact, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(points)*seeds, func(i int) (f5Run, error) {
		pt, s := points[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+111))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, _, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(6000+s), fault.Spec{JamChannels: pt.k, JamModel: pt.jm})
		if err != nil {
			return f5Run{}, err
		}
		return f5Run{float64(m.AckSlots), float64(m.AggSlots), m.Informed, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F5: jamming adversaries head-to-head (crowd n=%d, F=%d)", n, f),
		"jammed", "adversary", "informed", "exact", "ack_slots", "agg_slots")
	for pi, pt := range points {
		var acks, aggs []float64
		informed, exact, total := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[pi*seeds+s]
			informed += r.informed
			exact += r.exact
			total += r.total
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
		}
		name := pt.jm.String()
		if pt.k == 0 {
			name = "-"
		}
		t.AddRow(stats.I(pt.k), name, pct(informed, total), pct(exact, total),
			stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; all adversaries jam k of F=%d channels per slot; reactive/adaptive target last slot's decoded traffic, oblivious/roundrobin ignore it", o.seeds(), f)
	return t, nil
}

// F6ByzChurnSweep composes Byzantine corruption with fail-stop churn: lying
// nodes plus crashing honest ones, the compound failure mode a deployment
// actually sees.
func F6ByzChurnSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	fractions := byzFractions(o, []float64{0, 0.1, 0.2})
	rates := []float64{0, 0.05, 0.1}
	if o.Quick {
		fractions = byzFractions(o, []float64{0, 0.2})
		rates = []float64{0, 0.1}
	}
	type f6Point struct {
		frac, rate float64
	}
	var points []f6Point
	for _, frac := range fractions {
		for _, rate := range rates {
			points = append(points, f6Point{frac, rate})
		}
	}
	type f6Run struct {
		agg                             float64
		byz, crashed, informed, total   int
		survivors, survExact, survAgree int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(points)*seeds, func(i int) (f6Run, error) {
		pt, s := points[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+121))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(7000+s), fault.Spec{
				CrashRate: pt.rate,
				Byz:       fault.ByzSpec{Fraction: pt.frac, Strategy: fault.ByzCorrupt},
			})
		if err != nil {
			return f6Run{}, err
		}
		return f6Run{
			agg:       float64(m.AggSlots),
			byz:       len(rep.ByzantineNodes),
			crashed:   len(rep.CrashedNodes),
			informed:  m.Informed,
			total:     m.N,
			survivors: m.Survivors,
			survExact: m.SurvivorsExact,
			survAgree: m.SurvivorsAgreeing,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F6: Byzantine × churn composition (crowd n=%d, F=%d, strategy=corrupt)", n, f),
		"byz", "crash_rate", "byz_nodes", "crashed", "informed", "surv_exact", "surv_agree", "agg_slots")
	for pi, pt := range points {
		var aggs []float64
		byz, crashed, informed, total := 0, 0, 0, 0
		survivors, survExact, survAgree := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[pi*seeds+s]
			byz += r.byz
			crashed += r.crashed
			informed += r.informed
			total += r.total
			survivors += r.survivors
			survExact += r.survExact
			survAgree += r.survAgree
			aggs = append(aggs, r.agg)
		}
		t.AddRow(stats.F(pt.frac), stats.F(pt.rate), stats.I(byz/seeds), stats.I(crashed/seeds),
			pct(informed, total), pct(survExact, survivors), pct(survAgree, survivors),
			stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; survivor counts exclude both crashed and Byzantine nodes; corrupt lies compound with churn losses instead of masking them", o.seeds())
	return t, nil
}
