package expt

import (
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/stats"
)

// RunAggFaults executes the pipeline once under a fault spec and extracts
// metrics plus the injector's report. The spec must be valid for
// (len(pos), p.Channels); the rate-based crash window defaults to the
// schedule's slot budget.
func RunAggFaults(pos []geo.Point, p model.Params, cfg core.Config, values []int64, op agg.Op, seed uint64, spec fault.Spec) (AggMetrics, fault.Report, error) {
	if err := spec.Validate(len(pos), p.Channels); err != nil {
		return AggMetrics{}, fault.Report{}, err
	}
	pl := core.NewPlan(p, cfg)
	inj := fault.NewInjector(spec, seed, len(pos), p.Channels, pl.Offsets.End)
	return runAgg(pos, p, cfg, values, op, seed, inj)
}

// faultCrowd is the shared deployment of the fault sweeps: a single-cluster
// crowd, the workload whose Δ/F contention the fault layer stresses most.
func faultCrowd(o Options) (n, f int) {
	if o.Quick {
		return 48, 4
	}
	return 96, 4
}

// F1LossSweep measures pipeline robustness against probabilistic message
// loss: informed/exact rates and acknowledgement latency as the
// per-reception loss probability grows.
func F1LossSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	losses := []float64{0, 0.02, 0.05, 0.1, 0.2}
	if o.Quick {
		losses = []float64{0, 0.1}
	}
	t := stats.NewTable(
		fmt.Sprintf("F1: aggregation vs message loss (crowd n=%d, F=%d)", n, f),
		"loss", "informed", "exact", "acked", "lost", "ack_slots", "agg_slots")
	for _, lp := range losses {
		var acks, aggs []float64
		informed, exact, acked, lost, total := 0, 0, 0, 0, 0
		for s := 0; s < o.seeds(); s++ {
			p := model.Default(f, n)
			pos := Crowd(p, n, uint64(s+71))
			values, _ := sequentialValues(n)
			cfg := core.DefaultConfig(p)
			cfg.DeltaHat = n
			cfg.PhiMax = 4
			cfg.HopBound = 2
			m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
				uint64(2000+s), fault.Spec{LossProb: lp})
			if err != nil {
				return nil, err
			}
			informed += m.Informed
			exact += m.Exact
			acked += m.FollowersAcked
			lost += rep.Lost
			total += m.N
			acks = append(acks, float64(m.AckSlots))
			aggs = append(aggs, float64(m.AggSlots))
		}
		t.AddRow(stats.F(lp), pct(informed, total), pct(exact, total),
			stats.I(acked/o.seeds()), stats.I(lost/o.seeds()),
			stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; loss = per-reception Bernoulli suppression; the ACK handshake retries, so informed%% should degrade gracefully", o.seeds())
	return t, nil
}

// F2JamSweep measures robustness against adversarial channel jamming, for
// both the oblivious and round-robin adversaries.
func F2JamSweep(o Options) (*stats.Table, error) {
	n, _ := faultCrowd(o)
	const f = 8
	ks := []int{0, 1, 2, 4}
	models := []fault.JamModel{fault.JamOblivious, fault.JamRoundRobin}
	if o.Quick {
		ks = []int{0, 2}
		models = []fault.JamModel{fault.JamRoundRobin}
	}
	t := stats.NewTable(
		fmt.Sprintf("F2: aggregation vs jamming (crowd n=%d, F=%d)", n, f),
		"jammed", "adversary", "informed", "exact", "ack_slots", "agg_slots")
	for _, k := range ks {
		for _, jm := range models {
			if k == 0 && jm != models[0] {
				continue // k=0 rows are identical across adversaries
			}
			var acks, aggs []float64
			informed, exact, total := 0, 0, 0
			for s := 0; s < o.seeds(); s++ {
				p := model.Default(f, n)
				pos := Crowd(p, n, uint64(s+81))
				values, _ := sequentialValues(n)
				cfg := core.DefaultConfig(p)
				cfg.DeltaHat = n
				cfg.PhiMax = 4
				cfg.HopBound = 2
				m, _, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
					uint64(3000+s), fault.Spec{JamChannels: k, JamModel: jm})
				if err != nil {
					return nil, err
				}
				informed += m.Informed
				exact += m.Exact
				total += m.N
				acks = append(acks, float64(m.AckSlots))
				aggs = append(aggs, float64(m.AggSlots))
			}
			name := jm.String()
			if k == 0 {
				name = "-"
			}
			t.AddRow(stats.I(k), name, pct(informed, total), pct(exact, total),
				stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
		}
	}
	t.AddNote("seeds=%d; adversary jams k of F=%d channels per slot; channel diversity should absorb small k", o.seeds(), f)
	return t, nil
}

// F3ChurnSweep measures robustness against node churn: surviving-node
// aggregate correctness as the crash rate grows.
func F3ChurnSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	rates := []float64{0, 0.05, 0.1, 0.2}
	if o.Quick {
		rates = []float64{0, 0.1}
	}
	t := stats.NewTable(
		fmt.Sprintf("F3: aggregation vs churn (crowd n=%d, F=%d)", n, f),
		"crash_rate", "crashed", "informed", "surv_informed", "surv_agree", "surv_exact", "agg_slots")
	for _, cr := range rates {
		var aggs []float64
		crashed, informed, total := 0, 0, 0
		survInformed, survAgree, survExact, survivors := 0, 0, 0, 0
		for s := 0; s < o.seeds(); s++ {
			p := model.Default(f, n)
			pos := Crowd(p, n, uint64(s+91))
			values, _ := sequentialValues(n)
			cfg := core.DefaultConfig(p)
			cfg.DeltaHat = n
			cfg.PhiMax = 4
			cfg.HopBound = 2
			m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
				uint64(4000+s), fault.Spec{CrashRate: cr})
			if err != nil {
				return nil, err
			}
			crashed += len(rep.CrashedNodes)
			informed += m.Informed
			total += m.N
			survivors += m.Survivors
			survInformed += m.SurvivorsInformed
			survAgree += m.SurvivorsAgreeing
			survExact += m.SurvivorsExact
			aggs = append(aggs, float64(m.AggSlots))
		}
		t.AddRow(stats.F(cr), stats.I(crashed/o.seeds()), pct(informed, total),
			pct(survInformed, survivors), pct(survAgree, survivors), pct(survExact, survivors),
			stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; crash slots drawn uniformly over the schedule; surv_agree = consensus among informed survivors (exactness vs the full fold is unreachable when nodes die before contributing)", o.seeds())
	return t, nil
}
