package expt

import (
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/stats"
)

// RunAggFaults executes the pipeline once under a fault spec and extracts
// metrics plus the injector's report. The spec must be valid for
// (len(pos), p.Channels); the rate-based crash window defaults to the
// schedule's slot budget.
func RunAggFaults(pos []geo.Point, p model.Params, cfg core.Config, values []int64, op agg.Op, seed uint64, spec fault.Spec) (AggMetrics, fault.Report, error) {
	if err := spec.Validate(len(pos), p.Channels); err != nil {
		return AggMetrics{}, fault.Report{}, err
	}
	pl := core.NewPlan(p, cfg)
	inj := fault.NewInjector(spec, seed, len(pos), p.Channels, pl.Offsets.End)
	return runAgg(pos, p, cfg, values, op, seed, inj)
}

// faultCrowd is the shared deployment of the fault sweeps: a single-cluster
// crowd, the workload whose Δ/F contention the fault layer stresses most.
func faultCrowd(o Options) (n, f int) {
	if o.Quick {
		return 48, 4
	}
	return 96, 4
}

// F1LossSweep measures pipeline robustness against probabilistic message
// loss: informed/exact rates and acknowledgement latency as the
// per-reception loss probability grows.
func F1LossSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	losses := []float64{0, 0.02, 0.05, 0.1, 0.2}
	if o.Quick {
		losses = []float64{0, 0.1}
	}
	type f1Run struct {
		ack, agg                            float64
		informed, exact, acked, lost, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(losses)*seeds, func(i int) (f1Run, error) {
		lp, s := losses[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+71))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(2000+s), fault.Spec{LossProb: lp})
		if err != nil {
			return f1Run{}, err
		}
		return f1Run{float64(m.AckSlots), float64(m.AggSlots),
			m.Informed, m.Exact, m.FollowersAcked, rep.Lost, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F1: aggregation vs message loss (crowd n=%d, F=%d)", n, f),
		"loss", "informed", "exact", "acked", "lost", "ack_slots", "agg_slots")
	for li, lp := range losses {
		var acks, aggs []float64
		informed, exact, acked, lost, total := 0, 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[li*seeds+s]
			informed += r.informed
			exact += r.exact
			acked += r.acked
			lost += r.lost
			total += r.total
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
		}
		t.AddRow(stats.F(lp), pct(informed, total), pct(exact, total),
			stats.I(acked/o.seeds()), stats.I(lost/o.seeds()),
			stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; loss = per-reception Bernoulli suppression; the ACK handshake retries, so informed%% should degrade gracefully", o.seeds())
	return t, nil
}

// F2JamSweep measures robustness against adversarial channel jamming, for
// both the oblivious and round-robin adversaries.
func F2JamSweep(o Options) (*stats.Table, error) {
	n, _ := faultCrowd(o)
	const f = 8
	ks := []int{0, 1, 2, 4}
	models := []fault.JamModel{fault.JamOblivious, fault.JamRoundRobin}
	if o.Quick {
		ks = []int{0, 2}
		models = []fault.JamModel{fault.JamRoundRobin}
	}
	type f2Point struct {
		k  int
		jm fault.JamModel
	}
	var points []f2Point
	for _, k := range ks {
		for _, jm := range models {
			if k == 0 && jm != models[0] {
				continue // k=0 rows are identical across adversaries
			}
			points = append(points, f2Point{k, jm})
		}
	}
	type f2Run struct {
		ack, agg               float64
		informed, exact, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(points)*seeds, func(i int) (f2Run, error) {
		pt, s := points[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+81))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, _, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(3000+s), fault.Spec{JamChannels: pt.k, JamModel: pt.jm})
		if err != nil {
			return f2Run{}, err
		}
		return f2Run{float64(m.AckSlots), float64(m.AggSlots), m.Informed, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F2: aggregation vs jamming (crowd n=%d, F=%d)", n, f),
		"jammed", "adversary", "informed", "exact", "ack_slots", "agg_slots")
	for pi, pt := range points {
		var acks, aggs []float64
		informed, exact, total := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[pi*seeds+s]
			informed += r.informed
			exact += r.exact
			total += r.total
			acks = append(acks, r.ack)
			aggs = append(aggs, r.agg)
		}
		name := pt.jm.String()
		if pt.k == 0 {
			name = "-"
		}
		t.AddRow(stats.I(pt.k), name, pct(informed, total), pct(exact, total),
			stats.F1(stats.Median(acks)), stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; adversary jams k of F=%d channels per slot; channel diversity should absorb small k", o.seeds(), f)
	return t, nil
}

// F3ChurnSweep measures robustness against node churn: surviving-node
// aggregate correctness as the crash rate grows.
func F3ChurnSweep(o Options) (*stats.Table, error) {
	n, f := faultCrowd(o)
	rates := []float64{0, 0.05, 0.1, 0.2}
	if o.Quick {
		rates = []float64{0, 0.1}
	}
	type f3Run struct {
		agg                                           float64
		crashed, informed, total                      int
		survivors, survInformed, survAgree, survExact int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(rates)*seeds, func(i int) (f3Run, error) {
		cr, s := rates[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+91))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		m, rep, err := RunAggFaults(pos, p, cfg, values, agg.Sum,
			uint64(4000+s), fault.Spec{CrashRate: cr})
		if err != nil {
			return f3Run{}, err
		}
		return f3Run{
			agg:          float64(m.AggSlots),
			crashed:      len(rep.CrashedNodes),
			informed:     m.Informed,
			total:        m.N,
			survivors:    m.Survivors,
			survInformed: m.SurvivorsInformed,
			survAgree:    m.SurvivorsAgreeing,
			survExact:    m.SurvivorsExact,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("F3: aggregation vs churn (crowd n=%d, F=%d)", n, f),
		"crash_rate", "crashed", "informed", "surv_informed", "surv_agree", "surv_exact", "agg_slots")
	for ri, cr := range rates {
		var aggs []float64
		crashed, informed, total := 0, 0, 0
		survInformed, survAgree, survExact, survivors := 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[ri*seeds+s]
			crashed += r.crashed
			informed += r.informed
			total += r.total
			survivors += r.survivors
			survInformed += r.survInformed
			survAgree += r.survAgree
			survExact += r.survExact
			aggs = append(aggs, r.agg)
		}
		t.AddRow(stats.F(cr), stats.I(crashed/o.seeds()), pct(informed, total),
			pct(survInformed, survivors), pct(survAgree, survivors), pct(survExact, survivors),
			stats.F1(stats.Median(aggs)))
	}
	t.AddNote("seeds=%d; crash slots drawn uniformly over the schedule; surv_agree = consensus among informed survivors (exactness vs the full fold is unreachable when nodes die before contributing)", o.seeds())
	return t, nil
}
