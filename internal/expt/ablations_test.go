package expt

import "testing"

func TestA1Quick(t *testing.T) {
	tb, err := A1BackoffAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestA2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse ablation is slow")
	}
	tb, err := A2TDMAAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestA3Quick(t *testing.T) {
	tb, err := A3ChannelSpreadAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}
