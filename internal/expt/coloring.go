package expt

// The c-series compares the pluggable coloring backends head-to-head: the
// paper's Sec. 7 procedures against the degree+1 list coloring and the
// hypergraph-symmetry-breaking multi-channel assignment, on the same
// engine, deployments and seeds. C1 sweeps the topology suite, C2 scales
// the node count, C3 injects churn.

import (
	"context"
	"fmt"

	"mcnet/internal/coloring"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/stats"
	"mcnet/internal/topology"
)

// colorBackends resolves the run's backend subset (default: every
// registered backend, sec7 first).
func (o Options) colorBackends() []string {
	if len(o.Colorers) == 0 {
		return coloring.Names()
	}
	return o.Colorers
}

// colorCase is one deployment of the c-series, with the structure sizing
// the sec7 backend derives its schedule from.
type colorCase struct {
	name     string
	pos      []geo.Point
	deltaHat int
	phiMax   int
	hopBound int
}

// colorSuite spans the topology families at one node count.
func colorSuite(n int, seed uint64) []colorCase {
	g := model.Default(4, n) // geometry only
	return []colorCase{
		{"crowd", topology.Crowd(newRand(seed), n, g.ClusterRadius()), n, 4, 2},
		{"uniform", topology.UniformDegree(newRand(seed+1), n, g.REps(), 12), 32, 24, 12},
		{"grid", topology.PerturbedGrid(newRand(seed+2), n, 0.5*g.REps(), 0.1*g.REps()), 16, 24, 12},
		{"line", topology.Line(n, 0.5), 6, 24, 12},
	}
}

// colorMetrics is one backend run's fold into a c-series row.
type colorMetrics struct {
	palette, cycle, rounds, colorSlots int
	conflicts, uncolored               int
	delivered, links                   int
	crashed                            int
	survConflicts, survUncolored       int
}

// runColorer executes one backend over a deployment, optionally under a
// fault spec, and extracts the comparable metrics. The structure plan is
// always built (it is cheap and only sec7 consumes it), so every backend
// sees an identical engine.
func runColorer(goctx context.Context, name string, tc colorCase, p model.Params, seed uint64, spec *fault.Spec) (colorMetrics, error) {
	var m colorMetrics
	b, err := coloring.ByName(name)
	if err != nil {
		return m, err
	}
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = tc.deltaHat
	cfg.PhiMax = tc.phiMax
	cfg.HopBound = tc.hopBound
	pl := core.NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, tc.pos), seed)
	var inj *fault.Injector
	if spec != nil {
		if err := spec.Validate(len(tc.pos), p.Channels); err != nil {
			return m, err
		}
		inj = fault.NewInjector(*spec, seed, len(tc.pos), p.Channels, pl.Offsets.End)
		e.Faults = inj
	}
	res, st, err := b.Color(goctx, e, pl)
	if err != nil {
		return m, err
	}
	m.palette, m.cycle, m.rounds, m.colorSlots = st.Palette, st.Cycle, st.Rounds, st.ColorSlots
	m.conflicts, m.uncolored, _ = coloring.Validate(tc.pos, p.REps(), res)
	m.delivered, m.links = tdmaVerify(tc.pos, p, res)
	if inj != nil {
		rep := inj.Report()
		m.crashed = len(rep.CrashedNodes)
		dead := make(map[int]bool, m.crashed)
		for _, id := range rep.CrashedNodes {
			dead[id] = true
		}
		g := graph.Build(tc.pos, p.REps())
		for i, r := range res {
			if dead[i] {
				continue
			}
			if r.Color < 0 {
				m.survUncolored++
				continue
			}
			for _, j := range g.Neighbors(i) {
				if int(j) > i && !dead[int(j)] && res[j].Color == r.Color {
					m.survConflicts++
				}
			}
		}
	}
	return m, nil
}

// tdmaVerify replays a coloring as a single-channel TDMA broadcast schedule
// over the SINR layer — in cycle slot t, nodes with color t transmit — and
// counts the directed communication-graph links that decoded, mirroring the
// facade's VerifyTDMA so the c-series reports schedule quality, not just
// palette arithmetic.
func tdmaVerify(pos []geo.Point, p model.Params, res []coloring.Result) (delivered, links int) {
	g := graph.Build(pos, p.REps())
	field := phy.NewField(p.WithChannels(1), pos)
	inUse := make(map[int]bool, len(res))
	for _, r := range res {
		if r.Color >= 0 {
			inUse[r.Color] = true
		}
	}
	for slot := range inUse {
		var txs []phy.Tx
		var rxs []phy.Rx
		for i, r := range res {
			if r.Color == slot {
				txs = append(txs, phy.Tx{Node: i, Channel: 0, Msg: i})
			} else {
				rxs = append(rxs, phy.Rx{Node: i, Channel: 0})
			}
		}
		for k, rec := range field.Resolve(txs, rxs) {
			if !rec.Decoded {
				continue
			}
			for _, nb := range g.Neighbors(rxs[k].Node) {
				if int(nb) == rec.From {
					delivered++
				}
			}
		}
	}
	for i := range pos {
		links += g.Degree(i)
	}
	return delivered, links
}

// C1ColorHeadToHead races every backend over the topology suite: palette,
// induced TDMA cycle, rounds to stabilize, slots to the last color, and the
// verified single-channel delivery of the resulting schedule. The
// acceptance claim lives here: dplus1 and hsb use strictly smaller palettes
// than sec7's k·φ + i sequence, and hsb's F-packed pairs shorten the cycle
// further.
func C1ColorHeadToHead(o Options) (*stats.Table, error) {
	n, f := 64, 4
	if o.Quick {
		n = 36
	}
	suite := colorSuite(n, 41)
	backends := o.colorBackends()
	seeds := o.seeds()
	runs, err := sweep(o, len(suite)*len(backends)*seeds, func(i int) (colorMetrics, error) {
		tc := suite[i/(len(backends)*seeds)]
		b := backends[i/seeds%len(backends)]
		s := i % seeds
		return runColorer(o.ctx(), b, tc, model.Default(f, n), uint64(700+s), nil)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("C1: coloring backends head-to-head (n=%d, F=%d)", n, f),
		"topo", "backend", "palette", "cycle", "rounds", "color_slots", "tdma_delivered", "conflicts", "uncolored")
	for ti, tc := range suite {
		for bi, b := range backends {
			agg := foldColorRuns(runs[(ti*len(backends)+bi)*seeds : (ti*len(backends)+bi+1)*seeds])
			t.AddRow(tc.name, b, stats.I(agg.palette), stats.I(agg.cycle),
				stats.I(agg.rounds), stats.I(agg.colorSlots),
				pct(agg.delivered, agg.links), stats.I(agg.conflicts), stats.I(agg.uncolored))
		}
	}
	t.AddNote("seeds=%d; palette/cycle are per-seed maxima, rounds/color_slots medians", seeds)
	t.AddNote("cycle counts TDMA slots: hsb packs F colors per slot on distinct channels")
	t.AddNote("tdma_delivered verifies the schedule single-channel over the SINR layer")
	t.AddNote("sec7 conflicts are cross-cluster (clusters within interference range drawing one palette) — present pre-refactor, see the golden transcripts")
	return t, nil
}

// C2ColorScaling scales the node count on the bounded-degree uniform field:
// palettes should track the (constant) degree, not n, while rounds grow
// slowly with n.
func C2ColorScaling(o Options) (*stats.Table, error) {
	ns := []int{32, 64, 96}
	if o.Quick {
		ns = []int{24, 48}
	}
	f := 4
	backends := o.colorBackends()
	seeds := o.seeds()
	type c2case struct {
		n  int
		tc colorCase
	}
	cases := make([]c2case, len(ns))
	for i, n := range ns {
		g := model.Default(f, n)
		cases[i] = c2case{n, colorCase{"uniform", topology.UniformDegree(newRand(uint64(50+i)), n, g.REps(), 12), 32, 24, 12}}
	}
	runs, err := sweep(o, len(cases)*len(backends)*seeds, func(i int) (colorMetrics, error) {
		c := cases[i/(len(backends)*seeds)]
		b := backends[i/seeds%len(backends)]
		s := i % seeds
		return runColorer(o.ctx(), b, c.tc, model.Default(f, c.n), uint64(800+s), nil)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("C2: backend scaling on uniform degree-12 fields (F=%d)", f),
		"n", "backend", "palette", "cycle", "rounds", "color_slots", "conflicts", "uncolored")
	for ci, c := range cases {
		for bi, b := range backends {
			agg := foldColorRuns(runs[(ci*len(backends)+bi)*seeds : (ci*len(backends)+bi+1)*seeds])
			t.AddRow(stats.I(c.n), b, stats.I(agg.palette), stats.I(agg.cycle),
				stats.I(agg.rounds), stats.I(agg.colorSlots),
				stats.I(agg.conflicts), stats.I(agg.uncolored))
		}
	}
	t.AddNote("seeds=%d; a degree-bound palette stays flat in n while sec7's φ-strided palette tracks its cluster sizing", seeds)
	return t, nil
}

// C3ColorChurn crashes a random node fraction mid-run and scores what each
// backend leaves behind for the survivors: conflicts and uncolored nodes
// among live pairs only, since a crashed node's half-finished color is
// nobody's schedule.
func C3ColorChurn(o Options) (*stats.Table, error) {
	n, f := 48, 4
	rates := []float64{0, 0.1, 0.2}
	if o.Quick {
		n = 32
		rates = []float64{0, 0.2}
	}
	g := model.Default(f, n)
	tc := colorCase{"crowd", topology.Crowd(newRand(61), n, g.ClusterRadius()), n, 4, 2}
	backends := o.colorBackends()
	seeds := o.seeds()
	runs, err := sweep(o, len(rates)*len(backends)*seeds, func(i int) (colorMetrics, error) {
		rate := rates[i/(len(backends)*seeds)]
		b := backends[i/seeds%len(backends)]
		s := i % seeds
		spec := fault.Spec{CrashRate: rate}
		return runColorer(o.ctx(), b, tc, model.Default(f, n), uint64(900+s), &spec)
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("C3: backend robustness under churn (crowd n=%d, F=%d)", n, f),
		"crash_rate", "backend", "crashed", "surv_conflicts", "surv_uncolored", "palette")
	for ri, rate := range rates {
		for bi, b := range backends {
			sl := runs[(ri*len(backends)+bi)*seeds : (ri*len(backends)+bi+1)*seeds]
			agg := foldColorRuns(sl)
			crashed, survConf, survUnc := 0, 0, 0
			for _, r := range sl {
				crashed += r.crashed
				survConf += r.survConflicts
				survUnc += r.survUncolored
			}
			t.AddRow(stats.F(rate), b, stats.I(crashed), stats.I(survConf),
				stats.I(survUnc), stats.I(agg.palette))
		}
	}
	t.AddNote("seeds=%d; crashed/surv_* are totals across seeds; survivors exclude crashed nodes and their edges", seeds)
	return t, nil
}

// foldColorRuns folds per-seed metrics into one row: maxima for palette and
// cycle (worst case is the claim), medians for the latency measures, sums
// for the correctness counters, minima-preserving sums for delivery.
func foldColorRuns(sl []colorMetrics) colorMetrics {
	var agg colorMetrics
	var rounds, slots []int
	for _, r := range sl {
		if r.palette > agg.palette {
			agg.palette = r.palette
		}
		if r.cycle > agg.cycle {
			agg.cycle = r.cycle
		}
		rounds = append(rounds, r.rounds)
		slots = append(slots, r.colorSlots)
		agg.conflicts += r.conflicts
		agg.uncolored += r.uncolored
		agg.delivered += r.delivered
		agg.links += r.links
	}
	agg.rounds = stats.MedianInt(rounds)
	agg.colorSlots = stats.MedianInt(slots)
	return agg
}
