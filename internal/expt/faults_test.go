package expt

import (
	"reflect"
	"strings"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/model"
)

// TestFaultSweepsQuick: each fault experiment runs in quick mode and
// renders a table with its headline column.
func TestFaultSweepsQuick(t *testing.T) {
	o := Options{Seeds: 1, Quick: true}
	cases := []struct {
		id, col string
	}{
		{"f1", "loss"},
		{"f2", "jammed"},
		{"f3", "crash_rate"},
	}
	for _, tc := range cases {
		runner, ok := ByName(tc.id)
		if !ok {
			t.Fatalf("experiment %q not registered", tc.id)
		}
		tb, err := runner(o)
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		if !strings.Contains(tb.CSV(), tc.col) {
			t.Errorf("%s: missing column %q:\n%s", tc.id, tc.col, tb.CSV())
		}
		if len(tb.Rows) < 2 {
			t.Errorf("%s: only %d sweep rows", tc.id, len(tb.Rows))
		}
	}
}

// TestRunAggFaultsDeterminism: equal (seed, spec) pairs reproduce identical
// metrics and fault reports; a zero spec matches the fault-free runner.
func TestRunAggFaultsDeterminism(t *testing.T) {
	const n, f = 40, 4
	p := model.Default(f, n)
	pos := Crowd(p, n, 3)
	values, _ := sequentialValues(n)
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2

	spec := fault.Spec{LossProb: 0.1, JamChannels: 1, JamModel: fault.JamRoundRobin, CrashRate: 0.1}
	m1, r1, err := RunAggFaults(pos, p, cfg, values, agg.Sum, 99, spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, r2, err := RunAggFaults(pos, p, cfg, values, agg.Sum, 99, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) || !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed+spec diverged:\n%+v\n%+v\n%+v\n%+v", m1, m2, r1, r2)
	}

	plain, err := RunAgg(pos, p, cfg, values, agg.Sum, 99)
	if err != nil {
		t.Fatal(err)
	}
	zero, zrep, err := RunAggFaults(pos, p, cfg, values, agg.Sum, 99, fault.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, zero) {
		t.Errorf("zero spec diverged from fault-free run:\n%+v\n%+v", plain, zero)
	}
	if zrep.Lost != 0 || zrep.JammedSlotChannels != 0 || len(zrep.CrashedNodes) != 0 {
		t.Errorf("zero spec reported faults: %+v", zrep)
	}

	if _, _, err := RunAggFaults(pos, p, cfg, values, agg.Sum, 1, fault.Spec{LossProb: 2}); err == nil {
		t.Error("invalid spec accepted")
	}
}
