package expt

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment runners are exercised in Quick mode with one seed: these
// are smoke-and-shape tests; the full-size sweeps run via cmd/mcagg and the
// benchmarks.

func quick() Options { return Options{Seeds: 1, Quick: true} }

func TestE1Quick(t *testing.T) {
	tb, err := E1SpeedupVsChannels(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Render()
	if !strings.Contains(out, "F") || !strings.Contains(out, "speedup") {
		t.Errorf("table missing columns:\n%s", out)
	}
}

func TestE2Quick(t *testing.T) {
	tb, err := E2AggVsN(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE3Quick(t *testing.T) {
	tb, err := E3Baselines(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE4Quick(t *testing.T) {
	tb, err := E4Coloring(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE5Quick(t *testing.T) {
	tb, err := E5RulingSet(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Validity columns must be zero.
	for _, row := range tb.Rows {
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("ruling set validity violated: %v", row)
		}
	}
}

func TestE6Quick(t *testing.T) {
	tb, err := E6CSA(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE7Quick(t *testing.T) {
	tb, err := E7StructureBuild(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE8Quick(t *testing.T) {
	tb, err := E8ExponentialChain(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Sink-directed links on the exponential chain must serialize to at
	// most one per slot, while the control line allows many in parallel.
	chain, err1 := strconv.Atoi(tb.Rows[0][2])
	line, err2 := strconv.Atoi(tb.Rows[1][2])
	if err1 != nil || err2 != nil {
		t.Fatalf("unparsable cells: %v %v", tb.Rows[0], tb.Rows[1])
	}
	if chain > 1 {
		t.Errorf("exponential chain parallel links = %d, want ≤ 1", chain)
	}
	if line <= chain {
		t.Errorf("control line (%d) should beat the chain (%d)", line, chain)
	}
}

func TestE9Quick(t *testing.T) {
	tb, err := E9Backbone(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("corridor runs are slow")
	}
	tb, err := E10DiameterTerm(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"e1", "e5", "e10"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("e99"); ok {
		t.Error("ByName should reject unknown IDs")
	}
}
