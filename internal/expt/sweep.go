package expt

import (
	"context"

	"mcnet/internal/batch"
)

// sweep runs fn for every index of a flattened sweep grid (axes × seeds)
// across the experiment's worker pool and returns the results by index.
// Each runner folds the results in its original nested-loop order, so the
// emitted table is byte-identical to the serial sweep at every Parallel
// setting — the pool trades wall-clock time only.
func sweep[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	pool := batch.Pool{Workers: o.Parallel}
	return batch.Map(o.ctx(), pool, n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}
