// Package expt implements the experiment suite E1–E10 defined in DESIGN.md:
// one runner per claimed bound of the paper, each regenerating a table whose
// shape can be compared against the theory (EXPERIMENTS.md records the
// outcomes).
//
// Stage budgets in the pipeline are conservative envelopes, so wall-clock
// comparisons use *event* timestamps: when followers were acknowledged, when
// the backbone root completed the aggregate, when the last dominator heard
// the result.
package expt

import (
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/backbone"
	"mcnet/internal/core"
	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

// AggMetrics summarizes one pipeline run.
type AggMetrics struct {
	N int
	// Delta and Diam are the communication-graph parameters (measurement
	// only).
	Delta, Diam int
	// BuildSlots is the structure-construction budget (stages 1–5).
	BuildSlots int
	// AckSlots is when the last follower was acknowledged, measured from
	// the aggregation start (the Δ/F mechanism of Lemma 21).
	AckSlots int
	// AggSlots is when the last dominator knew the final aggregate,
	// measured from the aggregation start (Theorem 22's quantity up to the
	// fixed intra-cluster announce).
	AggSlots int
	// CastDelay is when the backbone root completed the aggregate, measured
	// from the start of the backbone convergecast phase (the D-sensitive
	// part, for E10).
	CastDelay int
	// Informed and Exact count nodes that learned a value / the exact fold.
	Informed, Exact int
	// Followers and FollowersAcked validate the follower procedure.
	Followers, FollowersAcked int
	// Dominators is the cluster count.
	Dominators int
	// Survivors, SurvivorsInformed and SurvivorsExact restrict the counts
	// to nodes alive at run end — equal to N, Informed and Exact on
	// fault-free runs; SurvivorsAgreeing is the largest set of informed
	// survivors sharing one learned value (consensus under churn, where the
	// full-input fold may be unreachable). See RunAggFaults.
	Survivors, SurvivorsInformed, SurvivorsExact int
	SurvivorsAgreeing                            int
}

// RunAgg executes the pipeline once and extracts metrics. The values slice
// must hold exactly one input per node; the pipeline rejects mismatches
// instead of silently zero-filling.
func RunAgg(pos []geo.Point, p model.Params, cfg core.Config, values []int64, op agg.Op, seed uint64) (AggMetrics, error) {
	m, _, err := runAgg(pos, p, cfg, values, op, seed, nil)
	return m, err
}

// runAgg is the shared pipeline runner: with a nil injector it is the
// fault-free path, otherwise the injector is attached to the engine and its
// report returned alongside the metrics.
func runAgg(pos []geo.Point, p model.Params, cfg core.Config, values []int64, op agg.Op, seed uint64, inj *fault.Injector) (AggMetrics, fault.Report, error) {
	var m AggMetrics
	if len(values) != len(pos) {
		return m, fault.Report{}, fmt.Errorf("expt: %d values for %d nodes", len(values), len(pos))
	}
	m.N = len(pos)
	g := graph.Build(pos, p.REps())
	m.Delta = g.MaxDegree()
	m.Diam = g.DiameterApprox()

	pl := core.NewPlan(p, cfg)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	if inj != nil {
		e.Faults = inj
	}
	res, err := core.Run(e, pl, values, op, seed)
	if err != nil {
		return m, fault.Report{}, err
	}
	m.BuildSlots = pl.Offsets.Followers
	rep := fault.Report{}
	if inj != nil {
		rep = inj.Report()
	}
	want := op.Fold(values)
	for _, r := range res {
		if r.IsDominator {
			m.Dominators++
		} else if !r.IsReporter {
			m.Followers++
		}
		if r.Ok {
			m.Informed++
			if r.Value == want {
				m.Exact++
			}
		}
	}
	tally := rep.TallySurvivors(m.N, func(i int) (bool, int64) {
		return res[i].Ok, res[i].Value
	}, want)
	m.Survivors = tally.Survivors
	m.SurvivorsInformed = tally.Informed
	m.SurvivorsExact = tally.Exact
	m.SurvivorsAgreeing = tally.Agreeing
	aggStart := pl.Offsets.Followers
	castStart := pl.Offsets.Backbone +
		pl.Tree.PhiMax*(pl.Tree.BuildBlocks+pl.Tree.ChildBlocks)
	lastAck, lastResult, rootAgg := 0, 0, 0
	for _, ev := range e.Events() {
		switch ev.Name {
		case core.EventAcked:
			m.FollowersAcked++
			if ev.Slot > lastAck {
				lastAck = ev.Slot
			}
		case backbone.EventResult:
			if ev.Slot > lastResult {
				lastResult = ev.Slot
			}
		case backbone.EventAgg:
			if ev.Slot > rootAgg {
				rootAgg = ev.Slot
			}
		}
	}
	if lastAck > 0 {
		m.AckSlots = lastAck - aggStart
	}
	end := lastResult
	if rootAgg > end {
		end = rootAgg
	}
	if end > 0 {
		m.AggSlots = end - aggStart
	}
	if rootAgg > 0 {
		m.CastDelay = rootAgg - castStart
	}
	return m, rep, nil
}

// Crowd places n nodes inside one cluster-radius disk (a single-cluster,
// Δ = n-1 workload isolating the Δ/F term).
func Crowd(p model.Params, n int, seed uint64) []geo.Point {
	return topology.Crowd(newRand(seed), n, p.ClusterRadius())
}

// sequentialValues returns 1..n and their sum.
func sequentialValues(n int) ([]int64, int64) {
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	return values, want
}

func pct(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
}
