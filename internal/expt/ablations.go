package expt

import (
	"fmt"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/model"
	"mcnet/internal/stats"
	"mcnet/internal/topology"
)

// A1BackoffAblation removes the dominator's backoff signal (Sec. 6's
// Bounded Contention mechanism, Definition 17/Lemma 19) and measures what
// happens to the follower phase: without it, transmission probabilities
// double unchecked and throughput collapses once contention exceeds the
// channel budget.
func A1BackoffAblation(o Options) (*stats.Table, error) {
	n := 160
	if o.Quick {
		n = 64
	}
	const f = 4
	variants := []bool{false, true}
	type a1Run struct {
		ack                            float64
		acked, followers, exact, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(variants)*seeds, func(i int) (a1Run, error) {
		disable, s := variants[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+51))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		cfg.DisableBackoff = disable
		m, err := RunAgg(pos, p, cfg, values, agg.Sum, uint64(2000+s))
		if err != nil {
			return a1Run{}, err
		}
		return a1Run{float64(m.AckSlots), m.FollowersAcked, m.Followers, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("A1: backoff ablation (crowd n=%d, F=%d)", n, f),
		"variant", "ack_slots", "followers_acked", "exact")
	for vi, disable := range variants {
		var acks []float64
		ackedN, followers, exact, total := 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[vi*seeds+s]
			acks = append(acks, r.ack)
			ackedN += r.acked
			followers += r.followers
			exact += r.exact
			total += r.total
		}
		name := "with backoff (paper)"
		if disable {
			name = "no backoff (ablated)"
		}
		t.AddRow(name, stats.F1(stats.Median(acks)), pct(ackedN, followers), pct(exact, total))
	}
	t.AddNote("seeds=%d; the backoff signal is what keeps Bounded Contention (Lemma 19)", o.seeds())
	return t, nil
}

// A2TDMAAblation sets the TDMA period to 1 (all clusters share one color
// slot) on a multi-cluster field: the cluster separation of Lemma 9
// disappears and correctness degrades.
func A2TDMAAblation(o Options) (*stats.Table, error) {
	n := 80
	if o.Quick {
		n = 48
	}
	phis := []int{24, 1}
	type a2Run struct {
		informed, exact, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(phis)*seeds, func(i int) (a2Run, error) {
		phi, s := phis[i/seeds], i%seeds
		p := model.Default(4, 2*n)
		rnd := newRand(uint64(2100*n + s))
		pos := topology.UniformDegree(rnd, n, p.REps(), 14)
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = 32
		cfg.PhiMax = phi
		cfg.HopBound = 14
		m, err := RunAgg(pos, p, cfg, values, agg.Sum, uint64(2200+s))
		if err != nil {
			return a2Run{}, err
		}
		return a2Run{m.Informed, m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("A2: TDMA ablation (sparse field n=%d, F=4)", n),
		"variant", "informed", "exact")
	for pi, phi := range phis {
		informed, exact, total := 0, 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[pi*seeds+s]
			informed += r.informed
			exact += r.exact
			total += r.total
		}
		name := fmt.Sprintf("PhiMax=%d (TDMA on)", phi)
		if phi == 1 {
			name = "PhiMax=1 (TDMA off)"
		}
		t.AddRow(name, pct(informed, total), pct(exact, total))
	}
	t.AddNote("seeds=%d; without cluster colors, concurrent clusters collide (Lemma 9 lost)", o.seeds())
	return t, nil
}

// A3ChannelSpreadAblation forces f_v = 1 (C1 huge): the cluster never
// spreads followers over channels, so extra channels buy nothing — the
// mechanism behind the Δ/F term is the spread itself.
func A3ChannelSpreadAblation(o Options) (*stats.Table, error) {
	n := 160
	if o.Quick {
		n = 64
	}
	const f = 8
	c1s := []float64{1.0, 1e9}
	type a3Run struct {
		ack          float64
		exact, total int
	}
	seeds := o.seeds()
	runs, err := sweep(o, len(c1s)*seeds, func(i int) (a3Run, error) {
		c1, s := c1s[i/seeds], i%seeds
		p := model.Default(f, n)
		pos := Crowd(p, n, uint64(s+61))
		values, _ := sequentialValues(n)
		cfg := core.DefaultConfig(p)
		cfg.Exec = o.Exec
		cfg.DeltaHat = n
		cfg.PhiMax = 4
		cfg.HopBound = 2
		cfg.C1 = c1
		m, err := RunAgg(pos, p, cfg, values, agg.Sum, uint64(2300+s))
		if err != nil {
			return a3Run{}, err
		}
		return a3Run{float64(m.AckSlots), m.Exact, m.N}, nil
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("A3: channel-spread ablation (crowd n=%d, F=%d)", n, f),
		"variant", "ack_slots", "exact")
	for ci, c1 := range c1s {
		var acks []float64
		exact, total := 0, 0
		for s := 0; s < seeds; s++ {
			r := runs[ci*seeds+s]
			acks = append(acks, r.ack)
			exact += r.exact
			total += r.total
		}
		name := "f_v adaptive (paper)"
		if c1 > 100 {
			name = "f_v = 1 (ablated)"
		}
		t.AddRow(name, stats.F1(stats.Median(acks)), pct(exact, total))
	}
	t.AddNote("seeds=%d; with f_v forced to 1, the channels sit idle and the Δ/F speedup vanishes", o.seeds())
	return t, nil
}
