package agg

import (
	"testing"
	"testing/quick"
)

func TestFoldSum(t *testing.T) {
	if got := Sum.Fold([]int64{1, 2, 3, -4}); got != 2 {
		t.Errorf("sum = %d", got)
	}
	if got := Sum.Fold(nil); got != 0 {
		t.Errorf("empty sum = %d", got)
	}
}

func TestFoldMaxMin(t *testing.T) {
	vals := []int64{3, -7, 12, 0}
	if got := Max.Fold(vals); got != 12 {
		t.Errorf("max = %d", got)
	}
	if got := Min.Fold(vals); got != -7 {
		t.Errorf("min = %d", got)
	}
	if Max.Fold(nil) != Max.Identity || Min.Fold(nil) != Min.Identity {
		t.Error("empty folds should give identities")
	}
}

func TestIdentityLaw(t *testing.T) {
	for _, op := range []Op{Sum, Max, Min} {
		f := func(x int64) bool {
			return op.Combine(op.Identity, x) == x && op.Combine(x, op.Identity) == x
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", op.Name, err)
		}
	}
}

func TestCommutativeAssociative(t *testing.T) {
	for _, op := range []Op{Max, Min} {
		f := func(a, b, c int64) bool {
			return op.Combine(a, b) == op.Combine(b, a) &&
				op.Combine(op.Combine(a, b), c) == op.Combine(a, op.Combine(b, c))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", op.Name, err)
		}
	}
	// Sum is checked on a bounded domain to avoid overflow-related
	// false negatives (int64 wraparound is still associative, but keep the
	// test honest about its intent).
	f := func(a, b, c int32) bool {
		x, y, z := int64(a), int64(b), int64(c)
		return Sum.Combine(x, y) == Sum.Combine(y, x) &&
			Sum.Combine(Sum.Combine(x, y), z) == Sum.Combine(x, Sum.Combine(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("sum: %v", err)
	}
}
