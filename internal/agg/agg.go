// Package agg defines the aggregate functions computed by the data
// aggregation pipeline: associative, commutative folds over int64 values
// (the paper's "compressible functions", Sec. 2).
package agg

// Op is an associative, commutative aggregate operator with identity.
type Op struct {
	// Name identifies the operator in reports.
	Name string
	// Identity is the neutral element: Combine(Identity, x) == x.
	Identity int64
	// Combine folds two partial aggregates.
	Combine func(a, b int64) int64
}

// Standard operators.
var (
	Sum = Op{Name: "sum", Identity: 0, Combine: func(a, b int64) int64 { return a + b }}
	Max = Op{Name: "max", Identity: minInt64, Combine: func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}}
	Min = Op{Name: "min", Identity: maxInt64, Combine: func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}}
)

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// Fold reduces values under the operator, returning the identity for an
// empty slice.
func (o Op) Fold(values []int64) int64 {
	acc := o.Identity
	for _, v := range values {
		acc = o.Combine(acc, v)
	}
	return acc
}
