package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcnet"
)

// smallSpec is the standard quick sweep used across the API tests:
// 2 loss × 2 jam points, 1 seed = 4 items on a 16-node crowd.
const smallSpec = `{"name": "api", "n": 16, "channels": 3, "loss": [0, 0.1], "jam": [0, 1], "seeds": 1}`

// newTestServer boots a server on a temp dir and registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func submitSpec(t *testing.T, ts *httptest.Server, doc string) jobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) jobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s (%d/%d) after %v", id, st.State, st.Done, st.Total, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitRunDownload: the core happy path — submit, run to done,
// download results and the table; the table is byte-identical to an
// in-process RunScenario of the same spec.
func TestSubmitRunDownload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submitSpec(t, ts, smallSpec)
	if st.Total != 4 || st.State != StateQueued {
		t.Fatalf("submit status %+v, want 4 items queued", st)
	}
	st = waitState(t, ts, st.ID, 2*time.Minute)
	if st.State != StateDone || st.Done != st.Total {
		t.Fatalf("terminal status %+v, want done 4/4", st)
	}

	// NDJSON download: one in-order line per item.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results content type %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("results have %d lines, want 4", len(lines))
	}
	for i, ln := range lines {
		var rl resultLine
		if err := json.Unmarshal(ln, &rl); err != nil || rl.Index != i {
			t.Fatalf("line %d: %s (err %v)", i, ln, err)
		}
	}

	// Table identity with the in-process run.
	sp := testSpec(t, smallSpec)
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	want, err := mcnet.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for format, golden := range map[string]string{"": want.Render(), "csv": want.CSV()} {
		url := ts.URL + "/v1/jobs/" + st.ID + "/table"
		if format != "" {
			url += "?format=" + format
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(got) != golden+"\n" {
			t.Errorf("served table (format %q) differs from RunScenario:\n%s---\n%s", format, got, golden)
		}
	}
}

// TestSubmitValidation: invalid documents are rejected with 400 and a
// field-naming message; oversized bodies are rejected outright.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for doc, want := range map[string]string{
		`{"n": 1}`:                      `spec field \"n\"`,
		`{"n": 16, "loss": [7]}`:        `spec field \"loss[0]\"`,
		`{"n": 16, "jam_model": "x"}`:   `spec field \"jam_model\"`,
		`{"n": 16, "frobnicate": true}`: "frobnicate",
		`not json`:                      "parsing",
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("doc %s: status %d, want 400", doc, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("doc %s: body %s does not mention %s", doc, body, want)
		}
	}
}

// TestAdmissionControl: submissions beyond the queue bound get 429 while
// the executor is busy, and the error names the bound.
func TestAdmissionControl(t *testing.T) {
	// Job 1 occupies the executor for seconds; job 2 fills the queue of 1;
	// job 3 must bounce.
	_, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	busy := submitSpec(t, ts, `{"n": 48, "loss": [0, 0.05, 0.1], "seeds": 2}`)
	// Wait until job 1 has left the queue (executor picked it up).
	deadline := time.Now().Add(time.Minute)
	for getStatus(t, ts, busy.ID).State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	submitSpec(t, ts, smallSpec) // fills the queue
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d (%s), want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("429 body %s does not explain the bound", body)
	}
}

// TestCancelQueuedAndRunning: a queued job cancels immediately and stays
// canceled; a running job stops between items with its durable prefix
// intact; double cancel conflicts.
func TestCancelQueuedAndRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 4})
	running := submitSpec(t, ts, `{"n": 48, "loss": [0, 0.05, 0.1], "seeds": 2}`)
	queued := submitSpec(t, ts, smallSpec)

	cancel := func(id string) (int, jobStatus) {
		resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st jobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	if code, st := cancel(queued.ID); code != http.StatusAccepted || st.State != StateCanceled {
		t.Fatalf("cancel queued: code %d state %s", code, st.State)
	}
	if code, _ := cancel(queued.ID); code != http.StatusConflict {
		t.Fatalf("double cancel: code %d, want 409", code)
	}

	if code, _ := cancel(running.ID); code != http.StatusAccepted {
		t.Fatalf("cancel running: code %d", code)
	}
	st := waitState(t, ts, running.ID, time.Minute)
	if st.State != StateCanceled {
		t.Fatalf("running job ended %s, want canceled", st.State)
	}
	// Whatever landed stayed durable and in-order.
	results, err := s.store.LoadResults(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) > st.Total {
		t.Fatalf("%d results for %d items", len(results), st.Total)
	}
}

// TestEventsStream: SSE delivers monotonic progress snapshots ending in
// the terminal state, and a late subscriber gets the terminal event
// immediately.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st := submitSpec(t, ts, smallSpec)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	events := readSSE(t, resp.Body, time.Minute)
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Done != last.Total || last.Total != 4 {
		t.Fatalf("terminal event %+v, want done 4/4", last)
	}
	for k := 1; k < len(events); k++ {
		if events[k].Done < events[k-1].Done {
			t.Fatalf("SSE progress regressed: %+v", events)
		}
	}

	// Late subscriber: one terminal event, then the stream closes.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	late := readSSE(t, resp2.Body, time.Minute)
	if len(late) != 1 || late[0].State != StateDone {
		t.Fatalf("late subscriber events %+v, want exactly the terminal one", late)
	}
}

// readSSE parses "event:/data:" frames until the stream closes.
func readSSE(t *testing.T, r io.Reader, timeout time.Duration) []progressEvent {
	t.Helper()
	var events []progressEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev progressEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Errorf("bad SSE data %q: %v", data, err)
					return
				}
				events = append(events, ev)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatalf("SSE stream did not close within %v", timeout)
	}
	return events
}

// TestStatsAndMetrics: after a completed job the counters line up and the
// metrics exposition carries every series.
func TestStatsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxQueue: 7})
	st := submitSpec(t, ts, smallSpec)
	waitState(t, ts, st.ID, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.ItemsExecuted != 4 || snap.QueueDepth != 0 || snap.QueueCapacity != 7 {
		t.Errorf("stats %+v, want 4 executed, empty queue of 7", snap)
	}
	if snap.Jobs[StateDone] != 1 {
		t.Errorf("stats jobs %v, want one done", snap.Jobs)
	}
	if snap.RunsPerSecond <= 0 {
		t.Errorf("runs/s %v, want > 0", snap.RunsPerSecond)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"mcserved_items_executed_total 4",
		"mcserved_queue_depth 0",
		`mcserved_jobs{state="done"} 1`,
		"mcserved_runs_per_second",
		"mcserved_worker_utilization",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("metrics missing %q:\n%s", series, body)
		}
	}
}

// TestNotFoundAndConflict: unknown IDs 404 on every job endpoint, and the
// table of an unfinished job conflicts.
func TestNotFoundAndConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, ep := range []string{"", "/results", "/table", "/events"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/j99999999" + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown job%s: status %d, want 404", ep, resp.StatusCode)
		}
	}
	st := submitSpec(t, ts, `{"n": 48, "loss": [0, 0.05, 0.1], "seeds": 2}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("table of unfinished job: status %d, want 409", resp.StatusCode)
	}
}

// TestListOrder: jobs list in submission order with live fields.
func TestListOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxQueue: 8})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitSpec(t, ts, smallSpec).ID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(out.Jobs))
	}
	for i, j := range out.Jobs {
		if j.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s", i, j.ID, ids[i])
		}
	}
}

// TestDrainRejectsSubmissions: a draining server refuses new work with
// 503 and Drain returns once the executor is idle.
func TestDrainRejectsSubmissions(t *testing.T) {
	s, err := NewServer(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}
