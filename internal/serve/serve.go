// Package serve is the scenario sweep service: a long-running daemon layer
// over the batch orchestrator that accepts scenario spec documents from
// many concurrent clients, expands each into per-(grid point × seed) work
// items, and executes them with durable, resumable progress.
//
// Durability is built on two module-wide invariants: work items are pure
// functions of (spec, index), and results land by index. The service
// persists each job's results as an append-only NDJSON log written in
// strict index order — the log is always a contiguous durable prefix — so
// a killed daemon resumes from the log length, recomputes only items that
// never landed, and the completed sweep's table is byte-identical to an
// uninterrupted run (and to an in-process mcnet.RunScenario of the same
// spec).
//
// The HTTP surface is JSON over conventional verbs: POST /v1/jobs submits
// a spec (bounded queue depth, 429 when full), GET /v1/jobs[/{id}] lists
// and inspects, POST /v1/jobs/{id}/cancel cancels, /results downloads the
// durable NDJSON prefix, /table renders the finished sweep, /events
// streams progress as SSE, and /v1/stats + /metrics expose throughput,
// queue depth and worker utilization.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcnet"
	"mcnet/internal/batch"
)

// Config sizes a Server; the zero value serves from "mcserved-data" with
// GOMAXPROCS workers and a queue bound of 64 jobs.
type Config struct {
	// Dir is the persistent state directory (default "mcserved-data").
	Dir string
	// Workers sizes the batch pool a running job's items execute across:
	// 0 (the default) means GOMAXPROCS, 1 forces serial execution. It also
	// bounds the in-flight items — the service's backpressure.
	Workers int
	// MaxQueue bounds the number of jobs queued or running; submissions
	// beyond it are rejected with 429 (default 64).
	MaxQueue int
	// Logf, when non-nil, receives one line per significant event (boot,
	// job transitions, drain).
	Logf func(format string, args ...any)
}

// job is the in-memory runtime state of one job: the persisted record plus
// live progress and SSE subscribers.
type job struct {
	mu       sync.Mutex
	rec      JobRecord
	done     int // durably landed items
	subs     map[chan progressEvent]struct{}
	cancel   context.CancelFunc // set while running
	canceled bool               // user asked for cancellation
}

// progressEvent is one SSE snapshot. Every event carries the full state,
// so subscribers can be given only the latest one without losing meaning.
type progressEvent struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

// snapshotLocked builds the job's current event; callers hold j.mu.
func (j *job) snapshotLocked() progressEvent {
	return progressEvent{
		ID:    j.rec.ID,
		State: j.rec.State,
		Done:  j.done,
		Total: j.rec.Items,
		Error: j.rec.Error,
	}
}

// publishLocked pushes the current snapshot to every subscriber; callers
// hold j.mu. Subscriber channels hold only the latest snapshot: a slow
// reader skips intermediate progress but never misses the terminal state.
func (j *job) publishLocked() {
	ev := j.snapshotLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
}

// Server is the scenario sweep daemon: an http.Handler plus one executor
// goroutine draining a persistent FIFO job queue.
type Server struct {
	cfg   Config
	store *Store
	mux   *http.ServeMux
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string    // job IDs in submission order
	queue    chan string // FIFO of jobs awaiting the executor
	draining bool

	execCtx  context.Context
	execStop context.CancelFunc
	execDone chan struct{}

	// Flow metrics. itemsExecuted counts items computed by this process;
	// itemsResumed counts items recovered from durable logs instead of
	// recomputed; inflight is the current number of executing items.
	itemsExecuted atomic.Int64
	itemsResumed  atomic.Int64
	inflight      atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
}

// NewServer opens (or creates) the state directory, recovers persisted
// jobs — interrupted and queued jobs re-enter the queue in submission
// order, with their durable result prefixes intact — and starts the
// executor. Callers must Drain the server before discarding it.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		cfg.Dir = "mcserved-data"
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("serve: workers = %d must be ≥ 0", cfg.Workers)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		start:    time.Now(),
		jobs:     make(map[string]*job),
		queue:    make(chan string, cfg.MaxQueue),
		execDone: make(chan struct{}),
	}
	s.execCtx, s.execStop = context.WithCancel(context.Background())

	recs, err := store.LoadJobs()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		j := &job{rec: *rec, subs: make(map[chan progressEvent]struct{})}
		if results, err := store.LoadResults(rec.ID); err == nil {
			j.done = len(results)
		}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		if !rec.State.terminal() {
			// A job found in running was interrupted by a kill; it resumes
			// exactly like a queued one, from its durable prefix.
			select {
			case s.queue <- rec.ID:
				s.cfg.Logf("serve: recovered job %s (%s, %d/%d items durable)",
					rec.ID, rec.State, j.done, rec.Items)
			default:
				// More recovered jobs than the queue bound: park the rest in
				// queued state; they are picked up on the next boot. With
				// MaxQueue enforced at admission this cannot happen unless
				// the bound was lowered between runs.
				s.cfg.Logf("serve: job %s exceeds queue bound, left for next boot", rec.ID)
			}
		}
	}
	s.mux = s.routes()
	go s.execLoop()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops the server: no new submissions are accepted (503), the
// running job (if any) is cancelled between items, and Drain returns when
// the executor has flushed every landed result durably — or when ctx
// expires. After a drain, the state directory is consistent: interrupted
// jobs resume from their durable prefixes on the next boot.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.execStop()
	select {
	case <-s.execDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// job looks up runtime state by ID.
func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// execLoop is the executor: one job at a time, FIFO. Item-level
// parallelism lives inside each job (Config.Workers), so one running job
// already saturates the configured capacity; queued jobs behind it are the
// admission-controlled backlog.
func (s *Server) execLoop() {
	defer close(s.execDone)
	for {
		select {
		case <-s.execCtx.Done():
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runJob executes one job to a terminal state, resuming from its durable
// result prefix. A drain mid-job leaves the job in running on disk — the
// crash-equivalent state the next boot recovers from.
func (s *Server) runJob(id string) {
	j, ok := s.job(id)
	if !ok {
		return
	}
	jobCtx, cancel := context.WithCancel(s.execCtx)
	defer cancel()

	j.mu.Lock()
	if j.canceled || j.rec.State.terminal() {
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	j.rec.State = StateRunning
	rec := j.rec
	j.publishLocked()
	j.mu.Unlock()
	if err := s.store.SaveJob(&rec); err != nil {
		s.failJob(j, fmt.Errorf("persisting state: %w", err))
		return
	}
	s.cfg.Logf("serve: job %s running (%d items)", id, rec.Items)

	sw, err := rec.Spec.Compile()
	if err != nil {
		s.failJob(j, err)
		return
	}
	prior, err := s.store.LoadResults(id)
	if err != nil {
		s.failJob(j, err)
		return
	}
	if len(prior) > sw.Len() {
		s.failJob(j, fmt.Errorf("result log holds %d items for a %d-item sweep", len(prior), sw.Len()))
		return
	}
	log, err := s.store.OpenResultLog(id, len(prior))
	if err != nil {
		s.failJob(j, err)
		return
	}
	defer log.Close()
	s.itemsResumed.Add(int64(len(prior)))
	j.mu.Lock()
	j.done = len(prior)
	j.publishLocked()
	j.mu.Unlock()

	// Results land durably in strict index order: completions ahead of the
	// durable frontier wait in a reorder buffer (bounded by the worker
	// count, since the pool claims indices in order). Progress events fire
	// only for durable items — what a subscriber saw done stays done.
	var (
		landMu  sync.Mutex
		pending = map[int]mcnet.RunResult{}
		landErr error
	)
	land := func(i int, r mcnet.RunResult) error {
		landMu.Lock()
		defer landMu.Unlock()
		if landErr != nil {
			return landErr
		}
		pending[i] = r
		flushed := false
		for {
			r, ok := pending[log.next]
			if !ok {
				break
			}
			idx := log.next
			if err := log.Append(idx, r); err != nil {
				landErr = err
				return err
			}
			delete(pending, idx)
			flushed = true
		}
		if flushed {
			j.mu.Lock()
			j.done = log.next
			j.publishLocked()
			j.mu.Unlock()
		}
		return nil
	}

	pool := batch.Pool{Workers: s.cfg.Workers}
	results, err := batch.MapResume(jobCtx, pool, sw.Len(),
		func(i int) (mcnet.RunResult, bool) {
			if i < len(prior) {
				return prior[i], true
			}
			return mcnet.RunResult{}, false
		},
		func(ctx context.Context, i int) (mcnet.RunResult, error) {
			s.inflight.Add(1)
			defer s.inflight.Add(-1)
			r, err := sw.Run(ctx, i)
			if err != nil {
				return r, err
			}
			s.itemsExecuted.Add(1)
			return r, land(i, r)
		})

	j.mu.Lock()
	j.cancel = nil
	j.mu.Unlock()

	switch {
	case s.execCtx.Err() != nil:
		// Drain: leave the job in running on disk; the landed prefix is
		// durable and the next boot resumes it.
		s.cfg.Logf("serve: job %s interrupted by drain (%d/%d items durable)", id, log.next, sw.Len())
	case err != nil && j.isCanceled():
		s.finishJob(j, StateCanceled, "")
		s.cfg.Logf("serve: job %s canceled (%d/%d items durable)", id, log.next, sw.Len())
	case err != nil:
		s.failJob(j, err)
	default:
		_ = results // landed by index; the log already holds all of them
		s.finishJob(j, StateDone, "")
		s.jobsDone.Add(1)
		s.cfg.Logf("serve: job %s done (%d items)", id, sw.Len())
	}
}

func (j *job) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// finishJob moves a job to a terminal state, durably.
func (s *Server) finishJob(j *job, st State, errMsg string) {
	j.mu.Lock()
	j.rec.State = st
	j.rec.Error = errMsg
	rec := j.rec
	j.publishLocked()
	j.mu.Unlock()
	if err := s.store.SaveJob(&rec); err != nil {
		s.cfg.Logf("serve: persisting %s state of job %s: %v", st, rec.ID, err)
	}
}

func (s *Server) failJob(j *job, cause error) {
	s.jobsFailed.Add(1)
	s.finishJob(j, StateFailed, cause.Error())
	s.cfg.Logf("serve: job %s failed: %v", j.rec.ID, cause)
}
