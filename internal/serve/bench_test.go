package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// decodeJSON decodes a response body and closes it.
func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// BenchmarkServeSustained measures sustained service throughput over the
// full HTTP path: each iteration submits a 4-item sweep (2 loss × 2 jam
// on a 24-node crowd), polls it to done, and downloads the table. It
// reports items/s alongside the usual ns/op, covering spec parsing,
// admission, durable landing (fsync per item) and table folding.
func BenchmarkServeSustained(b *testing.B) {
	s, err := NewServer(Config{Dir: b.TempDir(), MaxQueue: b.N + 1})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	const doc = `{"name": "bench", "n": 24, "channels": 3, "loss": [0, 0.1], "jam": [0, 1], "seeds": 1}`
	const items = 4

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			b.Fatal(err)
		}
		var st jobStatus
		if err := decodeJSON(resp, &st); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: status %d", resp.StatusCode)
		}
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if err := decodeJSON(resp, &st); err != nil {
				b.Fatal(err)
			}
			if st.State.terminal() {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		if st.State != StateDone {
			b.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/table")
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("table: status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*items)/elapsed, "items/s")
	}
}
