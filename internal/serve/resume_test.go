package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"mcnet"
)

// resumeSpec is sized so a sweep takes long enough to interrupt mid-job:
// 3 loss × 2 jam points × 2 seeds = 12 items on a 48-node crowd.
const resumeSpec = `{"name": "resume", "n": 48, "channels": 3, "loss": [0, 0.05, 0.1], "jam": [0, 1], "seeds": 2}`

// TestCrashResumeDeterminism is the service's core guarantee: a job killed
// mid-sweep and resumed by a fresh daemon on the same state directory
// produces a result table byte-identical to an uninterrupted in-process
// run — at every worker count.
func TestCrashResumeDeterminism(t *testing.T) {
	sp := testSpec(t, resumeSpec)
	sc, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := mcnet.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	total := 12

	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()

			// First daemon: submit, let some items land durably, then drain
			// mid-job — the clean-shutdown equivalent of a kill: the job stays
			// in running state on disk with a durable result prefix.
			s1, err := NewServer(Config{Dir: dir, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			ts1 := httptest.NewServer(s1)
			st := submitSpec(t, ts1, resumeSpec)
			if st.Total != total {
				t.Fatalf("job has %d items, want %d", st.Total, total)
			}
			deadline := time.Now().Add(2 * time.Minute)
			for {
				cur := getStatus(t, ts1, st.ID)
				if cur.Done >= 1 {
					break
				}
				if cur.State.terminal() {
					t.Fatalf("job finished (%s) before it could be interrupted; grow the spec", cur.State)
				}
				if time.Now().After(deadline) {
					t.Fatal("no item landed within 2m")
				}
				time.Sleep(time.Millisecond)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			if err := s1.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
			ts1.Close()

			// The interrupted job is in running state on disk with a strict
			// durable prefix — exactly what a kill -9 between fsyncs leaves.
			store, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := store.LoadJob(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if rec.State != StateRunning {
				t.Fatalf("interrupted job persisted as %s, want running", rec.State)
			}
			prefix, err := store.LoadResults(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(prefix) == 0 || len(prefix) >= total {
				t.Fatalf("durable prefix has %d/%d items; want a partial sweep", len(prefix), total)
			}
			t.Logf("interrupted with %d/%d items durable", len(prefix), total)

			// Second daemon on the same directory: the job resumes without
			// resubmission and runs to done.
			s2, err := NewServer(Config{Dir: dir, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			ts2 := httptest.NewServer(s2)
			defer func() {
				ts2.Close()
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				_ = s2.Drain(ctx)
			}()
			fin := waitState(t, ts2, st.ID, 5*time.Minute)
			if fin.State != StateDone || fin.Done != total {
				t.Fatalf("resumed job ended %+v, want done %d/%d", fin, total, total)
			}
			if got := s2.itemsResumed.Load(); got != int64(len(prefix)) {
				t.Errorf("resumed-items counter = %d, want %d", got, len(prefix))
			}

			// The table is byte-identical to the uninterrupted in-process run.
			resp, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID + "/table")
			if err != nil {
				t.Fatal(err)
			}
			table, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(table) != golden.Render()+"\n" {
				t.Errorf("resumed table differs from uninterrupted run:\n%s---\n%s", table, golden.Render())
			}

			// And the NDJSON log holds exactly one line per item, in order.
			data, err := os.ReadFile(store.ResultsPath(st.ID))
			if err != nil {
				t.Fatal(err)
			}
			dec := json.NewDecoder(bytes.NewReader(data))
			for i := 0; i < total; i++ {
				var rl resultLine
				if err := dec.Decode(&rl); err != nil {
					t.Fatalf("result line %d: %v", i, err)
				}
				if rl.Index != i {
					t.Fatalf("result line %d has index %d", i, rl.Index)
				}
			}
			if dec.More() {
				t.Error("result log has extra lines beyond the sweep")
			}
		})
	}
}
