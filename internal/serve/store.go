package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mcnet"
)

// State is a job's lifecycle state. Transitions are queued → running →
// {done, failed, canceled}; a daemon killed while a job runs leaves it in
// running on disk, which the next boot treats as queued — the durable
// result prefix makes the re-run resume instead of restart.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a job in this state will never run again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRecord is the persisted form of one job: the submitted spec document
// plus lifecycle metadata. It lives at jobs/<id>.json and is rewritten
// atomically on every state change.
type JobRecord struct {
	ID    string             `json:"id"`
	Spec  mcnet.ScenarioSpec `json:"spec"`
	State State              `json:"state"`
	// Items is the expanded work-item count (grid points × seeds).
	Items int `json:"items"`
	// Error carries the failure cause for StateFailed.
	Error string `json:"error,omitempty"`
	// Submitted is the server-assigned submission time.
	Submitted time.Time `json:"submitted"`
}

// resultLine is one NDJSON record of a job's result log. Lines are
// appended strictly in index order, so a result log is always the durable
// prefix [0, lines) of the job's work items.
type resultLine struct {
	Index  int             `json:"index"`
	Result mcnet.RunResult `json:"result"`
}

// Store is the on-disk job store: one JSON record and one append-only
// NDJSON result log per job under dir/jobs. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu  sync.Mutex
	seq int // highest job sequence number seen
}

// OpenStore creates (if needed) and opens the store rooted at dir. The
// job-ID sequence continues from the highest ID already on disk, so IDs
// stay unique across restarts.
func OpenStore(dir string) (*Store, error) {
	jobsDir := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening store: %w", err)
	}
	s := &Store{dir: dir}
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, fmt.Errorf("serve: opening store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "j") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, ".json"), "j%08d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// NewID allocates the next job ID. IDs sort lexically in allocation
// order, so directory listings double as submission order.
func (s *Store) NewID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return fmt.Sprintf("j%08d", s.seq)
}

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

// ResultsPath is the job's NDJSON result log location.
func (s *Store) ResultsPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".results.ndjson")
}

// validID guards path construction against traversal through crafted IDs.
func validID(id string) bool {
	if len(id) != 9 || id[0] != 'j' {
		return false
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// SaveJob durably writes the record: temp file, fsync, atomic rename. A
// crash leaves either the old record or the new one, never a torn file.
func (s *Store) SaveJob(rec *JobRecord) error {
	if !validID(rec.ID) {
		return fmt.Errorf("serve: invalid job id %q", rec.ID)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding job %s: %w", rec.ID, err)
	}
	path := s.jobPath(rec.ID)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: saving job %s: %w", rec.ID, err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("serve: saving job %s: %w", rec.ID, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: saving job %s: %w", rec.ID, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: saving job %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serve: saving job %s: %w", rec.ID, err)
	}
	return nil
}

// LoadJob reads one job record.
func (s *Store) LoadJob(id string) (*JobRecord, error) {
	if !validID(id) {
		return nil, fmt.Errorf("serve: invalid job id %q", id)
	}
	data, err := os.ReadFile(s.jobPath(id))
	if err != nil {
		return nil, fmt.Errorf("serve: loading job %s: %w", id, err)
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("serve: decoding job %s: %w", id, err)
	}
	return &rec, nil
}

// LoadJobs reads every job record, sorted by ID (= submission order).
// Records that fail to decode are skipped — one corrupt job must not take
// the daemon down with it.
func (s *Store) LoadJobs() ([]*JobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: listing jobs: %w", err)
	}
	var recs []*JobRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !validID(id) {
			continue
		}
		rec, err := s.LoadJob(id)
		if err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

// LoadResults reads the job's durable result prefix. The log is scanned
// line by line: each complete line must decode to the next expected index,
// and the first torn or out-of-sequence line ends the prefix — the file is
// truncated back to the last durable line, so a crash mid-append (a torn
// tail) costs exactly the item that was being written, which the resumed
// run recomputes deterministically. A missing log means zero results.
func (s *Store) LoadResults(id string) ([]mcnet.RunResult, error) {
	if !validID(id) {
		return nil, fmt.Errorf("serve: invalid job id %q", id)
	}
	path := s.ResultsPath(id)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: loading results of %s: %w", id, err)
	}
	var results []mcnet.RunResult
	offset := 0 // byte offset of the durable prefix end
	for offset < len(data) {
		nl := -1
		for k := offset; k < len(data); k++ {
			if data[k] == '\n' {
				nl = k
				break
			}
		}
		if nl < 0 {
			break // torn tail: line never finished
		}
		var line resultLine
		if err := json.Unmarshal(data[offset:nl], &line); err != nil || line.Index != len(results) {
			break // corrupt or out-of-sequence: prefix ends here
		}
		results = append(results, line.Result)
		offset = nl + 1
	}
	if offset < len(data) {
		if err := os.Truncate(path, int64(offset)); err != nil {
			return nil, fmt.Errorf("serve: repairing results of %s: %w", id, err)
		}
	}
	return results, nil
}

// ResultLog appends result lines to a job's log in strict index order.
type ResultLog struct {
	f    *os.File
	next int
}

// OpenResultLog opens the job's log for appending; next is the index the
// first Append must carry — the length of the durable prefix LoadResults
// returned. Callers must have run LoadResults first so any torn tail has
// been truncated away.
func (s *Store) OpenResultLog(id string, next int) (*ResultLog, error) {
	if !validID(id) {
		return nil, fmt.Errorf("serve: invalid job id %q", id)
	}
	f, err := os.OpenFile(s.ResultsPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening result log of %s: %w", id, err)
	}
	return &ResultLog{f: f, next: next}, nil
}

// Append durably writes one result line. The index must be exactly the
// next in sequence — the executor's reorder buffer guarantees it — so the
// log stays a contiguous prefix and resume-from-length stays sound. The
// line is fsynced before Append returns: once a progress event reports an
// item done, a crash cannot un-do it.
func (rl *ResultLog) Append(index int, r mcnet.RunResult) error {
	if index != rl.next {
		return fmt.Errorf("serve: result log append index %d, want %d", index, rl.next)
	}
	data, err := json.Marshal(resultLine{Index: index, Result: r})
	if err != nil {
		return fmt.Errorf("serve: encoding result %d: %w", index, err)
	}
	if _, err := rl.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("serve: appending result %d: %w", index, err)
	}
	if err := rl.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing result %d: %w", index, err)
	}
	rl.next++
	return nil
}

// Close releases the log's file handle.
func (rl *ResultLog) Close() error { return rl.f.Close() }
