package serve

import (
	"os"
	"strings"
	"testing"
	"time"

	"mcnet"
)

func testSpec(t *testing.T, doc string) mcnet.ScenarioSpec {
	t.Helper()
	sp, err := mcnet.ParseScenarioSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestStoreJobRoundTrip: records survive save/load, list in submission
// order, and the ID sequence continues across a reopen.
func TestStoreJobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, `{"n": 16, "loss": [0, 0.1]}`)
	var ids []string
	for i := 0; i < 3; i++ {
		rec := &JobRecord{
			ID:        s.NewID(),
			Spec:      spec,
			State:     StateQueued,
			Items:     2,
			Submitted: time.Unix(1700000000+int64(i), 0).UTC(),
		}
		if err := s.SaveJob(rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	recs, err := s.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d jobs, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.ID != ids[i] {
			t.Errorf("job %d has ID %s, want %s (submission order)", i, rec.ID, ids[i])
		}
		if rec.Spec.N != 16 || rec.State != StateQueued {
			t.Errorf("job %s lost fields: %+v", rec.ID, rec)
		}
	}

	// Reopening must not reuse IDs.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	next := s2.NewID()
	for _, id := range ids {
		if next == id {
			t.Fatalf("reopened store reissued ID %s", id)
		}
	}
}

// TestStoreRejectsBadIDs: crafted IDs cannot traverse out of the store.
func TestStoreRejectsBadIDs(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "../../etc", "j1234567x", "jjjjjjjjj", "j123"} {
		if err := s.SaveJob(&JobRecord{ID: id}); err == nil {
			t.Errorf("SaveJob accepted ID %q", id)
		}
		if _, err := s.LoadResults(id); err == nil {
			t.Errorf("LoadResults accepted ID %q", id)
		}
	}
}

// TestResultLogPrefixAndTornTail: the log is a strict in-order prefix; a
// torn tail (crash mid-append) is truncated away on load and appending
// resumes at the durable frontier.
func TestResultLogPrefixAndTornTail(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := s.NewID()
	log, err := s.OpenResultLog(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := log.Append(i, mcnet.RunResult{Informed: 10 + i, Nodes: 16}); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order appends are a bug, not data.
	if err := log.Append(5, mcnet.RunResult{}); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn, unterminated tail line.
	f, err := os.OpenFile(s.ResultsPath(id), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":3,"result":{"torntail`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	results, err := s.LoadResults(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("durable prefix has %d items, want 3", len(results))
	}
	for i, r := range results {
		if r.Informed != 10+i {
			t.Errorf("result %d = %+v, want Informed %d", i, r, 10+i)
		}
	}

	// The torn tail is gone from disk and appending continues cleanly.
	data, err := os.ReadFile(s.ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "torntail") {
		t.Error("torn tail survived repair")
	}
	log2, err := s.OpenResultLog(id, len(results))
	if err != nil {
		t.Fatal(err)
	}
	if err := log2.Append(3, mcnet.RunResult{Informed: 13, Nodes: 16}); err != nil {
		t.Fatal(err)
	}
	log2.Close()
	results, err = s.LoadResults(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || results[3].Informed != 13 {
		t.Fatalf("after repair+append: %d items (%+v), want 4", len(results), results)
	}
}

// TestLoadResultsMissing: a job with no log has an empty durable prefix.
func TestLoadResultsMissing(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.LoadResults(s.NewID())
	if err != nil || len(results) != 0 {
		t.Fatalf("missing log: results %v, err %v; want empty, nil", results, err)
	}
}
