package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"mcnet"
)

// maxSpecBytes bounds a submitted spec document; axes are short lists, so
// anything near this size is abuse, not a sweep.
const maxSpecBytes = 1 << 20

// routes builds the HTTP surface.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/table", s.handleTable)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError emits the error shape every endpoint shares.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits one spec document into the queue. Admission control
// is strict and cheap: a draining server refuses (503), a full queue
// refuses (429) before any expansion state is allocated, and an invalid
// spec refuses (400) with the field-level cause. Accepted jobs are durable
// before the 202 response: a daemon killed right after responding still
// knows the job on its next boot.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading spec: %v", err)
		return
	}
	spec, err := mcnet.ParseScenarioSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, err := spec.Compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if len(s.queue) >= cap(s.queue) {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "queue full (%d jobs); retry later", cap(s.queue))
		return
	}
	id := s.store.NewID()
	j := &job{
		rec: JobRecord{
			ID:        id,
			Spec:      spec,
			State:     StateQueued,
			Items:     sw.Len(),
			Submitted: time.Now().UTC(),
		},
		subs: make(map[chan progressEvent]struct{}),
	}
	if err := s.store.SaveJob(&j.rec); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
		return
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue <- id // capacity checked above, under s.mu
	s.mu.Unlock()

	s.cfg.Logf("serve: job %s queued (%d items)", id, j.rec.Items)
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

// jobStatus is the wire form of a job's current state.
type jobStatus struct {
	ID        string    `json:"id"`
	State     State     `json:"state"`
	Done      int       `json:"done"`
	Total     int       `json:"total"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
}

func (s *Server) statusOf(j *job) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:        j.rec.ID,
		State:     j.rec.State,
		Done:      j.done,
		Total:     j.rec.Items,
		Error:     j.rec.Error,
		Submitted: j.rec.Submitted,
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]jobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.job(id); ok {
			out = append(out, s.statusOf(j))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// pathJob resolves the {id} path segment, writing the 404 itself.
func (s *Server) pathJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.pathJob(w, r); ok {
		writeJSON(w, http.StatusOK, s.statusOf(j))
	}
}

// handleCancel cancels a queued or running job. Queued jobs are skipped
// when the executor reaches them; running jobs stop between items (the
// landed prefix stays durable — and stays byte-identical to what an
// uninterrupted run would have produced for those items).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	if j.rec.State.terminal() {
		st := j.rec.State
		j.mu.Unlock()
		writeError(w, http.StatusConflict, "job already %s", st)
		return
	}
	j.canceled = true
	cancel := j.cancel
	running := j.rec.State == StateRunning
	if !running {
		// The executor will skip it; make the terminal state durable now.
		j.rec.State = StateCanceled
		rec := j.rec
		j.publishLocked()
		j.mu.Unlock()
		if err := s.store.SaveJob(&rec); err != nil {
			s.cfg.Logf("serve: persisting cancel of job %s: %v", rec.ID, err)
		}
	} else {
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	s.cfg.Logf("serve: job %s cancel requested", j.rec.ID)
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

// handleResults streams the job's durable NDJSON result prefix — for a
// done job, the complete per-item log.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	f, err := os.Open(s.store.ResultsPath(j.rec.ID))
	if os.IsNotExist(err) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		return // zero items landed: empty log
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening results: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = io.Copy(w, f)
}

// handleTable renders the finished sweep's report table — the same bytes
// an in-process RunScenario of the job's spec would emit. ?format=csv
// selects the CSV form.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	st := j.rec.State
	spec := j.rec.Spec
	j.mu.Unlock()
	if st != StateDone {
		writeError(w, http.StatusConflict, "job is %s; the table exists once it is done", st)
		return
	}
	sw, err := spec.Compile()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "recompiling spec: %v", err)
		return
	}
	results, err := s.store.LoadResults(j.rec.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading results: %v", err)
		return
	}
	tb, err := sw.Fold(results)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "folding results: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if r.URL.Query().Get("format") == "csv" {
		fmt.Fprintln(w, tb.CSV())
	} else {
		fmt.Fprintln(w, tb.Render())
	}
}

// handleEvents streams the job's progress as server-sent events: one
// "progress" event per durable advance (snapshots, so a slow client skips
// intermediates but never misses the terminal state), closing after the
// terminal event. Connecting to a finished job yields its terminal event
// immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch := make(chan progressEvent, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	first := j.snapshotLocked()
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev progressEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return !ev.State.terminal()
	}
	if !writeEvent(first) {
		return
	}
	keepAlive := time.NewTicker(15 * time.Second)
	defer keepAlive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepAlive.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
		}
	}
}

// statsSnapshot is the /v1/stats document.
type statsSnapshot struct {
	UptimeSeconds     float64       `json:"uptime_s"`
	Workers           int           `json:"workers"`
	QueueDepth        int           `json:"queue_depth"`
	QueueCapacity     int           `json:"queue_capacity"`
	InflightItems     int64         `json:"inflight_items"`
	WorkerUtilization float64       `json:"worker_utilization"`
	ItemsExecuted     int64         `json:"items_executed"`
	ItemsResumed      int64         `json:"items_resumed"`
	RunsPerSecond     float64       `json:"runs_per_sec"`
	Jobs              map[State]int `json:"jobs"`
}

func (s *Server) statsNow() statsSnapshot {
	s.mu.Lock()
	depth := len(s.queue)
	capQ := cap(s.queue)
	states := make(map[State]int)
	for _, j := range s.jobs {
		j.mu.Lock()
		states[j.rec.State]++
		j.mu.Unlock()
	}
	s.mu.Unlock()

	workers := s.cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	uptime := time.Since(s.start).Seconds()
	executed := s.itemsExecuted.Load()
	inflight := s.inflight.Load()
	snap := statsSnapshot{
		UptimeSeconds: uptime,
		Workers:       workers,
		QueueDepth:    depth,
		QueueCapacity: capQ,
		InflightItems: inflight,
		ItemsExecuted: executed,
		ItemsResumed:  s.itemsResumed.Load(),
		Jobs:          states,
	}
	if workers > 0 {
		snap.WorkerUtilization = float64(inflight) / float64(workers)
	}
	if uptime > 0 {
		snap.RunsPerSecond = float64(executed) / uptime
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsNow())
}

// handleMetrics is the same snapshot in text exposition format, one
// `mcserved_*` line per gauge or counter.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.statsNow()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "mcserved_uptime_seconds %g\n", snap.UptimeSeconds)
	fmt.Fprintf(w, "mcserved_workers %d\n", snap.Workers)
	fmt.Fprintf(w, "mcserved_queue_depth %d\n", snap.QueueDepth)
	fmt.Fprintf(w, "mcserved_queue_capacity %d\n", snap.QueueCapacity)
	fmt.Fprintf(w, "mcserved_inflight_items %d\n", snap.InflightItems)
	fmt.Fprintf(w, "mcserved_worker_utilization %g\n", snap.WorkerUtilization)
	fmt.Fprintf(w, "mcserved_items_executed_total %d\n", snap.ItemsExecuted)
	fmt.Fprintf(w, "mcserved_items_resumed_total %d\n", snap.ItemsResumed)
	fmt.Fprintf(w, "mcserved_runs_per_second %g\n", snap.RunsPerSecond)
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "mcserved_jobs{state=%q} %d\n", st, snap.Jobs[st])
	}
}
