// Package dominate computes the r_c-dominating set of constant density that
// heads the paper's aggregation structure (Sec. 5.1.1), together with the
// clustering function assigning every node a dominator within distance r_c.
//
// The paper adopts the O(log n) protocol of Scheideler, Richa and Santi [28]
// as a black box. This package implements an equivalent substrate (deviation
// D2 in DESIGN.md): a HELLO/ACK/IN contention process in the style of the
// Sec. 4 ruling-set algorithm, extended with
//
//   - per-phase probability doubling from 1/n̂ up to the cap 1/(2µ), so the
//     process works at unbounded node density without degree knowledge, and
//   - periodic IN re-announcements by established dominators, so stragglers
//     are absorbed into existing clusters instead of founding new ones.
//
// Rounds have three slots: HELLO (probe), ACK (clear receivers confirm), IN
// (confirmed probers join the dominating set / dominators re-announce).
// A node that finishes the schedule neither dominated nor dominating
// appoints itself dominator, guaranteeing coverage; re-announcements make
// this rare outside genuinely isolated spots.
package dominate

import (
	"math"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// Hello is the slot-1 probe of a candidate node.
type Hello struct {
	From int
}

// Ack is the slot-2 confirmation addressed to a probing candidate.
type Ack struct {
	To int
}

// In is the slot-3 announcement of a (new or established) dominator.
type In struct {
	From int
}

// Config parameterizes the dominating-set construction.
type Config struct {
	// R is the dominating radius (the pipeline passes r_c).
	R float64
	// Channel all nodes operate on.
	Channel int
	// Mu caps the HELLO probability at 1/(2µ).
	Mu float64
	// AckProb is the probability with which a clear receiver confirms.
	AckProb float64
	// ReannounceProb is the probability an established dominator repeats IN
	// in slot 3 of a round.
	ReannounceProb float64
	// RoundFactor scales rounds per phase: ceil(RoundFactor·ln n̂).
	RoundFactor float64
	// Phases overrides the number of doubling phases; 0 means ceil(log₂ n̂).
	Phases int
}

// DefaultConfig returns the pipeline configuration for radius r on the given
// channel.
func DefaultConfig(r float64, channel int) Config {
	return Config{
		R:              r,
		Channel:        channel,
		Mu:             4,
		AckProb:        0.5,
		ReannounceProb: 0.25,
		RoundFactor:    4,
	}
}

// Outcome is the per-node result of the construction.
type Outcome struct {
	// IsDominator reports whether the node heads a cluster.
	IsDominator bool
	// Dominator is the ID of the node's cluster head (its own ID for
	// dominators). It is always set after Run.
	Dominator int
	// SelfAppointed reports that the node became a dominator by exhausting
	// the schedule uncovered rather than via the ACK handshake.
	SelfAppointed bool
}

func (c Config) phases(p model.Params) int {
	if c.Phases > 0 {
		return c.Phases
	}
	return int(math.Ceil(math.Log2(float64(p.NEstimate))))
}

func (c Config) roundsPerPhase(p model.Params) int {
	return int(math.Ceil(c.RoundFactor * p.LogN()))
}

// SlotBudget returns the exact number of slots Run and Idle consume.
func (c Config) SlotBudget(p model.Params) int {
	return 3 * c.phases(p) * c.roundsPerPhase(p)
}

// Idle consumes the stage's slot budget without participating.
func Idle(ctx *sim.Ctx, cfg Config) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// Run executes the node's side of the dominating-set construction,
// consuming exactly cfg.SlotBudget slots.
func Run(ctx *sim.Ctx, cfg Config) Outcome {
	var (
		p      = ctx.Params()
		phases = cfg.phases(p)
		rounds = cfg.roundsPerPhase(p)
		prob   = 1 / float64(p.NEstimate)
		cap    = 1 / (2 * cfg.Mu)
		out    = Outcome{Dominator: -1}
	)
	for phase := 0; phase < phases; phase++ {
		for round := 0; round < rounds; round++ {
			// Slot 1: HELLO.
			candidate := out.Dominator == -1 && !out.IsDominator
			sentHello := candidate && ctx.Rand.Float64() < prob
			clearFrom := -1
			if sentHello {
				ctx.Transmit(cfg.Channel, Hello{From: ctx.ID()})
			} else {
				rec := ctx.Listen(cfg.Channel)
				if h, ok := rec.Msg.(Hello); ok && !out.IsDominator &&
					phy.Clear(rec, p, cfg.R) {
					clearFrom = h.From
				}
			}

			// Slot 2: ACK.
			gotAck := false
			switch {
			case sentHello:
				rec := ctx.Listen(cfg.Channel)
				if a, ok := rec.Msg.(Ack); ok && a.To == ctx.ID() &&
					phy.SenderWithin(rec, p, cfg.R) {
					gotAck = true
				}
			case clearFrom >= 0 && ctx.Rand.Float64() < cfg.AckProb:
				ctx.Transmit(cfg.Channel, Ack{To: clearFrom})
			default:
				ctx.Listen(cfg.Channel)
			}

			// Slot 3: IN — new dominators announce; established dominators
			// re-announce; everyone else listens for coverage.
			switch {
			case sentHello && gotAck:
				out.IsDominator = true
				out.Dominator = ctx.ID()
				ctx.Transmit(cfg.Channel, In{From: ctx.ID()})
			case out.IsDominator && ctx.Rand.Float64() < cfg.ReannounceProb:
				ctx.Transmit(cfg.Channel, In{From: ctx.ID()})
			default:
				rec := ctx.Listen(cfg.Channel)
				if in, ok := rec.Msg.(In); ok && out.Dominator == -1 &&
					phy.SenderWithin(rec, p, cfg.R) {
					out.Dominator = in.From
				}
			}
		}
		prob = math.Min(prob*2, cap)
	}
	if out.Dominator == -1 {
		out.IsDominator = true
		out.SelfAppointed = true
		out.Dominator = ctx.ID()
	}
	return out
}

// Stats summarizes a constructed dominating set for validation and the E9
// experiment.
type Stats struct {
	// Dominators is the number of cluster heads.
	Dominators int
	// SelfAppointed counts dominators created by the fallback rule.
	SelfAppointed int
	// MaxDensity is the maximum number of dominators in any R-ball centered
	// at a dominator (the paper's density µ).
	MaxDensity int
	// Uncovered counts nodes whose assigned dominator is farther than R
	// (zero for a correct run).
	Uncovered int
	// MaxClusterSize is the largest cluster (dominator plus dominatees).
	MaxClusterSize int
}

// Analyze validates outcomes against the geometry.
func Analyze(pos []geo.Point, out []Outcome, r float64) Stats {
	var s Stats
	var dom []geo.Point
	clusterSize := make(map[int]int)
	for i, o := range out {
		if o.IsDominator {
			s.Dominators++
			if o.SelfAppointed {
				s.SelfAppointed++
			}
			dom = append(dom, pos[i])
		}
		if o.Dominator < 0 || !out[o.Dominator].IsDominator ||
			pos[i].Dist(pos[o.Dominator]) > r {
			s.Uncovered++
		}
		clusterSize[o.Dominator]++
	}
	if len(dom) > 0 {
		s.MaxDensity = geo.MaxBallCount(dom, r)
	}
	for _, c := range clusterSize {
		if c > s.MaxClusterSize {
			s.MaxClusterSize = c
		}
	}
	return s
}
