package dominate

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

func runDominate(t *testing.T, pos []geo.Point, cfg Config, seed uint64) []Outcome {
	t.Helper()
	nEst := len(pos)
	if nEst < 64 {
		nEst = 64
	}
	p := model.Default(1, nEst)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	out := make([]Outcome, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			out[i] = Run(ctx, cfg)
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSingletonSelfAppoints(t *testing.T) {
	cfg := DefaultConfig(0.06, 0)
	out := runDominate(t, []geo.Point{{X: 0}}, cfg, 1)
	if !out[0].IsDominator || out[0].Dominator != 0 {
		t.Errorf("singleton outcome = %+v", out[0])
	}
}

func TestCoverageOnSparseField(t *testing.T) {
	cfg := DefaultConfig(0.06, 0)
	for seed := uint64(1); seed <= 4; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		pos := topology.Uniform(rnd, 150, 2, 2)
		out := runDominate(t, pos, cfg, seed)
		s := Analyze(pos, out, cfg.R)
		if s.Uncovered != 0 {
			t.Errorf("seed %d: %d uncovered nodes", seed, s.Uncovered)
		}
	}
}

func TestDensePatchFormsFewClusters(t *testing.T) {
	// 120 nodes inside one r-ball: a handful of dominators must absorb
	// everyone; density must stay small.
	cfg := DefaultConfig(0.06, 0)
	for seed := uint64(1); seed <= 4; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed * 7)))
		pos := make([]geo.Point, 120)
		for i := range pos {
			pos[i] = geo.Point{X: rnd.Float64() * 0.04, Y: rnd.Float64() * 0.04}
		}
		out := runDominate(t, pos, cfg, seed)
		s := Analyze(pos, out, cfg.R)
		if s.Uncovered != 0 {
			t.Errorf("seed %d: %d uncovered", seed, s.Uncovered)
		}
		// All nodes fit in one ball of radius r: a single dominator suffices;
		// allow a little slack for simultaneous joins.
		if s.Dominators > 4 {
			t.Errorf("seed %d: %d dominators in one ball", seed, s.Dominators)
		}
	}
}

func TestDensityBoundedOnMixedField(t *testing.T) {
	// Hotspots plus background: density of dominators per r-ball must be a
	// small constant.
	cfg := DefaultConfig(0.06, 0)
	for seed := uint64(1); seed <= 3; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed * 13)))
		pos := topology.Hotspot(rnd, 5, 30, 1.5, 0.03)
		pos = append(pos, topology.Uniform(rnd, 60, 1.5, 1.5)...)
		out := runDominate(t, pos, cfg, seed)
		s := Analyze(pos, out, cfg.R)
		if s.Uncovered != 0 {
			t.Errorf("seed %d: %d uncovered", seed, s.Uncovered)
		}
		if s.MaxDensity > 6 {
			t.Errorf("seed %d: dominator density %d too high", seed, s.MaxDensity)
		}
	}
}

func TestDominatorAssignmentsConsistent(t *testing.T) {
	cfg := DefaultConfig(0.06, 0)
	rnd := rand.New(rand.NewSource(5))
	pos := topology.Uniform(rnd, 100, 1, 1)
	out := runDominate(t, pos, cfg, 9)
	for i, o := range out {
		if o.Dominator < 0 {
			t.Fatalf("node %d has no dominator", i)
		}
		if o.IsDominator && o.Dominator != i {
			t.Errorf("dominator %d assigned to %d", i, o.Dominator)
		}
		if !o.IsDominator && !out[o.Dominator].IsDominator {
			t.Errorf("node %d assigned to non-dominator %d", i, o.Dominator)
		}
	}
}

func TestSlotBudgetExact(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 0.02}, {X: 5}}
	p := model.Default(1, 64)
	cfg := DefaultConfig(0.06, 0)
	want := cfg.SlotBudget(p)
	e := sim.NewEngine(phy.NewField(p, pos), 3)
	after := make([]int, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			Run(ctx, cfg)
			after[i] = ctx.Slot()
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i, s := range after {
		if s != want {
			t.Errorf("node %d consumed %d slots, want %d", i, s, want)
		}
	}
}

func TestPhasesOverride(t *testing.T) {
	p := model.Default(1, 1024)
	cfg := DefaultConfig(0.06, 0)
	cfg.Phases = 3
	if got, want := cfg.SlotBudget(p), 3*3*cfg.roundsPerPhase(p); got != want {
		t.Errorf("budget = %d, want %d", got, want)
	}
}

func TestAnalyzeUncovered(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 5}}
	out := []Outcome{
		{IsDominator: true, Dominator: 0},
		{Dominator: 0}, // assigned to a dominator 5 units away: uncovered
	}
	s := Analyze(pos, out, 0.06)
	if s.Uncovered != 1 {
		t.Errorf("uncovered = %d, want 1", s.Uncovered)
	}
	if s.Dominators != 1 {
		t.Errorf("dominators = %d, want 1", s.Dominators)
	}
}

func TestIdleConsumesBudget(t *testing.T) {
	pos := []geo.Point{{X: 0}}
	p := model.Default(1, 64)
	cfg := DefaultConfig(0.06, 0)
	e := sim.NewEngine(phy.NewField(p, pos), 1)
	var got int
	progs := []sim.Program{func(ctx *sim.Ctx) {
		Idle(ctx, cfg)
		got = ctx.Slot()
	}}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if got != cfg.SlotBudget(p) {
		t.Errorf("Idle consumed %d, want %d", got, cfg.SlotBudget(p))
	}
}
