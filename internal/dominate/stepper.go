package dominate

// Stepper-form port of Run (see internal/sim: Stepper, Frag). The fragment
// is the same protocol with the goroutine's loop state held explicitly; it
// mirrors Run's control flow — in particular the order and conditions of
// ctx.Rand draws and the placement of post-Listen consumption code — so the
// two forms produce bit-identical transcripts.

import (
	"math"

	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// runAwait tags which listen, if any, the fragment's previous slot holds.
type runAwait uint8

const (
	awaitNone runAwait = iota
	awaitHello
	awaitAck
	awaitIn
)

// RunFrag is the sim.Frag form of Run. Out is valid once Feed returns true.
type RunFrag struct {
	Cfg Config
	Out Outcome

	init              bool
	phases, rounds    int
	prob, probCap     float64
	phase, round, sub int
	sentHello         bool
	clearFrom         int
	gotAck            bool
	await             runAwait
}

// NewRunFrag returns the fragment form of Run(cfg).
func NewRunFrag(cfg Config) *RunFrag { return &RunFrag{Cfg: cfg} }

// Feed implements sim.Frag.
func (f *RunFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.phases = f.Cfg.phases(p)
		f.rounds = f.Cfg.roundsPerPhase(p)
		f.prob = 1 / float64(p.NEstimate)
		f.probCap = 1 / (2 * f.Cfg.Mu)
		f.Out = Outcome{Dominator: -1}
		f.clearFrom = -1
	}
	// Consume the previous slot's reception first — the mirror of the
	// goroutine code that runs between a Listen's return and the next
	// primitive.
	switch f.await {
	case awaitHello:
		rec := sc.Prev()
		if h, ok := rec.Msg.(Hello); ok && !f.Out.IsDominator &&
			phy.Clear(rec, p, f.Cfg.R) {
			f.clearFrom = h.From
		}
	case awaitAck:
		rec := sc.Prev()
		if a, ok := rec.Msg.(Ack); ok && a.To == sc.ID() &&
			phy.SenderWithin(rec, p, f.Cfg.R) {
			f.gotAck = true
		}
	case awaitIn:
		rec := sc.Prev()
		if in, ok := rec.Msg.(In); ok && f.Out.Dominator == -1 &&
			phy.SenderWithin(rec, p, f.Cfg.R) {
			f.Out.Dominator = in.From
		}
	}
	f.await = awaitNone

	if f.phase >= f.phases {
		if f.Out.Dominator == -1 {
			f.Out.IsDominator = true
			f.Out.SelfAppointed = true
			f.Out.Dominator = sc.ID()
		}
		return true
	}

	ch := f.Cfg.Channel
	switch f.sub {
	case 0: // HELLO
		candidate := f.Out.Dominator == -1 && !f.Out.IsDominator
		f.sentHello = candidate && sc.Rand.Float64() < f.prob
		f.clearFrom = -1
		if f.sentHello {
			sc.Transmit(ch, Hello{From: sc.ID()})
		} else {
			sc.Listen(ch)
			f.await = awaitHello
		}
	case 1: // ACK
		f.gotAck = false
		switch {
		case f.sentHello:
			sc.Listen(ch)
			f.await = awaitAck
		case f.clearFrom >= 0 && sc.Rand.Float64() < f.Cfg.AckProb:
			sc.Transmit(ch, Ack{To: f.clearFrom})
		default:
			sc.Listen(ch)
		}
	case 2: // IN
		switch {
		case f.sentHello && f.gotAck:
			f.Out.IsDominator = true
			f.Out.Dominator = sc.ID()
			sc.Transmit(ch, In{From: sc.ID()})
		case f.Out.IsDominator && sc.Rand.Float64() < f.Cfg.ReannounceProb:
			sc.Transmit(ch, In{From: sc.ID()})
		default:
			sc.Listen(ch)
			f.await = awaitIn
		}
	}
	f.sub++
	if f.sub == 3 {
		f.sub = 0
		f.round++
		if f.round == f.rounds {
			f.round = 0
			f.phase++
			f.prob = math.Min(f.prob*2, f.probCap)
		}
	}
	return false
}
