package baseline

import (
	"sort"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/sim"
)

// tdmaSchedule is the centralized round-robin plan shared by both execution
// forms of TDMAByID: BFS parents plus each node's up- and down-pass slot.
type tdmaSchedule struct {
	n                int
	parent, dist     []int
	upSlot, downSlot []int
}

func buildTDMASchedule(pos []geo.Point, radius float64) tdmaSchedule {
	n := len(pos)
	g := graph.Build(pos, radius)
	dist := g.BFS(0)
	parent := bfsParents(g, dist)

	// Reverse-BFS order for the up pass; BFS order for the down pass.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := dist[order[a]], dist[order[b]]
		if da == -1 {
			da = 1 << 30
		}
		if db == -1 {
			db = 1 << 30
		}
		return da > db
	})
	upSlot := make([]int, n)
	downSlot := make([]int, n)
	for t, node := range order {
		upSlot[node] = t
		downSlot[node] = 2*n - 1 - t
	}
	return tdmaSchedule{n: n, parent: parent, dist: dist, upSlot: upSlot, downSlot: downSlot}
}

// tdmaStepper is the sim.Stepper form of one TDMAByID node program. No
// randomness is involved; the port only restates the slot loop with the
// loop counter held explicitly.
type tdmaStepper struct {
	sched *tdmaSchedule
	op    agg.Op
	out   []SingleChannelResult

	t         int
	have      int64
	result    int64
	gotResult bool
	await     uint8 // 0 none, 1 up-pass listen, 2 down-pass listen
}

// Step implements sim.Stepper.
func (s *tdmaStepper) Step(sc *sim.StepCtx) {
	i := sc.ID()
	switch s.await {
	case 1:
		if m, ok := sc.Prev().Msg.(upMsg); ok && m.To == i {
			s.have = s.op.Combine(s.have, m.Value)
		}
	case 2:
		if m, ok := sc.Prev().Msg.(downMsg); ok && !s.gotResult {
			s.result, s.gotResult = m.Value, true
		}
	}
	s.await = 0
	sd := s.sched
	if s.t >= 2*sd.n {
		if i == 0 && !s.gotResult {
			s.result, s.gotResult = s.have, true
		}
		if !s.gotResult {
			s.result = s.have // disconnected: own component partial
			s.gotResult = true
		}
		s.out[i] = SingleChannelResult{Value: s.result, Done: s.gotResult}
		sc.Done()
		return
	}
	t := s.t
	s.t++
	switch {
	case t == sd.upSlot[i] && sd.parent[i] >= 0:
		sc.Transmit(0, upMsg{To: sd.parent[i], Value: s.have})
	case t == sd.downSlot[i] && (s.gotResult || (i == 0 && sd.dist[i] == 0)):
		if i == 0 {
			s.result, s.gotResult = s.have, true
		}
		sc.Transmit(0, downMsg{Value: s.result})
	case t < sd.n:
		sc.Listen(0)
		s.await = 1
	default:
		sc.Listen(0)
		s.await = 2
	}
}

// TDMAByIDStepped is TDMAByID in the engine's goroutine-free mode: the same
// schedule driven as Steppers, producing a bit-identical transcript and the
// same per-node results.
func TDMAByIDStepped(e *sim.Engine, pos []geo.Point, values []int64, op agg.Op) ([]SingleChannelResult, error) {
	p := e.Field().Params()
	n := len(pos)
	sched := buildTDMASchedule(pos, p.REps())
	out := make([]SingleChannelResult, n)
	steppers := make([]sim.Stepper, n)
	arena := make([]tdmaStepper, n)
	for i := 0; i < n; i++ {
		arena[i] = tdmaStepper{sched: &sched, op: op, out: out, have: values[i]}
		steppers[i] = &arena[i]
	}
	if _, err := e.RunSteppers(steppers); err != nil {
		return nil, err
	}
	return out, nil
}
