// Package baseline provides the comparison algorithms for the experiment
// suite:
//
//   - SingleChannelTree: distributed single-channel tree aggregation in the
//     style of Li et al. [24] (the O(D + Δ) regime the paper improves on).
//     It is the backbone flood/echo run over every node on one channel,
//     with no multichannel structure.
//   - TDMAByID: a centralized, deterministic round-robin schedule (one
//     transmitter per slot, 2n slots total): the classic interference-free
//     reference point, Θ(n) regardless of Δ, D, or F.
//   - GreedyColors: centralized greedy coloring, the palette-size reference
//     for the coloring experiment.
package baseline

import (
	"mcnet/internal/agg"
	"mcnet/internal/backbone"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/sim"
)

// SingleChannelResult is a node's outcome under SingleChannelTree.
type SingleChannelResult struct {
	Value int64
	Done  bool
}

// SingleChannelTree aggregates values under op over a single channel with
// no clustering: every node participates in one flood/echo tree. deltaHint
// calibrates the transmission probability (the baseline is granted degree
// knowledge, a courtesy the multichannel pipeline does not get). hopBound
// sizes the phase budgets.
func SingleChannelTree(e *sim.Engine, values []int64, op agg.Op, deltaHint, hopBound int) ([]SingleChannelResult, error) {
	p := e.Field().Params()
	n := e.Field().N()
	cfg := backbone.DefaultTreeConfig(p, 1, hopBound)
	cfg.Radius = p.REps()
	prob := 2.0 / float64(max2(deltaHint, 4))
	if prob > 0.4 {
		prob = 0.4
	}
	cfg.FloodProb = prob
	// Without clustering, contention is n-wide and the tree root must serve
	// up to Δ children one acknowledgement at a time: stretch the phases by
	// Δ (the Δ term of single-channel lower bounds) so the run actually
	// completes; the measured completion event reflects the true cost.
	stretch := max2(deltaHint/4, 1)
	cfg.BuildBlocks += 2 * stretch * hopBound
	cfg.ChildBlocks += 8 * deltaHint
	cfg.CastBlocks += 2*stretch*hopBound + 8*deltaHint
	cfg.ResultBlocks += 2 * stretch * hopBound

	out := make([]SingleChannelResult, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			o := backbone.RunTree(ctx, cfg, 0, values[i], op)
			out[i] = SingleChannelResult{Value: o.Result, Done: o.Done}
		}
	}
	if _, err := e.Run(progs); err != nil {
		return nil, err
	}
	return out, nil
}

// TDMAByID runs the centralized round-robin schedule: slot t < n is owned
// by the node at position t in reverse-BFS order (deepest first), which
// transmits its partial aggregate to its BFS parent; slots n ≤ t < 2n
// broadcast the result down in BFS order. Exactly one node transmits per
// slot, so every in-range reception decodes. Returns the per-node results;
// the run always takes exactly 2n slots.
func TDMAByID(e *sim.Engine, pos []geo.Point, values []int64, op agg.Op) ([]SingleChannelResult, error) {
	p := e.Field().Params()
	n := len(pos)
	sched := buildTDMASchedule(pos, p.REps())
	parent, dist := sched.parent, sched.dist
	upSlot, downSlot := sched.upSlot, sched.downSlot

	out := make([]SingleChannelResult, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			have := values[i]
			result := int64(0)
			gotResult := false
			for t := 0; t < 2*n; t++ {
				switch {
				case t == upSlot[i] && parent[i] >= 0:
					ctx.Transmit(0, upMsg{To: parent[i], Value: have})
				case t == downSlot[i] && (gotResult || (i == 0 && dist[i] == 0)):
					if i == 0 {
						result, gotResult = have, true
					}
					ctx.Transmit(0, downMsg{Value: result})
				case t < n:
					rec := ctx.Listen(0)
					if m, ok := rec.Msg.(upMsg); ok && m.To == i {
						have = op.Combine(have, m.Value)
					}
				default:
					rec := ctx.Listen(0)
					if m, ok := rec.Msg.(downMsg); ok && !gotResult {
						result, gotResult = m.Value, true
					}
				}
			}
			if i == 0 && !gotResult {
				result, gotResult = have, true
			}
			if !gotResult {
				result = have // disconnected: own component partial
				gotResult = true
			}
			out[i] = SingleChannelResult{Value: result, Done: gotResult}
		}
	}
	if _, err := e.Run(progs); err != nil {
		return nil, err
	}
	return out, nil
}

type upMsg struct {
	To    int
	Value int64
}

type downMsg struct {
	Value int64
}

// bfsParents derives a parent per node from BFS distances (parent -1 for
// the root and unreachable nodes).
func bfsParents(g *graph.G, dist []int) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
		if dist[i] <= 0 {
			continue
		}
		for _, j := range g.Neighbors(i) {
			if dist[j] == dist[i]-1 {
				parent[i] = int(j)
				break
			}
		}
	}
	return parent
}

// GreedyColors computes a centralized greedy proper coloring of the
// radius-graph over pos: the palette-size reference for E4.
func GreedyColors(pos []geo.Point, radius float64) []int {
	g := graph.Build(pos, radius)
	colors := make([]int, len(pos))
	for i := range colors {
		colors[i] = -1
	}
	for i := range pos {
		used := map[int]bool{}
		for _, j := range g.Neighbors(i) {
			if colors[j] >= 0 {
				used[colors[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[i] = c
	}
	return colors
}

// MaxColor returns the palette size of a coloring.
func MaxColor(colors []int) int {
	m := 0
	for _, c := range colors {
		if c+1 > m {
			m = c + 1
		}
	}
	return m
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
