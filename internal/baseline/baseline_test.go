package baseline

import (
	"math/rand"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

func TestTDMAByIDExactSum(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		p := model.Default(1, 64)
		pos := topology.UniformDegree(rnd, 50, p.REps(), 10)
		values := make([]int64, 50)
		var want int64
		for i := range values {
			values[i] = int64(i * 2)
			want += values[i]
		}
		e := sim.NewEngine(phy.NewField(p, pos), uint64(seed))
		out, err := TDMAByID(e, pos, values, agg.Sum)
		if err != nil {
			t.Fatal(err)
		}
		// Connected check: if the field is connected, everyone gets the
		// exact sum.
		allOk := true
		for i, o := range out {
			if !o.Done {
				t.Errorf("seed %d: node %d not done", seed, i)
				allOk = false
			}
		}
		if !allOk {
			continue
		}
		// When connected, node 0's BFS covers all: results must be exact.
		connected := true
		g := gridGraphConnected(pos, p.REps())
		if g {
			for i, o := range out {
				if o.Value != want {
					t.Errorf("seed %d: node %d value %d, want %d", seed, i, o.Value, want)
				}
			}
		} else {
			connected = false
		}
		_ = connected
	}
}

func gridGraphConnected(pos []geo.Point, radius float64) bool {
	grid := geo.NewGrid(pos, radius)
	seen := make([]bool, len(pos))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		grid.ForNeighbors(pos[u], radius, func(v int) bool {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
			return true
		})
	}
	return count == len(pos)
}

func TestTDMATakesTwoNSlots(t *testing.T) {
	p := model.Default(1, 64)
	pos := topology.Line(10, 0.5)
	e := sim.NewEngine(phy.NewField(p, pos), 1)
	var slots int
	values := make([]int64, 10)
	e.Trace = func(slot int, _ []phy.Tx, _ []phy.Rx, _ []phy.Reception) { slots = slot + 1 }
	if _, err := TDMAByID(e, pos, values, agg.Sum); err != nil {
		t.Fatal(err)
	}
	if slots != 20 {
		t.Errorf("TDMA used %d slots, want 2n = 20", slots)
	}
}

func TestSingleChannelTreeLineSum(t *testing.T) {
	p := model.Default(1, 64)
	pos := topology.Line(12, 0.5)
	values := make([]int64, 12)
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	e := sim.NewEngine(phy.NewField(p, pos), 3)
	out, err := SingleChannelTree(e, values, agg.Sum, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, o := range out {
		if o.Done && o.Value == want {
			done++
		}
	}
	if done < 11 {
		t.Errorf("only %d/12 nodes got the exact sum", done)
	}
}

func TestSingleChannelTreeDenseMax(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	p := model.Default(1, 64)
	pos := make([]geo.Point, 30)
	for i := 1; i < 30; i++ {
		pos[i] = geo.Point{X: rnd.Float64() * 0.3, Y: rnd.Float64() * 0.3}
	}
	values := make([]int64, 30)
	var want int64 = -1 << 30
	for i := range values {
		values[i] = int64(rnd.Intn(1000))
		if values[i] > want {
			want = values[i]
		}
	}
	e := sim.NewEngine(phy.NewField(p, pos), 7)
	out, err := SingleChannelTree(e, values, agg.Max, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, o := range out {
		if !o.Done || o.Value != want {
			bad++
		}
	}
	if bad > 1 {
		t.Errorf("%d/30 nodes missed the max", bad)
	}
}

func TestGreedyColorsProper(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	pos := topology.Uniform(rnd, 150, 3, 3)
	radius := 0.7
	colors := GreedyColors(pos, radius)
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist(pos[j]) <= radius && colors[i] == colors[j] {
				t.Fatalf("conflict between %d and %d", i, j)
			}
		}
	}
	if MaxColor(colors) < 1 {
		t.Error("palette empty")
	}
}

func TestMaxColor(t *testing.T) {
	if got := MaxColor([]int{0, 3, 2}); got != 4 {
		t.Errorf("MaxColor = %d, want 4", got)
	}
	if got := MaxColor(nil); got != 0 {
		t.Errorf("MaxColor(nil) = %d, want 0", got)
	}
}
