package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

// tdmaTrace is one resolved slot of a TDMA run, deep-copied for comparison.
type tdmaTrace struct {
	Slot    int
	Txs     []phy.Tx
	Listens []int
	Decoded []bool
}

// TestTDMASteppedIdentity pins that TDMAByIDStepped reproduces TDMAByID's
// transcript and per-node results bit for bit.
func TestTDMASteppedIdentity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		p := model.Default(1, 64)
		pos := topology.UniformDegree(rnd, 50, p.REps(), 10)
		values := make([]int64, 50)
		for i := range values {
			values[i] = int64(i*5 + 2)
		}
		run := func(stepped bool) ([]SingleChannelResult, []tdmaTrace, int) {
			e := sim.NewEngine(phy.NewField(p, pos), uint64(seed))
			var trace []tdmaTrace
			e.Trace = func(slot int, txs []phy.Tx, rxs []phy.Rx, recs []phy.Reception) {
				r := tdmaTrace{Slot: slot, Txs: append([]phy.Tx(nil), txs...)}
				for i, rx := range rxs {
					r.Listens = append(r.Listens, rx.Node)
					r.Decoded = append(r.Decoded, recs[i].Msg != nil)
				}
				trace = append(trace, r)
			}
			var (
				out []SingleChannelResult
				err error
			)
			if stepped {
				out, err = TDMAByIDStepped(e, pos, values, agg.Sum)
			} else {
				out, err = TDMAByID(e, pos, values, agg.Sum)
			}
			if err != nil {
				t.Fatal(err)
			}
			return out, trace, len(trace)
		}
		gOut, gTrace, gSlots := run(false)
		sOut, sTrace, sSlots := run(true)
		if !reflect.DeepEqual(gOut, sOut) {
			t.Fatalf("seed %d: results differ", seed)
		}
		if gSlots != sSlots {
			t.Fatalf("seed %d: slot counts differ: %d vs %d", seed, gSlots, sSlots)
		}
		if !reflect.DeepEqual(gTrace, sTrace) {
			for i := range gTrace {
				if !reflect.DeepEqual(gTrace[i], sTrace[i]) {
					t.Fatalf("seed %d: transcript diverges at slot %d", seed, gTrace[i].Slot)
				}
			}
		}
	}
}
