// Package model defines the SINR model parameters of the paper (Sec. 2) and
// the radii derived from them.
//
// The network uses uniform transmission power P on F non-overlapping
// channels. A transmission from u is decoded at v iff they share a channel,
// v listens, and SINR(u, v) ≥ β with path-loss exponent α > 2 and ambient
// noise N. Nodes know only ranges for (α, β, N); protocols must use the
// pessimistic end of each range, which Params exposes via Bounds.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the physical and network model parameters for a run.
type Params struct {
	// Alpha is the path-loss exponent; must exceed 2 in the plane.
	Alpha float64
	// Beta is the SINR decoding threshold; must be ≥ 1.
	Beta float64
	// Noise is the ambient noise power N > 0.
	Noise float64
	// Power is the uniform transmission power P > 0.
	Power float64
	// Epsilon is the communication-graph margin: the communication graph
	// links nodes within R_eps = (1-Epsilon)·R_T. Must be in (0, 1).
	Epsilon float64
	// Channels is the number F of non-overlapping channels, ≥ 1.
	Channels int
	// NEstimate is the polynomial estimate of the network size known to all
	// nodes (the paper's n̂). Protocols read ln(NEstimate); they never see
	// the true n.
	NEstimate int
}

// Bounds captures the uncertainty ranges for the SINR parameters known to
// the nodes (the paper's α_min..α_max etc.). Protocols choose whichever end
// is pessimistic for the quantity being derived.
type Bounds struct {
	AlphaMin, AlphaMax float64
	BetaMin, BetaMax   float64
	NoiseMin, NoiseMax float64
}

// Default returns the parameter set used throughout the experiment suite:
// α = 3, β = 1.5, N = 1, ε = 0.3, and transmission power chosen so that
// R_T = 1 (i.e. P = β·N·R_T^α).
func Default(channels, nEstimate int) Params {
	const (
		alpha = 3.0
		beta  = 1.5
		noise = 1.0
	)
	return Params{
		Alpha:     alpha,
		Beta:      beta,
		Noise:     noise,
		Power:     beta * noise, // R_T = (P/(β·N))^{1/α} = 1
		Epsilon:   0.3,
		Channels:  channels,
		NEstimate: nEstimate,
	}
}

// Validate checks that the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 2:
		return fmt.Errorf("model: alpha = %v must be > 2 in the plane", p.Alpha)
	case p.Beta < 1:
		return fmt.Errorf("model: beta = %v must be ≥ 1", p.Beta)
	case p.Noise <= 0:
		return fmt.Errorf("model: noise = %v must be positive", p.Noise)
	case p.Power <= 0:
		return fmt.Errorf("model: power = %v must be positive", p.Power)
	case p.Epsilon <= 0 || p.Epsilon >= 1:
		return fmt.Errorf("model: epsilon = %v must be in (0, 1)", p.Epsilon)
	case p.Channels < 1:
		return fmt.Errorf("model: channels = %d must be ≥ 1", p.Channels)
	case p.NEstimate < 2:
		return errors.New("model: node-count estimate must be ≥ 2")
	}
	return nil
}

// RT returns the transmission range R_T = (P/(β·N))^{1/α}: the maximum
// distance at which a transmission can be decoded absent interference.
func (p Params) RT() float64 {
	return math.Pow(p.Power/(p.Beta*p.Noise), 1/p.Alpha)
}

// RC returns R_c = (1-c)·R_T for 0 < c < 1 (the paper's R_c notation).
func (p Params) RC(c float64) float64 { return (1 - c) * p.RT() }

// REps returns the communication-graph radius R_ε = (1-ε)·R_T.
func (p Params) REps() float64 { return p.RC(p.Epsilon) }

// REpsHalf returns R_{ε/2} = (1-ε/2)·R_T, the radius within which the
// dominators of adjacent nodes must receive distinct cluster colors.
func (p Params) REpsHalf() float64 { return p.RC(p.Epsilon / 2) }

// SeparationT returns the paper's constant
// t = ((α-2) / (48·β·(α-1)))^{1/α} from Lemma 2 / Sec. 5.1.1: transmitters
// that are r₁-independent are heard by all (t·r₁)-neighbors.
func (p Params) SeparationT() float64 {
	return math.Pow((p.Alpha-2)/(48*p.Beta*(p.Alpha-1)), 1/p.Alpha)
}

// ClusterRadius returns r_c = min{ t/(2t+2) · R_{ε/2}, ε·R_T/4 }, the
// dominating-set radius of Sec. 5.1.1. Clusters of this radius that are
// separated by the cluster coloring can run local protocols without
// inter-cluster interference (Lemma 9).
func (p Params) ClusterRadius() float64 {
	t := p.SeparationT()
	a := t / (2*t + 2) * p.REpsHalf()
	b := p.Epsilon * p.RT() / 4
	return math.Min(a, b)
}

// ClearThreshold returns the paper's T_s = N · min{ (2^α - 1)/2^α,
// (1/2)^α · β } from Definition 4: a reception with sensed interference at
// most T_s guarantees that no other node within 4r of the receiver
// transmitted, for any ruling radius r ≤ R_T/2.
//
// T_s is far below the maximal threshold that still yields that guarantee
// (see ClearInterferenceBound); under exact far-field interference
// accounting, receptions almost never qualify at T_s in extended networks,
// so the implementation uses ClearInterferenceBound instead (deviation D6 in
// DESIGN.md). T_s is retained for reference and for the Lemma 5 analysis
// checks in tests.
func (p Params) ClearThreshold() float64 {
	a := (math.Pow(2, p.Alpha) - 1) / math.Pow(2, p.Alpha)
	b := math.Pow(0.5, p.Alpha) * p.Beta
	return p.Noise * math.Min(a, b)
}

// ClearInterferenceBound returns the maximal interference threshold for a
// clear reception at ruling radius r that still certifies Definition 4's
// guarantee: if any node within 4r of the receiver (other than the decoded
// sender) transmitted, the sensed interference would be at least
// P/(4r)^α. Sensing strictly less therefore proves no 4r-neighbor
// transmitted.
func (p Params) ClearInterferenceBound(r float64) float64 {
	return p.PowerAtDistance(4 * r)
}

// LogN returns ln of the node-count estimate, the quantity protocols scale
// their round counts by.
func (p Params) LogN() float64 { return math.Log(float64(p.NEstimate)) }

// DistanceFromPower inverts the path-loss law: given received power prx from
// a transmission at power P, the distance estimate is (P/prx)^{1/α}. This is
// the RSSI-based ranging primitive the paper assumes (Sec. 2).
func (p Params) DistanceFromPower(prx float64) float64 {
	if prx <= 0 {
		return math.Inf(1)
	}
	return math.Pow(p.Power/prx, 1/p.Alpha)
}

// PowerAtDistance returns the received power P/d^α of a transmission heard
// at distance d. Distance zero yields +Inf.
func (p Params) PowerAtDistance(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return p.Power / math.Pow(d, p.Alpha)
}

// ExactBounds returns degenerate uncertainty ranges equal to the true
// parameters (the common case in the experiments; protocols still only read
// the ranges).
func (p Params) ExactBounds() Bounds {
	return Bounds{
		AlphaMin: p.Alpha, AlphaMax: p.Alpha,
		BetaMin: p.Beta, BetaMax: p.Beta,
		NoiseMin: p.Noise, NoiseMax: p.Noise,
	}
}

// WithChannels returns a copy of p using the given channel count.
func (p Params) WithChannels(f int) Params {
	p.Channels = f
	return p
}
