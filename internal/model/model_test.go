package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	p := Default(8, 256)
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if got := p.RT(); math.Abs(got-1) > 1e-12 {
		t.Errorf("default RT = %v, want 1", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Default(4, 100)
	mut := []func(*Params){
		func(p *Params) { p.Alpha = 2 },
		func(p *Params) { p.Alpha = 1.5 },
		func(p *Params) { p.Beta = 0.5 },
		func(p *Params) { p.Noise = 0 },
		func(p *Params) { p.Power = -1 },
		func(p *Params) { p.Epsilon = 0 },
		func(p *Params) { p.Epsilon = 1 },
		func(p *Params) { p.Channels = 0 },
		func(p *Params) { p.NEstimate = 1 },
	}
	for i, m := range mut {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestRadiiOrdering(t *testing.T) {
	p := Default(4, 100)
	rt := p.RT()
	if !(p.REps() < p.REpsHalf() && p.REpsHalf() < rt) {
		t.Errorf("want REps < REpsHalf < RT, got %v, %v, %v",
			p.REps(), p.REpsHalf(), rt)
	}
	if rc := p.ClusterRadius(); !(rc > 0 && rc < p.REps()) {
		t.Errorf("cluster radius %v out of range (0, REps=%v)", rc, p.REps())
	}
}

func TestSeparationT(t *testing.T) {
	p := Default(4, 100)
	// α=3, β=1.5: t = (1/(48·1.5·2))^{1/3} = (1/144)^{1/3}.
	want := math.Pow(1.0/144, 1.0/3)
	if got := p.SeparationT(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SeparationT = %v, want %v", got, want)
	}
	if got := p.SeparationT(); got <= 0 || got >= 1 {
		t.Errorf("SeparationT = %v outside (0,1)", got)
	}
}

func TestClearThreshold(t *testing.T) {
	p := Default(4, 100)
	// α=3: (2³-1)/2³ = 7/8; (1/2)³·β = 1.5/8. min = 1.5/8 = 0.1875.
	want := 0.1875
	if got := p.ClearThreshold(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ClearThreshold = %v, want %v", got, want)
	}
	if p.ClearThreshold() >= p.Noise {
		t.Error("clear threshold should be below noise floor for these params")
	}
}

func TestDistancePowerRoundTrip(t *testing.T) {
	p := Default(4, 100)
	f := func(dRaw uint16) bool {
		d := 0.01 + float64(dRaw)/1000 // (0.01, 65.5)
		prx := p.PowerAtDistance(d)
		back := p.DistanceFromPower(prx)
		return math.Abs(back-d) < 1e-9*d+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(p.DistanceFromPower(0), 1) {
		t.Error("zero power should give infinite distance")
	}
	if !math.IsInf(p.PowerAtDistance(0), 1) {
		t.Error("zero distance should give infinite power")
	}
}

func TestRTThresholdConsistency(t *testing.T) {
	// At exactly RT the SINR against pure noise equals β.
	p := Default(4, 100)
	rt := p.RT()
	sinr := p.PowerAtDistance(rt) / p.Noise
	if math.Abs(sinr-p.Beta) > 1e-9 {
		t.Errorf("SINR at RT = %v, want β = %v", sinr, p.Beta)
	}
}

func TestWithChannels(t *testing.T) {
	p := Default(4, 100)
	q := p.WithChannels(16)
	if q.Channels != 16 || p.Channels != 4 {
		t.Error("WithChannels should copy, not mutate")
	}
}

func TestExactBounds(t *testing.T) {
	p := Default(4, 100)
	b := p.ExactBounds()
	if b.AlphaMin != p.Alpha || b.AlphaMax != p.Alpha ||
		b.BetaMin != p.Beta || b.NoiseMax != p.Noise {
		t.Error("ExactBounds should echo the true parameters")
	}
}

func TestLogN(t *testing.T) {
	p := Default(4, 100)
	if got := p.LogN(); math.Abs(got-math.Log(100)) > 1e-12 {
		t.Errorf("LogN = %v", got)
	}
}
