package csa

// Stepper-form ports of the cluster-size estimators (see internal/sim:
// Stepper, Frag). Each fragment mirrors its goroutine original's control
// flow — the order and conditions of ctx.Rand draws and the placement of
// post-Listen consumption code — so the two forms produce bit-identical
// transcripts.

import (
	"math"

	"mcnet/internal/agg"
	"mcnet/internal/phy"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// DominatorFrag is the sim.Frag form of RunDominator for cluster head Dom.
// Estimate is valid once Feed returns true (0 if the cluster appears empty).
type DominatorFrag struct {
	Cfg      Config
	Dom      int
	Estimate int

	init                   bool
	phases, rounds, thresh int
	phase, round           int
	pos                    uint8 // 0/1/2 probe round, 3/4/5 notification
	count                  int
	terminated             bool
	awaitProbe             bool
}

// Feed implements sim.Frag.
func (f *DominatorFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.phases = f.Cfg.Phases()
		f.rounds = f.Cfg.RoundsPerPhase(p)
		f.thresh = f.Cfg.threshold(p)
	}
	if f.awaitProbe {
		f.awaitProbe = false
		rec := sc.Prev()
		if m, ok := rec.Msg.(Probe); ok && m.Dom == f.Dom &&
			phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) {
			f.count++
		}
	}
	stride := f.Cfg.stride()
	off := f.Cfg.Offset
	for {
		if f.phase >= f.phases {
			return true
		}
		switch f.pos {
		case 0: // probe-round pre-idle
			if f.round >= f.rounds {
				f.pos = 3
				continue
			}
			f.pos = 1
			if off > 0 {
				sc.IdleFor(off)
				return false
			}
		case 1: // probe-round listen
			f.pos = 2
			sc.Listen(f.Cfg.Channel)
			f.awaitProbe = true
			return false
		case 2: // probe-round post-idle
			f.pos = 0
			f.round++
			if k := stride - 1 - off; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 3: // notification pre-idle
			f.pos = 4
			if off > 0 {
				sc.IdleFor(off)
				return false
			}
		case 4: // notification act
			f.pos = 5
			if !f.terminated && f.count >= f.thresh {
				f.terminated = true
				f.Estimate = f.Cfg.DeltaHat >> f.phase
				if f.Estimate < 1 {
					f.Estimate = 1
				}
			}
			if f.terminated {
				sc.Transmit(f.Cfg.Channel, Estimate{Dom: f.Dom, Est: f.Estimate})
			} else {
				sc.Idle()
			}
			return false
		default: // notification post-idle + phase advance
			f.pos = 0
			f.round = 0
			f.count = 0
			f.phase++
			if k := stride - 1 - off; k > 0 {
				sc.IdleFor(k)
				return false
			}
		}
	}
}

// DominateeFrag is the sim.Frag form of RunDominatee for a member of
// cluster Dom. Estimate is valid once Feed returns true (0 if no
// notification arrived).
type DominateeFrag struct {
	Cfg      Config
	Dom      int
	Estimate int

	init           bool
	phases, rounds int
	phase, round   int
	pos            uint8 // 0/1/2 probe round, 3/4/5 notification
	prob           float64
	awaitEst       bool
}

// Feed implements sim.Frag.
func (f *DominateeFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.phases = f.Cfg.Phases()
		f.rounds = f.Cfg.RoundsPerPhase(p)
		f.prob = f.Cfg.Lambda / float64(f.Cfg.DeltaHat)
	}
	if f.awaitEst {
		f.awaitEst = false
		rec := sc.Prev()
		if m, ok := rec.Msg.(Estimate); ok && m.Dom == f.Dom &&
			phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) && f.Estimate == 0 {
			f.Estimate = m.Est
		}
	}
	stride := f.Cfg.stride()
	off := f.Cfg.Offset
	for {
		if f.phase >= f.phases {
			return true
		}
		switch f.pos {
		case 0: // probe-round pre-idle
			if f.round >= f.rounds {
				f.pos = 3
				continue
			}
			f.pos = 1
			if off > 0 {
				sc.IdleFor(off)
				return false
			}
		case 1: // probe-round act
			f.pos = 2
			if f.Estimate == 0 && sc.Rand.Float64() < f.prob {
				sc.Transmit(f.Cfg.Channel, Probe{From: sc.ID(), Dom: f.Dom})
			} else {
				sc.Idle()
			}
			return false
		case 2: // probe-round post-idle
			f.pos = 0
			f.round++
			if k := stride - 1 - off; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 3: // notification pre-idle
			f.pos = 4
			if off > 0 {
				sc.IdleFor(off)
				return false
			}
		case 4: // notification listen
			f.pos = 5
			sc.Listen(f.Cfg.Channel)
			f.awaitEst = true
			return false
		default: // notification post-idle + phase advance
			f.pos = 0
			f.round = 0
			f.phase++
			f.prob = math.Min(f.prob*2, f.Cfg.Lambda)
			if k := stride - 1 - off; k > 0 {
				sc.IdleFor(k)
				return false
			}
		}
	}
}

// smallCastCfg builds the reporter-tree config the small variant uses.
func smallCastCfg(cfg SmallConfig) reporter.CastConfig {
	cast := reporter.DefaultCastConfig(cfg.F, cfg.ClusterRadius)
	cast.Stride, cast.Offset = cfg.stride(), cfg.Offset
	return cast
}

// SmallDominatorFrag is the sim.Frag form of RunSmallDominator. Estimate is
// valid once Feed returns true.
type SmallDominatorFrag struct {
	Cfg      SmallConfig
	Estimate int

	init  bool
	stage uint8 // 0 idle-elect, 1 idle-probe, 2 cast up, 3/4/5 broadcast
	idle  sim.IdleFrag
	cast  *reporter.CastUpFrag
}

// Feed implements sim.Frag.
func (f *SmallDominatorFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	for {
		switch f.stage {
		case 0: // sit out the election
			if !f.init {
				f.init = true
				elect := f.Cfg.Elect
				elect.Stride, elect.Offset = f.Cfg.stride(), f.Cfg.Offset
				f.idle = sim.IdleFrag{K: elect.SlotBudget(p)}
			}
			if !f.idle.Feed(sc) {
				return false
			}
			probe := f.Cfg.Probe
			probe.Stride, probe.Offset = f.Cfg.stride(), f.Cfg.Offset
			f.idle = sim.IdleFrag{K: probe.SlotBudget(p)}
			f.stage = 1
		case 1: // sit out the probing
			if !f.idle.Feed(sc) {
				return false
			}
			f.cast = &reporter.CastUpFrag{
				Cfg: smallCastCfg(f.Cfg), Role: 0, Dom: sc.ID(), Value: 0, Op: agg.Sum,
			}
			f.stage = 2
		case 2: // aggregate channel counts up the reporter tree
			if !f.cast.Feed(sc) {
				return false
			}
			f.Estimate = int(f.cast.St.Value) + 1 // members + self
			f.stage = 3
		case 3: // broadcast pre-idle
			f.stage = 4
			if k := f.Cfg.Offset; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 4: // broadcast
			f.stage = 5
			sc.Transmit(0, Estimate{Dom: sc.ID(), Est: f.Estimate})
			return false
		case 5: // broadcast post-idle
			f.stage = 6
			if k := f.Cfg.stride() - 1 - f.Cfg.Offset; k > 0 {
				sc.IdleFor(k)
				return false
			}
		default:
			return true
		}
	}
}

// SmallDominateeFrag is the sim.Frag form of RunSmallDominatee for a member
// of cluster Dom. Estimate is valid once Feed returns true (0 if the
// broadcast was missed).
type SmallDominateeFrag struct {
	Cfg      SmallConfig
	Dom      int
	Estimate int

	init    bool
	stage   uint8 // 0 elect, 1 lead probe, 2 lead cast, 3 member probe, 4 idle cast, 5/6/7 broadcast
	channel int
	elect   *reporter.ElectFrag
	domFrag *DominatorFrag
	deeFrag *DominateeFrag
	cast    *reporter.CastUpFrag
	idle    sim.IdleFrag
	await   bool
}

// Feed implements sim.Frag.
func (f *SmallDominateeFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if f.await {
		f.await = false
		rec := sc.Prev()
		if m, ok := rec.Msg.(Estimate); ok && m.Dom == f.Dom &&
			phy.SenderWithin(rec, p, f.Cfg.ClusterRadius) {
			f.Estimate = m.Est
		}
	}
	for {
		switch f.stage {
		case 0: // channel choice + election
			if !f.init {
				f.init = true
				f.channel = sc.Rand.Intn(f.Cfg.F)
				elect := f.Cfg.Elect
				elect.Stride, elect.Offset = f.Cfg.stride(), f.Cfg.Offset
				f.elect = &reporter.ElectFrag{Cfg: elect, Channel: f.channel, Dom: f.Dom}
			}
			if !f.elect.Feed(sc) {
				return false
			}
			probe := f.Cfg.Probe
			probe.Stride, probe.Offset = f.Cfg.stride(), f.Cfg.Offset
			probe.Channel = f.channel
			if f.elect.Min == sc.ID() {
				f.domFrag = &DominatorFrag{Cfg: probe, Dom: sc.ID()}
				f.stage = 1
			} else {
				f.deeFrag = &DominateeFrag{Cfg: probe, Dom: f.elect.Min}
				f.stage = 3
			}
		case 1: // channel leader: count own channel
			if !f.domFrag.Feed(sc) {
				return false
			}
			f.cast = &reporter.CastUpFrag{
				Cfg: smallCastCfg(f.Cfg), Role: f.channel + 1, Dom: f.Dom,
				Value: int64(f.domFrag.Estimate) + 1, Op: agg.Sum, // + leader
			}
			f.stage = 2
		case 2: // channel leader: report up the tree
			if !f.cast.Feed(sc) {
				return false
			}
			f.stage = 5
		case 3: // member: probe
			if !f.deeFrag.Feed(sc) {
				return false
			}
			f.idle = sim.IdleFrag{K: smallCastCfg(f.Cfg).SlotBudget()}
			f.stage = 4
		case 4: // member: sit out the cast
			if !f.idle.Feed(sc) {
				return false
			}
			f.stage = 5
		case 5: // broadcast pre-idle
			f.stage = 6
			if k := f.Cfg.Offset; k > 0 {
				sc.IdleFor(k)
				return false
			}
		case 6: // broadcast listen on channel 0
			f.stage = 7
			sc.Listen(0)
			f.await = true
			return false
		case 7: // broadcast post-idle
			f.stage = 8
			if k := f.Cfg.stride() - 1 - f.Cfg.Offset; k > 0 {
				sc.IdleFor(k)
				return false
			}
		default:
			return true
		}
	}
}
