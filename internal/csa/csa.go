// Package csa implements Cluster-Size Approximation (Sec. 5.2.1 and
// Appendix A): every node of a well-separated cluster learns a constant-
// factor approximation of its cluster's size.
//
// Two variants are provided, exactly as in the paper:
//
//   - The large-Δ̂ variant (Sec. 5.2.1.1) uses a single channel. Dominatees
//     probe with a probability that starts at λ/Δ̂ and doubles each phase;
//     the dominator terminates the estimate when it hears enough probes in
//     one phase, inferring |C| ≈ λ/p from the probe probability p. Runtime
//     O(log Δ̂ · log n).
//
//   - The small-Δ̂ variant (Appendix A) spreads dominatees uniformly over
//     the F channels, elects a per-channel leader (reporter.RunElect), runs
//     the probing estimator per channel with the small per-channel bound,
//     aggregates the per-channel estimates to the dominator over the
//     reporter tree, and broadcasts the total. Runtime O(log n · log log n)
//     when Δ̂ ≤ F·polylog(n) (Lemma 13).
//
// Choose combines them per Lemma 14.
package csa

import (
	"math"

	"mcnet/internal/agg"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// Probe is a dominatee's counting transmission.
type Probe struct {
	From, Dom int
}

// Estimate is the dominator's (or channel leader's) termination notice
// carrying the cluster-size estimate.
type Estimate struct {
	Dom int
	Est int
}

// Config parameterizes the large-Δ̂ estimator (also used per channel by the
// small-Δ̂ variant).
type Config struct {
	// Channel the estimator runs on.
	Channel int
	// ClusterRadius bounds the distance to co-members (2·r_c).
	ClusterRadius float64
	// DeltaHat is the known upper bound Δ̂ on the cluster size.
	DeltaHat int
	// Lambda is the target contention λ (the paper uses 1/2).
	Lambda float64
	// CountFactor: the dominator terminates on ≥ CountFactor·ln n̂ probes in
	// a phase (the paper's ω₁).
	CountFactor float64
	// RoundFactor: probe rounds per phase = ceil(RoundFactor·ln n̂) (the
	// paper's γ₁).
	RoundFactor float64
	// Stride and Offset interleave clusters under the TDMA scheme.
	Stride, Offset int
}

// DefaultConfig returns the pipeline configuration of the large-Δ̂
// estimator.
func DefaultConfig(deltaHat int, clusterRadius float64) Config {
	return Config{
		Channel:       0,
		ClusterRadius: clusterRadius,
		DeltaHat:      deltaHat,
		Lambda:        0.5,
		CountFactor:   2,
		RoundFactor:   16,
		Stride:        1,
	}
}

func (c Config) stride() int {
	if c.Stride < 1 {
		return 1
	}
	return c.Stride
}

// Phases returns ⌈log₂ Δ̂⌉, the number of doubling phases.
func (c Config) Phases() int {
	if c.DeltaHat <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(c.DeltaHat))))
}

// RoundsPerPhase returns the probe rounds per phase.
func (c Config) RoundsPerPhase(p model.Params) int {
	return int(math.Ceil(c.RoundFactor * p.LogN()))
}

// SlotBudget returns the exact number of slots the estimator consumes:
// per phase, RoundsPerPhase probe rounds plus one notification round.
func (c Config) SlotBudget(p model.Params) int {
	return c.stride() * c.Phases() * (c.RoundsPerPhase(p) + 1)
}

// Idle consumes the estimator budget without participating.
func Idle(ctx *sim.Ctx, cfg Config) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// threshold is the termination count for the given parameters.
func (c Config) threshold(p model.Params) int {
	t := int(math.Ceil(c.CountFactor * p.LogN()))
	if t < 1 {
		return 1
	}
	return t
}

// RunDominator executes the counting side for cluster head dom (usually the
// caller itself; channel leaders in the small-Δ̂ variant pass their own ID).
// It returns the estimate of the number of PROBING members (excluding the
// head itself), ≥ 1·constant-factor accurate w.h.p., or 0 if the cluster
// appears empty. It consumes exactly cfg.SlotBudget slots.
func RunDominator(ctx *sim.Ctx, cfg Config, dom int) int {
	var (
		p          = ctx.Params()
		stride     = cfg.stride()
		rounds     = cfg.RoundsPerPhase(p)
		thresh     = cfg.threshold(p)
		estimate   = 0
		terminated = false
	)
	for phase := 0; phase < cfg.Phases(); phase++ {
		count := 0
		for r := 0; r < rounds; r++ {
			ctx.IdleFor(cfg.Offset)
			rec := ctx.Listen(cfg.Channel)
			if m, ok := rec.Msg.(Probe); ok && m.Dom == dom &&
				phy.SenderWithin(rec, p, cfg.ClusterRadius) {
				count++
			}
			ctx.IdleFor(stride - 1 - cfg.Offset)
		}
		// Notification round.
		ctx.IdleFor(cfg.Offset)
		if !terminated && count >= thresh {
			terminated = true
			estimate = cfg.DeltaHat >> phase
			if estimate < 1 {
				estimate = 1
			}
		}
		if terminated {
			ctx.Transmit(cfg.Channel, Estimate{Dom: dom, Est: estimate})
		} else {
			ctx.Idle()
		}
		ctx.IdleFor(stride - 1 - cfg.Offset)
	}
	return estimate
}

// RunDominatee executes the probing side for a member of cluster dom. It
// returns the estimate learned from the head's notification (0 if none
// arrived). It consumes exactly cfg.SlotBudget slots.
func RunDominatee(ctx *sim.Ctx, cfg Config, dom int) int {
	var (
		p        = ctx.Params()
		stride   = cfg.stride()
		rounds   = cfg.RoundsPerPhase(p)
		prob     = cfg.Lambda / float64(cfg.DeltaHat)
		estimate = 0
	)
	for phase := 0; phase < cfg.Phases(); phase++ {
		for r := 0; r < rounds; r++ {
			ctx.IdleFor(cfg.Offset)
			if estimate == 0 && ctx.Rand.Float64() < prob {
				ctx.Transmit(cfg.Channel, Probe{From: ctx.ID(), Dom: dom})
			} else {
				ctx.Idle()
			}
			ctx.IdleFor(stride - 1 - cfg.Offset)
		}
		// Notification round.
		ctx.IdleFor(cfg.Offset)
		rec := ctx.Listen(cfg.Channel)
		if m, ok := rec.Msg.(Estimate); ok && m.Dom == dom &&
			phy.SenderWithin(rec, p, cfg.ClusterRadius) && estimate == 0 {
			estimate = m.Est
		}
		ctx.IdleFor(stride - 1 - cfg.Offset)
		prob = math.Min(prob*2, cfg.Lambda)
	}
	return estimate
}

// SmallConfig parameterizes the Appendix A multichannel estimator.
type SmallConfig struct {
	// F is the number of channels to spread members over.
	F int
	// ClusterRadius bounds the distance to co-members (2·r_c).
	ClusterRadius float64
	// PerChannelBound is the Δ̂ used by the per-channel estimators (the
	// paper's γ₃·ln^c n; members per channel are O(polylog n) w.h.p.).
	PerChannelBound int
	// Elect configures the per-channel leader election.
	Elect reporter.ElectConfig
	// Probe configures the per-channel estimator (Channel is overridden).
	Probe Config
	// Stride and Offset interleave clusters under the TDMA scheme.
	Stride, Offset int
}

// DefaultSmallConfig returns the pipeline configuration of the small-Δ̂
// variant.
func DefaultSmallConfig(p model.Params, clusterRadius float64) SmallConfig {
	perChan := int(math.Ceil(8 * p.LogN()))
	probe := DefaultConfig(perChan, clusterRadius)
	return SmallConfig{
		F:               p.Channels,
		ClusterRadius:   clusterRadius,
		PerChannelBound: perChan,
		Elect:           reporter.DefaultElectConfig(clusterRadius),
		Probe:           probe,
		Stride:          1,
	}
}

func (c SmallConfig) stride() int {
	if c.Stride < 1 {
		return 1
	}
	return c.Stride
}

// SlotBudget returns the exact number of slots the small-Δ̂ estimator
// consumes: election + per-channel estimation + tree aggregation + one
// broadcast round.
func (c SmallConfig) SlotBudget(p model.Params) int {
	elect := c.Elect
	elect.Stride, elect.Offset = c.stride(), 0
	probe := c.Probe
	probe.Stride, probe.Offset = c.stride(), 0
	cast := reporter.DefaultCastConfig(c.F, c.ClusterRadius)
	cast.Stride, cast.Offset = c.stride(), 0
	return elect.SlotBudget(p) + probe.SlotBudget(p) + cast.SlotBudget() + c.stride()
}

// IdleSmall consumes the small-variant budget without participating.
func IdleSmall(ctx *sim.Ctx, cfg SmallConfig) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// RunSmallDominator executes the dominator side of the Appendix A variant
// and returns the cluster-size estimate (counting members and the dominator
// itself). It consumes exactly cfg.SlotBudget slots.
func RunSmallDominator(ctx *sim.Ctx, cfg SmallConfig) int {
	var (
		elect = cfg.Elect
		probe = cfg.Probe
		cast  = reporter.DefaultCastConfig(cfg.F, cfg.ClusterRadius)
	)
	elect.Stride, elect.Offset = cfg.stride(), cfg.Offset
	probe.Stride, probe.Offset = cfg.stride(), cfg.Offset
	cast.Stride, cast.Offset = cfg.stride(), cfg.Offset

	// The dominator sits out election and probing.
	reporter.IdleElect(ctx, elect)
	Idle(ctx, probe)
	st := reporter.RunCastUp(ctx, cast, 0, ctx.ID(), 0, agg.Sum)
	est := int(st.Value) + 1 // members + self

	// Broadcast round.
	ctx.IdleFor(cfg.Offset)
	ctx.Transmit(0, Estimate{Dom: ctx.ID(), Est: est})
	ctx.IdleFor(cfg.stride() - 1 - cfg.Offset)
	return est
}

// RunSmallDominatee executes the member side: pick a channel, elect a
// leader, estimate per channel, aggregate, and learn the total from the
// dominator's broadcast. It returns the learned estimate (0 if the
// broadcast was missed). It consumes exactly cfg.SlotBudget slots.
func RunSmallDominatee(ctx *sim.Ctx, cfg SmallConfig, dom int) int {
	var (
		p     = ctx.Params()
		elect = cfg.Elect
		probe = cfg.Probe
		cast  = reporter.DefaultCastConfig(cfg.F, cfg.ClusterRadius)
	)
	elect.Stride, elect.Offset = cfg.stride(), cfg.Offset
	probe.Stride, probe.Offset = cfg.stride(), cfg.Offset
	cast.Stride, cast.Offset = cfg.stride(), cfg.Offset

	channel := ctx.Rand.Intn(cfg.F)
	probe.Channel = channel

	leader := reporter.RunElect(ctx, elect, channel, dom)
	var channelCount int64
	if leader == ctx.ID() {
		channelCount = int64(RunDominator(ctx, probe, ctx.ID())) + 1 // + leader
		reporter.RunCastUp(ctx, cast, channel+1, dom, channelCount, agg.Sum)
	} else {
		RunDominatee(ctx, probe, leader)
		reporter.IdleCast(ctx, cast)
	}

	// Broadcast round: listen on channel 0.
	ctx.IdleFor(cfg.Offset)
	est := 0
	rec := ctx.Listen(0)
	if m, ok := rec.Msg.(Estimate); ok && m.Dom == dom &&
		phy.SenderWithin(rec, p, cfg.ClusterRadius) {
		est = m.Est
	}
	ctx.IdleFor(cfg.stride() - 1 - cfg.Offset)
	return est
}

// UseSmall implements the Lemma 14 chooser: the small variant applies when
// Δ̂ ≤ F·log^{ĉ+2} n̂ (we use ĉ = 0, i.e. Δ̂/F ≤ log² n̂).
func UseSmall(p model.Params, deltaHat int) bool {
	return float64(deltaHat)/float64(p.Channels) <= p.LogN()*p.LogN()
}
