package csa

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// clusterPos places size-1 members around a dominator at the origin, all
// within radius.
func clusterPos(size int, radius float64, seed int64) []geo.Point {
	rnd := rand.New(rand.NewSource(seed))
	pos := make([]geo.Point, size)
	for i := 1; i < size; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * radius / 1.5,
			Y: (rnd.Float64()*2 - 1) * radius / 1.5,
		}
	}
	return pos
}

// runLarge executes the large-Δ̂ estimator on a single cluster with node 0
// as dominator; returns the dominator's estimate and the members' learned
// estimates.
func runLarge(t *testing.T, size int, cfg Config, channels int, seed uint64) (int, []int) {
	t.Helper()
	pos := clusterPos(size, 0.05, int64(seed))
	p := model.Default(channels, 256)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	var domEst int
	memberEst := make([]int, size)
	progs := make([]sim.Program, size)
	progs[0] = func(ctx *sim.Ctx) { domEst = RunDominator(ctx, cfg, 0) }
	for i := 1; i < size; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) { memberEst[i] = RunDominatee(ctx, cfg, 0) }
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return domEst, memberEst
}

func TestLargeEstimateAccuracy(t *testing.T) {
	// Cluster sizes across two orders of magnitude with Δ̂ = 512: estimates
	// must land within a constant band of the truth.
	for _, size := range []int{16, 64, 200} {
		cfg := DefaultConfig(512, 0.14)
		domEst, memberEst := runLarge(t, size, cfg, 1, uint64(size))
		truth := size - 1 // probing members
		if domEst < truth/8 || domEst > truth*8 {
			t.Errorf("size %d: estimate %d outside [%d, %d]", size, domEst, truth/8, truth*8)
		}
		for i := 1; i < size; i++ {
			if memberEst[i] != domEst {
				t.Errorf("size %d: member %d learned %d, dominator has %d",
					size, i, memberEst[i], domEst)
			}
		}
	}
}

func TestLargeEmptyClusterNoTermination(t *testing.T) {
	// A dominator with no members must report 0 (no probes ever arrive).
	cfg := DefaultConfig(64, 0.14)
	domEst, _ := runLarge(t, 1, cfg, 1, 3)
	if domEst != 0 {
		t.Errorf("empty cluster estimate = %d, want 0", domEst)
	}
}

func TestLargeSlotBudget(t *testing.T) {
	p := model.Default(1, 256)
	cfg := DefaultConfig(128, 0.14)
	pos := clusterPos(3, 0.05, 1)
	e := sim.NewEngine(phy.NewField(p, pos), 1)
	after := make([]int, 3)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunDominator(ctx, cfg, 0); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { RunDominatee(ctx, cfg, 0); after[1] = ctx.Slot() },
		func(ctx *sim.Ctx) { Idle(ctx, cfg); after[2] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	want := cfg.SlotBudget(p)
	for i, s := range after {
		if s != want {
			t.Errorf("node %d consumed %d, want %d", i, s, want)
		}
	}
}

func TestLargePhases(t *testing.T) {
	if got := DefaultConfig(1, 0.14).Phases(); got != 1 {
		t.Errorf("Phases(Δ̂=1) = %d", got)
	}
	if got := DefaultConfig(128, 0.14).Phases(); got != 7 {
		t.Errorf("Phases(Δ̂=128) = %d, want 7", got)
	}
	if got := DefaultConfig(100, 0.14).Phases(); got != 7 {
		t.Errorf("Phases(Δ̂=100) = %d, want 7", got)
	}
}

func TestSmallEstimateAccuracy(t *testing.T) {
	for _, size := range []int{12, 40, 90} {
		pos := clusterPos(size, 0.05, int64(size))
		p := model.Default(8, 256)
		cfg := DefaultSmallConfig(p, 0.14)
		e := sim.NewEngine(phy.NewField(p, pos), uint64(size)*7)
		var domEst int
		memberEst := make([]int, size)
		progs := make([]sim.Program, size)
		progs[0] = func(ctx *sim.Ctx) { domEst = RunSmallDominator(ctx, cfg) }
		for i := 1; i < size; i++ {
			i := i
			progs[i] = func(ctx *sim.Ctx) { memberEst[i] = RunSmallDominatee(ctx, cfg, 0) }
		}
		if _, err := e.Run(progs); err != nil {
			t.Fatal(err)
		}
		if domEst < size/8 || domEst > size*8 {
			t.Errorf("size %d: dominator estimate %d outside [%d, %d]",
				size, domEst, size/8, size*8)
		}
		missed := 0
		for i := 1; i < size; i++ {
			if memberEst[i] == 0 {
				missed++
			} else if memberEst[i] != domEst {
				t.Errorf("size %d: member %d learned %d ≠ %d", size, i, memberEst[i], domEst)
			}
		}
		if missed > 0 {
			t.Errorf("size %d: %d members missed the broadcast", size, missed)
		}
	}
}

func TestSmallSlotBudget(t *testing.T) {
	p := model.Default(4, 256)
	cfg := DefaultSmallConfig(p, 0.14)
	pos := clusterPos(4, 0.05, 2)
	e := sim.NewEngine(phy.NewField(p, pos), 5)
	after := make([]int, 4)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunSmallDominator(ctx, cfg); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { RunSmallDominatee(ctx, cfg, 0); after[1] = ctx.Slot() },
		func(ctx *sim.Ctx) { RunSmallDominatee(ctx, cfg, 0); after[2] = ctx.Slot() },
		func(ctx *sim.Ctx) { IdleSmall(ctx, cfg); after[3] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	want := cfg.SlotBudget(p)
	for i, s := range after {
		if s != want {
			t.Errorf("node %d consumed %d, want %d", i, s, want)
		}
	}
}

func TestUseSmallChooser(t *testing.T) {
	p := model.Default(8, 256) // ln 256 ≈ 5.55, log² ≈ 30.8
	if !UseSmall(p, 100) {     // 100/8 = 12.5 ≤ 30.8
		t.Error("small variant should apply for Δ̂ = 100, F = 8")
	}
	if UseSmall(p, 4000) { // 500 > 30.8
		t.Error("large variant should apply for Δ̂ = 4000, F = 8")
	}
}

func TestTwoClustersInterleaved(t *testing.T) {
	// Two clusters, same color stride pattern offset: TDMA keeps their CSA
	// runs independent even though both use channel 0.
	const size = 20
	posA := clusterPos(size, 0.05, 5)
	var pos []geo.Point
	pos = append(pos, posA...)
	for _, q := range clusterPos(size, 0.05, 6) {
		pos = append(pos, geo.Point{X: q.X + 1.2, Y: q.Y})
	}
	p := model.Default(1, 256)
	e := sim.NewEngine(phy.NewField(p, pos), 9)
	ests := make([]int, 2)
	progs := make([]sim.Program, 2*size)
	for c := 0; c < 2; c++ {
		c := c
		cfg := DefaultConfig(256, 0.14)
		cfg.Stride, cfg.Offset = 2, c
		dom := c * size
		progs[dom] = func(ctx *sim.Ctx) { ests[c] = RunDominator(ctx, cfg, dom) }
		for i := 1; i < size; i++ {
			progs[dom+i] = func(ctx *sim.Ctx) { RunDominatee(ctx, cfg, dom) }
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	truth := size - 1
	for c, est := range ests {
		if est < truth/8 || est > truth*8 {
			t.Errorf("cluster %d estimate %d outside band around %d", c, est, truth)
		}
	}
}
