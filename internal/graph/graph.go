// Package graph builds and analyzes the communication graph G = (V, E) of
// Sec. 2: nodes are linked when their distance is at most R_ε = (1-ε)·R_T.
// The graph is measurement infrastructure — protocols never see it — used to
// compute the paper's parameters Δ (max degree) and D (diameter) for
// reporting, and to verify structural properties in tests.
package graph

import (
	"mcnet/internal/geo"
)

// G is an undirected communication graph over indexed nodes.
type G struct {
	n   int
	adj [][]int32
}

// Build links every pair of points within the given radius (excluding
// self-loops) using a spatial grid, in O(n + m) expected time.
func Build(pos []geo.Point, radius float64) *G {
	g := &G{n: len(pos), adj: make([][]int32, len(pos))}
	if len(pos) == 0 {
		return g
	}
	grid := geo.NewGrid(pos, radius)
	for i, p := range pos {
		grid.ForNeighbors(p, radius, func(j int) bool {
			if j != i {
				g.adj[i] = append(g.adj[i], int32(j))
			}
			return true
		})
	}
	return g
}

// N returns the number of nodes.
func (g *G) N() int { return g.n }

// Degree returns the degree of node i.
func (g *G) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns node i's adjacency list (shared; do not mutate).
func (g *G) Neighbors(i int) []int32 { return g.adj[i] }

// MaxDegree returns Δ, the maximum degree.
func (g *G) MaxDegree() int {
	max := 0
	for i := 0; i < g.n; i++ {
		if d := len(g.adj[i]); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean degree.
func (g *G) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	total := 0
	for i := 0; i < g.n; i++ {
		total += len(g.adj[i])
	}
	return float64(total) / float64(g.n)
}

// BFS returns hop distances from src; unreachable nodes get -1.
func (g *G) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (vacuously true for
// n ≤ 1).
func (g *G) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum finite BFS distance from src and whether
// all nodes were reachable.
func (g *G) Eccentricity(src int) (ecc int, allReachable bool) {
	allReachable = true
	for _, d := range g.BFS(src) {
		if d == -1 {
			allReachable = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, allReachable
}

// Diameter returns D, the maximum over pairs of the shortest hop distance,
// computed exactly by BFS from every node. Returns -1 for disconnected
// graphs.
func (g *G) Diameter() int {
	if g.n == 0 {
		return 0
	}
	diam := 0
	for i := 0; i < g.n; i++ {
		ecc, ok := g.Eccentricity(i)
		if !ok {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DiameterApprox returns a 2-approximation of the hop diameter D in
// O(n + m) time, for large graphs where the exact computation is too slow.
// It runs a double BFS: one BFS from node 0 finds a farthest node, and that
// node's eccentricity is the result. The returned value always lies in
// [⌈D/2⌉, D] — it is an eccentricity, hence at most D, and every
// eccentricity is at least half the diameter by the triangle inequality.
// It returns -1 for disconnected graphs.
func (g *G) DiameterApprox() int {
	if g.n == 0 {
		return 0
	}
	far, ok := furthest(g.BFS(0))
	if !ok {
		return -1
	}
	ecc, ok2 := g.Eccentricity(far)
	if !ok2 {
		return -1
	}
	return ecc
}

func furthest(dist []int) (int, bool) {
	best, bestD := 0, -1
	for i, d := range dist {
		if d == -1 {
			return 0, false
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best, true
}
