package graph

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/topology"
)

func TestBuildLine(t *testing.T) {
	pos := topology.Line(5, 1)
	g := Build(pos, 1.0)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	// Interior nodes have 2 neighbors, endpoints 1.
	wantDeg := []int{1, 2, 2, 2, 1}
	for i, w := range wantDeg {
		if g.Degree(i) != w {
			t.Errorf("degree(%d) = %d, want %d", i, g.Degree(i), w)
		}
	}
	if g.MaxDegree() != 2 {
		t.Errorf("Δ = %d, want 2", g.MaxDegree())
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("D = %d, want 4", d)
	}
	if !g.Connected() {
		t.Error("line should be connected")
	}
}

func TestDisconnected(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 10}}
	g := Build(pos, 1)
	if g.Connected() {
		t.Error("far pair should be disconnected")
	}
	if g.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
	if g.DiameterApprox() != -1 {
		t.Error("approx diameter of disconnected graph should be -1")
	}
	if _, ok := g.Eccentricity(0); ok {
		t.Error("eccentricity should report unreachable nodes")
	}
}

func TestBFS(t *testing.T) {
	pos := topology.Line(4, 1)
	g := Build(pos, 1)
	dist := g.BFS(1)
	want := []int{1, 0, 1, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pos := topology.Uniform(r, 200, 10, 10)
	g := Build(pos, 1.5)
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			found := false
			for _, k := range g.Neighbors(int(j)) {
				if int(k) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not symmetric", i, j)
			}
		}
	}
}

func TestEdgesMatchDistance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pos := topology.Uniform(r, 100, 5, 5)
	radius := 1.0
	g := Build(pos, radius)
	adj := make(map[[2]int]bool)
	for i := 0; i < g.N(); i++ {
		for _, j := range g.Neighbors(i) {
			adj[[2]int{i, int(j)}] = true
		}
	}
	for i := range pos {
		for j := range pos {
			if i == j {
				continue
			}
			want := pos[i].Dist(pos[j]) <= radius
			if adj[[2]int{i, j}] != want {
				t.Fatalf("edge (%d,%d): got %v, want %v", i, j, adj[[2]int{i, j}], want)
			}
		}
	}
}

func TestDiameterApproxBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		pos := topology.Corridor(r, 120, 20, 0.8)
		g := Build(pos, 1)
		if !g.Connected() {
			continue
		}
		exact := g.Diameter()
		approx := g.DiameterApprox()
		if approx > exact || approx*2 < exact {
			t.Errorf("approx %d outside [%d/2, %d]", approx, exact, exact)
		}
	}
}

func TestRingDiameter(t *testing.T) {
	// 12 points on a circle of radius 2: arc neighbors only.
	pos := topology.Ring(12, 2)
	g := Build(pos, 1.1)
	if !g.Connected() {
		t.Fatal("ring should connect")
	}
	if d := g.Diameter(); d != 6 {
		t.Errorf("ring diameter = %d, want 6", d)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	g := Build(nil, 1)
	if g.N() != 0 || g.Diameter() != 0 || !g.Connected() {
		t.Error("empty graph invariants")
	}
	g = Build([]geo.Point{{X: 1, Y: 1}}, 1)
	if g.N() != 1 || g.MaxDegree() != 0 || !g.Connected() || g.Diameter() != 0 {
		t.Error("singleton invariants")
	}
	if g.AvgDegree() != 0 {
		t.Error("singleton avg degree")
	}
}

func TestAvgDegree(t *testing.T) {
	pos := topology.Line(3, 1)
	g := Build(pos, 1)
	if got := g.AvgDegree(); got != 4.0/3 {
		t.Errorf("avg degree = %v", got)
	}
}
