// Package ruling implements the (r, 2r)-ruling set algorithm of Sec. 4
// (second phase): given a set of participants whose density within r-balls
// is bounded by µ, it computes a subset S that is r-independent and
// 2r-dominates the participants, in O(log n) three-slot rounds w.h.p.
//
// Each round has three slots on one channel:
//
//	Slot 1 — HELLO: each active participant transmits HELLO(id) with
//	         probability 1/(2µ); others listen.
//	Slot 2 — ACK: a node with a *clear reception* (Definition 4) of a HELLO
//	         from an r-neighbor transmits ACK(sender) with probability
//	         AckProb; the HELLO sender listens.
//	Slot 3 — IN: a HELLO sender that received an ACK addressed to it from an
//	         r-neighbor joins S, announces IN(id) and halts. Everyone else
//	         listens; receiving IN from an r-neighbor halts the node
//	         (it is dominated, Lemma 5). Participants still active after all
//	         rounds join S.
//
// The implementation is a composable stage: Run consumes exactly
// Config.SlotBudget slots of its sim.Ctx, padding with idle slots after the
// node halts, so staged pipelines stay slot-aligned. Stride/Offset interleave
// independent executions under the cluster TDMA scheme of Sec. 5.1.2.
package ruling

import (
	"math"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// Hello is the slot-1 probe message.
type Hello struct {
	From int
}

// Ack is the slot-2 response addressed to a HELLO sender.
type Ack struct {
	To int
}

// In is the slot-3 announcement of a node joining the ruling set.
type In struct {
	From int
}

// Config parameterizes one ruling-set execution.
type Config struct {
	// R is the independence radius r ≤ R_T/2.
	R float64
	// Channel all participants operate on.
	Channel int
	// Mu is the assumed density bound µ; the HELLO probability is 1/(2µ).
	Mu float64
	// AckProb is the slot-2 acknowledgement probability. The paper uses
	// 1/(2µ) as well; 1/2 is a practical default since clear receivers of
	// distinct HELLOs are already spatially sparse (deviation D1).
	AckProb float64
	// RoundFactor scales the round count: rounds = ceil(RoundFactor·ln n̂).
	RoundFactor float64
	// Stride and Offset interleave executions under the cluster TDMA
	// scheme: a node runs its 3 protocol slots in sub-block Offset of each
	// 3·Stride-slot block. Stride 0 means 1 (no interleaving).
	Stride, Offset int
}

// DefaultConfig returns the practical configuration used by the pipeline for
// a ruling set of radius r on the given channel.
func DefaultConfig(r float64, channel int) Config {
	return Config{
		R:           r,
		Channel:     channel,
		Mu:          3,
		AckProb:     0.5,
		RoundFactor: 14,
		Stride:      1,
	}
}

func (c Config) stride() int {
	if c.Stride < 1 {
		return 1
	}
	return c.Stride
}

// Rounds returns the number of protocol rounds for the given parameters.
func (c Config) Rounds(p model.Params) int {
	return int(math.Ceil(c.RoundFactor * p.LogN()))
}

// SlotBudget returns the exact number of simulator slots Run and Idle
// consume: 3 slots per round per stride sub-block.
func (c Config) SlotBudget(p model.Params) int {
	return 3 * c.stride() * c.Rounds(p)
}

// Outcome is the per-node result of a ruling-set execution.
type Outcome struct {
	// InSet reports whether the node joined the ruling set S.
	InSet bool
	// DominatedBy is the ID of the IN announcer that silenced this node, or
	// -1 (nodes in S, and nodes that joined by surviving all rounds).
	DominatedBy int
	// JoinRound is the protocol round in which the node's fate was decided
	// (rounds count from 0; survivors report the total round count).
	JoinRound int
}

// Idle consumes the stage's slot budget without participating. Non-members
// of the current TDMA color class (and non-participants generally) call this
// to stay aligned.
func Idle(ctx *sim.Ctx, cfg Config) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// Run executes the participant side of the ruling-set protocol and returns
// the node's outcome. It consumes exactly cfg.SlotBudget slots.
func Run(ctx *sim.Ctx, cfg Config) Outcome {
	var (
		p        = ctx.Params()
		rounds   = cfg.Rounds(p)
		stride   = cfg.stride()
		helloPr  = 1 / (2 * cfg.Mu)
		out      = Outcome{DominatedBy: -1, JoinRound: rounds}
		active   = true
		slotUsed = 0
	)
	budget := cfg.SlotBudget(p)
	defer func() {
		// Pad to the fixed stage length.
		ctx.IdleFor(budget - slotUsed)
	}()

	for round := 0; round < rounds && active; round++ {
		slotUsed += 3 * stride
		ctx.IdleFor(3 * cfg.Offset)

		// Slot 1: HELLO.
		sentHello := ctx.Rand.Float64() < helloPr
		var clearFrom = -1
		if sentHello {
			ctx.Transmit(cfg.Channel, Hello{From: ctx.ID()})
		} else {
			rec := ctx.Listen(cfg.Channel)
			if h, ok := rec.Msg.(Hello); ok && phy.Clear(rec, p, cfg.R) {
				clearFrom = h.From
			}
		}

		// Slot 2: ACK.
		gotAck := false
		switch {
		case sentHello:
			rec := ctx.Listen(cfg.Channel)
			if a, ok := rec.Msg.(Ack); ok && a.To == ctx.ID() &&
				phy.SenderWithin(rec, p, cfg.R) {
				gotAck = true
			}
		case clearFrom >= 0 && ctx.Rand.Float64() < cfg.AckProb:
			ctx.Transmit(cfg.Channel, Ack{To: clearFrom})
		default:
			ctx.Listen(cfg.Channel)
		}

		// Slot 3: IN.
		if sentHello && gotAck {
			ctx.Transmit(cfg.Channel, In{From: ctx.ID()})
			out.InSet = true
			out.JoinRound = round
			active = false
		} else {
			rec := ctx.Listen(cfg.Channel)
			if in, ok := rec.Msg.(In); ok && phy.SenderWithin(rec, p, cfg.R) {
				out.DominatedBy = in.From
				out.JoinRound = round
				active = false
			}
		}

		ctx.IdleFor(3 * (stride - 1 - cfg.Offset))
	}
	if active {
		// Survivor: enters S at the end (Sec. 4).
		out.InSet = true
	}
	return out
}

// Validate checks the ruling-set postcondition over the participant set:
// members of S are pairwise more than r apart, and every participant is
// within 2r of some member. It returns the number of independence violations
// and the number of undominated participants.
func Validate(pos []geo.Point, participant []bool, inSet []bool, r float64) (violations, undominated int) {
	var members []int
	for i := range pos {
		if participant[i] && inSet[i] {
			members = append(members, i)
		}
	}
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			if pos[members[a]].Dist(pos[members[b]]) <= r {
				violations++
			}
		}
	}
	for i := range pos {
		if !participant[i] || inSet[i] {
			continue
		}
		ok := false
		for _, m := range members {
			if pos[i].Dist(pos[m]) <= 2*r {
				ok = true
				break
			}
		}
		if !ok {
			undominated++
		}
	}
	return violations, undominated
}
