package ruling

import (
	"math"
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// runRuling executes the protocol over the given positions with every node
// participating and returns the outcomes. The network-size estimate is kept
// ≥ 64 so that tiny test topologies still get enough rounds.
func runRuling(t *testing.T, pos []geo.Point, cfg Config, seed uint64, channels int) []Outcome {
	t.Helper()
	nEst := len(pos) + 2
	if nEst < 64 {
		nEst = 64
	}
	p := model.Default(channels, nEst)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	out := make([]Outcome, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			out[i] = Run(ctx, cfg)
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return out
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func inSetOf(out []Outcome) []bool {
	b := make([]bool, len(out))
	for i, o := range out {
		b[i] = o.InSet
	}
	return b
}

// patch sprinkles k points uniformly in a square of the given side anchored
// at (ox, oy).
func patch(rnd *rand.Rand, k int, ox, oy, side float64) []geo.Point {
	pts := make([]geo.Point, k)
	for i := range pts {
		pts[i] = geo.Point{X: ox + rnd.Float64()*side, Y: oy + rnd.Float64()*side}
	}
	return pts
}

func TestSingletonJoins(t *testing.T) {
	cfg := DefaultConfig(0.05, 0)
	out := runRuling(t, []geo.Point{{X: 0, Y: 0}}, cfg, 1, 1)
	if !out[0].InSet {
		t.Error("lone node must end up in the ruling set")
	}
}

func TestIsolatedNodesAllJoin(t *testing.T) {
	// Nodes far apart (no r-neighbors): all must join S.
	pos := []geo.Point{{X: 0}, {X: 10}, {X: 20}, {X: 35}}
	cfg := DefaultConfig(0.05, 0)
	out := runRuling(t, pos, cfg, 2, 1)
	for i, o := range out {
		if !o.InSet {
			t.Errorf("isolated node %d not in set", i)
		}
	}
}

func TestClosePairExactlyOneJoins(t *testing.T) {
	// Two nodes well within r of each other: exactly one should join, for
	// many seeds.
	cfg := DefaultConfig(0.05, 0)
	for seed := uint64(0); seed < 20; seed++ {
		pos := []geo.Point{{X: 0}, {X: 0.02}}
		out := runRuling(t, pos, cfg, seed, 1)
		joined := 0
		for _, o := range out {
			if o.InSet {
				joined++
			}
		}
		if joined != 1 {
			t.Errorf("seed %d: %d nodes joined, want 1", seed, joined)
		}
	}
}

func TestDensePatchElectsOne(t *testing.T) {
	// A single dense patch whose diameter is below r: the patch is one
	// mutual r-neighborhood, so exactly one member may end in S.
	const r = 0.04
	cfg := DefaultConfig(r, 0)
	cfg.Mu = 8 // patch has ~16 members per r-ball; keep contention modest
	for seed := uint64(0); seed < 10; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed + 100)))
		pos := patch(rnd, 16, 0, 0, r/2)
		out := runRuling(t, pos, cfg, seed, 1)
		joined := 0
		for _, o := range out {
			if o.InSet {
				joined++
			}
		}
		if joined != 1 {
			t.Errorf("seed %d: %d joined, want exactly 1", seed, joined)
		}
	}
}

func TestSparseFieldPostcondition(t *testing.T) {
	// Sparse global field: node density well below one per r-ball, the
	// regime in which the pipeline invokes ruling sets over dominators.
	const r = 0.06
	cfg := DefaultConfig(r, 0)
	for seed := uint64(1); seed <= 6; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		pos := patch(rnd, 80, 0, 0, 2.0)
		out := runRuling(t, pos, cfg, seed, 1)
		viol, undom := Validate(pos, allTrue(len(pos)), inSetOf(out), r)
		if viol != 0 {
			t.Errorf("seed %d: %d independence violations", seed, viol)
		}
		if undom != 0 {
			t.Errorf("seed %d: %d undominated nodes", seed, undom)
		}
	}
}

func TestSeparatedPatchesPostcondition(t *testing.T) {
	// Several dense patches far apart: each patch resolves to one member,
	// far-field interference from other patches notwithstanding.
	const r = 0.04
	cfg := DefaultConfig(r, 0)
	cfg.Mu = 6
	for seed := uint64(1); seed <= 5; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed * 3)))
		var pos []geo.Point
		for px := 0; px < 3; px++ {
			for py := 0; py < 2; py++ {
				pos = append(pos, patch(rnd, 12, float64(px)*1.5, float64(py)*1.5, r/2)...)
			}
		}
		out := runRuling(t, pos, cfg, seed, 1)
		viol, undom := Validate(pos, allTrue(len(pos)), inSetOf(out), r)
		if viol != 0 || undom != 0 {
			t.Errorf("seed %d: %d violations, %d undominated", seed, viol, undom)
		}
	}
}

func TestDominatedByIsARealMember(t *testing.T) {
	const r = 0.04
	cfg := DefaultConfig(r, 0)
	cfg.Mu = 6
	rnd := rand.New(rand.NewSource(11))
	pos := patch(rnd, 14, 0, 0, r/2)
	out := runRuling(t, pos, cfg, 5, 1)
	for i, o := range out {
		if o.InSet || o.DominatedBy < 0 {
			continue
		}
		if !out[o.DominatedBy].InSet {
			t.Errorf("node %d dominated by %d which is not in S", i, o.DominatedBy)
		}
		if pos[i].Dist(pos[o.DominatedBy]) > r {
			t.Errorf("node %d dominated from beyond r", i)
		}
	}
}

func TestSlotBudgetExact(t *testing.T) {
	// The stage must consume exactly its slot budget regardless of when
	// nodes halt, so pipelines stay aligned.
	pos := []geo.Point{{X: 0}, {X: 0.02}, {X: 10}}
	p := model.Default(1, 64)
	cfg := DefaultConfig(0.05, 0)
	want := cfg.SlotBudget(p)
	e := sim.NewEngine(phy.NewField(p, pos), 3)
	after := make([]int, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			Run(ctx, cfg)
			after[i] = ctx.Slot()
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i, s := range after {
		if s != want {
			t.Errorf("node %d consumed %d slots, want %d", i, s, want)
		}
	}
}

func TestIdleConsumesBudget(t *testing.T) {
	pos := []geo.Point{{X: 0}}
	p := model.Default(1, 64)
	cfg := DefaultConfig(0.05, 0)
	e := sim.NewEngine(phy.NewField(p, pos), 1)
	var got int
	progs := []sim.Program{func(ctx *sim.Ctx) {
		Idle(ctx, cfg)
		got = ctx.Slot()
	}}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if got != cfg.SlotBudget(p) {
		t.Errorf("Idle consumed %d, want %d", got, cfg.SlotBudget(p))
	}
}

func TestStrideInterleavingIsolation(t *testing.T) {
	// Two co-located dense groups run with stride 2 at offsets 0 and 1:
	// time-division must isolate them completely, so each group elects
	// exactly one member despite sharing the same patch of plane.
	const r = 0.04
	rnd := rand.New(rand.NewSource(21))
	pos := patch(rnd, 24, 0, 0, r/2)
	group := make([]int, len(pos))
	for i := range group {
		group[i] = i % 2
	}
	p := model.Default(1, 64)
	e := sim.NewEngine(phy.NewField(p, pos), 9)
	out := make([]Outcome, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		cfg := DefaultConfig(r, 0)
		cfg.Mu = 6
		cfg.Stride, cfg.Offset = 2, group[i]
		progs[i] = func(ctx *sim.Ctx) { out[i] = Run(ctx, cfg) }
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		joined := 0
		for i, o := range out {
			if group[i] == g && o.InSet {
				joined++
			}
		}
		if joined != 1 {
			t.Errorf("group %d: %d joined, want exactly 1", g, joined)
		}
	}
}

func TestRoundsScaleLogarithmically(t *testing.T) {
	cfg := DefaultConfig(0.05, 0)
	p64 := model.Default(1, 64)
	p4096 := model.Default(1, 4096)
	r64, r4096 := cfg.Rounds(p64), cfg.Rounds(p4096)
	ratio := float64(r4096) / float64(r64)
	want := math.Log(4096) / math.Log(64)
	if math.Abs(ratio-want) > 0.1 {
		t.Errorf("round ratio = %v, want ≈ %v", ratio, want)
	}
}

func TestValidate(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 0.01}, {X: 1}}
	part := []bool{true, true, true}
	// Both close nodes in S: one violation; far node not in S and not
	// dominated.
	viol, undom := Validate(pos, part, []bool{true, true, false}, 0.05)
	if viol != 1 || undom != 1 {
		t.Errorf("viol=%d undom=%d, want 1, 1", viol, undom)
	}
	// Proper: node 0 in S dominates node 1; node 2 in S.
	viol, undom = Validate(pos, part, []bool{true, false, true}, 0.05)
	if viol != 0 || undom != 0 {
		t.Errorf("viol=%d undom=%d, want 0, 0", viol, undom)
	}
}

func TestNonParticipantsExcludedFromValidate(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 0.01}}
	// Node 1 not participating: no violation even though both "in set".
	viol, undom := Validate(pos, []bool{true, false}, []bool{true, true}, 0.05)
	if viol != 0 || undom != 0 {
		t.Errorf("viol=%d undom=%d, want 0, 0", viol, undom)
	}
}
