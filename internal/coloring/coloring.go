// Package coloring implements the node-coloring algorithm of Sec. 7: using
// the aggregation structure, every node receives a color such that no two
// communication-graph neighbors share one, with O(Δ) colors total, in
// O(Δ/F + log n log log n) rounds beyond structure construction
// (Theorem 24).
//
// Per cluster, four procedures run on the structure:
//
//  1. Followers deliver their IDs to reporters (the Sec. 6 follower
//     procedure), attaching each follower to exactly one reporter.
//  2. Reporters convergecast subtree sizes (1 + #followers) up the reporter
//     tree to the dominator.
//  3. The dominator distributes disjoint color-index ranges back down the
//     tree; each reporter receives an interval covering itself and its
//     followers.
//  4. Reporters announce one color index per follower on their channel.
//
// A node with index k in a cluster of color i takes the final color
// k·φ + i (the paper's color sequence {kφ + i}), so clusters within
// interference range use disjoint palettes and no two neighbors collide.
package coloring

import (
	"context"
	"math"
	"sort"

	"mcnet/internal/agg"
	"mcnet/internal/core"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/phy"
	"mcnet/internal/reporter"
	"mcnet/internal/sim"
)

// Assign announces a follower's color index within a cluster.
type Assign struct {
	Dom, To, Index int
}

// EventColored fires when a node learns its final color.
const EventColored = "colored"

// Config parameterizes the coloring run on top of a core.Plan.
type Config struct {
	// AssignCycles is how many times each reporter cycles through its
	// follower list in procedure 4.
	AssignCycles int
	// AssignSlackFactor adds ceil(factor·ln n̂) extra assignment rounds.
	AssignSlackFactor float64
}

// DefaultConfig returns the standard coloring configuration.
func DefaultConfig() Config {
	return Config{AssignCycles: 3, AssignSlackFactor: 8}
}

// Result is the per-node outcome.
type Result struct {
	// Color is the final color, or -1 if the node ended uncolored.
	Color int
	// Index is the within-cluster color index.
	Index int
	// ClusterColor is the cluster's TDMA color.
	ClusterColor int
	// IsDominator and IsReporter describe the node's structure role.
	IsDominator, IsReporter bool
}

// AssignRounds returns the length of procedure 4 in TDMA blocks.
func AssignRounds(pl *core.Plan, cfg Config) int {
	perChannel := int(math.Ceil(float64(pl.Cfg.DeltaHat) / float64(pl.Params.Channels)))
	return cfg.AssignCycles*perChannel + int(math.Ceil(cfg.AssignSlackFactor*pl.Params.LogN()))
}

// Run executes structure construction followed by the four coloring
// procedures, returning per-node colors. All protocol randomness flows from
// the engine's seed through the per-node ctx.Rand streams, so there is no
// separate coloring seed.
func Run(e *sim.Engine, pl *core.Plan, cfg Config) ([]Result, error) {
	return RunContext(context.Background(), e, pl, cfg)
}

// RunContext is like Run but aborts promptly with ctx.Err() when ctx is
// cancelled mid-run.
func RunContext(ctx context.Context, e *sim.Engine, pl *core.Plan, cfg Config) ([]Result, error) {
	n := e.Field().N()
	res := make([]Result, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = program(pl, cfg, i, res)
	}
	if _, err := e.RunContext(ctx, progs); err != nil {
		return nil, err
	}
	return res, nil
}

func program(pl *core.Plan, cfg Config, i int, res []Result) sim.Program {
	return func(ctx *sim.Ctx) {
		r := &res[i]
		r.Color, r.Index = -1, -1
		p := pl.Params

		// Structure construction (Sec. 5).
		st := pl.BuildStage(ctx)
		r.ClusterColor = st.Color
		r.IsDominator = st.IsDominator()

		// Procedure 1: followers send IDs to reporters.
		got, ackedOn := pl.FollowerStage(ctx, st, int64(ctx.ID()))
		r.IsReporter = st.IsReporter()

		// Sorted follower list: announcement order must be deterministic.
		var followers []int
		for id := range got {
			followers = append(followers, id)
		}
		sort.Ints(followers)

		// Procedure 2: subtree counts up the reporter tree.
		cast := pl.CastConfig(st.Off)
		var up reporter.CastState
		subtree := int64(1 + len(followers))
		if st.Role >= 1 {
			up = reporter.RunCastUp(ctx, cast, st.Role, st.Dom.Dominator, subtree, agg.Sum)
		} else if st.Role == 0 {
			up = reporter.RunCastUp(ctx, cast, 0, st.Dom.Dominator, 0, agg.Sum)
		} else {
			reporter.IdleCast(ctx, cast)
		}

		// Procedure 3: color-index ranges down the reporter tree. A
		// reporter's own block covers itself plus its followers; the
		// dominator consumes nothing here (it takes the index one past the
		// total).
		split := func(j int, base bool, payload [2]int64, cv [2]int64, cs [2]bool) (self, left, right [2]int64) {
			lo := payload[0]
			if base && j != 0 {
				self = [2]int64{lo, subtree}
				lo += subtree
			}
			if cs[0] {
				left = [2]int64{lo, cv[0]}
				lo += cv[0]
			}
			if cs[1] {
				right = [2]int64{lo, cv[1]}
			}
			return self, left, right
		}
		var block [2]int64
		haveBlock := false
		if st.Role >= 0 {
			root := [2]int64{0, up.Value}
			block, haveBlock = reporter.RunCastDown(ctx, cast, st.Role, st.Dom.Dominator, up, root, split)
		} else {
			reporter.IdleCast(ctx, cast)
		}

		// Procedure 4: reporters announce follower indices; followers listen
		// on the channel whose reporter acknowledged them.
		var (
			stride  = pl.Cfg.PhiMax
			rounds  = AssignRounds(pl, cfg)
			memberR = pl.ClusterRadius()
		)
		switch {
		case st.Role == 0:
			// The dominator's index is one past the member total.
			r.Index = int(up.Value)
			colorOf(r, pl)
			ctx.Emit(EventColored, r.Color)
		case st.Role >= 1 && haveBlock:
			r.Index = int(block[0])
			colorOf(r, pl)
			ctx.Emit(EventColored, r.Color)
		}
		for round := 0; round < rounds; round++ {
			ctx.IdleFor(st.Off)
			switch {
			case st.Role >= 1 && haveBlock && len(followers) > 0:
				k := round % len(followers)
				ctx.Transmit(st.Role-1, Assign{
					Dom:   st.Dom.Dominator,
					To:    followers[k],
					Index: int(block[0]) + 1 + k,
				})
			case st.Role < 0 && r.Color < 0 && ackedOn >= 0:
				rec := ctx.Listen(ackedOn)
				if m, ok := rec.Msg.(Assign); ok && m.Dom == st.Dom.Dominator &&
					m.To == ctx.ID() && phy.SenderWithin(rec, p, memberR) {
					r.Index = m.Index
					colorOf(r, pl)
					ctx.Emit(EventColored, r.Color)
				}
			default:
				ctx.Idle()
			}
			ctx.IdleFor(stride - 1 - st.Off)
		}
	}
}

// colorOf finalizes the color k·φ + i from the within-cluster index and the
// cluster color.
func colorOf(r *Result, pl *core.Plan) {
	phi := pl.Cfg.PhiMax
	cc := r.ClusterColor % phi
	if cc < 0 {
		cc = 0
	}
	r.Color = r.Index*phi + cc
}

// Validate checks a coloring against the communication graph: it returns
// the number of conflicting edges (neighbors sharing a color), the number
// of uncolored nodes, and the palette size (distinct colors).
func Validate(pos []geo.Point, radius float64, res []Result) (conflicts, uncolored, palette int) {
	g := graph.Build(pos, radius)
	seen := map[int]bool{}
	for i, r := range res {
		if r.Color < 0 {
			uncolored++
			continue
		}
		seen[r.Color] = true
		for _, j := range g.Neighbors(i) {
			if int(j) > i && res[j].Color == r.Color {
				conflicts++
			}
		}
	}
	return conflicts, uncolored, len(seen)
}
