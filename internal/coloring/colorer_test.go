package coloring

import (
	"context"
	"math"
	"testing"

	"mcnet/internal/fault"
	"mcnet/internal/geo"
	"mcnet/internal/graph"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

func TestByNameRegistry(t *testing.T) {
	for _, name := range Names() {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, b.Name())
		}
	}
	if b, err := ByName(""); err != nil || b.Name() != "sec7" {
		t.Errorf("ByName(\"\") = %v, %v; want the sec7 default", b, err)
	}
	if _, err := ByName("rainbow"); err == nil {
		t.Error("ByName(\"rainbow\") succeeded, want error")
	}
}

// backendCase is one deployment of the cross-backend correctness suite.
type backendCase struct {
	name string
	f    int
	pos  []geo.Point
}

// backendCases spans the topology families at mixed channel counts: a dense
// single-cluster crowd, a bounded-degree uniform field, a perturbed grid, a
// line and a ring.
func backendCases() []backendCase {
	g := model.Default(4, 64) // geometry only: R_ε and r_c are channel-independent
	ringN := 24
	ringSpacing := 0.7 * g.REps()
	return []backendCase{
		{"crowd40_f4", 4, topology.Crowd(topology.LayoutRand(11), 40, g.ClusterRadius())},
		{"uniform64_f4", 4, topology.UniformDegree(topology.LayoutRand(3), 64, g.REps(), 12)},
		{"grid49_f2", 2, topology.PerturbedGrid(topology.LayoutRand(5), 49, 0.5*g.REps(), 0.1*g.REps())},
		{"line32_f4", 4, topology.Line(32, 0.7*g.REps())},
		{"ring24_f2", 2, topology.Ring(ringN, float64(ringN)*ringSpacing/(2*math.Pi))},
	}
}

// runBackend executes one backend over a deployment with n̂ = n (the
// substrate's collision-free regime, matching the facade default).
func runBackend(t *testing.T, b Colorer, tc backendCase, seed uint64) ([]Result, Stats, model.Params) {
	t.Helper()
	p := model.Default(tc.f, len(tc.pos))
	e := sim.NewEngine(phy.NewField(p, tc.pos), seed)
	res, st, err := b.Color(context.Background(), e, nil)
	if err != nil {
		t.Fatalf("%s/seed %d: %v", tc.name, seed, err)
	}
	return res, st, p
}

// TestDPlus1ProperAcrossSuite checks the degree+1 backend on every topology
// family at several seeds: proper, complete, and every node's color within
// its private degree+1 palette.
func TestDPlus1ProperAcrossSuite(t *testing.T) {
	for _, tc := range backendCases() {
		for _, seed := range []uint64{1, 2, 3} {
			res, st, p := runBackend(t, DPlus1{}, tc, seed)
			conflicts, uncolored, palette := Validate(tc.pos, p.REps(), res)
			if conflicts != 0 || uncolored != 0 {
				t.Errorf("%s/seed %d: %d conflicts, %d uncolored", tc.name, seed, conflicts, uncolored)
			}
			g := graph.Build(tc.pos, p.REps())
			maxColor := -1
			for i, r := range res {
				if r.Color > g.Degree(i) {
					t.Errorf("%s/seed %d: node %d color %d exceeds its degree+1 palette (deg %d)",
						tc.name, seed, i, r.Color, g.Degree(i))
				}
				if r.Index != r.Color || r.ClusterColor != -1 {
					t.Errorf("%s/seed %d: node %d decomposition (%d, %d), want (%d, -1)",
						tc.name, seed, i, r.Index, r.ClusterColor, r.Color)
				}
				if r.Color > maxColor {
					maxColor = r.Color
				}
			}
			if st.Palette != palette {
				t.Errorf("%s/seed %d: Stats.Palette %d, Validate palette %d", tc.name, seed, st.Palette, palette)
			}
			if st.Cycle != maxColor+1 {
				t.Errorf("%s/seed %d: Cycle %d, want maxColor+1 = %d", tc.name, seed, st.Cycle, maxColor+1)
			}
			if st.Rounds < 2 || st.ColorSlots <= 0 {
				t.Errorf("%s/seed %d: implausible stats %+v", tc.name, seed, st)
			}
		}
	}
}

// TestHSBProperAcrossSuite checks the hypergraph-symmetry-breaking backend:
// proper, complete, leaders an independent set on color 0, colors read as
// F-packed (slot, channel) pairs.
func TestHSBProperAcrossSuite(t *testing.T) {
	for _, tc := range backendCases() {
		for _, seed := range []uint64{1, 2, 3} {
			res, st, p := runBackend(t, HSB{}, tc, seed)
			conflicts, uncolored, _ := Validate(tc.pos, p.REps(), res)
			if conflicts != 0 || uncolored != 0 {
				t.Errorf("%s/seed %d: %d conflicts, %d uncolored", tc.name, seed, conflicts, uncolored)
			}
			g := graph.Build(tc.pos, p.REps())
			leaders := 0
			maxColor := -1
			for i, r := range res {
				if r.IsDominator {
					leaders++
					if r.Color != 0 {
						t.Errorf("%s/seed %d: leader %d has color %d, want 0", tc.name, seed, i, r.Color)
					}
					for _, nb := range g.Neighbors(i) {
						if res[nb].IsDominator {
							t.Errorf("%s/seed %d: adjacent leaders %d and %d", tc.name, seed, i, nb)
						}
					}
				}
				if r.Color >= 0 {
					if r.Index != r.Color/p.Channels || r.ClusterColor != r.Color%p.Channels {
						t.Errorf("%s/seed %d: node %d pair (%d, %d) for color %d at F=%d",
							tc.name, seed, i, r.Index, r.ClusterColor, r.Color, p.Channels)
					}
					if r.Color > maxColor {
						maxColor = r.Color
					}
				}
			}
			if leaders == 0 {
				t.Errorf("%s/seed %d: no MIS leaders elected", tc.name, seed)
			}
			if st.Cycle != maxColor/p.Channels+1 {
				t.Errorf("%s/seed %d: Cycle %d, want maxColor/F+1 = %d", tc.name, seed, st.Cycle, maxColor/p.Channels+1)
			}
		}
	}
}

// TestHSBCycleBeatsSingleChannel pins the backend's reason to exist: on a
// dense deployment with F > 1 channels, packing F colors per slot must give
// a strictly shorter TDMA cycle than the same run's palette needs on one
// channel.
func TestHSBCycleBeatsSingleChannel(t *testing.T) {
	tc := backendCases()[0] // dense crowd, F=4
	res, st, _ := runBackend(t, HSB{}, tc, 7)
	maxColor := -1
	for _, r := range res {
		if r.Color > maxColor {
			maxColor = r.Color
		}
	}
	if maxColor < 1 {
		t.Fatalf("degenerate run: max color %d", maxColor)
	}
	if st.Cycle >= maxColor+1 {
		t.Errorf("Cycle %d not shorter than the single-channel %d", st.Cycle, maxColor+1)
	}
}

// TestBackendsUnderFaultInjection runs both new backends with the engine's
// fault layer attached at zero intensity: the slot machinery must compose
// (the refactor's point) and the transcript must match the fault-free run.
func TestBackendsUnderFaultInjection(t *testing.T) {
	tc := backendCases()[2] // grid, F=2
	for _, b := range []Colorer{DPlus1{}, HSB{}} {
		plain, _, p := runBackend(t, b, tc, 5)
		e := sim.NewEngine(phy.NewField(p, tc.pos), 5)
		e.Faults = fault.NewInjector(fault.Spec{}, 5, len(tc.pos), p.Channels, 0)
		faulted, _, err := b.Color(context.Background(), e, nil)
		if err != nil {
			t.Fatalf("%s under fault layer: %v", b.Name(), err)
		}
		for i := range plain {
			if plain[i] != faulted[i] {
				t.Errorf("%s: node %d differs under zero-intensity faults: %+v vs %+v",
					b.Name(), i, plain[i], faulted[i])
				break
			}
		}
	}
}
