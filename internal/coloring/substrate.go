// TDMA substrate shared by the dplus1 and hsb backends.
//
// Both algorithms need a reliable local-broadcast primitive — every node
// periodically tells its communication-graph neighborhood something — which
// the paper's Sec. 7 procedures obtain from the aggregation structure. The
// alternative backends skip structure construction and instead schedule
// announcements by node ID: time is divided into sweeps of n̂ slots, node v
// transmits in sweep slot v mod n̂ on channel (v mod n̂) mod F, and every
// other node listens on that slot's channel. With n̂ ≥ n at most one node
// transmits per slot network-wide, so every in-range announcement decodes
// (single-transmitter SINR is noise-limited inside R_T) and each sweep is a
// deterministic full neighborhood exchange in n̂ slots — the information-
// theoretic Δ lower bound for local broadcast up to the n̂/Δ slack.
//
// All nodes execute whole sweeps, so they stay slot-aligned without any
// shared state: a node in sweep k is at global slot k·n̂ + s regardless of
// which protocol phase it is in, and nodes in different phases simply ignore
// each other's message types until they catch up. When n̂ < n (a deliberately
// lying NEstimate), announcement slots collide and the backends degrade to
// best-effort — the same contract the Sec. 7 procedures have.
package coloring

import (
	"math/bits"
	"sort"

	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// hello is the discovery-sweep announcement.
type hello struct {
	From int
}

// trialMsg is one node's per-epoch coloring announcement: a tentative
// candidate (Final false, with the epoch's symmetry-breaking rank) or a
// committed color (Final true).
type trialMsg struct {
	From  int
	Rank  uint64
	Color int
	Final bool
}

// misMsg is one node's per-epoch maximal-independent-set announcement for
// the hsb backend's symmetry-breaking phase.
type misMsg struct {
	From  int
	Rank  uint64
	State uint8 // misUndecided, misLeader or misCovered
}

const (
	misUndecided uint8 = iota
	misLeader
	misCovered
)

// sweepLen is the TDMA sweep length: the node-ID size estimate, the only
// global quantity nodes are allowed to know.
func sweepLen(p model.Params) int {
	c := p.NEstimate
	if c < 2 {
		c = 2
	}
	return c
}

// trialEpochCap bounds a node's trial epochs: logarithmic in n̂ for the
// expected O(log n) convergence of rank-based trials, plus the node's
// degree to cover the deterministic at-least-one-commit-per-epoch worst
// case among palette-starved neighborhoods.
func trialEpochCap(p model.Params, deg int) int {
	return 24 + 8*bits.Len(uint(sweepLen(p))) + deg
}

// discoverNeighbors runs one full TDMA sweep in which every node announces
// its ID, and returns the sorted IDs heard from within the communication
// radius R_ε. With n̂ ≥ n the sweep is collision-free, so the result equals
// the node's exact communication-graph neighborhood.
func discoverNeighbors(ctx *sim.Ctx, p model.Params, cycle int) []int {
	id := ctx.ID()
	rEps := p.REps()
	seen := make(map[int]bool)
	var nbs []int
	for s := 0; s < cycle; s++ {
		ch := s % p.Channels
		if s == id%cycle {
			ctx.Transmit(ch, hello{From: id})
			continue
		}
		rec := ctx.Listen(ch)
		if !rec.Decoded {
			continue
		}
		if m, ok := rec.Msg.(hello); ok && phy.SenderWithin(rec, p, rEps) && !seen[m.From] {
			seen[m.From] = true
			nbs = append(nbs, m.From)
		}
	}
	sort.Ints(nbs)
	return nbs
}

// announceSweep runs one TDMA sweep: the node transmits msg in its own slot
// and listens everywhere else, invoking handle for every decoded message
// from within the communication radius. Exactly cycle slots are consumed,
// keeping all nodes sweep-aligned.
func announceSweep(ctx *sim.Ctx, p model.Params, cycle int, msg any, handle func(rec phy.Reception)) {
	id := ctx.ID()
	rEps := p.REps()
	for s := 0; s < cycle; s++ {
		ch := s % p.Channels
		if s == id%cycle {
			ctx.Transmit(ch, msg)
			continue
		}
		rec := ctx.Listen(ch)
		if rec.Decoded && phy.SenderWithin(rec, p, rEps) {
			handle(rec)
		}
	}
}

// pickFree draws a uniformly random color from {0..deg} minus the colors
// already committed by neighbors. At most deg of the deg+1 palette colors
// can be taken, so the free set is never empty — the degree+1 list-coloring
// invariant.
func pickFree(ctx *sim.Ctx, deg int, taken map[int]bool) int {
	free := make([]int, 0, deg+1)
	for c := 0; c <= deg; c++ {
		if !taken[c] {
			free = append(free, c)
		}
	}
	return free[ctx.Rand.Intn(len(free))]
}

// allMarked reports whether every listed neighbor is marked in m.
func allMarked(nbs []int, m map[int]bool) bool {
	for _, v := range nbs {
		if !m[v] {
			return false
		}
	}
	return true
}
