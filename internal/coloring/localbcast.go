package coloring

import (
	"mcnet/internal/sim"
)

// LocalMsg is a local-broadcast payload tagged with its sender.
type LocalMsg struct {
	From    int
	Payload int64
}

// LocalBroadcastResult records what one node received during a TDMA cycle.
type LocalBroadcastResult struct {
	// Heard maps sender ID → payload for every message decoded.
	Heard map[int]int64
}

// LocalBroadcast runs the local broadcasting primitive on top of a
// coloring: every node must deliver its payload to all of its
// communication-graph neighbors (the problem of [33] / local information
// exchange of [37], which the paper's structure solves as a corollary of
// Theorem 24). The colors act as a TDMA schedule — in slot t of the cycle,
// exactly the nodes with color t transmit — so with a proper coloring every
// neighbor link is served collision-free within one cycle of
// maxColor+1 = O(Δ) slots.
//
// Uncolored nodes (Color < 0) never transmit but still listen.
func LocalBroadcast(e *sim.Engine, colors []Result, payloads []int64) ([]LocalBroadcastResult, error) {
	n := e.Field().N()
	cycle := 0
	for _, c := range colors {
		if c.Color+1 > cycle {
			cycle = c.Color + 1
		}
	}
	out := make([]LocalBroadcastResult, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			heard := map[int]int64{}
			for slot := 0; slot < cycle; slot++ {
				if colors[i].Color == slot {
					ctx.Transmit(0, LocalMsg{From: i, Payload: payloads[i]})
					continue
				}
				rec := ctx.Listen(0)
				if m, ok := rec.Msg.(LocalMsg); ok {
					heard[m.From] = m.Payload
				}
			}
			out[i] = LocalBroadcastResult{Heard: heard}
		}
	}
	if _, err := e.Run(progs); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateLocalBroadcast counts neighbor links (directed) that were and were
// not served: for each edge (u, v) of the radius graph, v should have heard
// u's payload.
func ValidateLocalBroadcast(e *sim.Engine, radius float64, payloads []int64, out []LocalBroadcastResult) (served, missed int) {
	pos := e.Field().Positions()
	for u := range pos {
		for v := range pos {
			if u == v || pos[u].Dist(pos[v]) > radius {
				continue
			}
			if got, ok := out[v].Heard[u]; ok && got == payloads[u] {
				served++
			} else {
				missed++
			}
		}
	}
	return served, missed
}
