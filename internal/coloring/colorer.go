package coloring

import (
	"context"
	"fmt"

	"mcnet/internal/core"
	"mcnet/internal/sim"
)

// Stats summarizes one coloring run in backend-comparable terms. Palette and
// Cycle share units across backends; Rounds is backend-native (see each
// backend's documentation) — cross-backend latency comparisons should use
// the engine's total slot count instead.
type Stats struct {
	// Palette is the number of distinct colors assigned.
	Palette int
	// Rounds is the backend's rounds-to-stabilize measure: sec7 reports
	// slots from the end of structure construction to the last colored
	// node (the Theorem 24 quantity); dplus1 and hsb report TDMA sweep
	// epochs including the discovery sweep.
	Rounds int
	// Cycle is the length of the TDMA cycle the coloring induces: max
	// color + 1 for single-channel schedules (sec7, dplus1), max slot + 1
	// for the multi-channel assignment of hsb, where F colors share each
	// slot on distinct channels.
	Cycle int
	// ColorSlots is when the last node learned its color, in slots past
	// the backend's setup phase (structure construction for sec7, the
	// discovery sweep for dplus1/hsb); 0 if no node was colored.
	ColorSlots int
}

// Colorer is a pluggable coloring backend: it runs node programs on the
// engine's slot machinery and returns per-node colors. Every backend
// inherits determinism (per-node ctx.Rand streams) and fault injection
// (engine-attached injectors) from the simulator, exactly like the
// aggregation pipeline.
type Colorer interface {
	// Name is the backend's registry name (spec field, CLI flag).
	Name() string
	// Color executes the backend on the engine. The plan carries the
	// derived sizing (Δ̂, φ, stage offsets); backends that do not build the
	// paper's structure may ignore it.
	Color(ctx context.Context, e *sim.Engine, pl *core.Plan) ([]Result, Stats, error)
}

// Names lists the registered backend names, default first.
func Names() []string { return []string{"sec7", "dplus1", "hsb"} }

// ByName resolves a backend name; the empty string means the default sec7.
func ByName(name string) (Colorer, error) {
	switch name {
	case "", "sec7":
		return Sec7{}, nil
	case "dplus1":
		return DPlus1{}, nil
	case "hsb":
		return HSB{}, nil
	default:
		return nil, fmt.Errorf("unknown coloring backend %q (valid: sec7, dplus1, hsb)", name)
	}
}

// Sec7 is the paper's Sec. 7 algorithm as a backend: structure construction
// followed by the four index-distribution procedures, colors k·φ + i. It is
// the default and reproduces the pre-interface transcripts bit-identically.
type Sec7 struct {
	// Cfg parameterizes procedure 4; the zero value means DefaultConfig.
	Cfg Config
}

// Name implements Colorer.
func (Sec7) Name() string { return "sec7" }

// Color implements Colorer by running the original procedures unchanged.
func (b Sec7) Color(ctx context.Context, e *sim.Engine, pl *core.Plan) ([]Result, Stats, error) {
	cfg := b.Cfg
	if cfg.AssignCycles == 0 && cfg.AssignSlackFactor == 0 {
		cfg = DefaultConfig()
	}
	res, err := RunContext(ctx, e, pl, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	st := summarize(res, 1)
	st.ColorSlots = lastColoredPast(e, pl.Offsets.Followers)
	st.Rounds = st.ColorSlots
	return res, st, nil
}

// summarize computes the palette and cycle of a finished coloring:
// slotsPerColor = 1 treats colors as TDMA slots directly; F > 1 packs F
// consecutive colors into one slot on distinct channels (the hsb layout).
func summarize(res []Result, colorsPerSlot int) Stats {
	var st Stats
	seen := make(map[int]struct{})
	maxColor := -1
	for _, r := range res {
		if r.Color < 0 {
			continue
		}
		seen[r.Color] = struct{}{}
		if r.Color > maxColor {
			maxColor = r.Color
		}
	}
	st.Palette = len(seen)
	if maxColor >= 0 {
		st.Cycle = maxColor/colorsPerSlot + 1
	}
	return st
}

// lastColoredPast returns the slot of the last EventColored emission
// measured from base, or 0 if none fired.
func lastColoredPast(e *sim.Engine, base int) int {
	last := 0
	for _, ev := range e.Events() {
		if ev.Name == EventColored && ev.Slot > last {
			last = ev.Slot
		}
	}
	if last == 0 {
		return 0
	}
	return last - base
}
