package coloring

import (
	"math/rand"
	"testing"

	"mcnet/internal/core"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

func runColoring(t *testing.T, pos []geo.Point, p model.Params, ccfg core.Config, seed uint64) ([]Result, *core.Plan) {
	t.Helper()
	pl := core.NewPlan(p, ccfg)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	res, err := Run(e, pl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res, pl
}

func TestSingleClusterProperColoring(t *testing.T) {
	// Dense single cluster: all nodes mutually adjacent in G, so all colors
	// must be distinct.
	const n = 36
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n
	res, _ := runColoring(t, pos, p, cfg, 5)
	conflicts, uncolored, palette := Validate(pos, p.REps(), res)
	if conflicts != 0 {
		t.Errorf("%d color conflicts", conflicts)
	}
	if uncolored != 0 {
		t.Errorf("%d uncolored nodes", uncolored)
	}
	if palette > 0 && palette != n {
		// All-mutually-adjacent: palette must equal n when everyone is
		// colored.
		t.Errorf("palette = %d, want %d", palette, n)
	}
}

func TestPaletteLinearInDelta(t *testing.T) {
	// The paper claims O(Δ) colors: the largest color index should be
	// O(cluster size · φ).
	const n = 30
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(3))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n
	res, pl := runColoring(t, pos, p, cfg, 7)
	maxColor := 0
	for _, r := range res {
		if r.Color > maxColor {
			maxColor = r.Color
		}
	}
	bound := (n + 2) * pl.Cfg.PhiMax
	if maxColor > bound {
		t.Errorf("max color %d exceeds O(Δ·φ) bound %d", maxColor, bound)
	}
}

func TestSparseFieldColoring(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse coloring integration is slow")
	}
	const n = 70
	p := model.Default(4, 128)
	rnd := rand.New(rand.NewSource(9))
	pos := topology.UniformDegree(rnd, n, p.REps(), 12)
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = 32
	cfg.PhiMax = 24
	cfg.HopBound = 12
	res, _ := runColoring(t, pos, p, cfg, 11)
	conflicts, uncolored, _ := Validate(pos, p.REps(), res)
	if conflicts != 0 {
		t.Errorf("%d conflicts on sparse field", conflicts)
	}
	if uncolored > n/20 {
		t.Errorf("%d/%d uncolored", uncolored, n)
	}
}

func TestValidateCounts(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 0.1}, {X: 5}}
	res := []Result{{Color: 3}, {Color: 3}, {Color: -1}}
	conflicts, uncolored, palette := Validate(pos, 1, res)
	if conflicts != 1 || uncolored != 1 || palette != 1 {
		t.Errorf("got (%d, %d, %d), want (1, 1, 1)", conflicts, uncolored, palette)
	}
}

func TestValidateAllUncolored(t *testing.T) {
	// Every node uncolored: no conflicts can exist and the palette is empty.
	pos := []geo.Point{{X: 0}, {X: 0.1}, {X: 0.2}}
	res := []Result{{Color: -1}, {Color: -1}, {Color: -1}}
	conflicts, uncolored, palette := Validate(pos, 1, res)
	if conflicts != 0 || uncolored != 3 || palette != 0 {
		t.Errorf("got (%d, %d, %d), want (0, 3, 0)", conflicts, uncolored, palette)
	}
}

func TestValidateBoundaryRadius(t *testing.T) {
	// A shared color counts as a conflict exactly when the pair is within
	// the radius: at distance 1.0 it conflicts (edges are ≤ radius), just
	// past it does not.
	res := []Result{{Color: 2}, {Color: 2}}
	at := func(d float64) int {
		conflicts, _, _ := Validate([]geo.Point{{X: 0}, {X: d}}, 1, res)
		return conflicts
	}
	if got := at(1.0); got != 1 {
		t.Errorf("distance 1.0: %d conflicts, want 1", got)
	}
	if got := at(1.0 + 1e-9); got != 0 {
		t.Errorf("distance just past radius: %d conflicts, want 0", got)
	}
}

func TestValidatePaletteWithGaps(t *testing.T) {
	// Palette counts distinct colors in use, not max+1: gaps and repeats
	// must not inflate it.
	pos := []geo.Point{{X: 0}, {X: 3}, {X: 6}, {X: 9}}
	res := []Result{{Color: 0}, {Color: 7}, {Color: 100}, {Color: 7}}
	conflicts, uncolored, palette := Validate(pos, 1, res)
	if conflicts != 0 || uncolored != 0 || palette != 3 {
		t.Errorf("got (%d, %d, %d), want (0, 0, 3)", conflicts, uncolored, palette)
	}
}

func TestColorOfClampsNegativeClusterColor(t *testing.T) {
	// A node that never learned its cluster color (ClusterColor -1, e.g.
	// structure construction failed for it) must still map to a valid
	// non-negative color rather than an off-palette negative one.
	p := model.Default(2, 16)
	cfg := core.DefaultConfig(p)
	cfg.PhiMax = 5
	pl := core.NewPlan(p, cfg)
	r := Result{Index: 3, ClusterColor: -1}
	colorOf(&r, pl)
	if r.Color != 3*5 {
		t.Errorf("Color = %d, want Index·φ = %d", r.Color, 3*5)
	}
	r = Result{Index: 2, ClusterColor: 7} // wraps mod φ
	colorOf(&r, pl)
	if r.Color != 2*5+2 {
		t.Errorf("Color = %d, want %d", r.Color, 2*5+2)
	}
}

func TestDominatorIndexPastTotal(t *testing.T) {
	// In any cluster, the dominator's index must not collide with member
	// indices (it takes one past the total).
	const n = 20
	p := model.Default(2, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(13))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{X: rnd.Float64() * rc / 2, Y: rnd.Float64() * rc / 2}
	}
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n
	res, _ := runColoring(t, pos, p, cfg, 17)
	for i, r := range res {
		if !r.IsDominator || r.Index < 0 {
			continue
		}
		for j, q := range res {
			if j != i && q.Index == r.Index && q.ClusterColor == r.ClusterColor && q.Color >= 0 {
				t.Errorf("dominator %d shares index %d with node %d", i, r.Index, j)
			}
		}
	}
}

func TestLocalBroadcastServesAllLinks(t *testing.T) {
	// Color a dense cluster, then run one TDMA cycle of local broadcast:
	// every directed neighbor link must be served.
	const n = 30
	p := model.Default(4, 64)
	rc := p.ClusterRadius()
	rnd := rand.New(rand.NewSource(31))
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (rnd.Float64()*2 - 1) * rc / 2,
			Y: (rnd.Float64()*2 - 1) * rc / 2,
		}
	}
	cfg := core.DefaultConfig(p)
	cfg.DeltaHat = n
	cfg.PhiMax = 4
	cfg.HopBound = 2
	res, _ := runColoring(t, pos, p, cfg, 33)
	if c, u, _ := Validate(pos, p.REps(), res); c != 0 || u != 0 {
		t.Fatalf("coloring setup failed: %d conflicts, %d uncolored", c, u)
	}

	payloads := make([]int64, n)
	for i := range payloads {
		payloads[i] = int64(i*i + 7)
	}
	e := sim.NewEngine(phy.NewField(model.Default(1, n), pos), 35)
	out, err := LocalBroadcast(e, res, payloads)
	if err != nil {
		t.Fatal(err)
	}
	served, missed := ValidateLocalBroadcast(e, p.REps(), payloads, out)
	if missed != 0 {
		t.Errorf("%d/%d directed links missed", missed, served+missed)
	}
	if served == 0 {
		t.Error("no links served: broadcast inert")
	}
}

func TestLocalBroadcastUncoloredListensOnly(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 0.1}}
	p := model.Default(1, 64)
	res := []Result{{Color: 0}, {Color: -1}}
	e := sim.NewEngine(phy.NewField(p, pos), 1)
	out, err := LocalBroadcast(e, res, []int64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := out[1].Heard[0]; !ok || got != 5 {
		t.Errorf("uncolored node should still hear: %v", out[1].Heard)
	}
	if len(out[0].Heard) != 0 {
		t.Errorf("node 0 heard %v while node 1 never transmits", out[0].Heard)
	}
}
