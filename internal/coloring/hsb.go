package coloring

import (
	"context"
	"math/bits"

	"mcnet/internal/core"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// HSB is a hypergraph-symmetry-breaking backend after Kutten–Nanongkai–
// Pandurangan–Robinson (arXiv:1405.1649): it first breaks symmetry by
// electing a maximal independent set with per-epoch random ranks (Luby
// style), then hands out multi-channel TDMA pairs. MIS leaders — pairwise
// non-adjacent by construction — all commit color 0 simultaneously; covered
// nodes fill the remaining palette with the same rank-based trials dplus1
// uses. Color j is read as the pair (slot j/F, channel j mod F), so F colors
// share every TDMA slot on distinct channels and the induced cycle is about
// (Δ+1)/F — the backend that actually spends the F channels the paper's
// model provides, where sec7 and dplus1 schedule one color per slot.
//
// Result fields are overloaded to the pair view: Index is the slot j/F,
// ClusterColor the channel j mod F, and IsDominator marks MIS leaders.
type HSB struct {
	// MaxEpochs caps the member trial loop; 0 derives the bound from n̂ and
	// the node degree (see trialEpochCap).
	MaxEpochs int
}

// Name implements Colorer.
func (HSB) Name() string { return "hsb" }

// Color implements Colorer. The plan is unused: symmetry is broken by the
// MIS, not by the paper's structure.
func (b HSB) Color(goctx context.Context, e *sim.Engine, _ *core.Plan) ([]Result, Stats, error) {
	n := e.Field().N()
	res := make([]Result, n)
	epochs := make([]int, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = b.program(i, res, epochs)
	}
	if _, err := e.RunContext(goctx, progs); err != nil {
		return nil, Stats{}, err
	}
	p := e.Field().Params()
	st := summarize(res, p.Channels)
	st.Rounds = 1 + maxOf(epochs) // discovery plus MIS plus trials at the slowest node
	st.ColorSlots = lastColoredPast(e, sweepLen(p))
	return res, st, nil
}

// misEpochCap bounds the MIS phase: rank-based elimination halves the
// undecided edge count per epoch in expectation, so logarithmic in n̂ with
// generous constants. Undecided survivors fall back to covered and color as
// ordinary members.
func misEpochCap(p model.Params) int {
	return 16 + 6*bits.Len(uint(sweepLen(p)))
}

func (b HSB) program(i int, res []Result, epochs []int) sim.Program {
	return func(ctx *sim.Ctx) {
		r := &res[i]
		r.Color, r.Index, r.ClusterColor = -1, -1, -1
		p := ctx.Params()
		cycle := sweepLen(p)
		nbs := discoverNeighbors(ctx, p, cycle)
		deg := len(nbs)

		// Phase 1: elect an MIS. Per epoch every undecided node draws a rank
		// and joins if it holds the neighborhood minimum; hearing a leader
		// covers a node. Announcements carry the state as of the epoch start,
		// so a node leaves only after a full sweep has advertised its
		// decision and every neighbor's decision has been heard.
		state := misUndecided
		decided := make(map[int]bool, deg)
		misEpochs := 0
		for epoch := 1; epoch <= misEpochCap(p); epoch++ {
			misEpochs = epoch
			announced := state
			var rank uint64
			if state == misUndecided {
				rank = ctx.Rand.Uint64()
			}
			localMin := true
			sawLeader := false
			announceSweep(ctx, p, cycle, misMsg{From: ctx.ID(), Rank: rank, State: announced},
				func(rec phy.Reception) {
					m, ok := rec.Msg.(misMsg)
					if !ok {
						return
					}
					switch m.State {
					case misLeader:
						decided[m.From] = true
						sawLeader = true
					case misCovered:
						decided[m.From] = true
					default:
						if m.Rank < rank || (m.Rank == rank && m.From < ctx.ID()) {
							localMin = false
						}
					}
				})
			if state == misUndecided {
				switch {
				case sawLeader:
					state = misCovered
				case localMin:
					state = misLeader
				}
			}
			if announced != misUndecided && allMarked(nbs, decided) {
				break
			}
		}
		if state == misUndecided {
			state = misCovered // cap fallback: color as an ordinary member
		}

		// Phase 2: leaders commit color 0 — pairwise non-adjacent, so no
		// conflict — and everyone runs the trial protocol, leaders only to
		// advertise their commitment until the neighborhood settles.
		if state == misLeader {
			r.Color = 0
			r.IsDominator = true
			ctx.Emit(EventColored, 0)
		}
		maxEpochs := b.MaxEpochs
		if maxEpochs <= 0 {
			maxEpochs = trialEpochCap(p, deg)
		}
		taken := make(map[int]bool, deg)
		finals := make(map[int]bool, deg)
		trials := runTrials(ctx, p, cycle, nbs, r, taken, finals, maxEpochs)
		epochs[i] = 1 + misEpochs + trials

		// Read the color as its multi-channel TDMA pair.
		if r.Color >= 0 {
			r.Index = r.Color / p.Channels
			r.ClusterColor = r.Color % p.Channels
		}
	}
}
