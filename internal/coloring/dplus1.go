package coloring

import (
	"context"

	"mcnet/internal/core"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// DPlus1 is a degree+1 list-coloring backend in the style of
// Flin–Halldórsson–Nolin (arXiv:2408.11041): every node colors itself from
// its private palette {0..deg(v)} via randomized palette trials, entirely
// without the paper's aggregation structure. One discovery sweep learns the
// exact neighborhood; then, per epoch, every uncolored node draws a fresh
// random rank and a uniformly random free color, announces the trial over
// the TDMA substrate, and commits unless a neighbor with a smaller rank
// trialed the same color or a neighbor had already committed it. Commits
// are announced as Final in later epochs, shrinking the neighbors' lists.
//
// Two adjacent nodes trialing one color always hear each other on the
// collision-free substrate and the smaller (rank, ID) pair wins, so the
// produced coloring is proper by construction; random ranks give the usual
// O(log n) expected epochs. The palette never exceeds Δ+1 — compared to the
// sec7 palette of index·φ + clusterColor values this cuts the induced TDMA
// cycle roughly by the factor φ.
type DPlus1 struct {
	// MaxEpochs caps the trial loop; 0 derives a generous bound from n̂ and
	// the node degree (see trialEpochCap).
	MaxEpochs int
}

// Name implements Colorer.
func (DPlus1) Name() string { return "dplus1" }

// Color implements Colorer. The plan is unused: this backend needs no
// structure construction.
func (b DPlus1) Color(goctx context.Context, e *sim.Engine, _ *core.Plan) ([]Result, Stats, error) {
	n := e.Field().N()
	res := make([]Result, n)
	epochs := make([]int, n)
	progs := make([]sim.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = b.program(i, res, epochs)
	}
	if _, err := e.RunContext(goctx, progs); err != nil {
		return nil, Stats{}, err
	}
	st := summarize(res, 1)
	st.Rounds = 1 + maxOf(epochs) // the discovery sweep plus the slowest node's trials
	st.ColorSlots = lastColoredPast(e, sweepLen(e.Field().Params()))
	return res, st, nil
}

func (b DPlus1) program(i int, res []Result, epochs []int) sim.Program {
	return func(ctx *sim.Ctx) {
		r := &res[i]
		r.Color, r.Index, r.ClusterColor = -1, -1, -1
		p := ctx.Params()
		cycle := sweepLen(p)
		nbs := discoverNeighbors(ctx, p, cycle)
		maxEpochs := b.MaxEpochs
		if maxEpochs <= 0 {
			maxEpochs = trialEpochCap(p, len(nbs))
		}
		taken := make(map[int]bool, len(nbs))
		finals := make(map[int]bool, len(nbs))
		epochs[i] = runTrials(ctx, p, cycle, nbs, r, taken, finals, maxEpochs)
		r.Index = r.Color
	}
}

// runTrials executes rank-based palette trial epochs until the node has
// committed a color and heard a commitment from every neighbor — the point
// at which leaving the air cannot strand anyone — or until the epoch cap.
// r.Color may arrive pre-committed (the hsb leaders); taken accumulates the
// colors neighbors have committed, finals the neighbors that committed.
// Returns the number of epochs executed.
func runTrials(ctx *sim.Ctx, p model.Params, cycle int, nbs []int, r *Result, taken, finals map[int]bool, maxEpochs int) int {
	deg := len(nbs)
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		// The epoch announces the node's state as of the epoch start: a
		// commitment only counts as heard once a full sweep carried it, so
		// the exit below never strands a neighbor still waiting for it.
		wasFinal := r.Color >= 0
		candidate := r.Color
		var rank uint64
		if !wasFinal {
			candidate = pickFree(ctx, deg, taken)
			rank = ctx.Rand.Uint64()
		}
		lost := false
		announceSweep(ctx, p, cycle,
			trialMsg{From: ctx.ID(), Rank: rank, Color: candidate, Final: wasFinal},
			func(rec phy.Reception) {
				m, ok := rec.Msg.(trialMsg)
				if !ok {
					return // a neighbor still in another protocol phase
				}
				if m.Final {
					finals[m.From] = true
					taken[m.Color] = true
					if !wasFinal && m.Color == candidate {
						lost = true
					}
					return
				}
				if !wasFinal && m.Color == candidate &&
					(m.Rank < rank || (m.Rank == rank && m.From < ctx.ID())) {
					lost = true
				}
			})
		if !wasFinal && !lost {
			r.Color = candidate
			ctx.Emit(EventColored, r.Color)
		}
		if wasFinal && allMarked(nbs, finals) {
			return epoch
		}
	}
	return maxEpochs
}

// maxOf returns the slice maximum (0 for an empty slice).
func maxOf(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
