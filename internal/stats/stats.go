// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses to report results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample.
type Summary struct {
	N                      int
	Min, Median, Mean, Max float64
}

// Summarize computes a Summary; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = total / float64(len(xs))
	s.Median = Median(xs)
	return s
}

// Median returns the sample median (average of middle pair for even n, 0
// for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}

// MedianInt is Median over ints, rounded to nearest.
func MedianInt(xs []int) int {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return int(math.Round(Median(fs)))
}

// Table is a titled grid of cells rendered as aligned ASCII or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed under the table.
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the aligned ASCII form.
func (t *Table) Render() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	var rule []string
	for _, w := range width {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns the comma-separated form (no notes, title as comment).
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// I formats an int cell.
func I(v int) string { return fmt.Sprintf("%d", v) }

// F formats a float cell with two decimals.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float cell with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }
