package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMedianProperty(t *testing.T) {
	// Property: median is between min and max and at least half the sample
	// lies on each side (within tie tolerance).
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return m >= sorted[0] && m <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestMedianInt(t *testing.T) {
	if got := MedianInt([]int{1, 2, 10}); got != 2 {
		t.Errorf("MedianInt = %d", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "x", "value")
	tb.AddRow("1", "10")
	tb.AddRow("22", "5")
	tb.AddNote("seeds=%d", 3)
	out := tb.Render()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "x   value") {
		t.Errorf("misaligned header:\n%s", out)
	}
	if !strings.Contains(out, "note: seeds=3") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2")
	got := tb.CSV()
	want := "# t\na,b\n1,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")
	out := tb.Render()
	if !strings.Contains(out, "1") {
		t.Error("short row dropped")
	}
}

func TestFormatters(t *testing.T) {
	if I(42) != "42" || F(1.234) != "1.23" || F1(1.26) != "1.3" {
		t.Error("formatter output unexpected")
	}
}
