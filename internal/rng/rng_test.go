package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := Stream(42, 7)
	b := Stream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, id) diverged at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := Stream(42, 1)
	b := Stream(42, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent streams collided %d/64 times", same)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Stream(1, 0)
	b := Stream(2, 0)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("different seeds produced identical output")
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix(0x1234, 0x5678)
	flipped := Mix(0x1234, 0x5679)
	diff := base ^ flipped
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Errorf("poor avalanche: %d differing bits", bits)
	}
}

func TestUniformity(t *testing.T) {
	// Crude chi-square-ish check: bucket 100k Float64 draws into 10 bins.
	r := New(99)
	const n = 100000
	var bins [10]int
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		bins[int(f*10)]++
	}
	for i, c := range bins {
		if math.Abs(float64(c)-n/10) > 600 {
			t.Errorf("bin %d count %d deviates from %d", i, c, n/10)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := &source{state: 123}
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative value")
		}
	}
}
