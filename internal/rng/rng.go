// Package rng provides deterministic, splittable random number streams.
//
// The simulator runs one goroutine per node; determinism must therefore not
// depend on goroutine scheduling. Each node draws from its own stream,
// derived from a run seed and the node ID via SplitMix64 mixing, so a run is
// reproducible from (seed, topology) alone.
package rng

import "math/rand"

// splitmix64 advances the state and returns the next output of the
// SplitMix64 generator (Steele, Lea, Flood 2014). It is used both to derive
// per-stream seeds and as the stream generator itself.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix combines two 64-bit values into a well-distributed seed.
func Mix(a, b uint64) uint64 {
	s := a
	_ = splitmix64(&s)
	s ^= b * 0xff51afd7ed558ccd
	return splitmix64(&s)
}

// source implements rand.Source64 over SplitMix64.
type source struct {
	state uint64
}

// Seed implements rand.Source.
func (s *source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *source) Uint64() uint64 { return splitmix64(&s.state) }

// Int63 implements rand.Source.
func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

// New returns a deterministic generator seeded with the given value.
func New(seed uint64) *rand.Rand {
	return rand.New(&source{state: seed})
}

// Stream returns the generator for stream id under the given run seed.
// Distinct (seed, id) pairs yield statistically independent streams.
func Stream(seed uint64, id int) *rand.Rand {
	return New(Mix(seed, uint64(id)+0x5851f42d4c957f2d))
}

// Streams returns the generators for stream ids 0..n-1 under seed —
// element i is identical in behavior to Stream(seed, i) — backed by flat
// arenas instead of 2n separate allocations, for engines that build one
// generator per node at crowd scale.
func Streams(seed uint64, n int) []*rand.Rand {
	srcs := make([]source, n)
	rands := make([]rand.Rand, n)
	out := make([]*rand.Rand, n)
	for i := range srcs {
		srcs[i].state = Mix(seed, uint64(i)+0x5851f42d4c957f2d)
		rands[i] = *rand.New(&srcs[i])
		out[i] = &rands[i]
	}
	return out
}
