package rng

import "testing"

func TestStreamsMatchesStream(t *testing.T) {
	rs := Streams(42, 8)
	for i, r := range rs {
		want := Stream(42, i)
		for k := 0; k < 16; k++ {
			if a, b := r.Uint64(), want.Uint64(); a != b {
				t.Fatalf("stream %d draw %d: %d != %d", i, k, a, b)
			}
		}
	}
}

func TestStreamsAllocs(t *testing.T) {
	n := 1024
	allocs := testing.AllocsPerRun(5, func() { _ = Streams(7, n) })
	if allocs > 8 {
		t.Errorf("Streams(%d) allocates %.0f times per run; want a handful of arena allocations", n, allocs)
	}
}
