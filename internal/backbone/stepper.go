package backbone

// Stepper-form ports of RunColor and RunTree (see internal/sim: Stepper,
// Frag). Each fragment mirrors its goroutine original's control flow — the
// order and conditions of ctx.Rand draws and the placement of post-Listen
// consumption code — so the two forms produce bit-identical transcripts.

import (
	"sort"

	"mcnet/internal/agg"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// ColorFrag is the sim.Frag form of RunColor. Out is valid once Feed
// returns true.
type ColorFrag struct {
	Cfg ColorConfig
	Out ColorOutcome

	init                    bool
	stage                   uint8 // 0 discover, 1 resolve
	s                       int
	discoverLen, resolveLen int
	neighbors               map[int]bool
	smaller, taken          map[int]bool
	awaitBeacon, awaitFinal bool
}

// Feed implements sim.Frag.
func (f *ColorFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.Out = ColorOutcome{Color: -1}
		f.neighbors = map[int]bool{}
		f.discoverLen = f.Cfg.discoverSlots(p)
		f.resolveLen = f.Cfg.resolveSlots(p)
	}
	if f.awaitBeacon {
		f.awaitBeacon = false
		rec := sc.Prev()
		if b, ok := rec.Msg.(Beacon); ok && phy.SenderWithin(rec, p, f.Cfg.Radius) {
			f.neighbors[b.From] = true
		}
	}
	if f.awaitFinal {
		f.awaitFinal = false
		rec := sc.Prev()
		if fin, ok := rec.Msg.(Final); ok && f.neighbors[fin.From] &&
			phy.SenderWithin(rec, p, f.Cfg.Radius) {
			f.taken[fin.Color] = true
			delete(f.smaller, fin.From)
		}
	}
	for {
		switch {
		case f.stage == 0 && f.s < f.discoverLen:
			f.s++
			if sc.Rand.Float64() < f.Cfg.BeaconProb {
				sc.Transmit(f.Cfg.Channel, Beacon{From: sc.ID()})
			} else {
				sc.Listen(f.Cfg.Channel)
				f.awaitBeacon = true
			}
			return false
		case f.stage == 0:
			// Discovery over: freeze the neighbor list, set up resolution.
			f.stage, f.s = 1, 0
			f.Out.Neighbors = make([]int, 0, len(f.neighbors))
			for id := range f.neighbors {
				f.Out.Neighbors = append(f.Out.Neighbors, id)
			}
			sort.Ints(f.Out.Neighbors)
			f.smaller, f.taken = map[int]bool{}, map[int]bool{}
			for _, id := range f.Out.Neighbors {
				if id < sc.ID() {
					f.smaller[id] = true
				}
			}
		case f.s < f.resolveLen:
			f.s++
			if f.Out.Color < 0 && len(f.smaller) == 0 {
				f.pickColor()
			}
			if f.Out.Color >= 0 && sc.Rand.Float64() < f.Cfg.AnnounceProb {
				sc.Transmit(f.Cfg.Channel, Final{From: sc.ID(), Color: f.Out.Color})
			} else {
				sc.Listen(f.Cfg.Channel)
				f.awaitFinal = true
			}
			return false
		default:
			if f.Out.Color < 0 {
				f.Out.Forced = true
				f.pickColor()
			}
			return true
		}
	}
}

func (f *ColorFrag) pickColor() {
	c := 0
	for f.taken[c] {
		c++
	}
	if c >= f.Cfg.PhiMax {
		f.Out.Overflowed = true
		c %= f.Cfg.PhiMax
	}
	f.Out.Color = c
}

// treeAwait tags which phase's listen the fragment's previous slot holds.
type treeAwait uint8

const (
	treeAwaitNone treeAwait = iota
	treeAwaitA
	treeAwaitB
	treeAwaitC
	treeAwaitD
)

// TreeFrag is the sim.Frag form of RunTree. Out is valid once Feed returns
// true. Color, Value and Op are the RunTree arguments.
type TreeFrag struct {
	Cfg   TreeConfig
	Color int
	Value int64
	Op    agg.Op
	Out   TreeOutcome

	init   bool
	phase  uint8 // 0 build, 1 children, 2 cast, 3 result, 4 done
	b, sub int
	await  treeAwait
	// Phase A
	parentPow float64
	// Phase B
	isRoot     bool
	childSet   map[int]bool
	ackQueue   []int
	childAcked bool
	// Phase C
	childVal map[int]int64
	upAcks   []int
	upAcked  bool
	sentVal  int64
	sentAny  bool
	emitted  bool
	// Phase D
	informed bool
}

func (f *TreeFrag) ownSlot(sub int) bool { return sub == f.Color%f.Cfg.PhiMax }

func (f *TreeFrag) recompute() int64 {
	v := f.Value
	for _, cv := range f.childVal {
		v = f.Op.Combine(v, cv)
	}
	return v
}

func (f *TreeFrag) ready() bool {
	for c := range f.childSet {
		if _, ok := f.childVal[c]; !ok {
			return false
		}
	}
	return true
}

// advance moves to the next (block, sub-slot) pair of the current phase.
func (f *TreeFrag) advance() {
	f.sub++
	if f.sub == f.Cfg.PhiMax {
		f.sub = 0
		f.b++
	}
}

// Feed implements sim.Frag.
func (f *TreeFrag) Feed(sc *sim.StepCtx) bool {
	p := sc.Params()
	if !f.init {
		f.init = true
		f.Out = TreeOutcome{Root: sc.ID(), Parent: -1}
	}
	switch f.await {
	case treeAwaitA:
		rec := sc.Prev()
		if st, ok := rec.Msg.(State); ok && phy.SenderWithin(rec, p, f.Cfg.Radius) {
			switch {
			case st.Root > f.Out.Root,
				st.Root == f.Out.Root && st.Hops+1 < f.Out.Depth,
				st.Root == f.Out.Root && f.Out.Parent >= 0 && st.Hops+1 == f.Out.Depth &&
					rec.SignalPower > f.parentPow:
				f.Out.Root = st.Root
				f.Out.Depth = st.Hops + 1
				f.Out.Parent = st.From
				f.parentPow = rec.SignalPower
			}
		}
	case treeAwaitB:
		rec := sc.Prev()
		switch m := rec.Msg.(type) {
		case Child:
			if m.Parent == sc.ID() {
				if !f.childSet[m.From] {
					f.childSet[m.From] = true
					f.Out.Children = append(f.Out.Children, m.From)
				}
				f.ackQueue = append(f.ackQueue, m.From)
			}
		case ChildAck:
			if m.To == sc.ID() {
				f.childAcked = true
			}
		}
	case treeAwaitC:
		rec := sc.Prev()
		switch m := rec.Msg.(type) {
		case Up:
			if m.Parent == sc.ID() {
				if old, ok := f.childVal[m.From]; !ok || old != m.Value {
					f.childVal[m.From] = m.Value
					if f.sentAny && f.recompute() != f.sentVal {
						f.upAcked = false // value grew: resend upward
					}
					if f.isRoot {
						sc.Emit(EventAggUpdate, int(f.recompute()))
					}
				}
				f.upAcks = append(f.upAcks, m.From)
			}
		case UpAck:
			if m.To == sc.ID() {
				f.upAcked = true
			}
		}
	case treeAwaitD:
		rec := sc.Prev()
		if m, ok := rec.Msg.(Result); ok && !f.informed {
			f.Out.Result = m.Value
			f.Out.Done = true
			f.informed = true
			sc.Emit(EventResult, int(m.Value))
		}
	}
	f.await = treeAwaitNone
	for {
		switch f.phase {
		case 0: // Phase A: root election + BFS tree.
			if f.b >= f.Cfg.BuildBlocks {
				f.isRoot = f.Out.Root == sc.ID()
				f.childSet = map[int]bool{}
				f.childAcked = f.isRoot
				f.phase, f.b, f.sub = 1, 0, 0
				continue
			}
			if f.ownSlot(f.sub) && sc.Rand.Float64() < f.Cfg.FloodProb {
				sc.Transmit(f.Cfg.Channel, State{Root: f.Out.Root, Hops: f.Out.Depth, From: sc.ID()})
			} else {
				sc.Listen(f.Cfg.Channel)
				f.await = treeAwaitA
			}
			f.advance()
			return false
		case 1: // Phase B: children discovery.
			if f.b >= f.Cfg.ChildBlocks {
				f.childVal = map[int]int64{}
				f.phase, f.b, f.sub = 2, 0, 0
				continue
			}
			if f.ownSlot(f.sub) {
				if len(f.ackQueue) > 0 && sc.Rand.Float64() < f.Cfg.AckProb {
					sc.Transmit(f.Cfg.Channel, ChildAck{To: f.ackQueue[0]})
					f.ackQueue = f.ackQueue[1:]
					f.advance()
					return false
				}
				if !f.childAcked && sc.Rand.Float64() < f.Cfg.FloodProb {
					sc.Transmit(f.Cfg.Channel, Child{Parent: f.Out.Parent, From: sc.ID()})
					f.advance()
					return false
				}
			}
			sc.Listen(f.Cfg.Channel)
			f.await = treeAwaitB
			f.advance()
			return false
		case 2: // Phase C: convergecast.
			if f.b >= f.Cfg.CastBlocks {
				have := f.recompute()
				f.informed = f.isRoot
				if f.isRoot {
					f.Out.Result = have
					f.Out.Done = true
				}
				f.phase, f.b, f.sub = 3, 0, 0
				continue
			}
			if f.isRoot && !f.emitted && f.ready() {
				f.emitted = true
				sc.Emit(EventAgg, int(f.recompute()))
			}
			if f.ownSlot(f.sub) {
				if len(f.upAcks) > 0 && sc.Rand.Float64() < f.Cfg.AckProb {
					sc.Transmit(f.Cfg.Channel, UpAck{To: f.upAcks[0]})
					f.upAcks = f.upAcks[1:]
					f.advance()
					return false
				}
				if !f.isRoot && !f.upAcked && f.ready() && sc.Rand.Float64() < f.Cfg.FloodProb {
					f.sentVal = f.recompute()
					f.sentAny = true
					sc.Transmit(f.Cfg.Channel, Up{Parent: f.Out.Parent, From: sc.ID(), Value: f.sentVal})
					f.advance()
					return false
				}
			}
			sc.Listen(f.Cfg.Channel)
			f.await = treeAwaitC
			f.advance()
			return false
		case 3: // Phase D: result flood.
			if f.b >= f.Cfg.ResultBlocks {
				f.phase = 4
				continue
			}
			if f.ownSlot(f.sub) && f.informed && sc.Rand.Float64() < f.Cfg.FloodProb {
				sc.Transmit(f.Cfg.Channel, Result{Value: f.Out.Result, From: sc.ID()})
			} else {
				sc.Listen(f.Cfg.Channel)
				f.await = treeAwaitD
			}
			f.advance()
			return false
		default:
			return true
		}
	}
}
