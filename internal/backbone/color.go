// Package backbone implements the global half of the aggregation structure:
// the coloring of dominators that spatially separates clusters (Sec. 5.1.2),
// the TDMA scheme derived from it (Lemma 9), and the inter-cluster
// aggregation tree over dominators (the substrate the paper imports from
// [2], Theorem 3).
package backbone

import (
	"math"
	"sort"

	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// Beacon is the neighbor-discovery probe carrying the sender's ID.
type Beacon struct {
	From int
}

// Final announces a dominator's final color.
type Final struct {
	From  int
	Color int
}

// ColorConfig parameterizes the cluster coloring stage.
//
// The pipeline variant (deviation D7) colors the constant-density dominator
// set in two sub-stages: RSSI-filtered neighbor discovery, then ID-ordered
// greedy color resolution — each dominator waits for all smaller-ID
// neighbors within Radius to announce, then takes the smallest free color
// and announces it for the rest of the stage.
type ColorConfig struct {
	// Channel used by the stage.
	Channel int
	// Radius is the conflict radius: dominators within it must receive
	// distinct colors. The pipeline passes R_{ε/2}.
	Radius float64
	// PhiMax is the agreed TDMA period: colors are drawn from
	// {0, …, PhiMax-1}; the stage records an overflow if greedy needs more
	// (it then wraps, and Validate will report conflicts).
	PhiMax int
	// BeaconProb is the discovery transmission probability.
	BeaconProb float64
	// AnnounceProb is the per-slot probability that a colored dominator
	// re-announces its color.
	AnnounceProb float64
	// DiscoverFactor and ResolveFactor scale the two sub-stage lengths:
	// slots = ceil(factor · ln n̂).
	DiscoverFactor, ResolveFactor float64
}

// DefaultColorConfig returns the pipeline configuration.
//
// The probabilities are deliberately small: conflict edges run up to
// R_{ε/2} ≈ 0.85·R_T where the SINR headroom over β is only ~60%, so a
// beacon is decodable across such a link only when almost nothing else
// transmits network-wide. Low per-slot probability with a long (one-time)
// stage is the reliable operating point.
func DefaultColorConfig(p model.Params, phiMax int) ColorConfig {
	return ColorConfig{
		Channel:        0,
		Radius:         p.REpsHalf(),
		PhiMax:         phiMax,
		BeaconProb:     0.02,
		AnnounceProb:   0.02,
		DiscoverFactor: 150,
		ResolveFactor:  250,
	}
}

func (c ColorConfig) discoverSlots(p model.Params) int {
	return int(math.Ceil(c.DiscoverFactor * p.LogN()))
}

func (c ColorConfig) resolveSlots(p model.Params) int {
	return int(math.Ceil(c.ResolveFactor * p.LogN()))
}

// SlotBudget returns the exact number of slots RunColor and IdleColor
// consume.
func (c ColorConfig) SlotBudget(p model.Params) int {
	return c.discoverSlots(p) + c.resolveSlots(p)
}

// ColorOutcome is the per-dominator result of the coloring stage.
type ColorOutcome struct {
	// Color in {0, …, PhiMax-1}; -1 for non-participants.
	Color int
	// Neighbors lists the dominator IDs discovered within Radius.
	Neighbors []int
	// Forced reports that the node colored itself greedily at the stage end
	// without having heard all smaller-ID neighbors (possible conflict).
	Forced bool
	// Overflowed reports that greedy needed a color ≥ PhiMax and wrapped.
	Overflowed bool
}

// IdleColor consumes the stage budget for nodes that are not dominators.
func IdleColor(ctx *sim.Ctx, cfg ColorConfig) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// RunColor executes the dominator side of the coloring stage, consuming
// exactly cfg.SlotBudget slots.
func RunColor(ctx *sim.Ctx, cfg ColorConfig) ColorOutcome {
	p := ctx.Params()
	out := ColorOutcome{Color: -1}

	// Sub-stage 1: neighbor discovery. Random beacons; receivers keep
	// senders whose RSSI-estimated distance is within Radius.
	neighbors := map[int]bool{}
	for s := 0; s < cfg.discoverSlots(p); s++ {
		if ctx.Rand.Float64() < cfg.BeaconProb {
			ctx.Transmit(cfg.Channel, Beacon{From: ctx.ID()})
			continue
		}
		rec := ctx.Listen(cfg.Channel)
		if b, ok := rec.Msg.(Beacon); ok && phy.SenderWithin(rec, p, cfg.Radius) {
			neighbors[b.From] = true
		}
	}
	out.Neighbors = make([]int, 0, len(neighbors))
	for id := range neighbors {
		out.Neighbors = append(out.Neighbors, id)
	}
	sort.Ints(out.Neighbors)

	// Sub-stage 2: ID-ordered greedy resolution.
	var (
		smaller    = map[int]bool{} // smaller-ID neighbors not yet heard
		taken      = map[int]bool{} // colors announced by any neighbor
		resolveLen = cfg.resolveSlots(p)
	)
	for _, id := range out.Neighbors {
		if id < ctx.ID() {
			smaller[id] = true
		}
	}
	pickColor := func() {
		c := 0
		for taken[c] {
			c++
		}
		if c >= cfg.PhiMax {
			out.Overflowed = true
			c %= cfg.PhiMax
		}
		out.Color = c
	}
	for s := 0; s < resolveLen; s++ {
		if out.Color < 0 && len(smaller) == 0 {
			pickColor()
		}
		if out.Color >= 0 && ctx.Rand.Float64() < cfg.AnnounceProb {
			ctx.Transmit(cfg.Channel, Final{From: ctx.ID(), Color: out.Color})
			continue
		}
		rec := ctx.Listen(cfg.Channel)
		f, ok := rec.Msg.(Final)
		if !ok || !neighbors[f.From] || !phy.SenderWithin(rec, p, cfg.Radius) {
			continue
		}
		taken[f.Color] = true
		delete(smaller, f.From)
	}
	if out.Color < 0 {
		// Budget exhausted before all smaller neighbors were heard: color
		// greedily against what is known rather than stall the pipeline.
		out.Forced = true
		pickColor()
	}
	return out
}
