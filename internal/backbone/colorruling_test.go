package backbone

import (
	"math/rand"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// runRulingColor executes the φ-phase coloring over the given dominator
// positions (everyone participates).
func runRulingColor(t *testing.T, pos []geo.Point, phases int, seed uint64) ([]int, model.Params) {
	t.Helper()
	p := model.Default(1, 64)
	cfg := DefaultRulingColorConfig(p, phases)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	colors := make([]int, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) { colors[i] = RunColorRuling(ctx, cfg) }
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return colors, p
}

func TestRulingColoringSmallClique(t *testing.T) {
	// A handful of dominators all within R_{ε/2} of each other: the
	// φ-phase scheme must give them pairwise distinct colors, one per
	// phase, in its feasible regime (few mutually conflicting dominators).
	for seed := uint64(1); seed <= 3; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		const k = 5
		pos := make([]geo.Point, k)
		for i := range pos {
			pos[i] = geo.Point{X: rnd.Float64() * 0.3, Y: rnd.Float64() * 0.3}
		}
		colors, p := runRulingColor(t, pos, k+2, seed)
		seen := map[int]bool{}
		for i, c := range colors {
			if c >= k+2 {
				t.Errorf("seed %d: node %d uncolored", seed, i)
				continue
			}
			if seen[c] && withinAny(pos, i, p.REpsHalf()) {
				t.Errorf("seed %d: duplicate color %d in one conflict ball", seed, c)
			}
			seen[c] = true
		}
	}
}

func withinAny(pos []geo.Point, i int, r float64) bool {
	for j := range pos {
		if j != i && pos[i].Dist(pos[j]) <= r {
			return true
		}
	}
	return false
}

func TestRulingColoringSeparatedGroups(t *testing.T) {
	// Two dominator groups far apart: colors may repeat across groups but
	// must be distinct within each (independence radius R_{ε/2} ≈ 0.85).
	rnd := rand.New(rand.NewSource(9))
	var pos []geo.Point
	for g := 0; g < 2; g++ {
		for i := 0; i < 4; i++ {
			pos = append(pos, geo.Point{
				X: float64(g)*20 + rnd.Float64()*0.4,
				Y: rnd.Float64() * 0.4,
			})
		}
	}
	colors, p := runRulingColor(t, pos, 8, 3)
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist(pos[j]) <= p.REpsHalf() && colors[i] == colors[j] && colors[i] < 8 {
				t.Errorf("conflict between %d and %d (color %d)", i, j, colors[i])
			}
		}
	}
}

func TestRulingColoringBudget(t *testing.T) {
	p := model.Default(1, 64)
	cfg := DefaultRulingColorConfig(p, 4)
	pos := []geo.Point{{X: 0}, {X: 0.2}}
	e := sim.NewEngine(phy.NewField(p, pos), 2)
	after := make([]int, 2)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunColorRuling(ctx, cfg); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { IdleColorRuling(ctx, cfg); after[1] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	want := cfg.SlotBudget(p)
	if after[0] != want || after[1] != want {
		t.Errorf("budgets %v, want %d", after, want)
	}
}
