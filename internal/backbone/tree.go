package backbone

import (
	"mcnet/internal/agg"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
)

// Event names emitted by the backbone stage.
const (
	// EventAgg fires when the backbone root completes the network-wide
	// aggregate.
	EventAgg = "backbone-agg"
	// EventAggUpdate fires when the root's aggregate is refined by a late
	// child contribution.
	EventAggUpdate = "backbone-agg-update"
	// EventResult fires when a dominator learns the final result over the
	// backbone.
	EventResult = "backbone-result"
)

// State is the tree-building flood message: the sender's current root and
// hop count.
type State struct {
	Root, Hops, From int
}

// Child announces "From is a tree child of Parent".
type Child struct {
	Parent, From int
}

// ChildAck confirms a Child announcement.
type ChildAck struct {
	To int
}

// Up carries a subtree aggregate from a child to its parent.
type Up struct {
	Parent, From int
	Value        int64
}

// PayloadValue exposes the subtree aggregate to the fault layer's Byzantine
// corruption hook (fault.Payload).
func (m Up) PayloadValue() int64 { return m.Value }

// WithPayloadValue returns the message with its value replaced.
func (m Up) WithPayloadValue(v int64) any { m.Value = v; return m }

// UpAck confirms receipt of a child's aggregate.
type UpAck struct {
	To int
}

// Result floods the final aggregate down the backbone.
type Result struct {
	Value int64
	From  int
}

// PayloadValue exposes the flooded aggregate to the fault layer's Byzantine
// corruption hook (fault.Payload).
func (m Result) PayloadValue() int64 { return m.Value }

// WithPayloadValue returns the message with its value replaced.
func (m Result) WithPayloadValue(v int64) any { m.Value = v; return m }

// TreeConfig parameterizes the inter-cluster stage (substrate for [2],
// Theorem 3; deviation D3 in DESIGN.md).
//
// All communication happens in TDMA blocks of PhiMax sub-slots: a dominator
// with cluster color c may transmit only in sub-slot c of each block and
// listens in the others, which keeps simultaneously transmitting dominators
// R_{ε/2}-separated (Lemma 2's regime) and makes backbone links decodable
// under concurrency.
type TreeConfig struct {
	// Channel used by the stage.
	Channel int
	// Radius is the maximum accepted link length (the pipeline passes
	// R_{ε/2}; adjacent clusters' dominators are within it).
	Radius float64
	// PhiMax is the TDMA period (must match the coloring stage).
	PhiMax int
	// FloodProb is the per-own-sub-slot transmission probability.
	FloodProb float64
	// AckProb is the probability of prioritizing a pending acknowledgement
	// over the node's own announcements.
	AckProb float64
	// BuildBlocks, ChildBlocks, CastBlocks and ResultBlocks are the phase
	// lengths in TDMA blocks.
	BuildBlocks, ChildBlocks, CastBlocks, ResultBlocks int
}

// DefaultTreeConfig sizes the phases for a backbone whose hop diameter is at
// most hopBound.
func DefaultTreeConfig(p model.Params, phiMax, hopBound int) TreeConfig {
	logn := int(p.LogN()) + 1
	return TreeConfig{
		Channel:      0,
		Radius:       p.REpsHalf(),
		PhiMax:       phiMax,
		FloodProb:    0.4,
		AckProb:      0.7,
		BuildBlocks:  6*hopBound + 10*logn,
		ChildBlocks:  12 * logn,
		CastBlocks:   6*hopBound + 12*logn,
		ResultBlocks: 6*hopBound + 10*logn,
	}
}

// SlotBudget returns the exact number of slots RunTree and IdleTree consume.
func (c TreeConfig) SlotBudget() int {
	return c.PhiMax * (c.BuildBlocks + c.ChildBlocks + c.CastBlocks + c.ResultBlocks)
}

// TreeOutcome is the per-dominator result of the inter-cluster stage.
type TreeOutcome struct {
	// Root is the elected backbone root (max dominator ID, w.h.p.).
	Root int
	// Parent is the tree parent, or -1 for the root.
	Parent int
	// Depth is the node's hop distance from the root along the tree.
	Depth int
	// Children are the tree children discovered during the child phase.
	Children []int
	// Result is the final aggregate (valid when Done).
	Result int64
	// Done reports whether the node learned the final aggregate.
	Done bool
}

// IdleTree consumes the stage budget for non-dominators.
func IdleTree(ctx *sim.Ctx, cfg TreeConfig) {
	ctx.IdleFor(cfg.SlotBudget())
}

// RunTree executes the dominator side of the inter-cluster stage: it elects
// a root, builds a BFS-ish tree, convergecasts the cluster values under op,
// and floods the result back. value is this cluster's aggregate from the
// intra-cluster phase. It consumes exactly cfg.SlotBudget slots.
func RunTree(ctx *sim.Ctx, cfg TreeConfig, color int, value int64, op agg.Op) TreeOutcome {
	p := ctx.Params()
	out := TreeOutcome{Root: ctx.ID(), Parent: -1}

	// ownSlot reports whether the node may transmit in this sub-slot.
	ownSlot := func(sub int) bool { return sub == color%cfg.PhiMax }

	// Phase A: root election + BFS tree by State flooding.
	var parentPow float64
	for b := 0; b < cfg.BuildBlocks; b++ {
		for sub := 0; sub < cfg.PhiMax; sub++ {
			if ownSlot(sub) && ctx.Rand.Float64() < cfg.FloodProb {
				ctx.Transmit(cfg.Channel, State{Root: out.Root, Hops: out.Depth, From: ctx.ID()})
				continue
			}
			rec := ctx.Listen(cfg.Channel)
			st, ok := rec.Msg.(State)
			if !ok || !phy.SenderWithin(rec, p, cfg.Radius) {
				continue
			}
			switch {
			case st.Root > out.Root,
				st.Root == out.Root && st.Hops+1 < out.Depth,
				st.Root == out.Root && out.Parent >= 0 && st.Hops+1 == out.Depth &&
					rec.SignalPower > parentPow:
				out.Root = st.Root
				out.Depth = st.Hops + 1
				out.Parent = st.From
				parentPow = rec.SignalPower
			}
		}
	}

	// Phase B: children discovery with acknowledgements.
	var (
		isRoot     = out.Root == ctx.ID()
		childSet   = map[int]bool{}
		ackQueue   []int
		childAcked = isRoot // the root has nothing to announce
	)
	for b := 0; b < cfg.ChildBlocks; b++ {
		for sub := 0; sub < cfg.PhiMax; sub++ {
			if ownSlot(sub) {
				switch {
				case len(ackQueue) > 0 && ctx.Rand.Float64() < cfg.AckProb:
					ctx.Transmit(cfg.Channel, ChildAck{To: ackQueue[0]})
					ackQueue = ackQueue[1:]
					continue
				case !childAcked && ctx.Rand.Float64() < cfg.FloodProb:
					ctx.Transmit(cfg.Channel, Child{Parent: out.Parent, From: ctx.ID()})
					continue
				}
			}
			rec := ctx.Listen(cfg.Channel)
			switch m := rec.Msg.(type) {
			case Child:
				if m.Parent == ctx.ID() {
					if !childSet[m.From] {
						childSet[m.From] = true
						out.Children = append(out.Children, m.From)
					}
					ackQueue = append(ackQueue, m.From)
				}
			case ChildAck:
				if m.To == ctx.ID() {
					childAcked = true
				}
			}
		}
	}

	// Phase C: convergecast. A node sends its current aggregate once all
	// known children have reported; parents keep each child's latest value
	// and re-fold on change, re-opening their own transmission when their
	// aggregate grows, so late or unannounced children are never dropped
	// (the fold must be commutative and associative, which agg.Op requires).
	var (
		childVal = map[int]int64{}
		upAcks   []int
		upAcked  = false
		sentVal  int64
		sentAny  = false
		emitted  bool
	)
	recompute := func() int64 {
		v := value
		for _, cv := range childVal {
			v = op.Combine(v, cv)
		}
		return v
	}
	ready := func() bool {
		for c := range childSet {
			if _, ok := childVal[c]; !ok {
				return false
			}
		}
		return true
	}
	for b := 0; b < cfg.CastBlocks; b++ {
		for sub := 0; sub < cfg.PhiMax; sub++ {
			if isRoot && !emitted && ready() {
				emitted = true
				ctx.Emit(EventAgg, int(recompute()))
			}
			if ownSlot(sub) {
				switch {
				case len(upAcks) > 0 && ctx.Rand.Float64() < cfg.AckProb:
					ctx.Transmit(cfg.Channel, UpAck{To: upAcks[0]})
					upAcks = upAcks[1:]
					continue
				case !isRoot && !upAcked && ready() && ctx.Rand.Float64() < cfg.FloodProb:
					sentVal = recompute()
					sentAny = true
					ctx.Transmit(cfg.Channel, Up{Parent: out.Parent, From: ctx.ID(), Value: sentVal})
					continue
				}
			}
			rec := ctx.Listen(cfg.Channel)
			switch m := rec.Msg.(type) {
			case Up:
				if m.Parent == ctx.ID() {
					if old, ok := childVal[m.From]; !ok || old != m.Value {
						childVal[m.From] = m.Value
						if sentAny && recompute() != sentVal {
							upAcked = false // value grew: resend upward
						}
						if isRoot {
							// Timestamp every root-side update so harnesses
							// can measure true (not ready-check) completion.
							ctx.Emit(EventAggUpdate, int(recompute()))
						}
					}
					upAcks = append(upAcks, m.From)
				}
			case UpAck:
				if m.To == ctx.ID() {
					upAcked = true
				}
			}
		}
	}
	have := recompute()

	// Phase D: flood the result down.
	informed := isRoot
	if isRoot {
		out.Result = have
		out.Done = true
	}
	for b := 0; b < cfg.ResultBlocks; b++ {
		for sub := 0; sub < cfg.PhiMax; sub++ {
			if ownSlot(sub) && informed && ctx.Rand.Float64() < cfg.FloodProb {
				ctx.Transmit(cfg.Channel, Result{Value: out.Result, From: ctx.ID()})
				continue
			}
			rec := ctx.Listen(cfg.Channel)
			if m, ok := rec.Msg.(Result); ok && !informed {
				out.Result = m.Value
				out.Done = true
				informed = true
				ctx.Emit(EventResult, int(m.Value))
			}
		}
	}
	return out
}
