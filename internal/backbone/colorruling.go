package backbone

import (
	"mcnet/internal/model"
	"mcnet/internal/ruling"
	"mcnet/internal/sim"
)

// RulingColorConfig parameterizes the paper-faithful cluster coloring of
// Sec. 5.1.2: φ sequential phases, each computing an (R_{ε/2}, R_ε)-ruling
// set among the still-uncolored dominators; phase i's ruling set takes
// color i.
//
// This variant is exact to the paper but only feasible when few dominators
// share the clear-reception neighborhood at radius R_{ε/2} (see deviation
// D7 in DESIGN.md); the pipeline default is the discovery+greedy variant in
// color.go. It is exercised by tests and the ablation experiments.
type RulingColorConfig struct {
	// Phases is the paper's φ: an upper bound on dominators per
	// R_{ε/2}-ball.
	Phases int
	// Ruling configures each phase's ruling-set execution (R is forced to
	// R_{ε/2}).
	Ruling ruling.Config
}

// DefaultRulingColorConfig returns a workable configuration for dominator
// sets of at most `phases` mutual R_{ε/2}-neighbors.
func DefaultRulingColorConfig(p model.Params, phases int) RulingColorConfig {
	cfg := ruling.DefaultConfig(p.REpsHalf(), 0)
	cfg.Mu = 4
	return RulingColorConfig{Phases: phases, Ruling: cfg}
}

// SlotBudget returns the exact slot cost of RunColorRuling / IdleColorRuling.
func (c RulingColorConfig) SlotBudget(p model.Params) int {
	return c.Phases * c.Ruling.SlotBudget(p)
}

// IdleColorRuling consumes the stage budget without participating.
func IdleColorRuling(ctx *sim.Ctx, cfg RulingColorConfig) {
	ctx.IdleFor(cfg.SlotBudget(ctx.Params()))
}

// RunColorRuling executes the dominator side of the φ-phase coloring and
// returns the node's color (its joining phase), or Phases if it stayed
// uncolored through every phase (which violates the φ bound and should be
// counted by the caller). It consumes exactly cfg.SlotBudget slots.
func RunColorRuling(ctx *sim.Ctx, cfg RulingColorConfig) int {
	color := cfg.Phases
	for phase := 0; phase < cfg.Phases; phase++ {
		if color < cfg.Phases {
			// Already colored: sit the remaining phases out.
			ruling.Idle(ctx, cfg.Ruling)
			continue
		}
		if ruling.Run(ctx, cfg.Ruling).InSet {
			color = phase
		}
	}
	return color
}
