package backbone

import (
	"math/rand"
	"testing"

	"mcnet/internal/agg"
	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
	"mcnet/internal/sim"
	"mcnet/internal/topology"
)

// greedyColors computes a proper coloring of the given points centrally
// (test fixture for the tree stage, which needs any proper coloring).
func greedyColors(pos []geo.Point, radius float64) []int {
	colors := make([]int, len(pos))
	for i := range pos {
		used := map[int]bool{}
		for j := 0; j < i; j++ {
			if pos[i].Dist(pos[j]) <= radius {
				used[colors[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[i] = c
	}
	return colors
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestRunColorProper(t *testing.T) {
	// Dominator-like sets: sparse points over a few R_{ε/2} diameters.
	for seed := uint64(1); seed <= 4; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		pos := topology.Uniform(rnd, 40, 3, 3)
		p := model.Default(1, 64)
		cfg := DefaultColorConfig(p, 24)
		e := sim.NewEngine(phy.NewField(p, pos), seed)
		out := make([]ColorOutcome, len(pos))
		progs := make([]sim.Program, len(pos))
		for i := range progs {
			i := i
			progs[i] = func(ctx *sim.Ctx) { out[i] = RunColor(ctx, cfg) }
		}
		if _, err := e.Run(progs); err != nil {
			t.Fatal(err)
		}
		conflicts := 0
		for i := range pos {
			for j := i + 1; j < len(pos); j++ {
				if pos[i].Dist(pos[j]) <= cfg.Radius && out[i].Color == out[j].Color {
					conflicts++
				}
			}
		}
		if conflicts != 0 {
			t.Errorf("seed %d: %d color conflicts", seed, conflicts)
		}
		for i, o := range out {
			if o.Color < 0 || o.Color >= cfg.PhiMax {
				t.Errorf("seed %d: node %d color %d out of range", seed, i, o.Color)
			}
			if o.Overflowed {
				t.Errorf("seed %d: node %d overflowed PhiMax", seed, i)
			}
		}
	}
}

func TestRunColorSingleton(t *testing.T) {
	p := model.Default(1, 64)
	cfg := DefaultColorConfig(p, 8)
	e := sim.NewEngine(phy.NewField(p, []geo.Point{{X: 0}}), 1)
	var out ColorOutcome
	progs := []sim.Program{func(ctx *sim.Ctx) { out = RunColor(ctx, cfg) }}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if out.Color != 0 || len(out.Neighbors) != 0 || out.Forced {
		t.Errorf("singleton outcome = %+v", out)
	}
}

func TestColorSlotBudget(t *testing.T) {
	p := model.Default(1, 64)
	cfg := DefaultColorConfig(p, 8)
	pos := []geo.Point{{X: 0}, {X: 0.5}}
	e := sim.NewEngine(phy.NewField(p, pos), 2)
	after := make([]int, 2)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunColor(ctx, cfg); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { IdleColor(ctx, cfg); after[1] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	want := cfg.SlotBudget(p)
	if after[0] != want || after[1] != want {
		t.Errorf("budgets %v, want %d", after, want)
	}
}

// runTree executes the inter-cluster stage over the given dominator
// positions with a centrally computed proper coloring and per-node values.
func runTree(t *testing.T, pos []geo.Point, values []int64, op agg.Op, seed uint64, hopBound int) []TreeOutcome {
	t.Helper()
	p := model.Default(1, 64)
	colors := greedyColors(pos, p.REpsHalf())
	phiMax := maxOf(colors) + 1
	cfg := DefaultTreeConfig(p, phiMax, hopBound)
	e := sim.NewEngine(phy.NewField(p, pos), seed)
	out := make([]TreeOutcome, len(pos))
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) {
			out[i] = RunTree(ctx, cfg, colors[i], values[i], op)
		}
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTreeSingleton(t *testing.T) {
	out := runTree(t, []geo.Point{{X: 0}}, []int64{42}, agg.Sum, 1, 1)
	if !out[0].Done || out[0].Result != 42 || out[0].Root != 0 {
		t.Errorf("singleton tree outcome = %+v", out[0])
	}
}

func TestTreeLineSum(t *testing.T) {
	// Dominator line with 0.5 spacing (links well within R_{ε/2} = 0.85).
	for seed := uint64(1); seed <= 3; seed++ {
		n := 8
		pos := topology.Line(n, 0.5)
		values := make([]int64, n)
		var want int64
		for i := range values {
			values[i] = int64(i*i + 1)
			want += values[i]
		}
		out := runTree(t, pos, values, agg.Sum, seed, n)
		for i, o := range out {
			if !o.Done {
				t.Errorf("seed %d: node %d missing result", seed, i)
				continue
			}
			if o.Result != want {
				t.Errorf("seed %d: node %d result %d, want %d", seed, i, o.Result, want)
			}
			if o.Root != n-1 {
				t.Errorf("seed %d: node %d root %d, want max ID %d", seed, i, o.Root, n-1)
			}
		}
	}
}

func TestTreeGridMax(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed * 5)))
		pos := topology.PerturbedGrid(rnd, 16, 0.5, 0.05)
		values := make([]int64, 16)
		var want int64 = -1 << 40
		for i := range values {
			values[i] = int64(rnd.Intn(1000)) - 500
			if values[i] > want {
				want = values[i]
			}
		}
		out := runTree(t, pos, values, agg.Max, seed, 8)
		for i, o := range out {
			if !o.Done || o.Result != want {
				t.Errorf("seed %d node %d: %+v, want max %d", seed, i, o, want)
			}
		}
	}
}

func TestTreeParentsFormForest(t *testing.T) {
	pos := topology.Line(6, 0.5)
	values := make([]int64, 6)
	out := runTree(t, pos, values, agg.Sum, 7, 6)
	root := out[0].Root
	for i, o := range out {
		if o.Root != root {
			t.Errorf("node %d disagrees on root", i)
		}
		if i == root {
			if o.Parent != -1 || o.Depth != 0 {
				t.Errorf("root has parent %d depth %d", o.Parent, o.Depth)
			}
			continue
		}
		if o.Parent < 0 || o.Parent >= len(pos) {
			t.Errorf("node %d parent %d invalid", i, o.Parent)
			continue
		}
		if out[o.Parent].Depth != o.Depth-1 {
			t.Errorf("node %d depth %d but parent depth %d", i, o.Depth, out[o.Parent].Depth)
		}
	}
}

func TestTreeChildSetsMatchParents(t *testing.T) {
	pos := topology.Line(6, 0.5)
	values := make([]int64, 6)
	out := runTree(t, pos, values, agg.Sum, 11, 6)
	for i, o := range out {
		for _, c := range o.Children {
			if out[c].Parent != i {
				t.Errorf("node %d lists child %d whose parent is %d", i, c, out[c].Parent)
			}
		}
	}
	// Every non-root should appear in its parent's child set (needed for
	// exact sums).
	for i, o := range out {
		if i == o.Root {
			continue
		}
		found := false
		for _, c := range out[o.Parent].Children {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d missing from parent %d's children", i, o.Parent)
		}
	}
}

func TestTreeSlotBudget(t *testing.T) {
	p := model.Default(1, 64)
	cfg := DefaultTreeConfig(p, 4, 3)
	pos := []geo.Point{{X: 0}, {X: 0.5}}
	e := sim.NewEngine(phy.NewField(p, pos), 2)
	after := make([]int, 2)
	progs := []sim.Program{
		func(ctx *sim.Ctx) { RunTree(ctx, cfg, 0, 1, agg.Sum); after[0] = ctx.Slot() },
		func(ctx *sim.Ctx) { IdleTree(ctx, cfg); after[1] = ctx.Slot() },
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	if after[0] != cfg.SlotBudget() || after[1] != cfg.SlotBudget() {
		t.Errorf("budgets %v, want %d", after, cfg.SlotBudget())
	}
}

func TestTreeEmitsEvents(t *testing.T) {
	p := model.Default(1, 64)
	pos := topology.Line(4, 0.5)
	colors := greedyColors(pos, p.REpsHalf())
	cfg := DefaultTreeConfig(p, maxOf(colors)+1, 4)
	e := sim.NewEngine(phy.NewField(p, pos), 3)
	progs := make([]sim.Program, len(pos))
	for i := range progs {
		i := i
		progs[i] = func(ctx *sim.Ctx) { RunTree(ctx, cfg, colors[i], 1, agg.Sum) }
	}
	if _, err := e.Run(progs); err != nil {
		t.Fatal(err)
	}
	var aggEvents, resultEvents int
	for _, ev := range e.Events() {
		switch ev.Name {
		case "backbone-agg":
			aggEvents++
		case "backbone-result":
			resultEvents++
		}
	}
	if aggEvents != 1 {
		t.Errorf("backbone-agg events = %d, want 1", aggEvents)
	}
	if resultEvents != len(pos)-1 {
		t.Errorf("backbone-result events = %d, want %d", resultEvents, len(pos)-1)
	}
}
