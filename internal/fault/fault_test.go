package fault

import (
	"reflect"
	"testing"

	"mcnet/internal/geo"
	"mcnet/internal/model"
	"mcnet/internal/phy"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{LossProb: 0.5},
		{LossProb: 1},
		{JamChannels: 3, JamModel: JamRoundRobin},
		{CrashRate: 0.2, CrashFrom: 10, CrashUntil: 20},
		{CrashAt: map[int]int{0: 0, 7: 100}},
	}
	for i, s := range good {
		if err := s.Validate(8, 4); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{LossProb: -0.1},
		{LossProb: 1.5},
		{JamChannels: -1},
		{JamChannels: 4}, // jams every channel
		{JamChannels: 1, JamModel: JamModel(9)},
		{CrashRate: 2},
		{CrashRate: 0.1, CrashFrom: -1},
		{CrashRate: 0.1, CrashFrom: 5, CrashUntil: 5},
		{CrashAt: map[int]int{8: 0}},  // node out of range
		{CrashAt: map[int]int{0: -3}}, // negative slot
	}
	for i, s := range bad {
		if err := s.Validate(8, 4); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestSpecZero(t *testing.T) {
	if !(Spec{}).Zero() {
		t.Error("zero value not Zero")
	}
	if !(Spec{JamModel: JamRoundRobin, CrashUntil: 50}).Zero() {
		t.Error("model/window without intensity should still be Zero")
	}
	for _, s := range []Spec{
		{LossProb: 0.01},
		{JamChannels: 1},
		{CrashRate: 0.1},
		{CrashAt: map[int]int{0: 1}},
	} {
		if s.Zero() {
			t.Errorf("spec %+v reported Zero", s)
		}
	}
}

// TestLossDeterminism: the loss decision is a pure function of (seed, slot,
// node) — two injectors with equal seeds agree everywhere, a different seed
// disagrees somewhere, and the empirical rate is near the target.
func TestLossDeterminism(t *testing.T) {
	spec := Spec{LossProb: 0.3}
	a := NewInjector(spec, 42, 4, 2, 1000)
	b := NewInjector(spec, 42, 4, 2, 1000)
	c := NewInjector(spec, 43, 4, 2, 1000)
	rec := phy.Reception{Decoded: true, From: 1, SignalPower: 2, SINR: 4}
	lost, diverged := 0, false
	const trials = 4000
	for slot := 0; slot < trials; slot++ {
		ra := a.FilterReception(slot, slot%4, 0, rec)
		rb := b.FilterReception(slot, slot%4, 0, rec)
		rc := c.FilterReception(slot, slot%4, 0, rec)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("slot %d: same seed diverged", slot)
		}
		if ra.Decoded != rc.Decoded {
			diverged = true
		}
		if !ra.Decoded {
			lost++
			if ra.From != -1 || ra.Msg != nil || ra.SignalPower != 0 || ra.SINR != 0 {
				t.Fatalf("lost reception not fully degraded: %+v", ra)
			}
			if ra.Interference != rec.Interference+rec.SignalPower {
				t.Fatalf("lost signal power not folded into interference: %+v", ra)
			}
		}
	}
	if !diverged {
		t.Error("different seeds never diverged")
	}
	if rate := float64(lost) / trials; rate < 0.25 || rate > 0.35 {
		t.Errorf("empirical loss rate %.3f, want ≈ 0.30", rate)
	}
	rep := a.Report()
	if rep.Lost != lost || rep.Delivered != trials-lost {
		t.Errorf("report lost/delivered = %d/%d, want %d/%d", rep.Lost, rep.Delivered, lost, trials-lost)
	}
}

// TestLossZeroIsIdentity: LossProb 0 never touches a reception and counts
// everything as delivered.
func TestLossZeroIsIdentity(t *testing.T) {
	in := NewInjector(Spec{}, 1, 2, 2, 100)
	rec := phy.Reception{Decoded: true, From: 0, Msg: "m", SignalPower: 3, Interference: 1, SINR: 1.5}
	if got := in.FilterReception(7, 1, 0, rec); !reflect.DeepEqual(got, rec) {
		t.Errorf("zero spec altered reception: %+v", got)
	}
	undec := phy.Reception{From: -1, Interference: 2}
	if got := in.FilterReception(8, 0, 0, undec); !reflect.DeepEqual(got, undec) {
		t.Errorf("undecoded reception altered: %+v", got)
	}
	if rep := in.Report(); rep.Delivered != 1 || rep.Lost != 0 {
		t.Errorf("report = %+v, want 1 delivered, 0 lost", rep)
	}
}

func testField(channels int) *phy.Field {
	p := model.Default(channels, 8)
	pos := []geo.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}}
	return phy.NewField(p, pos)
}

// jamSet resolves one listener per channel against a nearby transmitter and
// reports which channels failed to decode (i.e. are jammed).
func jammedChannels(f *phy.Field, channels int) map[int]bool {
	out := map[int]bool{}
	for c := 0; c < channels; c++ {
		txs := []phy.Tx{{Node: 0, Channel: c, Msg: c}}
		rxs := []phy.Rx{{Node: 1, Channel: c}}
		recs := f.Resolve(txs, rxs)
		if !recs[0].Decoded {
			out[c] = true
		}
	}
	return out
}

// TestJamRoundRobin: the deterministic adversary jams exactly k channels per
// slot and sweeps every channel across a cycle.
func TestJamRoundRobin(t *testing.T) {
	const channels, k = 4, 2
	f := testField(channels)
	in := NewInjector(Spec{JamChannels: k, JamModel: JamRoundRobin}, 5, 2, channels, 100)
	covered := map[int]bool{}
	for slot := 0; slot < 8; slot++ {
		in.BeginSlot(slot, f)
		jam := jammedChannels(f, channels)
		if len(jam) != k {
			t.Fatalf("slot %d: %d channels jammed, want %d", slot, len(jam), k)
		}
		for c := range jam {
			covered[c] = true
		}
	}
	if len(covered) != channels {
		t.Errorf("round-robin covered %d/%d channels over 8 slots", len(covered), channels)
	}
	if rep := in.Report(); rep.JammedSlotChannels != 8*k || rep.Slots != 8 {
		t.Errorf("report = %+v, want %d jammed slot-channels over 8 slots", rep, 8*k)
	}
}

// TestJamObliviousDeterminism: same seed → same jam sets; the per-slot sets
// vary and always have size k.
func TestJamObliviousDeterminism(t *testing.T) {
	const channels, k = 5, 2
	fa, fb := testField(channels), testField(channels)
	a := NewInjector(Spec{JamChannels: k, JamModel: JamOblivious}, 9, 2, channels, 100)
	b := NewInjector(Spec{JamChannels: k, JamModel: JamOblivious}, 9, 2, channels, 100)
	distinct := map[string]bool{}
	for slot := 0; slot < 32; slot++ {
		a.BeginSlot(slot, fa)
		b.BeginSlot(slot, fb)
		ja, jb := jammedChannels(fa, channels), jammedChannels(fb, channels)
		if !reflect.DeepEqual(ja, jb) {
			t.Fatalf("slot %d: same seed jammed %v vs %v", slot, ja, jb)
		}
		if len(ja) != k {
			t.Fatalf("slot %d: %d channels jammed, want %d", slot, len(ja), k)
		}
		key := ""
		for c := 0; c < channels; c++ {
			if ja[c] {
				key += string(rune('0' + c))
			}
		}
		distinct[key] = true
	}
	if len(distinct) < 3 {
		t.Errorf("oblivious adversary produced only %d distinct jam sets over 32 slots", len(distinct))
	}
}

// TestJamClearedBetweenSlots: the previous slot's jam set is lifted before
// the next slot's is applied — the field does not accumulate jammed channels.
func TestJamClearedBetweenSlots(t *testing.T) {
	const channels = 4
	f := testField(channels)
	in := NewInjector(Spec{JamChannels: 1, JamModel: JamRoundRobin}, 5, 2, channels, 100)
	for slot := 0; slot < channels; slot++ {
		in.BeginSlot(slot, f)
		if jam := jammedChannels(f, channels); len(jam) != 1 {
			t.Fatalf("slot %d: %d channels jammed, want 1 (stale jam not cleared)", slot, len(jam))
		}
	}
}

// TestChurnResolution: explicit crash sets win over the rate process, the
// rate process is deterministic in the seed, and crash slots land in the
// window.
func TestChurnResolution(t *testing.T) {
	const n, horizon = 200, 500
	spec := Spec{
		CrashAt:    map[int]int{3: 7, 5: 0},
		CrashRate:  0.3,
		CrashFrom:  100,
		CrashUntil: 200,
	}
	a := NewInjector(spec, 11, n, 4, horizon)
	b := NewInjector(spec, 11, n, 4, horizon)
	if a.CrashSlot(3) != 7 || a.CrashSlot(5) != 0 {
		t.Errorf("explicit crash slots = %d, %d, want 7, 0", a.CrashSlot(3), a.CrashSlot(5))
	}
	crashed := 0
	for i := 0; i < n; i++ {
		if a.CrashSlot(i) != b.CrashSlot(i) {
			t.Fatalf("node %d: same seed resolved different crash slots", i)
		}
		if i == 3 || i == 5 {
			continue
		}
		if at := a.CrashSlot(i); at != neverCrashes {
			crashed++
			if at < 100 || at >= 200 {
				t.Errorf("node %d crash slot %d outside window [100, 200)", i, at)
			}
		}
	}
	if crashed < n/5 || crashed > n*2/5 {
		t.Errorf("%d/%d rate-crashes, want ≈ 30%%", crashed, n)
	}
	if a.CrashSlot(-1) != neverCrashes || a.CrashSlot(n) != neverCrashes {
		t.Error("out-of-range ids must never crash")
	}
}

// TestChurnHorizonDefault: CrashUntil = 0 falls back to the run horizon.
func TestChurnHorizonDefault(t *testing.T) {
	const n, horizon = 300, 64
	in := NewInjector(Spec{CrashRate: 1}, 2, n, 4, horizon)
	for i := 0; i < n; i++ {
		if at := in.CrashSlot(i); at < 0 || at >= horizon {
			t.Fatalf("node %d crash slot %d outside [0, %d)", i, at, horizon)
		}
	}
}

// TestReportCrashedNodes: only crashes at or before the last observed slot
// are reported, sorted ascending.
func TestReportCrashedNodes(t *testing.T) {
	f := testField(2)
	in := NewInjector(Spec{CrashAt: map[int]int{1: 3, 0: 50}}, 1, 2, 2, 100)
	for slot := 0; slot < 10; slot++ {
		in.BeginSlot(slot, f)
	}
	rep := in.Report()
	if !reflect.DeepEqual(rep.CrashedNodes, []int{1}) {
		t.Errorf("CrashedNodes = %v, want [1] (node 0 crashes after the run)", rep.CrashedNodes)
	}
	if !rep.Crashed(1) || rep.Crashed(0) {
		t.Errorf("Crashed lookups wrong: %+v", rep)
	}
}

// payloadMsg is a minimal value-bearing message for corruption tests,
// implementing Payload exactly like the protocol messages do: by value.
type payloadMsg struct{ V int64 }

func (m payloadMsg) PayloadValue() int64          { return m.V }
func (m payloadMsg) WithPayloadValue(v int64) any { m.V = v; return m }

// TestByzValidate: the ByzSpec checks ride on Spec.Validate.
func TestByzValidate(t *testing.T) {
	good := []Spec{
		{Byz: ByzSpec{Fraction: 0.5}},
		{Byz: ByzSpec{Fraction: 1, Strategy: ByzEquivocate}},
		{Byz: ByzSpec{Count: 8, Strategy: ByzSilent}},
	}
	for i, s := range good {
		if err := s.Validate(8, 4); err != nil {
			t.Errorf("good byz spec %d rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{Byz: ByzSpec{Fraction: -0.1}},
		{Byz: ByzSpec{Fraction: 1.5}},
		{Byz: ByzSpec{Count: -1}},
		{Byz: ByzSpec{Count: 9}}, // more liars than nodes
		{Byz: ByzSpec{Fraction: 0.1, Strategy: ByzStrategy(9)}},
	}
	for i, s := range bad {
		if err := s.Validate(8, 4); err == nil {
			t.Errorf("bad byz spec %d accepted: %+v", i, s)
		}
	}
	if !(Spec{Byz: ByzSpec{Strategy: ByzSilent}}).Zero() {
		t.Error("strategy without a population should still be Zero")
	}
	if (Spec{Byz: ByzSpec{Fraction: 0.1}}).Zero() || (Spec{Byz: ByzSpec{Count: 1}}).Zero() {
		t.Error("a Byzantine population reported Zero")
	}
}

// TestByzantineSelection: membership is an exact seeded k-subset — stable
// across injectors, the right size, ascending, and seed-sensitive.
func TestByzantineSelection(t *testing.T) {
	const n = 100
	spec := Spec{Byz: ByzSpec{Fraction: 0.25}}
	a := NewInjector(spec, 7, n, 4, 100)
	b := NewInjector(spec, 7, n, 4, 100)
	c := NewInjector(spec, 8, n, 4, 100)
	ra, rb, rc := a.Report(), b.Report(), c.Report()
	if len(ra.ByzantineNodes) != 25 {
		t.Fatalf("fraction 0.25 of %d chose %d nodes, want 25", n, len(ra.ByzantineNodes))
	}
	if !reflect.DeepEqual(ra.ByzantineNodes, rb.ByzantineNodes) {
		t.Error("same seed chose different Byzantine sets")
	}
	if reflect.DeepEqual(ra.ByzantineNodes, rc.ByzantineNodes) {
		t.Error("different seeds chose identical Byzantine sets")
	}
	last := -1
	for _, id := range ra.ByzantineNodes {
		if id <= last || id >= n {
			t.Fatalf("membership not ascending in range: %v", ra.ByzantineNodes)
		}
		last = id
		if !ra.Byzantine(id) {
			t.Fatalf("Byzantine(%d) = false for a member", id)
		}
	}
	if ra.Byzantine(-1) || ra.Byzantine(n) {
		t.Error("out-of-range ids reported Byzantine")
	}
	// Count overrides Fraction, and is clamped to n.
	if rep := NewInjector(Spec{Byz: ByzSpec{Fraction: 0.9, Count: 3}}, 7, n, 4, 100).Report(); len(rep.ByzantineNodes) != 3 {
		t.Errorf("Count=3 chose %d nodes", len(rep.ByzantineNodes))
	}
}

// TestByzantineStrategies: corrupt lies consistently, equivocate lies per
// (slot, channel), silent drops — and honest traffic always passes through
// untouched.
func TestByzantineStrategies(t *testing.T) {
	const n = 8
	pick := func(in *Injector) (byz, honest int) {
		rep := in.Report()
		byz = rep.ByzantineNodes[0]
		for i := 0; i < n; i++ {
			if !rep.Byzantine(i) {
				return byz, i
			}
		}
		t.Fatal("no honest node")
		return 0, 0
	}
	msg := payloadMsg{V: 41}

	corrupt := NewInjector(Spec{Byz: ByzSpec{Count: 2, Strategy: ByzCorrupt}}, 3, n, 4, 100)
	byz, honest := pick(corrupt)
	out1, ok1 := corrupt.FilterTransmission(5, phy.Tx{Node: byz, Channel: 0, Msg: msg})
	out2, ok2 := corrupt.FilterTransmission(9, phy.Tx{Node: byz, Channel: 2, Msg: msg})
	if !ok1 || !ok2 {
		t.Fatal("corrupt strategy dropped a transmission")
	}
	lie1 := out1.Msg.(payloadMsg).V
	lie2 := out2.Msg.(payloadMsg).V
	if lie1 == msg.V {
		t.Error("corrupt strategy kept the honest value")
	}
	if lie1 != lie2 {
		t.Errorf("consistent liar told different lies: %d vs %d", lie1, lie2)
	}
	if h, ok := corrupt.FilterTransmission(5, phy.Tx{Node: honest, Channel: 0, Msg: msg}); !ok || h.Msg.(payloadMsg).V != msg.V {
		t.Error("honest transmission was touched")
	}
	if ctrl, ok := corrupt.FilterTransmission(5, phy.Tx{Node: byz, Channel: 0, Msg: "hello"}); !ok || ctrl.Msg != "hello" {
		t.Error("payload-free control traffic was touched")
	}
	if rep := corrupt.Report(); rep.Corrupted != 2 || rep.Dropped != 0 {
		t.Errorf("corrupt report = %+v, want 2 corrupted, 0 dropped", rep)
	}

	equiv := NewInjector(Spec{Byz: ByzSpec{Count: 2, Strategy: ByzEquivocate}}, 3, n, 4, 100)
	byz, _ = pick(equiv)
	e1, _ := equiv.FilterTransmission(5, phy.Tx{Node: byz, Channel: 0, Msg: msg})
	e2, _ := equiv.FilterTransmission(5, phy.Tx{Node: byz, Channel: 1, Msg: msg})
	e3, _ := equiv.FilterTransmission(6, phy.Tx{Node: byz, Channel: 0, Msg: msg})
	e1again, _ := equiv.FilterTransmission(5, phy.Tx{Node: byz, Channel: 0, Msg: msg})
	v1, v2, v3 := e1.Msg.(payloadMsg).V, e2.Msg.(payloadMsg).V, e3.Msg.(payloadMsg).V
	if v1 == v2 && v1 == v3 {
		t.Errorf("equivocator told one story everywhere: %d", v1)
	}
	if v1 != e1again.Msg.(payloadMsg).V {
		t.Error("equivocation not deterministic per (slot, channel)")
	}

	silent := NewInjector(Spec{Byz: ByzSpec{Count: 2, Strategy: ByzSilent}}, 3, n, 4, 100)
	byz, honest = pick(silent)
	if _, ok := silent.FilterTransmission(5, phy.Tx{Node: byz, Channel: 0, Msg: msg}); ok {
		t.Error("silent traitor's transmission was not dropped")
	}
	if _, ok := silent.FilterTransmission(5, phy.Tx{Node: honest, Channel: 0, Msg: msg}); !ok {
		t.Error("honest transmission dropped")
	}
	if rep := silent.Report(); rep.Dropped != 1 || rep.Corrupted != 0 {
		t.Errorf("silent report = %+v, want 1 dropped, 0 corrupted", rep)
	}

	// The zero-valued ByzSpec takes the nil fast path: nothing is touched.
	none := NewInjector(Spec{}, 3, n, 4, 100)
	if out, ok := none.FilterTransmission(5, phy.Tx{Node: 0, Channel: 0, Msg: msg}); !ok || out.Msg.(payloadMsg).V != msg.V {
		t.Error("zero spec altered a transmission")
	}
}

// TestJamReactive: the reactive adversary jams the channels that carried
// last slot's delivered decodes (ties to the lower index), and falls back to
// the low channels with no history.
func TestJamReactive(t *testing.T) {
	const channels, k = 4, 1
	f := testField(channels)
	in := NewInjector(Spec{JamChannels: k, JamModel: JamReactive}, 5, 2, channels, 100)
	in.BeginSlot(0, f)
	if jam := jammedChannels(f, channels); !jam[0] || len(jam) != 1 {
		t.Fatalf("first slot jammed %v, want {0} (no history)", jam)
	}
	// Deliver two decodes on channel 2, one on channel 3, during slot 0.
	rec := phy.Reception{Decoded: true, From: 0, SignalPower: 1, SINR: 4}
	in.FilterReception(0, 1, 2, rec)
	in.FilterReception(0, 1, 2, rec)
	in.FilterReception(0, 1, 3, rec)
	in.BeginSlot(1, f)
	if jam := jammedChannels(f, channels); !jam[2] || len(jam) != 1 {
		t.Fatalf("slot 1 jammed %v, want {2} (busiest channel last slot)", jam)
	}
	// No deliveries during slot 1: history was reset, back to channel 0.
	in.BeginSlot(2, f)
	if jam := jammedChannels(f, channels); !jam[0] || len(jam) != 1 {
		t.Fatalf("slot 2 jammed %v, want {0} (observations reset each slot)", jam)
	}
}

// TestJamAdaptiveDeterminism: the bandit is a pure function of (seed, spec,
// observation stream) — twin injectors fed identical streams agree on every
// jam set, and each set has exactly k channels.
func TestJamAdaptiveDeterminism(t *testing.T) {
	const channels, k = 5, 2
	fa, fb := testField(channels), testField(channels)
	a := NewInjector(Spec{JamChannels: k, JamModel: JamAdaptive}, 13, 2, channels, 100)
	b := NewInjector(Spec{JamChannels: k, JamModel: JamAdaptive}, 13, 2, channels, 100)
	rec := phy.Reception{Decoded: true, From: 0, SignalPower: 1, SINR: 4}
	distinct := map[string]bool{}
	for slot := 0; slot < 64; slot++ {
		a.BeginSlot(slot, fa)
		b.BeginSlot(slot, fb)
		ja, jb := jammedChannels(fa, channels), jammedChannels(fb, channels)
		if !reflect.DeepEqual(ja, jb) {
			t.Fatalf("slot %d: same seed and stream jammed %v vs %v", slot, ja, jb)
		}
		if len(ja) != k {
			t.Fatalf("slot %d: %d channels jammed, want %d", slot, len(ja), k)
		}
		key := ""
		for c := 0; c < channels; c++ {
			if ja[c] {
				key += string(rune('0' + c))
			}
		}
		distinct[key] = true
		// Both observe the same traffic: channel slot%channels is busy.
		a.FilterReception(slot, 1, slot%channels, rec)
		b.FilterReception(slot, 1, slot%channels, rec)
	}
	if len(distinct) < 2 {
		t.Error("adaptive adversary never moved off one jam set over 64 slots")
	}
}

// TestTallySurvivorsExcludesByzantine: the tally counts honest nodes only —
// a liar agreeing with its own lie is not a success.
func TestTallySurvivorsExcludesByzantine(t *testing.T) {
	rep := Report{ByzantineNodes: []int{1, 4}, CrashedNodes: []int{2}}
	// Nodes 0,3,5 are honest survivors: 0 and 3 learned 10 (the want), 5
	// learned 11; the liars "learned" 99.
	values := map[int]int64{0: 10, 1: 99, 3: 10, 4: 99, 5: 11}
	tally := rep.TallySurvivors(6, func(i int) (bool, int64) {
		v, ok := values[i]
		return ok, v
	}, 10)
	if tally.Survivors != 3 {
		t.Errorf("Survivors = %d, want 3 (6 nodes - 2 byzantine - 1 crashed)", tally.Survivors)
	}
	if tally.Informed != 3 || tally.Exact != 2 || tally.Agreeing != 2 {
		t.Errorf("tally = %+v, want informed 3, exact 2, agreeing 2", tally)
	}
}
