// Package fault implements the deterministic fault and dynamics layer: it
// perturbs slot resolution with probabilistic message loss, adversarial
// channel jamming and node churn, while keeping every run a pure function of
// (seed, fault spec). The paper analyzes a static SINR network; this layer
// stress-tests the same schedules when links and nodes are not ideal.
//
// Every fault decision is derived by hashing (seed, slot, node) — never by
// consuming protocol randomness or shared mutable RNG state — so transcripts
// replay bit-identically regardless of goroutine scheduling, and a
// zero-intensity spec (no loss, no jam, no churn) is observationally
// identical to running without the layer at all.
//
// An Injector plugs into the simulator through the sim.FaultInjector hook:
// BeginSlot reconfigures per-slot channel jamming on the field,
// FilterTransmission lets Byzantine nodes corrupt, equivocate on, or drop
// their own transmissions, FilterReception suppresses decoded receptions
// chosen by the loss process, and CrashSlot tells each node's context when
// (if ever) the node dies.
//
// Adaptive adversaries (JamReactive, JamAdaptive) observe only
// engine-resolved state — the per-channel decoded-delivery counts of the
// previous slot — which the engine computes in node order on both execution
// paths, so even a reactive attack is a pure function of (seed, spec,
// transcript-so-far) and replays bit-identically across exec modes and
// worker counts.
package fault

import (
	"fmt"
	"math"
	"sort"

	"mcnet/internal/phy"
	"mcnet/internal/rng"
)

// JamModel selects the jamming adversary's channel-selection strategy.
type JamModel int

const (
	// JamOblivious draws the k jammed channels fresh each slot from a
	// seeded RNG independent of the execution — the oblivious adversary.
	JamOblivious JamModel = iota
	// JamRoundRobin sweeps a block of k consecutive channels cyclically
	// across the F channels, one step per slot — a deterministic adversary
	// that eventually disrupts every channel equally.
	JamRoundRobin
	// JamReactive jams the k channels that carried the most decoded,
	// delivered traffic in the previous slot (ties to the lower channel
	// index; the first slot, with no history, jams channels 0..k-1). This is
	// the strongest eavesdropping adversary expressible from engine state
	// alone: it chases wherever the protocol's traffic actually lands.
	JamReactive
	// JamAdaptive is a seeded ε-greedy bandit over channels: it keeps an
	// exponentially decayed per-channel score of delivered traffic and each
	// slot either exploits the k best-scoring channels or (with a small
	// seeded exploration probability) probes a fresh random k-subset.
	// Between oblivious and reactive in strength, it models a learning
	// jammer with imperfect memory.
	JamAdaptive
)

// String returns the model's mnemonic name.
func (m JamModel) String() string {
	switch m {
	case JamOblivious:
		return "oblivious"
	case JamRoundRobin:
		return "roundrobin"
	case JamReactive:
		return "reactive"
	case JamAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("JamModel(%d)", int(m))
	}
}

// ByzStrategy selects what a Byzantine node does with its own transmissions.
type ByzStrategy int

const (
	// ByzCorrupt replaces every aggregation payload the node sends with a
	// fixed seeded lie — a consistent liar: the same wrong value on every
	// channel and slot, the hardest corruption to vote away.
	ByzCorrupt ByzStrategy = iota
	// ByzEquivocate sends a different seeded lie per (slot, channel) — the
	// classic equivocation attack: different stories to different audiences.
	ByzEquivocate
	// ByzSilent drops every transmission the node attempts while it keeps
	// listening and occupying its protocol role — a fail-silent traitor that
	// starves its cluster without triggering crash detection.
	ByzSilent
)

// String returns the strategy's mnemonic name.
func (s ByzStrategy) String() string {
	switch s {
	case ByzCorrupt:
		return "corrupt"
	case ByzEquivocate:
		return "equivocate"
	case ByzSilent:
		return "silent"
	default:
		return fmt.Sprintf("ByzStrategy(%d)", int(s))
	}
}

// ByzSpec declares the Byzantine population of one run. The zero value
// injects nothing. Membership is chosen by seeded hash over node IDs —
// exactly Count nodes (or round(Fraction·n) when Count is 0) — so the same
// (seed, spec, n) always corrupts the same nodes, independent of execution
// mode or scheduling.
type ByzSpec struct {
	// Fraction of the deployment to corrupt, in [0, 1]. Ignored when Count
	// is set.
	Fraction float64
	// Count is the exact number of Byzantine nodes; 0 defers to Fraction.
	Count int
	// Strategy selects the nodes' behavior.
	Strategy ByzStrategy
}

// Zero reports whether the spec names no Byzantine nodes.
func (b ByzSpec) Zero() bool { return b.Fraction == 0 && b.Count == 0 }

// size resolves the spec to a concrete Byzantine population for n nodes.
func (b ByzSpec) size(n int) int {
	k := b.Count
	if k == 0 {
		k = int(math.Round(b.Fraction * float64(n)))
	}
	if k > n {
		k = n
	}
	return k
}

// Payload is implemented by value-bearing protocol messages that Byzantine
// nodes know how to corrupt. It is structural on purpose: the fault layer
// never imports protocol packages, it just rewrites any message that carries
// an int64 aggregation payload. Messages without it (control traffic) pass
// through corruption untouched.
type Payload interface {
	// PayloadValue returns the message's aggregation payload.
	PayloadValue() int64
	// WithPayloadValue returns a copy of the message carrying v instead.
	WithPayloadValue(v int64) any
}

// Spec declares the faults of one run. The zero value injects nothing.
type Spec struct {
	// LossProb is the per-reception Bernoulli loss probability in [0, 1]:
	// each decoded message is independently suppressed with this
	// probability (the listener still senses its power, as under fading).
	LossProb float64

	// JamChannels is the number k of channels the adversary jams each slot
	// (0 disables jamming); JamModel picks how the k channels are chosen.
	// Nothing decodes on a jammed channel, but its power is still sensed.
	JamChannels int
	JamModel    JamModel

	// CrashAt maps node IDs to the first slot at which they are dead: from
	// that slot on the node performs no further radio actions.
	CrashAt map[int]int
	// CrashRate additionally crashes each remaining node independently
	// with this probability, at a seeded slot drawn uniformly from
	// [CrashFrom, CrashUntil). CrashUntil = 0 means the run's horizon.
	CrashRate             float64
	CrashFrom, CrashUntil int

	// Byz declares the Byzantine population: lying, equivocating, or
	// fail-silent nodes chosen by seeded hash.
	Byz ByzSpec
}

// Zero reports whether the spec injects nothing: no loss, no jamming, no
// churn and no Byzantine nodes. A zero spec's injector is observationally
// identical to no injector.
func (s Spec) Zero() bool {
	return s.LossProb == 0 && s.JamChannels == 0 && len(s.CrashAt) == 0 && s.CrashRate == 0 &&
		s.Byz.Zero()
}

// Validate checks the spec against a deployment of n nodes on the given
// channel count. Injectors assume a validated spec.
func (s Spec) Validate(n, channels int) error {
	if s.LossProb < 0 || s.LossProb > 1 || s.LossProb != s.LossProb {
		return fmt.Errorf("fault: loss probability %v must be in [0, 1]", s.LossProb)
	}
	if s.JamChannels < 0 {
		return fmt.Errorf("fault: jammed channel count %d must be ≥ 0", s.JamChannels)
	}
	if s.JamChannels >= channels && s.JamChannels > 0 {
		return fmt.Errorf("fault: jamming %d of %d channels leaves none usable", s.JamChannels, channels)
	}
	switch s.JamModel {
	case JamOblivious, JamRoundRobin, JamReactive, JamAdaptive:
	default:
		return fmt.Errorf("fault: unknown jam model %d", int(s.JamModel))
	}
	if s.CrashRate < 0 || s.CrashRate > 1 || s.CrashRate != s.CrashRate {
		return fmt.Errorf("fault: crash rate %v must be in [0, 1]", s.CrashRate)
	}
	if s.CrashFrom < 0 {
		return fmt.Errorf("fault: crash window start %d must be ≥ 0", s.CrashFrom)
	}
	if s.CrashUntil != 0 && s.CrashUntil <= s.CrashFrom {
		return fmt.Errorf("fault: crash window [%d, %d) is empty", s.CrashFrom, s.CrashUntil)
	}
	for id, slot := range s.CrashAt {
		if id < 0 || id >= n {
			return fmt.Errorf("fault: crash set names node %d, deployment has %d nodes", id, n)
		}
		if slot < 0 {
			return fmt.Errorf("fault: node %d crash slot %d must be ≥ 0", id, slot)
		}
	}
	if b := s.Byz; b.Fraction < 0 || b.Fraction > 1 || b.Fraction != b.Fraction {
		return fmt.Errorf("fault: byzantine fraction %v must be in [0, 1]", b.Fraction)
	} else if b.Count < 0 || b.Count > n {
		return fmt.Errorf("fault: byzantine count %d must be in [0, %d]", b.Count, n)
	} else {
		switch b.Strategy {
		case ByzCorrupt, ByzEquivocate, ByzSilent:
		default:
			return fmt.Errorf("fault: unknown byzantine strategy %d", int(b.Strategy))
		}
	}
	return nil
}

// Report summarizes what an Injector did during one run.
type Report struct {
	// Slots is the number of slots the injector observed.
	Slots int
	// Delivered counts decoded receptions handed to listeners; Lost counts
	// decoded receptions suppressed by the loss process. Their sum is every
	// successful decode of the underlying SINR layer (after jamming).
	Delivered, Lost int
	// JammedSlotChannels counts (slot, channel) pairs the adversary jammed.
	JammedSlotChannels int
	// CrashedNodes lists the nodes whose crash slot fell inside the run,
	// ascending.
	CrashedNodes []int
	// ByzantineNodes lists the seeded Byzantine membership, ascending.
	ByzantineNodes []int
	// Corrupted counts payloads rewritten by Byzantine transmitters;
	// Dropped counts transmissions they silently discarded.
	Corrupted, Dropped int
}

// Crashed reports whether node id crashed during the run.
func (r Report) Crashed(id int) bool {
	i := sort.SearchInts(r.CrashedNodes, id)
	return i < len(r.CrashedNodes) && r.CrashedNodes[i] == id
}

// Byzantine reports whether node id was in the run's Byzantine set.
func (r Report) Byzantine(id int) bool {
	i := sort.SearchInts(r.ByzantineNodes, id)
	return i < len(r.ByzantineNodes) && r.ByzantineNodes[i] == id
}

// SurvivorTally is the surviving-node correctness summary of one run: how
// many nodes outlived the faults, how many of those learned some aggregate,
// how many learned the reference value exactly, and the size of the largest
// set agreeing on a single value (the consensus notion that replaces
// exactness under churn, where nodes dying before contributing make the
// full-input fold unreachable).
type SurvivorTally struct {
	Survivors, Informed, Exact, Agreeing int
}

// TallySurvivors folds per-node outcomes into a SurvivorTally. node(i) must
// report whether node i learned a value and which; want is the reference
// aggregate for exactness. It is the single definition shared by the facade
// result and the experiment metrics, so the two cannot drift.
//
// Byzantine nodes are excluded from every count: the tally measures honest
// correctness, which is what degrades as the Byzantine fraction grows — a
// liar "agreeing" with its own lie is not a success.
func (r Report) TallySurvivors(n int, node func(i int) (informed bool, value int64), want int64) SurvivorTally {
	t := SurvivorTally{}
	agree := make(map[int64]int)
	for i := 0; i < n; i++ {
		if r.Byzantine(i) {
			continue
		}
		if !r.Crashed(i) {
			t.Survivors++
		}
		informed, value := node(i)
		if !informed || r.Crashed(i) {
			continue
		}
		t.Informed++
		if value == want {
			t.Exact++
		}
		agree[value]++
	}
	for _, c := range agree {
		if c > t.Agreeing {
			t.Agreeing = c
		}
	}
	return t
}

// Domain-separation constants for the per-fault sub-seeds, so the loss,
// jamming and churn processes draw from unrelated streams of one run seed.
const (
	lossSalt  = 0x6c6f7373_6d636e65 // "loss"
	jamSalt   = 0x6a616d6d_6d636e65 // "jamm"
	churnSalt = 0x63687572_6d636e65 // "chur"
	byzSalt   = 0x62797a61_6d636e65 // "byza"
)

// Tunables of the JamAdaptive bandit: per-slot score decay, and the seeded
// probability of exploring a fresh random k-subset instead of exploiting the
// best-scoring channels.
const (
	adaptiveDecay   = 0.75
	adaptiveExplore = 0.15
)

// neverCrashes is the crash slot of an immortal node: above any reachable
// slot index.
const neverCrashes = math.MaxInt

// Injector applies one Spec to one run. It implements the simulator's
// fault hook (sim.FaultInjector); all its methods are invoked from the
// engine goroutine or during setup, never concurrently.
//
// An Injector is single-use: build a fresh one per run, then read Report.
type Injector struct {
	spec     Spec
	channels int

	lossSeed uint64
	jamSeed  uint64
	byzSeed  uint64

	crashAt []int // per node, first dead slot (neverCrashes if immortal)

	jammed []int // channels jammed in the current slot (scratch)
	perm   []int // oblivious k-subset scratch, len == channels

	// Byzantine membership: byzNodes ascending for the report, isByz for
	// the per-transmission test. Both empty when the ByzSpec is zero.
	byzNodes []int
	isByz    []bool

	// Adaptive-adversary observations: delivered decode counts per channel
	// accumulated during the current slot's FilterReception pass, and the
	// bandit's decayed per-channel scores. Nil unless the model needs them.
	chanDecode []int
	chanScore  []float64

	slots    int
	lastSlot int

	delivered, lost    int
	jammedSlotChannels int
	corrupted, dropped int
}

// NewInjector builds the injector for one run: n nodes on the given channel
// count, faults seeded from the run seed, with horizon bounding the
// rate-based crash window when the spec leaves CrashUntil at 0. The spec
// must have passed Validate.
func NewInjector(spec Spec, seed uint64, n, channels, horizon int) *Injector {
	in := &Injector{
		spec:     spec,
		channels: channels,
		lossSeed: rng.Mix(seed, lossSalt),
		jamSeed:  rng.Mix(seed, jamSalt),
		byzSeed:  rng.Mix(seed, byzSalt),
		crashAt:  make([]int, n),
		lastSlot: -1,
	}
	if spec.JamChannels > 0 {
		in.perm = make([]int, channels)
		if spec.JamModel == JamReactive || spec.JamModel == JamAdaptive {
			in.chanDecode = make([]int, channels)
			if spec.JamModel == JamAdaptive {
				in.chanScore = make([]float64, channels)
			}
		}
	}
	if k := spec.Byz.size(n); k > 0 {
		in.byzNodes, in.isByz = selectByzantine(in.byzSeed, n, k)
	}
	for i := range in.crashAt {
		in.crashAt[i] = neverCrashes
	}
	for id, slot := range spec.CrashAt {
		if id >= 0 && id < n {
			in.crashAt[id] = slot
		}
	}
	if spec.CrashRate > 0 {
		from, until := spec.CrashFrom, spec.CrashUntil
		if until == 0 {
			until = horizon
		}
		if until <= from {
			until = from + 1
		}
		churnSeed := rng.Mix(seed, churnSalt)
		for i := 0; i < n; i++ {
			if in.crashAt[i] != neverCrashes {
				continue // explicit crash set wins
			}
			r := rng.New(rng.Mix(churnSeed, uint64(i)))
			if r.Float64() < spec.CrashRate {
				in.crashAt[i] = from + r.Intn(until-from)
			}
		}
	}
	return in
}

// selectByzantine picks the k Byzantine nodes of an n-node deployment: the
// k smallest values of hash(byzSeed, id), ties broken by the lower ID. An
// exact seeded k-subset — the same nodes for the same (seed, n, k) no matter
// how the run is scheduled or executed.
func selectByzantine(byzSeed uint64, n, k int) (nodes []int, isByz []bool) {
	ranked := make([]int, n)
	hash := make([]uint64, n)
	for i := 0; i < n; i++ {
		ranked[i] = i
		hash[i] = rng.Mix(byzSeed, uint64(i))
	}
	sort.Slice(ranked, func(a, b int) bool {
		ha, hb := hash[ranked[a]], hash[ranked[b]]
		if ha != hb {
			return ha < hb
		}
		return ranked[a] < ranked[b]
	})
	nodes = append(nodes, ranked[:k]...)
	sort.Ints(nodes)
	isByz = make([]bool, n)
	for _, id := range nodes {
		isByz[id] = true
	}
	return nodes, isByz
}

// BeginSlot runs before the slot is resolved: it reassigns the adversary's
// jammed channels on the field and advances the slot accounting. Reactive
// and adaptive models consume the previous slot's delivery observations
// here, then reset them for the coming slot.
func (in *Injector) BeginSlot(slot int, field *phy.Field) {
	in.slots++
	in.lastSlot = slot
	k := in.spec.JamChannels
	if k <= 0 {
		return
	}
	for _, c := range in.jammed {
		field.Jam(c, false)
	}
	in.jammed = in.jammed[:0]
	switch in.spec.JamModel {
	case JamRoundRobin:
		start := (slot * k) % in.channels
		for j := 0; j < k; j++ {
			in.jammed = append(in.jammed, (start+j)%in.channels)
		}
	case JamReactive:
		// Chase last slot's delivered traffic: jam the top-k channels by
		// decode count, ties to the lower index. With no history (first
		// slot, or an all-quiet slot) this degenerates to channels 0..k-1.
		in.jammed = topKChannels(in.jammed, k, func(c int) float64 { return float64(in.chanDecode[c]) }, in.channels)
	case JamAdaptive:
		// Fold last slot's observations into the decayed scores, then
		// ε-greedy: a per-slot seeded coin picks between exploring a fresh
		// random k-subset and exploiting the k best-scoring channels.
		for c := range in.chanScore {
			in.chanScore[c] = in.chanScore[c]*adaptiveDecay + float64(in.chanDecode[c])
		}
		r := rng.New(rng.Mix(in.jamSeed, uint64(slot)))
		if r.Float64() < adaptiveExplore {
			in.jammed = in.randomSubset(in.jammed, k, r)
		} else {
			in.jammed = topKChannels(in.jammed, k, func(c int) float64 { return in.chanScore[c] }, in.channels)
		}
	default: // JamOblivious
		// A fresh k-subset per slot via partial Fisher–Yates over a
		// per-slot seeded stream: deterministic in (seed, slot) alone.
		r := rng.New(rng.Mix(in.jamSeed, uint64(slot)))
		in.jammed = in.randomSubset(in.jammed, k, r)
	}
	if in.chanDecode != nil {
		for c := range in.chanDecode {
			in.chanDecode[c] = 0
		}
	}
	for _, c := range in.jammed {
		field.Jam(c, true)
	}
	in.jammedSlotChannels += len(in.jammed)
}

// randomSubset appends a k-subset of the channels to dst via partial
// Fisher–Yates over r, reusing in.perm as scratch.
func (in *Injector) randomSubset(dst []int, k int, r interface{ Intn(int) int }) []int {
	for i := range in.perm {
		in.perm[i] = i
	}
	for j := 0; j < k; j++ {
		swap := j + r.Intn(in.channels-j)
		in.perm[j], in.perm[swap] = in.perm[swap], in.perm[j]
		dst = append(dst, in.perm[j])
	}
	return dst
}

// topKChannels appends the k channels with the highest score to dst, ties
// broken toward the lower channel index — a deterministic selection over
// engine-observable state.
func topKChannels(dst []int, k int, score func(c int) float64, channels int) []int {
	for j := 0; j < k; j++ {
		best, bestScore := -1, math.Inf(-1)
		for c := 0; c < channels; c++ {
			taken := false
			for _, d := range dst {
				if d == c {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if s := score(c); s > bestScore {
				best, bestScore = c, s
			}
		}
		dst = append(dst, best)
	}
	return dst
}

// FilterTransmission runs once per transmission, in node order, before the
// slot is resolved. Honest nodes' traffic passes through untouched; a
// Byzantine transmitter's traffic is corrupted, equivocated, or dropped
// according to the strategy. Returning ok == false removes the transmission
// from the slot entirely (the silent traitor does not even radiate power).
func (in *Injector) FilterTransmission(slot int, tx phy.Tx) (phy.Tx, bool) {
	if in.isByz == nil || tx.Node < 0 || tx.Node >= len(in.isByz) || !in.isByz[tx.Node] {
		return tx, true
	}
	switch in.spec.Byz.Strategy {
	case ByzSilent:
		in.dropped++
		return tx, false
	case ByzEquivocate:
		if p, ok := tx.Msg.(Payload); ok {
			lie := rng.Mix(rng.Mix(rng.Mix(in.byzSeed, uint64(tx.Node)), uint64(slot)), uint64(tx.Channel))
			tx.Msg = p.WithPayloadValue(int64(lie % (1 << 20)))
			in.corrupted++
		}
	default: // ByzCorrupt
		if p, ok := tx.Msg.(Payload); ok {
			// A fixed per-node lie: the consistent liar tells everyone the
			// same wrong value for the whole run.
			lie := rng.Mix(in.byzSeed, uint64(tx.Node))
			tx.Msg = p.WithPayloadValue(int64(lie % (1 << 20)))
			in.corrupted++
		}
	}
	return tx, true
}

// FilterReception applies the loss process to one listener's outcome: a
// decoded message is suppressed with probability LossProb, decided by a pure
// hash of (seed, slot, node). A lost message degrades to sensed power —
// exactly how the SINR layer presents an undecodable transmission — so
// protocols cannot distinguish loss from collision. Deliveries that survive
// feed the reactive/adaptive jammers' per-channel observations.
func (in *Injector) FilterReception(slot, node, channel int, rec phy.Reception) phy.Reception {
	if !rec.Decoded {
		return rec
	}
	if p := in.spec.LossProb; p > 0 && unitFloat(rng.Mix(rng.Mix(in.lossSeed, uint64(slot)), uint64(node))) < p {
		in.lost++
		rec.Interference += rec.SignalPower
		rec.Decoded, rec.From, rec.Msg = false, -1, nil
		rec.SignalPower, rec.SINR = 0, 0
		return rec
	}
	in.delivered++
	if in.chanDecode != nil && channel >= 0 && channel < len(in.chanDecode) {
		in.chanDecode[channel]++
	}
	return rec
}

// CrashSlot returns the first slot at which node id is dead, or a value
// larger than any reachable slot if it never crashes.
func (in *Injector) CrashSlot(id int) int {
	if id < 0 || id >= len(in.crashAt) {
		return neverCrashes
	}
	return in.crashAt[id]
}

// Report summarizes the run so far.
func (in *Injector) Report() Report {
	rep := Report{
		Slots:              in.slots,
		Delivered:          in.delivered,
		Lost:               in.lost,
		JammedSlotChannels: in.jammedSlotChannels,
		ByzantineNodes:     append([]int(nil), in.byzNodes...),
		Corrupted:          in.corrupted,
		Dropped:            in.dropped,
	}
	for id, at := range in.crashAt {
		if at <= in.lastSlot {
			rep.CrashedNodes = append(rep.CrashedNodes, id)
		}
	}
	return rep
}

// unitFloat maps a 64-bit hash to [0, 1) with 53-bit resolution.
func unitFloat(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}
