// Package fault implements the deterministic fault and dynamics layer: it
// perturbs slot resolution with probabilistic message loss, adversarial
// channel jamming and node churn, while keeping every run a pure function of
// (seed, fault spec). The paper analyzes a static SINR network; this layer
// stress-tests the same schedules when links and nodes are not ideal.
//
// Every fault decision is derived by hashing (seed, slot, node) — never by
// consuming protocol randomness or shared mutable RNG state — so transcripts
// replay bit-identically regardless of goroutine scheduling, and a
// zero-intensity spec (no loss, no jam, no churn) is observationally
// identical to running without the layer at all.
//
// An Injector plugs into the simulator through the sim.FaultInjector hook:
// BeginSlot reconfigures per-slot channel jamming on the field,
// FilterReception suppresses decoded receptions chosen by the loss process,
// and CrashSlot tells each node's context when (if ever) the node dies.
package fault

import (
	"fmt"
	"math"
	"sort"

	"mcnet/internal/phy"
	"mcnet/internal/rng"
)

// JamModel selects the jamming adversary's channel-selection strategy.
type JamModel int

const (
	// JamOblivious draws the k jammed channels fresh each slot from a
	// seeded RNG independent of the execution — the oblivious adversary.
	JamOblivious JamModel = iota
	// JamRoundRobin sweeps a block of k consecutive channels cyclically
	// across the F channels, one step per slot — a deterministic adversary
	// that eventually disrupts every channel equally.
	JamRoundRobin
)

// String returns the model's mnemonic name.
func (m JamModel) String() string {
	switch m {
	case JamOblivious:
		return "oblivious"
	case JamRoundRobin:
		return "roundrobin"
	default:
		return fmt.Sprintf("JamModel(%d)", int(m))
	}
}

// Spec declares the faults of one run. The zero value injects nothing.
type Spec struct {
	// LossProb is the per-reception Bernoulli loss probability in [0, 1]:
	// each decoded message is independently suppressed with this
	// probability (the listener still senses its power, as under fading).
	LossProb float64

	// JamChannels is the number k of channels the adversary jams each slot
	// (0 disables jamming); JamModel picks how the k channels are chosen.
	// Nothing decodes on a jammed channel, but its power is still sensed.
	JamChannels int
	JamModel    JamModel

	// CrashAt maps node IDs to the first slot at which they are dead: from
	// that slot on the node performs no further radio actions.
	CrashAt map[int]int
	// CrashRate additionally crashes each remaining node independently
	// with this probability, at a seeded slot drawn uniformly from
	// [CrashFrom, CrashUntil). CrashUntil = 0 means the run's horizon.
	CrashRate             float64
	CrashFrom, CrashUntil int
}

// Zero reports whether the spec injects nothing: no loss, no jamming and no
// churn. A zero spec's injector is observationally identical to no injector.
func (s Spec) Zero() bool {
	return s.LossProb == 0 && s.JamChannels == 0 && len(s.CrashAt) == 0 && s.CrashRate == 0
}

// Validate checks the spec against a deployment of n nodes on the given
// channel count. Injectors assume a validated spec.
func (s Spec) Validate(n, channels int) error {
	if s.LossProb < 0 || s.LossProb > 1 || s.LossProb != s.LossProb {
		return fmt.Errorf("fault: loss probability %v must be in [0, 1]", s.LossProb)
	}
	if s.JamChannels < 0 {
		return fmt.Errorf("fault: jammed channel count %d must be ≥ 0", s.JamChannels)
	}
	if s.JamChannels >= channels && s.JamChannels > 0 {
		return fmt.Errorf("fault: jamming %d of %d channels leaves none usable", s.JamChannels, channels)
	}
	if s.JamModel != JamOblivious && s.JamModel != JamRoundRobin {
		return fmt.Errorf("fault: unknown jam model %d", int(s.JamModel))
	}
	if s.CrashRate < 0 || s.CrashRate > 1 || s.CrashRate != s.CrashRate {
		return fmt.Errorf("fault: crash rate %v must be in [0, 1]", s.CrashRate)
	}
	if s.CrashFrom < 0 {
		return fmt.Errorf("fault: crash window start %d must be ≥ 0", s.CrashFrom)
	}
	if s.CrashUntil != 0 && s.CrashUntil <= s.CrashFrom {
		return fmt.Errorf("fault: crash window [%d, %d) is empty", s.CrashFrom, s.CrashUntil)
	}
	for id, slot := range s.CrashAt {
		if id < 0 || id >= n {
			return fmt.Errorf("fault: crash set names node %d, deployment has %d nodes", id, n)
		}
		if slot < 0 {
			return fmt.Errorf("fault: node %d crash slot %d must be ≥ 0", id, slot)
		}
	}
	return nil
}

// Report summarizes what an Injector did during one run.
type Report struct {
	// Slots is the number of slots the injector observed.
	Slots int
	// Delivered counts decoded receptions handed to listeners; Lost counts
	// decoded receptions suppressed by the loss process. Their sum is every
	// successful decode of the underlying SINR layer (after jamming).
	Delivered, Lost int
	// JammedSlotChannels counts (slot, channel) pairs the adversary jammed.
	JammedSlotChannels int
	// CrashedNodes lists the nodes whose crash slot fell inside the run,
	// ascending.
	CrashedNodes []int
}

// Crashed reports whether node id crashed during the run.
func (r Report) Crashed(id int) bool {
	i := sort.SearchInts(r.CrashedNodes, id)
	return i < len(r.CrashedNodes) && r.CrashedNodes[i] == id
}

// SurvivorTally is the surviving-node correctness summary of one run: how
// many nodes outlived the faults, how many of those learned some aggregate,
// how many learned the reference value exactly, and the size of the largest
// set agreeing on a single value (the consensus notion that replaces
// exactness under churn, where nodes dying before contributing make the
// full-input fold unreachable).
type SurvivorTally struct {
	Survivors, Informed, Exact, Agreeing int
}

// TallySurvivors folds per-node outcomes into a SurvivorTally. node(i) must
// report whether node i learned a value and which; want is the reference
// aggregate for exactness. It is the single definition shared by the facade
// result and the experiment metrics, so the two cannot drift.
func (r Report) TallySurvivors(n int, node func(i int) (informed bool, value int64), want int64) SurvivorTally {
	t := SurvivorTally{Survivors: n - len(r.CrashedNodes)}
	agree := make(map[int64]int)
	for i := 0; i < n; i++ {
		informed, value := node(i)
		if !informed || r.Crashed(i) {
			continue
		}
		t.Informed++
		if value == want {
			t.Exact++
		}
		agree[value]++
	}
	for _, c := range agree {
		if c > t.Agreeing {
			t.Agreeing = c
		}
	}
	return t
}

// Domain-separation constants for the per-fault sub-seeds, so the loss,
// jamming and churn processes draw from unrelated streams of one run seed.
const (
	lossSalt  = 0x6c6f7373_6d636e65 // "loss"
	jamSalt   = 0x6a616d6d_6d636e65 // "jamm"
	churnSalt = 0x63687572_6d636e65 // "chur"
)

// neverCrashes is the crash slot of an immortal node: above any reachable
// slot index.
const neverCrashes = math.MaxInt

// Injector applies one Spec to one run. It implements the simulator's
// fault hook (sim.FaultInjector); all its methods are invoked from the
// engine goroutine or during setup, never concurrently.
//
// An Injector is single-use: build a fresh one per run, then read Report.
type Injector struct {
	spec     Spec
	channels int

	lossSeed uint64
	jamSeed  uint64

	crashAt []int // per node, first dead slot (neverCrashes if immortal)

	jammed []int // channels jammed in the current slot (scratch)
	perm   []int // oblivious k-subset scratch, len == channels

	slots    int
	lastSlot int

	delivered, lost    int
	jammedSlotChannels int
}

// NewInjector builds the injector for one run: n nodes on the given channel
// count, faults seeded from the run seed, with horizon bounding the
// rate-based crash window when the spec leaves CrashUntil at 0. The spec
// must have passed Validate.
func NewInjector(spec Spec, seed uint64, n, channels, horizon int) *Injector {
	in := &Injector{
		spec:     spec,
		channels: channels,
		lossSeed: rng.Mix(seed, lossSalt),
		jamSeed:  rng.Mix(seed, jamSalt),
		crashAt:  make([]int, n),
		lastSlot: -1,
	}
	if spec.JamChannels > 0 {
		in.perm = make([]int, channels)
	}
	for i := range in.crashAt {
		in.crashAt[i] = neverCrashes
	}
	for id, slot := range spec.CrashAt {
		if id >= 0 && id < n {
			in.crashAt[id] = slot
		}
	}
	if spec.CrashRate > 0 {
		from, until := spec.CrashFrom, spec.CrashUntil
		if until == 0 {
			until = horizon
		}
		if until <= from {
			until = from + 1
		}
		churnSeed := rng.Mix(seed, churnSalt)
		for i := 0; i < n; i++ {
			if in.crashAt[i] != neverCrashes {
				continue // explicit crash set wins
			}
			r := rng.New(rng.Mix(churnSeed, uint64(i)))
			if r.Float64() < spec.CrashRate {
				in.crashAt[i] = from + r.Intn(until-from)
			}
		}
	}
	return in
}

// BeginSlot runs before the slot is resolved: it reassigns the adversary's
// jammed channels on the field and advances the slot accounting.
func (in *Injector) BeginSlot(slot int, field *phy.Field) {
	in.slots++
	in.lastSlot = slot
	k := in.spec.JamChannels
	if k <= 0 {
		return
	}
	for _, c := range in.jammed {
		field.Jam(c, false)
	}
	in.jammed = in.jammed[:0]
	switch in.spec.JamModel {
	case JamRoundRobin:
		start := (slot * k) % in.channels
		for j := 0; j < k; j++ {
			in.jammed = append(in.jammed, (start+j)%in.channels)
		}
	default: // JamOblivious
		// A fresh k-subset per slot via partial Fisher–Yates over a
		// per-slot seeded stream: deterministic in (seed, slot) alone.
		r := rng.New(rng.Mix(in.jamSeed, uint64(slot)))
		for i := range in.perm {
			in.perm[i] = i
		}
		for j := 0; j < k; j++ {
			swap := j + r.Intn(in.channels-j)
			in.perm[j], in.perm[swap] = in.perm[swap], in.perm[j]
			in.jammed = append(in.jammed, in.perm[j])
		}
	}
	for _, c := range in.jammed {
		field.Jam(c, true)
	}
	in.jammedSlotChannels += len(in.jammed)
}

// FilterReception applies the loss process to one listener's outcome: a
// decoded message is suppressed with probability LossProb, decided by a pure
// hash of (seed, slot, node). A lost message degrades to sensed power —
// exactly how the SINR layer presents an undecodable transmission — so
// protocols cannot distinguish loss from collision.
func (in *Injector) FilterReception(slot, node int, rec phy.Reception) phy.Reception {
	if !rec.Decoded {
		return rec
	}
	if p := in.spec.LossProb; p > 0 && unitFloat(rng.Mix(rng.Mix(in.lossSeed, uint64(slot)), uint64(node))) < p {
		in.lost++
		rec.Interference += rec.SignalPower
		rec.Decoded, rec.From, rec.Msg = false, -1, nil
		rec.SignalPower, rec.SINR = 0, 0
		return rec
	}
	in.delivered++
	return rec
}

// CrashSlot returns the first slot at which node id is dead, or a value
// larger than any reachable slot if it never crashes.
func (in *Injector) CrashSlot(id int) int {
	if id < 0 || id >= len(in.crashAt) {
		return neverCrashes
	}
	return in.crashAt[id]
}

// Report summarizes the run so far.
func (in *Injector) Report() Report {
	rep := Report{
		Slots:              in.slots,
		Delivered:          in.delivered,
		Lost:               in.lost,
		JammedSlotChannels: in.jammedSlotChannels,
	}
	for id, at := range in.crashAt {
		if at <= in.lastSlot {
			rep.CrashedNodes = append(rep.CrashedNodes, id)
		}
	}
	return rep
}

// unitFloat maps a 64-bit hash to [0, 1) with 53-bit resolution.
func unitFloat(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}
