// Package topology generates node placements for the experiment suite.
//
// All generators are deterministic functions of their explicit *rand.Rand
// (or parameter-free), so experiments are reproducible from a seed.
package topology

import (
	"math"
	"math/rand"

	"mcnet/internal/geo"
	"mcnet/internal/rng"
)

// LayoutRand derives the topology-generation stream from a run seed, kept
// separate from the protocol seed space. Both the experiment suite and the
// public facade use it, so equal seeds yield equal layouts everywhere.
func LayoutRand(seed uint64) *rand.Rand {
	return rng.New(rng.Mix(seed, 0x70706f6c6f6779)) // "topology"
}

// Uniform places n points uniformly at random in a width × height rectangle.
func Uniform(r *rand.Rand, n int, width, height float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: r.Float64() * width, Y: r.Float64() * height}
	}
	return pts
}

// UniformSide returns the square side that gives an expected targetDegree
// radius-neighbors for n uniform points, plus the sanitized degree actually
// used (out-of-range targets fall back to min(12, n-1)).
func UniformSide(n int, radius, targetDegree float64) (side, degree float64) {
	if targetDegree <= 0 || targetDegree > float64(n-1) {
		targetDegree = math.Min(12, float64(n-1))
	}
	area := float64(n) * math.Pi * radius * radius / targetDegree
	return math.Sqrt(area), targetDegree
}

// UniformDegree places n points uniformly in a square sized so that the
// expected number of radius-neighbors of an interior point is approximately
// targetDegree. It is the workhorse topology for aggregation experiments:
// fixing targetDegree keeps Δ roughly constant as n grows.
func UniformDegree(r *rand.Rand, n int, radius, targetDegree float64) []geo.Point {
	side, _ := UniformSide(n, radius, targetDegree)
	return Uniform(r, n, side, side)
}

// PerturbedGrid places n points on a √n × √n grid with the given spacing,
// each jittered uniformly by ±jitter in both axes.
func PerturbedGrid(r *rand.Rand, n int, spacing, jitter float64) []geo.Point {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geo.Point, n)
	for i := range pts {
		x := float64(i%cols) * spacing
		y := float64(i/cols) * spacing
		pts[i] = geo.Point{
			X: x + (r.Float64()*2-1)*jitter,
			Y: y + (r.Float64()*2-1)*jitter,
		}
	}
	return pts
}

// Crowd places n points inside one square of half-width rc/2 around the
// origin (node 0 sits at the origin): a single-cluster, Δ = n-1 workload
// isolating the Δ/F term when rc is the model's cluster radius.
func Crowd(r *rand.Rand, n int, rc float64) []geo.Point {
	pos := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pos[i] = geo.Point{
			X: (r.Float64()*2 - 1) * rc / 2,
			Y: (r.Float64()*2 - 1) * rc / 2,
		}
	}
	return pos
}

// Hotspot places clusters of points: centers uniform in a span × span square,
// members Gaussian around their center with the given standard deviation.
// It produces the high-Δ, uneven-density workloads that stress cluster-size
// approximation.
func Hotspot(r *rand.Rand, clusters, perCluster int, span, stddev float64) []geo.Point {
	pts := make([]geo.Point, 0, clusters*perCluster)
	for c := 0; c < clusters; c++ {
		center := geo.Point{X: r.Float64() * span, Y: r.Float64() * span}
		for i := 0; i < perCluster; i++ {
			pts = append(pts, geo.Point{
				X: center.X + r.NormFloat64()*stddev,
				Y: center.Y + r.NormFloat64()*stddev,
			})
		}
	}
	return pts
}

// Line places n points on the x-axis with the given spacing. With spacing
// slightly below the communication radius it yields diameter n-1.
func Line(n int, spacing float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * spacing}
	}
	return pts
}

// Corridor places n points uniformly in a length × width strip; with width
// below the communication radius it produces large-diameter topologies with
// nontrivial local density, for the D-term experiment.
func Corridor(r *rand.Rand, n int, length, width float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: r.Float64() * length, Y: r.Float64() * width}
	}
	return pts
}

// ExponentialChain places points at x_i = scale·2^i, i = 0..n-1: the paper's
// lower-bound instance (Sec. 1), on which uniform power admits at most one
// successful reception per slot when β ≥ 2^{1/α}. Beware of float overflow:
// n must be at most 1000 or so.
func ExponentialChain(n int, scale float64) []geo.Point {
	pts := make([]geo.Point, n)
	x := scale
	for i := range pts {
		pts[i] = geo.Point{X: x}
		x *= 2
	}
	return pts
}

// Star places one hub at the origin and n-1 points uniformly in the ball of
// the given radius around it: a single-cluster, Δ = n-1 topology isolating
// the Δ/F term.
func Star(r *rand.Rand, n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		for {
			p := geo.Point{
				X: (r.Float64()*2 - 1) * radius,
				Y: (r.Float64()*2 - 1) * radius,
			}
			if p.Dist(geo.Point{}) <= radius {
				pts[i] = p
				break
			}
		}
	}
	return pts
}

// Ring places n points evenly on a circle of the given radius.
func Ring(n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geo.Point{X: radius * math.Cos(a), Y: radius * math.Sin(a)}
	}
	return pts
}
