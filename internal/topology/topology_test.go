package topology

import (
	"math"
	"math/rand"
	"testing"

	"mcnet/internal/geo"
)

func TestUniformInBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := Uniform(r, 500, 10, 5)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 5 {
			t.Fatalf("point out of bounds: %v", p)
		}
	}
}

func TestUniformDegreeCalibration(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n, radius, target = 2000, 1.0, 12.0
	pts := UniformDegree(r, n, radius, target)
	g := geo.NewGrid(pts, radius)
	total := 0
	for _, p := range pts {
		total += g.CountNeighbors(p, radius) - 1
	}
	avg := float64(total) / n
	// Boundary effects pull the mean below target; accept a wide band.
	if avg < target/2 || avg > target*1.5 {
		t.Errorf("avg degree = %v, want ≈ %v", avg, target)
	}
}

func TestUniformDegreeBadTarget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := UniformDegree(r, 50, 1, -5) // falls back to a sane default
	if len(pts) != 50 {
		t.Fatal("bad target should still generate")
	}
}

func TestPerturbedGrid(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := PerturbedGrid(r, 100, 2, 0.1)
	if len(pts) != 100 {
		t.Fatalf("len = %d", len(pts))
	}
	// Each point stays within jitter of its lattice site.
	for i, p := range pts {
		lx := float64(i%10) * 2
		ly := float64(i/10) * 2
		if math.Abs(p.X-lx) > 0.1+1e-12 || math.Abs(p.Y-ly) > 0.1+1e-12 {
			t.Fatalf("point %d strayed: %v vs (%v,%v)", i, p, lx, ly)
		}
	}
}

func TestHotspotCount(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := Hotspot(r, 7, 13, 50, 0.5)
	if len(pts) != 7*13 {
		t.Fatalf("len = %d, want %d", len(pts), 7*13)
	}
}

func TestLine(t *testing.T) {
	pts := Line(4, 2.5)
	for i, p := range pts {
		if p.Y != 0 || p.X != 2.5*float64(i) {
			t.Fatalf("point %d = %v", i, p)
		}
	}
}

func TestExponentialChain(t *testing.T) {
	pts := ExponentialChain(10, 1)
	for i, p := range pts {
		want := math.Pow(2, float64(i))
		if math.Abs(p.X-want) > 1e-9 {
			t.Fatalf("x_%d = %v, want %v", i, p.X, want)
		}
	}
	// Consecutive gaps double: d(i, i+1) = 2^i.
	for i := 0; i+1 < len(pts); i++ {
		if got := pts[i].Dist(pts[i+1]); math.Abs(got-math.Pow(2, float64(i))) > 1e-9 {
			t.Fatalf("gap %d = %v", i, got)
		}
	}
}

func TestStar(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pts := Star(r, 200, 0.4)
	if pts[0] != (geo.Point{}) {
		t.Error("hub should sit at origin")
	}
	for i, p := range pts {
		if p.Dist(geo.Point{}) > 0.4 {
			t.Fatalf("point %d outside star radius: %v", i, p)
		}
	}
}

func TestRing(t *testing.T) {
	pts := Ring(8, 3)
	for i, p := range pts {
		if math.Abs(p.Dist(geo.Point{})-3) > 1e-9 {
			t.Fatalf("point %d not on circle: %v", i, p)
		}
	}
	// Evenly spaced: all consecutive gaps equal.
	gap := pts[0].Dist(pts[1])
	for i := 1; i < 8; i++ {
		if math.Abs(pts[i].Dist(pts[(i+1)%8])-gap) > 1e-9 {
			t.Fatal("uneven ring spacing")
		}
	}
}

func TestDeterministicGenerators(t *testing.T) {
	a := Uniform(rand.New(rand.NewSource(9)), 50, 10, 10)
	b := Uniform(rand.New(rand.NewSource(9)), 50, 10, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce placement")
		}
	}
}
