package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapResumeSkipsLandedIndices: recovered indices are never re-executed
// and the final slice matches the fresh Map at every worker count.
func TestMapResumeSkipsLandedIndices(t *testing.T) {
	const n = 60
	want := make([]int, n)
	for i := range want {
		want[i] = i * 3
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 9} {
		// Everything below the prefix plus a scattered set has landed.
		landed := func(i int) bool { return i < 17 || i%7 == 3 }
		var executed sync.Map
		got, err := MapResume(context.Background(), Pool{Workers: workers}, n,
			func(i int) (int, bool) {
				if landed(i) {
					return i * 3, true
				}
				return 0, false
			},
			func(_ context.Context, i int) (int, error) {
				if _, dup := executed.LoadOrStore(i, true); dup {
					t.Errorf("workers=%d: item %d executed twice", workers, i)
				}
				return i * 3, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
		executed.Range(func(k, _ any) bool {
			if landed(k.(int)) {
				t.Errorf("workers=%d: landed item %d re-executed", workers, k)
			}
			return true
		})
	}
}

// TestMapResumeAllLanded: a fully recovered batch executes nothing and
// still returns the complete slice.
func TestMapResumeAllLanded(t *testing.T) {
	got, err := MapResume(context.Background(), Pool{Workers: 4}, 10,
		func(i int) (int, bool) { return i + 100, true },
		func(_ context.Context, i int) (int, error) {
			t.Errorf("item %d executed in a fully recovered batch", i)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+100 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i+100)
		}
	}
}

// TestRunResumeProgressMonotonic: across a resume, the progress sequence
// starts at the recovered count, increases strictly one at a time, and
// ends at (n, n) — exactly like a fresh run's tail.
func TestRunResumeProgressMonotonic(t *testing.T) {
	const n, pre = 24, 9
	var mu sync.Mutex
	var seq [][2]int
	p := Pool{Workers: 3, Progress: func(done, total int) {
		mu.Lock()
		seq = append(seq, [2]int{done, total})
		mu.Unlock()
	}}
	err := p.RunResume(context.Background(), n,
		func(i int) bool { return i < pre },
		func(context.Context, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != n-pre+1 {
		t.Fatalf("%d progress calls, want %d", len(seq), n-pre+1)
	}
	if seq[0] != [2]int{pre, n} {
		t.Fatalf("first progress call %v, want (%d, %d)", seq[0], pre, n)
	}
	for k := 1; k < len(seq); k++ {
		if seq[k][0] != seq[k-1][0]+1 || seq[k][1] != n {
			t.Fatalf("progress not monotonic at call %d: %v", k, seq)
		}
	}
	if last := seq[len(seq)-1]; last != [2]int{n, n} {
		t.Fatalf("final progress call %v, want (%d, %d)", last, n, n)
	}
}

// TestProgressMonotonicUnderCancellation: when the batch is cancelled
// mid-flight, whatever progress was reported is still strictly increasing
// and never exceeds the item count — no double counting, no regression,
// at several worker counts.
func TestProgressMonotonicUnderCancellation(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		var seq []int
		var ran atomic.Int64
		p := Pool{Workers: workers, Progress: func(done, total int) {
			mu.Lock()
			seq = append(seq, done)
			mu.Unlock()
			if total != n {
				t.Errorf("workers=%d: progress total %d, want %d", workers, total, n)
			}
		}}
		err := p.Run(ctx, n, func(context.Context, int) error {
			if ran.Add(1) == 20 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		mu.Lock()
		for k := 1; k < len(seq); k++ {
			if seq[k] != seq[k-1]+1 {
				t.Fatalf("workers=%d: progress sequence not monotonic: %v", workers, seq)
			}
		}
		if len(seq) > 0 && seq[len(seq)-1] > n {
			t.Fatalf("workers=%d: progress exceeded total: %v", workers, seq)
		}
		mu.Unlock()
	}
}

// TestRunResumeErrorPropagates: errors in the re-executed remainder keep
// Run's first-error contract.
func TestRunResumeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	err := Pool{Workers: 2}.RunResume(context.Background(), 10,
		func(i int) bool { return i%2 == 0 },
		func(_ context.Context, i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
