// Package batch executes sets of independent run closures across a worker
// pool with deterministic result placement.
//
// The simulator's sweeps — fault grids, experiment axes, seeded
// repetitions — are embarrassingly parallel: every (grid point × seed) run
// is a pure function of its inputs. This package supplies the one
// orchestration primitive they all share: hand N independent closures to a
// Pool and get back exactly the results a serial loop would have produced,
// in exactly the same order, at any worker count. Results land by index,
// never by completion order, so callers fold them with the same arithmetic
// (and the same float ordering) as the sequential code they replaced —
// emitted tables stay byte-identical while wall-clock scales with cores.
package batch

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool executes independent closures across a fixed set of worker
// goroutines. The zero value is ready to use: it sizes the pool by
// GOMAXPROCS and reports no progress.
type Pool struct {
	// Workers is the number of concurrent workers; 0 (the default) means
	// GOMAXPROCS, 1 forces serial execution. The worker count never affects
	// results, only wall-clock time.
	Workers int
	// Progress, when non-nil, is called after every completed item with the
	// number of items finished so far and the total. Calls are serialized
	// but arrive on worker goroutines in completion order; the callback
	// must be fast and must not block.
	Progress func(done, total int)
}

// workers resolves the configured worker count against the item count.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run invokes fn(ctx, i) for every i in [0, n) across the pool and waits
// for all invocations to finish before returning. Items are claimed in
// index order; callers that need per-item results write them into a slice
// at index i (or use Map), so output placement is deterministic at every
// worker count.
//
// The first error stops the batch: no new items start, in-flight items run
// to completion, and that error is returned once every worker has exited —
// Run never leaks goroutines. When several items fail concurrently, which
// error surfaces is unspecified (run with Workers = 1 for the serial,
// lowest-index error). If ctx is cancelled, Run returns ctx.Err() — workers
// observe the cancellation between items, and fn receives a context that is
// cancelled with it, so runs that honor their context abort promptly
// mid-item too.
func (p Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.RunResume(ctx, n, nil, fn)
}

// RunResume is Run for a partially completed batch: indices for which
// done(i) reports true are skipped — their work landed durably in an
// earlier attempt — and only the remainder executes. A nil done resumes
// nothing (it is exactly Run).
//
// done is consulted once per index before any item starts, so it may read
// mutable recovery state without synchronizing against the workers. The
// Progress callback stays monotonic across the resume: already-done items
// are reported as completed (one call with their total) before the first
// new item runs, and each executed item advances the count from there, so
// a resumed batch's progress sequence ends at (n, n) exactly like a fresh
// one.
func (p Pool) RunResume(ctx context.Context, n int, done func(i int) bool, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var skip []bool
	pre := 0
	if done != nil {
		skip = make([]bool, n)
		for i := 0; i < n; i++ {
			if done(i) {
				skip[i] = true
				pre++
			}
		}
	}
	if p.Progress != nil && pre > 0 {
		p.Progress(pre, n)
	}
	if pre == n {
		return ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	completed := pre
	for w := p.workers(n - pre); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || runCtx.Err() != nil {
					return
				}
				if skip != nil && skip[i] {
					continue
				}
				if err := fn(runCtx, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				completed++
				if p.Progress != nil {
					p.Progress(completed, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// The caller's cancellation outranks whatever error the abort produced
	// inside individual runs.
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// Map invokes fn(ctx, i) for every i in [0, n) across the pool and returns
// the results indexed by i — the parallel equivalent of a serial
// collect-into-a-slice loop, byte-identical at every worker count. On error
// the partial results are discarded and Run's error contract applies.
func Map[T any](ctx context.Context, p Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapResume(ctx, p, n, nil, fn)
}

// MapResume is Map for a partially completed batch: indices for which
// have(i) reports (value, true) are prefilled with that recovered value
// and never re-executed; only the remainder runs. The returned slice is
// identical to what Map over all n items would have produced, provided
// the recovered values are the ones those items compute — which holds by
// construction when items are deterministic, the property every sweep in
// this module guarantees. A nil have recovers nothing (it is exactly Map).
func MapResume[T any](ctx context.Context, p Pool, n int, have func(i int) (T, bool), fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	var recovered []bool
	if have != nil {
		recovered = make([]bool, n)
		for i := 0; i < n; i++ {
			if v, ok := have(i); ok {
				out[i] = v
				recovered[i] = true
			}
		}
	}
	var done func(i int) bool
	if recovered != nil {
		done = func(i int) bool { return recovered[i] }
	}
	err := p.RunResume(ctx, n, done, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
