package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderedResults checks that results land by index at every worker
// count, identically to the serial loop.
func TestMapOrderedResults(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 7, runtime.GOMAXPROCS(0)} {
		got, err := Map(context.Background(), Pool{Workers: workers}, n,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunUsesAllWorkers checks that items genuinely run concurrently.
func TestRunUsesAllWorkers(t *testing.T) {
	const workers = 4
	var peak, cur atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := Pool{Workers: workers}.Run(context.Background(), workers, func(context.Context, int) error {
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		if peak.Load() == workers {
			once.Do(func() { close(release) })
		}
		select {
		case <-release:
		case <-time.After(5 * time.Second):
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != workers {
		t.Fatalf("peak concurrency = %d, want %d", peak.Load(), workers)
	}
}

// TestFirstErrorStopsBatch checks that an error halts new work and is
// propagated.
func TestFirstErrorStopsBatch(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	err := Pool{Workers: 1}.Run(context.Background(), 100, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := started.Load(); got != 4 {
		t.Fatalf("serial pool started %d items after error at index 3, want 4", got)
	}
}

// TestCancellationPrompt checks that cancelling the context mid-batch
// returns ctx.Err() promptly and leaks no goroutines, even while items are
// blocked on work that honors the context.
func TestCancellationPrompt(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	var entered sync.WaitGroup
	entered.Add(2)
	go func() {
		errc <- Pool{Workers: 2}.Run(ctx, 64, func(runCtx context.Context, i int) error {
			if i < 2 {
				entered.Done()
			}
			select {
			case <-runCtx.Done():
				return runCtx.Err()
			case <-time.After(10 * time.Second):
				return fmt.Errorf("item %d never saw cancellation", i)
			}
		})
	}()
	entered.Wait()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return within 2s of cancellation")
	}
	// Workers must all have exited: allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines grew from %d to %d after cancelled batch", before, now)
	}
}

// TestPreCancelledContext checks that an already-cancelled context runs
// nothing.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Pool{}.Run(ctx, 10, func(context.Context, int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("item ran under a pre-cancelled context")
	}
}

// TestProgressSerialized checks the callback fires once per item, is never
// concurrent, and reaches (n, n).
func TestProgressSerialized(t *testing.T) {
	const n = 50
	var inCallback atomic.Int64
	var calls int
	last := 0
	p := Pool{Workers: 4, Progress: func(done, total int) {
		if inCallback.Add(1) != 1 {
			t.Error("progress callback ran concurrently")
		}
		defer inCallback.Add(-1)
		calls++
		if done < 1 || done > n || total != n {
			t.Errorf("progress(%d, %d) out of range", done, total)
		}
		if done <= last {
			t.Errorf("progress done went %d -> %d, want strictly increasing", last, done)
		}
		last = done
	}}
	if err := p.Run(context.Background(), n, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != n || last != n {
		t.Fatalf("progress calls = %d (last done %d), want %d", calls, last, n)
	}
}

// TestEmptyBatch checks the degenerate sizes.
func TestEmptyBatch(t *testing.T) {
	for _, n := range []int{0, -1} {
		err := (Pool{}).Run(context.Background(), n, func(context.Context, int) error {
			t.Fatal("fn called for empty batch")
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
