package mcnet

import (
	"context"
	"testing"
)

// benchSweep is the BenchmarkScenarioSweep workload: a multi-seed fault
// grid (2 loss × 2 jam points, 4 seeds each = 16 runs) of the kind
// mcscenario executes, small enough for the CI tripwire's -benchtime=1x
// and large enough that batch-level parallelism dominates per-run noise.
func benchSweep(workers int) Scenario {
	return Scenario{
		Name:    "bench",
		N:       64,
		Loss:    []float64{0, 0.05},
		Jam:     []int{0, 1},
		Seeds:   4,
		Workers: workers,
	}
}

// BenchmarkScenarioSweep measures the batch execution layer end to end:
// the identical sweep run serially (Workers=1) and across the default
// worker pool (Workers=0 = GOMAXPROCS). Both emit byte-identical tables —
// see TestRunScenarioParallelIdentity — so the ns/op gap is pure
// orchestration speedup. The serial/parallel pair feeds the benchdiff
// tripwire, which guards both the per-run cost and the pool's scaling.
//
// Run with: go test -bench=BenchmarkScenarioSweep -benchtime=1x
func BenchmarkScenarioSweep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sc := benchSweep(bc.workers)
			for i := 0; i < b.N; i++ {
				if _, err := RunScenario(context.Background(), sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
