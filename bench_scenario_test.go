package mcnet

import (
	"context"
	"runtime"
	"testing"
)

// benchSweep is the BenchmarkScenarioSweep workload: a multi-seed fault
// grid (2 loss × 2 jam points, 4 seeds each = 16 runs) of the kind
// mcscenario executes, small enough for the CI tripwire's -benchtime=1x
// and large enough that batch-level parallelism dominates per-run noise.
func benchSweep(workers int) Scenario {
	return Scenario{
		Name:    "bench",
		N:       64,
		Loss:    []float64{0, 0.05},
		Jam:     []int{0, 1},
		Seeds:   4,
		Workers: workers,
	}
}

// BenchmarkScenarioSweep measures the batch execution layer end to end:
// the identical sweep run serially (Workers=1) and across the default
// worker pool (Workers=0 = GOMAXPROCS). Both emit byte-identical tables —
// see TestRunScenarioParallelIdentity — so the ns/op gap is pure
// orchestration speedup. The serial/parallel pair feeds the benchdiff
// tripwire, which guards both the per-run cost and the pool's scaling.
//
// The bench does not pin workers: when the committed baseline shows the
// parallel leg matching the serial one (as the pre-refactor baseline did,
// 1.33 s vs 1.35 s), the machine recording it had GOMAXPROCS=1, where
// Workers=0 resolves to a single pool worker and the two legs coincide by
// construction — the sweep's 16 runs are fully independent and scale with
// cores. The procs metric records the recording machine's core count so a
// flat serial/parallel pair is attributable at a glance; on any multi-core
// runner the parallel leg demonstrates the pool's win directly.
//
// Run with: go test -bench=BenchmarkScenarioSweep -benchtime=1x
func BenchmarkScenarioSweep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sc := benchSweep(bc.workers)
			runs := len(sc.Loss) * len(sc.Jam) * sc.Seeds
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunScenario(context.Background(), sc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
			b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}
