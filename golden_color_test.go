package mcnet

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the coloring golden file from current output")

// goldenColorRun freezes everything observable about one default-backend
// Color run: the full per-node result vector plus the validation summary and
// slot accounting. The sec7 backend must keep reproducing these bytes
// exactly — the refactor behind the Colorer interface is required to leave
// the default path bit-identical.
type goldenColorRun struct {
	Name       string      `json:"name"`
	Nodes      []NodeColor `json:"nodes"`
	Palette    int         `json:"palette"`
	Conflicts  int         `json:"conflicts"`
	Uncolored  int         `json:"uncolored"`
	Slots      int         `json:"slots"`
	ColorSlots int         `json:"color_slots"`
}

// goldenColorCases spans the topology suite at mixed channel counts and
// seeds, so the frozen transcript covers every structure-construction shape.
func goldenColorCases(t *testing.T) []struct {
	name string
	n    int
	opts []Option
} {
	t.Helper()
	return []struct {
		name string
		n    int
		opts []Option
	}{
		{"crowd_n40_f4_s11", 40, []Option{Seed(11), Channels(4)}},
		{"uniform_n64_f4_s3", 64, []Option{Seed(3), Channels(4), WithTopology(Uniform(12))}},
		{"grid_n49_f2_s5", 49, []Option{Seed(5), Channels(2), WithTopology(Grid)}},
		{"line_n32_f4_s7", 32, []Option{Seed(7), Channels(4), WithTopology(Line(0.7))}},
		{"ring_n32_f2_s9", 32, []Option{Seed(9), Channels(2), WithTopology(Ring(0.7))}},
	}
}

// TestColorGoldenSec7 runs the default coloring backend over the golden
// cases and compares every per-node color, index, cluster color and role —
// plus palette/conflict/slot accounting — against the committed pre-refactor
// output. Regenerate with -update-golden (only when an intentional behavior
// change to the default path is being made).
func TestColorGoldenSec7(t *testing.T) {
	path := filepath.Join("testdata", "golden_color_sec7.json")
	var runs []goldenColorRun
	for _, tc := range goldenColorCases(t) {
		nw, err := New(tc.n, tc.opts...)
		if err != nil {
			t.Fatalf("%s: New: %v", tc.name, err)
		}
		res, err := nw.Color(context.Background())
		if err != nil {
			t.Fatalf("%s: Color: %v", tc.name, err)
		}
		runs = append(runs, goldenColorRun{
			Name:       tc.name,
			Nodes:      res.Nodes,
			Palette:    res.Palette,
			Conflicts:  res.Conflicts,
			Uncolored:  res.Uncolored,
			Slots:      res.Slots,
			ColorSlots: res.ColorSlots,
		})
	}

	if *updateGolden {
		data, err := json.MarshalIndent(runs, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d runs)", path, len(runs))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want []goldenColorRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if len(want) != len(runs) {
		t.Fatalf("golden file has %d runs, current suite has %d", len(want), len(runs))
	}
	for i, w := range want {
		g := runs[i]
		if g.Name != w.Name {
			t.Errorf("run %d: name %q, golden %q", i, g.Name, w.Name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			if !reflect.DeepEqual(g.Nodes, w.Nodes) {
				for j := range w.Nodes {
					if j < len(g.Nodes) && g.Nodes[j] != w.Nodes[j] {
						t.Errorf("%s: node %d = %+v, golden %+v", w.Name, j, g.Nodes[j], w.Nodes[j])
						break
					}
				}
			}
			t.Errorf("%s: summary {palette %d conflicts %d uncolored %d slots %d colorSlots %d}, golden {%d %d %d %d %d}",
				w.Name, g.Palette, g.Conflicts, g.Uncolored, g.Slots, g.ColorSlots,
				w.Palette, w.Conflicts, w.Uncolored, w.Slots, w.ColorSlots)
		}
	}
}
