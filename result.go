package mcnet

import (
	"mcnet/internal/backbone"
	"mcnet/internal/coloring"
	"mcnet/internal/core"
)

// Event is a progress record streamed from a run: a node reached a named
// milestone at a slot. Observers registered via Network.Events receive
// every event as it happens; results also summarize them per stage.
type Event struct {
	// Slot is the global slot timestamp.
	Slot int
	// Node is the emitting node's index.
	Node int
	// Name is the milestone (see the Event* constants).
	Name string
	// Value is milestone-specific (e.g. the color for EventColored).
	Value int
}

// Milestone names carried by Event (aliases of the emitting stages'
// constants, so facade and pipeline cannot drift apart).
const (
	// EventAcked fires when a follower's value is first acknowledged by a
	// reporter (the Δ/F contention mechanism).
	EventAcked = core.EventAcked
	// EventClusterAgg fires at a dominator once its cluster aggregate is
	// complete.
	EventClusterAgg = core.EventClusterAgg
	// EventBackboneAgg fires when the backbone root completes the
	// network-wide aggregate.
	EventBackboneAgg = backbone.EventAgg
	// EventBackboneResult fires when a dominator learns the final result
	// over the backbone.
	EventBackboneResult = backbone.EventResult
	// EventInformed fires when a node learns the final aggregate.
	EventInformed = core.EventInformed
	// EventColored fires when a node learns its final color (Color runs).
	EventColored = coloring.EventColored
)

// StageReport pairs one pipeline stage's slot budget with the completion
// events observed inside it.
type StageReport struct {
	// Name is the stage (dominate, color, announce, csa, elect, followers,
	// tree, backbone, inform).
	Name string
	// Start and End delimit the stage's budgeted slot window [Start, End).
	Start, End int
	// Events is how many milestone events fired within the window.
	Events int
	// LastEvent is the slot of the window's last milestone event, or -1 if
	// none fired: the observed completion time vs. the budgeted End.
	LastEvent int
}

// NodeResult is one node's outcome of an Aggregate run.
type NodeResult struct {
	// Value is the aggregate the node learned; Informed reports whether it
	// learned one.
	Value    int64
	Informed bool
	// IsDominator and IsReporter describe the node's structure role;
	// Dominator is its cluster head's index.
	IsDominator, IsReporter bool
	Dominator               int
	// ClusterColor is the cluster's TDMA color, SizeEstimate the cluster's
	// CSA size estimate, Channel the node's elected channel (-1 for
	// dominators).
	ClusterColor, SizeEstimate, Channel int
}

// AggregateResult is the outcome of Network.Aggregate.
type AggregateResult struct {
	// Value is the true fold of the inputs (the reference the network is
	// expected to learn).
	Value int64
	// Nodes holds the per-node outcomes.
	Nodes []NodeResult

	// Informed counts nodes that learned some aggregate, Exact those that
	// learned Value.
	Informed, Exact int
	// Dominators, Reporters and Followers count structure roles.
	Dominators, Reporters, Followers int

	// Slots is the number of slots the run actually consumed; BudgetSlots
	// is the schedule's conservative envelope; BuildSlots is the envelope
	// of structure construction (stages 1–5).
	Slots, BudgetSlots, BuildSlots int
	// AckSlots is when the last follower's value was acknowledged and
	// AggSlots when the last dominator knew the final aggregate, both
	// measured from the start of the aggregation phase (0 if unobserved):
	// the event-measured quantities the budgets envelope.
	AckSlots, AggSlots int

	// Stages reports per-stage budgets vs. observed completion events.
	Stages []StageReport
	// ChannelUtilization is, per channel, the fraction of consumed slots in
	// which at least one node transmitted on it.
	ChannelUtilization []float64

	// Faults reports what the fault layer did, when the network was built
	// with a fault option (Loss, Jamming, Churn) — nil on fault-free runs.
	Faults *FaultReport
}

// FaultReport summarizes the fault layer's activity during one Aggregate
// run. Present on AggregateResult only when the Network was built with a
// fault option; a zero-intensity option yields a report whose loss, jam and
// crash counts are all zero while the run replays the fault-free transcript.
type FaultReport struct {
	// Delivered counts decoded receptions handed to listeners; Lost counts
	// decoded receptions suppressed by the loss process. Their sum is every
	// successful decode of the SINR layer (after jamming).
	Delivered, Lost int
	// JammedSlotChannels counts (slot, channel) pairs the adversary jammed.
	JammedSlotChannels int
	// CrashedNodes lists the nodes whose crash slot fell inside the run,
	// ascending.
	CrashedNodes []int
	// ByzantineNodes lists the seeded Byzantine membership (the Byzantine
	// option), ascending; Corrupted counts payloads its members rewrote and
	// Dropped the transmissions they silently discarded.
	ByzantineNodes     []int
	Corrupted, Dropped int
	// Survivors counts honest nodes alive at the end of the run;
	// SurvivorsInformed and SurvivorsExact restrict the result's Informed
	// and Exact counts to them — the surviving-node aggregate correctness
	// under churn (crashed nodes legitimately never learn the aggregate).
	// Byzantine nodes are excluded from all survivor counts: the metrics
	// measure honest correctness, which is what degrades as the Byzantine
	// fraction grows.
	Survivors                         int
	SurvivorsInformed, SurvivorsExact int
	// SurvivorsAgreeing is the size of the largest set of informed honest
	// survivors that learned the same value. Under churn the full-input
	// fold is unreachable when nodes die before contributing, so exactness
	// degrades to consensus: survivors should still agree on one aggregate
	// of the values that made it in.
	SurvivorsAgreeing int
}

// NodeColor is one node's outcome of a Color run. Index and ClusterColor
// are backend-specific decompositions of Color: under sec7 the final color
// is Index·φ + ClusterColor mod φ (within-cluster index, cluster TDMA
// color); under hsb they are the multi-channel pair (slot Color/F, channel
// Color mod F); dplus1 sets Index = Color and ClusterColor = -1.
type NodeColor struct {
	// Color is the final color, or -1 if the node ended uncolored.
	Color int
	// Index and ClusterColor decompose Color per backend (see above).
	Index, ClusterColor int
	// IsDominator and IsReporter describe the node's structure role under
	// sec7; hsb marks its MIS leaders as dominators, dplus1 sets neither.
	IsDominator, IsReporter bool
}

// ColorResult is the outcome of Network.Color.
type ColorResult struct {
	// Backend names the coloring backend that produced the result (the
	// Colorer option; "sec7" by default).
	Backend string
	// Nodes holds the per-node outcomes.
	Nodes []NodeColor
	// Palette is the number of distinct colors used; Conflicts the number
	// of communication-graph edges whose endpoints share a color (0 for a
	// proper coloring); Uncolored the number of nodes without a color.
	Palette, Conflicts, Uncolored int
	// Slots is the number of slots the run consumed; ColorSlots is when the
	// last node was colored, measured from the end of the backend's setup
	// phase (structure construction for sec7 — the Theorem 24 quantity —
	// or the discovery sweep for dplus1/hsb).
	Slots, ColorSlots int
	// Rounds is the backend's native rounds-to-stabilize measure: slots for
	// sec7 (equal to ColorSlots), TDMA sweep epochs for dplus1 and hsb.
	Rounds int
	// Cycle is the TDMA cycle length the coloring induces: max color + 1
	// for the single-channel schedules of sec7 and dplus1, max slot + 1 for
	// hsb, whose F colors share each slot on distinct channels.
	Cycle int
}

// Colors returns the per-node final colors (-1 for uncolored nodes).
func (r *ColorResult) Colors() []int {
	out := make([]int, len(r.Nodes))
	for i, nc := range r.Nodes {
		out[i] = nc.Color
	}
	return out
}

// TDMAReport is the outcome of Network.VerifyTDMA: how well a coloring
// works as a collision-free broadcast schedule over the SINR layer.
type TDMAReport struct {
	// Cycle is the schedule length (max color + 1).
	Cycle int
	// Delivered counts directed communication-graph links over which the
	// scheduled broadcast was decoded; Links is the total, including the
	// outgoing edges of unscheduled nodes (which can never deliver).
	Delivered, Links int
	// Unscheduled counts nodes with a negative color: the cycle never
	// schedules them, so they only listen. A nonzero value explains a
	// Delivered < Links gap that is the palette's fault rather than the
	// SINR layer's.
	Unscheduled int
}

// GraphStats summarizes the communication graph induced by a network's
// layout at radius R_ε.
type GraphStats struct {
	MaxDegree int
	AvgDegree float64
	Connected bool
	// Diameter is a 2-approximation of the hop diameter, or -1 if the
	// graph is disconnected.
	Diameter int
}

// PlanInfo exposes the derived pipeline sizing of a Network.
type PlanInfo struct {
	// DeltaHat, PhiMax and HopBound are the resolved sizing parameters
	// (topology-derived unless overridden by options).
	DeltaHat, PhiMax, HopBound int
	// BuildSlots and BudgetSlots are the structure-construction and total
	// schedule envelopes.
	BuildSlots, BudgetSlots int
	// Stages lists the budgeted slot window of every pipeline stage.
	Stages []StageReport
}
