package mcnet

import "mcnet/internal/agg"

// Aggregator is an associative, commutative fold over int64 values with an
// identity element — the paper's "compressible functions" (Sec. 2). The
// built-ins Sum, Max and Min cover the common cases; NewAggregator wraps a
// custom combine function.
type Aggregator interface {
	// Name identifies the aggregate in reports.
	Name() string
	// Identity is the neutral element: Combine(Identity, x) == x.
	Identity() int64
	// Combine folds two partial aggregates. It must be associative and
	// commutative for the distributed fold to be order-independent.
	Combine(a, b int64) int64
}

// Built-in aggregators.
var (
	// Sum computes the total of all node values.
	Sum Aggregator = opAggregator{agg.Sum}
	// Max computes the maximum node value.
	Max Aggregator = opAggregator{agg.Max}
	// Min computes the minimum node value.
	Min Aggregator = opAggregator{agg.Min}
)

// NewAggregator builds a custom Aggregator from an identity and an
// associative, commutative combine function.
func NewAggregator(name string, identity int64, combine func(a, b int64) int64) Aggregator {
	return opAggregator{agg.Op{Name: name, Identity: identity, Combine: combine}}
}

type opAggregator struct{ op agg.Op }

func (o opAggregator) Name() string             { return o.op.Name }
func (o opAggregator) Identity() int64          { return o.op.Identity }
func (o opAggregator) Combine(a, b int64) int64 { return o.op.Combine(a, b) }

// toOp converts any Aggregator to the internal operator representation.
func toOp(a Aggregator) agg.Op {
	if o, ok := a.(opAggregator); ok {
		return o.op
	}
	return agg.Op{Name: a.Name(), Identity: a.Identity(), Combine: a.Combine}
}
